// Command qsched analyzes the communication schedule of a circuit without
// allocating any state — it works up to the 49-qubit circuits of the
// paper's outlook (Sec. 5). It prints the stage/swap/cluster structure and
// the comparison against the per-gate scheme of [5].
//
// Example:
//
//	qsched -qubits 49 -depth 25 -local 30 -spec1q
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
)

func main() {
	var (
		qubits = flag.Int("qubits", 42, "number of qubits")
		depth  = flag.Int("depth", 25, "circuit depth (clock cycles after the Hadamard layer)")
		local  = flag.Int("local", 30, "local qubits per rank (l)")
		kmax   = flag.Int("kmax", 4, "maximum fused-gate size")
		seed   = flag.Int64("seed", 0, "random seed")
		spec1q = flag.Bool("spec1q", false, "specialize diagonal 1-qubit gates (median-hard mode)")
		policy = flag.String("policy", "greedy", "swap policy: greedy or lowest-order")
		full   = flag.Bool("full", false, "print the full per-op plan")
		save   = flag.String("save", "", "write the plan to this file (load with qsim -plan)")
	)
	flag.Parse()

	r, c := circuit.GridForQubits(*qubits)
	circ := circuit.Supremacy(circuit.SupremacyOptions{
		Rows: r, Cols: c, Depth: *depth, Seed: *seed, SkipInitialH: true,
	})
	opts := schedule.DefaultOptions(*local)
	opts.KMax = *kmax
	opts.SpecializeDiagonal1Q = *spec1q
	switch *policy {
	case "greedy":
		opts.SwapPolicy = schedule.SwapGreedy
	case "lowest-order":
		opts.SwapPolicy = schedule.SwapLowestOrder
	default:
		fmt.Fprintf(os.Stderr, "qsched: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	plan, err := schedule.Build(circ, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsched: %v\n", err)
		os.Exit(1)
	}
	s := plan.Stats
	fmt.Printf("circuit: %d qubits (%dx%d grid), depth %d, %d gates\n", circ.N, r, c, *depth, len(circ.Gates))
	fmt.Printf("layout:  %d local / %d global qubits (%d ranks)\n", plan.L, plan.N-plan.L, 1<<(plan.N-plan.L))
	fmt.Printf("stages:  %d, global-to-local swaps: %d\n", s.Stages, s.Swaps)
	fmt.Printf("clusters: %d (%.2f gates/cluster), diagonal specializations: %d\n",
		s.Clusters, s.GatesPerCluster, s.DiagonalOps)
	var sizes []int
	for k := range s.ClusterSizes {
		sizes = append(sizes, k)
	}
	sort.Ints(sizes)
	for _, k := range sizes {
		fmt.Printf("  %d-qubit clusters: %d\n", k, s.ClusterSizes[k])
	}
	fmt.Printf("per-gate scheme [5]: %d comm steps (worst case %d) -> %.1fx reduction\n",
		s.BaselineGlobalGates, s.BaselineGlobalGatesDense,
		float64(s.BaselineGlobalGates)/float64(maxInt(1, s.Swaps)))
	if *full {
		fmt.Print(plan.Summary())
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsched: %v\n", err)
			os.Exit(1)
		}
		if err := schedule.WritePlan(f, plan); err != nil {
			fmt.Fprintf(os.Stderr, "qsched: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "qsched: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("plan written to %s\n", *save)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
