// Command qbench runs the named-workload benchmark catalog: the scenario
// spread every optimization PR must prove itself against — supremacy
// circuits (paper Fig. 1), XEB fidelity estimation, stochastic noise
// trajectories, and QAOA/VQE parameter sweeps — each built deterministically
// from a seed, checked against its correctness expectation, and timed.
//
// The human-readable report goes to stdout (stderr with -bench); with
// -bench, stdout carries `go test -bench`-format lines for the benchjson
// pipeline, which is how `make bench-workloads` records
// BENCH_workloads.json and how CI's workload-smoke job produces the file it
// diffs against the checked-in baseline via `benchjson -compare`.
//
// Examples:
//
//	qbench -quick -list                 # name the catalog
//	qbench -quick                       # CI tier, report + expectations
//	qbench -full -backend f32vec        # full tier through the f32 path
//	qbench -quick -bench | benchjson    # machine-readable throughput
//
// Exit status 1 means a correctness expectation failed; 2 a harness error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"qusim/internal/par"
	"qusim/internal/workload"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "quick size tier (CI runners); default")
		full    = flag.Bool("full", false, "full size tier (real hosts, nightly CI)")
		list    = flag.Bool("list", false, "list the catalog and exit")
		run     = flag.String("run", "", "regexp filtering workload names")
		backend = flag.String("backend", "statevec", "execution path: "+strings.Join(workload.Backends(), ", "))
		seed    = flag.Int64("seed", 1, "master seed (circuits, parameters, samplers)")
		bench   = flag.Bool("bench", false, "emit go-test benchmark lines on stdout (report moves to stderr)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *quick && *full {
		fmt.Fprintln(os.Stderr, "qbench: -quick and -full are mutually exclusive")
		os.Exit(2)
	}
	tier := workload.TierQuick
	if *full {
		tier = workload.TierFull
	}
	if *workers > 0 {
		par.SetWorkers(*workers)
	}

	catalog := workload.Catalog()
	if *run != "" {
		var err error
		if catalog, err = workload.Filter(*run); err != nil {
			fmt.Fprintln(os.Stderr, "qbench:", err)
			os.Exit(2)
		}
		if len(catalog) == 0 {
			fmt.Fprintf(os.Stderr, "qbench: no workload matches %q\n", *run)
			os.Exit(2)
		}
	}

	if *list {
		listCatalog(os.Stdout, catalog, workload.Params{Tier: tier, Seed: *seed})
		return
	}

	report := io.Writer(os.Stdout)
	if *bench {
		report = os.Stderr
		fmt.Printf("goos: %s\ngoarch: %s\npkg: qusim/workload\n", runtime.GOOS, runtime.GOARCH)
	}

	failed := false
	for _, w := range catalog {
		res, err := workload.Run(w, workload.Params{Tier: tier, Seed: *seed, Backend: *backend})
		if err != nil {
			fmt.Fprintf(os.Stderr, "qbench: %v\n", err)
			os.Exit(2)
		}
		printResult(report, res)
		if res.Failed() {
			failed = true
		}
		if *bench {
			fmt.Println(benchLine(res))
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "qbench: FAIL — correctness expectation violated")
		os.Exit(1)
	}
}

func listCatalog(w io.Writer, catalog []workload.Workload, p workload.Params) {
	fmt.Fprintf(w, "%d workloads (%s tier, seed %d):\n", len(catalog), p.Tier, p.Seed)
	for _, wl := range catalog {
		inst, err := wl.Build(p)
		if err != nil {
			fmt.Fprintf(w, "  %-18s build error: %v\n", wl.Name, err)
			continue
		}
		fmt.Fprintf(w, "  %-18s n=%-3d circuits=%-3d gates=%d\n",
			wl.Name, inst.Qubits, len(inst.Circuits), countGates(inst))
		fmt.Fprintf(w, "  %-18s stresses: %s\n", "", wl.Stresses)
		fmt.Fprintf(w, "  %-18s expects:  %s\n", "", wl.Expectation)
	}
}

func countGates(inst *workload.Instance) int {
	n := 0
	for _, c := range inst.Circuits {
		n += len(c.Gates)
	}
	return n
}

func printResult(w io.Writer, r *workload.Result) {
	fmt.Fprintf(w, "workload %s [%s, %s]: n=%d gates=%d elapsed=%v\n",
		r.Workload, r.Tier, r.Backend, r.Qubits, r.Gates, r.Elapsed.Round(time100us))
	for _, c := range r.Checks {
		if c.Err != nil {
			fmt.Fprintf(w, "  FAIL %-38s %v\n", c.Name, c.Err)
		} else {
			fmt.Fprintf(w, "  ok   %-38s got %.6g, want %s\n", c.Name, c.Got, c.Want)
		}
	}
	tp := r.Throughput()
	units := make([]string, 0, len(tp))
	for u := range tp {
		units = append(units, u)
	}
	sort.Strings(units)
	parts := make([]string, len(units))
	for i, u := range units {
		parts[i] = fmt.Sprintf("%s=%.3g", u, tp[u])
	}
	fmt.Fprintf(w, "  throughput: %s\n", strings.Join(parts, " "))
}

const time100us = 100000 // 100µs in ns, for Duration.Round

// benchLine renders the result as one `go test -bench` output line, the
// format cmd/benchjson parses: name, iteration count, then value/unit
// pairs. ns/op is what -compare gates on; the throughput units ride along.
func benchLine(r *workload.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "BenchmarkWorkload/%s/%s \t1\t%d ns/op", r.Workload, r.Tier, r.Elapsed.Nanoseconds())
	tp := r.Throughput()
	units := make([]string, 0, len(tp))
	for u := range tp {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		fmt.Fprintf(&b, "\t%g %s", tp[u], u)
	}
	return b.String()
}
