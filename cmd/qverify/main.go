// Command qverify runs the differential + metamorphic verification harness
// across every execution path of the simulator, plus MPI fault-injection
// scenarios and a checkpoint-recovery sweep that crashes a distributed run
// at every stage boundary and demands a bitwise-identical resumed state.
// Exit status 1 means a divergence or property violation was found
// (reproducers are printed).
//
// Examples:
//
//	qverify -quick                 # CI tier: trimmed matrix, ~a second
//	qverify                        # full matrix
//	qverify -qubits 12 -circuits 200 -seed 7   # soak run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qusim/internal/par"
	"qusim/internal/verify"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "trimmed matrix and circuit count (CI tier)")
		qubits   = flag.Int("qubits", 0, "qubits per generated circuit (0 = default for mode)")
		circuits = flag.Int("circuits", 0, "seeded random circuits in the matrix (0 = default)")
		gates    = flag.Int("gates", 0, "gates per random circuit (0 = 6·qubits)")
		seed     = flag.Int64("seed", 1, "master seed (circuits and fault plans derive from it)")
		tol      = flag.Float64("tol", 1e-10, "max-amplitude-delta tolerance")
		f32tol   = flag.Float64("f32-tol", 5e-4, "tolerance for the single-precision backends")
		faults   = flag.Int("fault-circuits", 0, "circuits rerun under MPI fault injection (0 = default)")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "per-phase progress")
	)
	flag.Parse()
	if *workers > 0 {
		par.SetWorkers(*workers)
	}

	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	rep, err := verify.Run(verify.Options{
		Qubits: *qubits, Circuits: *circuits, Gates: *gates,
		Seed: *seed, Tol: *tol, F32Tol: *f32tol, Quick: *quick,
		FaultCircuits: *faults, Log: log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qverify:", err)
		os.Exit(2)
	}
	fmt.Print(rep.String())
	if rep.Failed() {
		os.Exit(1)
	}
}
