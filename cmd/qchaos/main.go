// Command qchaos is the chaos soak driver: seeded random circuits run
// through the distributed and out-of-core engines while a composed fault
// schedule (chaos.Compose) degrades the run — rank crashes, payload
// corruption, stalls, ENOSPC, torn writes, transient read errors, slow
// I/O — and every result is compared bitwise against the same circuit run
// clean. Graceful degradation is the contract under test: a fault may cost
// restarts, pruned or skipped checkpoints, and resume attempts, but never
// a wrong amplitude and never an abort.
//
// Schedules are op-indexed and seeded, so a failing run replays exactly
// from its seed; on mismatch the divergence is delta-debugged down to a
// minimal reproducer circuit and written to -repro.
//
// Examples:
//
//	qchaos -seed 1 -runs 25        # the CI smoke configuration
//	qchaos -runs 120 -v            # longer soak with per-run schedules
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"time"

	"qusim/internal/chaos"
	"qusim/internal/circuit"
	"qusim/internal/ckpt"
	"qusim/internal/dist"
	"qusim/internal/oocvec"
	"qusim/internal/schedule"
	"qusim/internal/verify"
)

// coverage counts injected faults per class, summed over both chaos legs.
type coverage [chaos.NumClasses]int64

func (c *coverage) add(o *coverage) {
	for i := range c {
		c[i] += o[i]
	}
}

func (c *coverage) String() string {
	out := ""
	for i := chaos.Class(0); i < chaos.NumClasses; i++ {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", i, c[i])
	}
	return out
}

// harvestSchedule folds a schedule's fired transport faults and an
// injecting FS's disk-fault stats into cov.
func harvestSchedule(cov *coverage, s *chaos.Schedule, fss ...*chaos.FS) {
	if mp := s.MPI; mp != nil {
		if mp.Crash != nil && mp.Crash.Fired() {
			cov[chaos.Crash]++
		}
		if mp.Corrupt != nil && mp.Corrupt.Fired() {
			cov[chaos.Corrupt]++
		}
		if mp.Stall != nil && mp.Stall.Fired() {
			cov[chaos.Stall]++
		}
	}
	for _, fs := range fss {
		st := fs.Stats()
		cov[chaos.NoSpace] += st.NoSpace
		cov[chaos.TornWrite] += st.TornWrites
		cov[chaos.ReadError] += st.ReadErrors
		cov[chaos.SlowIO] += st.Slowdowns
	}
}

// scheduleOptions builds the plan options for l local qubits (the same
// clamp the verify backends apply).
func scheduleOptions(l int) schedule.Options {
	o := schedule.DefaultOptions(l)
	if o.KMax > l {
		o.KMax = l
	}
	return o
}

// chaosDist is the distributed chaos leg: dist.Run with the schedule's
// transport faults armed, checkpointed recovery on, and the disk faults
// injected under the checkpoint layer. Each Run call composes a fresh
// schedule from (seed, run) — fire-once fault state included — so the
// delta-debugging minimizer replays the identical degradation on every
// candidate circuit.
type chaosDist struct {
	seed  int64
	ranks int
	copts chaos.ComposeOptions
	run   int // set by the driver before each soak iteration

	cov      coverage
	restarts [3]int // corrupt, rank-dead, stalled
	written  int
	skipped  int
	resumes  int // extra dist.Run invocations past the first
}

func (b *chaosDist) Name() string { return fmt.Sprintf("dist/ranks%d+chaos", b.ranks) }

func (b *chaosDist) Run(c *circuit.Circuit) ([]complex128, error) {
	g := bits.TrailingZeros(uint(b.ranks))
	l := c.N - g
	if l < 1 {
		return nil, verify.ErrUnsupported
	}
	plan, err := schedule.Build(c, scheduleOptions(l))
	if err != nil {
		return nil, err
	}
	sched := chaos.Compose(b.seed, b.run, b.copts)
	cfs := chaos.NewFS(sched.Disk, nil)
	restore := ckpt.SetFS(cfs)
	defer ckpt.SetFS(restore)

	dir, err := os.MkdirTemp("", "qchaos-dist-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var res *dist.Result
	var runErr error
	// Outer resume loop: a transient read window hitting the snapshot scan
	// ends dist.Run's internal attempt chain (the scan error is not a
	// transport fault), but the directory still holds valid snapshots — a
	// fresh run with Resume continues from them once the window passes.
	for attempt := 0; attempt < 6; attempt++ {
		if attempt > 0 {
			b.resumes++
		}
		res, runErr = dist.Run(plan, dist.Options{
			Ranks:        b.ranks,
			GatherState:  true,
			Faults:       sched.MPI,
			Checkpoint:   &ckpt.Policy{Dir: dir, EveryStages: 1, MaxRestarts: 8},
			Resume:       attempt > 0,
			CommDeadline: 400 * time.Millisecond,
			Retry: &dist.RetryPolicy{
				BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
				Deadline: 20 * time.Second, Seed: b.seed*1000 + int64(b.run),
			},
		})
		if runErr == nil {
			break
		}
	}
	harvestSchedule(&b.cov, sched, cfs)
	if res != nil {
		b.restarts[0] += res.RestartsCorrupt
		b.restarts[1] += res.RestartsRankDead
		b.restarts[2] += res.RestartsStalled
		b.written += res.CheckpointsWritten
		b.skipped += res.CheckpointsSkipped
	}
	if runErr != nil {
		return nil, fmt.Errorf("chaos dist leg under %s: %w", sched, runErr)
	}
	return verify.Unpermute(plan, res.Amplitudes), nil
}

// chaosOoc is the out-of-core chaos leg: RunCheckpointed with the disk
// faults injected under both the backing-file data path and the checkpoint
// layer, plus an abort-resume loop — a fault window that outlasts the
// engine's bounded retries surfaces, and the next attempt resumes from the
// newest valid snapshot.
//
// Torn writes are scoped to the checkpoint layer only: shard CRCs detect a
// lying write there, while the backing file is transient working state
// with no redundancy to catch one (a crash restarts from a snapshot, never
// from the backing file).
type chaosOoc struct {
	seed              int64
	globals, prefetch int
	copts             chaos.ComposeOptions
	run               int

	cov     coverage
	skipped int
	resumes int
}

func (b *chaosOoc) Name() string { return fmt.Sprintf("oocvec/g%d+chaos", b.globals) }

func (b *chaosOoc) Run(c *circuit.Circuit) ([]complex128, error) {
	l := c.N - b.globals
	if l < 1 {
		return nil, verify.ErrUnsupported
	}
	plan, err := schedule.Build(c, scheduleOptions(l))
	if err != nil {
		return nil, err
	}
	sched := chaos.Compose(b.seed, b.run, b.copts)
	dataDisk := sched.Disk
	dataDisk.TornWriteAt = 0
	dfs := chaos.NewFS(dataDisk, nil)
	cfs := chaos.NewFS(sched.Disk, nil)
	restoreOoc := oocvec.SetFS(dfs)
	defer oocvec.SetFS(restoreOoc)
	restoreCkpt := ckpt.SetFS(cfs)
	defer ckpt.SetFS(restoreCkpt)

	dir, err := os.MkdirTemp("", "qchaos-ooc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	pol := &ckpt.Policy{Dir: dir, EveryStages: 1}

	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			b.resumes++
		}
		// A fresh vector per attempt: New initializes |0…0⟩, and the
		// resume pass restores the newest snapshot over it (or re-executes
		// from the start when none survived). The shared FS op counters
		// keep advancing across attempts, so a fault window always passes.
		v, verr := oocvec.New(c.N, l, "")
		if verr != nil {
			lastErr = verr
			continue
		}
		v.SetPrefetch(b.prefetch)
		_, _, rerr := v.RunCheckpointed(plan, pol, attempt > 0)
		if rerr != nil {
			lastErr = rerr
			v.Close()
			continue
		}
		amps, aerr := v.Amplitudes()
		b.skipped += v.CheckpointsSkipped()
		v.Close()
		if aerr != nil {
			lastErr = aerr
			continue
		}
		harvestSchedule(&b.cov, sched, dfs, cfs)
		return verify.Unpermute(plan, amps), nil
	}
	harvestSchedule(&b.cov, sched, dfs, cfs)
	return nil, fmt.Errorf("chaos ooc leg under %s: %w", sched, lastErr)
}

// writeRepro drops a reproducer file into dir (no-op when dir is empty)
// and returns its path.
func writeRepro(dir, name, content string) string {
	if dir == "" {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "qchaos: repro dir:", err)
		return ""
	}
	path := filepath.Join(dir, name)
	//qlint:ignore atomicrename a reproducer report for a human, not durability data — a torn repro file cannot corrupt any run
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "qchaos: writing reproducer:", err)
		return ""
	}
	return path
}

func main() {
	var (
		seed   = flag.Int64("seed", 1, "master seed (circuits and fault schedules derive from it)")
		runs   = flag.Int("runs", 25, "soak iterations; run r arms primary fault class r mod 6")
		qubits = flag.Int("qubits", 6, "qubits per generated circuit")
		gates  = flag.Int("gates", 30, "gates per generated circuit")
		ranks  = flag.Int("ranks", 4, "simulated MPI ranks for the distributed leg")
		budget = flag.Duration("budget", 0, "wall-clock budget; exceeding it fails the soak (0 = none)")
		repro  = flag.String("repro", "", "directory for reproducer files on failure")
		vflag  = flag.Bool("v", false, "per-run schedules and engine summaries")
	)
	flag.Parse()
	start := time.Now()

	copts := chaos.ComposeOptions{Ranks: *ranks}
	cleanDist := verify.Distributed(*ranks)
	cleanOoc := verify.OutOfCore(2, 2)
	chDist := &chaosDist{seed: *seed, ranks: *ranks, copts: copts}
	chOoc := &chaosOoc{seed: *seed, globals: 2, prefetch: 2, copts: copts}

	// Bitwise engines: the chaos leg must reproduce its clean twin exactly
	// (tol 0). The anchor engine pins the clean twins themselves against
	// the dense naive reference at numerical tolerance, so a systematic
	// error in a twin cannot silently validate the chaos leg.
	distEng := verify.NewEngine(cleanDist, []verify.Backend{chDist}, 0)
	oocEng := verify.NewEngine(cleanOoc, []verify.Backend{chOoc}, 0)
	anchorEng := verify.NewEngine(verify.Naive(), []verify.Backend{cleanDist, cleanOoc}, 1e-10)

	type failure struct {
		run  int
		what string
	}
	var failures []failure
	done := 0
	for r := 0; r < *runs; r++ {
		if *budget > 0 && time.Since(start) > *budget {
			failures = append(failures, failure{r, fmt.Sprintf("budget %v exhausted after %d/%d runs", *budget, done, *runs)})
			break
		}
		c := verify.Random(verify.RandomOptions{
			Seed: *seed*101 + int64(r), Qubits: *qubits, Gates: *gates,
		})
		chDist.run, chOoc.run = r, r
		if *vflag {
			fmt.Printf("run %2d: %s  %s\n", r, c.Name, chaos.Compose(*seed, r, copts))
		}
		for _, eng := range []*verify.Engine{distEng, oocEng, anchorEng} {
			if err := eng.Check(c); err != nil {
				failures = append(failures, failure{r, err.Error()})
				path := writeRepro(*repro, fmt.Sprintf("run%03d-harness.txt", r),
					fmt.Sprintf("# %v\n# %s\n%s", err, chaos.Compose(*seed, r, copts), verify.CircuitText(c)))
				if path != "" {
					fmt.Fprintln(os.Stderr, "qchaos: reproducer at", path)
				}
			}
		}
		done++
	}

	var cov coverage
	cov.add(&chDist.cov)
	cov.add(&chOoc.cov)

	fmt.Printf("qchaos: %d/%d runs, seed %d, %v elapsed\n", done, *runs, *seed, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  injected: %s\n", cov.String())
	fmt.Printf("  dist: restarts corrupt=%d rank-dead=%d stalled=%d, ckpts written=%d skipped=%d, resumes=%d\n",
		chDist.restarts[0], chDist.restarts[1], chDist.restarts[2], chDist.written, chDist.skipped, chDist.resumes)
	fmt.Printf("  ooc:  resumes=%d ckpts skipped=%d\n", chOoc.resumes, chOoc.skipped)
	if *vflag {
		fmt.Print(distEng.Summary(), oocEng.Summary(), anchorEng.Summary())
	}

	ok := true
	for _, eng := range []*verify.Engine{distEng, oocEng, anchorEng} {
		for i, d := range eng.Divergences {
			ok = false
			fmt.Printf("MISMATCH %s on %s: maxΔ=%.3e (%d-gate reproducer)\n",
				d.Backend, d.Circuit, d.MaxDelta, d.ReproducerGates)
			path := writeRepro(*repro, fmt.Sprintf("divergence%03d-%s.txt", i, d.Backend),
				fmt.Sprintf("# %s diverged on %s, maxΔ=%.3e\n%s", d.Backend, d.Circuit, d.MaxDelta, d.Reproducer))
			if path != "" {
				fmt.Println("  reproducer at", path)
			}
		}
	}
	for _, f := range failures {
		ok = false
		fmt.Printf("FAILURE run %d: %s\n", f.run, f.what)
	}
	// Coverage gate: a soak that never injected a class proves nothing
	// about it. SlowIO is a rider (latency, not failure) and exempt.
	for _, cl := range []chaos.Class{chaos.Crash, chaos.Corrupt, chaos.Stall, chaos.NoSpace, chaos.TornWrite, chaos.ReadError} {
		if cov[cl] == 0 {
			ok = false
			fmt.Printf("COVERAGE: fault class %s was never injected\n", cl)
		}
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Println("PASS: all chaos runs bitwise identical to clean runs")
}
