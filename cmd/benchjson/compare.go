package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Compare mode: `benchjson -compare old.json new.json [-threshold pct]`
// diffs two documents this command produced and gates on ns/op growth.
// A benchmark is a regression when its ns/op grew by more than the
// threshold percentage; any regression makes the exit status 1, which is
// how the CI workload-smoke job turns a committed BENCH_workloads.json
// baseline into a perf gate. Benchmarks present in only one of the two
// documents appear in the table as "removed" (baseline-only) or "added"
// (new-only) rows rather than being dropped; removed ones are not fatal
// (a renamed workload should not brick CI) unless -require-all is set.

// comparison is one benchmark's old-vs-new verdict.
type comparison struct {
	Name     string
	Old, New float64 // ns/op; 0 when the side is absent
	DeltaPct float64 // (new/old − 1) · 100
	Status   string  // "ok", "regression", "improved", "removed", "added"
}

func runCompare(args []string) int {
	fs := flag.NewFlagSet("benchjson -compare", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 10, "regression threshold in percent of ns/op growth")
	requireAll := fs.Bool("require-all", false, "treat benchmarks removed from the new document as failures")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchjson -compare [flags] old.json new.json")
		fs.PrintDefaults()
	}
	// Accept the two file operands before, between, or after the flags.
	var files []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		rest = fs.Args()
		for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			files = append(files, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
	}
	if len(files) != 2 {
		fs.Usage()
		return 2
	}
	oldDoc, err := loadDocument(files[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newDoc, err := loadDocument(files[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	comps := compareDocs(oldDoc, newDoc, *threshold)
	writeMarkdown(os.Stdout, comps, *threshold)
	fail := false
	for _, c := range comps {
		if c.Status == "regression" || (*requireAll && c.Status == "removed") {
			fail = true
		}
	}
	if fail {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %g%% threshold\n", *threshold)
		return 1
	}
	return 0
}

func loadDocument(path string) (document, error) {
	var doc document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

// compareDocs pairs benchmarks by name and classifies each against the
// threshold (percent ns/op growth). Results are sorted by name with the
// regressions first, so the worst news leads the table.
func compareDocs(oldDoc, newDoc document, threshold float64) []comparison {
	newBy := map[string]benchmark{}
	for _, b := range newDoc.Benchmarks {
		newBy[b.Name] = b
	}
	seen := map[string]bool{}
	var out []comparison
	for _, ob := range oldDoc.Benchmarks {
		seen[ob.Name] = true
		c := comparison{Name: ob.Name, Old: ob.Metrics["ns/op"]}
		nb, ok := newBy[ob.Name]
		switch {
		case !ok:
			c.Status = "removed"
		case c.Old <= 0:
			c.New = nb.Metrics["ns/op"]
			c.Status = "added" // unusable baseline entry; treat as fresh
		default:
			c.New = nb.Metrics["ns/op"]
			c.DeltaPct = (c.New/c.Old - 1) * 100
			switch {
			case c.DeltaPct > threshold:
				c.Status = "regression"
			case c.DeltaPct < -threshold:
				c.Status = "improved"
			default:
				c.Status = "ok"
			}
		}
		out = append(out, c)
	}
	for _, nb := range newDoc.Benchmarks {
		if !seen[nb.Name] {
			out = append(out, comparison{Name: nb.Name, New: nb.Metrics["ns/op"], Status: "added"})
		}
	}
	rank := map[string]int{"regression": 0, "removed": 1, "ok": 2, "improved": 2, "added": 3}
	sort.SliceStable(out, func(i, j int) bool {
		if rank[out[i].Status] != rank[out[j].Status] {
			return rank[out[i].Status] < rank[out[j].Status]
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// writeMarkdown renders the comparison as a GitHub-flavored markdown table —
// CI appends it to GITHUB_STEP_SUMMARY.
func writeMarkdown(w io.Writer, comps []comparison, threshold float64) {
	fmt.Fprintf(w, "### Benchmark comparison (threshold ±%g%% ns/op)\n\n", threshold)
	fmt.Fprintln(w, "| benchmark | old ns/op | new ns/op | Δ | status |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	for _, c := range comps {
		delta := "—"
		if c.Status == "ok" || c.Status == "regression" || c.Status == "improved" {
			delta = fmt.Sprintf("%+.1f%%", c.DeltaPct)
		}
		status := c.Status
		if c.Status == "regression" {
			status = "**regression**"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			c.Name, fmtNs(c.Old), fmtNs(c.New), delta, status)
	}
}

func fmtNs(v float64) string {
	if v <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.0f", v)
}
