// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark baselines can be committed and diffed
// (see the bench-permute Makefile target, which records the permutation
// pipeline's BENCH_permute.json).
//
// Besides the raw per-benchmark metrics it derives speedups for the
// baseline/optimized pairs the repo's benchmarks use: a ".../singlepass"
// leaf is compared against its ".../swapchain" sibling, ".../fused" against
// ".../separate".
//
// With -strict the command exits nonzero when a Benchmark line fails to
// parse or when no benchmarks were parsed at all, so CI catches silently
// broken benchmark output instead of archiving an empty document.
//
// A second mode, `benchjson -compare old.json new.json -threshold <pct>`,
// diffs two recorded documents: it prints a markdown table of per-benchmark
// ns/op ratios and exits 1 when any benchmark regressed beyond the
// threshold — the perf gate CI's workload-smoke job runs against the
// committed BENCH_workloads.json baseline (see compare.go).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type speedup struct {
	Name      string  `json:"name"`
	Optimized string  `json:"optimized"`
	Baseline  string  `json:"baseline"`
	Speedup   float64 `json:"speedup"` // baseline ns/op ÷ optimized ns/op
}

type document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
	Speedups   []speedup   `json:"speedups,omitempty"`
}

// cpuSuffix strips the trailing -GOMAXPROCS tag go test appends to names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// pairs maps an optimized leaf name to the baseline sibling it is compared
// against when deriving speedups. A ratio below 1 records an overhead (the
// checkpointed/plain pair: snapshots cost time and the recorded factor says
// how much).
var pairs = map[string]string{
	"singlepass":   "swapchain",
	"fused":        "separate",
	"checkpointed": "plain",
	"enabled":      "disabled",
	"prefetch":     "reactive",
	"f32":          "f64",
}

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "-compare" || os.Args[1] == "--compare") {
		os.Exit(runCompare(os.Args[2:]))
	}
	strict := flag.Bool("strict", false, "exit nonzero on unparsable Benchmark lines or empty input")
	flag.Parse()
	doc := document{Benchmarks: []benchmark{}}
	var badLines int
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if len(strings.Fields(line)) == 1 {
				// A lone name line: go test prints the name first and moves
				// the metrics to a new line when the benchmark writes output.
				continue
			}
			if b, ok := parseBenchLine(line); ok {
				doc.Benchmarks = mergeBenchmark(doc.Benchmarks, b)
			} else {
				badLines++
				fmt.Fprintf(os.Stderr, "benchjson: unparsable benchmark line: %q\n", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if *strict {
		if badLines > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d unparsable Benchmark line(s)\n", badLines)
			os.Exit(1)
		}
		if len(doc.Benchmarks) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: no benchmarks parsed")
			os.Exit(1)
		}
	}
	doc.Speedups = deriveSpeedups(doc.Benchmarks)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkName-8  20  123 ns/op  45.6 MB/s  2.0 x"
// into a benchmark entry: fields after the iteration count come in
// value/unit pairs.
func parseBenchLine(line string) (benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{
		Name:       cpuSuffix.ReplaceAllString(f[0], ""),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// mergeBenchmark folds repeated runs of the same benchmark (from -count N)
// into one entry, keeping the fastest repetition: the workloads are
// deterministic, so the minimum ns/op is the least-interfered-with sample
// and the standard way to suppress scheduler noise in a recorded baseline.
func mergeBenchmark(benchmarks []benchmark, b benchmark) []benchmark {
	for i := range benchmarks {
		if benchmarks[i].Name == b.Name {
			if b.Metrics["ns/op"] < benchmarks[i].Metrics["ns/op"] {
				benchmarks[i] = b
			}
			return benchmarks
		}
	}
	return append(benchmarks, b)
}

func deriveSpeedups(benchmarks []benchmark) []speedup {
	byName := map[string]benchmark{}
	for _, b := range benchmarks {
		byName[b.Name] = b
	}
	var out []speedup
	for _, b := range benchmarks {
		i := strings.LastIndex(b.Name, "/")
		if i < 0 {
			continue
		}
		prefix, leaf := b.Name[:i], b.Name[i+1:]
		baseLeaf, ok := pairs[leaf]
		if !ok {
			continue
		}
		base, ok := byName[prefix+"/"+baseLeaf]
		if !ok || b.Metrics["ns/op"] == 0 {
			continue
		}
		out = append(out, speedup{
			Name:      prefix,
			Optimized: leaf,
			Baseline:  baseLeaf,
			Speedup:   base.Metrics["ns/op"] / b.Metrics["ns/op"],
		})
	}
	return out
}
