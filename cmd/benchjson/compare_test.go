package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(ns map[string]float64) document {
	d := document{Benchmarks: []benchmark{}}
	for name, v := range ns {
		d.Benchmarks = append(d.Benchmarks, benchmark{
			Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": v},
		})
	}
	return d
}

func statuses(comps []comparison) map[string]string {
	out := map[string]string{}
	for _, c := range comps {
		out[c.Name] = c.Status
	}
	return out
}

func TestCompareDocsClassification(t *testing.T) {
	oldDoc := doc(map[string]float64{
		"BenchmarkWorkload/supremacy/quick": 1000,
		"BenchmarkWorkload/xeb/quick":       1000,
		"BenchmarkWorkload/noise/quick":     1000,
		"BenchmarkWorkload/gone/quick":      1000,
	})
	newDoc := doc(map[string]float64{
		"BenchmarkWorkload/supremacy/quick": 1050, // +5% — within threshold
		"BenchmarkWorkload/xeb/quick":       1300, // +30% — regression
		"BenchmarkWorkload/noise/quick":     600,  // −40% — improved
		"BenchmarkWorkload/fresh/quick":     500,  // only in new
	})
	got := statuses(compareDocs(oldDoc, newDoc, 10))
	want := map[string]string{
		"BenchmarkWorkload/supremacy/quick": "ok",
		"BenchmarkWorkload/xeb/quick":       "regression",
		"BenchmarkWorkload/noise/quick":     "improved",
		"BenchmarkWorkload/gone/quick":      "removed",
		"BenchmarkWorkload/fresh/quick":     "added",
	}
	for name, s := range want {
		if got[name] != s {
			t.Errorf("%s: status %q, want %q", name, got[name], s)
		}
	}
	comps := compareDocs(oldDoc, newDoc, 10)
	if comps[0].Status != "regression" {
		t.Errorf("regressions not sorted first: got %q", comps[0].Status)
	}
}

func TestCompareDocsThresholdBoundary(t *testing.T) {
	// 1250/1000 is exact in binary, so the delta is exactly 25%.
	oldDoc := doc(map[string]float64{"B": 1000})
	newDoc := doc(map[string]float64{"B": 1250})
	if s := statuses(compareDocs(oldDoc, newDoc, 25))["B"]; s != "ok" {
		t.Errorf("exactly-at-threshold delta classified %q, want ok", s)
	}
	if s := statuses(compareDocs(oldDoc, newDoc, 24))["B"]; s != "regression" {
		t.Errorf("above-threshold delta classified %q, want regression", s)
	}
}

func writeDoc(t *testing.T, path string, d document) {
	t.Helper()
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunCompareInjectedRegression is the acceptance check: injecting a
// slowdown beyond the threshold must drive the -compare exit status nonzero,
// and an in-threshold diff must not.
func TestRunCompareInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeDoc(t, oldPath, doc(map[string]float64{"BenchmarkWorkload/xeb/quick": 1000}))
	writeDoc(t, newPath, doc(map[string]float64{"BenchmarkWorkload/xeb/quick": 2500}))

	if code := runCompare([]string{oldPath, newPath, "-threshold", "50"}); code != 1 {
		t.Errorf("injected +150%% regression: exit %d, want 1", code)
	}
	if code := runCompare([]string{"-threshold", "200", oldPath, newPath}); code != 0 {
		t.Errorf("within generous threshold: exit %d, want 0", code)
	}
}

func TestRunCompareMissingPolicy(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeDoc(t, oldPath, doc(map[string]float64{"A": 1000, "B": 1000}))
	writeDoc(t, newPath, doc(map[string]float64{"A": 1000}))

	if code := runCompare([]string{oldPath, newPath}); code != 0 {
		t.Errorf("removed benchmark fatal by default: exit %d, want 0", code)
	}
	if code := runCompare([]string{"-require-all", oldPath, newPath}); code != 1 {
		t.Errorf("removed benchmark with -require-all: exit %d, want 1", code)
	}
}

// TestCompareDocsAsymmetricInputs pins the one-sided cases: every
// benchmark present in only one document must surface as an added or
// removed row — including when one side is entirely empty — rather than
// silently vanishing from the table.
func TestCompareDocsAsymmetricInputs(t *testing.T) {
	oldDoc := doc(map[string]float64{"A": 1000, "B": 2000})
	newDoc := doc(map[string]float64{"B": 2000, "C": 500})

	comps := compareDocs(oldDoc, newDoc, 10)
	if len(comps) != 3 {
		t.Fatalf("got %d rows, want 3 (union of both documents)", len(comps))
	}
	got := statuses(comps)
	for name, want := range map[string]string{"A": "removed", "B": "ok", "C": "added"} {
		if got[name] != want {
			t.Errorf("%s: status %q, want %q", name, got[name], want)
		}
	}

	// Entirely empty sides: all-removed and all-added respectively.
	for name, s := range statuses(compareDocs(oldDoc, doc(nil), 10)) {
		if s != "removed" {
			t.Errorf("empty new document: %s classified %q, want removed", name, s)
		}
	}
	for name, s := range statuses(compareDocs(doc(nil), newDoc, 10)) {
		if s != "added" {
			t.Errorf("empty old document: %s classified %q, want added", name, s)
		}
	}

	// The markdown table carries the one-sided rows with em-dash gaps on
	// the absent side.
	var sb strings.Builder
	writeMarkdown(&sb, comps, 10)
	out := sb.String()
	for _, want := range []string{"| A | 1000 | — | — | removed |", "| C | — | 500 | — | added |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing row %q:\n%s", want, out)
		}
	}
}

func TestRunCompareUsageErrors(t *testing.T) {
	if code := runCompare([]string{"only-one.json"}); code != 2 {
		t.Errorf("one operand: exit %d, want 2", code)
	}
	if code := runCompare([]string{"/nonexistent/a.json", "/nonexistent/b.json"}); code != 2 {
		t.Errorf("unreadable files: exit %d, want 2", code)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var sb strings.Builder
	writeMarkdown(&sb, []comparison{
		{Name: "B/slow", Old: 100, New: 200, DeltaPct: 100, Status: "regression"},
		{Name: "B/gone", Old: 100, Status: "removed"},
	}, 10)
	out := sb.String()
	for _, want := range []string{"| benchmark |", "**regression**", "+100.0%", "B/gone", "—"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q:\n%s", want, out)
		}
	}
}

func TestParseBenchLineWorkloadFormat(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkWorkload/xeb/quick \t1\t2700000 ns/op\t1.65e+08 amps/s\t9e+06 samples/s")
	if !ok {
		t.Fatal("qbench -bench line did not parse")
	}
	if b.Name != "BenchmarkWorkload/xeb/quick" || b.Metrics["ns/op"] != 2700000 || b.Metrics["amps/s"] != 1.65e8 {
		t.Errorf("parsed %+v", b)
	}
}
