package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestGoldenBadPackage pins the full user-visible contract of a failing
// run: exit code 1, diagnostics on stdout in the stable
// path:line:col: analyzer: message form (sorted, module-root-relative),
// and the finding count on stderr.
func TestGoldenBadPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"testdata/src/badpkg"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%sstderr:\n%s", code, stdout.String(), stderr.String())
	}
	want, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if stdout.String() != string(want) {
		t.Errorf("diagnostics differ from testdata/golden.txt\ngot:\n%swant:\n%s", stdout.String(), want)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr %q does not report the finding count", stderr.String())
	}
}

// TestCleanPackageExitsZero checks the success contract: silent stdout,
// exit 0.
func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%sstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout:\n%s", stdout.String())
	}
}

// TestUsageErrorsExitTwo checks the load/usage error contract.
func TestUsageErrorsExitTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuchanalyzer"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr %q does not name the unknown analyzer", stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing dir: exit code = %d, want 2", code)
	}
}

// TestOnlySelectsAnalyzers checks -only narrows the run: with hotalloc
// excluded, the bad package's hot-loop findings disappear.
func TestOnlySelectsAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "nilsafetelemetry", "testdata/src/badpkg"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "nilsafetelemetry:") {
		t.Errorf("selected analyzer missing from output:\n%s", out)
	}
	for _, unwanted := range []string{"hotalloc:", "atomicrename:", "collectiveorder:"} {
		if strings.Contains(out, unwanted) {
			t.Errorf("-only nilsafetelemetry still ran %s\n%s", unwanted, out)
		}
	}
}

// TestVetProtocolFlags checks the -V/-flags handshake go vet performs
// before handing the tool a .cfg file.
func TestVetProtocolFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	if !strings.HasPrefix(stdout.String(), "qlint version ") {
		t.Errorf("-V=full printed %q, want a 'qlint version ...' line", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags printed %q, want []", stdout.String())
	}
}
