package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"qusim/internal/analysis"
)

// vetConfig is the subset of the `go vet` tool-protocol config file the
// checker needs (the same shape x/tools' unitchecker reads). cmd/go
// writes one per package and invokes the vettool with its path as the
// only argument; export data for every import is provided in PackageFile,
// so no loading beyond this unit is required.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package under the go vet protocol. Exit status
// follows unitchecker: 0 clean, 2 when diagnostics were reported.
func runVetUnit(cfgPath string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	blob, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "qlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(blob, &cfg); err != nil {
		fmt.Fprintf(stderr, "qlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The protocol requires the facts file to exist even though qlint's
	// analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "qlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, "qlint:", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("qlint: no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "qlint:", err)
		return 1
	}

	unit := &analysis.Unit{
		Fset: fset, Dir: cfg.Dir, ImportPath: cfg.ImportPath,
		Files: files, Pkg: pkg, Info: info,
	}
	diags := analysis.RunUnit(unit, analyzers)
	analysis.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
