package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVetToolEndToEnd drives the real `go vet -vettool` path: build the
// qlint binary, then let the go toolchain invoke it with -V=full, -flags,
// and per-package .cfg files over two communication-heavy packages. This
// is the integration check that the unitchecker protocol in vet.go keeps
// working against the installed toolchain.
func TestVetToolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "qlint")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building qlint: %v\n%s", err, out)
	}
	vet := exec.Command(goBin, "vet", "-vettool="+bin, "./internal/dist", "./internal/verify")
	vet.Dir = filepath.Join("..", "..")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over clean packages failed: %v\n%s", err, out)
	}
}
