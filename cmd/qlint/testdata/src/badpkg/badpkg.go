// Package badpkg is the known-bad fixture for qlint's golden-output test:
// each section trips a different analyzer, and the expected rendering —
// path:line:col: analyzer: message, sorted, module-root-relative — is
// pinned byte-for-byte in testdata/golden.txt.
package badpkg

import (
	"os"

	"qusim/internal/ckpt"
	"qusim/internal/mpi"
	"qusim/internal/telemetry"
)

// policy arms the atomicrename rules by importing internal/ckpt.
func policy(dir string) *ckpt.Policy { return &ckpt.Policy{Dir: dir} }

// commitManifest writes the manifest under its final name directly.
func commitManifest(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// syncRanks runs a collective only on rank 0.
func syncRanks(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
}

// enabled compares a handle against telemetry.Disabled.
func enabled(tel *telemetry.Telemetry) bool { return tel != telemetry.Disabled }

// sum allocates inside its hot loop.
//
//qusim:hot
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		buf := make([]int, 1)
		buf[0] = x
		total += buf[0]
	}
	return total
}

// reasonlessDirective shows a directive that fails to suppress: the
// missing reason is itself reported, and the write stays flagged.
func reasonlessDirective(path string, data []byte) error {
	//qlint:ignore atomicrename
	return os.WriteFile(path, data, 0o644)
}
