// Command qlint is the repo's domain linter: a multichecker over the
// internal/analysis suite that enforces the simulator's concurrency,
// communication, and durability invariants (DESIGN.md §10).
//
// Standalone use (what `make lint` runs):
//
//	qlint [-only a,b] [-fix | -diff] [-strict-ignores] [-json out] [-github] [dir | ./...]...
//
// Arguments are module-relative package patterns: `./...` (the default)
// lints every package under the module root, and a directory path lints
// that one package directory. Diagnostics print one per line as
//
//	path:line:col: analyzer: message
//
// with paths relative to the module root. Exit status: 0 clean, 1 when
// diagnostics were reported, 2 on usage or load errors.
//
// Some diagnostics carry suggested fixes: -fix applies them in place (the
// fixed diagnostics are then not reported — re-run to verify the tree is
// clean), -diff previews them as a unified diff without writing.
// -strict-ignores additionally reports stale //qlint:ignore directives
// whose analyzer no longer fires at the suppressed site. -json writes the
// findings machine-readably to a file for CI artifacts, and -github
// mirrors each finding as a GitHub Actions ::error annotation.
//
// The binary also speaks the `go vet -vettool` protocol (-V=full, -flags,
// and a vet .cfg file as the sole argument), so the same checks run under
// `go vet -vettool=$(pwd)/bin/qlint ./...` with the toolchain's caching.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"qusim/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fixFlag := fs.Bool("fix", false, "apply suggested fixes, rewriting files in place")
	diffFlag := fs.Bool("diff", false, "preview suggested fixes as a unified diff (no writes)")
	strictIgnores := fs.Bool("strict-ignores", false, "report stale //qlint:ignore directives whose analyzer no longer fires")
	jsonOut := fs.String("json", "", "write findings as JSON to this file")
	githubFlag := fs.Bool("github", false, "emit GitHub Actions ::error annotations alongside diagnostics")
	versionFlag := fs.String("V", "", "print version (go vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print flag definitions as JSON (go vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: qlint [-only analyzers] [-fix | -diff] [-strict-ignores] [-json out] [-github] [dir | ./...]...\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		// go vet caches on the tool's reported version; content-stamping is
		// overkill for an in-repo tool rebuilt by make lint on every run.
		fmt.Fprintln(stdout, "qlint version qusim-dev")
		return 0
	}
	if *flagsFlag {
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	analyzers, err := analysis.Select(splitComma(*only))
	if err != nil {
		fmt.Fprintln(stderr, "qlint:", err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0], analyzers, stderr)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "qlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "qlint:", err)
		return 2
	}

	var units []*analysis.Unit
	for _, pat := range rest {
		switch {
		case pat == "./..." || pat == "...":
			us, err := loader.LoadPackages()
			if err != nil {
				fmt.Fprintln(stderr, "qlint:", err)
				return 2
			}
			units = append(units, us...)
		default:
			us, err := loader.LoadDir(pat)
			if err != nil {
				fmt.Fprintln(stderr, "qlint:", err)
				return 2
			}
			units = append(units, us...)
		}
	}

	cfg := analysis.RunConfig{StrictIgnores: *strictIgnores}
	var diags []analysis.Diagnostic
	for _, u := range units {
		diags = append(diags, analysis.RunUnitCfg(u, analyzers, cfg)...)
	}
	analysis.SortDiagnostics(diags)

	if *diffFlag {
		if code := printFixDiff(diags, loader.Root(), stdout, stderr); code != 0 {
			return code
		}
	}
	if *fixFlag {
		applied, code := applyFixes(diags, stderr)
		if code != 0 {
			return code
		}
		// Fixed diagnostics are resolved; report only what needs a human.
		var rest []analysis.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				rest = append(rest, d)
			}
		}
		if applied > 0 {
			fmt.Fprintf(stderr, "qlint: applied fixes to %d file(s)\n", applied)
		}
		diags = rest
	}

	for _, d := range diags {
		fmt.Fprintln(stdout, relativize(d, loader.Root()))
		if *githubFlag {
			fmt.Fprintln(stdout, githubAnnotation(d, loader.Root()))
		}
	}
	if *jsonOut != "" {
		if err := writeFindingsJSON(*jsonOut, diags, loader.Root()); err != nil {
			fmt.Fprintln(stderr, "qlint:", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "qlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// printFixDiff previews every suggested fix as a unified diff.
func printFixDiff(diags []analysis.Diagnostic, root string, stdout, stderr io.Writer) int {
	contents, err := analysis.ApplyFixes(diags)
	if err != nil {
		fmt.Fprintln(stderr, "qlint:", err)
		return 2
	}
	var files []string
	for f := range contents {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		old, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(stderr, "qlint:", err)
			return 2
		}
		name := f
		if rel, err := filepath.Rel(root, f); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		fmt.Fprint(stdout, analysis.UnifiedDiff(name, old, contents[f]))
	}
	return 0
}

// applyFixes rewrites files with every suggested fix applied, returning
// how many files changed.
func applyFixes(diags []analysis.Diagnostic, stderr io.Writer) (int, int) {
	contents, err := analysis.ApplyFixes(diags)
	if err != nil {
		fmt.Fprintln(stderr, "qlint:", err)
		return 0, 2
	}
	for f, data := range contents {
		mode := os.FileMode(0o644)
		if st, err := os.Stat(f); err == nil {
			mode = st.Mode().Perm()
		}
		if err := os.WriteFile(f, data, mode); err != nil {
			fmt.Fprintln(stderr, "qlint:", err)
			return 0, 2
		}
	}
	return len(contents), 0
}

// githubAnnotation renders a diagnostic as a GitHub Actions workflow
// command so findings surface inline on pull-request diffs.
func githubAnnotation(d analysis.Diagnostic, root string) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("::error file=%s,line=%d,col=%d::%s: %s", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

// writeFindingsJSON writes the findings to path as a JSON array (always
// an array, never null, so consumers can iterate without nil checks).
func writeFindingsJSON(path string, diags []analysis.Diagnostic, root string) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonFinding{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message, Fixable: len(d.Fixes) > 0,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// relativize renders a diagnostic with its path relative to root, for
// stable output regardless of where the checkout lives.
func relativize(d analysis.Diagnostic, root string) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = filepath.ToSlash(rel)
	}
	return d.String()
}

func splitComma(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
