// Command qlint is the repo's domain linter: a multichecker over the
// internal/analysis suite that enforces the simulator's concurrency,
// communication, and durability invariants (DESIGN.md §10).
//
// Standalone use (what `make lint` runs):
//
//	qlint [-only a,b] [dir | ./...]...
//
// Arguments are module-relative package patterns: `./...` (the default)
// lints every package under the module root, and a directory path lints
// that one package directory. Diagnostics print one per line as
//
//	path:line:col: analyzer: message
//
// with paths relative to the module root. Exit status: 0 clean, 1 when
// diagnostics were reported, 2 on usage or load errors.
//
// The binary also speaks the `go vet -vettool` protocol (-V=full, -flags,
// and a vet .cfg file as the sole argument), so the same checks run under
// `go vet -vettool=$(pwd)/bin/qlint ./...` with the toolchain's caching.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"qusim/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	versionFlag := fs.String("V", "", "print version (go vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print flag definitions as JSON (go vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: qlint [-only analyzers] [dir | ./...]...\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		// go vet caches on the tool's reported version; content-stamping is
		// overkill for an in-repo tool rebuilt by make lint on every run.
		fmt.Fprintln(stdout, "qlint version qusim-dev")
		return 0
	}
	if *flagsFlag {
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	analyzers, err := analysis.Select(splitComma(*only))
	if err != nil {
		fmt.Fprintln(stderr, "qlint:", err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0], analyzers, stderr)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "qlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "qlint:", err)
		return 2
	}

	var units []*analysis.Unit
	for _, pat := range rest {
		switch {
		case pat == "./..." || pat == "...":
			us, err := loader.LoadPackages()
			if err != nil {
				fmt.Fprintln(stderr, "qlint:", err)
				return 2
			}
			units = append(units, us...)
		default:
			us, err := loader.LoadDir(pat)
			if err != nil {
				fmt.Fprintln(stderr, "qlint:", err)
				return 2
			}
			units = append(units, us...)
		}
	}

	var diags []analysis.Diagnostic
	for _, u := range units {
		diags = append(diags, analysis.RunUnit(u, analyzers)...)
	}
	analysis.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(stdout, relativize(d, loader.Root()))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "qlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relativize renders a diagnostic with its path relative to root, for
// stable output regardless of where the checkout lives.
func relativize(d analysis.Diagnostic, root string) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = filepath.ToSlash(rel)
	}
	return d.String()
}

func splitComma(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
