package main

import (
	"bytes"
	"testing"
	"time"
)

// qlintBudget is the latency ceiling for a full-repo pass. Lint that
// outgrows it stops being something people run before every push, so the
// benchmark doubles as a regression gate, not just a measurement.
const qlintBudget = 30 * time.Second

// BenchmarkQlint times a cold full-repo lint (loader, type checker, and
// all six analyzers over every package, stdlib type-checked from source).
func BenchmarkQlint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var stdout, stderr bytes.Buffer
		start := time.Now()
		if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
			b.Fatalf("qlint exited %d:\n%s%s", code, stdout.String(), stderr.String())
		}
		if d := time.Since(start); d > qlintBudget {
			b.Fatalf("full-repo lint took %v, over the %v budget", d, qlintBudget)
		}
	}
}
