// Command qsim simulates quantum circuits — single-node or across simulated
// MPI ranks with the paper's scheduling optimizations.
//
// Examples:
//
//	qsim -qubits 20 -depth 25                 # supremacy circuit, 1 rank
//	qsim -qubits 24 -depth 25 -ranks 8        # distributed, 8 ranks
//	qsim -circuit qft -qubits 20              # QFT
//	qsim -file circ.txt -ranks 4 -baseline    # per-gate reference scheme
//	qsim -qubits 24 -ranks 8 -checkpoint-dir ck          # snapshot at stage boundaries
//	qsim -qubits 24 -ranks 8 -checkpoint-dir ck -resume  # continue after a crash
//	qsim -qubits 20 -ranks 4 -trace out.json -metrics    # per-rank trace + metrics dump
//	qsim -qubits 28 -ooc -ooc-chunk 22 -ooc-prefetch 4   # out-of-core, prefetch pipeline
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"time"

	"qusim/internal/circuit"
	"qusim/internal/ckpt"
	"qusim/internal/dist"
	"qusim/internal/f32vec"
	"qusim/internal/kernels"
	"qusim/internal/oocvec"
	"qusim/internal/par"
	"qusim/internal/schedule"
	"qusim/internal/telemetry"
)

func main() {
	var (
		kind      = flag.String("circuit", "supremacy", "circuit family: supremacy, qft, ghz, bv, random")
		qubits    = flag.Int("qubits", 20, "number of qubits")
		depth     = flag.Int("depth", 25, "supremacy circuit depth (clock cycles after the Hadamard layer)")
		seed      = flag.Int64("seed", 0, "random seed")
		ranks     = flag.Int("ranks", 1, "simulated MPI ranks (power of two)")
		kmax      = flag.Int("kmax", 5, "maximum fused-gate size (clamped to local qubits)")
		f32       = flag.Bool("f32", false, "single-precision (complex64) state vector — half the memory per amplitude, single node only")
		baseline  = flag.Bool("baseline", false, "use the per-gate scheme of [5] instead of scheduling")
		spec1q    = flag.Bool("spec1q", false, "specialize diagonal 1-qubit gates (median-hard mode)")
		file      = flag.String("file", "", "read circuit from file (GRCS-like text format)")
		planFile  = flag.String("plan", "", "execute a plan saved by qsched -save instead of scheduling")
		tune      = flag.Bool("tune", false, "run the kernel autotuner first")
		tuneCache = flag.String("tune-cache", "", "with -tune: persist autotuner selections to this JSON file; a warm cache skips the benchmark sweep")
		workers   = flag.Int("workers", 0, "parallel workers per rank (0 = GOMAXPROCS)")
		shots     = flag.Int("sample", 0, "draw this many samples from the output distribution")
		profile   = flag.Bool("profile", false, "print a per-op-kind time breakdown")
		verbose   = flag.Bool("v", false, "print the plan summary")

		ckptDir   = flag.String("checkpoint-dir", "", "commit crash-consistent snapshots into this directory at stage boundaries")
		ckptEvery = flag.Int("checkpoint-every", 1, "snapshot every N completed stages")
		resume    = flag.Bool("resume", false, "resume from the newest valid snapshot in -checkpoint-dir")
		commDL    = flag.Duration("comm-deadline", 0, "abort a run whose collectives stall longer than this (0 = rely on exact dead-rank detection)")

		traceFile = flag.String("trace", "", "write per-rank Chrome trace-event JSON to this file (open in chrome://tracing)")
		metrics   = flag.Bool("metrics", false, "print the telemetry metrics dump after the run")

		ooc         = flag.Bool("ooc", false, "run out-of-core: state in a file, processed in chunks")
		oocChunk    = flag.Int("ooc-chunk", 0, "out-of-core chunk qubits l (2^l amplitudes in memory; default qubits-4)")
		oocPrefetch = flag.Int("ooc-prefetch", 0, "chunks prefetched ahead of compute (0 = reactive, one pass per op)")
		oocDir      = flag.String("ooc-dir", "", "directory for the out-of-core state file (default: system temp)")
	)
	flag.Parse()
	if *workers > 0 {
		par.SetWorkers(*workers)
	}

	// -trace / -metrics arm the telemetry layer across every subsystem; the
	// pool and checkpoint hooks are process-global, the engine hook rides in
	// dist.Options.
	tel := telemetry.Disabled
	if *traceFile != "" || *metrics {
		tel = telemetry.New()
		par.SetTelemetry(tel)
		ckpt.SetTelemetry(tel)
	}

	circ, err := buildCircuit(*kind, *qubits, *depth, *seed, *file)
	if err != nil {
		fatal(err)
	}
	if *ranks < 1 || *ranks&(*ranks-1) != 0 {
		fatal(fmt.Errorf("ranks must be a power of two, got %d", *ranks))
	}
	if *tune {
		var res kernels.TuneResult
		if *tuneCache != "" {
			cached, hit, terr := kernels.TuneCached(*tuneCache, 5, 20, 2)
			if terr != nil {
				fmt.Fprintf(os.Stderr, "qsim: tuner cache: %v\n", terr)
			}
			if hit {
				fmt.Printf("autotuner: cache hit (%s), skipping benchmark sweep\n", *tuneCache)
			} else {
				fmt.Printf("autotuning kernels (cache -> %s)...\n", *tuneCache)
			}
			res = cached
		} else {
			fmt.Println("autotuning kernels...")
			res = kernels.Tune(5, 20, 2)
		}
		for _, t := range res.Timings {
			if t.Best {
				prec := "f64"
				if t.F32 {
					prec = "f32"
				}
				fmt.Printf("  k=%d %s %s-stride -> %s (%.2f ms/sweep)\n",
					t.K, prec, t.Stride, t.Variant, t.NsPerApply/1e6)
			}
		}
	}

	if *f32 {
		if *ranks != 1 || *baseline || *ooc {
			fatal(fmt.Errorf("-f32 runs single-node in memory (not with -ranks > 1, -baseline or -ooc)"))
		}
		runF32(circ, *kmax, *spec1q, *planFile, *verbose)
		flushTelemetry(tel, *traceFile, *metrics)
		return
	}

	if *ooc {
		runOutOfCore(circ, tel, oocOptions{
			chunk: *oocChunk, prefetch: *oocPrefetch, dir: *oocDir,
			kmax: *kmax, spec1q: *spec1q, planFile: *planFile, verbose: *verbose,
			ckptDir: *ckptDir, ckptEvery: *ckptEvery, resume: *resume,
		})
		flushTelemetry(tel, *traceFile, *metrics)
		return
	}

	if *baseline {
		res, err := dist.RunBaseline(circ, dist.BaselineOptions{
			Ranks: *ranks, Init: dist.InitUniform, Specialize2Q: true, Specialize1Q: *spec1q,
			Telemetry: tel,
		})
		if err != nil {
			fatal(err)
		}
		report(circ, res, nil)
		flushTelemetry(tel, *traceFile, *metrics)
		return
	}

	var plan *schedule.Plan
	if *planFile != "" {
		f, err := os.Open(*planFile)
		if err != nil {
			fatal(err)
		}
		plan, err = schedule.ReadPlan(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		g := bits.TrailingZeros(uint(*ranks))
		opts := schedule.DefaultOptions(circ.N - g)
		opts.KMax = clampKMax(*kmax, circ.N-g)
		opts.SpecializeDiagonal1Q = *spec1q
		var err error
		plan, err = schedule.Build(circ, opts)
		if err != nil {
			fatal(err)
		}
	}
	if *verbose {
		fmt.Print(plan.Summary())
	}
	opts := dist.Options{
		Ranks: *ranks, Init: dist.InitUniform,
		SampleShots: *shots, SampleSeed: *seed, Profile: *profile,
		Resume: *resume, CommDeadline: *commDL,
		Telemetry: tel,
	}
	if *ckptDir != "" {
		opts.Checkpoint = &ckpt.Policy{Dir: *ckptDir, EveryStages: *ckptEvery}
	} else if *resume {
		fatal(fmt.Errorf("-resume needs -checkpoint-dir"))
	}
	res, err := dist.Run(plan, opts)
	if err != nil {
		fatal(err)
	}
	report(circ, res, plan)
	if *ckptDir != "" {
		fmt.Printf("ckpt:    %d snapshots committed, %d restored, %d restarts\n",
			res.CheckpointsWritten, res.CheckpointsRestored, res.Restarts)
	}
	if *profile {
		fmt.Println("profile (slowest rank):")
		for _, e := range res.Profile {
			if e.Ops == 0 {
				continue
			}
			fmt.Printf("  %-8s %4d ops  %8.3fs\n", e.Kind, e.Ops, e.Duration.Seconds())
		}
	}
	if *shots > 0 {
		fmt.Printf("samples (%d shots, first 10):\n", *shots)
		for i, b := range res.Samples {
			if i == 10 {
				break
			}
			fmt.Printf("  |%0*b⟩\n", circ.N, b)
		}
	}
	flushTelemetry(tel, *traceFile, *metrics)
}

// flushTelemetry writes the trace file and/or prints the metrics dump once
// the run (scheduled or baseline) has completed.
//
//qlint:ignore atomicrename the trace export is observability output, not checkpoint durability data; a torn write costs a trace, not a snapshot
func flushTelemetry(tel *telemetry.Telemetry, traceFile string, metrics bool) {
	if !tel.Enabled() {
		return
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			fatal(err)
		}
		if err := tel.WriteTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:   %d spans -> %s (open in chrome://tracing)\n", tel.SpanCount(), traceFile)
	}
	if metrics {
		fmt.Println("metrics:")
		if err := tel.WriteMetrics(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

type oocOptions struct {
	chunk, prefetch int
	dir             string
	kmax            int
	spec1q          bool
	planFile        string
	verbose         bool
	ckptDir         string
	ckptEvery       int
	resume          bool
}

// runOutOfCore executes the circuit on the file-backed engine: the plan is
// scheduled at l = chunk local qubits (chunk-index bits play the role of
// the global qubits) and, with -ooc-prefetch > 0, runs through the
// circuit-aware prefetch pipeline.
func runOutOfCore(circ *circuit.Circuit, tel *telemetry.Telemetry, o oocOptions) {
	l := o.chunk
	if l == 0 {
		l = circ.N - 4
	}
	var plan *schedule.Plan
	if o.planFile != "" {
		f, err := os.Open(o.planFile)
		if err != nil {
			fatal(err)
		}
		var perr error
		plan, perr = schedule.ReadPlan(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
	} else {
		opts := schedule.DefaultOptions(l)
		opts.KMax = clampKMax(o.kmax, l)
		opts.SpecializeDiagonal1Q = o.spec1q
		var err error
		plan, err = schedule.Build(circ, opts)
		if err != nil {
			fatal(err)
		}
	}
	if o.verbose {
		fmt.Print(plan.Summary())
	}
	v, err := oocvec.NewUniform(plan.N, plan.L, o.dir)
	if err != nil {
		fatal(err)
	}
	defer v.Close()
	v.SetPrefetch(o.prefetch)
	v.SetTelemetry(tel)

	start := time.Now()
	restored, written := -1, 0
	if o.ckptDir != "" {
		pol := &ckpt.Policy{Dir: o.ckptDir, EveryStages: o.ckptEvery}
		restored, written, err = v.RunCheckpointed(plan, pol, o.resume)
	} else {
		if o.resume {
			fatal(fmt.Errorf("-resume needs -checkpoint-dir"))
		}
		err = v.Run(plan)
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	norm, err := v.Norm()
	if err != nil {
		fatal(err)
	}
	ent, err := v.Entropy()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("circuit: %d qubits, %d gates\n", circ.N, len(circ.Gates))
	fmt.Printf("ooc:     2^%d chunks of 2^%d amplitudes (%.1f MB each), prefetch %d\n",
		plan.N-plan.L, plan.L, float64(uint64(16)<<plan.L)/1e6, v.Prefetch())
	fmt.Printf("plan:    %d stages, %d swaps, %d clusters (%.1f gates/cluster), %d diag ops\n",
		plan.Stats.Stages, plan.Stats.Swaps, plan.Stats.Clusters,
		plan.Stats.GatesPerCluster, plan.Stats.DiagonalOps)
	fmt.Printf("result:  norm=%.12f entropy=%.6f nats\n", norm, ent)
	fmt.Printf("time:    %.3fs total\n", elapsed.Seconds())
	if reg := tel.Registry(); reg != nil {
		hits := reg.Counter("oocvec.prefetch_hits").Value()
		misses := reg.Counter("oocvec.prefetch_misses").Value()
		if hits+misses > 0 {
			fmt.Printf("io:      %d chunks read, %d written, prefetch hits %d/%d (%.1f%%)\n",
				reg.Counter("oocvec.chunks_read").Value(),
				reg.Counter("oocvec.chunks_written").Value(),
				hits, hits+misses, 100*float64(hits)/float64(hits+misses))
		}
	}
	if o.ckptDir != "" {
		resumedFrom := "fresh start"
		if restored >= 0 {
			resumedFrom = fmt.Sprintf("resumed at stage %d", restored)
		}
		fmt.Printf("ckpt:    %d snapshots committed, %s\n", written, resumedFrom)
	}
}

// clampKMax bounds the -kmax flag by the local-qubit count so small runs
// still validate.
func clampKMax(kmax, l int) int {
	if kmax > l {
		return l
	}
	return kmax
}

// runF32 executes the circuit on the single-precision in-memory state — the
// paper's Sec. 5 outlook (half the bytes per amplitude, one more qubit in
// the same memory) — through the fused single-node schedule.
func runF32(circ *circuit.Circuit, kmax int, spec1q bool, planFile string, verbose bool) {
	var plan *schedule.Plan
	if planFile != "" {
		f, err := os.Open(planFile)
		if err != nil {
			fatal(err)
		}
		var perr error
		plan, perr = schedule.ReadPlan(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
	} else {
		opts := schedule.DefaultOptions(circ.N)
		opts.KMax = clampKMax(kmax, circ.N)
		opts.SpecializeDiagonal1Q = spec1q
		var err error
		plan, err = schedule.Build(circ, opts)
		if err != nil {
			fatal(err)
		}
	}
	if verbose {
		fmt.Print(plan.Summary())
	}
	v := f32vec.NewUniform(circ.N)
	start := time.Now()
	if err := v.RunPlan(plan); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("circuit: %d qubits, %d gates\n", circ.N, len(circ.Gates))
	fmt.Printf("f32:     2^%d complex64 amplitudes, %.1f MB (%.1f MB in double precision)\n",
		circ.N, float64(uint64(f32vec.BytesPerAmplitude)<<circ.N)/1e6, float64(uint64(16)<<circ.N)/1e6)
	fmt.Printf("plan:    %d stages, %d swaps, %d clusters (%.1f gates/cluster), %d diag ops\n",
		plan.Stats.Stages, plan.Stats.Swaps, plan.Stats.Clusters,
		plan.Stats.GatesPerCluster, plan.Stats.DiagonalOps)
	fmt.Printf("result:  norm=%.7f entropy=%.6f nats\n", v.Norm(), v.Entropy())
	fmt.Printf("time:    %.3fs total\n", elapsed.Seconds())
}

func buildCircuit(kind string, qubits, depth int, seed int64, file string) (*circuit.Circuit, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.ReadText(f)
	}
	switch kind {
	case "supremacy":
		r, c := circuit.GridForQubits(qubits)
		return circuit.Supremacy(circuit.SupremacyOptions{
			Rows: r, Cols: c, Depth: depth, Seed: seed, SkipInitialH: true, OmitFinalCZs: true,
		}), nil
	case "qft":
		return circuit.QFT(qubits), nil
	case "ghz":
		return circuit.GHZ(qubits), nil
	case "bv":
		return circuit.BernsteinVazirani(qubits, int(seed)%(1<<qubits)), nil
	case "random":
		return circuit.RandomCircuit(qubits, 12*qubits, seed), nil
	}
	return nil, fmt.Errorf("unknown circuit family %q (want supremacy, qft, ghz, bv or random)", kind)
}

func report(c *circuit.Circuit, res *dist.Result, plan *schedule.Plan) {
	fmt.Printf("circuit: %d qubits, %d gates\n", c.N, len(c.Gates))
	fmt.Printf("ranks:   %d (2^%d amplitudes each)\n", res.Ranks, res.LocalQubits)
	if plan != nil {
		fmt.Printf("plan:    %d stages, %d swaps, %d clusters (%.1f gates/cluster), %d diag ops\n",
			plan.Stats.Stages, plan.Stats.Swaps, plan.Stats.Clusters,
			plan.Stats.GatesPerCluster, plan.Stats.DiagonalOps)
	}
	fmt.Printf("result:  norm=%.12f entropy=%.6f nats\n", res.Norm, res.Entropy)
	fmt.Printf("time:    %.3fs total, %.3fs comm (%.1f%%)\n",
		res.Elapsed.Seconds(), res.CommElapsed.Seconds(),
		100*res.CommElapsed.Seconds()/res.Elapsed.Seconds())
	fmt.Printf("comm:    %d steps, %.1f MB\n", res.CommSteps, float64(res.CommBytes)/1e6)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qsim: %v\n", err)
	os.Exit(1)
}
