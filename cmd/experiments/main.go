// Command experiments regenerates the tables and figures of Häner &
// Steiger, SC'17 (see DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments list             # list available experiments
//	experiments all [-quick]     # run everything
//	experiments fig5a table1 …   # run selected experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"qusim/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "shrink state sizes and sweeps for a fast run")
	seed := flag.Int64("seed", 0, "circuit-generator seed")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := harness.Config{Quick: *quick, Seed: *seed}

	switch args[0] {
	case "list":
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		for _, e := range harness.All() {
			fmt.Printf("\n########## %s: %s ##########\n", e.ID, e.Title)
			if err := e.Run(os.Stdout, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		return
	}
	for _, id := range args {
		e, ok := harness.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try 'experiments list')\n", id)
			os.Exit(2)
		}
		fmt.Printf("\n########## %s: %s ##########\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: experiments [-quick] [-seed N] <list | all | id...>

Regenerates the paper's tables and figures. Available ids:
`)
	for _, e := range harness.All() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.ID, e.Title)
	}
}
