package qusim

import (
	"math"
	"math/rand"
	"testing"
)

// Tests of the public facade: everything an external user touches.

func TestPublicQuickstartFlow(t *testing.T) {
	c := NewCircuit(2)
	c.Append(H(0))
	c.Append(CNOT(0, 1))
	st := NewState(2)
	Simulate(c, st)
	if math.Abs(st.Probability(0)-0.5) > 1e-12 || math.Abs(st.Probability(3)-0.5) > 1e-12 {
		t.Errorf("Bell state probabilities: %v %v", st.Probability(0), st.Probability(3))
	}
}

func TestPublicDistributedFlow(t *testing.T) {
	c := Supremacy(SupremacyOptions{Rows: 4, Cols: 3, Depth: 16, Seed: 1, SkipInitialH: true})
	plan, err := Schedule(c, DefaultScheduleOptions(c.N-2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDistributed(plan, DistOptions{Ranks: 4, Init: InitUniform})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Norm-1) > 1e-9 {
		t.Errorf("norm %v", res.Norm)
	}
	st := NewUniformState(c.N)
	Simulate(c, st)
	if math.Abs(res.Entropy-st.Entropy()) > 1e-9 {
		t.Errorf("distributed entropy %v vs single-node %v", res.Entropy, st.Entropy())
	}
}

func TestPublicBaselineFlow(t *testing.T) {
	c := Supremacy(SupremacyOptions{Rows: 3, Cols: 3, Depth: 12, Seed: 2, SkipInitialH: true})
	res, err := RunBaseline(c, BaselineOptions{Ranks: 4, Init: InitUniform, Specialize2Q: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Norm-1) > 1e-9 {
		t.Errorf("norm %v", res.Norm)
	}
}

func TestPublicCircuitFamilies(t *testing.T) {
	if got := QFT(5); got.N != 5 || len(got.Gates) != 15 {
		t.Errorf("QFT(5): n=%d gates=%d", got.N, len(got.Gates))
	}
	if got := GHZ(6); got.N != 6 || len(got.Gates) != 6 {
		t.Errorf("GHZ(6): n=%d gates=%d", got.N, len(got.Gates))
	}
	g := Grover(4, 7, 3)
	st := NewState(4)
	Simulate(g, st)
	if st.Probability(7) < 0.9 {
		t.Errorf("Grover P(marked) = %v", st.Probability(7))
	}
	for _, n := range []int{30, 36, 42, 45, 49} {
		r, c := GridForQubits(n)
		if r*c != n {
			t.Errorf("GridForQubits(%d) = %dx%d", n, r, c)
		}
	}
}

func TestPublicGateConstructors(t *testing.T) {
	gates := []Gate{H(0), X(0), Y(0), Z(0), S(0), T(0), XHalf(0), YHalf(0),
		Rz(0, 0.5), CZ(0, 1), CNOT(0, 1), Swap(0, 1)}
	c := NewCircuit(2)
	c.Append(gates...)
	st := NewState(2)
	Simulate(c, st)
	if math.Abs(st.Norm()-1) > 1e-12 {
		t.Errorf("norm after all constructors: %v", st.Norm())
	}
}

func TestPublicTune(t *testing.T) {
	Tune(2, 12) // must not panic and must leave kernels functional
	st := NewState(6)
	c := GHZ(6)
	Simulate(c, st)
	if math.Abs(st.Norm()-1) > 1e-12 {
		t.Errorf("norm after tuning: %v", st.Norm())
	}
}

func TestPublicNoiseAndXEB(t *testing.T) {
	// Depth 28 so the output distribution has converged to Porter–Thomas
	// (linear XEB ≈ 1 only holds in the chaotic regime).
	c := Supremacy(SupremacyOptions{Rows: 3, Cols: 3, Depth: 28, Seed: 4})
	rng := rand.New(rand.NewSource(1))
	res, err := SimulateNoisy(c, DepolarizingNoise(0.01), 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanFidelity <= 0 || res.MeanFidelity > 1+1e-12 {
		t.Errorf("mean fidelity %v", res.MeanFidelity)
	}
	ideal := NewState(c.N)
	Simulate(c, ideal)
	probs := ideal.Probabilities()
	lin, err := LinearXEB(c.N, probs, ideal.Sample(rng, 20000))
	if err != nil {
		t.Fatal(err)
	}
	// For an ideal sampler the estimator converges to 2^n·Σp² − 1 (≈ 1 in
	// the Porter–Thomas limit; instance-specific for 9 qubits).
	var sum2 float64
	for _, p := range probs {
		sum2 += p * p
	}
	want := math.Pow(2, float64(c.N))*sum2 - 1
	if math.Abs(lin-want) > 0.15 {
		t.Errorf("linear XEB of ideal samples %v, instance value %v", lin, want)
	}
	if pt := PorterThomasEntropy(9); math.Abs(pt-(9*math.Ln2-1+0.5772156649)) > 1e-9 {
		t.Errorf("PorterThomasEntropy(9) = %v", pt)
	}
}

func TestPublicEmulateQFT(t *testing.T) {
	n := 8
	a := NewState(n)
	a.Apply(X(2).Matrix(), 2)
	b := a.Clone()
	Simulate(QFT(n), a)
	EmulateQFT(b)
	if d := a.MaxDiff(b); d > 1e-9 {
		t.Errorf("EmulateQFT vs gate QFT: %g", d)
	}
}
