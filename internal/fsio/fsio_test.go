package fsio

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSRoundTrip drives the full interface surface through the OS
// implementation: temp create, positional and sequential I/O, sync,
// rename, read-back, remove.
func TestOSRoundTrip(t *testing.T) {
	var fs FS = OS{}
	dir := filepath.Join(t.TempDir(), "sub")
	if err := fs.MkdirAll(dir); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	f, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.WriteAt([]byte("world"), 6); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	tmp := f.Name()
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	final := filepath.Join(dir, "final.txt")
	if err := fs.Rename(tmp, final); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	blob, err := fs.ReadFile(final)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(blob) != "hello world" {
		t.Fatalf("read back %q", blob)
	}
	g, err := fs.Open(final)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := g.ReadAt(buf, 6); err != nil || string(buf) != "world" {
		t.Fatalf("ReadAt: %q, %v", buf, err)
	}
	g.Close()
	if err := fs.Remove(final); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(final); !os.IsNotExist(err) {
		t.Fatalf("file survived Remove: %v", err)
	}
}

func TestErrorClassification(t *testing.T) {
	cases := []struct {
		err       error
		noSpace   bool
		transient bool
	}{
		{ErrNoSpace, true, false},
		{fmt.Errorf("wrapped: %w", ErrNoSpace), true, false},
		{syscall.ENOSPC, true, false},
		{&os.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}, true, false},
		{ErrTransient, false, true},
		{fmt.Errorf("wrapped: %w", ErrTransient), false, true},
		{syscall.EINTR, false, true},
		{syscall.EAGAIN, false, true},
		{os.ErrNotExist, false, false},
		{nil, false, false},
	}
	for _, c := range cases {
		if got := IsNoSpace(c.err); got != c.noSpace {
			t.Errorf("IsNoSpace(%v) = %v, want %v", c.err, got, c.noSpace)
		}
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.transient)
		}
	}
}
