// Package fsio is the narrow file-ops seam between the durability layers
// (internal/ckpt, internal/oocvec) and the operating system. Production
// code runs on the OS implementation; the chaos layer (internal/chaos)
// substitutes an injecting implementation that fails or degrades
// individual operations deterministically — ENOSPC, torn writes,
// transient read errors, slow I/O — without touching the code under test.
//
// The interface is deliberately small: only the calls the snapshot and
// out-of-core write/read paths actually make. Read-only directory walks
// (filepath.Glob) stay on the standard library — listing a directory is
// not a failure mode the fault model covers.
//
// The package also owns the error taxonomy the graceful-degradation
// policies dispatch on: IsNoSpace (degrade — prune or skip, never abort)
// and IsTransient (retry with bounded backoff before surfacing).
package fsio

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the subset of *os.File the snapshot and chunk I/O paths use.
// Positional reads/writes must be safe for concurrent use on distinct
// offsets, matching *os.File semantics.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Name returns the path the file was opened or created with.
	Name() string
	// Sync flushes the file to stable storage.
	Sync() error
}

// FS is the injectable file-operation set. All paths are interpreted as
// the os package would.
type FS interface {
	MkdirAll(dir string) error
	// CreateTemp creates a new temp file in dir (pattern as os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory so a completed rename survives power loss.
	// Best-effort: some platforms/filesystems reject directory fsync.
	SyncDir(dir string) error
}

// OS is the production FS: direct delegation to package os.
type OS struct{}

func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrNoSpace is the injectable stand-in for a full filesystem. Injected
// faults wrap it; real kernels return syscall.ENOSPC — IsNoSpace matches
// both.
var ErrNoSpace = errors.New("fsio: no space left on device")

// IsNoSpace reports whether err is a filesystem-full condition (injected
// or real). The degradation policy for it is "reclaim or skip, never
// abort": checkpointing is an optimization for recovery, not a
// correctness requirement of a healthy run.
func IsNoSpace(err error) bool {
	return errors.Is(err, ErrNoSpace) || errors.Is(err, syscall.ENOSPC)
}

// ErrTransient is the injectable stand-in for a transient I/O error — the
// class a bounded retry is expected to clear (interrupted syscall,
// momentary device hiccup). Real kernels surface EINTR/EAGAIN.
var ErrTransient = errors.New("fsio: transient i/o error")

// IsTransient reports whether err is worth retrying with bounded backoff
// before surfacing.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}
