package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text serialization in the GRCS-like format used for the Google random
// circuit instances: the first line is the qubit count; every following
// line is "<cycle> <gate> <qubit...>" with optional "(<param>)" for
// parameterized gates. Custom-matrix gates are not representable.

// WriteText serializes c.
func WriteText(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, c.N); err != nil {
		return err
	}
	for _, g := range c.Gates {
		if g.Kind == KindUnitary || g.Kind == KindDiag {
			return fmt.Errorf("circuit: cannot serialize custom-matrix gate %v", g)
		}
		name := g.Kind.String()
		if g.Kind == KindRz || g.Kind == KindPhase || g.Kind == KindCPhase {
			name = fmt.Sprintf("%s(%.17g)", name, g.Param)
		}
		qs := make([]string, len(g.Qubits))
		for i, q := range g.Qubits {
			qs[i] = strconv.Itoa(q)
		}
		if _, err := fmt.Fprintf(bw, "%d %s %s\n", g.Cycle, name, strings.Join(qs, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, s := range kindNames {
		m[s] = k
	}
	return m
}()

// ReadText parses the format written by WriteText.
func ReadText(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("circuit: empty input")
	}
	n, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil {
		return nil, fmt.Errorf("circuit: bad qubit count: %v", err)
	}
	c := NewCircuit(n)
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("circuit: line %d: want '<cycle> <gate> <qubits...>'", line)
		}
		cycle, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("circuit: line %d: bad cycle: %v", line, err)
		}
		name := fields[1]
		param := 0.0
		if i := strings.IndexByte(name, '('); i >= 0 {
			if !strings.HasSuffix(name, ")") {
				return nil, fmt.Errorf("circuit: line %d: unterminated parameter", line)
			}
			param, err = strconv.ParseFloat(name[i+1:len(name)-1], 64)
			if err != nil {
				return nil, fmt.Errorf("circuit: line %d: bad parameter: %v", line, err)
			}
			name = name[:i]
		}
		kind, ok := kindByName[name]
		if !ok {
			return nil, fmt.Errorf("circuit: line %d: unknown gate %q", line, name)
		}
		qubits := make([]int, len(fields)-2)
		for i, f := range fields[2:] {
			qubits[i], err = strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("circuit: line %d: bad qubit %q: %v", line, f, err)
			}
		}
		g := Gate{Kind: kind, Qubits: qubits, Param: param, Cycle: cycle}
		func() {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("circuit: line %d: %v", line, p)
				}
			}()
			c.Append(g)
		}()
		if err != nil {
			return nil, err
		}
	}
	return c, sc.Err()
}
