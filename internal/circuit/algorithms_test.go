package circuit

import (
	"math"
	"testing"

	"qusim/internal/statevec"
)

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	for _, secret := range []int{0, 1, 0b1011, 0b111111} {
		n := 6
		c := BernsteinVazirani(n, secret)
		v := run(c)
		if p := v.Probability(secret); math.Abs(p-1) > 1e-10 {
			t.Errorf("secret %06b: P = %v, want 1", secret, p)
		}
	}
}

func TestBernsteinVaziraniIsMostlyDiagonal(t *testing.T) {
	c := BernsteinVazirani(8, 0b10110101)
	diag := c.CountDiagonal()
	if diag != 5 { // popcount of the secret
		t.Errorf("expected 5 Z gates, found %d diagonal gates", diag)
	}
}

func TestPhaseEstimationExact(t *testing.T) {
	// φ = k/2^t is represented exactly: the counting register reads k.
	t0 := 5
	for _, k := range []int{0, 1, 7, 19, 31} {
		phi := float64(k) / 32
		c := PhaseEstimation(t0, phi)
		v := run(c)
		// Counting register is qubits 0..t-1, estimate read directly.
		best, bestP := -1, 0.0
		for b := 0; b < 1<<t0; b++ {
			p := v.Probability(b | 1<<t0) // target qubit stays |1⟩
			if p > bestP {
				best, bestP = b, p
			}
		}
		if best != k || bestP < 0.99 {
			t.Errorf("phi=%d/32: estimated %d with P=%v", k, best, bestP)
		}
	}
}

func TestPhaseEstimationInexactPeaksNearby(t *testing.T) {
	t0 := 6
	phi := 0.3 // not a multiple of 1/64; the peak must be at round(0.3·64) = 19
	c := PhaseEstimation(t0, phi)
	v := run(c)
	best, bestP := -1, 0.0
	for b := 0; b < 1<<t0; b++ {
		p := v.Probability(b | 1<<t0)
		if p > bestP {
			best, bestP = b, p
		}
	}
	if best != 19 {
		t.Errorf("phi=0.3: peak at %d, want 19 (P=%v)", best, bestP)
	}
	if bestP < 0.4 {
		t.Errorf("peak probability %v suspiciously low", bestP)
	}
}

func TestRandomCircuitDeterministic(t *testing.T) {
	a := RandomCircuit(8, 50, 3)
	b := RandomCircuit(8, 50, 3)
	if len(a.Gates) != 50 || len(b.Gates) != 50 {
		t.Fatalf("gate counts %d, %d", len(a.Gates), len(b.Gates))
	}
	for i := range a.Gates {
		if a.Gates[i].String() != b.Gates[i].String() {
			t.Fatalf("gate %d differs", i)
		}
	}
	c := RandomCircuit(8, 50, 4)
	diff := false
	for i := range a.Gates {
		if a.Gates[i].String() != c.Gates[i].String() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds gave identical circuits")
	}
}

func TestRandomCircuitNormPreserved(t *testing.T) {
	c := RandomCircuit(8, 60, 5)
	v := statevec.New(8)
	for i := range c.Gates {
		g := &c.Gates[i]
		v.Apply(g.Matrix(), g.Qubits...)
	}
	if math.Abs(v.Norm()-1) > 1e-10 {
		t.Errorf("norm %v", v.Norm())
	}
}
