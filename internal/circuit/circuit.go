// Package circuit defines the quantum circuit intermediate representation
// used by the scheduler and the simulators, and generators for the circuit
// families evaluated in the paper — most importantly the low-depth random
// quantum supremacy circuits of Boixo et al. reconstructed from the rules in
// Fig. 1 of Häner & Steiger, SC'17.
package circuit

import (
	"fmt"
	"strings"

	"qusim/internal/gate"
)

// Kind identifies a gate type.
type Kind int

const (
	KindH Kind = iota
	KindX
	KindY
	KindZ
	KindS
	KindT
	KindXHalf
	KindYHalf
	KindRz     // Param = θ
	KindPhase  // Param = θ, diag(1, e^{iθ})
	KindCZ     // symmetric
	KindCPhase // Param = θ, diag(1,1,1,e^{iθ})
	KindCNOT   // Qubits[0] = target, Qubits[1] = control
	KindSwap
	KindUnitary // Custom matrix
	KindDiag    // Custom diagonal matrix
)

var kindNames = map[Kind]string{
	KindH: "h", KindX: "x", KindY: "y", KindZ: "z", KindS: "s", KindT: "t",
	KindXHalf: "x_1_2", KindYHalf: "y_1_2", KindRz: "rz", KindPhase: "p",
	KindCZ: "cz", KindCPhase: "cp", KindCNOT: "cnot", KindSwap: "swap",
	KindUnitary: "u", KindDiag: "diag",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Gate is one operation of a circuit. Gate-local qubit j of the matrix acts
// on Qubits[j]; use the constructors below to get the ordering right.
type Gate struct {
	Kind   Kind
	Qubits []int
	Param  float64
	Custom *gate.Matrix // for KindUnitary and KindDiag
	Cycle  int          // clock cycle the generator placed this gate in (metadata)
}

// Constructors ---------------------------------------------------------------

func NewH(q int) Gate     { return Gate{Kind: KindH, Qubits: []int{q}} }
func NewX(q int) Gate     { return Gate{Kind: KindX, Qubits: []int{q}} }
func NewY(q int) Gate     { return Gate{Kind: KindY, Qubits: []int{q}} }
func NewZ(q int) Gate     { return Gate{Kind: KindZ, Qubits: []int{q}} }
func NewS(q int) Gate     { return Gate{Kind: KindS, Qubits: []int{q}} }
func NewT(q int) Gate     { return Gate{Kind: KindT, Qubits: []int{q}} }
func NewXHalf(q int) Gate { return Gate{Kind: KindXHalf, Qubits: []int{q}} }
func NewYHalf(q int) Gate { return Gate{Kind: KindYHalf, Qubits: []int{q}} }

func NewRz(q int, theta float64) Gate { return Gate{Kind: KindRz, Qubits: []int{q}, Param: theta} }
func NewPhase(q int, theta float64) Gate {
	return Gate{Kind: KindPhase, Qubits: []int{q}, Param: theta}
}

// NewCZ returns a controlled-Z between a and b (symmetric).
func NewCZ(a, b int) Gate { return Gate{Kind: KindCZ, Qubits: []int{a, b}} }

// NewCPhase returns a controlled-phase between a and b (symmetric).
func NewCPhase(a, b int, theta float64) Gate {
	return Gate{Kind: KindCPhase, Qubits: []int{a, b}, Param: theta}
}

// NewCNOT returns a CNOT with the given control and target qubits.
func NewCNOT(control, target int) Gate {
	return Gate{Kind: KindCNOT, Qubits: []int{target, control}}
}

// NewSwap returns a SWAP of a and b.
func NewSwap(a, b int) Gate { return Gate{Kind: KindSwap, Qubits: []int{a, b}} }

// NewUnitary wraps an arbitrary unitary on the given qubits.
func NewUnitary(m gate.Matrix, qubits ...int) Gate {
	if m.K != len(qubits) {
		panic(fmt.Sprintf("circuit: %d qubits for %d-qubit unitary", len(qubits), m.K))
	}
	return Gate{Kind: KindUnitary, Qubits: qubits, Custom: &m}
}

// NewDiag wraps an arbitrary diagonal unitary on the given qubits.
func NewDiag(m gate.Matrix, qubits ...int) Gate {
	if m.K != len(qubits) {
		panic(fmt.Sprintf("circuit: %d qubits for %d-qubit diagonal", len(qubits), m.K))
	}
	if !m.IsDiagonal(1e-12) {
		panic("circuit: NewDiag matrix is not diagonal")
	}
	return Gate{Kind: KindDiag, Qubits: qubits, Custom: &m}
}

// Matrix returns the unitary of g, with gate-local qubit j ↔ g.Qubits[j].
func (g Gate) Matrix() gate.Matrix {
	switch g.Kind {
	case KindH:
		return gate.H()
	case KindX:
		return gate.X()
	case KindY:
		return gate.Y()
	case KindZ:
		return gate.Z()
	case KindS:
		return gate.S()
	case KindT:
		return gate.T()
	case KindXHalf:
		return gate.XHalf()
	case KindYHalf:
		return gate.YHalf()
	case KindRz:
		return gate.Rz(g.Param)
	case KindPhase:
		return gate.Phase(g.Param)
	case KindCZ:
		return gate.CZ()
	case KindCPhase:
		return gate.CPhase(g.Param)
	case KindCNOT:
		return gate.CNOT()
	case KindSwap:
		return gate.Swap()
	case KindUnitary, KindDiag:
		return *g.Custom
	}
	panic(fmt.Sprintf("circuit: no matrix for kind %v", g.Kind))
}

// IsDiagonal reports whether g's unitary is diagonal — the property that
// lets gate specialization (Sec. 3.5) run it on global qubits without
// communication.
func (g Gate) IsDiagonal() bool {
	switch g.Kind {
	case KindZ, KindS, KindT, KindRz, KindPhase, KindCZ, KindCPhase, KindDiag:
		return true
	case KindUnitary:
		return g.Custom.IsDiagonal(1e-12)
	}
	return false
}

// K returns the number of qubits g acts on.
func (g Gate) K() int { return len(g.Qubits) }

func (g Gate) String() string {
	qs := make([]string, len(g.Qubits))
	for i, q := range g.Qubits {
		qs[i] = fmt.Sprint(q)
	}
	if g.Kind == KindRz || g.Kind == KindPhase || g.Kind == KindCPhase {
		return fmt.Sprintf("%v(%g) %s", g.Kind, g.Param, strings.Join(qs, " "))
	}
	return fmt.Sprintf("%v %s", g.Kind, strings.Join(qs, " "))
}

// Circuit is an ordered gate list on N qubits.
type Circuit struct {
	N     int
	Gates []Gate
	Name  string
}

// New returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return &Circuit{N: n} }

// Append adds gates in program order, validating qubit indices.
func (c *Circuit) Append(gs ...Gate) {
	for _, g := range gs {
		for _, q := range g.Qubits {
			if q < 0 || q >= c.N {
				panic(fmt.Sprintf("circuit: qubit %d out of range for n=%d in %v", q, c.N, g))
			}
		}
		seen := map[int]bool{}
		for _, q := range g.Qubits {
			if seen[q] {
				panic(fmt.Sprintf("circuit: duplicate qubit in %v", g))
			}
			seen[q] = true
		}
		c.Gates = append(c.Gates, g)
	}
}

// CountKind returns the number of gates of the given kind.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// CountDiagonal returns the number of diagonal gates.
func (c *Circuit) CountDiagonal() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsDiagonal() {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the longest chain of gates sharing
// qubits (each gate depth-1).
func (c *Circuit) Depth() int {
	level := make([]int, c.N)
	max := 0
	for _, g := range c.Gates {
		d := 0
		for _, q := range g.Qubits {
			if level[q] > d {
				d = level[q]
			}
		}
		d++
		for _, q := range g.Qubits {
			level[q] = d
		}
		if d > max {
			max = d
		}
	}
	return max
}

func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %q: n=%d, %d gates\n", c.Name, c.N, len(c.Gates))
	for i, g := range c.Gates {
		fmt.Fprintf(&b, "%4d: %v\n", i, g)
	}
	return b.String()
}
