package circuit

import (
	"math"

	"qusim/internal/gate"
)

// QFT returns the quantum Fourier transform on n qubits (without the final
// bit reversal; callers can use statevec.ReverseBits). Its controlled-phase
// gates are diagonal, making it a useful stress test for the gate
// specialization path.
func QFT(n int) *Circuit {
	c := NewCircuit(n)
	c.Name = "qft"
	for i := n - 1; i >= 0; i-- {
		c.Append(NewH(i))
		for j := i - 1; j >= 0; j-- {
			c.Append(NewCPhase(i, j, math.Pi/float64(int(1)<<uint(i-j))))
		}
	}
	return c
}

// InverseQFT returns the inverse QFT (again without bit reversal).
func InverseQFT(n int) *Circuit {
	q := QFT(n)
	c := NewCircuit(n)
	c.Name = "iqft"
	for i := len(q.Gates) - 1; i >= 0; i-- {
		g := q.Gates[i]
		switch g.Kind {
		case KindH:
			c.Append(g)
		case KindCPhase:
			c.Append(NewCPhase(g.Qubits[0], g.Qubits[1], -g.Param))
		}
	}
	return c
}

// GHZ returns the circuit preparing (|0…0⟩ + |1…1⟩)/√2.
func GHZ(n int) *Circuit {
	c := NewCircuit(n)
	c.Name = "ghz"
	c.Append(NewH(0))
	for q := 1; q < n; q++ {
		c.Append(NewCNOT(q-1, q))
	}
	return c
}

// Grover returns iters iterations of Grover search for the marked basis
// state on n qubits, starting from |0…0⟩ (the circuit includes the initial
// Hadamard layer). The oracle and the zero-reflection are expressed as
// n-qubit diagonal gates, which the simulator's diagonal fast path executes
// in a single sweep.
func Grover(n, marked, iters int) *Circuit {
	c := NewCircuit(n)
	c.Name = "grover"
	all := make([]int, n)
	for q := range all {
		all[q] = q
		c.Append(NewH(q))
	}
	oracle := gate.Identity(n)
	oracle.Set(marked, marked, -1)
	reflect0 := gate.Identity(n)
	reflect0.Set(0, 0, -1)
	for it := 0; it < iters; it++ {
		c.Append(NewDiag(oracle, all...))
		for q := 0; q < n; q++ {
			c.Append(NewH(q))
		}
		c.Append(NewDiag(reflect0, all...))
		for q := 0; q < n; q++ {
			c.Append(NewH(q))
		}
	}
	return c
}

// GroverOptimalIters returns the iteration count ⌊π/4·√(2^n)⌋ maximizing
// the success probability.
func GroverOptimalIters(n int) int {
	return int(math.Floor(math.Pi / 4 * math.Sqrt(float64(int(1)<<uint(n)))))
}
