package circuit

import (
	"fmt"
	"math/rand"
)

// Quantum supremacy circuit generator following the construction of Fig. 1
// (Boixo et al. [5] as restated by Häner & Steiger):
//
//   - clock cycle 0 applies a Hadamard to every qubit of an R×C grid;
//   - cycles 1,2,… apply one of eight CZ patterns, repeating every eight
//     cycles, such that every nearest-neighbour pair interacts exactly once
//     per eight cycles and each cycle's CZ set is a matching;
//   - in addition, a single-qubit gate is applied in cycle t to every qubit
//     that performed a CZ in cycle t−1 but not in cycle t. The gate is drawn
//     from {T, X^1/2, Y^1/2}, except that a qubit's first single-qubit gate
//     after the initial Hadamard is always T, and a randomly drawn gate must
//     differ from the previous single-qubit gate on that qubit.
//
// Google's exact eight CZ layouts are not spelled out in the text; we
// reconstruct them as eight matchings — four parity classes per bond
// orientation, interleaved — which satisfies every structural property the
// paper states and tests enforce (see DESIGN.md for the substitution note).

// Bond is an undirected grid edge between two qubit indices (A < B).
type Bond struct{ A, B int }

// Layout describes the 2D nearest-neighbour grid and its CZ schedule.
type Layout struct {
	Rows, Cols int
}

// Qubit returns the linear index of grid position (r, c), row-major.
func (l Layout) Qubit(r, c int) int { return r*l.Cols + c }

// N returns the number of qubits.
func (l Layout) N() int { return l.Rows * l.Cols }

// AllBonds returns every nearest-neighbour edge of the grid.
func (l Layout) AllBonds() []Bond {
	var bonds []Bond
	for r := 0; r < l.Rows; r++ {
		for c := 0; c < l.Cols; c++ {
			if c+1 < l.Cols {
				bonds = append(bonds, Bond{l.Qubit(r, c), l.Qubit(r, c+1)})
			}
			if r+1 < l.Rows {
				bonds = append(bonds, Bond{l.Qubit(r, c), l.Qubit(r+1, c)})
			}
		}
	}
	return bonds
}

// patternOrder interleaves vertical and horizontal parity classes so that
// consecutive cycles alternate bond orientation, as in Fig. 1.
var patternOrder = [8]struct {
	vertical bool
	class    int // 2·parityMajor + parityMinor
}{
	{true, 0}, {false, 0}, {true, 3}, {false, 3},
	{true, 1}, {false, 1}, {true, 2}, {false, 2},
}

// CZPattern returns the CZ bonds applied in clock cycle t (t ≥ 1). The
// pattern repeats with period 8.
func (l Layout) CZPattern(t int) []Bond {
	if t < 1 {
		return nil
	}
	p := patternOrder[(t-1)%8]
	var bonds []Bond
	for r := 0; r < l.Rows; r++ {
		for c := 0; c < l.Cols; c++ {
			if p.vertical {
				if r+1 < l.Rows && 2*(r%2)+(c%2) == p.class {
					bonds = append(bonds, Bond{l.Qubit(r, c), l.Qubit(r+1, c)})
				}
			} else {
				if c+1 < l.Cols && 2*(c%2)+(r%2) == p.class {
					bonds = append(bonds, Bond{l.Qubit(r, c), l.Qubit(r, c+1)})
				}
			}
		}
	}
	return bonds
}

// SupremacyOptions configures the generator.
type SupremacyOptions struct {
	Rows, Cols int
	// Depth is the number of clock cycles after the initial Hadamard layer
	// (cycles 1…Depth carry CZ patterns). A "depth-25 circuit" in the
	// paper's experiments is Depth = 25.
	Depth int
	Seed  int64
	// SkipInitialH omits the cycle-0 Hadamards; the simulator then starts
	// from the uniform state directly (Sec. 3.6).
	SkipInitialH bool
	// OmitFinalCZs drops CZ gates in the last cycle, mirroring the
	// simulator optimization that final CZs do not change probabilities
	// (Sec. 3.6).
	OmitFinalCZs bool
}

// Supremacy generates a random quantum supremacy circuit.
func Supremacy(opts SupremacyOptions) *Circuit {
	if opts.Rows < 1 || opts.Cols < 1 {
		panic("circuit: supremacy grid must be at least 1×1")
	}
	l := Layout{Rows: opts.Rows, Cols: opts.Cols}
	n := l.N()
	rng := rand.New(rand.NewSource(opts.Seed))
	c := NewCircuit(n)
	c.Name = fmt.Sprintf("supremacy_%dx%d_d%d_s%d", opts.Rows, opts.Cols, opts.Depth, opts.Seed)

	if !opts.SkipInitialH {
		for q := 0; q < n; q++ {
			g := NewH(q)
			g.Cycle = 0
			c.Append(g)
		}
	}

	// Per-qubit single-qubit-gate state.
	lastSingle := make([]Kind, n) // previous random single-qubit gate
	hadFirst := make([]bool, n)   // has the always-T first gate been placed?
	for q := range lastSingle {
		lastSingle[q] = -1
	}

	inCZ := func(bonds []Bond) []bool {
		m := make([]bool, n)
		for _, b := range bonds {
			m[b.A] = true
			m[b.B] = true
		}
		return m
	}

	prev := make([]bool, n) // CZ participation in the previous cycle
	for t := 1; t <= opts.Depth; t++ {
		bonds := l.CZPattern(t)
		cur := inCZ(bonds)
		// Single-qubit gates: CZ in previous cycle, none in this one.
		for q := 0; q < n; q++ {
			if !prev[q] || cur[q] {
				continue
			}
			var g Gate
			if !hadFirst[q] {
				g = NewT(q)
				hadFirst[q] = true
				lastSingle[q] = KindT
			} else {
				choices := make([]Kind, 0, 3)
				for _, k := range []Kind{KindT, KindXHalf, KindYHalf} {
					if k != lastSingle[q] {
						choices = append(choices, k)
					}
				}
				k := choices[rng.Intn(len(choices))]
				lastSingle[q] = k
				switch k {
				case KindT:
					g = NewT(q)
				case KindXHalf:
					g = NewXHalf(q)
				default:
					g = NewYHalf(q)
				}
			}
			g.Cycle = t
			c.Append(g)
		}
		// CZ gates of this cycle.
		if !(opts.OmitFinalCZs && t == opts.Depth) {
			for _, b := range bonds {
				g := NewCZ(b.A, b.B)
				g.Cycle = t
				c.Append(g)
			}
		}
		prev = cur
	}
	return c
}

// GridForQubits returns the grid shape the paper uses for each circuit
// size: 30 = 6×5, 36 = 6×6, 42 = 7×6, 45 = 9×5, 49 = 7×7 (Table 2 and
// Fig. 5b).
func GridForQubits(n int) (rows, cols int) {
	switch n {
	case 30:
		return 6, 5
	case 36:
		return 6, 6
	case 42:
		return 7, 6
	case 45:
		return 9, 5
	case 49:
		return 7, 7
	default:
		// Fall back to the most square grid.
		best := 1
		for r := 1; r*r <= n; r++ {
			if n%r == 0 {
				best = r
			}
		}
		return n / best, best
	}
}
