package circuit

import "math"

// Parameterized ansatz generators for the variational workload families
// (QAOA and VQE) of the qbench catalog. Both emit only text-serializable
// gates (H, Rz, Phase, S, CZ, CPhase), so every instance can be written as
// a reproducer, inverted for the metamorphic round-trip, and executed by
// every backend including the per-gate baseline: the entanglers are
// diagonal. Their gate *structure* is independent of the parameter values —
// only Gate.Param changes between sweep points — which is exactly the shape
// the schedule.StructureFingerprint plan-analysis cache memoizes.

// RingEdges returns the n edges of the n-vertex ring graph (i, i+1 mod n)
// used by the QAOA MaxCut workload. For n = 2 the single edge is returned
// once.
func RingEdges(n int) []Bond {
	if n < 2 {
		return nil
	}
	if n == 2 {
		return []Bond{{A: 0, B: 1}}
	}
	edges := make([]Bond, n)
	for i := 0; i < n; i++ {
		a, b := i, (i+1)%n
		if a > b {
			a, b = b, a
		}
		edges[i] = Bond{A: a, B: b}
	}
	return edges
}

// QAOAMaxCutRing returns the depth-p QAOA circuit for MaxCut on the
// n-vertex ring: an initial Hadamard layer, then for each layer l the cost
// unitary exp(−iγ_l·C) followed by the mixer exp(−iβ_l·ΣX).
//
// The cost phase for edge (a,b) — e^{−iγ} exactly when the endpoints
// disagree — is synthesized from diagonal gates as
// Phase(a,−γ)·Phase(b,−γ)·CPhase(a,b,2γ), and the mixer Rx(2β) on each
// qubit as the exact identity H·Rz(2β)·H, keeping the whole circuit inside
// the serializable gate set.
func QAOAMaxCutRing(n int, gammas, betas []float64) *Circuit {
	if len(gammas) != len(betas) {
		panic("circuit: QAOA needs one gamma per beta")
	}
	c := NewCircuit(n)
	c.Name = "qaoa-maxcut-ring"
	edges := RingEdges(n)
	for q := 0; q < n; q++ {
		c.Append(NewH(q))
	}
	for l := range gammas {
		gamma, beta := gammas[l], betas[l]
		for _, e := range edges {
			c.Append(
				NewPhase(e.A, -gamma),
				NewPhase(e.B, -gamma),
				NewCPhase(e.A, e.B, 2*gamma),
			)
		}
		for q := 0; q < n; q++ {
			c.Append(NewH(q), NewRz(q, 2*beta), NewH(q))
		}
	}
	return c
}

// MaxCutExpectation returns ⟨C⟩ = Σ_(a,b) (1 − ⟨Z_a Z_b⟩)/2 over the given
// edges, evaluated from the probability distribution probs of a state on
// the edge's qubits. The all-zero-parameter QAOA circuit leaves the uniform
// superposition untouched, so its exact value is len(edges)/2 — the
// workload's closed-form expectation anchor.
func MaxCutExpectation(probs []float64, edges []Bond) float64 {
	var cut float64
	for _, e := range edges {
		var zz float64
		for b, p := range probs {
			if (b>>e.A)&1 == (b>>e.B)&1 {
				zz += p
			} else {
				zz -= p
			}
		}
		cut += (1 - zz) / 2
	}
	return cut
}

// HardwareEfficientAnsatz returns the layered VQE ansatz: per layer, one Ry
// rotation on every qubit followed by a CZ entangler ladder on neighbouring
// qubits. thetas holds layers×n angles, row-major (layer l, qubit q at
// l·n + q). Ry(θ) is synthesized exactly as S·H·Rz(θ)·H·S† (S X S† = Y), so
// the circuit stays in the serializable gate set. With all angles zero the
// rotations are identities and the CZ ladder fixes |0…0⟩, giving the exact
// transverse-Ising anchor energy −Σ⟨Z_i Z_{i+1}⟩ = −(n−1).
func HardwareEfficientAnsatz(n, layers int, thetas []float64) *Circuit {
	if len(thetas) != layers*n {
		panic("circuit: ansatz needs layers*n angles")
	}
	c := NewCircuit(n)
	c.Name = "vqe-ansatz"
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			theta := thetas[l*n+q]
			c.Append(
				NewPhase(q, -math.Pi/2), // S†
				NewH(q),
				NewRz(q, theta),
				NewH(q),
				NewS(q),
			)
		}
		for q := 0; q+1 < n; q++ {
			c.Append(NewCZ(q, q+1))
		}
	}
	return c
}

// IsingChainEnergy returns ⟨−Σ_i Z_i Z_{i+1}⟩ for the n-qubit chain from
// the probability distribution probs — the VQE workload's objective.
func IsingChainEnergy(probs []float64, n int) float64 {
	var e float64
	for i := 0; i+1 < n; i++ {
		var zz float64
		for b, p := range probs {
			if (b>>i)&1 == (b>>(i+1))&1 {
				zz += p
			} else {
				zz -= p
			}
		}
		e -= zz
	}
	return e
}

// SweepParams derives count deterministic parameter vectors of length dim
// in [−π, π] from the seed. Vector 0 is always all zeros — the closed-form
// expectation anchor of the variational workloads; the rest are
// pseudo-random but exactly reproducible (the generator does not depend on
// math/rand's stream evolution across Go versions).
func SweepParams(seed int64, count, dim int) [][]float64 {
	rng := newPCG(seed*0x9e3779b9 + 0x7f4a7c15)
	out := make([][]float64, count)
	for i := range out {
		v := make([]float64, dim)
		if i > 0 {
			for j := range v {
				v[j] = (rng.float()*2 - 1) * math.Pi
			}
		}
		out[i] = v
	}
	return out
}

// InjectPauliNoise returns a copy of c with a seeded random Pauli inserted
// after each gate on each touched qubit with probability p — the circuit a
// single stochastic noise trajectory executes, materialized as a plain
// deterministic circuit so the differential harness can cross-check noisy
// instances across every backend. The insertion stream matches
// noise.Channel's depolarizing draw order (one uniform draw per touched
// qubit) but uses the version-stable generator local to this package.
func InjectPauliNoise(c *Circuit, p float64, seed int64) *Circuit {
	rng := newPCG(seed*0x2545f491 + 0x4d595df4)
	out := NewCircuit(c.N)
	out.Name = c.Name + "-noisy"
	for _, g := range c.Gates {
		out.Append(g)
		for _, q := range g.Qubits {
			r := rng.float()
			switch {
			case r < p/3:
				out.Append(NewX(q))
			case r < 2*p/3:
				out.Append(NewY(q))
			case r < p:
				out.Append(NewZ(q))
			}
		}
	}
	return out
}
