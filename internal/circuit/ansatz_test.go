package circuit

import (
	"bytes"
	"math"
	"testing"
)

func TestRingEdges(t *testing.T) {
	if got := RingEdges(1); got != nil {
		t.Fatalf("RingEdges(1) = %v, want nil", got)
	}
	if got := RingEdges(2); len(got) != 1 || got[0] != (Bond{A: 0, B: 1}) {
		t.Fatalf("RingEdges(2) = %v, want one 0-1 edge", got)
	}
	edges := RingEdges(5)
	if len(edges) != 5 {
		t.Fatalf("RingEdges(5): %d edges, want 5", len(edges))
	}
	deg := make([]int, 5)
	for _, e := range edges {
		if e.A >= e.B {
			t.Fatalf("edge %v not normalized", e)
		}
		deg[e.A]++
		deg[e.B]++
	}
	for q, d := range deg {
		if d != 2 {
			t.Fatalf("vertex %d has degree %d, want 2", q, d)
		}
	}
}

func TestQAOAMaxCutRingSerializableAndDiagonalEntangled(t *testing.T) {
	params := SweepParams(3, 2, 4)
	c := QAOAMaxCutRing(6, params[1][:2], params[1][2:])
	for _, g := range c.Gates {
		if g.K() == 2 && !g.IsDiagonal() {
			t.Fatalf("QAOA circuit has dense entangler %v", g)
		}
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, c); err != nil {
		t.Fatalf("QAOA circuit not serializable: %v", err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Gates) != len(c.Gates) {
		t.Fatalf("round-trip gate count %d != %d", len(back.Gates), len(c.Gates))
	}
}

// The all-zero-parameter QAOA circuit must act as the identity on the
// uniform superposition: every gate is either H (paired, cancelling) or a
// zero-angle phase.
func TestQAOAZeroParamsUniform(t *testing.T) {
	n := 4
	c := QAOAMaxCutRing(n, []float64{0, 0}, []float64{0, 0})
	probs := simulateProbs(t, c)
	u := 1 / float64(len(probs))
	for b, p := range probs {
		if math.Abs(p-u) > 1e-12 {
			t.Fatalf("state %d: p=%v, want uniform %v", b, p, u)
		}
	}
	cut := MaxCutExpectation(probs, RingEdges(n))
	if want := float64(n) / 2; math.Abs(cut-want) > 1e-12 {
		t.Fatalf("uniform cut expectation %v, want %v", cut, want)
	}
}

// simulateProbs runs c by direct dense matrix application — an
// implementation independent of the statevec package so circuit tests stay
// self-contained.
func simulateProbs(t *testing.T, c *Circuit) []float64 {
	t.Helper()
	amps := make([]complex128, 1<<c.N)
	amps[0] = 1
	for _, g := range c.Gates {
		m := g.Matrix()
		k := g.K()
		next := make([]complex128, len(amps))
		for b := range amps {
			// Gather gate-local row index of b.
			var r int
			for j, q := range g.Qubits {
				if b>>q&1 == 1 {
					r |= 1 << j
				}
			}
			// Σ_col m[r][col] · amp(b with gate bits set to col).
			for col := 0; col < 1<<k; col++ {
				src := b
				for j, q := range g.Qubits {
					if col>>j&1 == 1 {
						src |= 1 << q
					} else {
						src &^= 1 << q
					}
				}
				next[b] += m.At(r, col) * amps[src]
			}
		}
		amps = next
	}
	probs := make([]float64, len(amps))
	for i, a := range amps {
		probs[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return probs
}

func TestVQEZeroParamsGroundAnchor(t *testing.T) {
	n, layers := 4, 2
	c := HardwareEfficientAnsatz(n, layers, make([]float64, layers*n))
	probs := simulateProbs(t, c)
	if math.Abs(probs[0]-1) > 1e-12 {
		t.Fatalf("zero-angle ansatz moved |0…0⟩: p(0)=%v", probs[0])
	}
	e := IsingChainEnergy(probs, n)
	if want := -float64(n - 1); math.Abs(e-want) > 1e-12 {
		t.Fatalf("anchor energy %v, want %v", e, want)
	}
}

// The synthesized Ry must match the real rotation: a single-qubit ansatz
// layer at angle θ prepares cos(θ/2)|0⟩ + sin(θ/2)|1⟩.
func TestAnsatzRySynthesis(t *testing.T) {
	theta := 0.7331
	c := HardwareEfficientAnsatz(1, 1, []float64{theta})
	probs := simulateProbs(t, c)
	if d := math.Abs(probs[1] - math.Pow(math.Sin(theta/2), 2)); d > 1e-12 {
		t.Fatalf("Ry synthesis off by %v in p(1)", d)
	}
}

func TestSweepParamsDeterministicAnchored(t *testing.T) {
	a := SweepParams(11, 4, 6)
	b := SweepParams(11, 4, 6)
	for _, v := range a[0] {
		if v != 0 {
			t.Fatalf("sweep vector 0 not all-zero: %v", a[0])
		}
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("sweep params differ at [%d][%d]: %v vs %v", i, j, a[i][j], b[i][j])
			}
			if a[i][j] < -math.Pi || a[i][j] > math.Pi {
				t.Fatalf("param out of range: %v", a[i][j])
			}
		}
	}
	if c := SweepParams(12, 4, 6); c[1][0] == a[1][0] {
		t.Fatalf("different seeds produced identical params")
	}
}

func TestInjectPauliNoiseDeterministicAndBounded(t *testing.T) {
	base := Supremacy(SupremacyOptions{Rows: 2, Cols: 3, Depth: 6, Seed: 5})
	a := InjectPauliNoise(base, 0.2, 9)
	b := InjectPauliNoise(base, 0.2, 9)
	var bufA, bufB bytes.Buffer
	if err := WriteText(&bufA, a); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	if err := WriteText(&bufB, b); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("same seed produced different noisy circuits")
	}
	if len(a.Gates) <= len(base.Gates) {
		t.Fatalf("p=0.2 injected no Paulis in %d gates", len(base.Gates))
	}
	if clean := InjectPauliNoise(base, 0, 9); len(clean.Gates) != len(base.Gates) {
		t.Fatalf("p=0 injected %d extra gates", len(clean.Gates)-len(base.Gates))
	}
}
