package circuit

import (
	"testing"
)

func TestSupremacyDepthTracksParameter(t *testing.T) {
	// Circuit depth (critical path) grows with the cycle count, roughly
	// one level per cycle plus the Hadamard layer.
	prev := 0
	for _, d := range []int{4, 8, 16, 32} {
		c := Supremacy(SupremacyOptions{Rows: 4, Cols: 4, Depth: d, Seed: 1})
		got := c.Depth()
		if got <= prev {
			t.Errorf("depth parameter %d: circuit depth %d did not grow (prev %d)", d, got, prev)
		}
		if got > d+2 {
			t.Errorf("depth parameter %d: circuit depth %d exceeds cycles+2", d, got)
		}
		prev = got
	}
}

func TestCountKindTotalsSum(t *testing.T) {
	c := Supremacy(SupremacyOptions{Rows: 5, Cols: 4, Depth: 20, Seed: 2})
	total := 0
	for _, k := range []Kind{KindH, KindT, KindXHalf, KindYHalf, KindCZ} {
		total += c.CountKind(k)
	}
	if total != len(c.Gates) {
		t.Errorf("kind counts sum to %d, circuit has %d gates", total, len(c.Gates))
	}
}

func TestCycleMetadataMonotonePerQubit(t *testing.T) {
	c := Supremacy(SupremacyOptions{Rows: 4, Cols: 4, Depth: 16, Seed: 3})
	last := map[int]int{}
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			if g.Cycle < last[q] {
				t.Fatalf("gate %v at cycle %d after cycle %d on qubit %d", g, g.Cycle, last[q], q)
			}
			last[q] = g.Cycle
		}
	}
}

func TestSingleRowGrid(t *testing.T) {
	// A 1×n chain still satisfies the pattern invariants (vertical classes
	// are empty).
	l := Layout{Rows: 1, Cols: 8}
	counts := map[Bond]int{}
	for cyc := 1; cyc <= 8; cyc++ {
		seen := map[int]bool{}
		for _, b := range l.CZPattern(cyc) {
			if seen[b.A] || seen[b.B] {
				t.Fatalf("cycle %d not a matching", cyc)
			}
			seen[b.A] = true
			seen[b.B] = true
			counts[b]++
		}
	}
	for _, b := range l.AllBonds() {
		if counts[b] != 1 {
			t.Errorf("bond %v applied %d times", b, counts[b])
		}
	}
	c := Supremacy(SupremacyOptions{Rows: 1, Cols: 8, Depth: 16, Seed: 4})
	if len(c.Gates) == 0 {
		t.Error("chain circuit is empty")
	}
}

func TestGroverZeroIterations(t *testing.T) {
	c := Grover(4, 3, 0)
	// Only the Hadamard layer.
	if len(c.Gates) != 4 {
		t.Errorf("Grover with 0 iterations has %d gates, want 4", len(c.Gates))
	}
}

func TestGroverOptimalItersValues(t *testing.T) {
	// ⌊π/4·√N⌋ for N = 2^n.
	cases := map[int]int{2: 1, 4: 3, 6: 6, 8: 12, 10: 25}
	for n, want := range cases {
		if got := GroverOptimalIters(n); got != want {
			t.Errorf("GroverOptimalIters(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KindCZ.String() != "cz" || KindXHalf.String() != "x_1_2" {
		t.Error("kind names changed — text format compatibility break")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty string")
	}
}
