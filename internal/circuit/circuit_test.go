package circuit

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qusim/internal/gate"
	"qusim/internal/statevec"
)

func run(c *Circuit) *statevec.Vector {
	v := statevec.New(c.N)
	for _, g := range c.Gates {
		v.Apply(g.Matrix(), g.Qubits...)
	}
	return v
}

func TestGateMatrixConventions(t *testing.T) {
	// NewCNOT(control, target): |control=1⟩ flips target.
	v := statevec.New(2)
	v.Apply(gate.X(), 0) // set qubit 0 (the control)
	g := NewCNOT(0, 1)
	v.Apply(g.Matrix(), g.Qubits...)
	if p := v.Probability(0b11); math.Abs(p-1) > 1e-12 {
		t.Errorf("CNOT(c=0,t=1)|01⟩: P(11) = %v", p)
	}
}

func TestAllKindsHaveUnitaryMatrices(t *testing.T) {
	gates := []Gate{
		NewH(0), NewX(0), NewY(0), NewZ(0), NewS(0), NewT(0),
		NewXHalf(0), NewYHalf(0), NewRz(0, 0.3), NewPhase(0, 0.4),
		NewCZ(0, 1), NewCPhase(0, 1, 0.5), NewCNOT(0, 1), NewSwap(0, 1),
	}
	for _, g := range gates {
		if !g.Matrix().IsUnitary(1e-12) {
			t.Errorf("%v matrix not unitary", g)
		}
		if g.Matrix().K != g.K() {
			t.Errorf("%v: matrix K %d != gate K %d", g, g.Matrix().K, g.K())
		}
	}
}

func TestDiagonalKinds(t *testing.T) {
	diag := []Gate{NewZ(0), NewS(0), NewT(0), NewRz(0, 1), NewPhase(0, 1), NewCZ(0, 1), NewCPhase(0, 1, 1)}
	for _, g := range diag {
		if !g.IsDiagonal() {
			t.Errorf("%v should report diagonal", g)
		}
	}
	nondiag := []Gate{NewH(0), NewX(0), NewXHalf(0), NewCNOT(0, 1), NewSwap(0, 1)}
	for _, g := range nondiag {
		if g.IsDiagonal() {
			t.Errorf("%v should not report diagonal", g)
		}
	}
}

func TestAppendValidates(t *testing.T) {
	c := NewCircuit(2)
	for i, g := range []Gate{NewH(2), NewCZ(0, 0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: Append accepted invalid gate", i)
				}
			}()
			c.Append(g)
		}()
	}
}

func TestDepth(t *testing.T) {
	c := NewCircuit(3)
	if c.Depth() != 0 {
		t.Errorf("empty circuit depth %d", c.Depth())
	}
	c.Append(NewH(0), NewH(1), NewH(2)) // depth 1
	c.Append(NewCZ(0, 1))               // depth 2
	c.Append(NewT(2))                   // still depth 2
	c.Append(NewCZ(1, 2))               // depth 3
	if c.Depth() != 3 {
		t.Errorf("depth = %d, want 3", c.Depth())
	}
}

func TestGHZState(t *testing.T) {
	v := run(GHZ(4))
	inv := 1 / math.Sqrt2
	if math.Abs(real(v.Amplitude(0))-inv) > 1e-12 || math.Abs(real(v.Amplitude(15))-inv) > 1e-12 {
		t.Errorf("GHZ amps: %v, %v", v.Amplitude(0), v.Amplitude(15))
	}
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("GHZ norm %v", v.Norm())
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT of |0…0⟩ is the uniform superposition.
	n := 5
	v := run(QFT(n))
	u := statevec.NewUniform(n)
	if d := v.MaxDiff(u); d > 1e-12 {
		t.Errorf("QFT|0⟩ vs uniform: max diff %g", d)
	}
}

func TestQFTInverse(t *testing.T) {
	n := 6
	c := QFT(n)
	ic := InverseQFT(n)
	v := statevec.New(n)
	v.Apply(gate.X(), 2)
	v.Apply(gate.X(), 4) // some basis state
	w := v.Clone()
	for _, g := range c.Gates {
		v.Apply(g.Matrix(), g.Qubits...)
	}
	for _, g := range ic.Gates {
		v.Apply(g.Matrix(), g.Qubits...)
	}
	if d := v.MaxDiff(w); d > 1e-10 {
		t.Errorf("IQFT∘QFT != identity: max diff %g", d)
	}
}

func TestQFTMatchesDFT(t *testing.T) {
	// QFT amplitudes of basis state |x⟩ are ω^{xy}/√N with bit-reversed
	// output ordering; verify via ReverseBits against the explicit DFT.
	n := 4
	x := 0b0110
	v := statevec.New(n)
	for q := 0; q < n; q++ {
		if x&(1<<q) != 0 {
			v.Apply(gate.X(), q)
		}
	}
	for _, g := range QFT(n).Gates {
		v.Apply(g.Matrix(), g.Qubits...)
	}
	v.ReverseBits()
	N := 1 << n
	for y := 0; y < N; y++ {
		want := complex(math.Cos(2*math.Pi*float64(x*y)/float64(N)), math.Sin(2*math.Pi*float64(x*y)/float64(N)))
		want /= complex(math.Sqrt(float64(N)), 0)
		got := v.Amplitude(y)
		if math.Hypot(real(got-want), imag(got-want)) > 1e-10 {
			t.Fatalf("amp[%d] = %v, want %v", y, got, want)
		}
	}
}

func TestGroverFindsMarkedState(t *testing.T) {
	n := 6
	marked := 0b101101 % (1 << n)
	c := Grover(n, marked, GroverOptimalIters(n))
	v := run(c)
	if p := v.Probability(marked); p < 0.95 {
		t.Errorf("Grover success probability %v, want > 0.95", p)
	}
}

func TestTextRoundTrip(t *testing.T) {
	c := Supremacy(SupremacyOptions{Rows: 3, Cols: 3, Depth: 12, Seed: 3})
	c.Append(NewRz(0, 0.123456789))
	var buf bytes.Buffer
	if err := WriteText(&buf, c); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.N != c.N || len(parsed.Gates) != len(c.Gates) {
		t.Fatalf("round trip: n=%d gates=%d, want n=%d gates=%d", parsed.N, len(parsed.Gates), c.N, len(c.Gates))
	}
	for i := range c.Gates {
		a, b := c.Gates[i], parsed.Gates[i]
		if a.Kind != b.Kind || a.Cycle != b.Cycle || a.Param != b.Param {
			t.Fatalf("gate %d: %v vs %v", i, a, b)
		}
		for j := range a.Qubits {
			if a.Qubits[j] != b.Qubits[j] {
				t.Fatalf("gate %d qubits differ", i)
			}
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"abc\n",            // bad qubit count
		"2\n0 zz 0\n",      // unknown gate
		"2\n0 h\n",         // missing qubits
		"2\nx h 0\n",       // bad cycle
		"2\n0 h 5\n",       // qubit out of range
		"2\n0 rz(bad) 0\n", // bad parameter
		"2\n0 cz 0 0\n",    // duplicate qubit
	}
	for i, s := range cases {
		if _, err := ReadText(strings.NewReader(s)); err == nil {
			t.Errorf("case %d (%q): expected error", i, s)
		}
	}
}

func TestWriteTextRejectsCustom(t *testing.T) {
	c := NewCircuit(2)
	c.Append(NewUnitary(gate.H(), 0))
	var buf bytes.Buffer
	if err := WriteText(&buf, c); err == nil {
		t.Error("expected error serializing custom gate")
	}
}

func TestSupremacyCircuitNormPreserved(t *testing.T) {
	c := Supremacy(SupremacyOptions{Rows: 3, Cols: 3, Depth: 16, Seed: 11})
	v := run(c)
	if math.Abs(v.Norm()-1) > 1e-10 {
		t.Errorf("norm after supremacy circuit: %v", v.Norm())
	}
	// The output should be highly entangled: entropy close to n·ln2 − γ.
	if e := v.Entropy(); e < 0.5*float64(c.N)*math.Ln2 {
		t.Errorf("suspiciously low output entropy %v", e)
	}
}
