package circuit

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText checks the circuit text parser never panics and that every
// successfully parsed circuit re-serializes and re-parses to the same gate
// list.
func FuzzReadText(f *testing.F) {
	var seedBuf bytes.Buffer
	c := Supremacy(SupremacyOptions{Rows: 3, Cols: 3, Depth: 10, Seed: 1})
	if err := WriteText(&seedBuf, c); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	f.Add("2\n0 h 0\n1 cz 0 1\n")
	f.Add("")
	f.Add("abc")
	f.Add("4\n0 rz(0.5) 3\n")
	f.Add("2\n0 h 99\n")
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		var out bytes.Buffer
		if err := WriteText(&out, parsed); err != nil {
			return // custom gates are not serializable; none arise here
		}
		again, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-parse of serialized circuit failed: %v\n%s", err, out.String())
		}
		if again.N != parsed.N || len(again.Gates) != len(parsed.Gates) {
			t.Fatalf("round trip changed the circuit: %d/%d gates", len(parsed.Gates), len(again.Gates))
		}
	})
}
