package circuit

import (
	"math"

	"qusim/internal/gate"
)

// Additional algorithm circuits used by examples and cross-subsystem tests
// (the "verifying quantum algorithms" use case of Sec. 1).

// BernsteinVazirani returns the circuit that recovers the n-bit secret s
// with one oracle query. The oracle |x⟩ → (−1)^{s·x}|x⟩ is expressed with
// Z gates (all diagonal — the circuit communicates only for the Hadamard
// layers when distributed).
func BernsteinVazirani(n int, secret int) *Circuit {
	c := NewCircuit(n)
	c.Name = "bernstein-vazirani"
	for q := 0; q < n; q++ {
		c.Append(NewH(q))
	}
	for q := 0; q < n; q++ {
		if secret&(1<<q) != 0 {
			c.Append(NewZ(q))
		}
	}
	for q := 0; q < n; q++ {
		c.Append(NewH(q))
	}
	return c
}

// PhaseEstimation returns the textbook quantum phase-estimation circuit
// estimating the eigenphase φ (in turns, 0 ≤ φ < 1) of the phase gate
// diag(1, e^{2πiφ}) using t counting qubits. The eigenstate qubit is qubit
// t (prepared in |1⟩); counting qubits 0…t−1 hold the estimate, most
// significant at t−1. With φ = k/2^t the output is exactly |k⟩.
func PhaseEstimation(t int, phi float64) *Circuit {
	n := t + 1
	c := NewCircuit(n)
	c.Name = "phase-estimation"
	target := t
	c.Append(NewX(target)) // eigenstate |1⟩
	for q := 0; q < t; q++ {
		c.Append(NewH(q))
	}
	// Controlled-U^{2^q}: a controlled phase of 2π·φ·2^q between counting
	// qubit q and the target. The register then holds the Fourier
	// transform of |k⟩ (φ = k/2^t).
	for q := 0; q < t; q++ {
		theta := 2 * math.Pi * phi * math.Pow(2, float64(q))
		c.Append(NewCPhase(q, target, theta))
	}
	// True inverse DFT on the counting register: our QFT circuit computes
	// the DFT up to a bit reversal, so invert with a reversal followed by
	// the reversed-and-conjugated gate sequence.
	for i, j := 0, t-1; i < j; i, j = i+1, j-1 {
		c.Append(NewSwap(i, j))
	}
	for i := 0; i < t; i++ {
		for j := i - 1; j >= 0; j-- {
			c.Append(NewCPhase(i, j, -math.Pi/float64(int(1)<<uint(i-j))))
		}
		c.Append(NewH(i))
	}
	return c
}

// RandomCircuit returns a generic random circuit mixing dense 1-qubit
// rotations and CZ/CNOT entanglers — a workload without the supremacy
// circuits' anti-optimization structure, for scheduler stress tests.
func RandomCircuit(n, gates int, seed int64) *Circuit {
	c := NewCircuit(n)
	c.Name = "random"
	rng := newPCG(seed)
	for i := 0; i < gates; i++ {
		switch rng.intn(5) {
		case 0:
			c.Append(NewUnitary(gate.Rx(rng.float()*2*math.Pi), rng.intn(n)))
		case 1:
			c.Append(NewUnitary(gate.Ry(rng.float()*2*math.Pi), rng.intn(n)))
		case 2:
			c.Append(NewRz(rng.intn(n), rng.float()*2*math.Pi))
		case 3:
			a := rng.intn(n)
			b := rng.intn(n)
			for b == a {
				b = rng.intn(n)
			}
			c.Append(NewCZ(a, b))
		case 4:
			a := rng.intn(n)
			b := rng.intn(n)
			for b == a {
				b = rng.intn(n)
			}
			c.Append(NewCNOT(a, b))
		}
	}
	return c
}

// newPCG is a tiny deterministic generator so RandomCircuit does not
// depend on math/rand's global state evolution across Go versions.
type pcg struct{ state uint64 }

func newPCG(seed int64) *pcg {
	return &pcg{state: uint64(seed)*6364136223846793005 + 1442695040888963407}
}

func (p *pcg) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	x := p.state
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (p *pcg) intn(n int) int { return int(p.next() % uint64(n)) }

func (p *pcg) float() float64 { return float64(p.next()>>11) / float64(1<<53) }
