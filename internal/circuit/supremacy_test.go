package circuit

import (
	"testing"
)

func TestCZPatternsAreMatchings(t *testing.T) {
	for _, grid := range [][2]int{{4, 4}, {6, 5}, {6, 6}, {7, 6}, {9, 5}, {7, 7}} {
		l := Layout{Rows: grid[0], Cols: grid[1]}
		for cyc := 1; cyc <= 8; cyc++ {
			seen := map[int]bool{}
			for _, b := range l.CZPattern(cyc) {
				if seen[b.A] || seen[b.B] {
					t.Errorf("grid %v cycle %d: pattern is not a matching (qubit reused)", grid, cyc)
				}
				seen[b.A] = true
				seen[b.B] = true
			}
		}
	}
}

func TestEveryBondOncePerEightCycles(t *testing.T) {
	// The defining invariant from Fig. 1: "this pattern ensures that all
	// possible two qubit interactions on this 2D nearest neighbor
	// architecture are executed every 8 cycles."
	for _, grid := range [][2]int{{4, 4}, {6, 5}, {6, 6}, {7, 6}, {9, 5}} {
		l := Layout{Rows: grid[0], Cols: grid[1]}
		counts := map[Bond]int{}
		for cyc := 1; cyc <= 8; cyc++ {
			for _, b := range l.CZPattern(cyc) {
				counts[b]++
			}
		}
		all := l.AllBonds()
		if len(counts) != len(all) {
			t.Errorf("grid %v: %d distinct bonds over 8 cycles, want %d", grid, len(counts), len(all))
		}
		for _, b := range all {
			if counts[b] != 1 {
				t.Errorf("grid %v: bond %v applied %d times in 8 cycles, want 1", grid, b, counts[b])
			}
		}
	}
}

func TestPatternPeriodEight(t *testing.T) {
	l := Layout{Rows: 5, Cols: 5}
	for cyc := 1; cyc <= 8; cyc++ {
		a := l.CZPattern(cyc)
		b := l.CZPattern(cyc + 8)
		if len(a) != len(b) {
			t.Fatalf("cycle %d vs %d: lengths differ", cyc, cyc+8)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cycle %d vs %d: bond %d differs", cyc, cyc+8, i)
			}
		}
	}
}

func TestSupremacyInitialHadamards(t *testing.T) {
	c := Supremacy(SupremacyOptions{Rows: 3, Cols: 3, Depth: 8, Seed: 1})
	for q := 0; q < 9; q++ {
		g := c.Gates[q]
		if g.Kind != KindH || g.Qubits[0] != q || g.Cycle != 0 {
			t.Fatalf("gate %d is %v, want h on qubit %d at cycle 0", q, g, q)
		}
	}
	skip := Supremacy(SupremacyOptions{Rows: 3, Cols: 3, Depth: 8, Seed: 1, SkipInitialH: true})
	if skip.CountKind(KindH) != 0 {
		t.Errorf("SkipInitialH circuit contains %d Hadamards", skip.CountKind(KindH))
	}
	if len(skip.Gates) != len(c.Gates)-9 {
		t.Errorf("SkipInitialH dropped %d gates, want 9", len(c.Gates)-len(skip.Gates))
	}
}

func TestSupremacySingleQubitGateRules(t *testing.T) {
	opts := SupremacyOptions{Rows: 5, Cols: 5, Depth: 30, Seed: 7}
	c := Supremacy(opts)
	l := Layout{Rows: 5, Cols: 5}
	n := l.N()

	inCZ := make([]map[int]bool, opts.Depth+1)
	inCZ[0] = map[int]bool{}
	for t0 := 1; t0 <= opts.Depth; t0++ {
		inCZ[t0] = map[int]bool{}
		for _, b := range l.CZPattern(t0) {
			inCZ[t0][b.A] = true
			inCZ[t0][b.B] = true
		}
	}

	first := make([]bool, n)
	last := make([]Kind, n)
	for q := range last {
		last[q] = -1
	}
	singles := map[[2]int]Kind{} // (cycle, qubit) -> kind
	for _, g := range c.Gates {
		switch g.Kind {
		case KindT, KindXHalf, KindYHalf:
			singles[[2]int{g.Cycle, g.Qubits[0]}] = g.Kind
		}
	}
	for t0 := 1; t0 <= opts.Depth; t0++ {
		for q := 0; q < n; q++ {
			k, has := singles[[2]int{t0, q}]
			shouldHave := inCZ[t0-1][q] && !inCZ[t0][q]
			if has != shouldHave {
				t.Fatalf("cycle %d qubit %d: single-gate presence %v, want %v", t0, q, has, shouldHave)
			}
			if !has {
				continue
			}
			if !first[q] {
				if k != KindT {
					t.Errorf("cycle %d qubit %d: first single-qubit gate is %v, want T", t0, q, k)
				}
				first[q] = true
			} else if k == last[q] {
				t.Errorf("cycle %d qubit %d: repeated single-qubit gate %v", t0, q, k)
			}
			last[q] = k
		}
	}
}

func TestSupremacyDeterministicPerSeed(t *testing.T) {
	a := Supremacy(SupremacyOptions{Rows: 4, Cols: 4, Depth: 20, Seed: 5})
	b := Supremacy(SupremacyOptions{Rows: 4, Cols: 4, Depth: 20, Seed: 5})
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("same seed produced different circuits")
	}
	for i := range a.Gates {
		if a.Gates[i].String() != b.Gates[i].String() {
			t.Fatalf("gate %d differs: %v vs %v", i, a.Gates[i], b.Gates[i])
		}
	}
	c := Supremacy(SupremacyOptions{Rows: 4, Cols: 4, Depth: 20, Seed: 6})
	same := len(a.Gates) == len(c.Gates)
	if same {
		identical := true
		for i := range a.Gates {
			if a.Gates[i].String() != c.Gates[i].String() {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical circuits")
		}
	}
}

func TestSupremacyOmitFinalCZs(t *testing.T) {
	with := Supremacy(SupremacyOptions{Rows: 4, Cols: 4, Depth: 9, Seed: 2})
	without := Supremacy(SupremacyOptions{Rows: 4, Cols: 4, Depth: 9, Seed: 2, OmitFinalCZs: true})
	l := Layout{Rows: 4, Cols: 4}
	lastCZs := len(l.CZPattern(9))
	if len(with.Gates)-len(without.Gates) != lastCZs {
		t.Errorf("OmitFinalCZs removed %d gates, want %d", len(with.Gates)-len(without.Gates), lastCZs)
	}
}

func TestGridForQubits(t *testing.T) {
	cases := map[int][2]int{30: {6, 5}, 36: {6, 6}, 42: {7, 6}, 45: {9, 5}, 49: {7, 7}, 12: {4, 3}}
	for n, want := range cases {
		r, c := GridForQubits(n)
		if r*c != n {
			t.Errorf("GridForQubits(%d) = %dx%d, product %d", n, r, c, r*c)
		}
		if n <= 49 && (r != want[0] || c != want[1]) {
			t.Errorf("GridForQubits(%d) = %dx%d, want %dx%d", n, r, c, want[0], want[1])
		}
	}
}

// TestTable1GateCounts verifies the generated circuits are the size the
// paper reports in Table 1 (369/447/528/569 gates for 30/36/42/45 qubits at
// depth 25). Our CZ-pattern reconstruction differs from Google's exact
// layouts, so totals may deviate by a few gates; we require ±5%.
func TestTable1GateCounts(t *testing.T) {
	paper := map[int]int{30: 369, 36: 447, 42: 528, 45: 569}
	for n, want := range paper {
		r, c := GridForQubits(n)
		circ := Supremacy(SupremacyOptions{Rows: r, Cols: c, Depth: 25, Seed: 0})
		got := len(circ.Gates)
		lo := int(float64(want) * 0.95)
		hi := int(float64(want) * 1.05)
		if got < lo || got > hi {
			t.Errorf("%d qubits: %d gates, paper reports %d (allowing ±5%%)", n, got, want)
		}
		t.Logf("%d qubits: %d gates (paper: %d); %d CZ, %d T, %d X½, %d Y½, %d H",
			n, got, want, circ.CountKind(KindCZ), circ.CountKind(KindT),
			circ.CountKind(KindXHalf), circ.CountKind(KindYHalf), circ.CountKind(KindH))
	}
}
