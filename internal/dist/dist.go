// Package dist executes scheduled plans across 2^g simulated MPI ranks —
// the multi-node layer of Sec. 3.4–3.5 of Häner & Steiger, SC'17. Each rank
// owns 2^l amplitudes; non-diagonal gates run through the local kernels,
// diagonal gates on global qubits run via specialization without
// communication, and global-to-local swaps run as (group-)all-to-alls.
//
// It also implements the per-gate baseline scheme of [19]/[5] — pairwise
// half-vector exchanges for every dense gate on a global qubit — used by
// the Table 2 speedup comparison.
//
// With Options.Checkpoint set, Run becomes crash-tolerant: ranks snapshot
// their amplitude shards at stage boundaries (package ckpt's atomic
// commit protocol), collective payloads carry checksums, and any detected
// transport failure — dead rank, corrupted payload, stalled collective —
// triggers a restart from the newest valid snapshot that re-executes only
// the remaining stages. Restored amplitudes are bit-exact, so a recovered
// run produces the same result as an uninterrupted one.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"qusim/internal/ckpt"
	"qusim/internal/fsio"
	"qusim/internal/kernels"
	"qusim/internal/mpi"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
	"qusim/internal/telemetry"
)

// InitState selects the initial state of a run.
type InitState int

const (
	// InitZero starts in |0…0⟩.
	InitZero InitState = iota
	// InitUniform starts in the uniform superposition — the direct
	// initialization that replaces the supremacy circuits' first Hadamard
	// cycle (Sec. 3.6).
	InitUniform
)

// Result aggregates a distributed run.
type Result struct {
	Ranks       int
	LocalQubits int
	Norm        float64
	Entropy     float64 // Shannon entropy of the output distribution, nats

	CommSteps int   // collective communication steps (summed over attempts)
	CommBytes int64 // payload bytes crossing rank boundaries (summed)

	// FaultEvents counts the perturbations injected when Options.Faults
	// was set (0 on clean runs), summed over attempts.
	FaultEvents int64

	// Restarts counts recovery attempts after detected failures (0 when
	// the first attempt succeeded). The per-class breakdown below
	// partitions it by what the failed attempt died of; a dead rank is
	// observed as its collectives stalling, so classification checks
	// corrupt, then rank-dead, then stalled.
	Restarts         int
	RestartsCorrupt  int
	RestartsRankDead int
	RestartsStalled  int
	// CheckpointsWritten counts snapshots committed across all attempts.
	CheckpointsWritten int
	// CheckpointsSkipped counts stage boundaries where the snapshot was
	// dropped because the disk stayed full after pruning — the run
	// degrades (a later restart replays more stages) instead of aborting.
	CheckpointsSkipped int
	// CheckpointsRestored counts attempts that started from a snapshot
	// instead of the initial state.
	CheckpointsRestored int

	Elapsed     time.Duration // wall time of the slowest rank
	CommElapsed time.Duration // wall time spent in communication (max rank)

	// Amplitudes holds the gathered full state when GatherState was set
	// (index layout: rank bits are the top g bits — location p ≥ l is rank
	// bit p−l).
	Amplitudes []complex128

	// Samples holds SampleShots logical basis states drawn from the output
	// distribution (already translated back to qubit order).
	Samples []int

	// Profile holds the per-op-kind time breakdown when Options.Profile
	// was set, ordered by kind name.
	Profile []ProfileEntry
}

// Options configures Run.
type Options struct {
	Ranks int // power of two ≥ 1
	Init  InitState
	// GatherState collects the full 2^n state into Result.Amplitudes
	// (testing/verification only — defeats the point of distribution).
	GatherState bool
	// Variant overrides the gate kernel used on each rank (default Auto).
	Variant kernels.Variant
	// SampleShots draws that many basis states from the output
	// distribution without gathering the state: ranks share only their
	// total probability weights, then sample locally. Results land in
	// Result.Samples as logical basis states (qubit q = bit q).
	SampleShots int
	// SampleSeed seeds the distributed sampler.
	SampleSeed int64
	// Profile collects a per-op-kind execution profile into
	// Result.Profile — how the paper's "time spent in communication and
	// synchronization is 78%" breakdowns are measured.
	Profile bool
	// Faults arms deterministic fault injection in the simulated MPI layer
	// (delayed chunk posting, out-of-order delivery, barrier jitter, plus
	// the hard rank-crash and payload-corruption faults). A correct run
	// produces identical amplitudes with or without the timing faults;
	// package verify soaks this invariant. Hard faults fire at most once
	// per plan, so a checkpointed run recovers from them.
	Faults *mpi.FaultPlan

	// Checkpoint enables crash-consistent snapshots and stage-level
	// recovery: shards land in Checkpoint.Dir every EveryStages stage
	// boundaries, and a detected transport failure restarts the run from
	// the newest valid snapshot (up to Checkpoint.MaxRestarts times).
	// Setting it also turns on collective payload checksums.
	Checkpoint *ckpt.Policy
	// Resume makes the FIRST attempt look for a restorable snapshot in
	// Checkpoint.Dir before initializing — continuing an earlier process's
	// interrupted run. Without it only failure recovery restores.
	Resume bool
	// CommDeadline bounds each attempt's wall time; a rank hung outside
	// the communication layer surfaces as a recoverable stall instead of a
	// hang. Zero disables the bound.
	CommDeadline time.Duration
	// Retry shapes the recovery loop between attempts: jittered
	// exponential backoff and a whole-run deadline. Nil keeps the legacy
	// behavior — immediate restarts, bounded only by MaxRestarts.
	Retry *RetryPolicy
	// VerifyChecksums forces CRC verification of collective payloads even
	// without a checkpoint policy.
	VerifyChecksums bool

	// Telemetry, when enabled, records per-rank trace timelines (stage and
	// op spans with qubit-set and fused-cluster annotations, checkpoint and
	// restore lifecycles) and feeds the metrics registry; the simulated MPI
	// layer inherits it for collective spans and latency histograms. Leave
	// nil (or telemetry.Disabled) for zero-overhead runs. When Profile is
	// also set, Result.Profile is derived from the same clock readings that
	// time the spans, so trace and profile cannot disagree.
	Telemetry *telemetry.Telemetry
}

// ProfileEntry aggregates wall time for one op kind (on the slowest rank).
type ProfileEntry struct {
	Kind     string
	Ops      int
	Duration time.Duration
}

// ErrRunDeadline marks a checkpointed run abandoned because RetryPolicy.
// Deadline expired before an attempt completed. Test with errors.Is.
var ErrRunDeadline = errors.New("dist: run deadline exceeded")

// RetryPolicy shapes the recovery loop of a checkpointed run. The number
// of attempts is still bounded by Checkpoint.MaxRestarts; the policy adds
// pacing (so a persistently failing environment is not hammered in a tight
// loop) and an overall give-up clock.
type RetryPolicy struct {
	// BaseDelay is the nominal wait before the first restart; each further
	// restart doubles it, capped at MaxDelay. The actual sleep is jittered
	// to [d/2, d] so co-failing runs don't retry in lockstep. Zero
	// restarts immediately.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0: uncapped).
	MaxDelay time.Duration
	// Deadline bounds the whole run — compute, backoff and restarts
	// together. When it expires the run fails with ErrRunDeadline even if
	// restarts remain. Zero disables the bound.
	Deadline time.Duration
	// Seed seeds the jitter source; runs with equal seeds back off
	// identically.
	Seed int64
}

// delay returns the jittered backoff before restart number r (1-based).
func (p *RetryPolicy) delay(r int, rng *rand.Rand) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < r; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// classifyRestart partitions a recoverable failure by class — corrupt
// first (a corrupted payload is the root cause even when its collective
// also stalled), then rank-dead (which wraps ErrStalled by construction),
// then pure stalls.
func classifyRestart(err error, res *Result, tel *telemetry.Telemetry) {
	switch {
	case errors.Is(err, mpi.ErrCorrupt):
		res.RestartsCorrupt++
		tel.Counter("dist.restart_corrupt").Inc()
	case errors.Is(err, mpi.ErrRankDead):
		res.RestartsRankDead++
		tel.Counter("dist.restart_rank_dead").Inc()
	case errors.Is(err, mpi.ErrStalled):
		res.RestartsStalled++
		tel.Counter("dist.restart_stalled").Inc()
	}
}

// attemptOut collects one attempt's results. It is attempt-local on
// purpose: an attempt abandoned on deadline may have ranks hung in compute
// that wake later, and they must not share memory with the next attempt.
type attemptOut struct {
	mu          sync.Mutex
	norm        float64
	entropy     float64
	elapsed     time.Duration
	commElapsed time.Duration
	amplitudes  []complex128
	samples     []int
	profile     []ProfileEntry

	shards  []ckpt.ShardInfo // checkpoint protocol scratch, indexed by rank
	written atomic.Int64     // snapshots committed this attempt
	skipped atomic.Int64     // snapshots dropped on persistent ENOSPC

	// skipStage holds the stage cursor of a checkpoint some rank could not
	// persist (ENOSPC after pruning): rank 0 sees it after the pre-commit
	// barrier and skips the commit. It stores the stage number rather than
	// a flag so a value left behind by one checkpoint can never taint the
	// next (stage cursors are distinct and ≥ 1).
	skipStage atomic.Int64

	// commitErr publishes rank 0's Commit outcome to the other ranks; the
	// barriers on either side of the commit order the accesses.
	commitErr error
}

// Run executes a plan produced by schedule.Build. plan.L must equal
// n − log2(Ranks).
func Run(plan *schedule.Plan, opts Options) (*Result, error) {
	ranks := opts.Ranks
	if ranks < 1 || ranks&(ranks-1) != 0 {
		return nil, fmt.Errorf("dist: rank count %d is not a power of two", ranks)
	}
	g := bits.TrailingZeros(uint(ranks))
	if plan.N-plan.L != g && !(ranks == 1 && plan.L >= plan.N) {
		return nil, fmt.Errorf("dist: plan has %d global qubits, world provides %d", plan.N-plan.L, g)
	}
	l := plan.N - g

	res := &Result{Ranks: ranks, LocalQubits: l}
	attempts := 1
	var meta ckpt.Meta
	if ck := opts.Checkpoint; ck != nil {
		if ck.Dir == "" {
			return nil, fmt.Errorf("dist: checkpoint policy has no directory")
		}
		if err := os.MkdirAll(ck.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("dist: checkpoint dir: %w", err)
		}
		attempts = ck.Restarts() + 1
		meta = ckpt.Meta{PlanHash: plan.Fingerprint(), N: plan.N, L: l, Ranks: ranks}
	}

	tryResume := opts.Resume
	tel := opts.Telemetry
	var jrng *rand.Rand
	if opts.Retry != nil {
		jrng = rand.New(rand.NewSource(opts.Retry.Seed))
	}
	runStart := time.Now()
	var lastErr error
	var failedAt time.Time // when the previous attempt's failure surfaced
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			res.Restarts++
			classifyRestart(lastErr, res, tel)
			tryResume = true // recover from whatever the failed attempt committed
			if rp := opts.Retry; rp != nil {
				if rp.Deadline > 0 && time.Since(runStart) >= rp.Deadline {
					return nil, fmt.Errorf("dist: %w after %d restarts: %w", ErrRunDeadline, res.Restarts-1, lastErr)
				}
				if d := rp.delay(attempt, jrng); d > 0 {
					time.Sleep(d)
				}
			}
			// Failure detection → restored attempt start: the latency a
			// fault-tolerance budget actually pays per recovery.
			tel.Histogram("dist.recovery_latency_ns").ObserveSince(failedAt)
		}
		tel.Counter("dist.attempts").Inc()
		err := runAttempt(plan, opts, l, meta, tryResume, res)
		if err == nil {
			return res, nil
		}
		failedAt = time.Now()
		lastErr = err
		if opts.Checkpoint == nil || !mpi.Recoverable(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("dist: giving up after %d restarts: %w", res.Restarts, lastErr)
}

// runAttempt executes the plan once — possibly from a restored snapshot —
// and folds the attempt's results and counters into res on success
// (counters are folded on failure too; result fields only on success).
func runAttempt(plan *schedule.Plan, opts Options, l int, meta ckpt.Meta, tryResume bool, res *Result) error {
	ranks := opts.Ranks
	localLen := 1 << l
	ck := opts.Checkpoint

	// Recovery walk: newest manifest whose shards all verify, matching this
	// exact plan and geometry. None found (or resume off) → fresh start.
	var man *ckpt.Manifest
	startStage := 0
	if ck != nil && tryResume {
		var err error
		man, err = ckpt.FindRestorable(ck.Dir, meta)
		if err != nil {
			return fmt.Errorf("dist: scanning %s for snapshots: %w", ck.Dir, err)
		}
		if man != nil {
			startStage = man.NextStage
			res.CheckpointsRestored++
		}
	}

	w := mpi.NewWorld(ranks)
	if opts.Faults != nil {
		w.InjectFaults(opts.Faults)
	}
	w.SetTelemetry(opts.Telemetry)
	w.SetVerifyChecksums(opts.VerifyChecksums || ck != nil)
	if opts.CommDeadline > 0 {
		w.SetDeadline(opts.CommDeadline)
	}
	out := &attemptOut{}
	if ck != nil {
		out.shards = make([]ckpt.ShardInfo, ranks)
	}
	if opts.GatherState {
		out.amplitudes = make([]complex128, 1<<plan.N)
	}
	every := 0
	if ck != nil {
		every = ck.Every()
	}

	err := w.Run(func(c *mpi.Comm) error {
		// Engine timeline: pid = rank, tid 0 (the comm layer records on
		// tid 1 of the same pid). Restart attempts merge onto one timeline.
		sc := opts.Telemetry.Scope(c.Rank(), 0, fmt.Sprintf("rank %d", c.Rank()), "engine")
		attemptT0 := sc.Now()

		local := make([]complex128, localLen)
		scratch := make([]complex128, localLen)
		if man != nil {
			t0 := sc.Now()
			if err := ckpt.ReadShard(ck.Dir, man, c.Rank(), local); err != nil {
				return fmt.Errorf("dist: restoring rank %d from stage-%d snapshot: %w", c.Rank(), man.NextStage, err)
			}
			if sc != nil {
				sc.Complete("ckpt", "restore", t0, time.Since(t0),
					telemetry.A("stage", man.NextStage), telemetry.A("amps", localLen))
			}
		} else {
			switch opts.Init {
			case InitZero:
				if c.Rank() == 0 {
					local[0] = 1
				}
			case InitUniform:
				a := complex(math.Pow(2, -float64(plan.N)/2), 0)
				for i := range local {
					local[i] = a
				}
			}
		}
		start := time.Now()
		var commTime time.Duration
		var profDur [4]time.Duration
		var profOps [4]int

		for i := range plan.Ops {
			op := &plan.Ops[i]
			if op.Stage < startStage {
				continue // already captured by the restored snapshot
			}
			// One clock pair per op feeds everything downstream — the comm
			// accounting, the profile breakdown and the trace span — so the
			// three views of "where did the time go" cannot disagree.
			t0 := time.Now()
			switch op.Kind {
			case schedule.OpCluster:
				applied := kernels.Apply(opts.Variant, local, op.Matrix.Data, op.Positions, scratch)
				if &applied[0] != &local[0] {
					local, scratch = applied, local
				}
			case schedule.OpDiagonal:
				applyDiagonal(local, op, l, c.Rank())
			case schedule.OpLocalPerm:
				// Single gather pass into the rank's scratch vector — no
				// allocation, no SwapBits transposition chain.
				kernels.PermuteInto(scratch, local, kernels.CompileBitPermutation(op.Perm))
				local, scratch = scratch, local
			case schedule.OpSwap:
				local, scratch = swapGlobalLocal(c, op, local, scratch, l)
			default:
				return fmt.Errorf("dist: unknown op kind %v", op.Kind)
			}
			d := time.Since(t0)
			if op.Kind == schedule.OpSwap {
				commTime += d
			}
			if opts.Profile {
				profDur[op.Kind] += d
				profOps[op.Kind]++
			}
			if sc != nil {
				sc.Complete("stage", op.Kind.String(), t0, d, schedule.OpTraceArgs(op)...)
			}
			// Stage boundary: snapshot the state the remaining stages start
			// from. The end of the final stage is skipped — there is nothing
			// left to resume into.
			if every > 0 && i+1 < len(plan.Ops) && plan.Ops[i+1].Stage != op.Stage && (op.Stage+1)%every == 0 {
				ct0 := sc.Now()
				if err := writeCheckpoint(c, out, meta, ck, local, op.Stage+1, opts.Telemetry); err != nil {
					return err
				}
				if sc != nil {
					sc.Complete("ckpt", "checkpoint", ct0, time.Since(ct0),
						telemetry.A("next_stage", op.Stage+1), telemetry.A("amps", localLen))
				}
			}
		}

		// Final reductions (norm + entropy), as in the Edison entropy run.
		// The sweep over the local amplitudes is pure local compute; only
		// the collectives below count toward CommElapsed.
		var localNorm, ent float64
		for _, a := range local {
			p := real(a)*real(a) + imag(a)*imag(a)
			localNorm += p
			if p > 0 {
				ent -= p * math.Log(p)
			}
		}
		t0 := time.Now()
		norm := c.AllreduceSum(localNorm)
		ent = c.AllreduceSum(ent)
		commTime += time.Since(t0)
		if sc != nil {
			sc.Complete("dist", "reduce", t0, time.Since(t0))
		}
		var samples []int
		if opts.SampleShots > 0 {
			st0 := sc.Now()
			samples = sampleLocal(c, plan, local, localNorm, l, opts, &commTime)
			if sc != nil {
				sc.Complete("dist", "sample", st0, time.Since(st0),
					telemetry.A("shots", opts.SampleShots))
			}
		}
		elapsed := time.Since(start)
		if sc != nil {
			sc.Complete("dist", "attempt", attemptT0, time.Since(attemptT0),
				telemetry.A("start_stage", startStage))
		}

		out.mu.Lock()
		out.norm = norm
		out.entropy = ent
		if elapsed > out.elapsed {
			out.elapsed = elapsed
		}
		if commTime > out.commElapsed {
			out.commElapsed = commTime
		}
		if opts.GatherState {
			copy(out.amplitudes[c.Rank()<<l:], local)
		}
		if samples != nil {
			if out.samples == nil {
				out.samples = make([]int, opts.SampleShots)
			}
			for s, b := range samples {
				if b >= 0 {
					out.samples[s] = b
				}
			}
		}
		if opts.Profile {
			if out.profile == nil {
				out.profile = make([]ProfileEntry, 4)
				for k := schedule.OpCluster; k <= schedule.OpSwap; k++ {
					out.profile[k].Kind = k.String()
				}
			}
			// Ops and Duration must come from the same rank: report both
			// from the max-duration rank (≥ so zero-duration kinds still
			// pick up a consistent op count).
			for k := range profDur {
				if profDur[k] >= out.profile[k].Duration {
					out.profile[k].Duration = profDur[k]
					out.profile[k].Ops = profOps[k]
				}
			}
		}
		out.mu.Unlock()
		return nil
	})

	// Counters accumulate across attempts, success or not. The traffic and
	// fault counters are atomics, safe even if a deadline left a rank
	// behind; out.written is atomic for the same reason.
	res.CommSteps += int(w.Traffic.Steps.Load())
	res.CommBytes += w.Traffic.Bytes.Load()
	res.FaultEvents += w.FaultEvents()
	res.CheckpointsWritten += int(out.written.Load())
	res.CheckpointsSkipped += int(out.skipped.Load())
	if err != nil {
		return err
	}
	res.Norm = out.norm
	res.Entropy = out.entropy
	res.Elapsed += out.elapsed
	res.CommElapsed += out.commElapsed
	res.Amplitudes = out.amplitudes
	res.Samples = out.samples
	res.Profile = out.profile
	return nil
}

// writeCheckpoint runs the collective snapshot protocol at a stage
// boundary: every rank persists its shard, a barrier makes all shards
// durable before anything is promised, rank 0 atomically commits the
// manifest (the commit point), and a second barrier publishes the outcome.
// A rank that dies anywhere in the protocol leaves either the previous
// snapshot or the new one intact — never a half-written mixture.
//
// A full disk degrades instead of aborting: the failing rank prunes the
// oldest snapshot and retries once; if space is still short the whole
// checkpoint is skipped (no commit, stage-local shards discarded, the
// previous snapshot stays authoritative) and the run keeps computing.
func writeCheckpoint(c *mpi.Comm, out *attemptOut, meta ckpt.Meta, pol *ckpt.Policy, local []complex128, nextStage int, tel *telemetry.Telemetry) error {
	m := meta
	m.NextStage = nextStage
	info, err := ckpt.WriteShard(pol.Dir, m, c.Rank(), local)
	if err != nil && fsio.IsNoSpace(err) {
		// Concurrent pruning from several ENOSPC'd ranks is safe: removal
		// races are tolerated and counted, never fatal.
		if ckpt.PruneOldest(pol.Dir) {
			tel.Counter("dist.ckpt_enospc_pruned").Inc()
			info, err = ckpt.WriteShard(pol.Dir, m, c.Rank(), local)
		}
	}
	switch {
	case err == nil:
		out.shards[c.Rank()] = info
	case fsio.IsNoSpace(err):
		out.skipStage.Store(int64(nextStage))
	default:
		return fmt.Errorf("dist: writing stage-%d shard for rank %d: %w", nextStage, c.Rank(), err)
	}
	c.Barrier()
	if c.Rank() == 0 {
		skip := out.skipStage.Load() == int64(nextStage)
		var cerr error
		if !skip {
			_, cerr = ckpt.Commit(pol.Dir, m, out.shards, pol.KeepN())
			if cerr != nil && fsio.IsNoSpace(cerr) {
				if ckpt.PruneOldest(pol.Dir) {
					tel.Counter("dist.ckpt_enospc_pruned").Inc()
					_, cerr = ckpt.Commit(pol.Dir, m, out.shards, pol.KeepN())
				}
				if cerr != nil && fsio.IsNoSpace(cerr) {
					skip, cerr = true, nil
				}
			}
		}
		out.commitErr = cerr
		switch {
		case skip:
			out.skipped.Add(1)
			tel.Counter("dist.ckpt_skipped").Inc()
			ckpt.DiscardStage(pol.Dir, nextStage)
		case cerr == nil:
			out.written.Add(1)
		}
	}
	c.Barrier()
	if out.commitErr != nil {
		return fmt.Errorf("dist: committing stage-%d snapshot: %w", nextStage, out.commitErr)
	}
	return nil
}

// sampleLocal implements distributed sampling: every rank shares only its
// total probability weight; a shared-seed RNG assigns each shot to a rank
// by weight (identically on every rank, no communication); the owning rank
// then draws the in-rank index from its local distribution. The returned
// slice has one entry per shot: the logical basis state for shots this
// rank owns, −1 otherwise. Only the Allgather counts toward commTime; the
// CDF construction and the draws are local work.
//
// Both CDF searches go through statevec.SearchCDF, which skips zero-width
// buckets: a draw landing exactly on a boundary can otherwise select a
// zero-probability rank or basis state.
func sampleLocal(c *mpi.Comm, plan *schedule.Plan, local []complex128, localNorm float64, l int, opts Options, commTime *time.Duration) []int {
	t0 := time.Now()
	weights := c.AllgatherFloat64(localNorm)
	*commTime += time.Since(t0)
	prefix := make([]float64, len(weights)+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	total := prefix[len(prefix)-1]
	shotRng := rand.New(rand.NewSource(opts.SampleSeed))
	out := make([]int, opts.SampleShots)
	var mine []int
	for s := range out {
		out[s] = -1
		u := shotRng.Float64() * total
		if r := statevec.SearchCDF(prefix, u); r == c.Rank() {
			mine = append(mine, s)
		}
	}
	if len(mine) == 0 {
		return out
	}
	// Local cumulative distribution, built once.
	cdf := make([]float64, len(local)+1)
	for i, a := range local {
		cdf[i+1] = cdf[i] + real(a)*real(a) + imag(a)*imag(a)
	}
	localRng := rand.New(rand.NewSource(opts.SampleSeed*31 + int64(c.Rank()) + 1))
	for _, s := range mine {
		u := localRng.Float64() * cdf[len(cdf)-1]
		idx := statevec.SearchCDF(cdf, u)
		out[s] = plan.LogicalIndex(c.Rank()<<l | idx)
	}
	return out
}

// applyDiagonal executes a diagonal op whose positions may include global
// locations: the rank's bits select the sub-diagonal, and the local part
// runs through the diagonal kernel (Sec. 3.5 — no communication).
func applyDiagonal(local []complex128, op *schedule.Op, l, rank int) {
	// Positions are sorted ascending, so local positions form a prefix.
	nl := 0
	for nl < len(op.Positions) && op.Positions[nl] < l {
		nl++
	}
	gbits := 0
	for j := nl; j < len(op.Positions); j++ {
		if rank&(1<<(op.Positions[j]-l)) != 0 {
			gbits |= 1 << (j - nl)
		}
	}
	if nl == 0 {
		// Pure global diagonal: a per-rank scalar (conditional global
		// phase).
		kernels.Scale(local, op.Diag[gbits])
		return
	}
	sub := op.Diag[gbits<<nl : (gbits+1)<<nl]
	kernels.ApplyDiagonal(local, sub, op.Positions[:nl])
}

// swapGlobalLocal executes a q-qubit global-to-local swap: local locations
// [l−q, l) are exchanged with the global locations in op.GlobalPos via one
// group all-to-all per 2^(g−q) rank group (Sec. 3.4, Fig. 3).
//
// When the scheduler fused the preceding local permutation into the swap
// (op.Perm != nil), the relabeling executes inside the all-to-all itself:
// each receiver gathers source elements through the inverse permutation
// while unpacking, so the permutation costs zero extra state passes —
// member m's chunk of the permuted state P (P[y] = local[π⁻¹(y)]) is pulled
// directly as local[π⁻¹(m·2^(l−q) + t)].
func swapGlobalLocal(c *mpi.Comm, op *schedule.Op, local, scratch []complex128, l int) (newLocal, newScratch []complex128) {
	q := len(op.LocalPos)
	for j, p := range op.LocalPos {
		if p != l-q+j {
			panic(fmt.Sprintf("dist: swap local positions %v are not the top %d locations", op.LocalPos, q))
		}
	}
	bitPositions := make([]int, q)
	for j, p := range op.GlobalPos {
		bitPositions[j] = p - l
	}
	chunk := len(local) >> q
	recv := make([][]complex128, 1<<q)
	for j := range recv {
		recv[j] = scratch[j*chunk : (j+1)*chunk]
	}
	if op.Perm != nil {
		bp := kernels.CompileBitPermutation(op.Perm)
		shift := uint(l - q)
		c.GroupAlltoallGather(bitPositions, local, recv, func(member int, src, dst []complex128) {
			kernels.PermuteGather(dst, src, bp, member<<shift)
		})
		return scratch, local
	}
	send := make([][]complex128, 1<<q)
	for j := range send {
		send[j] = local[j*chunk : (j+1)*chunk]
	}
	c.GroupAlltoall(bitPositions, send, recv)
	return scratch, local
}
