// Package dist executes scheduled plans across 2^g simulated MPI ranks —
// the multi-node layer of Sec. 3.4–3.5 of Häner & Steiger, SC'17. Each rank
// owns 2^l amplitudes; non-diagonal gates run through the local kernels,
// diagonal gates on global qubits run via specialization without
// communication, and global-to-local swaps run as (group-)all-to-alls.
//
// It also implements the per-gate baseline scheme of [19]/[5] — pairwise
// half-vector exchanges for every dense gate on a global qubit — used by
// the Table 2 speedup comparison.
package dist

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"time"

	"qusim/internal/kernels"
	"qusim/internal/mpi"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
)

// InitState selects the initial state of a run.
type InitState int

const (
	// InitZero starts in |0…0⟩.
	InitZero InitState = iota
	// InitUniform starts in the uniform superposition — the direct
	// initialization that replaces the supremacy circuits' first Hadamard
	// cycle (Sec. 3.6).
	InitUniform
)

// Result aggregates a distributed run.
type Result struct {
	Ranks       int
	LocalQubits int
	Norm        float64
	Entropy     float64 // Shannon entropy of the output distribution, nats

	CommSteps int   // collective communication steps
	CommBytes int64 // payload bytes crossing rank boundaries

	// FaultEvents counts the perturbations injected when Options.Faults
	// was set (0 on clean runs).
	FaultEvents int64

	Elapsed     time.Duration // wall time of the slowest rank
	CommElapsed time.Duration // wall time spent in communication (max rank)

	// Amplitudes holds the gathered full state when GatherState was set
	// (index layout: rank bits are the top g bits — location p ≥ l is rank
	// bit p−l).
	Amplitudes []complex128

	// Samples holds SampleShots logical basis states drawn from the output
	// distribution (already translated back to qubit order).
	Samples []int

	// Profile holds the per-op-kind time breakdown when Options.Profile
	// was set, ordered by kind name.
	Profile []ProfileEntry
}

// Options configures Run.
type Options struct {
	Ranks int // power of two ≥ 1
	Init  InitState
	// GatherState collects the full 2^n state into Result.Amplitudes
	// (testing/verification only — defeats the point of distribution).
	GatherState bool
	// Variant overrides the gate kernel used on each rank (default Auto).
	Variant kernels.Variant
	// SampleShots draws that many basis states from the output
	// distribution without gathering the state: ranks share only their
	// total probability weights, then sample locally. Results land in
	// Result.Samples as logical basis states (qubit q = bit q).
	SampleShots int
	// SampleSeed seeds the distributed sampler.
	SampleSeed int64
	// Profile collects a per-op-kind execution profile into
	// Result.Profile — how the paper's "time spent in communication and
	// synchronization is 78%" breakdowns are measured.
	Profile bool
	// Faults arms deterministic fault injection in the simulated MPI layer
	// (delayed chunk posting, out-of-order delivery, barrier jitter). A
	// correct run produces identical amplitudes with or without faults;
	// package verify soaks this invariant.
	Faults *mpi.FaultPlan
}

// ProfileEntry aggregates wall time for one op kind (on the slowest rank).
type ProfileEntry struct {
	Kind     string
	Ops      int
	Duration time.Duration
}

// Run executes a plan produced by schedule.Build. plan.L must equal
// n − log2(Ranks).
func Run(plan *schedule.Plan, opts Options) (*Result, error) {
	ranks := opts.Ranks
	if ranks < 1 || ranks&(ranks-1) != 0 {
		return nil, fmt.Errorf("dist: rank count %d is not a power of two", ranks)
	}
	g := bits.TrailingZeros(uint(ranks))
	if plan.N-plan.L != g && !(ranks == 1 && plan.L >= plan.N) {
		return nil, fmt.Errorf("dist: plan has %d global qubits, world provides %d", plan.N-plan.L, g)
	}
	l := plan.N - g
	localLen := 1 << l

	res := &Result{Ranks: ranks, LocalQubits: l}
	if opts.GatherState {
		res.Amplitudes = make([]complex128, 1<<plan.N)
	}
	w := mpi.NewWorld(ranks)
	if opts.Faults != nil {
		w.InjectFaults(opts.Faults)
	}
	var mu sync.Mutex

	err := w.Run(func(c *mpi.Comm) error {
		local := make([]complex128, localLen)
		scratch := make([]complex128, localLen)
		switch opts.Init {
		case InitZero:
			if c.Rank() == 0 {
				local[0] = 1
			}
		case InitUniform:
			a := complex(math.Pow(2, -float64(plan.N)/2), 0)
			for i := range local {
				local[i] = a
			}
		}
		start := time.Now()
		var commTime time.Duration
		var profDur [4]time.Duration
		var profOps [4]int

		for i := range plan.Ops {
			op := &plan.Ops[i]
			t0 := time.Now()
			switch op.Kind {
			case schedule.OpCluster:
				out := kernels.Apply(opts.Variant, local, op.Matrix.Data, op.Positions, scratch)
				if &out[0] != &local[0] {
					local, scratch = out, local
				}
			case schedule.OpDiagonal:
				applyDiagonal(local, op, l, c.Rank())
			case schedule.OpLocalPerm:
				// Single gather pass into the rank's scratch vector — no
				// allocation, no SwapBits transposition chain.
				kernels.PermuteInto(scratch, local, kernels.CompileBitPermutation(op.Perm))
				local, scratch = scratch, local
			case schedule.OpSwap:
				local, scratch = swapGlobalLocal(c, op, local, scratch, l)
				commTime += time.Since(t0)
			default:
				return fmt.Errorf("dist: unknown op kind %v", op.Kind)
			}
			if opts.Profile {
				profDur[op.Kind] += time.Since(t0)
				profOps[op.Kind]++
			}
		}

		// Final reductions (norm + entropy), as in the Edison entropy run.
		// The sweep over the local amplitudes is pure local compute; only
		// the collectives below count toward CommElapsed.
		var localNorm, ent float64
		for _, a := range local {
			p := real(a)*real(a) + imag(a)*imag(a)
			localNorm += p
			if p > 0 {
				ent -= p * math.Log(p)
			}
		}
		t0 := time.Now()
		norm := c.AllreduceSum(localNorm)
		ent = c.AllreduceSum(ent)
		commTime += time.Since(t0)
		var samples []int
		if opts.SampleShots > 0 {
			samples = sampleLocal(c, plan, local, localNorm, l, opts, &commTime)
		}
		elapsed := time.Since(start)

		mu.Lock()
		res.Norm = norm
		res.Entropy = ent
		if elapsed > res.Elapsed {
			res.Elapsed = elapsed
		}
		if commTime > res.CommElapsed {
			res.CommElapsed = commTime
		}
		if opts.GatherState {
			copy(res.Amplitudes[c.Rank()<<l:], local)
		}
		if samples != nil {
			if res.Samples == nil {
				res.Samples = make([]int, opts.SampleShots)
			}
			for s, b := range samples {
				if b >= 0 {
					res.Samples[s] = b
				}
			}
		}
		if opts.Profile {
			if res.Profile == nil {
				res.Profile = make([]ProfileEntry, 4)
				for k := schedule.OpCluster; k <= schedule.OpSwap; k++ {
					res.Profile[k].Kind = k.String()
				}
			}
			// Ops and Duration must come from the same rank: report both
			// from the max-duration rank (≥ so zero-duration kinds still
			// pick up a consistent op count).
			for k := range profDur {
				if profDur[k] >= res.Profile[k].Duration {
					res.Profile[k].Duration = profDur[k]
					res.Profile[k].Ops = profOps[k]
				}
			}
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.CommSteps = int(w.Traffic.Steps.Load())
	res.CommBytes = w.Traffic.Bytes.Load()
	res.FaultEvents = w.FaultEvents()
	return res, nil
}

// sampleLocal implements distributed sampling: every rank shares only its
// total probability weight; a shared-seed RNG assigns each shot to a rank
// by weight (identically on every rank, no communication); the owning rank
// then draws the in-rank index from its local distribution. The returned
// slice has one entry per shot: the logical basis state for shots this
// rank owns, −1 otherwise. Only the Allgather counts toward commTime; the
// CDF construction and the draws are local work.
//
// Both CDF searches go through statevec.SearchCDF, which skips zero-width
// buckets: a draw landing exactly on a boundary can otherwise select a
// zero-probability rank or basis state.
func sampleLocal(c *mpi.Comm, plan *schedule.Plan, local []complex128, localNorm float64, l int, opts Options, commTime *time.Duration) []int {
	t0 := time.Now()
	weights := c.AllgatherFloat64(localNorm)
	*commTime += time.Since(t0)
	prefix := make([]float64, len(weights)+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	total := prefix[len(prefix)-1]
	shotRng := rand.New(rand.NewSource(opts.SampleSeed))
	out := make([]int, opts.SampleShots)
	var mine []int
	for s := range out {
		out[s] = -1
		u := shotRng.Float64() * total
		if r := statevec.SearchCDF(prefix, u); r == c.Rank() {
			mine = append(mine, s)
		}
	}
	if len(mine) == 0 {
		return out
	}
	// Local cumulative distribution, built once.
	cdf := make([]float64, len(local)+1)
	for i, a := range local {
		cdf[i+1] = cdf[i] + real(a)*real(a) + imag(a)*imag(a)
	}
	localRng := rand.New(rand.NewSource(opts.SampleSeed*31 + int64(c.Rank()) + 1))
	for _, s := range mine {
		u := localRng.Float64() * cdf[len(cdf)-1]
		idx := statevec.SearchCDF(cdf, u)
		out[s] = plan.LogicalIndex(c.Rank()<<l | idx)
	}
	return out
}

// applyDiagonal executes a diagonal op whose positions may include global
// locations: the rank's bits select the sub-diagonal, and the local part
// runs through the diagonal kernel (Sec. 3.5 — no communication).
func applyDiagonal(local []complex128, op *schedule.Op, l, rank int) {
	// Positions are sorted ascending, so local positions form a prefix.
	nl := 0
	for nl < len(op.Positions) && op.Positions[nl] < l {
		nl++
	}
	gbits := 0
	for j := nl; j < len(op.Positions); j++ {
		if rank&(1<<(op.Positions[j]-l)) != 0 {
			gbits |= 1 << (j - nl)
		}
	}
	if nl == 0 {
		// Pure global diagonal: a per-rank scalar (conditional global
		// phase).
		kernels.Scale(local, op.Diag[gbits])
		return
	}
	sub := op.Diag[gbits<<nl : (gbits+1)<<nl]
	kernels.ApplyDiagonal(local, sub, op.Positions[:nl])
}

// swapGlobalLocal executes a q-qubit global-to-local swap: local locations
// [l−q, l) are exchanged with the global locations in op.GlobalPos via one
// group all-to-all per 2^(g−q) rank group (Sec. 3.4, Fig. 3).
//
// When the scheduler fused the preceding local permutation into the swap
// (op.Perm != nil), the relabeling executes inside the all-to-all itself:
// each receiver gathers source elements through the inverse permutation
// while unpacking, so the permutation costs zero extra state passes —
// member m's chunk of the permuted state P (P[y] = local[π⁻¹(y)]) is pulled
// directly as local[π⁻¹(m·2^(l−q) + t)].
func swapGlobalLocal(c *mpi.Comm, op *schedule.Op, local, scratch []complex128, l int) (newLocal, newScratch []complex128) {
	q := len(op.LocalPos)
	for j, p := range op.LocalPos {
		if p != l-q+j {
			panic(fmt.Sprintf("dist: swap local positions %v are not the top %d locations", op.LocalPos, q))
		}
	}
	bitPositions := make([]int, q)
	for j, p := range op.GlobalPos {
		bitPositions[j] = p - l
	}
	chunk := len(local) >> q
	recv := make([][]complex128, 1<<q)
	for j := range recv {
		recv[j] = scratch[j*chunk : (j+1)*chunk]
	}
	if op.Perm != nil {
		bp := kernels.CompileBitPermutation(op.Perm)
		shift := uint(l - q)
		c.GroupAlltoallGather(bitPositions, local, recv, func(member int, src, dst []complex128) {
			kernels.PermuteGather(dst, src, bp, member<<shift)
		})
		return scratch, local
	}
	send := make([][]complex128, 1<<q)
	for j := range send {
		send[j] = local[j*chunk : (j+1)*chunk]
	}
	c.GroupAlltoall(bitPositions, send, recv)
	return scratch, local
}
