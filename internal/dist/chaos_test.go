package dist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qusim/internal/chaos"
	"qusim/internal/circuit"
	"qusim/internal/ckpt"
	"qusim/internal/mpi"
	"qusim/internal/schedule"
	"qusim/internal/telemetry"
)

// Composed-fault scenarios: the degradation policies (per-class restart
// accounting, crash inside the checkpoint protocol itself, snapshot
// corruption fallback, ENOSPC-at-any-failpoint skip) must keep every run
// bitwise identical to a clean one. Graceful degradation that changes the
// answer is just a slower way to be wrong.

// chaosTestPlan is a smaller plan than faultTestPlan (4 ranks, 10 qubits)
// so the ENOSPC sweep — one full run per write-op failpoint — stays cheap.
func chaosTestPlan(t *testing.T) *schedule.Plan {
	t.Helper()
	r, c := circuit.GridForQubits(10)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 12, Seed: 7})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestRestartClassCounters pins the per-class restart partition: each hard
// fault class surfaces as exactly its own counter (Result field and
// telemetry), recovery restores bitwise, and the classes never bleed into
// each other.
func TestRestartClassCounters(t *testing.T) {
	clean := cleanReference(t)
	cases := []struct {
		name   string
		faults *mpi.FaultPlan
		fired  func(*mpi.FaultPlan) bool
		field  func(*Result) int
		metric string
	}{
		{
			name:   "rank-dead",
			faults: &mpi.FaultPlan{Crash: &mpi.CrashFault{Rank: 3, Collective: 2}},
			fired:  func(f *mpi.FaultPlan) bool { return f.Crash.Fired() },
			field:  func(r *Result) int { return r.RestartsRankDead },
			metric: "dist.restart_rank_dead",
		},
		{
			name:   "corrupt",
			faults: &mpi.FaultPlan{Corrupt: &mpi.CorruptFault{Rank: 5, Exchange: 0}},
			fired:  func(f *mpi.FaultPlan) bool { return f.Corrupt.Fired() },
			field:  func(r *Result) int { return r.RestartsCorrupt },
			metric: "dist.restart_corrupt",
		},
		{
			name:   "stalled",
			faults: &mpi.FaultPlan{Stall: &mpi.StallFault{Rank: 2, Collective: 2, Duration: 2 * time.Second}},
			fired:  func(f *mpi.FaultPlan) bool { return f.Stall.Fired() },
			field:  func(r *Result) int { return r.RestartsStalled },
			metric: "dist.restart_stalled",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tel := telemetry.New()
			res, err := Run(faultTestPlan(t), Options{
				Ranks: 8, Init: InitUniform, GatherState: true,
				Faults:       tc.faults,
				Checkpoint:   &ckpt.Policy{Dir: t.TempDir()},
				CommDeadline: 250 * time.Millisecond,
				Telemetry:    tel,
			})
			if err != nil {
				t.Fatalf("%s was not recovered: %v", tc.name, err)
			}
			if !tc.fired(tc.faults) {
				t.Fatalf("%s fault never fired — the scenario tested nothing", tc.name)
			}
			if got := tc.field(res); got != 1 {
				t.Errorf("class counter = %d, want 1", got)
			}
			if res.Restarts != res.RestartsCorrupt+res.RestartsRankDead+res.RestartsStalled {
				t.Errorf("class partition %d+%d+%d does not sum to Restarts=%d",
					res.RestartsCorrupt, res.RestartsRankDead, res.RestartsStalled, res.Restarts)
			}
			if got := tel.Counter(tc.metric).Value(); got != 1 {
				t.Errorf("%s = %d, want 1", tc.metric, got)
			}
			if got := tel.Counter("dist.attempts").Value(); got != 2 {
				t.Errorf("dist.attempts = %d, want 2", got)
			}
			if tel.Histogram("dist.recovery_latency_ns").Count() == 0 {
				t.Error("recovery latency histogram has no observations")
			}
			assertBitwiseEqual(t, clean, res)
		})
	}
}

// TestCrashInsideCheckpointCollective kills a rank inside the snapshot
// protocol's own collectives — the window where naive recovery logic is
// most likely to see a half-taken checkpoint. Barrier #0 is the
// shard-durability barrier (nothing committed yet: recovery starts fresh),
// Barrier #1 is the publish barrier (rank 0 has committed: recovery
// restores the snapshot whose commit the victim never saw).
func TestCrashInsideCheckpointCollective(t *testing.T) {
	clean := cleanReference(t)
	cases := []struct {
		name         string
		barrier      int
		wantRestored int
	}{
		{"before-commit", 0, 0},
		{"after-commit", 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			crash := &mpi.CrashFault{Rank: 2, Collective: tc.barrier, Label: "Barrier"}
			res, err := Run(faultTestPlan(t), Options{
				Ranks: 8, Init: InitUniform, GatherState: true,
				Faults:     &mpi.FaultPlan{Crash: crash},
				Checkpoint: &ckpt.Policy{Dir: t.TempDir()},
			})
			if err != nil {
				t.Fatalf("crash in checkpoint collective was not recovered: %v", err)
			}
			if !crash.Fired() {
				t.Fatal("labeled crash never fired — the scenario tested nothing")
			}
			if res.RestartsRankDead != 1 {
				t.Errorf("RestartsRankDead = %d, want 1", res.RestartsRankDead)
			}
			if res.CheckpointsRestored != tc.wantRestored {
				t.Errorf("CheckpointsRestored = %d, want %d", res.CheckpointsRestored, tc.wantRestored)
			}
			assertBitwiseEqual(t, clean, res)
		})
	}
}

// TestCorruptedNewestSnapshotFallsBack resumes from a directory whose
// newest snapshot has been corrupted on disk after commit: the restore
// walk must reject it shard-by-shard and fall back to the older snapshot,
// finishing bitwise identical. (A restore that picked the corrupt newest
// would abort the run — ReadShard failures are not recoverable — so plain
// success proves the fallback.)
func TestCorruptedNewestSnapshotFallsBack(t *testing.T) {
	clean := cleanReference(t)
	dir := t.TempDir()
	opts := Options{
		Ranks: 8, Init: InitUniform, GatherState: true,
		Checkpoint: &ckpt.Policy{Dir: dir, Keep: 2},
	}
	if _, err := Run(faultTestPlan(t), opts); err != nil {
		t.Fatal(err)
	}

	manifests, err := filepath.Glob(filepath.Join(dir, "manifest-*.json"))
	if err != nil || len(manifests) < 2 {
		t.Fatalf("want ≥2 retained manifests to fall back across, have %d (%v)", len(manifests), err)
	}
	newest := 0
	for _, p := range manifests {
		m, err := ckpt.LoadManifest(p)
		if err != nil {
			t.Fatal(err)
		}
		if m.NextStage > newest {
			newest = m.NextStage
		}
	}
	shards, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%06d-r*.ckpt", newest)))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shards found for newest stage %d", newest)
	}
	for _, p := range shards {
		f, err := os.OpenFile(p, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xff}, 100); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	opts.Resume = true
	res, err := Run(faultTestPlan(t), opts)
	if err != nil {
		t.Fatalf("resume with corrupt newest snapshot failed instead of falling back: %v", err)
	}
	if res.CheckpointsRestored != 1 {
		t.Errorf("CheckpointsRestored = %d, want 1 (the older snapshot)", res.CheckpointsRestored)
	}
	assertBitwiseEqual(t, clean, res)
}

// TestENOSPCAtEveryFailpointNeverAborts is the regression sweep for the
// full-disk degradation contract: a probe run learns how many write-family
// ops the checkpoint path performs, then the disk is made permanently full
// starting at every single one of those ops in turn. Whatever the
// failpoint — shard CreateTemp, payload write, fsync, manifest rename —
// the run must complete without error, skip (not abort on) the starved
// checkpoints, and stay bitwise identical.
func TestENOSPCAtEveryFailpointNeverAborts(t *testing.T) {
	plan := chaosTestPlan(t)
	clean, err := Run(plan, Options{Ranks: 4, Init: InitUniform, GatherState: true})
	if err != nil {
		t.Fatal(err)
	}

	probe := chaos.NewFS(chaos.DiskFaults{}, nil)
	old := ckpt.SetFS(probe)
	t.Cleanup(func() { ckpt.SetFS(old) })
	if _, err := Run(plan, Options{
		Ranks: 4, Init: InitUniform,
		Checkpoint: &ckpt.Policy{Dir: t.TempDir()},
	}); err != nil {
		t.Fatal(err)
	}
	writeOps := int(probe.Stats().WriteOps)
	if writeOps == 0 {
		t.Fatal("probe counted no write ops — the checkpoint path is not on the seam")
	}

	skippedSomewhere := false
	for k := 1; k <= writeOps; k++ {
		fs := chaos.NewFS(chaos.DiskFaults{NoSpaceAt: k, NoSpaceRun: 1 << 30}, nil)
		ckpt.SetFS(fs)
		tel := telemetry.New()
		res, err := Run(plan, Options{
			Ranks: 4, Init: InitUniform, GatherState: true,
			Checkpoint: &ckpt.Policy{Dir: t.TempDir()},
			Telemetry:  tel,
		})
		ckpt.SetFS(old)
		if err != nil {
			t.Fatalf("ENOSPC from write op %d on aborted the run: %v", k, err)
		}
		if fs.Stats().NoSpace > 0 {
			if res.CheckpointsSkipped == 0 {
				t.Errorf("failpoint %d: ENOSPC injected but no checkpoint reported skipped", k)
			}
			if tel.Counter("dist.ckpt_skipped").Value() == 0 {
				t.Errorf("failpoint %d: dist.ckpt_skipped telemetry never fired", k)
			}
			skippedSomewhere = true
		}
		assertBitwiseEqual(t, clean, res)
	}
	if !skippedSomewhere {
		t.Error("no failpoint ever starved a checkpoint — the sweep exercised nothing")
	}
}

// TestENOSPCWindowPrunesAndRecovers: a transient full disk (a bounded op
// window hitting the first of several checkpoints) must at worst skip the
// starved checkpoint and keep committing once space returns — degradation
// is local to the window, not sticky for the rest of the run.
func TestENOSPCWindowPrunesAndRecovers(t *testing.T) {
	clean := cleanReference(t)
	fs := chaos.NewFS(chaos.DiskFaults{NoSpaceAt: 3, NoSpaceRun: 4}, nil)
	old := ckpt.SetFS(fs)
	t.Cleanup(func() { ckpt.SetFS(old) })
	res, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform, GatherState: true,
		Checkpoint: &ckpt.Policy{Dir: t.TempDir(), Keep: 3},
	})
	if err != nil {
		t.Fatalf("transient ENOSPC window aborted the run: %v", err)
	}
	if fs.Stats().NoSpace == 0 {
		t.Fatal("window never fired — the scenario tested nothing")
	}
	if res.CheckpointsWritten == 0 {
		t.Error("no checkpoint committed even after the window passed")
	}
	assertBitwiseEqual(t, clean, res)
}

// TestRunDeadlineSurfaces: when RetryPolicy.Deadline expires before the
// restart budget does, the run gives up with ErrRunDeadline instead of
// burning the remaining attempts.
func TestRunDeadlineSurfaces(t *testing.T) {
	_, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform,
		Faults:     &mpi.FaultPlan{Crash: &mpi.CrashFault{Rank: 1, Collective: 1}},
		Checkpoint: &ckpt.Policy{Dir: t.TempDir()},
		Retry:      &RetryPolicy{Deadline: time.Nanosecond},
	})
	if !errors.Is(err, ErrRunDeadline) {
		t.Fatalf("err = %v, want ErrRunDeadline", err)
	}
}
