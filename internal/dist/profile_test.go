package dist

import (
	"testing"

	"qusim/internal/schedule"
)

func TestProfileBreakdown(t *testing.T) {
	c := supremacy(12, 16, 95, false)
	plan, err := schedule.Build(c, schedule.DefaultOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Ranks: 8, Init: InitUniform, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile) != 4 {
		t.Fatalf("profile has %d entries, want 4", len(res.Profile))
	}
	byKind := map[string]ProfileEntry{}
	for _, e := range res.Profile {
		byKind[e.Kind] = e
	}
	if byKind["cluster"].Ops != plan.Stats.Clusters-countDiagClusters(plan) {
		// Clusters that fused to diagonal matrices execute as diag ops;
		// the cluster profile entry counts OpCluster executions.
		t.Logf("cluster ops %d vs plan clusters %d (diagonal-fused clusters run as diag)",
			byKind["cluster"].Ops, plan.Stats.Clusters)
	}
	if byKind["swap"].Ops != plan.Stats.Swaps {
		t.Errorf("profiled swap ops %d, plan says %d", byKind["swap"].Ops, plan.Stats.Swaps)
	}
	if byKind["cluster"].Duration <= 0 {
		t.Error("cluster time not recorded")
	}
	// Without Profile, no breakdown is produced.
	res2, err := Run(plan, Options{Ranks: 8, Init: InitUniform})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Profile != nil {
		t.Error("profile produced without Options.Profile")
	}
}

func countDiagClusters(plan *schedule.Plan) int {
	n := 0
	for _, op := range plan.Ops {
		if op.Kind == schedule.OpDiagonal && op.GateCount > 1 {
			n++
		}
	}
	return n
}
