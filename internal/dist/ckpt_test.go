package dist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/ckpt"
	"qusim/internal/mpi"
	"qusim/internal/schedule"
)

// otherPlan builds a different circuit (same geometry, different seed) so
// its fingerprint differs from faultTestPlan's.
func otherPlan(t *testing.T) *schedule.Plan {
	t.Helper()
	r, c := circuit.GridForQubits(12)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 16, Seed: 99})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// The checkpoint/restart contract: a run that crashes, corrupts a payload,
// or resumes in a new process must land on amplitudes bitwise identical to
// an uninterrupted run — restored shards are exact, and the kernels are
// deterministic, so recovery is invisible in the output.

func cleanReference(t *testing.T) *Result {
	t.Helper()
	res, err := Run(faultTestPlan(t), Options{Ranks: 8, Init: InitUniform, GatherState: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertBitwiseEqual(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Amplitudes) != len(got.Amplitudes) {
		t.Fatalf("state sizes differ: %d vs %d", len(want.Amplitudes), len(got.Amplitudes))
	}
	for i := range want.Amplitudes {
		if want.Amplitudes[i] != got.Amplitudes[i] {
			t.Fatalf("amplitude %d differs: %v vs %v", i, want.Amplitudes[i], got.Amplitudes[i])
		}
	}
}

func TestCheckpointedRunMatchesClean(t *testing.T) {
	clean := cleanReference(t)
	dir := t.TempDir()
	res, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform, GatherState: true,
		Checkpoint: &ckpt.Policy{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointsWritten == 0 {
		t.Fatal("no checkpoints committed")
	}
	if res.Restarts != 0 || res.CheckpointsRestored != 0 {
		t.Errorf("clean run reports restarts=%d restored=%d", res.Restarts, res.CheckpointsRestored)
	}
	assertBitwiseEqual(t, clean, res)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	manifests := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "manifest-") {
			manifests++
		}
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("stray temp file %s survived", e.Name())
		}
	}
	if manifests == 0 || manifests > 2 {
		t.Errorf("retention kept %d manifests, want 1–2", manifests)
	}
}

func TestRecoveryFromRankCrash(t *testing.T) {
	clean := cleanReference(t)
	dir := t.TempDir()
	crash := &mpi.CrashFault{Rank: 3, Collective: 2}
	res, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform, GatherState: true,
		Faults:     &mpi.FaultPlan{Crash: crash},
		Checkpoint: &ckpt.Policy{Dir: dir},
	})
	if err != nil {
		t.Fatalf("crash was not recovered: %v", err)
	}
	if !crash.Fired() {
		t.Fatal("crash fault never fired — the scenario tested nothing")
	}
	if res.FaultEvents != 1 {
		t.Errorf("FaultEvents = %d, want exactly the injected crash", res.FaultEvents)
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", res.Restarts)
	}
	assertBitwiseEqual(t, clean, res)
}

func TestRecoveryFromPayloadCorruption(t *testing.T) {
	clean := cleanReference(t)
	dir := t.TempDir()
	corrupt := &mpi.CorruptFault{Rank: 5, Exchange: 0}
	res, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform, GatherState: true,
		Faults:     &mpi.FaultPlan{Corrupt: corrupt},
		Checkpoint: &ckpt.Policy{Dir: dir}, // checksums implied
	})
	if err != nil {
		t.Fatalf("corruption was not recovered: %v", err)
	}
	if !corrupt.Fired() {
		t.Fatal("corrupt fault never fired — the scenario tested nothing")
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", res.Restarts)
	}
	assertBitwiseEqual(t, clean, res)
}

func TestCorruptionWithoutRecoveryIsDetectedNotSilent(t *testing.T) {
	// Checksums on, but no checkpoint policy: the corrupted payload must
	// surface as an ErrCorrupt failure, never as wrong amplitudes.
	_, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform,
		Faults:          &mpi.FaultPlan{Corrupt: &mpi.CorruptFault{Rank: 1, Exchange: 0}},
		VerifyChecksums: true,
	})
	if err == nil {
		t.Fatal("corrupted run completed without error")
	}
	if !mpi.Recoverable(err) {
		t.Errorf("corruption error should be classified recoverable: %v", err)
	}
}

func TestResumeContinuesAcrossProcesses(t *testing.T) {
	// Simulate a process restart: a completed run leaves checkpoints behind
	// (retention keeps the newest), and a second Run with Resume picks up
	// the newest snapshot instead of re-initializing, finishing on
	// identical amplitudes.
	clean := cleanReference(t)
	dir := t.TempDir()
	opts := Options{
		Ranks: 8, Init: InitUniform, GatherState: true,
		Checkpoint: &ckpt.Policy{Dir: dir},
	}
	if _, err := Run(faultTestPlan(t), opts); err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	res, err := Run(faultTestPlan(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointsRestored != 1 {
		t.Errorf("CheckpointsRestored = %d, want 1", res.CheckpointsRestored)
	}
	assertBitwiseEqual(t, clean, res)
}

func TestResumeRejectsForeignCheckpoints(t *testing.T) {
	// A directory holding another plan's snapshots must not be replayed
	// into this run: the plan fingerprint gates restore, so the run starts
	// fresh and still produces the right answer.
	dir := t.TempDir()
	if _, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform,
		Checkpoint: &ckpt.Policy{Dir: dir},
	}); err != nil {
		t.Fatal(err)
	}
	other := otherPlan(t)
	clean, err := Run(other, Options{Ranks: 8, Init: InitUniform, GatherState: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(other, Options{
		Ranks: 8, Init: InitUniform, GatherState: true,
		Checkpoint: &ckpt.Policy{Dir: dir},
		Resume:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointsRestored != 0 {
		t.Errorf("restored %d foreign checkpoints", res.CheckpointsRestored)
	}
	assertBitwiseEqual(t, clean, res)
}

func TestCheckpointCadenceReducesSnapshots(t *testing.T) {
	everyStage, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform,
		Checkpoint: &ckpt.Policy{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform,
		Checkpoint: &ckpt.Policy{Dir: t.TempDir(), EveryStages: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.CheckpointsWritten >= everyStage.CheckpointsWritten {
		t.Errorf("EveryStages=2 wrote %d snapshots vs %d at cadence 1",
			sparse.CheckpointsWritten, everyStage.CheckpointsWritten)
	}
	if sparse.CheckpointsWritten == 0 {
		t.Error("sparse cadence wrote no snapshots at all")
	}
}

func TestPrunedDirectoryContainsStrayFreeState(t *testing.T) {
	// After a crash-and-recover run the directory holds only committed
	// snapshot files: manifests with their shards, no temp strays.
	dir := t.TempDir()
	if _, err := Run(faultTestPlan(t), Options{
		Ranks: 8, Init: InitUniform,
		Faults:     &mpi.FaultPlan{Crash: &mpi.CrashFault{Rank: 0, Collective: 4}},
		Checkpoint: &ckpt.Policy{Dir: dir, Keep: 1},
	}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("stray temp files after recovery: %v", matches)
	}
}
