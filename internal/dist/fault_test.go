package dist

import (
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/mpi"
	"qusim/internal/schedule"
)

// Fault-injected distributed runs must produce bit-identical amplitudes
// and identical traffic accounting: the FaultPlan perturbs only timing and
// interleaving, never semantics. Any difference is a synchronization bug
// in the swap communication scheme.

func faultTestPlan(t *testing.T) *schedule.Plan {
	t.Helper()
	r, c := circuit.GridForQubits(12)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 16, Seed: 5})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestRunUnderFaultsMatchesCleanRun(t *testing.T) {
	plan := faultTestPlan(t)
	clean, err := Run(plan, Options{Ranks: 8, Init: InitUniform, GatherState: true})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(plan, Options{
		Ranks: 8, Init: InitUniform, GatherState: true,
		Faults: mpi.DefaultFaults(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.FaultEvents == 0 {
		t.Fatal("fault plan armed but nothing injected")
	}
	if clean.FaultEvents != 0 {
		t.Errorf("clean run reports %d fault events", clean.FaultEvents)
	}
	for i := range clean.Amplitudes {
		if clean.Amplitudes[i] != faulty.Amplitudes[i] {
			t.Fatalf("amplitude %d differs under faults: %v vs %v", i, clean.Amplitudes[i], faulty.Amplitudes[i])
		}
	}
	if clean.CommSteps != faulty.CommSteps || clean.CommBytes != faulty.CommBytes {
		t.Errorf("traffic accounting drifted under faults: steps %d/%d bytes %d/%d",
			clean.CommSteps, faulty.CommSteps, clean.CommBytes, faulty.CommBytes)
	}
}

func TestBaselineUnderFaultsMatchesCleanRun(t *testing.T) {
	r, c := circuit.GridForQubits(10)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 12, Seed: 6})
	opts := BaselineOptions{Ranks: 4, Init: InitUniform, Specialize2Q: true, GatherState: true}
	clean, err := RunBaseline(circ, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Faults = mpi.DefaultFaults(22)
	faulty, err := RunBaseline(circ, opts)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.FaultEvents == 0 {
		t.Fatal("fault plan armed but nothing injected")
	}
	for i := range clean.Amplitudes {
		if clean.Amplitudes[i] != faulty.Amplitudes[i] {
			t.Fatalf("amplitude %d differs under faults", i)
		}
	}
	if clean.CommSteps != faulty.CommSteps || clean.CommBytes != faulty.CommBytes {
		t.Errorf("traffic accounting drifted: steps %d/%d bytes %d/%d",
			clean.CommSteps, faulty.CommSteps, clean.CommBytes, faulty.CommBytes)
	}
}
