package dist

import (
	"math"
	"math/cmplx"
	"testing"

	"qusim/internal/kernels"
	"qusim/internal/schedule"
)

func TestDistributedWithNaiveKernelVariant(t *testing.T) {
	// The engine must handle the buffer-swapping Naive variant correctly
	// across swaps (local/scratch aliasing is the failure mode).
	c := supremacy(12, 14, 140, false)
	opts := schedule.DefaultOptions(9)
	plan, err := schedule.Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(plan, Options{Ranks: 8, Init: InitZero, GatherState: true, Variant: kernels.Naive})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(plan, Options{Ranks: 8, Init: InitZero, GatherState: true, Variant: kernels.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	var maxd float64
	for i := range a.Amplitudes {
		if d := cmplx.Abs(a.Amplitudes[i] - b.Amplitudes[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-9 {
		t.Errorf("naive vs specialized distributed runs deviate: %g", maxd)
	}
}

func TestThirtyTwoRanks(t *testing.T) {
	c := supremacy(12, 12, 141, false)
	opts := schedule.DefaultOptions(7) // 5 global qubits
	plan, err := schedule.Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Ranks: 32, Init: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	want := naive(c, InitZero)
	if math.Abs(res.Entropy-want.Entropy()) > 1e-9 {
		t.Errorf("32-rank entropy %v, want %v", res.Entropy, want.Entropy())
	}
}

func TestGatherStateLayout(t *testing.T) {
	// Rank r's local amplitudes must land at offset r·2^l in the gathered
	// state: verify with a basis state on a known rank.
	c := supremacy(10, 8, 142, false)
	plan, err := schedule.Build(c, schedule.DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Ranks: 4, Init: InitZero, GatherState: true})
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for _, a := range res.Amplitudes {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("gathered state norm %v", norm)
	}
	if len(res.Amplitudes) != 1<<c.N {
		t.Errorf("gathered %d amplitudes, want %d", len(res.Amplitudes), 1<<c.N)
	}
}

func TestBaselineSingleRank(t *testing.T) {
	c := supremacy(10, 12, 143, false)
	res, err := RunBaseline(c, BaselineOptions{Ranks: 1, Init: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSteps != 0 || res.CommBytes != 0 {
		t.Errorf("single-rank baseline communicated: %d steps %d bytes", res.CommSteps, res.CommBytes)
	}
	want := naive(c, InitZero)
	if math.Abs(res.Entropy-want.Entropy()) > 1e-9 {
		t.Errorf("entropy %v, want %v", res.Entropy, want.Entropy())
	}
}

func BenchmarkGlobalToLocalSwap(b *testing.B) {
	// The all-to-all is the paper's dominant cost at scale: benchmark one
	// full swap of 2^20 amplitudes across 8 ranks.
	c := supremacy(20, 9, 144, true)
	plan, err := schedule.Build(c, schedule.DefaultOptions(17))
	if err != nil {
		b.Fatal(err)
	}
	var swapOp *schedule.Op
	for i := range plan.Ops {
		if plan.Ops[i].Kind == schedule.OpSwap {
			swapOp = &plan.Ops[i]
			break
		}
	}
	if swapOp == nil {
		b.Skip("no swap in plan")
	}
	// Isolate the swap in a minimal plan.
	mini := &schedule.Plan{
		N: plan.N, L: plan.L,
		Ops:        []schedule.Op{*swapOp},
		InitialPos: plan.InitialPos,
		FinalPos:   plan.InitialPos,
	}
	b.SetBytes(int64(16 << 20))
	for i := 0; i < b.N; i++ {
		if _, err := Run(mini, Options{Ranks: 8, Init: InitUniform}); err != nil {
			b.Fatal(err)
		}
	}
}
