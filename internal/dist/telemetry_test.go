package dist

import (
	"bytes"
	"encoding/json"
	"testing"

	"qusim/internal/schedule"
	"qusim/internal/telemetry"
)

// TestTelemetryProfileCompatible asserts that arming telemetry does not
// change the legacy Result.Profile contract: the same plan profiled with and
// without a telemetry sink yields identical Kind/Ops breakdowns (durations
// are wall-clock and may differ, but both derive from the same single
// clock-read pair per op).
func TestTelemetryProfileCompatible(t *testing.T) {
	c := supremacy(12, 16, 73, false)
	plan, err := schedule.Build(c, schedule.DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}

	plain, err := Run(plan, Options{Ranks: 4, Init: InitUniform, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	traced, err := Run(plan, Options{Ranks: 4, Init: InitUniform, Profile: true, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}

	if len(plain.Profile) != len(traced.Profile) {
		t.Fatalf("profile lengths differ: %d vs %d", len(plain.Profile), len(traced.Profile))
	}
	for i := range plain.Profile {
		p, q := plain.Profile[i], traced.Profile[i]
		if p.Kind != q.Kind || p.Ops != q.Ops {
			t.Errorf("profile[%d]: disabled %s/%d vs enabled %s/%d", i, p.Kind, p.Ops, q.Kind, q.Ops)
		}
		if q.Ops > 0 && q.Duration <= 0 {
			t.Errorf("profile[%d] %s: no duration recorded with telemetry on", i, q.Kind)
		}
	}
	if plain.Norm != traced.Norm || plain.Entropy != traced.Entropy {
		t.Errorf("results differ with telemetry: norm %v vs %v, entropy %v vs %v",
			plain.Norm, traced.Norm, plain.Entropy, traced.Entropy)
	}

	// The trace must hold exactly one stage span per plan op per rank, with
	// the op's stage annotated, plus one attempt span per rank.
	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	stageSpans, attempts := 0, 0
	for _, e := range doc.TraceEvents {
		switch {
		case e.Cat == "stage" && e.Ph == "X":
			stageSpans++
			if _, ok := e.Args["stage"]; !ok {
				t.Fatalf("stage span %q missing stage arg: %v", e.Name, e.Args)
			}
		case e.Cat == "dist" && e.Name == "attempt":
			attempts++
		}
	}
	if want := len(plan.Ops) * 4; stageSpans != want {
		t.Errorf("stage spans = %d, want %d (%d ops x 4 ranks)", stageSpans, want, len(plan.Ops))
	}
	if attempts != 4 {
		t.Errorf("attempt spans = %d, want 4", attempts)
	}
}

// TestBaselineTelemetry checks the per-gate reference path arms the MPI
// layer: collective spans and byte counters must appear.
func TestBaselineTelemetry(t *testing.T) {
	c := supremacy(10, 12, 17, false)
	tel := telemetry.New()
	res, err := RunBaseline(c, BaselineOptions{
		Ranks: 4, Init: InitUniform, Specialize2Q: true, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter("mpi.bytes").Value(); got != res.CommBytes {
		t.Errorf("mpi.bytes counter = %d, Traffic says %d", got, res.CommBytes)
	}
	if tel.Histogram("mpi.pair_exchange_ns").Count() == 0 {
		t.Error("no pair-exchange latencies recorded")
	}
}
