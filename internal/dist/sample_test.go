package dist

import (
	"math"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
)

func TestDistributedSamplingMatchesDistribution(t *testing.T) {
	c := supremacy(12, 16, 80, false)
	opts := schedule.DefaultOptions(9)
	plan, err := schedule.Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	shots := 40000
	res, err := Run(plan, Options{Ranks: 8, Init: InitZero, SampleShots: shots, SampleSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != shots {
		t.Fatalf("got %d samples, want %d", len(res.Samples), shots)
	}
	// Compare empirical frequencies against the exact distribution.
	want := naive(c, InitZero)
	counts := make([]int, 1<<c.N)
	for _, b := range res.Samples {
		if b < 0 || b >= len(counts) {
			t.Fatalf("sample %d out of range", b)
		}
		counts[b]++
	}
	// Chi-square-ish check on aggregate: total variation distance must be
	// small for 40k shots over 4096 states.
	var tv float64
	for b, cnt := range counts {
		tv += math.Abs(float64(cnt)/float64(shots) - want.Probability(b))
	}
	tv /= 2
	if tv > 0.20 {
		t.Errorf("total variation distance %v between samples and exact distribution", tv)
	}
	// The mean sampled probability should reflect Porter–Thomas (≈ 2/2^n),
	// not uniform sampling (1/2^n).
	var meanP float64
	for _, b := range res.Samples {
		meanP += want.Probability(b)
	}
	meanP /= float64(shots)
	if meanP < 1.5/float64(int(1)<<c.N) {
		t.Errorf("mean sampled probability %v — looks like uniform sampling, not Born-rule sampling", meanP)
	}
}

func TestDistributedSamplingDeterministicSeed(t *testing.T) {
	c := supremacy(10, 12, 81, false)
	plan, err := schedule.Build(c, schedule.DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(plan, Options{Ranks: 4, Init: InitZero, SampleShots: 100, SampleSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(plan, Options{Ranks: 4, Init: InitZero, SampleShots: 100, SampleSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("shot %d differs across identical runs: %d vs %d", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestDistributedSamplingZeroWeightRanks(t *testing.T) {
	// The GHZ output has exactly two nonzero amplitudes, so most ranks carry
	// exactly zero probability weight and the rank-selection CDF is full of
	// zero-width buckets. Every shot must land on |0…0⟩ or |1…1⟩.
	c := circuit.GHZ(10)
	plan, err := schedule.Build(c, schedule.DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Ranks: 4, Init: InitZero, SampleShots: 500, SampleSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Samples {
		if s != 0 && s != (1<<10)-1 {
			t.Fatalf("shot %d sampled zero-probability state %d", i, s)
		}
	}
}

func TestLogicalIndexRoundTrip(t *testing.T) {
	c := supremacy(10, 12, 82, false)
	plan, err := schedule.Build(c, schedule.DefaultOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 1<<c.N; b++ {
		if got := plan.LogicalIndex(plan.PermutedIndex(b)); got != b {
			t.Fatalf("LogicalIndex(PermutedIndex(%d)) = %d", b, got)
		}
	}
}
