package dist

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"qusim/internal/circuit"
	"qusim/internal/mpi"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
	"qusim/internal/telemetry"
)

// BaselineOptions configures RunBaseline.
type BaselineOptions struct {
	Ranks int
	Init  InitState
	// Specialize2Q / Specialize1Q run diagonal gates on global qubits
	// without communication, as in [5]. With both false every global gate
	// communicates (the [19] scheme).
	Specialize2Q bool
	Specialize1Q bool
	GatherState  bool
	// Faults arms deterministic fault injection in the MPI layer (see
	// dist.Options.Faults); it exercises the pairwise-exchange path here.
	Faults *mpi.FaultPlan
	// Telemetry arms per-rank collective spans and latency histograms in
	// the MPI layer (the per-gate scheme has no stage structure to trace).
	Telemetry *telemetry.Telemetry
}

// RunBaseline executes the circuit gate by gate with the fixed layout
// qubit q ↔ bit location q, communicating for every dense gate on a global
// qubit via two pairwise exchanges of half the local state vector — the
// scheme of [19] as used by the state of the art [5] that Table 2 compares
// against. Dense gates on global qubits must be single-qubit (all the
// supremacy circuits' dense gates are).
func RunBaseline(c *circuit.Circuit, opts BaselineOptions) (*Result, error) {
	ranks := opts.Ranks
	if ranks < 1 || ranks&(ranks-1) != 0 {
		return nil, fmt.Errorf("dist: rank count %d is not a power of two", ranks)
	}
	g := bits.TrailingZeros(uint(ranks))
	l := c.N - g
	if l < 1 {
		return nil, fmt.Errorf("dist: %d ranks leave no local qubits for n=%d", ranks, c.N)
	}
	localLen := 1 << l

	res := &Result{Ranks: ranks, LocalQubits: l}
	if opts.GatherState {
		res.Amplitudes = make([]complex128, 1<<c.N)
	}
	w := mpi.NewWorld(ranks)
	if opts.Faults != nil {
		w.InjectFaults(opts.Faults)
	}
	w.SetTelemetry(opts.Telemetry)
	var mu sync.Mutex

	specialized := func(gt *circuit.Gate) bool {
		if !gt.IsDiagonal() {
			return false
		}
		if gt.K() == 1 {
			return opts.Specialize1Q
		}
		return opts.Specialize2Q
	}

	err := w.Run(func(cm *mpi.Comm) error {
		local := make([]complex128, localLen)
		scratch := make([]complex128, localLen)
		switch opts.Init {
		case InitZero:
			if cm.Rank() == 0 {
				local[0] = 1
			}
		case InitUniform:
			a := complex(math.Pow(2, -float64(c.N)/2), 0)
			for i := range local {
				local[i] = a
			}
		}
		start := time.Now()
		var commTime time.Duration

		for gi := range c.Gates {
			gt := &c.Gates[gi]
			global := false
			for _, q := range gt.Qubits {
				if q >= l {
					global = true
					break
				}
			}
			switch {
			case !global:
				sv := statevec.FromAmplitudes(local)
				sv.Apply(gt.Matrix(), gt.Qubits...)
			case specialized(gt):
				op := schedule.DiagonalOp(gt, func(q int) int { return q })
				applyDiagonal(local, &op, l, cm.Rank())
			case gt.K() == 1:
				t0 := time.Now()
				applyGlobalDense1Q(cm, gt, local, scratch, l)
				commTime += time.Since(t0)
				if cm.Rank() == 0 {
					cm.AddSteps(1)
				}
			case gt.IsDiagonal():
				// Diagonal but specialization disabled: still executable
				// without data movement by construction, but the [19]
				// scheme would communicate; we execute it diagonally and
				// charge one step, mirroring its cost accounting.
				op := schedule.DiagonalOp(gt, func(q int) int { return q })
				applyDiagonal(local, &op, l, cm.Rank())
				if cm.Rank() == 0 {
					cm.AddSteps(1)
				}
			default:
				return fmt.Errorf("dist: baseline scheme cannot execute dense %d-qubit gate %v on global qubits", gt.K(), gt)
			}
		}

		t0 := time.Now()
		var norm, ent float64
		for _, a := range local {
			p := real(a)*real(a) + imag(a)*imag(a)
			norm += p
			if p > 0 {
				ent -= p * math.Log(p)
			}
		}
		norm = cm.AllreduceSum(norm)
		ent = cm.AllreduceSum(ent)
		commTime += time.Since(t0)
		elapsed := time.Since(start)

		mu.Lock()
		res.Norm = norm
		res.Entropy = ent
		if elapsed > res.Elapsed {
			res.Elapsed = elapsed
		}
		if commTime > res.CommElapsed {
			res.CommElapsed = commTime
		}
		if opts.GatherState {
			copy(res.Amplitudes[cm.Rank()<<l:], local)
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.CommSteps = int(w.Traffic.Steps.Load())
	res.CommBytes = w.Traffic.Bytes.Load()
	res.FaultEvents = w.FaultEvents()
	return res, nil
}

// applyGlobalDense1Q applies a dense single-qubit gate on a global qubit
// with the two pairwise half-vector exchanges of [19]: the bit-0 partner
// computes the pairs of the lower half-indices, the bit-1 partner the upper
// half, and the results are exchanged back.
//
//qlint:ignore collectiveorder both arms issue the same two PairExchange calls with the same partner; the rank branch only selects which half travels, so the collective sequence stays rank-uniform
func applyGlobalDense1Q(cm *mpi.Comm, gt *circuit.Gate, local, scratch []complex128, l int) {
	m := gt.Matrix()
	m00, m01, m10, m11 := m.Data[0], m.Data[1], m.Data[2], m.Data[3]
	p := gt.Qubits[0] - l
	partner := cm.Rank() ^ (1 << p)
	half := len(local) / 2
	if cm.Rank()&(1<<p) == 0 {
		// Exchange 1: my upper half for the partner's lower half.
		cm.PairExchange(partner, local[half:], scratch[:half])
		for i := 0; i < half; i++ {
			a0, a1 := local[i], scratch[i]
			local[i] = m00*a0 + m01*a1
			scratch[i] = m10*a0 + m11*a1
		}
		// Exchange 2: return the partner's new a1 values, receive my new
		// a0 values for the upper half.
		cm.PairExchange(partner, scratch[:half], local[half:])
	} else {
		cm.PairExchange(partner, local[:half], scratch[half:])
		for i := half; i < len(local); i++ {
			a0, a1 := scratch[i], local[i]
			scratch[i] = m00*a0 + m01*a1
			local[i] = m10*a0 + m11*a1
		}
		cm.PairExchange(partner, scratch[half:], local[:half])
	}
}
