package dist

import (
	"math"
	"math/cmplx"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
)

func supremacy(n, depth int, seed int64, skipH bool) *circuit.Circuit {
	r, c := circuit.GridForQubits(n)
	return circuit.Supremacy(circuit.SupremacyOptions{
		Rows: r, Cols: c, Depth: depth, Seed: seed, SkipInitialH: skipH,
	})
}

// naive runs the circuit on a single full state vector.
func naive(c *circuit.Circuit, init InitState) *statevec.Vector {
	var v *statevec.Vector
	if init == InitUniform {
		v = statevec.NewUniform(c.N)
	} else {
		v = statevec.New(c.N)
	}
	for _, g := range c.Gates {
		v.Apply(g.Matrix(), g.Qubits...)
	}
	return v
}

// assertDistEqualsNaive runs the scheduled plan across ranks and compares
// every amplitude with naive single-node simulation via the plan's final
// qubit → location mapping.
func assertDistEqualsNaive(t *testing.T, c *circuit.Circuit, ranks int, opts schedule.Options, init InitState) *Result {
	t.Helper()
	g := 0
	for 1<<g < ranks {
		g++
	}
	opts.LocalQubits = c.N - g
	plan, err := schedule.Build(c, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := Run(plan, Options{Ranks: ranks, Init: init, GatherState: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := naive(c, init)
	var maxd float64
	for b := 0; b < 1<<c.N; b++ {
		d := cmplx.Abs(want.Amplitude(b) - res.Amplitudes[plan.PermutedIndex(b)])
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-9 {
		t.Fatalf("ranks=%d: distributed result deviates from naive: max diff %g\n%s",
			ranks, maxd, plan.Summary())
	}
	if math.Abs(res.Norm-1) > 1e-9 {
		t.Errorf("ranks=%d: norm %v", ranks, res.Norm)
	}
	return res
}

func TestDistributedEqualsNaiveAcrossRankCounts(t *testing.T) {
	c := supremacy(12, 12, 21, false)
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		opts := schedule.DefaultOptions(0) // LocalQubits set by helper
		opts.KMax = 3
		res := assertDistEqualsNaive(t, c, ranks, opts, InitZero)
		if ranks > 1 && res.CommSteps == 0 {
			t.Errorf("ranks=%d: no communication steps recorded", ranks)
		}
	}
}

func TestDistributedUniformInit(t *testing.T) {
	c := supremacy(12, 10, 22, true)
	opts := schedule.DefaultOptions(0)
	assertDistEqualsNaive(t, c, 8, opts, InitUniform)
}

func TestDistributedWithT1QSpecialization(t *testing.T) {
	c := supremacy(12, 14, 23, false)
	opts := schedule.DefaultOptions(0)
	opts.SpecializeDiagonal1Q = true
	assertDistEqualsNaive(t, c, 8, opts, InitZero)
}

func TestDistributedQFT(t *testing.T) {
	c := circuit.QFT(10)
	opts := schedule.DefaultOptions(0)
	opts.KMax = 3
	assertDistEqualsNaive(t, c, 4, opts, InitZero)
}

func TestDistributedGHZ(t *testing.T) {
	c := circuit.GHZ(10)
	opts := schedule.DefaultOptions(0)
	assertDistEqualsNaive(t, c, 4, opts, InitZero)
}

func TestCommStepsEqualPlanSwaps(t *testing.T) {
	c := supremacy(12, 16, 24, false)
	opts := schedule.DefaultOptions(8)
	plan, err := schedule.Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Ranks: 16, Init: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSteps != plan.Stats.Swaps {
		t.Errorf("comm steps %d != plan swaps %d", res.CommSteps, plan.Stats.Swaps)
	}
}

func TestSwapCommVolume(t *testing.T) {
	// A full g-qubit swap moves (2^g − 1)/2^g of every rank's 2^l
	// amplitudes across rank boundaries.
	c := supremacy(12, 16, 25, false)
	opts := schedule.DefaultOptions(8)
	plan, err := schedule.Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Ranks: 16, Init: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	perSwapMax := int64(16) * int64(16) * (1 << 8) // ranks × 2^l amps × 16B upper bound
	if res.CommBytes <= 0 || res.CommBytes > int64(plan.Stats.Swaps)*perSwapMax {
		t.Errorf("comm bytes %d outside (0, %d·%d]", res.CommBytes, plan.Stats.Swaps, perSwapMax)
	}
}

func TestEntropyMatchesSingleNode(t *testing.T) {
	c := supremacy(12, 14, 26, false)
	opts := schedule.DefaultOptions(9)
	plan, err := schedule.Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Ranks: 8, Init: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	want := naive(c, InitZero).Entropy()
	if math.Abs(res.Entropy-want) > 1e-9 {
		t.Errorf("distributed entropy %v, single-node %v", res.Entropy, want)
	}
}

func TestRunValidation(t *testing.T) {
	c := supremacy(9, 8, 27, false)
	plan, err := schedule.Build(c, schedule.DefaultOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, Options{Ranks: 3}); err == nil {
		t.Error("non-power-of-two rank count accepted")
	}
	if _, err := Run(plan, Options{Ranks: 16}); err == nil {
		t.Error("mismatched rank count accepted")
	}
}

func TestProfileOpsConsistentWithPlan(t *testing.T) {
	// Regression: Profile[k].Ops used to be overwritten by whichever rank
	// locked last while Duration took the max, so the two fields could come
	// from different ranks. Every rank executes the identical op sequence,
	// so the reported Ops must equal the plan's op counts exactly.
	c := supremacy(12, 16, 96, false)
	plan, err := schedule.Build(c, schedule.DefaultOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Ranks: 8, Init: InitUniform, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := range plan.Ops {
		counts[plan.Ops[i].Kind.String()]++
	}
	for _, e := range res.Profile {
		if e.Ops != counts[e.Kind] {
			t.Errorf("profile %q reports %d ops, plan contains %d", e.Kind, e.Ops, counts[e.Kind])
		}
		if e.Ops == 0 && e.Duration != 0 {
			t.Errorf("profile %q reports duration %v with zero ops", e.Kind, e.Duration)
		}
	}
}

// --- baseline scheme -------------------------------------------------------

func TestBaselineEqualsNaive(t *testing.T) {
	c := supremacy(11, 12, 28, false)
	for _, ranks := range []int{1, 2, 4, 8} {
		res, err := RunBaseline(c, BaselineOptions{
			Ranks: ranks, Init: InitZero, Specialize2Q: true, GatherState: true,
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		want := naive(c, InitZero)
		var maxd float64
		for b := 0; b < 1<<c.N; b++ {
			// Baseline keeps the identity layout: index b maps to itself.
			d := cmplx.Abs(want.Amplitude(b) - res.Amplitudes[b])
			if d > maxd {
				maxd = d
			}
		}
		if maxd > 1e-9 {
			t.Fatalf("ranks=%d: baseline deviates from naive: %g", ranks, maxd)
		}
	}
}

func TestBaselineCommStepsMatchGlobalGateCount(t *testing.T) {
	c := supremacy(11, 12, 29, false)
	ranks := 8
	l := c.N - 3
	res, err := RunBaseline(c, BaselineOptions{Ranks: ranks, Init: InitZero, Specialize2Q: true})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, g := range c.Gates {
		global := false
		for _, q := range g.Qubits {
			if q >= l {
				global = true
			}
		}
		if !global {
			continue
		}
		if g.IsDiagonal() && g.K() >= 2 {
			continue // specialized CZ
		}
		want++
	}
	if res.CommSteps != want {
		t.Errorf("baseline comm steps %d, want %d", res.CommSteps, want)
	}
}

func TestBaselineSpecializationReducesSteps(t *testing.T) {
	c := supremacy(11, 12, 30, false)
	with, err := RunBaseline(c, BaselineOptions{Ranks: 8, Init: InitZero, Specialize2Q: true, Specialize1Q: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunBaseline(c, BaselineOptions{Ranks: 8, Init: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	if with.CommSteps >= without.CommSteps {
		t.Errorf("specialization did not reduce baseline steps: %d vs %d", with.CommSteps, without.CommSteps)
	}
	if math.Abs(with.Entropy-without.Entropy) > 1e-9 {
		t.Errorf("entropy differs between specialization modes: %v vs %v", with.Entropy, without.Entropy)
	}
}

func TestScheduledBeatsBaselineCommSteps(t *testing.T) {
	// The core multi-node claim: a couple of global-to-local swaps replace
	// dozens of per-gate exchanges.
	c := supremacy(12, 20, 31, false)
	ranks := 16
	opts := schedule.DefaultOptions(c.N - 4)
	plan, err := schedule.Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Run(plan, Options{Ranks: ranks, Init: InitZero})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunBaseline(c, BaselineOptions{Ranks: ranks, Init: InitZero, Specialize2Q: true})
	if err != nil {
		t.Fatal(err)
	}
	if sched.CommSteps >= base.CommSteps {
		t.Errorf("scheduled %d steps not below baseline %d", sched.CommSteps, base.CommSteps)
	}
	t.Logf("comm steps: scheduled=%d baseline=%d (%.1fx)", sched.CommSteps, base.CommSteps,
		float64(base.CommSteps)/float64(sched.CommSteps))
	if math.Abs(sched.Entropy-base.Entropy) > 1e-9 {
		t.Errorf("entropies differ: %v vs %v", sched.Entropy, base.Entropy)
	}
}

func TestBaselineRejectsDenseTwoQubitGlobalGate(t *testing.T) {
	c := circuit.NewCircuit(6)
	c.Append(circuit.NewCNOT(5, 4)) // dense 2-qubit gate on global qubits
	_, err := RunBaseline(c, BaselineOptions{Ranks: 4, Init: InitZero})
	if err == nil {
		t.Error("expected error for dense 2-qubit global gate")
	}
}
