package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"qusim/internal/fsio"
)

// write writes blob through an injecting FS as one CreateTemp + Write +
// Sync + Rename sequence (op indices 1..4) and returns the first error.
func write(t *testing.T, fs *FS, dir, name string, blob []byte) error {
	t.Helper()
	f, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	tmp := f.Name()
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, filepath.Join(dir, name))
}

func TestNoSpaceWindow(t *testing.T) {
	dir := t.TempDir()
	// Ops: CreateTemp=1, Write=2, Sync=3, Rename=4. Fail exactly the Write.
	fs := NewFS(DiskFaults{NoSpaceAt: 2}, nil)
	err := write(t, fs, dir, "a", []byte("payload"))
	if !fsio.IsNoSpace(err) {
		t.Fatalf("want ENOSPC-class error, got %v", err)
	}
	st := fs.Stats()
	if st.NoSpace != 1 {
		t.Fatalf("NoSpace stat = %d, want 1", st.NoSpace)
	}
	// The window has passed: the same sequence now succeeds.
	if err := write(t, fs, dir, "a", []byte("payload")); err != nil {
		t.Fatalf("post-window write failed: %v", err)
	}
}

func TestTornWriteSilent(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(DiskFaults{TornWriteAt: 2}, nil) // the Write op
	if err := write(t, fs, dir, "a", []byte("0123456789")); err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	if n := fs.Stats().TornWrites; n != 1 {
		t.Fatalf("TornWrites stat = %d, want 1", n)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(blob) != "01234" {
		t.Fatalf("torn file holds %q, want front half %q", blob, "01234")
	}
}

func TestReadErrWindowTransient(t *testing.T) {
	dir := t.TempDir()
	clean := NewFS(DiskFaults{}, nil)
	if err := write(t, clean, dir, "a", []byte("payload")); err != nil {
		t.Fatalf("setup: %v", err)
	}
	fs := NewFS(DiskFaults{ReadErrAt: 1, ReadErrRun: 2}, nil)
	if _, err := fs.ReadFile(filepath.Join(dir, "a")); !fsio.IsTransient(err) {
		t.Fatalf("read op 1: want transient error, got %v", err)
	}
	if _, err := fs.Open(filepath.Join(dir, "a")); !fsio.IsTransient(err) {
		t.Fatalf("read op 2: want transient error, got %v", err)
	}
	f, err := fs.Open(filepath.Join(dir, "a")) // op 3: window passed
	if err != nil {
		t.Fatalf("read op 3: %v", err)
	}
	buf := make([]byte, 7)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "payload" {
		t.Fatalf("ReadAt after window: %q, %v", buf, err)
	}
	f.Close()
	if n := fs.Stats().ReadErrors; n != 2 {
		t.Fatalf("ReadErrors stat = %d, want 2", n)
	}
}

func TestSlowIOCounted(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(DiskFaults{SlowEvery: 2, SlowDelay: time.Microsecond}, nil)
	if err := write(t, fs, dir, "a", []byte("payload")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if n := fs.Stats().Slowdowns; n != 2 { // write ops 2 and 4
		t.Fatalf("Slowdowns stat = %d, want 2", n)
	}
}

// TestInjectionWrapsNotOS: an injected failure must never reach the real
// filesystem — the op that failed left no trace.
func TestInjectionWrapsNotOS(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(DiskFaults{NoSpaceAt: 1}, nil) // CreateTemp fails
	if _, err := fs.CreateTemp(dir, ".tmp-*"); !fsio.IsNoSpace(err) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("injected CreateTemp failure left %d entries on disk", len(ents))
	}
}

func TestComposeDeterministic(t *testing.T) {
	a := Compose(7, 3, ComposeOptions{})
	b := Compose(7, 3, ComposeOptions{})
	if !reflect.DeepEqual(a.Armed, b.Armed) || !reflect.DeepEqual(a.Disk, b.Disk) {
		t.Fatalf("same (seed, run) produced different schedules:\n%+v\n%+v", a, b)
	}
	if (a.MPI == nil) != (b.MPI == nil) {
		t.Fatalf("MPI arming differs")
	}
	if a.MPI != nil && b.MPI != nil {
		if (a.MPI.Crash == nil) != (b.MPI.Crash == nil) ||
			(a.MPI.Stall == nil) != (b.MPI.Stall == nil) ||
			(a.MPI.Corrupt == nil) != (b.MPI.Corrupt == nil) {
			t.Fatalf("MPI fault arming differs")
		}
	}
	if c := Compose(8, 3, ComposeOptions{}); reflect.DeepEqual(a.Disk, c.Disk) && len(a.Armed) == len(c.Armed) {
		// Not strictly impossible, but the primary is the same and all
		// draws matching would be suspicious; only fail if identical.
		same := true
		for i := range a.Armed {
			if a.Armed[i] != c.Armed[i] {
				same = false
				break
			}
		}
		if same && a.MPI != nil && c.MPI != nil && a.MPI.Seed == c.MPI.Seed {
			t.Fatalf("different seeds produced identical schedules")
		}
	}
}

// TestComposeRotationCoversAllClasses: six consecutive runs arm all six
// acceptance classes as primaries, whatever the seed.
func TestComposeRotationCoversAllClasses(t *testing.T) {
	seen := map[Class]bool{}
	for r := 0; r < 6; r++ {
		s := Compose(42, r, ComposeOptions{})
		if len(s.Armed) == 0 {
			t.Fatalf("run %d armed nothing", r)
		}
		seen[s.Armed[0]] = true
		// The primary must actually be armed on the right side.
		switch s.Armed[0] {
		case Crash:
			if s.MPI == nil || s.MPI.Crash == nil {
				t.Fatalf("run %d: crash primary but no crash fault", r)
			}
		case Corrupt:
			if s.MPI == nil || s.MPI.Corrupt == nil {
				t.Fatalf("run %d: corrupt primary but no corrupt fault", r)
			}
		case Stall:
			if s.MPI == nil || s.MPI.Stall == nil {
				t.Fatalf("run %d: stall primary but no stall fault", r)
			}
		case NoSpace:
			if s.Disk.NoSpaceAt == 0 {
				t.Fatalf("run %d: enospc primary but no trigger", r)
			}
		case TornWrite:
			if s.Disk.TornWriteAt == 0 {
				t.Fatalf("run %d: torn primary but no trigger", r)
			}
		case ReadError:
			if s.Disk.ReadErrAt == 0 {
				t.Fatalf("run %d: read-error primary but no trigger", r)
			}
		}
	}
	for _, c := range []Class{Crash, Corrupt, Stall, NoSpace, TornWrite, ReadError} {
		if !seen[c] {
			t.Errorf("class %v never primary in a rotation cycle", c)
		}
	}
}

// failRemoveFS proves Remove passes through untouched (pruning is never
// a chaos target — the injector only degrades the data path).
type failRemoveFS struct {
	fsio.OS
}

var errRemove = errors.New("remove denied")

func (failRemoveFS) Remove(string) error { return errRemove }

func TestRemovePassesThrough(t *testing.T) {
	fs := NewFS(DiskFaults{NoSpaceAt: 99}, failRemoveFS{})
	if err := fs.Remove("x"); !errors.Is(err, errRemove) {
		t.Fatalf("Remove did not delegate to inner FS: %v", err)
	}
}
