// Package chaos is the deterministic chaos-engineering layer: it composes
// the transport faults of mpi.FaultPlan (crash, corrupt, stall, timing
// perturbations) with a disk-fault injector that degrades the file-ops
// seam (internal/fsio) the durability layers run on — ENOSPC, torn
// writes, transient read errors, slow I/O.
//
// Everything is seeded and op-indexed, never time- or probability-
// triggered: the k-th write op fails, not "writes fail 1% of the time" —
// so a failing soak run replays exactly from its seed. The soak driver
// (cmd/qchaos) draws composed Schedules from Compose, runs the same
// circuit with and without the schedule armed, and demands bitwise
// identical results; internal/dist and internal/oocvec tests use FS
// directly to pin individual degradation policies.
package chaos

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"qusim/internal/fsio"
	"qusim/internal/mpi"
)

// Class enumerates the fault classes the layer can inject. The soak
// driver's coverage accounting is keyed on it: a soak that never exercised
// a class proves nothing about that class.
type Class int

const (
	Crash Class = iota
	Corrupt
	Stall
	NoSpace
	TornWrite
	ReadError
	SlowIO

	// NumClasses is the number of distinct fault classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"crash", "corrupt", "stall", "enospc", "torn-write", "read-error", "slow-io",
}

func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// DiskFaults schedules deterministic disk faults over the stream of file
// operations flowing through an injecting FS. Operations are counted
// per family from 1; a zero trigger is disarmed.
//
// Write-family ops (in counting order): File.Write, File.WriteAt,
// File.Sync, FS.CreateTemp, FS.Rename. Read-family ops: File.Read,
// File.ReadAt, FS.Open, FS.ReadFile.
type DiskFaults struct {
	// NoSpaceAt fails write ops [NoSpaceAt, NoSpaceAt+NoSpaceRun) with an
	// error wrapping fsio.ErrNoSpace — a filesystem that fills up and
	// (once the window passes) has space reclaimed.
	NoSpaceAt  int
	NoSpaceRun int // window length; 0 means 1

	// TornWriteAt makes the TornWriteAt'th Write/WriteAt persist only the
	// first half of its buffer while reporting full success — the lying
	// disk a checksum layer exists to catch. Detection happens at read
	// time, not write time.
	TornWriteAt int

	// ReadErrAt fails read ops [ReadErrAt, ReadErrAt+ReadErrRun) with an
	// error wrapping fsio.ErrTransient. A run shorter than the reader's
	// retry budget is recoverable; a longer one must surface.
	ReadErrAt  int
	ReadErrRun int // window length; 0 means 1

	// SlowEvery sleeps SlowDelay before every SlowEvery'th op of either
	// family — degraded, not failing, storage.
	SlowEvery int
	SlowDelay time.Duration
}

func (d *DiskFaults) armed() bool {
	return d != nil && (d.NoSpaceAt > 0 || d.TornWriteAt > 0 || d.ReadErrAt > 0 || d.SlowEvery > 0)
}

// Classes returns the fault classes this plan arms.
func (d *DiskFaults) Classes() []Class {
	if d == nil {
		return nil
	}
	var out []Class
	if d.NoSpaceAt > 0 {
		out = append(out, NoSpace)
	}
	if d.TornWriteAt > 0 {
		out = append(out, TornWrite)
	}
	if d.ReadErrAt > 0 {
		out = append(out, ReadError)
	}
	if d.SlowEvery > 0 {
		out = append(out, SlowIO)
	}
	return out
}

// Stats counts the faults an FS actually injected — the ground truth for
// coverage accounting (an armed fault whose op index the run never
// reached injected nothing).
type Stats struct {
	NoSpace    int64 // write ops failed with ENOSPC
	TornWrites int64 // writes silently truncated
	ReadErrors int64 // read ops failed transiently
	Slowdowns  int64 // ops delayed
	WriteOps   int64 // total write-family ops observed
	ReadOps    int64 // total read-family ops observed
}

// FS wraps an fsio.FS with the DiskFaults plan. The op counters are
// shared by every file the FS hands out, so a trigger index addresses one
// global operation stream. Safe for concurrent use; under concurrency the
// assignment of op indices to goroutines is interleaving-dependent, which
// is fine for soak testing (the bitwise-identity assertion is
// interleaving-independent) and deterministic for the sequential layers.
type FS struct {
	inner fsio.FS
	plan  DiskFaults

	writes atomic.Int64
	reads  atomic.Int64

	noSpace    atomic.Int64
	tornWrites atomic.Int64
	readErrors atomic.Int64
	slowdowns  atomic.Int64
}

// NewFS returns an injecting FS applying plan on top of inner (nil inner
// means the real OS).
func NewFS(plan DiskFaults, inner fsio.FS) *FS {
	if inner == nil {
		inner = fsio.OS{}
	}
	return &FS{inner: inner, plan: plan}
}

// Stats returns the injection counts so far.
func (f *FS) Stats() Stats {
	return Stats{
		NoSpace:    f.noSpace.Load(),
		TornWrites: f.tornWrites.Load(),
		ReadErrors: f.readErrors.Load(),
		Slowdowns:  f.slowdowns.Load(),
		WriteOps:   f.writes.Load(),
		ReadOps:    f.reads.Load(),
	}
}

func runLen(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

func (f *FS) maybeSlow(op int64) {
	if f.plan.SlowEvery > 0 && op%int64(f.plan.SlowEvery) == 0 {
		f.slowdowns.Add(1)
		time.Sleep(f.plan.SlowDelay)
	}
}

// writeOp counts one write-family op and returns an injected error, or
// (nil, torn=true) when this op must be silently truncated.
func (f *FS) writeOp(what string) (err error, torn bool) {
	op := f.writes.Add(1)
	f.maybeSlow(op)
	if at := int64(f.plan.NoSpaceAt); at > 0 && op >= at && op < at+int64(runLen(f.plan.NoSpaceRun)) {
		f.noSpace.Add(1)
		return fmt.Errorf("chaos: injected ENOSPC on %s (write op %d): %w", what, op, fsio.ErrNoSpace), false
	}
	return nil, int64(f.plan.TornWriteAt) == op
}

// readOp counts one read-family op and returns an injected error.
func (f *FS) readOp(what string) error {
	op := f.reads.Add(1)
	f.maybeSlow(op)
	if at := int64(f.plan.ReadErrAt); at > 0 && op >= at && op < at+int64(runLen(f.plan.ReadErrRun)) {
		f.readErrors.Add(1)
		return fmt.Errorf("chaos: injected read error on %s (read op %d): %w", what, op, fsio.ErrTransient)
	}
	return nil
}

func (f *FS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *FS) CreateTemp(dir, pattern string) (fsio.File, error) {
	if err, _ := f.writeOp("CreateTemp"); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &chaosFile{inner: file, fs: f}, nil
}

func (f *FS) Open(name string) (fsio.File, error) {
	if err := f.readOp("Open"); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{inner: file, fs: f}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.readOp("ReadFile"); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err, _ := f.writeOp("Rename"); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FS) SyncDir(dir string) error { return f.inner.SyncDir(dir) }

// chaosFile threads each file op back through the owning FS's counters.
type chaosFile struct {
	inner fsio.File
	fs    *FS
}

func (c *chaosFile) Name() string { return c.inner.Name() }

func (c *chaosFile) Close() error { return c.inner.Close() }

func (c *chaosFile) Sync() error {
	// fsync is where a full filesystem often actually reports ENOSPC.
	if err, _ := c.fs.writeOp("Sync"); err != nil {
		return err
	}
	return c.inner.Sync()
}

// tornHalf persists only the front half of p via write, reporting len(p)
// written and no error — the caller believes the write landed.
func (c *chaosFile) tornHalf(p []byte, write func([]byte) (int, error)) (int, error) {
	c.fs.tornWrites.Add(1)
	if _, err := write(p[:len(p)/2]); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (c *chaosFile) Write(p []byte) (int, error) {
	err, torn := c.fs.writeOp("Write")
	if err != nil {
		return 0, err
	}
	if torn && len(p) > 1 {
		return c.tornHalf(p, c.inner.Write)
	}
	return c.inner.Write(p)
}

func (c *chaosFile) WriteAt(p []byte, off int64) (int, error) {
	err, torn := c.fs.writeOp("WriteAt")
	if err != nil {
		return 0, err
	}
	if torn && len(p) > 1 {
		return c.tornHalf(p, func(q []byte) (int, error) { return c.inner.WriteAt(q, off) })
	}
	return c.inner.WriteAt(p, off)
}

func (c *chaosFile) Read(p []byte) (int, error) {
	if err := c.fs.readOp("Read"); err != nil {
		return 0, err
	}
	return c.inner.Read(p)
}

func (c *chaosFile) ReadAt(p []byte, off int64) (int, error) {
	if err := c.fs.readOp("ReadAt"); err != nil {
		return 0, err
	}
	return c.inner.ReadAt(p, off)
}

// Schedule is one composed fault scenario: transport faults for the
// simulated MPI world plus disk faults for the file-ops seam. Both sides
// derive from the same seed, so a schedule replays exactly.
type Schedule struct {
	Seed int64
	Run  int

	// MPI carries the transport faults (nil: none armed). Hard-fault
	// fire-once state lives in the plan, so restart attempts sharing it do
	// not re-inject.
	MPI *mpi.FaultPlan
	// Disk carries the disk-fault plan; arm it by wrapping the target
	// layer's FS with NewFS(Disk, nil).
	Disk DiskFaults

	// Armed lists the classes this schedule injects, primary first.
	Armed []Class
}

// String renders the schedule compactly for logs and reproducers.
func (s *Schedule) String() string {
	out := fmt.Sprintf("schedule{seed=%d run=%d armed=[", s.Seed, s.Run)
	for i, c := range s.Armed {
		if i > 0 {
			out += " "
		}
		out += c.String()
	}
	return out + "]}"
}

// ComposeOptions shapes the schedules Compose draws.
type ComposeOptions struct {
	// Ranks is the MPI world size fault targets are drawn from (default 4).
	Ranks int
	// Collectives bounds the collective-entry indices crash/stall points
	// are drawn from; keep it within the run's actual collective count or
	// the fault may never fire (default 6).
	Collectives int
	// StallDuration is how long a stalled rank freezes; it must exceed the
	// runner's comm deadline for the stall to surface (default 700ms).
	StallDuration time.Duration
	// WriteOps/ReadOps bound the disk-fault op indices; keep them within
	// the ops a run actually performs (defaults 12 and 16).
	WriteOps int
	ReadOps  int
	// Extra is the probability each non-primary class joins the schedule
	// (default 0.25) — composed faults, not one-at-a-time.
	Extra float64
}

func (o *ComposeOptions) setDefaults() {
	if o.Ranks <= 0 {
		o.Ranks = 4
	}
	if o.Collectives <= 0 {
		o.Collectives = 6
	}
	if o.StallDuration <= 0 {
		o.StallDuration = 700 * time.Millisecond
	}
	if o.WriteOps <= 0 {
		o.WriteOps = 12
	}
	if o.ReadOps <= 0 {
		o.ReadOps = 16
	}
	if o.Extra <= 0 {
		o.Extra = 0.25
	}
}

// rotation is the primary-class cycle: run r's schedule always arms class
// rotation[r mod 6], so any six consecutive runs cover every class the
// acceptance bar names (SlowIO rides along as an extra only).
var rotation = [6]Class{Crash, Corrupt, Stall, NoSpace, TornWrite, ReadError}

// Compose draws the deterministic composed fault schedule for run index r:
// the rotation's primary class plus a seeded random selection of extras.
// Same (seed, r, opts) → identical schedule, including the fire-once fault
// state being fresh.
func Compose(seed int64, r int, opts ComposeOptions) *Schedule {
	opts.setDefaults()
	rng := rand.New(rand.NewSource(seed*1000003 + int64(r)*7919 + 5))
	s := &Schedule{Seed: seed, Run: r}

	primary := rotation[((r%6)+6)%6]
	want := map[Class]bool{primary: true}
	for _, c := range rotation {
		if c != primary && rng.Float64() < opts.Extra {
			want[c] = true
		}
	}
	if rng.Float64() < opts.Extra {
		want[SlowIO] = true
	}
	s.Armed = append(s.Armed, primary)
	for _, c := range []Class{Crash, Corrupt, Stall, NoSpace, TornWrite, ReadError, SlowIO} {
		if c != primary && want[c] {
			s.Armed = append(s.Armed, c)
		}
	}

	// Transport side. The RNG is always advanced identically so arming one
	// class never shifts another class's draw.
	mp := &mpi.FaultPlan{Seed: seed*31 + int64(r)}
	crashRank, crashColl := rng.Intn(opts.Ranks), rng.Intn(opts.Collectives)
	corruptRank, corruptExch := rng.Intn(opts.Ranks), rng.Intn(3)
	stallRank, stallColl := rng.Intn(opts.Ranks), rng.Intn(opts.Collectives)
	if want[Crash] {
		mp.Crash = &mpi.CrashFault{Rank: crashRank, Collective: crashColl}
	}
	if want[Corrupt] {
		mp.Corrupt = &mpi.CorruptFault{Rank: corruptRank, Exchange: corruptExch}
	}
	if want[Stall] {
		mp.Stall = &mpi.StallFault{Rank: stallRank, Collective: stallColl, Duration: opts.StallDuration}
	}
	if mp.Crash != nil || mp.Corrupt != nil || mp.Stall != nil {
		s.MPI = mp
	}

	// Disk side, same always-advance discipline.
	noSpaceAt, noSpaceRun := 1+rng.Intn(opts.WriteOps), 1+rng.Intn(6)
	tornAt := 1 + rng.Intn(opts.WriteOps)
	readAt, readRun := 1+rng.Intn(opts.ReadOps), 1+rng.Intn(4)
	slowEvery := 3 + rng.Intn(5)
	if want[NoSpace] {
		s.Disk.NoSpaceAt, s.Disk.NoSpaceRun = noSpaceAt, noSpaceRun
	}
	if want[TornWrite] {
		s.Disk.TornWriteAt = tornAt
	}
	if want[ReadError] {
		s.Disk.ReadErrAt, s.Disk.ReadErrRun = readAt, readRun
	}
	if want[SlowIO] {
		s.Disk.SlowEvery, s.Disk.SlowDelay = slowEvery, 200*time.Microsecond
	}
	return s
}
