// Package densitymatrix implements an exact mixed-state simulator for
// small systems. It represents the density matrix ρ of an n-qubit system
// as a 2n-qubit state vector (column-major vectorization), so every gate
// and Kraus operator application reuses the optimized k-qubit kernels:
//
//	ρ → UρU†        becomes   apply U on bits q, and Ū on bits q+n;
//	ρ → Σ_k K ρ K†  becomes   a sum over branches of the same.
//
// Its purpose in this repository is validation: the Monte Carlo trajectory
// noise engine (package noise) must converge to the exact channel
// evolution computed here — the ground truth for the paper's
// "behavior under noise" use case (Sec. 1). Memory is 4^n amplitudes, so
// it is practical to ~12 qubits; the trajectory method then extends the
// same physics to the scale of the state-vector simulator.
package densitymatrix

import (
	"fmt"
	"math"
	"math/cmplx"

	"qusim/internal/circuit"
	"qusim/internal/gate"
	"qusim/internal/kernels"
	"qusim/internal/noise"
	"qusim/internal/statevec"
)

// Matrix is the density matrix of an n-qubit system, stored as the
// vectorized 4^n-amplitude array: entry ρ[r][c] lives at index c·2^n + r
// (row index in the low n bits).
type Matrix struct {
	N   int
	Vec []complex128
}

// New returns ρ = |0…0⟩⟨0…0|.
func New(n int) *Matrix {
	if n < 0 || n > 15 {
		panic(fmt.Sprintf("densitymatrix: unsupported qubit count %d", n))
	}
	m := &Matrix{N: n, Vec: make([]complex128, 1<<(2*n))}
	m.Vec[0] = 1
	return m
}

// FromPure returns ρ = |ψ⟩⟨ψ|.
func FromPure(v *statevec.Vector) *Matrix {
	m := New(v.N)
	d := 1 << v.N
	for c := 0; c < d; c++ {
		for r := 0; r < d; r++ {
			m.Vec[c*d+r] = v.Amps[r] * cmplx.Conj(v.Amps[c])
		}
	}
	return m
}

// At returns ρ[r][c].
func (m *Matrix) At(r, c int) complex128 { return m.Vec[c<<m.N+r] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{N: m.N, Vec: make([]complex128, len(m.Vec))}
	copy(c.Vec, m.Vec)
	return c
}

// rowPositions maps qubit q of the system to bit q of the vectorized
// index; colPositions to bit q+n.
func (m *Matrix) rowPositions(qubits []int) []int {
	return append([]int(nil), qubits...)
}

func (m *Matrix) colPositions(qubits []int) []int {
	out := make([]int, len(qubits))
	for i, q := range qubits {
		out[i] = q + m.N
	}
	return out
}

func conjugate(u gate.Matrix) gate.Matrix {
	out := u.Clone()
	for i, v := range out.Data {
		out.Data[i] = cmplx.Conj(v)
	}
	return out
}

// Apply evolves ρ → UρU† for a gate on the given qubits.
func (m *Matrix) Apply(u gate.Matrix, qubits ...int) {
	sv := statevec.FromAmplitudes(m.Vec)
	sv.Apply(u, m.rowPositions(qubits)...)
	sv.Apply(conjugate(u), m.colPositions(qubits)...)
	m.Vec = sv.Amps
}

// ApplyCircuit runs every gate of a circuit.
func (m *Matrix) ApplyCircuit(c *circuit.Circuit) {
	for i := range c.Gates {
		g := &c.Gates[i]
		m.Apply(g.Matrix(), g.Qubits...)
	}
}

// ApplyKraus evolves ρ → Σ_k K_k ρ K_k† on one qubit. The Kraus operators
// need not be unitary; they must satisfy Σ K†K = 1 for trace preservation
// (checked to tol 1e-9).
func (m *Matrix) ApplyKraus(ops []gate.Matrix, q int) {
	if len(ops) == 0 {
		panic("densitymatrix: empty Kraus set")
	}
	var sum gate.Matrix
	for i, k := range ops {
		if k.K != 1 {
			panic("densitymatrix: only single-qubit Kraus operators supported")
		}
		p := gate.Mul(k.Dagger(), k)
		if i == 0 {
			sum = p
		} else {
			for j := range sum.Data {
				sum.Data[j] += p.Data[j]
			}
		}
	}
	if !gate.ApproxEqual(sum, gate.Identity(1), 1e-9) {
		panic("densitymatrix: Kraus operators do not satisfy ΣK†K = 1")
	}
	acc := make([]complex128, len(m.Vec))
	branch := make([]complex128, len(m.Vec))
	for _, k := range ops {
		copy(branch, m.Vec)
		kernels.Apply(kernels.Specialized, branch, k.Data, []int{q}, nil)
		kernels.Apply(kernels.Specialized, branch, conjugate(k).Data, []int{q + m.N}, nil)
		for i := range acc {
			acc[i] += branch[i]
		}
	}
	copy(m.Vec, acc)
}

// ApplyChannel applies a stochastic Pauli channel exactly (the channel
// package noise samples by trajectories).
func (m *Matrix) ApplyChannel(ch noise.Channel, q int) {
	pi := 1 - ch.PX - ch.PY - ch.PZ
	ops := []gate.Matrix{
		gate.Identity(1).Scale(complex(math.Sqrt(pi), 0)),
		gate.X().Scale(complex(math.Sqrt(ch.PX), 0)),
		gate.Y().Scale(complex(math.Sqrt(ch.PY), 0)),
		gate.Z().Scale(complex(math.Sqrt(ch.PZ), 0)),
	}
	m.ApplyKraus(ops, q)
}

// AmplitudeDamping returns the Kraus pair of the T1 decay channel with
// decay probability gamma.
func AmplitudeDamping(gamma float64) []gate.Matrix {
	k0 := gate.Identity(1)
	k0.Set(1, 1, complex(math.Sqrt(1-gamma), 0))
	k1 := gate.New(1)
	k1.Set(0, 1, complex(math.Sqrt(gamma), 0))
	return []gate.Matrix{k0, k1}
}

// Trace returns Tr ρ (1 for a valid state).
func (m *Matrix) Trace() complex128 {
	d := 1 << m.N
	var t complex128
	for i := 0; i < d; i++ {
		t += m.Vec[i<<m.N+i]
	}
	return t
}

// Purity returns Tr ρ² (1 for pure states, 1/2^n for the maximally mixed
// state).
func (m *Matrix) Purity() float64 {
	// Tr ρ² = Σ_{r,c} ρ[r][c]·ρ[c][r] = Σ |ρ[r][c]|² for Hermitian ρ.
	var s float64
	for _, v := range m.Vec {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

// Probabilities returns the diagonal of ρ.
func (m *Matrix) Probabilities() []float64 {
	d := 1 << m.N
	out := make([]float64, d)
	for i := 0; i < d; i++ {
		out[i] = real(m.Vec[i<<m.N+i])
	}
	return out
}

// Fidelity returns ⟨ψ|ρ|ψ⟩ against a pure reference state.
func (m *Matrix) Fidelity(psi *statevec.Vector) float64 {
	d := 1 << m.N
	var f complex128
	for c := 0; c < d; c++ {
		var row complex128
		for r := 0; r < d; r++ {
			row += cmplx.Conj(psi.Amps[r]) * m.Vec[c<<m.N+r]
		}
		f += row * psi.Amps[c]
	}
	return real(f)
}

// RunNoisy evolves the circuit with the channel applied exactly after each
// gate on each touched qubit — the exact counterpart of noise.Trajectory.
func RunNoisy(c *circuit.Circuit, ch noise.Channel, uniformInit bool) (*Matrix, error) {
	var m *Matrix
	if uniformInit {
		m = FromPure(statevec.NewUniform(c.N))
	} else {
		m = New(c.N)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		m.Apply(g.Matrix(), g.Qubits...)
		for _, q := range g.Qubits {
			m.ApplyChannel(ch, q)
		}
	}
	return m, nil
}
