package densitymatrix

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/gate"
	"qusim/internal/noise"
	"qusim/internal/statevec"
)

func TestPureStateEvolutionMatchesStatevec(t *testing.T) {
	n := 5
	c := circuit.Supremacy(circuit.SupremacyOptions{Rows: 5, Cols: 1, Depth: 10, Seed: 1})
	v := statevec.New(n)
	for i := range c.Gates {
		g := &c.Gates[i]
		v.Apply(g.Matrix(), g.Qubits...)
	}
	m := New(n)
	m.ApplyCircuit(c)
	want := FromPure(v)
	var maxd float64
	for i := range m.Vec {
		if d := cmplx.Abs(m.Vec[i] - want.Vec[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-10 {
		t.Errorf("density matrix evolution deviates from |ψ⟩⟨ψ|: %g", maxd)
	}
	if math.Abs(m.Purity()-1) > 1e-10 {
		t.Errorf("pure evolution lost purity: %v", m.Purity())
	}
}

func TestTracePreservedUnderChannels(t *testing.T) {
	m := New(3)
	m.Apply(gate.H(), 0)
	m.Apply(gate.CNOT(), 1, 0)
	for _, ch := range []noise.Channel{noise.Depolarizing(0.1), noise.Dephasing(0.2), noise.BitFlip(0.3)} {
		m.ApplyChannel(ch, 1)
		if d := cmplx.Abs(m.Trace() - 1); d > 1e-10 {
			t.Errorf("%s: trace drifted to %v", ch.Name, m.Trace())
		}
	}
}

func TestDepolarizingDrivesToMaximallyMixed(t *testing.T) {
	// Repeated full-strength depolarizing on every qubit sends any state
	// to 1/2^n.
	n := 3
	m := New(n)
	m.Apply(gate.H(), 0)
	m.Apply(gate.CNOT(), 1, 0)
	m.Apply(gate.CNOT(), 2, 1)
	for iter := 0; iter < 60; iter++ {
		for q := 0; q < n; q++ {
			m.ApplyChannel(noise.Depolarizing(0.75), q)
		}
	}
	wantPurity := 1 / float64(int(1)<<n)
	if math.Abs(m.Purity()-wantPurity) > 1e-6 {
		t.Errorf("purity %v, want %v (maximally mixed)", m.Purity(), wantPurity)
	}
	for i, p := range m.Probabilities() {
		if math.Abs(p-1/8.0) > 1e-6 {
			t.Errorf("P(%d) = %v, want 1/8", i, p)
		}
	}
}

func TestDephasingKillsCoherencesKeepsPopulations(t *testing.T) {
	m := New(1)
	m.Apply(gate.H(), 0)
	// ρ = [[1/2,1/2],[1/2,1/2]]; full dephasing (p=1/2) zeroes the
	// off-diagonals: Z with prob 1/2 → ρ' = (ρ + ZρZ)/2.
	m.ApplyChannel(noise.Dephasing(0.5), 0)
	if cmplx.Abs(m.At(0, 1)) > 1e-12 || cmplx.Abs(m.At(1, 0)) > 1e-12 {
		t.Errorf("coherences survived full dephasing: %v, %v", m.At(0, 1), m.At(1, 0))
	}
	if cmplx.Abs(m.At(0, 0)-0.5) > 1e-12 || cmplx.Abs(m.At(1, 1)-0.5) > 1e-12 {
		t.Errorf("populations changed: %v, %v", m.At(0, 0), m.At(1, 1))
	}
}

func TestAmplitudeDamping(t *testing.T) {
	m := New(1)
	m.Apply(gate.X(), 0) // |1⟩
	gamma := 0.3
	m.ApplyKraus(AmplitudeDamping(gamma), 0)
	if cmplx.Abs(m.At(1, 1)-complex(0.7, 0)) > 1e-12 {
		t.Errorf("P(1) = %v, want 0.7", m.At(1, 1))
	}
	if cmplx.Abs(m.At(0, 0)-complex(0.3, 0)) > 1e-12 {
		t.Errorf("P(0) = %v, want 0.3", m.At(0, 0))
	}
	// Damping the ground state is a no-op.
	g := New(1)
	g.ApplyKraus(AmplitudeDamping(0.9), 0)
	if cmplx.Abs(g.At(0, 0)-1) > 1e-12 {
		t.Errorf("ground state decayed: %v", g.At(0, 0))
	}
}

func TestKrausValidation(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-trace-preserving Kraus set")
		}
	}()
	m.ApplyKraus([]gate.Matrix{gate.H().Scale(0.5)}, 0)
}

// TestTrajectoriesConvergeToExactChannel is the headline validation: the
// Monte Carlo noise engine must converge to the exact density-matrix
// evolution, in both output distribution and fidelity.
func TestTrajectoriesConvergeToExactChannel(t *testing.T) {
	n := 6
	r, cgrid := circuit.GridForQubits(n)
	c := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: cgrid, Depth: 10, Seed: 7})
	ch := noise.Depolarizing(0.01)

	exact, err := RunNoisy(c, ch, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	mc, err := noise.Run(c, ch, 600, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	exactProbs := exact.Probabilities()
	var maxd float64
	for i := range exactProbs {
		if d := math.Abs(exactProbs[i] - mc.MeanProbs[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 0.02 {
		t.Errorf("trajectory-averaged probabilities deviate from exact channel: max %g", maxd)
	}

	ideal := statevec.New(n)
	for i := range c.Gates {
		g := &c.Gates[i]
		ideal.Apply(g.Matrix(), g.Qubits...)
	}
	exactF := exact.Fidelity(ideal)
	if math.Abs(exactF-mc.MeanFidelity) > 0.05 {
		t.Errorf("fidelity: exact channel %v vs trajectories %v", exactF, mc.MeanFidelity)
	}
}

func TestFidelityPureAgainstItself(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	v := statevec.New(4)
	for i := 0; i < 6; i++ {
		v.Apply(gate.RandomUnitary(1, rng), rng.Intn(4))
	}
	m := FromPure(v)
	if f := m.Fidelity(v); math.Abs(f-1) > 1e-10 {
		t.Errorf("⟨ψ|ρ|ψ⟩ = %v for ρ = |ψ⟩⟨ψ|", f)
	}
}

// TestJumpTrajectoriesConvergeToExactDamping validates the quantum-jump
// method (state-dependent branch probabilities) against the exact Kraus
// evolution for amplitude damping — a channel stochastic Pauli insertion
// cannot express.
func TestJumpTrajectoriesConvergeToExactDamping(t *testing.T) {
	n := 4
	c := circuit.NewCircuit(n)
	// An entangling circuit with damping-sensitive population.
	c.Append(circuit.NewH(0))
	c.Append(circuit.NewCNOT(0, 1))
	c.Append(circuit.NewCNOT(1, 2))
	c.Append(circuit.NewXHalf(3))
	c.Append(circuit.NewCZ(2, 3))
	c.Append(circuit.NewYHalf(0))
	gamma := 0.15

	// Exact channel evolution.
	exact := New(n)
	kraus := AmplitudeDamping(gamma)
	for i := range c.Gates {
		g := &c.Gates[i]
		exact.Apply(g.Matrix(), g.Qubits...)
		for _, q := range g.Qubits {
			exact.ApplyKraus(kraus, q)
		}
	}

	rng := rand.New(rand.NewSource(20))
	mc, err := noise.RunJumps(c, noise.AmplitudeDampingChannel(gamma), 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	exactProbs := exact.Probabilities()
	var maxd float64
	for i := range exactProbs {
		if d := math.Abs(exactProbs[i] - mc.MeanProbs[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 0.03 {
		t.Errorf("jump trajectories deviate from exact damping channel: max %g", maxd)
	}
}
