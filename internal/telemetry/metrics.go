package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. Lookup/creation takes a lock and is meant
// for setup paths; the returned handles are lock-free atomics the hot path
// updates without allocation. All methods are nil-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark updated lock-free from any goroutine. No-op on nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket 0 holds zero observations,
// bucket b ≥ 1 holds values in [2^(b-1), 2^b). 63 value buckets cover the
// whole non-negative int64 range, so nanosecond durations up to ~292 years
// land somewhere without saturation logic on the hot path.
const histBuckets = 64

// Histogram is a fixed-geometry log2 histogram: one atomic add per
// observation, no allocation, no locks. Values are int64 (the repo uses
// nanoseconds throughout); negative observations clamp to zero.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since t0. No-op on nil.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper edge of the log2 bucket the quantile observation falls in. The
// estimate is conservative by at most 2×, which is plenty for "did the
// p99 collective latency double" questions.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen > rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketUpper is the exclusive upper edge of bucket b.
func bucketUpper(b int) int64 {
	if b == 0 {
		return 0
	}
	if b >= 63 {
		return 1<<63 - 1
	}
	return 1 << b
}

// snapshot types used by the text dump; values are read once so a dump is
// internally consistent per metric even while the hot path keeps counting.
type histStat struct {
	count, sum    int64
	p50, p99, max int64
}

func (h *Histogram) stat() histStat {
	s := histStat{count: h.count.Load(), sum: h.sum.Load()}
	s.p50 = h.Quantile(0.50)
	s.p99 = h.Quantile(0.99)
	s.max = h.Quantile(1)
	return s
}

// WriteMetrics renders every registered metric as plain text, one metric
// per line, sorted by name within each kind — the `qsim -metrics` dump.
//
//	counter   mpi.bytes                 25165824
//	gauge     par.pool_size             7
//	histogram mpi.group_alltoall_ns     count=12 sum=8123456 mean=676954 p50<=1048576 p99<=2097152 max<=2097152
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "telemetry disabled")
		return err
	}
	return t.reg.Write(w)
}

// Write renders the registry as plain text (see Telemetry.WriteMetrics).
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	hists := sortedKeys(r.hists)
	r.mu.Unlock()

	for _, name := range counters {
		if _, err := fmt.Fprintf(w, "counter   %-32s %d\n", name, r.Counter(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range gauges {
		if _, err := fmt.Fprintf(w, "gauge     %-32s %d\n", name, r.Gauge(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range hists {
		s := r.Histogram(name).stat()
		mean := int64(0)
		if s.count > 0 {
			mean = s.sum / s.count
		}
		if _, err := fmt.Fprintf(w, "histogram %-32s count=%d sum=%d mean=%d p50<=%d p99<=%d max<=%d\n",
			name, s.count, s.sum, mean, s.p50, s.p99, s.max); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
