// Package telemetry is the observability layer of the simulator: a
// zero-dependency metrics registry (counters, gauges, log2-bucket duration
// histograms — all atomic and allocation-free on the hot path) plus a
// per-rank span tracer that records stage/op/collective/checkpoint
// lifecycles and exports them as Chrome trace_event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev).
//
// The paper's evaluation (Sec. 4, Figs. 5–8) rests on knowing where time
// goes — compute vs. communication, per stage, per rank — and every future
// perf PR reads its numbers from this layer, so its design goals are:
//
//   - Honest: spans are timestamped at the call site with one clock read
//     pair, and the engine derives its legacy Result.Profile from the same
//     measurements, so the trace and the profile can never disagree.
//   - Cheap when off: the entire API is nil-safe. Disabled (a typed nil
//     *Telemetry) and every handle obtained through it reduce to a nil
//     check; BenchmarkTelemetryOverhead holds the disabled-path cost of a
//     full distributed run to ≤2%.
//   - Race-clean: metric handles are lock-free atomics; each Scope guards
//     its span buffer with a private mutex, so ranks, pool workers and a
//     concurrent exporter can never race (go test -race is part of tier-1
//     for this package's users).
//
// Identity model: a Scope is one timeline — (pid, tid) in Chrome terms.
// The convention used across the repo: pid = simulated MPI rank (with
// tid 0 = the engine, tid 1 = the communication layer) and the special
// PoolPID process hosting one tid per shared worker-pool goroutine.
package telemetry

import (
	"sync"
	"time"
)

// PoolPID is the trace process id used for the shared par worker pool —
// the workers serve every rank, so they get a process of their own rather
// than being misattributed to whichever rank submitted the chunk.
const PoolPID = 1 << 20

// WatchdogPID is the trace process id for world-level transport events
// (deadline watchdog arm/disarm/expiry) that belong to no single rank.
const WatchdogPID = PoolPID + 1

// OocPID is the trace process id of the out-of-core engine: one process
// with the compute loop on tid 0 and the prefetch-reader / writeback
// timelines on tids 1 and 2, so I/O-overlap is visible as parallel rows.
const OocPID = PoolPID + 2

// Disabled is the no-op telemetry sink: a typed nil whose methods — and the
// methods of every Scope, Counter, Gauge and Histogram obtained through
// it — all reduce to a nil check. Passing Disabled (or leaving a hook nil)
// turns instrumentation off without any branching at the call sites.
var Disabled = (*Telemetry)(nil)

// Telemetry bundles a metrics registry and a span tracer sharing one trace
// epoch. The zero value is not usable; call New (or use Disabled).
type Telemetry struct {
	reg   *Registry
	epoch time.Time

	mu     sync.Mutex
	scopes []*Scope
}

// New creates an enabled telemetry sink. The moment of creation is the
// trace epoch: every span timestamp is exported relative to it.
func New() *Telemetry {
	return &Telemetry{reg: NewRegistry(), epoch: time.Now()}
}

// Enabled reports whether t actually records anything.
func (t *Telemetry) Enabled() bool { return t != nil }

// Registry returns the metrics registry (nil on Disabled — the metric
// constructors below are the nil-safe way in).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Counter returns the named counter, creating it on first use.
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.reg.Counter(name)
}

// Gauge returns the named gauge, creating it on first use.
func (t *Telemetry) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	return t.reg.Gauge(name)
}

// Histogram returns the named duration histogram, creating it on first use.
func (t *Telemetry) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	return t.reg.Histogram(name)
}

// Scope opens a timeline identified by (pid, tid) with human-readable
// process/thread names for the trace viewer. Scopes are cheap; callers
// typically open one per rank goroutine or pool worker and keep it for the
// goroutine's lifetime. Opening the same (pid, tid) twice merges the two
// scopes' events onto one timeline at export (used by restart attempts).
func (t *Telemetry) Scope(pid, tid int, process, thread string) *Scope {
	if t == nil {
		return nil
	}
	s := &Scope{t: t, pid: pid, tid: tid, process: process, thread: thread}
	t.mu.Lock()
	t.scopes = append(t.scopes, s)
	t.mu.Unlock()
	return s
}
