package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	tel := New()
	c := tel.Counter("a")
	if c == nil || c != tel.Counter("a") {
		t.Fatal("Counter should return one handle per name")
	}
	if tel.Counter("b") == c {
		t.Fatal("distinct names must get distinct counters")
	}
	if tel.Gauge("a") == nil || tel.Gauge("a") != tel.Gauge("a") {
		t.Fatal("Gauge should return one handle per name")
	}
	if tel.Histogram("a") == nil || tel.Histogram("a") != tel.Histogram("a") {
		t.Fatal("Histogram should return one handle per name")
	}
}

func TestCounterGauge(t *testing.T) {
	tel := New()
	c := tel.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := tel.Gauge("g")
	g.Set(7)
	g.Add(3)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.SetMax(5)
	if got := g.Value(); got != 10 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(99)
	if got := g.Value(); got != 99 {
		t.Fatalf("SetMax(99) = %d, want 99", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := New().Histogram("h")
	// bucket 0 holds zeros (and clamped negatives); bucket b holds
	// [2^(b-1), 2^b), whose conservative upper edge is 2^b.
	h.Observe(0)
	h.Observe(-5)
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("max of zeros = %d, want 0", got)
	}
	if h.Count() != 2 || h.Sum() != 0 {
		t.Fatalf("count=%d sum=%d after two zero observations", h.Count(), h.Sum())
	}

	h2 := New().Histogram("h2")
	for _, v := range []int64{1, 2, 3, 1000} {
		h2.Observe(v)
	}
	if h2.Count() != 4 || h2.Sum() != 1006 {
		t.Fatalf("count=%d sum=%d, want 4/1006", h2.Count(), h2.Sum())
	}
	// 1000 lands in bucket 10 ([512, 1024)); the upper bound is 1024 —
	// conservative by at most 2x.
	if got := h2.Quantile(1); got != 1024 {
		t.Fatalf("max bound = %d, want 1024", got)
	}
	if got := h2.Quantile(0); got != 2 {
		t.Fatalf("min bound = %d, want 2 (upper edge of [1,2))", got)
	}
	// p50 rank = floor(0.5*3) = 1 → second-smallest (2) → bucket [2,4) → 4.
	if got := h2.Quantile(0.5); got != 4 {
		t.Fatalf("p50 bound = %d, want 4", got)
	}
}

func TestDisabledIsNilSafe(t *testing.T) {
	tel := Disabled
	if tel.Enabled() {
		t.Fatal("Disabled.Enabled() = true")
	}
	// Every operation below must silently no-op.
	tel.Counter("c").Inc()
	tel.Counter("c").Add(5)
	tel.Gauge("g").Set(1)
	tel.Gauge("g").SetMax(2)
	tel.Histogram("h").Observe(3)
	tel.Histogram("h").ObserveSince(time.Now())
	if tel.Counter("c").Value() != 0 || tel.Gauge("g").Value() != 0 || tel.Histogram("h").Count() != 0 {
		t.Fatal("reads through Disabled must return zero")
	}
	sc := tel.Scope(0, 0, "p", "t")
	if sc != nil {
		t.Fatal("Disabled.Scope must be nil")
	}
	sc.Complete("cat", "name", time.Now(), time.Second)
	sc.Instant("cat", "name")
	if !sc.Now().IsZero() {
		t.Fatal("nil Scope.Now must be the zero time")
	}
	if tel.SpanCount() != 0 {
		t.Fatal("Disabled.SpanCount != 0")
	}

	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "telemetry disabled") {
		t.Fatalf("disabled metrics dump = %q", buf.String())
	}
	buf.Reset()
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("disabled trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("disabled trace = %+v, want empty event list", doc)
	}
}

// event mirrors the exported trace_event shape for decoding in tests.
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func decodeTrace(t *testing.T, tel *Telemetry) []event {
	t.Helper()
	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestWriteTraceSchema(t *testing.T) {
	tel := New()
	sc := tel.Scope(3, 1, "rank 3", "comm")
	start := time.Now()
	sc.Complete("mpi", "alltoall", start, 1500*time.Nanosecond, A("bytes", 64), A("stage", 2))
	sc.Instant("mpi", "watchdog.arm", A("deadline_ms", 100))
	// A second scope on the same (pid, tid) must merge, not duplicate the
	// metadata events.
	sc2 := tel.Scope(3, 1, "rank 3", "comm")
	sc2.Complete("mpi", "barrier", start, 0)

	evs := decodeTrace(t, tel)
	var meta, complete, instant []event
	for _, e := range evs {
		switch e.Ph {
		case "M":
			meta = append(meta, e)
		case "X":
			complete = append(complete, e)
		case "i":
			instant = append(instant, e)
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if len(meta) != 2 {
		t.Fatalf("metadata events = %d, want 2 (process_name + thread_name, deduped)", len(meta))
	}
	names := map[string]string{}
	for _, e := range meta {
		if e.Pid != 3 {
			t.Fatalf("metadata pid = %d, want 3", e.Pid)
		}
		names[e.Name] = e.Args["name"].(string)
	}
	if names["process_name"] != "rank 3" || names["thread_name"] != "comm" {
		t.Fatalf("metadata names = %v", names)
	}
	if len(complete) != 2 || len(instant) != 1 {
		t.Fatalf("events: %d complete, %d instant; want 2/1", len(complete), len(instant))
	}
	at := complete[0]
	if at.Name != "alltoall" || at.Cat != "mpi" || at.Pid != 3 || at.Tid != 1 {
		t.Fatalf("span identity wrong: %+v", at)
	}
	if at.Dur == nil || *at.Dur != 1.5 {
		t.Fatalf("dur = %v µs, want 1.5", at.Dur)
	}
	if at.Ts < 0 {
		t.Fatalf("ts = %f, want ≥ 0 (relative to epoch)", at.Ts)
	}
	if at.Args["bytes"].(float64) != 64 || at.Args["stage"].(float64) != 2 {
		t.Fatalf("args = %v", at.Args)
	}
	in := instant[0]
	if in.S != "t" || in.Dur != nil || in.Name != "watchdog.arm" {
		t.Fatalf("instant event wrong: %+v", in)
	}
}

func TestNegativeDurationClamps(t *testing.T) {
	tel := New()
	sc := tel.Scope(0, 0, "p", "t")
	sc.Complete("c", "n", time.Now(), -time.Second)
	evs := decodeTrace(t, tel)
	for _, e := range evs {
		if e.Ph == "X" && *e.Dur != 0 {
			t.Fatalf("negative duration exported as %f", *e.Dur)
		}
	}
}

// TestConcurrentSpans hammers one Telemetry from many goroutines — spans on
// private and shared scopes, metric updates, and exports racing recording —
// then validates the final trace against the schema. Run under -race this
// is the package's race-cleanliness proof.
func TestConcurrentSpans(t *testing.T) {
	const goroutines = 8
	const spansEach = 50

	tel := New()
	shared := tel.Scope(PoolPID, 0, "pool", "shared")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := tel.Scope(g, 0, fmt.Sprintf("rank %d", g), "engine")
			for i := 0; i < spansEach; i++ {
				t0 := sc.Now()
				tel.Counter("test.ops").Inc()
				tel.Histogram("test.ns").Observe(int64(i))
				sc.Complete("test", "op", t0, time.Since(t0), A("i", i))
				shared.Complete("test", "shared-op", t0, 0, A("g", g))
			}
		}(g)
	}
	// Export concurrently with recording: must be race-free and valid JSON
	// even if it snapshots a moving target.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if err := tel.WriteTrace(io.Discard); err != nil {
				t.Errorf("concurrent WriteTrace: %v", err)
			}
		}
	}()
	wg.Wait()
	<-done

	if got := tel.Counter("test.ops").Value(); got != goroutines*spansEach {
		t.Fatalf("test.ops = %d, want %d", got, goroutines*spansEach)
	}
	if got := tel.Histogram("test.ns").Count(); got != goroutines*spansEach {
		t.Fatalf("test.ns count = %d, want %d", got, goroutines*spansEach)
	}
	if got := tel.SpanCount(); got != 2*goroutines*spansEach {
		t.Fatalf("SpanCount = %d, want %d", got, 2*goroutines*spansEach)
	}

	evs := decodeTrace(t, tel)
	perPid := map[int]int{}
	for _, e := range evs {
		if e.Ph != "X" {
			continue
		}
		if e.Dur == nil || e.Ts < 0 || e.Name == "" || e.Cat == "" {
			t.Fatalf("malformed span: %+v", e)
		}
		perPid[e.Pid]++
	}
	for g := 0; g < goroutines; g++ {
		if perPid[g] != spansEach {
			t.Fatalf("pid %d has %d spans, want %d", g, perPid[g], spansEach)
		}
	}
	if perPid[PoolPID] != goroutines*spansEach {
		t.Fatalf("shared scope has %d spans, want %d", perPid[PoolPID], goroutines*spansEach)
	}
}

func TestMetricsDumpFormat(t *testing.T) {
	tel := New()
	tel.Counter("z.last").Add(3)
	tel.Counter("a.first").Add(1)
	tel.Gauge("g.x").Set(9)
	h := tel.Histogram("h.ns")
	h.Observe(100)
	h.Observe(300)

	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia, iz := strings.Index(out, "a.first"), strings.Index(out, "z.last")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("counters missing or unsorted:\n%s", out)
	}
	for _, want := range []string{
		"counter   a.first",
		"gauge     g.x",
		"count=2 sum=400 mean=200",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
