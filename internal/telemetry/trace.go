package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Arg is one key/value annotation attached to a span or instant event —
// the stage index, qubit set, fused-cluster size, … that make a timeline
// readable. Values must be JSON-encodable.
type Arg struct {
	Key string
	Val any
}

// A is shorthand for constructing an Arg.
func A(key string, val any) Arg { return Arg{Key: key, Val: val} }

// span is one recorded event: a complete slice of a timeline ('X') or an
// instant marker ('i').
type span struct {
	name  string
	cat   string
	start time.Time
	dur   time.Duration
	ph    byte
	args  []Arg
}

// Scope is one trace timeline — (pid, tid) in Chrome trace terms. A scope
// is typically owned by a single goroutine, but every method is guarded by
// a private mutex so shared use (e.g. pool-worker slots reached from both
// a worker and a caller draining the queue) stays race-clean. All methods
// are nil-safe: a nil *Scope records nothing.
type Scope struct {
	t       *Telemetry
	pid     int
	tid     int
	process string
	thread  string

	mu    sync.Mutex
	spans []span
}

// Complete records a finished span: the caller measured [start, start+dur)
// itself (typically with one time.Now/time.Since pair that also feeds its
// own accounting, so trace and profile can never disagree). No-op on nil.
func (s *Scope) Complete(cat, name string, start time.Time, dur time.Duration, args ...Arg) {
	if s == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	s.mu.Lock()
	s.spans = append(s.spans, span{name: name, cat: cat, start: start, dur: dur, ph: 'X', args: args})
	s.mu.Unlock()
}

// Instant records a zero-duration marker event (watchdog armed, snapshot
// committed, …). No-op on nil.
func (s *Scope) Instant(cat, name string, args ...Arg) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.spans = append(s.spans, span{name: name, cat: cat, start: now, ph: 'i', args: args})
	s.mu.Unlock()
}

// Now returns the current time when the scope records, the zero time when
// it is nil — the guard pattern for hot paths that only want to pay for a
// clock read while tracing:
//
//	t0 := sc.Now()
//	...work...
//	if !t0.IsZero() { sc.Complete("cat", "name", t0, time.Since(t0)) }
func (s *Scope) Now() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// traceEvent is the Chrome trace_event JSON shape (see the Trace Event
// Format spec). ts and dur are microseconds; fractional values preserve
// sub-microsecond span lengths.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: "t" = thread
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the exported JSON document.
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports every recorded span as Chrome trace_event JSON. Call
// it after the instrumented work has quiesced (ranks joined, pool idle);
// concurrent recording is race-safe but events recorded after the snapshot
// is taken are not included. Writing on Disabled emits an empty trace.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	doc := traceDoc{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		scopes := append([]*Scope(nil), t.scopes...)
		t.mu.Unlock()

		// Metadata: name each process and thread once, deterministically.
		type key struct{ pid, tid int }
		procNamed := map[int]bool{}
		threadNamed := map[key]bool{}
		sorted := append([]*Scope(nil), scopes...)
		sort.SliceStable(sorted, func(i, j int) bool {
			if sorted[i].pid != sorted[j].pid {
				return sorted[i].pid < sorted[j].pid
			}
			return sorted[i].tid < sorted[j].tid
		})
		for _, sc := range sorted {
			if sc.process != "" && !procNamed[sc.pid] {
				procNamed[sc.pid] = true
				doc.TraceEvents = append(doc.TraceEvents, traceEvent{
					Name: "process_name", Ph: "M", Pid: sc.pid, Tid: sc.tid,
					Args: map[string]any{"name": sc.process},
				})
			}
			if sc.thread != "" && !threadNamed[key{sc.pid, sc.tid}] {
				threadNamed[key{sc.pid, sc.tid}] = true
				doc.TraceEvents = append(doc.TraceEvents, traceEvent{
					Name: "thread_name", Ph: "M", Pid: sc.pid, Tid: sc.tid,
					Args: map[string]any{"name": sc.thread},
				})
			}
		}
		for _, sc := range sorted {
			sc.mu.Lock()
			spans := append([]span(nil), sc.spans...)
			sc.mu.Unlock()
			for _, sp := range spans {
				ev := traceEvent{
					Name: sp.name, Cat: sp.cat, Ph: string(sp.ph),
					Ts:  float64(sp.start.Sub(t.epoch)) / float64(time.Microsecond),
					Pid: sc.pid, Tid: sc.tid,
				}
				if sp.ph == 'X' {
					d := float64(sp.dur) / float64(time.Microsecond)
					ev.Dur = &d
				} else {
					ev.S = "t"
				}
				if len(sp.args) > 0 {
					ev.Args = make(map[string]any, len(sp.args))
					for _, a := range sp.args {
						ev.Args[a.Key] = a.Val
					}
				}
				doc.TraceEvents = append(doc.TraceEvents, ev)
			}
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("telemetry: encoding trace: %w", err)
	}
	return nil
}

// SpanCount returns the number of events recorded so far across all scopes
// (0 on Disabled). Tests use it; the hot path never does.
func (t *Telemetry) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	scopes := append([]*Scope(nil), t.scopes...)
	t.mu.Unlock()
	n := 0
	for _, sc := range scopes {
		sc.mu.Lock()
		n += len(sc.spans)
		sc.mu.Unlock()
	}
	return n
}
