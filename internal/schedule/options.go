// Package schedule implements the circuit optimizations of Sec. 3.6 of
// Häner & Steiger, SC'17: gate scheduling into communication-free stages,
// greedy clustering of gates into k ≤ kmax qubit fused gates, local
// adjustment of global-to-local swaps across stage boundaries, and the
// qubit-mapping heuristic. Its output is an executable Plan consumed by the
// single-node executor in this package and by the distributed engine in
// package dist.
package schedule

import "fmt"

// SwapPolicy selects how the residency set of the next stage is chosen at a
// global-to-local swap.
type SwapPolicy int

const (
	// SwapGreedy is the paper's "cheap search algorithm to find better
	// local qubits to swap with": the next resident set is built by walking
	// the remaining circuit and admitting the qubits of the longest
	// schedulable prefix, keeping still-useful residents.
	SwapGreedy SwapPolicy = iota
	// SwapLowestOrder is the paper's baseline upper bound: every global
	// qubit is swapped in, evicting the lowest-order local qubits
	// regardless of whether they are needed soon.
	SwapLowestOrder
)

func (p SwapPolicy) String() string {
	switch p {
	case SwapGreedy:
		return "greedy"
	case SwapLowestOrder:
		return "lowest-order"
	}
	return fmt.Sprintf("SwapPolicy(%d)", int(p))
}

// MappingPolicy selects the initial qubit → bit-location assignment.
type MappingPolicy int

const (
	// MapIdentity assigns resident qubits to local bit locations in qubit
	// order.
	MapIdentity MappingPolicy = iota
	// MapHeuristic applies the cache-associativity-aware heuristic of
	// Sec. 3.6.2: hot qubits (those appearing in the most clusters) are
	// assigned the low-order bit locations.
	MapHeuristic
)

func (p MappingPolicy) String() string {
	switch p {
	case MapIdentity:
		return "identity"
	case MapHeuristic:
		return "heuristic"
	}
	return fmt.Sprintf("MappingPolicy(%d)", int(p))
}

// Options configures Build.
type Options struct {
	// LocalQubits is l: qubits at bit locations < l are stored node-locally
	// (2^l amplitudes per rank); the remaining n−l are global (encoded in
	// the rank number). LocalQubits ≥ n means a single rank and no
	// communication.
	LocalQubits int
	// KMax is the largest fused-gate size the clustering may build
	// (Table 1 evaluates 3, 4 and 5).
	KMax int
	// SpecializeDiagonal2Q enables executing diagonal two-qubit gates (CZ)
	// on global qubits without communication (Sec. 3.5). The paper's stage
	// finder always uses this.
	SpecializeDiagonal2Q bool
	// SpecializeDiagonal1Q additionally specializes diagonal single-qubit
	// gates (T, Z, S, Rz). The paper's stage finder assumes the worst case
	// — random single-qubit gates treated as dense — so this defaults off
	// for scheduling (Sec. 3.6.1 step 1); enabling it models the
	// "median hard instances" of Fig. 5.
	SpecializeDiagonal1Q bool
	// SwapPolicy picks the residency-selection strategy.
	SwapPolicy SwapPolicy
	// AdjustBoundaries enables step 3 of Sec. 3.6.1: trailing clusters of a
	// stage whose qubits stay resident are deferred across the swap to grow
	// the next stage's clusters.
	AdjustBoundaries bool
	// Mapping picks the initial bit-location assignment.
	Mapping MappingPolicy
	// Clustering enables gate fusion. When false every local gate becomes
	// its own cluster (the ablation baseline).
	Clustering bool
	// NoSeedSearch disables the "small local search" of Sec. 3.6.1 step 2
	// that tries every ready gate as the cluster seed and keeps the
	// largest cluster; instead the earliest ready gate always seeds.
	// An ablation knob — the search reduces the total cluster count.
	NoSeedSearch bool
}

// DefaultOptions returns the configuration the paper's results use:
// greedy swap search, CZ specialization, worst-case dense single-qubit
// gates, clustering with kmax = 5 (the largest fused-gate size Table 1
// evaluates, matching the k ≤ 5 specialized kernels), boundary adjustment
// and heuristic mapping. KMax is clamped to localQubits so tiny local
// windows still validate.
func DefaultOptions(localQubits int) Options {
	kmax := 5
	if localQubits >= 1 && localQubits < kmax {
		// A cluster cannot span more qubits than are resident; keep the
		// default valid for tiny local partitions. localQubits 0 is the
		// "caller fills LocalQubits in later" sentinel and keeps the full
		// paper default.
		kmax = localQubits
	}
	return Options{
		LocalQubits:          localQubits,
		KMax:                 kmax,
		SpecializeDiagonal2Q: true,
		SpecializeDiagonal1Q: false,
		SwapPolicy:           SwapGreedy,
		AdjustBoundaries:     true,
		Mapping:              MapHeuristic,
		Clustering:           true,
	}
}

func (o Options) validate(n int) error {
	if o.LocalQubits < 1 {
		return fmt.Errorf("schedule: LocalQubits must be ≥ 1, got %d", o.LocalQubits)
	}
	if o.KMax < 1 {
		return fmt.Errorf("schedule: KMax must be ≥ 1, got %d", o.KMax)
	}
	l := o.LocalQubits
	if l > n {
		l = n
	}
	if o.KMax > l {
		return fmt.Errorf("schedule: KMax %d exceeds local qubits %d", o.KMax, l)
	}
	return nil
}
