package schedule

import "sort"

// heuristicMapping implements the qubit-mapping heuristic of Sec. 3.6.2:
// assign bit locations so that as many clusters as possible act on
// low-order locations, where the cache set-associativity penalty of
// high-stride accesses (Fig. 6 / Fig. 9) does not bite.
//
// Locations 0–3 are assigned, in turn, to the qubit appearing in the most
// clusters; clusters acting on an already-assigned location are then
// ignored. Locations 4–7 are assigned the same way, except that after each
// step only clusters acting on two of these four locations are ignored.
// Remaining local locations go to qubits by descending residual cluster
// count; global locations keep qubit-index order.
func heuristicMapping(n, l int, resident uint64, clusters [][]int) []int {
	pos := make([]int, n)
	for q := range pos {
		pos[q] = -1
	}
	isResident := func(q int) bool { return resident&(1<<uint(q)) != 0 }

	// Live cluster set, as qubit lists restricted to resident qubits.
	type cl struct {
		qubits   []int
		assigned int // # qubits assigned to locations 4–7
		dead     bool
	}
	var live []*cl
	for _, qs := range clusters {
		c := &cl{}
		for _, q := range qs {
			if isResident(q) {
				c.qubits = append(c.qubits, q)
			}
		}
		if len(c.qubits) > 0 {
			live = append(live, c)
		}
	}

	assignedTo := make([]bool, n)
	freq := func() map[int]int {
		f := map[int]int{}
		for _, c := range live {
			if c.dead {
				continue
			}
			for _, q := range c.qubits {
				if !assignedTo[q] {
					f[q]++
				}
			}
		}
		return f
	}
	pickMax := func() int {
		f := freq()
		best, bestQ := -1, -1
		for q := 0; q < n; q++ {
			if !isResident(q) || assignedTo[q] {
				continue
			}
			if f[q] > best {
				best, bestQ = f[q], q
			}
		}
		return bestQ
	}

	nextLoc := 0
	// Locations 0–3: drop covered clusters entirely.
	for ; nextLoc < 4 && nextLoc < l; nextLoc++ {
		q := pickMax()
		if q < 0 {
			break
		}
		pos[q] = nextLoc
		assignedTo[q] = true
		for _, c := range live {
			if c.dead {
				continue
			}
			for _, cq := range c.qubits {
				if cq == q {
					c.dead = true
					break
				}
			}
		}
	}
	// Locations 4–7: a cluster is dropped once two of its qubits sit in
	// this location group.
	for ; nextLoc < 8 && nextLoc < l; nextLoc++ {
		q := pickMax()
		if q < 0 {
			break
		}
		pos[q] = nextLoc
		assignedTo[q] = true
		for _, c := range live {
			if c.dead {
				continue
			}
			for _, cq := range c.qubits {
				if cq == q {
					c.assigned++
					break
				}
			}
			if c.assigned >= 2 {
				c.dead = true
			}
		}
	}
	// Remaining local locations: descending residual frequency, then index.
	var restQ []int
	f := freq()
	for q := 0; q < n; q++ {
		if isResident(q) && !assignedTo[q] {
			restQ = append(restQ, q)
		}
	}
	sort.Slice(restQ, func(i, j int) bool {
		if f[restQ[i]] != f[restQ[j]] {
			return f[restQ[i]] > f[restQ[j]]
		}
		return restQ[i] < restQ[j]
	})
	for _, q := range restQ {
		pos[q] = nextLoc
		nextLoc++
	}
	// Global locations in qubit order.
	g := l
	for q := 0; q < n; q++ {
		if !isResident(q) {
			pos[q] = g
			g++
		}
	}
	return pos
}
