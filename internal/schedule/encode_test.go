package schedule

import (
	"bytes"
	"testing"

	"qusim/internal/statevec"
)

func TestPlanRoundTrip(t *testing.T) {
	c := supremacy(12, 16, 90)
	plan, err := Build(c, DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != plan.N || got.L != plan.L || len(got.Ops) != len(plan.Ops) {
		t.Fatalf("round trip mismatch: n=%d l=%d ops=%d", got.N, got.L, len(got.Ops))
	}
	if got.Stats.Swaps != plan.Stats.Swaps || got.Stats.Clusters != plan.Stats.Clusters {
		t.Errorf("stats mismatch after round trip")
	}
	// Executing the deserialized plan must give identical results.
	a := statevec.NewUniform(c.N)
	b := statevec.NewUniform(c.N)
	if err := plan.Run(a); err != nil {
		t.Fatal(err)
	}
	if err := got.Run(b); err != nil {
		t.Fatal(err)
	}
	if d := a.MaxDiff(b); d != 0 {
		t.Errorf("deserialized plan diverges: max diff %g", d)
	}
}

func TestReadPlanRejectsGarbage(t *testing.T) {
	if _, err := ReadPlan(bytes.NewReader([]byte("not a plan"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadPlan(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadPlanValidates(t *testing.T) {
	c := supremacy(9, 8, 91)
	plan, err := Build(c, DefaultOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the position map and re-encode.
	bad := *plan
	bad.FinalPos = append([]int(nil), plan.FinalPos...)
	bad.FinalPos[0] = bad.FinalPos[1]
	var buf bytes.Buffer
	if err := WritePlan(&buf, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlan(&buf); err == nil {
		t.Error("non-permutation position map accepted")
	}
}
