package schedule

import (
	"math/cmplx"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/statevec"
)

// FuzzScheduleEquivalence fuzzes the full scheduling pipeline — clustering,
// swap insertion, boundary adjustment, heuristic mapping — against naive
// gate-by-gate simulation. Any input the fuzzer finds where the built plan
// deviates from (1⊗…⊗U⊗…⊗1)|Ψ⟩ semantics by more than 1e-9 is a scheduler
// bug; the corpus entry is the reproducer.
func FuzzScheduleEquivalence(f *testing.F) {
	f.Add(int64(1), 6, 30, 3)
	f.Add(int64(2), 8, 48, 5)
	f.Add(int64(3), 10, 60, 7)
	f.Add(int64(4), 4, 24, 2)
	f.Add(int64(5), 9, 40, 9)
	f.Fuzz(func(t *testing.T, seed int64, n, gates, l int) {
		// Clamp the raw fuzz inputs into the supported envelope instead of
		// rejecting them, so every execution exercises the scheduler.
		if n < 2 {
			n = 2
		}
		if n > 10 {
			n = 2 + int(uint(n)%9)
		}
		if gates < 1 {
			gates = 1
		}
		if gates > 120 {
			gates = 1 + int(uint(gates)%120)
		}
		// Dense 2-qubit gates need two local bit positions, so l ≥ 2.
		if l < 2 || l > n {
			l = 2 + int(uint(l)%uint(n-1))
		}
		c := circuit.RandomCircuit(n, gates, seed)

		opts := DefaultOptions(l)
		if opts.KMax > l {
			opts.KMax = l
		}
		plan, err := Build(c, opts)
		if err != nil {
			t.Fatalf("Build(n=%d gates=%d l=%d seed=%d): %v", n, gates, l, seed, err)
		}

		want := statevec.New(n)
		for _, g := range c.Gates {
			want.Apply(g.Matrix(), g.Qubits...)
		}
		got := statevec.New(n)
		if err := plan.Run(got); err != nil {
			t.Fatalf("Run(n=%d gates=%d l=%d seed=%d): %v", n, gates, l, seed, err)
		}
		for b := 0; b < 1<<n; b++ {
			if d := cmplx.Abs(want.Amplitude(b) - got.Amplitude(plan.PermutedIndex(b))); d > 1e-9 {
				t.Fatalf("n=%d gates=%d l=%d seed=%d: amplitude %d deviates by %g\n%s",
					n, gates, l, seed, b, d, plan.Summary())
			}
		}
	})
}
