package schedule

import (
	"fmt"
	"sync"
)

// The chunk access map: the static-lookahead analysis a paged (out-of-core)
// executor needs to schedule I/O around the plan instead of reacting to it.
// A file-backed state is divided into 2^(N−L) chunks of 2^L amplitudes;
// chunk-index bits play the role of the global qubits. The scheduler already
// knows, per swap-delimited stage, exactly which bit locations every op
// touches — this file turns that knowledge into a per-stage description of
// chunk reads, writes and exchanges that a prefetch/writeback pipeline can
// execute against (QP-Sim's "Lookahead" analysis, applied to this repo's
// Plan).
//
// With up to 2^39 chunks the per-stage chunk sets are represented
// intensionally, not as materialized lists: every op kind the executor
// streams (clusters, diagonals — including purely global ones, which reduce
// to a per-chunk scale — and local permutations) touches *every* chunk in
// one sequential read+write pass, and a stage-closing swap exchanges each
// chunk's sub-blocks with the 2^q−1 partner chunks differing in the swapped
// chunk-index bits. The access map records which of those patterns a stage
// exhibits and which ops ride the streamed pass, so the executor can fuse
// all of a stage's local ops into a single pass and overlap its I/O.

// StageAccess describes how one swap-delimited stage touches the chunks of
// a paged state file.
type StageAccess struct {
	// Stage is the stage index (contiguous from 0).
	Stage int
	// Ops are the indices into Plan.Ops of this stage, in execution order.
	Ops []int
	// StreamOps is the subset of Ops a paged executor applies in the
	// stage's single streamed read+write pass over every chunk: clusters,
	// diagonals and local permutations, in execution order. A stage-closing
	// swap's fused pre-permutation (Op.Perm on an OpSwap) also belongs to
	// the streamed pass but is reached through Swap, not listed here.
	StreamOps []int
	// Swap is the index into Plan.Ops of the stage-closing OpSwap, or −1
	// for the final stage (no exchange).
	Swap int
	// SwapChunkBits are the chunk-index bits (GlobalPos − L) the closing
	// swap exchanges; empty when Swap is −1. Chunk c trades sub-blocks with
	// the partner chunks that differ from c exactly in subsets of these
	// bits.
	SwapChunkBits []int
	// Reads/Writes report whether the stage's streamed pass reads and
	// writes every chunk (it does whenever the stage has any streamable
	// work). A swap additionally re-reads every chunk and scatters
	// sub-block writes across every chunk of the target file; that pattern
	// is implied by Swap ≥ 0.
	Reads, Writes bool
	// LocalQubitMask has bit b set when some op of the stage acts on local
	// bit location b (< L) — the stage's qubit set, for trace annotations
	// and locality diagnostics.
	LocalQubitMask uint64
}

// Exchanges reports whether the stage ends in a global-to-local swap.
func (sa *StageAccess) Exchanges() bool { return sa.Swap >= 0 }

// Partners appends to dst the chunks that exchange sub-blocks with chunk c
// in this stage's closing swap (c itself excluded) and returns the result.
// It returns dst unchanged for a swapless stage.
func (sa *StageAccess) Partners(c int, dst []int) []int {
	q := len(sa.SwapChunkBits)
	for m := 1; m < 1<<q; m++ {
		p := c
		for t, b := range sa.SwapChunkBits {
			if m&(1<<t) != 0 {
				p ^= 1 << b
			}
		}
		dst = append(dst, p)
	}
	return dst
}

// Touches reports whether the stage touches chunk c at all. Every non-empty
// stage touches every chunk (streamed ops pass over the whole file; a swap
// exchanges within full chunk groups), so this is false only for a stage
// with no ops — which the builder never emits — but the property tests
// assert the equivalence against the executor rather than assume it.
func (sa *StageAccess) Touches(c int) bool {
	return sa.Reads || sa.Writes || sa.Exchanges()
}

// ChunkAccess is the per-stage chunk access map of one plan (shape). It is
// immutable after construction and safe to share across goroutines and
// across plans with equal StructureFingerprint.
type ChunkAccess struct {
	N, L   int
	Stages []StageAccess
}

// Chunks returns the number of file chunks the map describes, 2^(N−L).
func (a *ChunkAccess) Chunks() int { return 1 << (a.N - a.L) }

// buildAccess derives the access map by a single walk over the op stream.
func buildAccess(p *Plan) (*ChunkAccess, error) {
	a := &ChunkAccess{N: p.N, L: p.L, Stages: make([]StageAccess, 0, p.Stages())}
	for i := range p.Ops {
		op := &p.Ops[i]
		for len(a.Stages) <= op.Stage {
			a.Stages = append(a.Stages, StageAccess{Stage: len(a.Stages), Swap: -1})
		}
		sa := &a.Stages[op.Stage]
		sa.Ops = append(sa.Ops, i)
		switch op.Kind {
		case OpCluster, OpDiagonal:
			sa.StreamOps = append(sa.StreamOps, i)
			sa.Reads, sa.Writes = true, true
			for _, q := range op.Positions {
				if q < p.L {
					sa.LocalQubitMask |= 1 << q
				}
			}
		case OpLocalPerm:
			sa.StreamOps = append(sa.StreamOps, i)
			sa.Reads, sa.Writes = true, true
			for q, dst := range op.Perm {
				if q != dst {
					sa.LocalQubitMask |= 1 << q
				}
			}
		case OpSwap:
			if sa.Swap >= 0 {
				return nil, fmt.Errorf("schedule: stage %d closes with two swaps (ops %d and %d)", op.Stage, sa.Swap, i)
			}
			sa.Swap = i
			for _, g := range op.GlobalPos {
				sa.SwapChunkBits = append(sa.SwapChunkBits, g-p.L)
			}
			for _, q := range op.LocalPos {
				sa.LocalQubitMask |= 1 << q
			}
			if op.Perm != nil {
				// The fused pre-permutation streams with the stage pass.
				sa.Reads, sa.Writes = true, true
			}
		default:
			return nil, fmt.Errorf("schedule: unknown op kind %v in access analysis", op.Kind)
		}
		if sa.Swap >= 0 && i != sa.Swap {
			return nil, fmt.Errorf("schedule: stage %d has op %d after its closing swap", op.Stage, i)
		}
	}
	return a, nil
}

// accessCache memoizes access maps across plans, keyed on
// StructureFingerprint: a parameter sweep that rebuilds the plan with new
// gate angles (same circuit shape, same schedule) hits the cache and skips
// re-analysis. Entries are immutable, so sharing pointers is safe.
var accessCache = struct {
	sync.Mutex
	m            map[string]*ChunkAccess
	hits, misses int64
}{m: make(map[string]*ChunkAccess)}

// accessCacheMax bounds the cache; past it the map is dropped wholesale
// (analysis is cheap — the bound only stops a pathological plan churn from
// growing the process without limit).
const accessCacheMax = 128

// AccessMap returns the plan's per-stage chunk access map, memoized
// process-wide on StructureFingerprint (see the cache note above). The
// returned map is shared and must not be mutated.
func (p *Plan) AccessMap() (*ChunkAccess, error) {
	key := p.StructureFingerprint()
	accessCache.Lock()
	if a, ok := accessCache.m[key]; ok {
		accessCache.hits++
		accessCache.Unlock()
		return a, nil
	}
	accessCache.misses++
	accessCache.Unlock()

	a, err := buildAccess(p)
	if err != nil {
		return nil, err
	}
	accessCache.Lock()
	if len(accessCache.m) >= accessCacheMax {
		accessCache.m = make(map[string]*ChunkAccess)
	}
	// A racing builder may have stored the same shape already; keep the
	// first so repeated AccessMap calls return one shared pointer.
	if prev, ok := accessCache.m[key]; ok {
		a = prev
	} else {
		accessCache.m[key] = a
	}
	accessCache.Unlock()
	return a, nil
}

// AccessCacheStats returns the cumulative plan-analysis cache hit/miss
// counters (telemetry and the parameter-sweep tests read them).
func AccessCacheStats() (hits, misses int64) {
	accessCache.Lock()
	defer accessCache.Unlock()
	return accessCache.hits, accessCache.misses
}

// AccessCacheCounters is a point-in-time reading of the plan-analysis
// cache counters. Harnesses that share the process-global cache (qbench's
// parameter-sweep workloads, the oocvec pipeline tests) take one before a
// phase and difference after, instead of flushing the cache out from under
// concurrent users.
type AccessCacheCounters struct {
	Hits, Misses int64
}

// SnapshotAccessCache returns the current cumulative counters.
func SnapshotAccessCache() AccessCacheCounters {
	h, m := AccessCacheStats()
	return AccessCacheCounters{Hits: h, Misses: m}
}

// Delta returns the counter movement since the snapshot c was taken.
func (c AccessCacheCounters) Delta() AccessCacheCounters {
	now := SnapshotAccessCache()
	return AccessCacheCounters{Hits: now.Hits - c.Hits, Misses: now.Misses - c.Misses}
}

// FlushAccessCache empties the plan-analysis cache and zeroes its
// counters — for tests and long-running servers cycling many circuit
// shapes.
func FlushAccessCache() {
	accessCache.Lock()
	defer accessCache.Unlock()
	accessCache.m = make(map[string]*ChunkAccess)
	accessCache.hits, accessCache.misses = 0, 0
}
