package schedule

import (
	"fmt"
	"strings"

	"qusim/internal/gate"
	"qusim/internal/statevec"
)

// OpKind identifies a plan operation.
type OpKind int

const (
	// OpCluster applies a fused k-qubit unitary to local bit locations.
	OpCluster OpKind = iota
	// OpDiagonal applies a diagonal gate; its positions may include global
	// bit locations (≥ l) — the gate specialization of Sec. 3.5, which
	// needs no communication.
	OpDiagonal
	// OpLocalPerm relabels local bit locations (the in-node swaps that
	// bring arbitrary local qubits to the highest-order local positions
	// before an all-to-all, Sec. 3.4).
	OpLocalPerm
	// OpSwap is a global-to-local swap: LocalPos[j] ↔ GlobalPos[j],
	// realized by group all-to-alls (one communication step).
	OpSwap
)

func (k OpKind) String() string {
	switch k {
	case OpCluster:
		return "cluster"
	case OpDiagonal:
		return "diag"
	case OpLocalPerm:
		return "perm"
	case OpSwap:
		return "swap"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one plan operation.
type Op struct {
	Kind OpKind

	// OpCluster: fused matrix over Positions (sorted ascending, all < l).
	// OpDiagonal: Diag entries over Positions (sorted ascending, any range).
	Matrix    gate.Matrix
	Diag      []complex128
	Positions []int

	// OpLocalPerm: Perm[p] is the new location of the qubit at local
	// location p; len(Perm) == l. On an OpSwap, a non-nil Perm is a local
	// permutation fused into the swap (applied logically BEFORE the
	// exchange): engines fold it into the all-to-all pack/unpack loops so
	// it costs no separate full-state sweep.
	Perm []int

	// OpSwap: pairwise exchange LocalPos[j] ↔ GlobalPos[j].
	LocalPos  []int
	GlobalPos []int

	// GateCount is the number of circuit gates merged into this op.
	GateCount int
	// Stage is the index of the stage this op belongs to.
	Stage int
}

// Stats summarizes a plan for the Fig. 5 / Table 1 / Table 2 experiments.
type Stats struct {
	Qubits      int
	LocalQubits int
	Gates       int // circuit gates covered by the plan
	Stages      int
	Swaps       int // global-to-local swaps (communication steps)
	Clusters    int // fused-gate kernel invocations
	DiagonalOps int // specialized diagonal executions (incl. global ones)
	LocalPerms  int
	// FusedPerms counts the local permutations folded into their adjacent
	// global-to-local swap (a subset of LocalPerms).
	FusedPerms int
	// ClusterSizes[k] counts clusters acting on exactly k qubits.
	ClusterSizes map[int]int
	// GatesPerCluster is the mean number of circuit gates per cluster.
	GatesPerCluster float64
	// BaselineGlobalGates counts the communication steps the per-gate
	// scheme of [5]/[19] would need: gates touching a global qubit when
	// executed in circuit order with the initial mapping, under the same
	// specialization assumptions (Fig. 5, lower panels).
	BaselineGlobalGates int
	// BaselineGlobalGatesDense is the worst-case variant that treats every
	// single-qubit gate as dense (Fig. 5's dashed lines).
	BaselineGlobalGatesDense int
}

// Plan is a schedule of operations equivalent to the source circuit, up to
// the qubit → bit-location relabeling recorded in InitialPos/FinalPos.
type Plan struct {
	N int // total qubits
	L int // local qubits (bit locations < L are node-local)

	Ops []Op

	// InitialPos[q] is the bit location qubit q occupies before Ops run;
	// FinalPos[q] the location after. The amplitude the source circuit
	// stores at index Σ v_q·2^q lands at index Σ v_q·2^FinalPos[q].
	InitialPos []int
	FinalPos   []int

	Stats Stats
}

// Stages returns the number of swap-delimited stages in the plan (stage
// indices are contiguous from 0).
func (p *Plan) Stages() int {
	if len(p.Ops) == 0 {
		return 0
	}
	return p.Ops[len(p.Ops)-1].Stage + 1
}

// Run executes the plan on a full-size single-node state vector (bit
// locations ≥ L are ordinary bits of the index). The state must already be
// arranged with qubit q at location InitialPos[q]; for a fresh |0…0⟩ or
// uniform state any arrangement is equivalent.
func (p *Plan) Run(v *statevec.Vector) error {
	return p.RunFrom(v, 0)
}

// RunFrom executes only the ops with Stage ≥ startStage — the resume path
// of a checkpointed run, where v was restored from a snapshot taken at the
// stage-startStage boundary.
func (p *Plan) RunFrom(v *statevec.Vector, startStage int) error {
	if v.N != p.N {
		return fmt.Errorf("schedule: plan is for %d qubits, state has %d", p.N, v.N)
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.Stage < startStage {
			continue
		}
		switch op.Kind {
		case OpCluster:
			v.ApplyDense(op.Matrix, op.Positions...)
		case OpDiagonal:
			v.ApplyDiagonal(op.Diag, op.Positions...)
		case OpLocalPerm:
			perm := make([]int, p.N)
			copy(perm, op.Perm)
			for q := p.L; q < p.N; q++ {
				perm[q] = q
			}
			v.PermuteBits(perm)
		case OpSwap:
			if op.Perm != nil {
				perm := make([]int, p.N)
				copy(perm, op.Perm)
				for q := p.L; q < p.N; q++ {
					perm[q] = q
				}
				v.PermuteBits(perm)
			}
			for j := range op.LocalPos {
				v.SwapBits(op.LocalPos[j], op.GlobalPos[j])
			}
		default:
			return fmt.Errorf("schedule: unknown op kind %v", op.Kind)
		}
	}
	return nil
}

// PermutedIndex returns the state-vector index at which the amplitude of
// basis state b (qubit q = bit q of b) is found after Run.
func (p *Plan) PermutedIndex(b int) int {
	out := 0
	for q := 0; q < p.N; q++ {
		if b&(1<<q) != 0 {
			out |= 1 << p.FinalPos[q]
		}
	}
	return out
}

// LogicalIndex is the inverse of PermutedIndex: given a physical
// state-vector index after Run, it returns the logical basis state (qubit
// q = bit q). Used to translate distributed samples back to qubit order.
func (p *Plan) LogicalIndex(physical int) int {
	out := 0
	for q := 0; q < p.N; q++ {
		if physical&(1<<p.FinalPos[q]) != 0 {
			out |= 1 << q
		}
	}
	return out
}

// Summary renders the per-stage structure for the qsched tool.
func (p *Plan) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: n=%d l=%d stages=%d swaps=%d clusters=%d diag-ops=%d gates=%d\n",
		p.N, p.L, p.Stats.Stages, p.Stats.Swaps, p.Stats.Clusters, p.Stats.DiagonalOps, p.Stats.Gates)
	stage := -1
	for _, op := range p.Ops {
		if op.Stage != stage {
			stage = op.Stage
			fmt.Fprintf(&b, "stage %d:\n", stage)
		}
		switch op.Kind {
		case OpCluster:
			fmt.Fprintf(&b, "  cluster k=%d pos=%v gates=%d\n", len(op.Positions), op.Positions, op.GateCount)
		case OpDiagonal:
			fmt.Fprintf(&b, "  diag    k=%d pos=%v gates=%d\n", len(op.Positions), op.Positions, op.GateCount)
		case OpLocalPerm:
			fmt.Fprintf(&b, "  perm    local\n")
		case OpSwap:
			if op.Perm != nil {
				fmt.Fprintf(&b, "  SWAP    local=%v global=%v (fused perm)\n", op.LocalPos, op.GlobalPos)
			} else {
				fmt.Fprintf(&b, "  SWAP    local=%v global=%v\n", op.LocalPos, op.GlobalPos)
			}
		}
	}
	return b.String()
}
