package schedule

import (
	"math/bits"
)

// stageOp is an intermediate operation of one stage: either a cluster of
// gates to fuse, or a single specialized diagonal gate touching global
// qubits. gates holds circuit gate indices in program order.
type stageOp struct {
	cluster bool
	gates   []int
}

// clusterStage greedily merges the stage's gates into clusters of at most
// KMax qubits (Sec. 3.6.1 step 2). Gates acting on a global qubit are
// specialized diagonal gates and are emitted as singleton ops. A small
// local search tries every ready gate as the cluster seed and keeps the
// cluster that merges the most gates.
func (b *builder) clusterStage(sel []int, resident uint64) []stageOp {
	n := len(sel)
	if n == 0 {
		return nil
	}
	// Per-qubit queues of stage-local gate indices.
	queues := make(map[int][]int)
	for si, gi := range sel {
		for _, q := range b.c.Gates[gi].Qubits {
			queues[q] = append(queues[q], si)
		}
	}
	ptr := make(map[int]int, len(queues))
	assigned := make([]bool, n)
	remaining := n

	isLocal := func(si int) bool {
		return b.qubitMask(&b.c.Gates[sel[si]])&^resident == 0
	}
	// ready reports whether si is the front gate of all its qubits.
	ready := func(si int, pt map[int]int) bool {
		for _, q := range b.c.Gates[sel[si]].Qubits {
			queue := queues[q]
			p := pt[q]
			if p >= len(queue) || queue[p] != si {
				return false
			}
		}
		return true
	}
	advance := func(si int, pt map[int]int, asg []bool) {
		asg[si] = true
		for _, q := range b.c.Gates[sel[si]].Qubits {
			pt[q]++
		}
	}

	var out []stageOp
	kmax := b.opts.KMax

	for remaining > 0 {
		// 1) Drain ready specialized diagonal gates on global qubits —
		// they cost no communication and no kernel invocation.
		progressed := true
		for progressed {
			progressed = false
			for si := 0; si < n; si++ {
				if assigned[si] || isLocal(si) || !ready(si, ptr) {
					continue
				}
				advance(si, ptr, assigned)
				remaining--
				out = append(out, stageOp{cluster: false, gates: []int{sel[si]}})
				progressed = true
			}
		}
		if remaining == 0 {
			break
		}
		// 2) Grow the best cluster among ready local gates.
		var seeds []int
		for si := 0; si < n; si++ {
			if !assigned[si] && isLocal(si) && ready(si, ptr) {
				seeds = append(seeds, si)
			}
		}
		if len(seeds) == 0 {
			// Cannot happen: the earliest unassigned gate is always ready,
			// and if it were global it would have drained above.
			panic("schedule: no ready gates during clustering")
		}
		if !b.opts.Clustering {
			// Ablation mode: each gate is its own cluster, in order.
			si := seeds[0]
			for _, s := range seeds {
				if s < si {
					si = s
				}
			}
			advance(si, ptr, assigned)
			remaining--
			out = append(out, stageOp{cluster: true, gates: []int{sel[si]}})
			continue
		}
		if b.opts.NoSeedSearch {
			// Ablation: earliest ready gate seeds, no alternatives tried.
			seed := seeds[0]
			for _, s := range seeds {
				if s < seed {
					seed = s
				}
			}
			seeds = seeds[:1]
			seeds[0] = seed
		}
		best := b.growCluster(seeds[0], sel, queues, ptr, assigned, isLocal, kmax)
		for _, seed := range seeds[1:] {
			cand := b.growCluster(seed, sel, queues, ptr, assigned, isLocal, kmax)
			if len(cand.members) > len(best.members) ||
				(len(cand.members) == len(best.members) &&
					(bits.OnesCount64(cand.qubits) < bits.OnesCount64(best.qubits) ||
						(bits.OnesCount64(cand.qubits) == bits.OnesCount64(best.qubits) && cand.members[0] < best.members[0]))) {
				best = cand
			}
		}
		gates := make([]int, len(best.members))
		for i, si := range best.members {
			gates[i] = sel[si]
			advance(si, ptr, assigned)
		}
		remaining -= len(best.members)
		out = append(out, stageOp{cluster: true, gates: gates})
	}
	return out
}

type grownCluster struct {
	members []int // stage-local indices, in program order of admission
	qubits  uint64
}

// growCluster simulates growing a cluster from seed: repeatedly admit ready
// local gates whose qubits are a subset of the cluster (free growth), and
// when none remain, admit the ready gate that grows the qubit set least
// while staying within kmax.
func (b *builder) growCluster(seed int, sel []int, queues map[int][]int, ptr map[int]int, assigned []bool, isLocal func(int) bool, kmax int) grownCluster {
	pt := make(map[int]int, len(ptr))
	for q, p := range ptr {
		pt[q] = p
	}
	asg := make([]bool, len(assigned))
	copy(asg, assigned)

	ready := func(si int) bool {
		for _, q := range b.c.Gates[sel[si]].Qubits {
			queue := queues[q]
			p := pt[q]
			if p >= len(queue) || queue[p] != si {
				return false
			}
		}
		return true
	}
	advance := func(si int) {
		asg[si] = true
		for _, q := range b.c.Gates[sel[si]].Qubits {
			pt[q]++
		}
	}

	g := grownCluster{}
	qm := b.qubitMask(&b.c.Gates[sel[seed]])
	if bits.OnesCount64(qm) > kmax {
		// A single gate larger than kmax still becomes its own cluster.
		g.members = []int{seed}
		g.qubits = qm
		return g
	}
	g.qubits = qm
	g.members = append(g.members, seed)
	advance(seed)

	for {
		// Free growth: subset gates first.
		progressed := true
		for progressed {
			progressed = false
			for si := range sel {
				if asg[si] || !isLocal(si) || !ready(si) {
					continue
				}
				m := b.qubitMask(&b.c.Gates[sel[si]])
				if m&^g.qubits == 0 {
					g.members = append(g.members, si)
					advance(si)
					progressed = true
				}
			}
		}
		// Minimal-growth extension.
		bestSi, bestGrow := -1, kmax+1
		for si := range sel {
			if asg[si] || !isLocal(si) || !ready(si) {
				continue
			}
			m := b.qubitMask(&b.c.Gates[sel[si]])
			grow := bits.OnesCount64(m &^ g.qubits)
			if grow == 0 {
				continue // handled above; defensive
			}
			if bits.OnesCount64(g.qubits)+grow > kmax {
				continue
			}
			if grow < bestGrow {
				bestGrow, bestSi = grow, si
			}
		}
		if bestSi < 0 {
			return g
		}
		g.qubits |= b.qubitMask(&b.c.Gates[sel[bestSi]])
		g.members = append(g.members, bestSi)
		advance(bestSi)
	}
}
