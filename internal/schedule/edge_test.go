package schedule

import (
	"math/rand"
	"strings"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/gate"
	"qusim/internal/statevec"
)

func TestEmptyCircuit(t *testing.T) {
	c := circuit.NewCircuit(6)
	plan, err := Build(c, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Ops) != 0 || plan.Stats.Swaps != 0 {
		t.Errorf("empty circuit produced %d ops, %d swaps", len(plan.Ops), plan.Stats.Swaps)
	}
	v := statevec.New(6)
	if err := plan.Run(v); err != nil {
		t.Fatal(err)
	}
	if v.Probability(0) != 1 {
		t.Error("empty plan changed the state")
	}
}

func TestSingleGateCircuit(t *testing.T) {
	c := circuit.NewCircuit(5)
	c.Append(circuit.NewH(4)) // on a qubit that starts global for l=3
	opts := DefaultOptions(3)
	opts.KMax = 2
	plan := assertPlanEquivalent(t, c, opts)
	if plan.Stats.Clusters != 1 {
		t.Errorf("single gate produced %d clusters", plan.Stats.Clusters)
	}
}

func TestAllDiagonalCircuitNeedsNoSwaps(t *testing.T) {
	// A circuit of only CZ and T gates is fully specialized: zero
	// communication regardless of layout.
	c := circuit.NewCircuit(8)
	for q := 0; q < 8; q++ {
		c.Append(circuit.NewT(q))
	}
	for q := 0; q < 7; q++ {
		c.Append(circuit.NewCZ(q, q+1))
	}
	opts := DefaultOptions(4)
	opts.SpecializeDiagonal1Q = true
	plan := assertPlanEquivalent(t, c, opts)
	if plan.Stats.Swaps != 0 {
		t.Errorf("all-diagonal circuit needed %d swaps", plan.Stats.Swaps)
	}
}

func TestKMax1DegeneratesToPerGate(t *testing.T) {
	c := supremacy(9, 8, 40)
	opts := DefaultOptions(6)
	opts.KMax = 1
	plan := assertPlanEquivalent(t, c, opts)
	// Every cluster must act on exactly 1 qubit... except 2-qubit gates,
	// which cannot shrink: they become their own clusters.
	for k := range plan.Stats.ClusterSizes {
		if k > 2 {
			t.Errorf("kmax=1 produced a %d-qubit cluster", k)
		}
	}
}

func TestLocalQubitsOne(t *testing.T) {
	// l=1: only single-qubit clusters are possible; 2-qubit dense gates
	// cannot execute. Supremacy circuits have CZ (diagonal, specialized),
	// so scheduling still succeeds.
	c := circuit.NewCircuit(4)
	c.Append(circuit.NewH(0), circuit.NewCZ(0, 1), circuit.NewH(1))
	opts := DefaultOptions(1)
	opts.KMax = 1
	assertPlanEquivalent(t, c, opts)
}

func TestLowestOrderFallbackProgress(t *testing.T) {
	// The lowest-order policy can evict needed qubits; the builder must
	// still terminate via the greedy fallback on every supremacy instance
	// we throw at it.
	for seed := int64(0); seed < 5; seed++ {
		c := supremacy(12, 20, seed)
		opts := DefaultOptions(6)
		opts.SwapPolicy = SwapLowestOrder
		if _, err := Build(c, opts); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSummaryOutput(t *testing.T) {
	c := supremacy(9, 10, 41)
	plan, err := Build(c, DefaultOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Summary()
	for _, want := range []string{"plan:", "stage 0:", "cluster", "SWAP"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestDiagonalOpHelper(t *testing.T) {
	// DiagonalOp with reversed positions must permute the diagonal.
	g := circuit.NewCPhase(3, 1, 0.7) // qubits (3,1)
	op := DiagonalOp(&g, func(q int) int { return q })
	if op.Positions[0] != 1 || op.Positions[1] != 3 {
		t.Fatalf("positions %v, want [1 3]", op.Positions)
	}
	// CPhase diag is (1,1,1,e^{iθ}) regardless of qubit order (symmetric),
	// so the permuted diagonal must equal the original.
	want := gate.CPhase(0.7).Diagonal()
	for i := range want {
		if op.Diag[i] != want[i] {
			t.Errorf("diag[%d] = %v, want %v", i, op.Diag[i], want[i])
		}
	}
	// An asymmetric diagonal: Rz ⊗ I style via a custom 2-qubit diag.
	m := gate.New(2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 2)
	m.Set(2, 2, 3)
	m.Set(3, 3, 4)
	g2 := circuit.Gate{Kind: circuit.KindDiag, Qubits: []int{5, 2}, Custom: &m}
	op2 := DiagonalOp(&g2, func(q int) int { return q })
	// Gate-local bit 0 ↔ qubit 5 (position 5), bit 1 ↔ qubit 2 (position 2).
	// Sorted positions [2,5]: sorted-bit 0 ↔ qubit 2, sorted-bit 1 ↔ qubit 5.
	// Original index x = (b1 b0) = (q2 q5); new index y = (q5 q2).
	// d_new[y= q5<<1 | q2 ] = d_old[ q2<<1 | q5 ]: d_new[1] = d_old[2] = 3.
	if op2.Diag[1] != 3 || op2.Diag[2] != 2 {
		t.Errorf("permuted diag = %v, want [1 3 2 4]", op2.Diag)
	}
}

func TestWideDiagonalGateBecomesDiagonalOp(t *testing.T) {
	// A 6-qubit diagonal gate exceeds kmax but must not force a dense
	// 2^6 matrix fusion — it becomes a diagonal op directly.
	rng := newRand(42)
	d := gate.RandomDiagonal(6, rng)
	c := circuit.NewCircuit(8)
	c.Append(circuit.NewDiag(d, 0, 1, 2, 3, 4, 5))
	opts := DefaultOptions(8)
	opts.KMax = 3
	plan, err := Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Ops) != 1 || plan.Ops[0].Kind != OpDiagonal {
		t.Fatalf("expected a single diagonal op, got %+v", plan.Ops)
	}
	assertPlanEquivalent(t, c, opts)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestSeedSearchReducesClusters(t *testing.T) {
	// The "small local search" over cluster seeds must not produce more
	// clusters than the no-search baseline, and the plan stays equivalent.
	c := supremacy(20, 25, 50)
	with := DefaultOptions(20)
	without := DefaultOptions(20)
	without.NoSeedSearch = true
	pw, err := Build(c, with)
	if err != nil {
		t.Fatal(err)
	}
	pwo, err := Build(c, without)
	if err != nil {
		t.Fatal(err)
	}
	if pw.Stats.Clusters > pwo.Stats.Clusters {
		t.Errorf("seed search increased clusters: %d vs %d", pw.Stats.Clusters, pwo.Stats.Clusters)
	}
	t.Logf("clusters: with search %d, without %d", pw.Stats.Clusters, pwo.Stats.Clusters)
	// Correctness of the no-search path on a small instance.
	small := supremacy(10, 12, 51)
	opts := DefaultOptions(7)
	opts.NoSeedSearch = true
	assertPlanEquivalent(t, small, opts)
}
