package schedule

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a hex SHA-256 digest over everything that determines a
// plan's execution semantics: dimensions, the full op stream (kinds, matrix
// and diagonal entries bit-for-bit, positions, permutations, stage indices)
// and the qubit→bit-location maps. Checkpoint manifests record it so a
// resumed run can prove the snapshot on disk belongs to the plan it is about
// to continue — two circuits (or two schedules of the same circuit) never
// share a fingerprint, so a stale checkpoint directory can never be replayed
// into the wrong run.
//
// The digest walks the struct directly rather than hashing a gob encoding:
// gob serializes Stats.ClusterSizes (a map) in nondeterministic order, and
// the fingerprint must be stable across processes.
func (p *Plan) Fingerprint() string {
	h := sha256.New()
	var scratch [8]byte
	wi := func(x int) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(int64(x)))
		h.Write(scratch[:])
	}
	wf := func(x float64) {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(x))
		h.Write(scratch[:])
	}
	wc := func(x complex128) { wf(real(x)); wf(imag(x)) }
	wis := func(xs []int) {
		wi(len(xs))
		for _, x := range xs {
			wi(x)
		}
	}

	h.Write([]byte("qusim-plan-fp-v1"))
	wi(p.N)
	wi(p.L)
	wis(p.InitialPos)
	wis(p.FinalPos)
	wi(len(p.Ops))
	for i := range p.Ops {
		op := &p.Ops[i]
		wi(int(op.Kind))
		wi(op.Stage)
		wis(op.Positions)
		wis(op.Perm)
		wis(op.LocalPos)
		wis(op.GlobalPos)
		wi(len(op.Matrix.Data))
		for _, a := range op.Matrix.Data {
			wc(a)
		}
		wi(len(op.Diag))
		for _, a := range op.Diag {
			wc(a)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// StructureFingerprint digests only what determines a plan's *access
// structure* — dimensions, op kinds, positions, permutations, stage
// indices and matrix/diagonal shapes — while ignoring the matrix and
// diagonal *values*. Two plans of the same parameterized circuit at
// different gate angles (a QAOA/VQE sweep) share a structure fingerprint
// even though their full Fingerprints differ, so analysis keyed on it
// (the per-stage chunk access map, see AccessMap) is computed once per
// circuit shape, not once per parameter point.
func (p *Plan) StructureFingerprint() string {
	h := sha256.New()
	var scratch [8]byte
	wi := func(x int) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(int64(x)))
		h.Write(scratch[:])
	}
	wis := func(xs []int) {
		wi(len(xs))
		for _, x := range xs {
			wi(x)
		}
	}

	h.Write([]byte("qusim-plan-structfp-v1"))
	wi(p.N)
	wi(p.L)
	wis(p.InitialPos)
	wis(p.FinalPos)
	wi(len(p.Ops))
	for i := range p.Ops {
		op := &p.Ops[i]
		wi(int(op.Kind))
		wi(op.Stage)
		wis(op.Positions)
		wis(op.Perm)
		wis(op.LocalPos)
		wis(op.GlobalPos)
		// Shapes only: a value change must not change the structure, but a
		// dense gate growing a qubit (different matrix size) must.
		wi(len(op.Matrix.Data))
		wi(len(op.Diag))
	}
	return hex.EncodeToString(h.Sum(nil))
}
