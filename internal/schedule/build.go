package schedule

import (
	"fmt"
	"math/bits"
	"sort"

	"qusim/internal/circuit"
	"qusim/internal/gate"
)

// Build schedules a circuit into a Plan per the optimizations of Sec. 3.6:
// stages separated by global-to-local swaps, fused k ≤ KMax clusters within
// each stage, specialized diagonal gates on global qubits, boundary
// adjustment, and qubit mapping.
func Build(c *circuit.Circuit, opts Options) (*Plan, error) {
	if err := opts.validate(c.N); err != nil {
		return nil, err
	}
	if c.N > 62 {
		return nil, fmt.Errorf("schedule: %d qubits exceeds the 62-qubit bitset limit", c.N)
	}
	b := newBuilder(c, opts, nil)
	plan, err := b.run()
	if err != nil {
		return nil, err
	}
	if opts.Mapping == MapHeuristic {
		pos := heuristicMapping(c.N, b.l, b.initialResident, b.clusterQubitSets)
		b2 := newBuilder(c, opts, pos)
		plan, err = b2.run()
		if err != nil {
			return nil, err
		}
	}
	return plan, nil
}

type builder struct {
	c    *circuit.Circuit
	opts Options
	n, l int

	pos []int // qubit -> current bit location
	loc []int // bit location -> qubit

	ops   []Op
	stats Stats
	stage int

	initialPos       []int // fixed initial layout, or nil to choose greedily
	initialResident  uint64
	clusterQubitSets [][]int // qubit-index sets of all emitted clusters
	gatesInClusters  int
}

func newBuilder(c *circuit.Circuit, opts Options, initialPos []int) *builder {
	l := opts.LocalQubits
	if l > c.N {
		l = c.N
	}
	return &builder{c: c, opts: opts, n: c.N, l: l, initialPos: initialPos}
}

func (b *builder) qubitMask(g *circuit.Gate) uint64 {
	var m uint64
	for _, q := range g.Qubits {
		m |= 1 << uint(q)
	}
	return m
}

// specializable reports whether g may execute on global qubits without
// communication under the configured specialization (Sec. 3.5).
func (b *builder) specializable(g *circuit.Gate) bool {
	if !g.IsDiagonal() {
		return false
	}
	if g.K() == 1 {
		return b.opts.SpecializeDiagonal1Q
	}
	return b.opts.SpecializeDiagonal2Q
}

func (b *builder) run() (*Plan, error) {
	remaining := make([]int, len(b.c.Gates))
	for i := range remaining {
		remaining[i] = i
	}

	// Initial residency and layout.
	var resident uint64
	if b.initialPos != nil {
		b.pos = append([]int(nil), b.initialPos...)
		b.loc = make([]int, b.n)
		for q, p := range b.pos {
			b.loc[p] = q
		}
		for q := 0; q < b.n; q++ {
			if b.pos[q] < b.l {
				resident |= 1 << uint(q)
			}
		}
	} else {
		resident = b.chooseResidency(remaining, 0, true)
		b.layoutInitial(resident)
	}
	b.initialResident = resident
	initial := append([]int(nil), b.pos...)

	b.stats = Stats{
		Qubits:       b.n,
		LocalQubits:  b.l,
		Gates:        len(b.c.Gates),
		ClusterSizes: map[int]int{},
	}
	b.countBaselines()

	guard := 0
	for len(remaining) > 0 {
		guard++
		if guard > 4*len(b.c.Gates)+8 {
			return nil, fmt.Errorf("schedule: stage partition did not converge (policy %v)", b.opts.SwapPolicy)
		}
		sel, rest := b.takeStage(remaining, resident)
		if len(sel) == 0 {
			// The lowest-order policy can stall by evicting a needed
			// qubit; fall back to the greedy choice for this boundary.
			next := b.chooseResidencyGreedy(remaining, resident)
			b.emitSwap(resident, next)
			resident = next
			continue
		}
		stageOps := b.clusterStage(sel, resident)

		var next uint64
		if len(rest) > 0 {
			next = b.chooseResidency(rest, resident, false)
			if b.opts.AdjustBoundaries {
				stageOps, rest = b.adjustBoundary(stageOps, sel, rest, resident, next)
			}
		}
		b.emitStageOps(stageOps, sel)
		b.stats.Stages++
		if len(rest) > 0 {
			b.emitSwap(resident, next)
			resident = next
		}
		b.stage++
		remaining = rest
	}

	if b.stats.Clusters > 0 {
		b.stats.GatesPerCluster = float64(b.gatesInClusters) / float64(b.stats.Clusters)
	}
	b.ops = fuseSwapPerms(b.ops, &b.stats)
	plan := &Plan{
		N:          b.n,
		L:          b.l,
		Ops:        b.ops,
		InitialPos: initial,
		FinalPos:   append([]int(nil), b.pos...),
		Stats:      b.stats,
	}
	if got := b.coveredGates(); got != len(b.c.Gates) {
		return nil, fmt.Errorf("schedule: plan covers %d gates, circuit has %d", got, len(b.c.Gates))
	}
	return plan, nil
}

func (b *builder) coveredGates() int {
	total := 0
	for _, op := range b.ops {
		if op.Kind == OpCluster || op.Kind == OpDiagonal {
			total += op.GateCount
		}
	}
	return total
}

// layoutInitial assigns resident qubits to local locations (in qubit order)
// and the rest to global locations.
func (b *builder) layoutInitial(resident uint64) {
	b.pos = make([]int, b.n)
	b.loc = make([]int, b.n)
	nextLocal, nextGlobal := 0, b.l
	for q := 0; q < b.n; q++ {
		if resident&(1<<uint(q)) != 0 {
			b.pos[q] = nextLocal
			nextLocal++
		} else {
			b.pos[q] = nextGlobal
			nextGlobal++
		}
	}
	for q, p := range b.pos {
		b.loc[p] = q
	}
}

// takeStage scans gates in program order and selects every gate executable
// without communication under the residency set, reordering only across
// trivially commuting gates (disjoint qubits): a gate whose qubits hit a
// blocked qubit blocks its own qubits (Sec. 3.6.1 step 1).
func (b *builder) takeStage(gates []int, resident uint64) (sel, rest []int) {
	var blocked uint64
	for _, gi := range gates {
		g := &b.c.Gates[gi]
		qm := b.qubitMask(g)
		if qm&blocked != 0 {
			blocked |= qm
			rest = append(rest, gi)
			continue
		}
		if qm&^resident == 0 || b.specializable(g) {
			sel = append(sel, gi)
		} else {
			blocked |= qm
			rest = append(rest, gi)
		}
	}
	return sel, rest
}

func (b *builder) chooseResidency(rest []int, prev uint64, first bool) uint64 {
	if b.opts.SwapPolicy == SwapLowestOrder && !first {
		return b.chooseResidencyLowestOrder(prev)
	}
	return b.chooseResidencyGreedy(rest, prev)
}

// chooseResidencyGreedy builds the next resident set by admitting the
// qubits of the longest schedulable prefix of the remaining circuit — the
// paper's "cheap search algorithm to find better local qubits to swap
// with".
func (b *builder) chooseResidencyGreedy(rest []int, prev uint64) uint64 {
	var r, blocked uint64
	count := 0
	for _, gi := range rest {
		g := &b.c.Gates[gi]
		qm := b.qubitMask(g)
		if qm&blocked != 0 {
			blocked |= qm
			continue
		}
		if b.specializable(g) {
			continue
		}
		need := qm &^ r
		nb := bits.OnesCount64(need)
		if count+nb <= b.l {
			r |= need
			count += nb
		} else {
			blocked |= qm
		}
	}
	if count < b.l {
		r = b.fillResidency(r, count, rest, prev)
	}
	return r
}

// fillResidency tops the set up to l qubits, preferring still-resident
// qubits with the earliest next use (cheap Belady-style retention).
func (b *builder) fillResidency(r uint64, count int, rest []int, prev uint64) uint64 {
	firstUse := make([]int, b.n)
	for q := range firstUse {
		firstUse[q] = len(rest) + 1
	}
	for i, gi := range rest {
		for _, q := range b.c.Gates[gi].Qubits {
			if firstUse[q] > i {
				firstUse[q] = i
			}
		}
	}
	type cand struct{ q, use, prevBonus int }
	var cands []cand
	for q := 0; q < b.n; q++ {
		if r&(1<<uint(q)) != 0 {
			continue
		}
		bonus := 1
		if prev&(1<<uint(q)) != 0 {
			bonus = 0
		}
		cands = append(cands, cand{q, firstUse[q], bonus})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].prevBonus != cands[j].prevBonus {
			return cands[i].prevBonus < cands[j].prevBonus
		}
		if cands[i].use != cands[j].use {
			return cands[i].use < cands[j].use
		}
		return cands[i].q < cands[j].q
	})
	for _, cd := range cands {
		if count == b.l {
			break
		}
		r |= 1 << uint(cd.q)
		count++
	}
	return r
}

// chooseResidencyLowestOrder is the paper's upper-bound baseline: swap all
// global qubits in, evicting the lowest-order local qubits.
func (b *builder) chooseResidencyLowestOrder(prev uint64) uint64 {
	g := b.n - b.l
	if g <= 0 {
		return prev
	}
	// Incoming: every currently-global qubit (at most l of them).
	var incoming []int
	for q := 0; q < b.n; q++ {
		if prev&(1<<uint(q)) == 0 {
			incoming = append(incoming, q)
		}
	}
	if len(incoming) > b.l {
		incoming = incoming[:b.l]
	}
	// Evict the locals with the lowest bit locations.
	var locals []int
	for q := 0; q < b.n; q++ {
		if prev&(1<<uint(q)) != 0 {
			locals = append(locals, q)
		}
	}
	sort.Slice(locals, func(i, j int) bool { return b.pos[locals[i]] < b.pos[locals[j]] })
	next := prev
	for i := 0; i < len(incoming); i++ {
		next &^= 1 << uint(locals[i])
		next |= 1 << uint(incoming[i])
	}
	return next
}

// emitSwap emits the local permutation and the global-to-local swap that
// turn residency cur into next, updating the layout.
func (b *builder) emitSwap(cur, next uint64) {
	outgoing := cur &^ next
	incoming := next &^ cur
	q := bits.OnesCount64(incoming)
	if q != bits.OnesCount64(outgoing) {
		panic("schedule: unbalanced residency change")
	}
	if q == 0 {
		return
	}
	// 1) Bring outgoing qubits to the q highest local locations.
	outs := setBits(outgoing)
	sort.Slice(outs, func(i, j int) bool { return b.pos[outs[i]] < b.pos[outs[j]] })
	perm := make([]int, b.l)
	for i := range perm {
		perm[i] = -1
	}
	for j, qq := range outs {
		perm[b.pos[qq]] = b.l - q + j
	}
	nextFree := 0
	for p := 0; p < b.l; p++ {
		if perm[p] != -1 {
			continue
		}
		perm[p] = nextFree
		nextFree++
	}
	identity := true
	for p, np := range perm {
		if p != np {
			identity = false
			break
		}
	}
	if !identity {
		b.ops = append(b.ops, Op{Kind: OpLocalPerm, Perm: perm, Stage: b.stage})
		b.stats.LocalPerms++
		// Update layout for the local relabeling.
		newLoc := make([]int, b.n)
		copy(newLoc, b.loc)
		for p := 0; p < b.l; p++ {
			newLoc[perm[p]] = b.loc[p]
		}
		copy(b.loc, newLoc)
		for p, qq := range b.loc {
			b.pos[qq] = p
		}
	}
	// 2) Exchange local locations [l−q, l) with the incoming qubits'
	// global locations, pairwise.
	ins := setBits(incoming)
	sort.Slice(ins, func(i, j int) bool { return b.pos[ins[i]] < b.pos[ins[j]] })
	localPos := make([]int, q)
	globalPos := make([]int, q)
	for j := 0; j < q; j++ {
		localPos[j] = b.l - q + j
		globalPos[j] = b.pos[ins[j]]
	}
	b.ops = append(b.ops, Op{Kind: OpSwap, LocalPos: localPos, GlobalPos: globalPos, Stage: b.stage})
	b.stats.Swaps++
	for j := 0; j < q; j++ {
		lq := b.loc[localPos[j]]
		gq := b.loc[globalPos[j]]
		b.loc[localPos[j]], b.loc[globalPos[j]] = gq, lq
		b.pos[gq], b.pos[lq] = localPos[j], globalPos[j]
	}
}

// fuseSwapPerms is the peephole of the single-pass permutation pipeline: an
// OpLocalPerm immediately followed by the OpSwap it was emitted for folds
// into the swap op (Op.Perm), so engines execute the relabeling inside the
// all-to-all pack/unpack loops instead of as a separate full-state sweep.
// Stats.LocalPerms keeps counting the permutations wherever they execute;
// Stats.FusedPerms records how many were folded.
func fuseSwapPerms(ops []Op, stats *Stats) []Op {
	out := make([]Op, 0, len(ops))
	for i := 0; i < len(ops); i++ {
		if ops[i].Kind == OpLocalPerm && i+1 < len(ops) &&
			ops[i+1].Kind == OpSwap && ops[i+1].Perm == nil {
			sw := ops[i+1]
			sw.Perm = ops[i].Perm
			out = append(out, sw)
			stats.FusedPerms++
			i++
			continue
		}
		out = append(out, ops[i])
	}
	return out
}

func setBits(m uint64) []int {
	var out []int
	for m != 0 {
		q := bits.TrailingZeros64(m)
		out = append(out, q)
		m &^= 1 << uint(q)
	}
	return out
}

// countBaselines records how many communication steps the per-gate scheme
// of [5]/[19] would need on this circuit with the identity mapping: every
// gate touching a qubit at location ≥ l is one communication step, unless
// specialization elides it (Fig. 5, lower panels).
func (b *builder) countBaselines() {
	for i := range b.c.Gates {
		g := &b.c.Gates[i]
		global := false
		for _, q := range g.Qubits {
			if q >= b.l {
				global = true
				break
			}
		}
		if !global {
			continue
		}
		b.stats.BaselineGlobalGatesDense++
		if !b.specializable(g) {
			b.stats.BaselineGlobalGates++
		}
	}
}

// adjustBoundary implements step 3 of Sec. 3.6.1: if the trailing clusters
// of a stage act on qubits that stay resident after the swap, defer their
// gates into the next stage (performing the swap "earlier"), shrinking the
// total cluster count without adding swaps.
func (b *builder) adjustBoundary(stageOps []stageOp, sel, rest []int, cur, next uint64) ([]stageOp, []int) {
	keep := cur & next
	// Last gate index per qubit within sel.
	lastOn := map[int]int{}
	for _, gi := range sel {
		for _, q := range b.c.Gates[gi].Qubits {
			lastOn[q] = gi
		}
	}
	deferred := []int{}
	for pops := 0; pops < 2 && len(stageOps) > 0; pops++ {
		op := stageOps[len(stageOps)-1]
		if !op.cluster || len(op.gates) == 0 {
			break
		}
		ok := true
		memberSet := map[int]bool{}
		for _, gi := range op.gates {
			memberSet[gi] = true
		}
		for _, gi := range op.gates {
			g := &b.c.Gates[gi]
			qm := b.qubitMask(g)
			if qm&^keep != 0 {
				ok = false
				break
			}
			for _, q := range g.Qubits {
				if last := lastOn[q]; last != gi && !memberSet[last] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			break
		}
		stageOps = stageOps[:len(stageOps)-1]
		deferred = append(op.gates, deferred...)
	}
	if len(deferred) > 0 {
		rest = append(deferred, rest...)
	}
	return stageOps, rest
}

// emitStageOps finalizes a stage's operations: fuses cluster matrices and
// materializes diagonal entries, using the current layout.
func (b *builder) emitStageOps(stageOps []stageOp, sel []int) {
	for _, sop := range stageOps {
		if sop.cluster {
			b.emitCluster(sop.gates)
		} else {
			b.emitDiag(sop.gates[0], false)
		}
	}
	_ = sel
}

func (b *builder) emitCluster(gates []int) {
	if len(gates) == 1 {
		g := &b.c.Gates[gates[0]]
		if g.IsDiagonal() {
			// Avoid building a dense 2^k matrix for large diagonal gates
			// (e.g. the n-qubit oracles of the Grover example). It still
			// counts as a cluster: it is one kernel invocation.
			b.emitDiag(gates[0], true)
			return
		}
	}
	// Collect the qubit set.
	var qm uint64
	for _, gi := range gates {
		qm |= b.qubitMask(&b.c.Gates[gi])
	}
	qubits := setBits(qm)
	sort.Slice(qubits, func(i, j int) bool { return b.pos[qubits[i]] < b.pos[qubits[j]] })
	positions := make([]int, len(qubits))
	slot := map[int]int{}
	for i, q := range qubits {
		positions[i] = b.pos[q]
		slot[q] = i
	}
	k := len(qubits)
	ops := make([]gate.Op, len(gates))
	for i, gi := range gates {
		g := &b.c.Gates[gi]
		pos := make([]int, len(g.Qubits))
		for j, q := range g.Qubits {
			pos[j] = slot[q]
		}
		ops[i] = gate.Op{U: g.Matrix(), Pos: pos}
	}
	fused := gate.Fuse(ops, k)
	b.clusterQubitSets = append(b.clusterQubitSets, qubits)
	b.stats.Clusters++
	b.stats.ClusterSizes[k]++
	b.gatesInClusters += len(gates)
	if fused.IsDiagonal(1e-14) {
		// Execution optimization: a cluster of purely diagonal gates runs
		// through the diagonal kernel (it still counts as one cluster).
		b.ops = append(b.ops, Op{
			Kind: OpDiagonal, Diag: fused.Diagonal(), Positions: positions,
			GateCount: len(gates), Stage: b.stage,
		})
		return
	}
	b.ops = append(b.ops, Op{
		Kind: OpCluster, Matrix: fused, Positions: positions,
		GateCount: len(gates), Stage: b.stage,
	})
}

// DiagonalOp builds the OpDiagonal for a diagonal circuit gate, given the
// bit location of each qubit: positions are sorted ascending and the
// diagonal entries are permuted accordingly. Exported for the per-gate
// baseline engine, which executes diagonal gates through the same
// specialization (Sec. 3.5).
func DiagonalOp(g *circuit.Gate, pos func(q int) int) Op {
	d := g.Matrix().Diagonal()
	k := len(g.Qubits)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool { return pos(g.Qubits[idx[a]]) < pos(g.Qubits[idx[c]]) })
	positions := make([]int, k)
	perm := make([]int, k) // gate-local j -> sorted slot
	for rank, j := range idx {
		positions[rank] = pos(g.Qubits[j])
		perm[j] = rank
	}
	dd := make([]complex128, len(d))
	for x := range d {
		y := 0
		for j := 0; j < k; j++ {
			if x&(1<<j) != 0 {
				y |= 1 << perm[j]
			}
		}
		dd[y] = d[x]
	}
	return Op{Kind: OpDiagonal, Diag: dd, Positions: positions, GateCount: 1}
}

// emitDiag emits one diagonal gate directly from its diagonal entries. It
// serves both specialized global diagonal gates (Sec. 3.5,
// countAsCluster=false) and singleton local diagonal clusters.
func (b *builder) emitDiag(gi int, countAsCluster bool) {
	g := &b.c.Gates[gi]
	op := DiagonalOp(g, func(q int) int { return b.pos[q] })
	op.Stage = b.stage
	b.ops = append(b.ops, op)
	if countAsCluster {
		b.stats.Clusters++
		b.stats.ClusterSizes[len(g.Qubits)]++
		b.gatesInClusters++
		b.clusterQubitSets = append(b.clusterQubitSets, append([]int(nil), g.Qubits...))
	} else {
		b.stats.DiagonalOps++
	}
}
