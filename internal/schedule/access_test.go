package schedule

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"qusim/internal/circuit"
)

// checkAccessInvariants re-derives, by an independent walk over plan.Ops,
// what a paged executor streaming the plan would do, and asserts the access
// map says exactly that: the op partition, the streamed subset, the swap
// geometry, and the per-stage qubit set.
func checkAccessInvariants(t *testing.T, plan *Plan) *ChunkAccess {
	t.Helper()
	access, err := plan.AccessMap()
	if err != nil {
		t.Fatal(err)
	}
	if access.N != plan.N || access.L != plan.L {
		t.Fatalf("access map shape (n=%d l=%d) != plan (n=%d l=%d)", access.N, access.L, plan.N, plan.L)
	}
	if got, want := len(access.Stages), plan.Stages(); got != want {
		t.Fatalf("access map has %d stages, plan has %d", got, want)
	}

	next := 0 // next expected op index: stages partition Ops in order
	for s := range access.Stages {
		sa := &access.Stages[s]
		if sa.Stage != s {
			t.Fatalf("stage %d recorded as %d", s, sa.Stage)
		}

		// Independent re-derivation of this stage's behavior.
		var wantOps, wantStream []int
		wantSwap := -1
		var wantBits []int
		var wantMask uint64
		streams := false
		for i := range plan.Ops {
			op := &plan.Ops[i]
			if op.Stage != s {
				continue
			}
			wantOps = append(wantOps, i)
			switch op.Kind {
			case OpCluster, OpDiagonal:
				wantStream = append(wantStream, i)
				streams = true
				for _, q := range op.Positions {
					if q < plan.L {
						wantMask |= 1 << q
					}
				}
			case OpLocalPerm:
				wantStream = append(wantStream, i)
				streams = true
				for q, dst := range op.Perm {
					if q != dst {
						wantMask |= 1 << q
					}
				}
			case OpSwap:
				wantSwap = i
				for _, g := range op.GlobalPos {
					wantBits = append(wantBits, g-plan.L)
				}
				for _, q := range op.LocalPos {
					wantMask |= 1 << q
				}
				if op.Perm != nil {
					streams = true
				}
			}
		}

		if !reflect.DeepEqual(sa.Ops, wantOps) {
			t.Fatalf("stage %d: Ops = %v, executor walks %v", s, sa.Ops, wantOps)
		}
		for _, i := range wantOps {
			if i != next {
				t.Fatalf("stage %d: op %d out of plan order (expected %d)", s, i, next)
			}
			next++
		}
		if !reflect.DeepEqual(sa.StreamOps, wantStream) {
			t.Fatalf("stage %d: StreamOps = %v, want %v", s, sa.StreamOps, wantStream)
		}
		if sa.Swap != wantSwap {
			t.Fatalf("stage %d: Swap = %d, want %d", s, sa.Swap, wantSwap)
		}
		if !reflect.DeepEqual(sa.SwapChunkBits, wantBits) {
			t.Fatalf("stage %d: SwapChunkBits = %v, want %v (GlobalPos − L)", s, sa.SwapChunkBits, wantBits)
		}
		if sa.LocalQubitMask != wantMask {
			t.Fatalf("stage %d: LocalQubitMask = %b, want %b", s, sa.LocalQubitMask, wantMask)
		}
		if sa.Reads != streams || sa.Writes != streams {
			t.Fatalf("stage %d: Reads/Writes = %v/%v, streamed pass exists: %v", s, sa.Reads, sa.Writes, streams)
		}
		if (wantSwap >= 0) != sa.Exchanges() {
			t.Fatalf("stage %d: Exchanges() = %v, want %v", s, sa.Exchanges(), wantSwap >= 0)
		}
		if s < len(access.Stages)-1 && !sa.Exchanges() {
			t.Fatalf("non-final stage %d does not exchange", s)
		}

		// Chunk-set semantics: every non-empty stage touches every chunk,
		// and swap partner groups are exactly the chunks reachable by
		// flipping subsets of SwapChunkBits.
		chunks := access.Chunks()
		for c := 0; c < chunks; c++ {
			if got, want := sa.Touches(c), len(wantOps) > 0; got != want {
				t.Fatalf("stage %d: Touches(%d) = %v, want %v", s, c, got, want)
			}
		}
		if sa.Exchanges() && chunks <= 1<<10 {
			q := len(sa.SwapChunkBits)
			groupMask := 0
			for _, b := range sa.SwapChunkBits {
				if b < 0 || b >= plan.N-plan.L {
					t.Fatalf("stage %d: swap chunk bit %d out of range", s, b)
				}
				groupMask |= 1 << b
			}
			for c := 0; c < chunks; c++ {
				got := sa.Partners(c, nil)
				if len(got) != 1<<q-1 {
					t.Fatalf("stage %d: chunk %d has %d partners, want %d", s, c, len(got), 1<<q-1)
				}
				var want []int
				for d := 0; d < chunks; d++ {
					if d != c && d&^groupMask == c&^groupMask {
						want = append(want, d)
					}
				}
				sort.Ints(got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("stage %d: Partners(%d) = %v, want %v", s, c, got, want)
				}
				for _, d := range got {
					back := sa.Partners(d, nil)
					found := false
					for _, e := range back {
						if e == c {
							found = true
						}
					}
					if !found {
						t.Fatalf("stage %d: exchange not symmetric: %d ∈ Partners(%d) but not vice versa", s, d, c)
					}
				}
			}
		}
	}
	if next != len(plan.Ops) {
		t.Fatalf("stages cover %d of %d ops", next, len(plan.Ops))
	}
	return access
}

func TestAccessMapMatchesExecutor(t *testing.T) {
	for _, tc := range []struct{ n, l, depth int }{
		{10, 6, 16}, {12, 8, 20}, {9, 4, 12}, {8, 6, 24},
	} {
		plan, err := Build(supremacy(tc.n, tc.depth, int64(tc.n+tc.l)), DefaultOptions(tc.l))
		if err != nil {
			t.Fatal(err)
		}
		checkAccessInvariants(t, plan)
	}
}

func TestAccessMapSharedForEqualFingerprints(t *testing.T) {
	FlushAccessCache()
	t.Cleanup(FlushAccessCache)
	build := func() *Plan {
		plan, err := Build(supremacy(10, 14, 11), DefaultOptions(6))
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	p1, p2 := build(), build()
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatal("identical builds produced different fingerprints")
	}
	a1, err := p1.AccessMap()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p2.AccessMap()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("equal-fingerprint plans did not share one cached access map")
	}
	hits, misses := AccessCacheStats()
	if misses != 1 || hits < 1 {
		t.Errorf("cache stats hits=%d misses=%d, want one analysis and at least one hit", hits, misses)
	}
}

// TestAccessMapCacheAcrossParameterSweep is the QAOA/VQE re-run scenario:
// rebuilding the plan with perturbed gate angles changes the value
// fingerprint but not the structure fingerprint, so the second build reuses
// the first build's analysis.
func TestAccessMapCacheAcrossParameterSweep(t *testing.T) {
	FlushAccessCache()
	t.Cleanup(FlushAccessCache)
	build := func(theta float64) *Plan {
		c := parameterizedCircuit(10, theta)
		plan, err := Build(c, DefaultOptions(6))
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	p1, p2 := build(0.3), build(0.3+1e-3)
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatal("angle perturbation did not change the value fingerprint")
	}
	if p1.StructureFingerprint() != p2.StructureFingerprint() {
		t.Fatal("angle perturbation changed the structure fingerprint")
	}
	a1, err := p1.AccessMap()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p2.AccessMap()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("perturbed-angle rebuild re-analyzed instead of hitting the plan cache")
	}
	if hits, misses := AccessCacheStats(); misses != 1 || hits != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want exactly 1/1", hits, misses)
	}
	checkAccessInvariants(t, p1)
}

// TestAccessCacheSnapshotDelta covers the snapshot/delta reading the qbench
// sweep harness uses: counters observed as a difference between two
// snapshots, without flushing the shared cache.
func TestAccessCacheSnapshotDelta(t *testing.T) {
	FlushAccessCache()
	t.Cleanup(FlushAccessCache)
	before := SnapshotAccessCache()
	build := func(theta float64) *Plan {
		plan, err := Build(parameterizedCircuit(10, theta), DefaultOptions(6))
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	for i := 0; i < 4; i++ {
		if _, err := build(0.1 * float64(i+1)).AccessMap(); err != nil {
			t.Fatal(err)
		}
	}
	d := before.Delta()
	if d.Misses != 1 || d.Hits != 3 {
		t.Errorf("delta hits=%d misses=%d, want 3/1", d.Hits, d.Misses)
	}
	// A fresh snapshot sees no further movement.
	if d2 := SnapshotAccessCache().Delta(); d2.Hits != 0 || d2.Misses != 0 {
		t.Errorf("idle delta hits=%d misses=%d, want 0/0", d2.Hits, d2.Misses)
	}
}

// parameterizedCircuit is a QAOA-shaped layered circuit: mixing rotations
// and entangling phase gates whose angles are all derived from theta.
func parameterizedCircuit(n int, theta float64) *circuit.Circuit {
	c := circuit.NewCircuit(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.NewH(q))
	}
	for layer := 0; layer < 3; layer++ {
		for q := 0; q+1 < n; q += 2 {
			c.Append(circuit.NewCPhase(q, q+1, theta*float64(layer+1)))
		}
		for q := 1; q+1 < n; q += 2 {
			c.Append(circuit.NewCPhase(q, q+1, theta/float64(layer+1)))
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.NewRz(q, math.Pi*theta+float64(q)))
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.NewXHalf(q))
		}
	}
	return c
}

// FuzzChunkAccess drives random circuits through Build and asserts the
// access-map invariants plus the cache contract: a second AccessMap call on
// an equal-fingerprint rebuild must return the shared pointer.
func FuzzChunkAccess(f *testing.F) {
	f.Add(int64(1), 6, 30, 3)
	f.Add(int64(2), 8, 48, 5)
	f.Add(int64(3), 10, 60, 7)
	f.Add(int64(4), 4, 24, 2)
	f.Fuzz(func(t *testing.T, seed int64, n, gates, l int) {
		if n < 2 {
			n = 2
		}
		if n > 10 {
			n = 2 + int(uint(n)%9)
		}
		if gates < 1 {
			gates = 1
		}
		if gates > 120 {
			gates = 1 + int(uint(gates)%120)
		}
		if l < 2 || l > n {
			l = 2 + int(uint(l)%uint(n-1))
		}
		c := circuit.RandomCircuit(n, gates, seed)
		opts := DefaultOptions(l)
		if opts.KMax > l {
			opts.KMax = l
		}
		build := func() *Plan {
			plan, err := Build(c, opts)
			if err != nil {
				t.Fatalf("Build(n=%d gates=%d l=%d seed=%d): %v", n, gates, l, seed, err)
			}
			return plan
		}
		p1 := build()
		access := checkAccessInvariants(t, p1)
		p2 := build()
		if p1.Fingerprint() != p2.Fingerprint() || p1.StructureFingerprint() != p2.StructureFingerprint() {
			t.Fatal("deterministic rebuild changed the fingerprint")
		}
		again, err := p2.AccessMap()
		if err != nil {
			t.Fatal(err)
		}
		if again != access {
			t.Fatal("equal-fingerprint rebuild did not share the cached access map")
		}
	})
}
