package schedule

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Plan serialization. The scheduler's pre-computation "terminates in 1–3
// seconds on a laptop ... and can be reused for all instances of the same
// size" (Table 1 caption) — serialized plans are how that reuse works
// across processes: schedule once with qsched, execute many times with
// qsim.

// planWire is the gob wire form of a Plan.
type planWire struct {
	Version    int
	N, L       int
	Ops        []Op
	InitialPos []int
	FinalPos   []int
	Stats      Stats
}

const planWireVersion = 1

// WritePlan serializes the plan to w.
func WritePlan(w io.Writer, p *Plan) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(planWire{
		Version:    planWireVersion,
		N:          p.N,
		L:          p.L,
		Ops:        p.Ops,
		InitialPos: p.InitialPos,
		FinalPos:   p.FinalPos,
		Stats:      p.Stats,
	})
}

// ReadPlan deserializes a plan written by WritePlan.
func ReadPlan(r io.Reader) (*Plan, error) {
	var w planWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("schedule: decoding plan: %w", err)
	}
	if w.Version != planWireVersion {
		return nil, fmt.Errorf("schedule: unsupported plan version %d", w.Version)
	}
	p := &Plan{
		N:          w.N,
		L:          w.L,
		Ops:        w.Ops,
		InitialPos: w.InitialPos,
		FinalPos:   w.FinalPos,
		Stats:      w.Stats,
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// validate sanity-checks a deserialized plan.
func (p *Plan) validate() error {
	if p.N < 1 || p.L < 1 || p.L > p.N {
		return fmt.Errorf("schedule: invalid plan dimensions n=%d l=%d", p.N, p.L)
	}
	if len(p.InitialPos) != p.N || len(p.FinalPos) != p.N {
		return fmt.Errorf("schedule: plan position maps have wrong length")
	}
	for _, pos := range [][]int{p.InitialPos, p.FinalPos} {
		seen := make([]bool, p.N)
		for _, x := range pos {
			if x < 0 || x >= p.N || seen[x] {
				return fmt.Errorf("schedule: plan position map is not a permutation")
			}
			seen[x] = true
		}
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		switch op.Kind {
		case OpCluster:
			if len(op.Matrix.Data) != (1<<len(op.Positions))*(1<<len(op.Positions)) {
				return fmt.Errorf("schedule: op %d: matrix size mismatch", i)
			}
			for _, pos := range op.Positions {
				if pos < 0 || pos >= p.L {
					return fmt.Errorf("schedule: op %d: cluster position %d not local", i, pos)
				}
			}
		case OpDiagonal:
			if len(op.Diag) != 1<<len(op.Positions) {
				return fmt.Errorf("schedule: op %d: diagonal size mismatch", i)
			}
			for _, pos := range op.Positions {
				if pos < 0 || pos >= p.N {
					return fmt.Errorf("schedule: op %d: position %d out of range", i, pos)
				}
			}
		case OpLocalPerm:
			if len(op.Perm) != p.L {
				return fmt.Errorf("schedule: op %d: perm length %d, want %d", i, len(op.Perm), p.L)
			}
		case OpSwap:
			if len(op.LocalPos) != len(op.GlobalPos) || len(op.LocalPos) == 0 {
				return fmt.Errorf("schedule: op %d: unbalanced swap", i)
			}
			if op.Perm != nil && len(op.Perm) != p.L {
				return fmt.Errorf("schedule: op %d: fused perm length %d, want %d", i, len(op.Perm), p.L)
			}
		default:
			return fmt.Errorf("schedule: op %d: unknown kind %d", i, int(op.Kind))
		}
	}
	return nil
}
