package schedule

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/statevec"
)

// naiveRun simulates the circuit gate by gate with no scheduling.
func naiveRun(c *circuit.Circuit) *statevec.Vector {
	v := statevec.New(c.N)
	for _, g := range c.Gates {
		v.Apply(g.Matrix(), g.Qubits...)
	}
	return v
}

// planRun builds a plan with opts and executes it on a single node, then
// compares amplitudes against naive simulation through the plan's final
// qubit → location mapping.
func assertPlanEquivalent(t *testing.T, c *circuit.Circuit, opts Options) *Plan {
	t.Helper()
	plan, err := Build(c, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := naiveRun(c)
	got := statevec.New(c.N)
	if err := plan.Run(got); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var maxd float64
	for b := 0; b < 1<<c.N; b++ {
		d := cmplx.Abs(want.Amplitude(b) - got.Amplitude(plan.PermutedIndex(b)))
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-9 {
		t.Fatalf("plan (l=%d kmax=%d policy=%v) deviates from naive simulation: max diff %g\n%s",
			opts.LocalQubits, opts.KMax, opts.SwapPolicy, maxd, plan.Summary())
	}
	return plan
}

func supremacy(n, depth int, seed int64) *circuit.Circuit {
	r, c := circuit.GridForQubits(n)
	return circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: depth, Seed: seed})
}

func TestPlanEquivalenceSingleStage(t *testing.T) {
	c := supremacy(12, 12, 1)
	opts := DefaultOptions(12) // l = n: no communication
	plan := assertPlanEquivalent(t, c, opts)
	if plan.Stats.Swaps != 0 {
		t.Errorf("l=n plan has %d swaps", plan.Stats.Swaps)
	}
	if plan.Stats.Stages != 1 {
		t.Errorf("l=n plan has %d stages", plan.Stats.Stages)
	}
}

func TestPlanEquivalenceMultiStage(t *testing.T) {
	for _, l := range []int{6, 8, 10} {
		for _, kmax := range []int{2, 3, 4} {
			c := supremacy(12, 10, 2)
			opts := DefaultOptions(l)
			opts.KMax = kmax
			plan := assertPlanEquivalent(t, c, opts)
			if l < c.N && plan.Stats.Swaps == 0 {
				t.Errorf("l=%d: expected at least one swap", l)
			}
		}
	}
}

func TestPlanEquivalenceAllPolicyCombinations(t *testing.T) {
	c := supremacy(12, 14, 3)
	for _, policy := range []SwapPolicy{SwapGreedy, SwapLowestOrder} {
		for _, mapping := range []MappingPolicy{MapIdentity, MapHeuristic} {
			for _, adjust := range []bool{false, true} {
				for _, spec1q := range []bool{false, true} {
					opts := DefaultOptions(8)
					opts.SwapPolicy = policy
					opts.Mapping = mapping
					opts.AdjustBoundaries = adjust
					opts.SpecializeDiagonal1Q = spec1q
					assertPlanEquivalent(t, c, opts)
				}
			}
		}
	}
}

func TestPlanEquivalenceNoClustering(t *testing.T) {
	c := supremacy(9, 10, 4)
	opts := DefaultOptions(6)
	opts.Clustering = false
	plan := assertPlanEquivalent(t, c, opts)
	if plan.Stats.GatesPerCluster > 1.01 && plan.Stats.Clusters > 0 {
		t.Errorf("no-clustering plan merged gates: %v per cluster", plan.Stats.GatesPerCluster)
	}
}

func TestPlanEquivalenceNoSpecialization(t *testing.T) {
	c := supremacy(9, 12, 5)
	opts := DefaultOptions(6)
	opts.SpecializeDiagonal2Q = false
	opts.SpecializeDiagonal1Q = false
	plan := assertPlanEquivalent(t, c, opts)
	if plan.Stats.DiagonalOps != 0 {
		t.Errorf("specialization disabled but %d global diagonal ops emitted", plan.Stats.DiagonalOps)
	}
}

func TestSpecializationReducesSwaps(t *testing.T) {
	// Sec. 3.5: CZ specialization cuts the communication of 36-qubit
	// circuits by 2x. Verify the ordering on a scaled-down instance.
	c := supremacy(16, 25, 6)
	with := DefaultOptions(10)
	without := DefaultOptions(10)
	without.SpecializeDiagonal2Q = false
	pw, err := Build(c, with)
	if err != nil {
		t.Fatal(err)
	}
	pwo, err := Build(c, without)
	if err != nil {
		t.Fatal(err)
	}
	if pw.Stats.Swaps > pwo.Stats.Swaps {
		t.Errorf("specialization increased swaps: %d with vs %d without", pw.Stats.Swaps, pwo.Stats.Swaps)
	}
	if pw.Stats.Swaps == pwo.Stats.Swaps {
		t.Logf("note: specialization did not reduce swaps on this instance (%d)", pw.Stats.Swaps)
	}
}

func TestGreedyBeatsLowestOrder(t *testing.T) {
	c := supremacy(16, 25, 7)
	greedy := DefaultOptions(10)
	lowest := DefaultOptions(10)
	lowest.SwapPolicy = SwapLowestOrder
	pg, err := Build(c, greedy)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(c, lowest)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Stats.Swaps > pl.Stats.Swaps {
		t.Errorf("greedy search produced more swaps (%d) than the lowest-order baseline (%d)",
			pg.Stats.Swaps, pl.Stats.Swaps)
	}
}

func TestSwapCountBeatsPerGateBaseline(t *testing.T) {
	// The headline claim: a handful of global-to-local swaps replaces the
	// ~50 per-gate communication steps of [5] (Sec. 4.1.2).
	c := supremacy(16, 25, 8)
	opts := DefaultOptions(10)
	plan, err := Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.BaselineGlobalGates <= plan.Stats.Swaps {
		t.Errorf("baseline global gates %d not above swap count %d",
			plan.Stats.BaselineGlobalGates, plan.Stats.Swaps)
	}
	ratio := float64(plan.Stats.BaselineGlobalGates) / float64(max(plan.Stats.Swaps, 1))
	if ratio < 4 {
		t.Errorf("communication reduction only %.1fx (baseline %d, swaps %d), expected ≥4x",
			ratio, plan.Stats.BaselineGlobalGates, plan.Stats.Swaps)
	}
	t.Logf("comm steps: baseline=%d (dense %d), ours=%d (%.1fx reduction)",
		plan.Stats.BaselineGlobalGates, plan.Stats.BaselineGlobalGatesDense,
		plan.Stats.Swaps, ratio)
}

func TestClusteringMergesMoreThanKMaxGates(t *testing.T) {
	// Table 1's observation: on average more than kmax gates merge into a
	// kmax-qubit cluster.
	c := supremacy(30, 25, 0)
	for _, kmax := range []int{3, 4, 5} {
		opts := DefaultOptions(30)
		opts.KMax = kmax
		plan, err := Build(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Stats.GatesPerCluster < float64(kmax) {
			t.Errorf("kmax=%d: %.2f gates per cluster, want ≥ %d",
				kmax, plan.Stats.GatesPerCluster, kmax)
		}
		t.Logf("kmax=%d: %d clusters, %.2f gates/cluster (paper: %d clusters for 369 gates)",
			kmax, plan.Stats.Clusters, plan.Stats.GatesPerCluster,
			map[int]int{3: 82, 4: 46, 5: 36}[kmax])
	}
}

func TestClusterSizesRespectKMax(t *testing.T) {
	c := supremacy(16, 20, 9)
	opts := DefaultOptions(10)
	opts.KMax = 3
	plan, err := Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range plan.Stats.ClusterSizes {
		if k > 3 {
			t.Errorf("cluster of size %d exceeds kmax=3", k)
		}
	}
	for _, op := range plan.Ops {
		if op.Kind == OpCluster && len(op.Positions) > 3 {
			t.Errorf("cluster op on %d positions exceeds kmax=3", len(op.Positions))
		}
	}
}

func TestClusterPositionsAreLocal(t *testing.T) {
	c := supremacy(12, 16, 10)
	opts := DefaultOptions(7)
	plan, err := Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range plan.Ops {
		if op.Kind != OpCluster {
			continue
		}
		for _, p := range op.Positions {
			if p >= plan.L {
				t.Errorf("cluster touches global location %d (l=%d)", p, plan.L)
			}
		}
	}
}

func TestDiagonalOpsMayTouchGlobals(t *testing.T) {
	c := supremacy(12, 16, 10)
	opts := DefaultOptions(7)
	plan, err := Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	sawGlobal := false
	for _, op := range plan.Ops {
		if op.Kind == OpDiagonal {
			for _, p := range op.Positions {
				if p >= plan.L {
					sawGlobal = true
				}
			}
		}
	}
	if !sawGlobal {
		t.Log("note: no diagonal op touched a global location on this instance")
	}
}

func TestSwapCountIndependentOfLocalQubits(t *testing.T) {
	// Fig. 5a: "the number of global-to-local swaps is mostly independent
	// of the number of local qubits". Scaled to 20 qubits with l in a
	// 4-value window.
	c := supremacy(20, 25, 11)
	var swaps []int
	for _, l := range []int{13, 14, 15, 16} {
		plan, err := Build(c, DefaultOptions(l))
		if err != nil {
			t.Fatal(err)
		}
		swaps = append(swaps, plan.Stats.Swaps)
	}
	min0, max0 := swaps[0], swaps[0]
	for _, s := range swaps {
		if s < min0 {
			min0 = s
		}
		if s > max0 {
			max0 = s
		}
	}
	if max0-min0 > 1 {
		t.Errorf("swap counts vary too much across local-qubit counts: %v", swaps)
	}
}

func TestQFTPlanEquivalence(t *testing.T) {
	// QFT is dominated by diagonal controlled-phase gates: a strong test of
	// the specialization path.
	c := circuit.QFT(10)
	opts := DefaultOptions(6)
	opts.KMax = 3
	plan := assertPlanEquivalent(t, c, opts)
	if plan.Stats.DiagonalOps == 0 {
		t.Error("QFT plan used no specialized diagonal ops")
	}
}

func TestGHZPlanEquivalence(t *testing.T) {
	assertPlanEquivalent(t, circuit.GHZ(11), DefaultOptions(6))
}

func TestRandomCircuitPlanEquivalenceProperty(t *testing.T) {
	// Random circuits mixing dense, diagonal, 1- and 2-qubit gates.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(4)
		c := circuit.NewCircuit(n)
		for i := 0; i < 40; i++ {
			switch rng.Intn(6) {
			case 0:
				c.Append(circuit.NewH(rng.Intn(n)))
			case 1:
				c.Append(circuit.NewT(rng.Intn(n)))
			case 2:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.Append(circuit.NewCZ(a, b))
				}
			case 3:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.Append(circuit.NewCNOT(a, b))
				}
			case 4:
				c.Append(circuit.NewXHalf(rng.Intn(n)))
			case 5:
				c.Append(circuit.NewRz(rng.Intn(n), rng.Float64()))
			}
		}
		l := 4 + rng.Intn(n-3)
		opts := DefaultOptions(l)
		opts.KMax = 2 + rng.Intn(3)
		if opts.KMax > l {
			opts.KMax = l
		}
		opts.SpecializeDiagonal1Q = rng.Intn(2) == 0
		assertPlanEquivalent(t, c, opts)
	}
}

func TestSwapPermFusion(t *testing.T) {
	// The peephole must fold every OpLocalPerm that immediately precedes a
	// swap into the swap op, count the folds in Stats.FusedPerms, and keep
	// plan execution exact (assertPlanEquivalent runs the fused plan).
	c := supremacy(16, 25, 15)
	plan := assertPlanEquivalent(t, c, DefaultOptions(10))
	fused := 0
	for i := range plan.Ops {
		op := &plan.Ops[i]
		if op.Kind == OpSwap && op.Perm != nil {
			fused++
			if len(op.Perm) != plan.L {
				t.Errorf("op %d: fused perm length %d, want l=%d", i, len(op.Perm), plan.L)
			}
		}
		if op.Kind == OpLocalPerm && i+1 < len(plan.Ops) &&
			plan.Ops[i+1].Kind == OpSwap && plan.Ops[i+1].Perm == nil {
			t.Errorf("op %d: unfused OpLocalPerm left ahead of a plain OpSwap", i)
		}
	}
	if fused == 0 {
		t.Error("no fused swap in a multi-stage supremacy plan")
	}
	if plan.Stats.FusedPerms != fused {
		t.Errorf("Stats.FusedPerms = %d, plan has %d fused swaps", plan.Stats.FusedPerms, fused)
	}
	if plan.Stats.LocalPerms < plan.Stats.FusedPerms {
		t.Errorf("LocalPerms %d < FusedPerms %d — fused perms must stay counted",
			plan.Stats.LocalPerms, plan.Stats.FusedPerms)
	}
}

func TestOptionsValidation(t *testing.T) {
	c := supremacy(9, 8, 1)
	if _, err := Build(c, Options{LocalQubits: 0, KMax: 1}); err == nil {
		t.Error("LocalQubits=0 accepted")
	}
	if _, err := Build(c, Options{LocalQubits: 5, KMax: 0}); err == nil {
		t.Error("KMax=0 accepted")
	}
	if _, err := Build(c, Options{LocalQubits: 3, KMax: 5}); err == nil {
		t.Error("KMax > l accepted")
	}
}

func TestStatsGateCoverage(t *testing.T) {
	c := supremacy(16, 20, 12)
	plan, err := Build(c, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, op := range plan.Ops {
		if op.Kind == OpCluster || op.Kind == OpDiagonal {
			covered += op.GateCount
		}
	}
	if covered != len(c.Gates) {
		t.Errorf("ops cover %d gates, circuit has %d", covered, len(c.Gates))
	}
	if plan.Stats.Gates != len(c.Gates) {
		t.Errorf("Stats.Gates = %d, want %d", plan.Stats.Gates, len(c.Gates))
	}
}

func TestFinalPosIsPermutation(t *testing.T) {
	c := supremacy(12, 18, 13)
	plan, err := Build(c, DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range [][]int{plan.InitialPos, plan.FinalPos} {
		seen := make([]bool, plan.N)
		for _, p := range pos {
			if p < 0 || p >= plan.N || seen[p] {
				t.Fatalf("bad position mapping %v", pos)
			}
			seen[p] = true
		}
	}
}

func TestUniformInitIndependentOfMapping(t *testing.T) {
	// Starting from the uniform state, the plan result must match naive
	// simulation of the SkipInitialH circuit regardless of layout.
	n := 10
	r, cgrid := circuit.GridForQubits(n)
	c := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: cgrid, Depth: 12, Seed: 14, SkipInitialH: true})
	plan, err := Build(c, DefaultOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	want := statevec.NewUniform(n)
	for _, g := range c.Gates {
		want.Apply(g.Matrix(), g.Qubits...)
	}
	got := statevec.NewUniform(n)
	if err := plan.Run(got); err != nil {
		t.Fatal(err)
	}
	var maxd float64
	for b := 0; b < 1<<n; b++ {
		d := cmplx.Abs(want.Amplitude(b) - got.Amplitude(plan.PermutedIndex(b)))
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-9 {
		t.Errorf("uniform-init plan deviates: %g", maxd)
	}
	if math.Abs(got.Norm()-1) > 1e-9 {
		t.Errorf("norm drift: %v", got.Norm())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestDefaultOptionsKMaxFive(t *testing.T) {
	if got := DefaultOptions(12).KMax; got != 5 {
		t.Errorf("DefaultOptions(12).KMax = %d, want 5", got)
	}
	// Small local windows clamp KMax so validate still accepts the options.
	for _, l := range []int{1, 3, 4} {
		opts := DefaultOptions(l)
		if opts.KMax != l {
			t.Errorf("DefaultOptions(%d).KMax = %d, want clamped to %d", l, opts.KMax, l)
		}
		if err := opts.validate(12); err != nil {
			t.Errorf("DefaultOptions(%d) does not validate: %v", l, err)
		}
	}
}

func TestPlanEquivalenceKMaxFive(t *testing.T) {
	c := supremacy(12, 16, 6)
	for _, l := range []int{8, 12} {
		plan := assertPlanEquivalent(t, c, DefaultOptions(l))
		sawFive := false
		for i := range plan.Ops {
			op := &plan.Ops[i]
			if op.Kind == OpCluster {
				if k := len(op.Positions); k > 5 {
					t.Fatalf("l=%d: cluster with %d > 5 qubits", l, k)
				} else if k == 5 {
					sawFive = true
				}
			}
		}
		if !sawFive {
			t.Errorf("l=%d: kmax=5 plan built no 5-qubit cluster on a depth-16 circuit", l)
		}
	}
}
