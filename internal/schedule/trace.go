package schedule

import "qusim/internal/telemetry"

// OpTraceArgs builds the canonical trace annotations for one plan op: the
// stage index plus the qubit-set / fused-cluster details that make a
// timeline readable without the plan at hand. Every executor (dist, oocvec)
// attaches these same args to its op spans, so traces from different
// backends stay directly comparable. Only called when tracing is enabled.
func OpTraceArgs(op *Op) []telemetry.Arg {
	args := []telemetry.Arg{telemetry.A("stage", op.Stage)}
	switch op.Kind {
	case OpCluster:
		args = append(args,
			telemetry.A("k", len(op.Positions)),
			telemetry.A("pos", op.Positions),
			telemetry.A("gates", op.GateCount))
	case OpDiagonal:
		args = append(args,
			telemetry.A("pos", op.Positions),
			telemetry.A("gates", op.GateCount))
	case OpLocalPerm:
		args = append(args, telemetry.A("width", len(op.Perm)))
	case OpSwap:
		args = append(args,
			telemetry.A("local", op.LocalPos),
			telemetry.A("global", op.GlobalPos),
			telemetry.A("fused_perm", op.Perm != nil))
	}
	return args
}
