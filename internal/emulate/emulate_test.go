package emulate

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"qusim/internal/circuit"
	"qusim/internal/statevec"
)

func randomVector(n int, rng *rand.Rand) *statevec.Vector {
	v := statevec.New(n)
	var norm float64
	for i := range v.Amps {
		v.Amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(v.Amps[i])*real(v.Amps[i]) + imag(v.Amps[i])*imag(v.Amps[i])
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range v.Amps {
		v.Amps[i] *= inv
	}
	return v
}

func runCircuit(c *circuit.Circuit, v *statevec.Vector) {
	for i := range c.Gates {
		g := &c.Gates[i]
		v.Apply(g.Matrix(), g.Qubits...)
	}
}

func TestEmulatedQFTMatchesGateQFT(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, n := range []int{3, 6, 9} {
		v := randomVector(n, rng)
		gateWay := v.Clone()
		runCircuit(circuit.QFT(n), gateWay)
		gateWay.ReverseBits()

		fftWay := v.Clone()
		QFT(fftWay, true)

		if d := gateWay.MaxDiff(fftWay); d > 1e-9 {
			t.Errorf("n=%d: emulated QFT deviates from gate QFT: %g", n, d)
		}
	}
}

func TestEmulatedQFTNoReverseConvention(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 7
	v := randomVector(n, rng)
	gateWay := v.Clone()
	runCircuit(circuit.QFT(n), gateWay)

	fftWay := v.Clone()
	QFT(fftWay, false)

	if d := gateWay.MaxDiff(fftWay); d > 1e-9 {
		t.Errorf("convention mismatch: %g", d)
	}
}

func TestInverseQFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, rev := range []bool{true, false} {
		v := randomVector(8, rng)
		w := v.Clone()
		QFT(w, rev)
		InverseQFT(w, rev)
		if d := v.MaxDiff(w); d > 1e-10 {
			t.Errorf("reverse=%v: QFT∘IQFT != identity: %g", rev, d)
		}
	}
}

func TestQFTPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	v := randomVector(10, rng)
	QFT(v, true)
	if math.Abs(v.Norm()-1) > 1e-10 {
		t.Errorf("norm after emulated QFT: %v", v.Norm())
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fft(make([]complex128, 3), false)
}

// TestEmulationSpeedAdvantage checks the related-work claim: the FFT
// emulation is asymptotically cheaper than the n² gate applications. On a
// 16-qubit state it must win comfortably.
func TestEmulationSpeedAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	n := 16
	rng := rand.New(rand.NewSource(104))
	v := randomVector(n, rng)
	c := circuit.QFT(n)

	g := v.Clone()
	t0 := time.Now()
	runCircuit(c, g)
	gateTime := time.Since(t0)

	e := v.Clone()
	t0 = time.Now()
	QFT(e, false)
	fftTime := time.Since(t0)

	if fftTime*2 > gateTime {
		t.Logf("warning: emulation only %.1fx faster (gate %v, fft %v)",
			gateTime.Seconds()/fftTime.Seconds(), gateTime, fftTime)
	}
	if d := g.MaxDiff(e); d > 1e-9 {
		t.Errorf("fast path diverges: %g", d)
	}
}
