// Package emulate implements classical-shortcut emulation of quantum
// operations whose action is known in advance — the technique of Häner,
// Steiger, Smelyanskiy & Troyer [7] discussed in the paper's related work:
// "the quantum Fourier transform ... can be emulated by applying a fast
// Fourier transform to the state vector. However, such emulation techniques
// are not applicable to quantum supremacy circuits."
//
// The package provides the FFT-based QFT emulation (O(n·2^n) instead of
// O(n²·2^n) gate applications) and exists both as a library feature and to
// reproduce that related-work comparison in the benchmarks.
package emulate

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"qusim/internal/par"
	"qusim/internal/statevec"
)

// QFT applies the quantum Fourier transform to the state by running an
// in-place radix-2 FFT over the amplitudes (normalized, bit-reversed to
// match the circuit convention of circuit.QFT — i.e. circuit.QFT followed
// by statevec.ReverseBits equals this with reverse=true).
func QFT(v *statevec.Vector, reverse bool) {
	fft(v.Amps, false)
	scale := complex(1/math.Sqrt(float64(len(v.Amps))), 0)
	par.For(len(v.Amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v.Amps[i] *= scale
		}
	})
	if !reverse {
		v.ReverseBits()
	}
}

// InverseQFT applies the inverse transform.
func InverseQFT(v *statevec.Vector, reverse bool) {
	if !reverse {
		v.ReverseBits()
	}
	fft(v.Amps, true)
	scale := complex(1/math.Sqrt(float64(len(v.Amps))), 0)
	par.For(len(v.Amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v.Amps[i] *= scale
		}
	})
}

// fft is an iterative in-place Cooley–Tukey radix-2 transform. inverse
// selects the conjugated twiddles. The output is in bit-reversed order
// relative to a textbook DFT of the input; combined with the explicit
// bit-reversal pass below the full transform matches the DFT with the sign
// convention X_k = Σ_x e^{+2πi kx/N} x_x (the QFT convention).
func fft(a []complex128, inverse bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("emulate: fft length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := 1.0
	if inverse {
		sign = -1
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, ang))
		half := size >> 1
		// Parallelize over blocks when they are numerous; within a block
		// the butterfly loop is sequential.
		blocks := n / size
		par.For(blocks, 1+4096/size, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				base := b * size
				w := complex(1, 0)
				for j := 0; j < half; j++ {
					u := a[base+j]
					t := a[base+j+half] * w
					a[base+j] = u + t
					a[base+j+half] = u - t
					w *= wstep
				}
			}
		})
	}
}
