package harness

import (
	"fmt"
	"io"

	"qusim/internal/kernels"
)

// The autotuner experiment: the Go stand-in for the paper's code
// generation / benchmarking feedback loop (Sec. 3.2). It times every
// kernel variant per gate size on this machine and reports the selection
// the Auto path will use, plus the block-size search for the Split kernel.

func init() {
	register(Experiment{ID: "tuner", Title: "Sec. 3.2 — kernel autotuner (codegen feedback loop)", Run: tuner})
}

func tuner(w io.Writer, cfg Config) error {
	n := 20
	reps := 3
	if cfg.Quick {
		n, reps = 16, 1
	}
	header(w, fmt.Sprintf("kernel autotuning on this host (2^%d amplitudes)", n))
	res := kernels.Tune(5, n, reps)
	// The sweep times both precisions and, on states this large, both
	// stride classes; the tables report the cache-local (low-stride)
	// timings per precision, the selection column shows low/high winners.
	for _, f32 := range []bool{false, true} {
		label := "double precision (complex128)"
		if f32 {
			label = "single precision (complex64)"
		}
		fmt.Fprintf(w, "\n%s:\n", label)
		t := newTable(w)
		hdr := []any{"k"}
		for _, v := range kernels.Variants() {
			hdr = append(hdr, v.String()+" [ms]")
		}
		hdr = append(hdr, "selected low/high")
		t.row(hdr...)
		for k := 1; k <= 5; k++ {
			row := []any{k}
			for _, v := range kernels.Variants() {
				for _, tm := range res.Timings {
					if tm.K == k && tm.Variant == v && tm.F32 == f32 && tm.Stride == kernels.StrideLow {
						row = append(row, fmt.Sprintf("%.2f", tm.NsPerApply/1e6))
					}
				}
			}
			row = append(row, fmt.Sprintf("%s/%s",
				kernels.SelectedFor(k, kernels.StrideLow, f32),
				kernels.SelectedFor(k, kernels.StrideHigh, f32)))
			t.row(row...)
		}
		t.flush()
	}
	blk := kernels.TuneSplitBlock(4, n, reps)
	fmt.Fprintf(w, "\nsplit-kernel column block size (register blocking B): %d\n", blk)
	note(w, "the paper's Python generator + benchmark loop picks kernels per target machine; here the same loop picks among the Go variants (incl. cmd/kernelgen output)")
	return nil
}
