package harness

import (
	"math/rand"
	"time"

	"qusim/internal/gate"
	"qusim/internal/kernels"
	"qusim/internal/perfmodel"
)

// Shared kernel measurement helpers for the Fig. 2/6/7/9/10 experiments.

// measureKernelGFLOPS times variant applying a random k-qubit gate on a
// 2^n state at the given sorted qubit positions and returns sustained
// GFLOPS.
func measureKernelGFLOPS(v kernels.Variant, n, k int, qs []int, minReps int) float64 {
	rng := rand.New(rand.NewSource(7))
	u := gate.RandomUnitary(k, rng)
	amps := make([]complex128, 1<<n)
	amps[0] = 1
	var scratch []complex128
	if v == kernels.Naive {
		scratch = make([]complex128, len(amps))
	}
	src, dst := amps, scratch
	apply := func() {
		if v == kernels.Naive {
			// Ping-pong the two vectors like the baseline implementation.
			kernels.Apply(v, src, u.Data, qs, dst)
			src, dst = dst, src
		} else {
			kernels.Apply(v, src, u.Data, qs, nil)
		}
	}
	apply() // warm up
	reps := minReps
	if reps < 1 {
		reps = 1
	}
	var elapsed time.Duration
	for {
		start := time.Now()
		for r := 0; r < reps; r++ {
			apply()
		}
		elapsed = time.Since(start)
		if elapsed > 50*time.Millisecond || reps > 1<<16 {
			break
		}
		reps *= 4
	}
	secPerApply := elapsed.Seconds() / float64(reps)
	return perfmodel.KernelFlops(n, k) / secPerApply / 1e9
}

func randSource(seed int) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed)))
}

// lowOrderQs returns positions 0…k−1; highOrderQs returns n−k…n−1 (the
// large power-of-two-stride case of Sec. 3.3).
func lowOrderQs(k int) []int {
	qs := make([]int, k)
	for i := range qs {
		qs[i] = i
	}
	return qs
}

func highOrderQs(n, k int) []int {
	qs := make([]int, k)
	for i := range qs {
		qs[i] = n - k + i
	}
	return qs
}
