package harness

import (
	"fmt"
	"io"

	"qusim/internal/circuit"
)

// Fig. 1: the eight CZ patterns of the supremacy circuits, rendered for
// the 6×6 grid the figure shows. The structural invariants (each pattern a
// matching; every bond exactly once per 8 cycles) are asserted here as
// well as in the circuit package's tests.

func init() {
	register(Experiment{ID: "fig1", Title: "Fig. 1 — CZ patterns of the supremacy circuits", Run: fig1})
}

func fig1(w io.Writer, cfg Config) error {
	l := circuit.Layout{Rows: 6, Cols: 6}
	header(w, "eight CZ patterns, 6x6 grid (cycles 1-8, repeating)")
	for cyc := 1; cyc <= 8; cyc++ {
		bonds := l.CZPattern(cyc)
		horiz := map[[2]int]bool{}
		vert := map[[2]int]bool{}
		seen := map[int]bool{}
		for _, b := range bonds {
			if seen[b.A] || seen[b.B] {
				return fmt.Errorf("harness: cycle %d pattern is not a matching", cyc)
			}
			seen[b.A] = true
			seen[b.B] = true
			ra, ca := b.A/l.Cols, b.A%l.Cols
			rb, cb := b.B/l.Cols, b.B%l.Cols
			if ra == rb {
				horiz[[2]int{ra, min(ca, cb)}] = true
			} else {
				vert[[2]int{min(ra, rb), ca}] = true
			}
		}
		fmt.Fprintf(w, "\n(%d)  %d CZs\n", cyc, len(bonds))
		for r := 0; r < l.Rows; r++ {
			for c := 0; c < l.Cols; c++ {
				fmt.Fprint(w, "o")
				if c+1 < l.Cols {
					if horiz[[2]int{r, c}] {
						fmt.Fprint(w, "---")
					} else {
						fmt.Fprint(w, "   ")
					}
				}
			}
			fmt.Fprintln(w)
			if r+1 < l.Rows {
				for c := 0; c < l.Cols; c++ {
					if vert[[2]int{r, c}] {
						fmt.Fprint(w, "|")
					} else {
						fmt.Fprint(w, " ")
					}
					if c+1 < l.Cols {
						fmt.Fprint(w, "   ")
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
	// Coverage check across the period.
	counts := map[circuit.Bond]int{}
	for cyc := 1; cyc <= 8; cyc++ {
		for _, b := range l.CZPattern(cyc) {
			counts[b]++
		}
	}
	all := l.AllBonds()
	for _, b := range all {
		if counts[b] != 1 {
			return fmt.Errorf("harness: bond %v applied %d times per period", b, counts[b])
		}
	}
	fmt.Fprintf(w, "\nevery one of the %d nearest-neighbour bonds appears exactly once per 8 cycles ✓\n", len(all))
	note(w, "reconstruction of Google's layouts from the paper's stated rules; exact stagger differs (DESIGN.md §2)")
	return nil
}
