package harness

import (
	"fmt"
	"io"

	"qusim/internal/circuit"
	"qusim/internal/dist"
	"qusim/internal/perfmodel"
	"qusim/internal/schedule"
)

// Fig. 8: strong scaling of the full simulator — 36 qubits on {16,32,64}
// and 42 qubits on {1024,2048,4096} Cori II nodes. The paper-scale numbers
// come from the scheduler's real swap/cluster counts fed into the network
// model; a scaled-down instance additionally runs for real across simulated
// MPI ranks to validate the communication structure.

func init() {
	register(Experiment{ID: "fig8", Title: "Fig. 8 — multi-node strong scaling", Run: fig8})
}

func fig8(w io.Writer, cfg Config) error {
	header(w, "multi-node strong scaling (Cori II model)")
	m := perfmodel.CoriKNL()
	nw := perfmodel.CrayAries()

	t := newTable(w)
	t.row("qubits", "nodes", "modeled time [s]", "comm %", "speedup vs fewest nodes")
	for _, row := range []struct {
		n     int
		nodes []int
	}{
		{36, []int{16, 32, 64}},
		{42, []int{1024, 2048, 4096}},
	} {
		var t0 float64
		for _, nodes := range row.nodes {
			stats, err := planStats(row.n, 25, cfg.Seed, row.n-log2(nodes))
			if err != nil {
				return err
			}
			est := perfmodel.EstimateScheduled(m, nw, stats, nodes)
			if t0 == 0 {
				t0 = est.TotalSec
			}
			t.row(row.n, nodes, fmt.Sprintf("%.1f", est.TotalSec),
				fmt.Sprintf("%.0f%%", est.CommFraction*100),
				fmt.Sprintf("%.2fx", t0/est.TotalSec))
		}
	}
	t.flush()
	note(w, "paper: near-ideal scaling 16->32 nodes, tapering at 4096 as communication grows")

	// Real scaled-down runs across simulated ranks.
	n := 20
	if cfg.Quick {
		n = 14
	}
	fmt.Fprintf(w, "\nreal runs, %d-qubit circuit across simulated MPI ranks:\n", n)
	t = newTable(w)
	t.row("ranks", "wall [s]", "comm steps", "comm MB", "entropy")
	for _, ranks := range []int{2, 4, 8, 16} {
		res, err := runScaled(n, 20, cfg.Seed, ranks)
		if err != nil {
			return err
		}
		t.row(ranks, fmt.Sprintf("%.3f", res.Elapsed.Seconds()), res.CommSteps,
			fmt.Sprintf("%.1f", float64(res.CommBytes)/1e6), fmt.Sprintf("%.4f", res.Entropy))
	}
	t.flush()
	note(w, "in-process ranks share this host's cores, so wall time does not drop with rank count; the communication structure (steps, volume) is the validated quantity")
	return nil
}

func planStats(n, depth int, seed int64, l int) (schedule.Stats, error) {
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: depth, Seed: seed, SkipInitialH: true})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(l))
	if err != nil {
		return schedule.Stats{}, err
	}
	return plan.Stats, nil
}

func runScaled(n, depth int, seed int64, ranks int) (*dist.Result, error) {
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: depth, Seed: seed, SkipInitialH: true})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(n-log2(ranks)))
	if err != nil {
		return nil, err
	}
	return dist.Run(plan, dist.Options{Ranks: ranks, Init: dist.InitUniform})
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
