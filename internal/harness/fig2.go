package harness

import (
	"fmt"
	"io"

	"qusim/internal/kernels"
	"qusim/internal/perfmodel"
)

// Fig. 2: roofline plots of the 1- and 4-qubit kernels at the successive
// optimization steps, for one Edison socket (2a) and one Cori II KNL node
// (2b). The machine-specific GFLOPS are modeled through the calibrated
// rooflines; the optimization-step *progression* is measured on this host
// by running the actual kernel variants.

func init() {
	register(Experiment{ID: "fig2a", Title: "Fig. 2a — roofline, Edison socket", Run: fig2(perfmodel.EdisonSocket(), paperFig2a)})
	register(Experiment{ID: "fig2b", Title: "Fig. 2b — roofline, Cori II KNL node", Run: fig2(perfmodel.CoriKNL(), paperFig2b)})
}

// Paper-reported measured points (GFLOPS) for the labeled steps.
var paperFig2a = map[string]float64{
	"4q best (step 3)": 166.2,
}

var paperFig2b = map[string]float64{
	"4q step 1":          229.6,
	"4q step 2 (AVX)":    442.7,
	"4q step 2 (AVX512)": 878.7,
}

func fig2(m perfmodel.Machine, paper map[string]float64) func(io.Writer, Config) error {
	return func(w io.Writer, cfg Config) error {
		header(w, fmt.Sprintf("roofline for %s", m.Name))
		fmt.Fprintf(w, "peak %.1f GFLOPS, memory roof %.1f GB/s\n\n", m.PeakGFLOPS, m.StreamBW)

		t := newTable(w)
		t.row("kernel", "OI [F/B]", "roofline [GF]", "model [GF]")
		for _, k := range []int{1, 4} {
			oi := perfmodel.OperationalIntensity(k)
			t.row(fmt.Sprintf("%d-qubit", k),
				fmt.Sprintf("%.3f", oi),
				fmt.Sprintf("%.1f", m.Roofline(oi)),
				fmt.Sprintf("%.1f", m.KernelGFLOPS(k, 1e9, false)))
		}
		t.flush()
		fmt.Fprintln(w)
		for label, v := range paper {
			fmt.Fprintf(w, "paper-reported point: %-22s %.1f GFLOPS\n", label, v)
		}

		// Host-measured optimization-step progression (the portable part of
		// Fig. 2: each step should improve on the previous one).
		n := 22
		if cfg.Quick {
			n = 18
		}
		fmt.Fprintf(w, "\nhost-measured kernel variants (2^%d amplitudes), GFLOPS:\n", n)
		t = newTable(w)
		t.row("kernel", "step 0 naive", "step 1 in-place", "step 2-3 split", "generated (specialized)")
		for _, k := range []int{1, 4} {
			qs := lowOrderQs(k)
			t.row(fmt.Sprintf("%d-qubit", k),
				fmt.Sprintf("%.2f", measureKernelGFLOPS(kernels.Naive, n, k, qs, 1)),
				fmt.Sprintf("%.2f", measureKernelGFLOPS(kernels.InPlace, n, k, qs, 1)),
				fmt.Sprintf("%.2f", measureKernelGFLOPS(kernels.Split, n, k, qs, 1)),
				fmt.Sprintf("%.2f", measureKernelGFLOPS(kernels.Specialized, n, k, qs, 1)))
		}
		t.flush()
		note(w, "Go has no SIMD intrinsics: the generated (specialized) kernels beat the naive baseline by ~1.5-3x on scalar code, while the AVX-specific intermediate steps need not be monotone here; the Edison/KNL absolute values come from the calibrated model (see DESIGN.md).")
		return nil
	}
}
