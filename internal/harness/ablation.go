package harness

import (
	"fmt"
	"io"
	"time"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
)

// Ablations of the design choices DESIGN.md calls out: gate specialization
// (Sec. 3.5 claims a 2x swap reduction at 36 qubits), the greedy swap
// search vs the lowest-order baseline, clustering on/off, boundary
// adjustment, and the qubit-mapping heuristic (Sec. 3.6.2 claims 2x
// time-to-solution). Scheduling quantities are exact; the mapping ablation
// is wall-clock measured on this host.

func init() {
	register(Experiment{ID: "ablation", Title: "Ablations — specialization, search, clustering, mapping", Run: ablation})
}

func ablation(w io.Writer, cfg Config) error {
	n, depth := 36, 25
	l := 30
	execN := 22
	if cfg.Quick {
		n, l, execN = 20, 14, 16
	}
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: depth, Seed: cfg.Seed, SkipInitialH: true})

	header(w, fmt.Sprintf("scheduling ablations on a %d-qubit depth-%d circuit, l=%d", n, depth, l))
	t := newTable(w)
	t.row("configuration", "swaps", "clusters", "gates/cluster")
	build := func(label string, mutate func(*schedule.Options)) error {
		opts := schedule.DefaultOptions(l)
		mutate(&opts)
		plan, err := schedule.Build(circ, opts)
		if err != nil {
			return err
		}
		t.row(label, plan.Stats.Swaps, plan.Stats.Clusters, fmt.Sprintf("%.2f", plan.Stats.GatesPerCluster))
		return nil
	}
	for _, cse := range []struct {
		label  string
		mutate func(*schedule.Options)
	}{
		{"default (CZ spec, greedy, kmax=4, adjust)", func(o *schedule.Options) {}},
		{"+ T specialization (median-hard mode)", func(o *schedule.Options) { o.SpecializeDiagonal1Q = true }},
		{"- CZ specialization (Sec. 3.5 off)", func(o *schedule.Options) { o.SpecializeDiagonal2Q = false }},
		{"- greedy search (lowest-order swaps)", func(o *schedule.Options) { o.SwapPolicy = schedule.SwapLowestOrder }},
		{"- boundary adjustment (step 3 off)", func(o *schedule.Options) { o.AdjustBoundaries = false }},
		{"- cluster seed search (step 2 local search off)", func(o *schedule.Options) { o.NoSeedSearch = true }},
		{"- clustering (per-gate kernels)", func(o *schedule.Options) { o.Clustering = false }},
		{"kmax=3", func(o *schedule.Options) { o.KMax = 3 }},
		{"kmax=5", func(o *schedule.Options) { o.KMax = 5 }},
	} {
		if err := build(cse.label, cse.mutate); err != nil {
			return err
		}
	}
	t.flush()

	// Execution-time ablation: clustering and mapping, wall-clock on this
	// host for a state that fits in memory.
	fmt.Fprintf(w, "\nsingle-node execution ablation (%d qubits, wall-clock):\n", execN)
	r2, c2 := circuit.GridForQubits(execN)
	circ2 := circuit.Supremacy(circuit.SupremacyOptions{Rows: r2, Cols: c2, Depth: depth, Seed: cfg.Seed, SkipInitialH: true})
	t = newTable(w)
	t.row("configuration", "kernel invocations", "wall [s]")
	for _, cse := range []struct {
		label  string
		mutate func(*schedule.Options)
	}{
		{"fused clusters + heuristic mapping", func(o *schedule.Options) {}},
		{"fused clusters + identity mapping", func(o *schedule.Options) { o.Mapping = schedule.MapIdentity }},
		{"no fusion (gate-by-gate kernels)", func(o *schedule.Options) { o.Clustering = false }},
	} {
		opts := schedule.DefaultOptions(execN)
		cse.mutate(&opts)
		plan, err := schedule.Build(circ2, opts)
		if err != nil {
			return err
		}
		v := statevec.NewUniform(execN)
		start := time.Now()
		if err := plan.Run(v); err != nil {
			return err
		}
		elapsed := time.Since(start)
		t.row(cse.label, plan.Stats.Clusters+plan.Stats.DiagonalOps, fmt.Sprintf("%.3f", elapsed.Seconds()))
	}
	t.flush()
	note(w, "paper: fusion turns %d gates into far fewer kernel sweeps; the mapping heuristic bought 2x on Edison's 8-way caches (its effect here depends on this host's cache)", len(circ2.Gates))
	return nil
}
