package harness

import (
	"fmt"
	"io"
	"time"

	"qusim/internal/circuit"
	"qusim/internal/emulate"
	"qusim/internal/statevec"
)

// Related-work comparison ([7], Sec. 1): emulating the QFT with an FFT
// beats gate-by-gate simulation asymptotically — but, as the paper notes,
// no such classical shortcut exists for supremacy circuits, which is why
// the full state-vector simulator (and this reproduction) is needed.

func init() {
	register(Experiment{ID: "emulation", Title: "Related work [7] — QFT emulation vs gate simulation", Run: emulation})
}

func emulation(w io.Writer, cfg Config) error {
	n := 20
	if cfg.Quick {
		n = 14
	}
	header(w, fmt.Sprintf("QFT on %d qubits: gate-by-gate vs FFT emulation", n))
	c := circuit.QFT(n)

	v1 := statevec.NewUniform(n)
	start := time.Now()
	for i := range c.Gates {
		g := &c.Gates[i]
		v1.Apply(g.Matrix(), g.Qubits...)
	}
	gateTime := time.Since(start)

	v2 := statevec.NewUniform(n)
	start = time.Now()
	emulate.QFT(v2, false)
	fftTime := time.Since(start)

	diff := v1.MaxDiff(v2)
	t := newTable(w)
	t.row("method", "gates applied", "wall [s]")
	t.row("gate-by-gate simulation", len(c.Gates), fmt.Sprintf("%.4f", gateTime.Seconds()))
	t.row("FFT emulation", "-", fmt.Sprintf("%.4f", fftTime.Seconds()))
	t.flush()
	fmt.Fprintf(w, "speedup %.1fx, max amplitude difference %.2g\n",
		gateTime.Seconds()/fftTime.Seconds(), diff)
	if diff > 1e-9 {
		return fmt.Errorf("harness: emulation result deviates from gate simulation: %g", diff)
	}
	note(w, "no analogous shortcut exists for random supremacy circuits — hence the full simulator")
	return nil
}
