package harness

import (
	"fmt"
	"io"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
)

// Table 1: re-scheduling of depth-25 supremacy circuits into clusters for
// kmax ∈ {3,4,5} with 30 local qubits. Cluster counts are a pure scheduler
// output and are reproduced exactly (up to the generator's CZ-pattern
// reconstruction; see EXPERIMENTS.md).

func init() {
	register(Experiment{ID: "table1", Title: "Table 1 — gate clustering", Run: table1})
}

var paperTable1 = map[int]struct {
	gates    int
	clusters [3]int // kmax 3, 4, 5
}{
	30: {369, [3]int{82, 46, 36}},
	36: {447, [3]int{98, 53, 41}},
	42: {528, [3]int{111, 58, 46}},
	45: {569, [3]int{111, 73, 51}},
}

func table1(w io.Writer, cfg Config) error {
	header(w, "Table 1: clusters for depth-25 circuits (30 local qubits)")
	t := newTable(w)
	t.row("qubits", "gates (paper)", "kmax=3 (paper)", "kmax=4 (paper)", "kmax=5 (paper)", "gates/cluster@5")
	qubits := []int{30, 36, 42, 45}
	if cfg.Quick {
		qubits = []int{30, 36}
	}
	for _, n := range qubits {
		r, c := circuit.GridForQubits(n)
		circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 25, Seed: cfg.Seed})
		p := paperTable1[n]
		row := []any{n, fmt.Sprintf("%d (%d)", len(circ.Gates), p.gates)}
		var lastGPC float64
		for i, kmax := range []int{3, 4, 5} {
			opts := schedule.DefaultOptions(30)
			opts.KMax = kmax
			plan, err := schedule.Build(circ, opts)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%d (%d)", plan.Stats.Clusters, p.clusters[i]))
			lastGPC = plan.Stats.GatesPerCluster
		}
		row = append(row, fmt.Sprintf("%.1f", lastGPC))
		t.row(row...)
	}
	t.flush()
	note(w, "paper observation reproduced: clearly more than kmax gates merge into one cluster on average")
	return nil
}
