// Package harness regenerates every table and figure of the paper's
// evaluation section (Sec. 4). Each experiment prints the paper's reported
// values next to the reproduced ones — measured on this host where the
// quantity is hardware-independent or host-measurable, and modeled through
// internal/perfmodel where the paper's machines (Cori II, Edison) are
// required. cmd/experiments is the CLI front end; bench_test.go exposes one
// testing.B benchmark per experiment.
package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Config tunes experiment sizes.
type Config struct {
	// Quick shrinks state sizes and sweep ranges so the full suite runs in
	// seconds (used by tests and CI).
	Quick bool
	// Seed for circuit generation.
	Seed int64
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table is a small helper for aligned experiment output.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "== %s ==\n", title)
}

func note(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, "   note: "+format+"\n", args...)
}
