package harness

import (
	"fmt"
	"io"
	"math"

	"qusim/internal/circuit"
	"qusim/internal/dist"
	"qusim/internal/perfmodel"
	"qusim/internal/schedule"
)

// Table 2: the full Cori II runs — 30 qubits on 1 node, 36 on 64, 42 on
// 4096 and 45 on 8192 — reporting time, communication fraction and speedup
// over the per-gate state of the art [5]. The paper-scale rows combine the
// real scheduler output with the calibrated machine/network model; a
// scaled-down instance additionally runs for real (both schemes) on
// simulated ranks.

func init() {
	register(Experiment{ID: "table2", Title: "Table 2 — full simulation runs", Run: table2})
}

var paperTable2 = []struct {
	n, gates, nodes int
	timeSec         float64
	commPct         float64
	speedup         string
}{
	{30, 369, 1, 9.58, 0, "14.8x"},
	{36, 447, 64, 28.92, 42.9, "12.8x"},
	{42, 528, 4096, 79.53, 71.8, "12.4x"},
	{45, 569, 8192, 552.61, 78.0, "N/A"},
}

func table2(w io.Writer, cfg Config) error {
	header(w, "Table 2: depth-25 supremacy circuit runs on Cori II (modeled at paper scale)")
	m := perfmodel.CoriKNL()
	nw := perfmodel.CrayAries()

	t := newTable(w)
	t.row("qubits", "nodes", "time [s] (paper)", "comm % (paper)", "speedup vs [5] (paper)")
	for _, row := range paperTable2 {
		l := row.n - log2(row.nodes)
		stats, err := planStats(row.n, 25, cfg.Seed, l)
		if err != nil {
			return err
		}
		est := perfmodel.EstimateScheduled(m, nw, stats, row.nodes)
		base := perfmodel.EstimateBaseline(m, nw, stats, row.nodes)
		speedup := base.TotalSec / est.TotalSec
		t.row(row.n, row.nodes,
			fmt.Sprintf("%.1f (%.2f)", est.TotalSec, row.timeSec),
			fmt.Sprintf("%.1f (%.1f)", est.CommFraction*100, row.commPct),
			fmt.Sprintf("%.1fx (%s)", speedup, row.speedup))
	}
	t.flush()
	note(w, "45-qubit run: paper sustains 0.428 PFLOPS over 0.5 PB; modeled PFLOPS printed by 'go test -run TestTable2 -v ./internal/perfmodel'")

	// Real scaled-down comparison of both schemes.
	n := 18
	ranks := 8
	if cfg.Quick {
		n, ranks = 14, 4
	}
	fmt.Fprintf(w, "\nreal %d-qubit run on %d simulated ranks, both schemes:\n", n, ranks)
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 25, Seed: cfg.Seed, SkipInitialH: true})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(n-log2(ranks)))
	if err != nil {
		return err
	}
	sched, err := dist.Run(plan, dist.Options{Ranks: ranks, Init: dist.InitUniform})
	if err != nil {
		return err
	}
	base, err := dist.RunBaseline(circ, dist.BaselineOptions{Ranks: ranks, Init: dist.InitUniform, Specialize2Q: true})
	if err != nil {
		return err
	}
	t = newTable(w)
	t.row("scheme", "wall [s]", "comm steps", "comm MB", "entropy")
	t.row("scheduled (this work)", fmt.Sprintf("%.3f", sched.Elapsed.Seconds()), sched.CommSteps,
		fmt.Sprintf("%.1f", float64(sched.CommBytes)/1e6), fmt.Sprintf("%.4f", sched.Entropy))
	t.row("per-gate [5]", fmt.Sprintf("%.3f", base.Elapsed.Seconds()), base.CommSteps,
		fmt.Sprintf("%.1f", float64(base.CommBytes)/1e6), fmt.Sprintf("%.4f", base.Entropy))
	t.flush()
	if math.Abs(sched.Entropy-base.Entropy) > 1e-6 {
		return fmt.Errorf("harness: schemes disagree on entropy: %v vs %v", sched.Entropy, base.Entropy)
	}
	fmt.Fprintf(w, "measured: %.1fx fewer comm steps, %.1fx less comm volume, %.1fx wall-clock\n",
		float64(base.CommSteps)/float64(max(1, sched.CommSteps)),
		float64(base.CommBytes)/float64(max64(1, sched.CommBytes)),
		base.Elapsed.Seconds()/sched.Elapsed.Seconds())
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
