package harness

import (
	"fmt"
	"io"

	"qusim/internal/kernels"
	"qusim/internal/perfmodel"
)

// Fig. 6 (KNL) and Fig. 9 (Edison): performance of the k = 1…5 kernels when
// applied to low-order vs high-order qubits. The penalty appears once 2^k
// exceeds the effective cache set-associativity (8 on both machines). The
// machine values come from the associativity model; the same high/low-order
// contrast is measured on this host with the real kernels.

func init() {
	register(Experiment{ID: "fig6", Title: "Fig. 6 — high- vs low-order kernels, Cori II KNL", Run: fig6or9(perfmodel.CoriKNL())})
	register(Experiment{ID: "fig9", Title: "Fig. 9 — high- vs low-order kernels, Edison node", Run: fig6or9(perfmodel.EdisonSocket())})
}

func fig6or9(m perfmodel.Machine) func(io.Writer, Config) error {
	return func(w io.Writer, cfg Config) error {
		header(w, fmt.Sprintf("k-qubit kernels, low- vs high-order qubits on %s", m.Name))
		fmt.Fprintf(w, "modeled (effective associativity %d-way):\n", m.AssocEff)
		t := newTable(w)
		t.row("k", "low-order [GF]", "high-order [GF]", "penalty")
		for k := 1; k <= 5; k++ {
			lo := m.KernelGFLOPS(k, 1e9, false)
			hi := m.KernelGFLOPS(k, 1e9, true)
			t.row(k, fmt.Sprintf("%.0f", lo), fmt.Sprintf("%.0f", hi), fmt.Sprintf("%.2fx", lo/hi))
		}
		t.flush()

		n := 24
		if cfg.Quick {
			n = 18
		}
		fmt.Fprintf(w, "\nhost-measured (2^%d amplitudes, specialized kernels), GFLOPS:\n", n)
		t = newTable(w)
		t.row("k", "low-order", "high-order", "penalty")
		for k := 1; k <= 5; k++ {
			lo := measureKernelGFLOPS(kernels.Specialized, n, k, lowOrderQs(k), 1)
			hi := measureKernelGFLOPS(kernels.Specialized, n, k, highOrderQs(n, k), 1)
			t.row(k, fmt.Sprintf("%.2f", lo), fmt.Sprintf("%.2f", hi), fmt.Sprintf("%.2fx", lo/hi))
		}
		t.flush()
		note(w, "paper (KNL): drop sets in at k=4-5; k<=3 unaffected since 2^k entries map to distinct cache ways")
		return nil
	}
}
