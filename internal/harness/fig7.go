package harness

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"qusim/internal/gate"
	"qusim/internal/kernels"
	"qusim/internal/par"
	"qusim/internal/perfmodel"
)

// Fig. 7 (KNL, up to 64 cores on a 28-qubit state) and Fig. 10 (Edison, up
// to 24 cores): strong scaling of the k-qubit kernels with thread count.
// The machine curves come from the roofline scaling model; the same sweep
// runs on this host over its available cores with the worker-pool layer.

func init() {
	register(Experiment{ID: "fig7", Title: "Fig. 7 — kernel strong scaling, Cori II KNL", Run: fig7or10(perfmodel.CoriKNL(), []int{1, 2, 4, 8, 16, 32, 64})})
	register(Experiment{ID: "fig10", Title: "Fig. 10 — kernel strong scaling, Edison node", Run: fig7or10(perfmodel.EdisonSocket(), []int{1, 2, 4, 8, 12, 16, 24})})
}

func fig7or10(m perfmodel.Machine, cores []int) func(io.Writer, Config) error {
	return func(w io.Writer, cfg Config) error {
		header(w, fmt.Sprintf("strong scaling of k-qubit kernels on %s", m.Name))
		fmt.Fprintln(w, "modeled speedup vs 1 core:")
		t := newTable(w)
		hdr := []any{"cores"}
		for k := 1; k <= 5; k++ {
			hdr = append(hdr, fmt.Sprintf("k=%d", k))
		}
		t.row(hdr...)
		for _, p := range cores {
			row := []any{p}
			for k := 1; k <= 5; k++ {
				row = append(row, fmt.Sprintf("%.1f", m.StrongScalingSpeedup(k, p)))
			}
			t.row(row...)
		}
		t.flush()

		// Host measurement with the goroutine worker pool.
		n := 22
		if cfg.Quick {
			n = 18
		}
		hostCores := runtime.GOMAXPROCS(0)
		fmt.Fprintf(w, "\nhost-measured speedup (2^%d amplitudes, %d hardware threads):\n", n, hostCores)
		var sweep []int
		for p := 1; p <= hostCores; p *= 2 {
			sweep = append(sweep, p)
		}
		t = newTable(w)
		hdr = []any{"workers"}
		for k := 1; k <= 5; k++ {
			hdr = append(hdr, fmt.Sprintf("k=%d", k))
		}
		t.row(hdr...)
		base := map[int]float64{}
		for _, p := range sweep {
			old := par.SetWorkers(p)
			row := []any{p}
			for k := 1; k <= 5; k++ {
				sec := measureKernelSeconds(n, k)
				if p == 1 {
					base[k] = sec
				}
				row = append(row, fmt.Sprintf("%.2f", base[k]/sec))
			}
			t.row(row...)
			par.SetWorkers(old)
		}
		t.flush()
		if hostCores == 1 {
			note(w, "this host has a single hardware thread: measured speedup is necessarily flat; the modeled curves carry the Fig. 7/10 shape")
		}
		note(w, "paper: k<=4 kernels are bandwidth-limited and flatten once memory saturates; the 5-qubit kernel scales furthest")
		return nil
	}
}

func measureKernelSeconds(n, k int) float64 {
	u := gate.RandomUnitary(k, randSource(n*10+k))
	amps := make([]complex128, 1<<n)
	amps[0] = 1
	qs := lowOrderQs(k)
	kernels.Apply(kernels.Specialized, amps, u.Data, qs, nil)
	reps := 1
	var elapsed time.Duration
	for {
		start := time.Now()
		for r := 0; r < reps; r++ {
			kernels.Apply(kernels.Specialized, amps, u.Data, qs, nil)
		}
		elapsed = time.Since(start)
		if elapsed > 30*time.Millisecond || reps > 1<<14 {
			break
		}
		reps *= 4
	}
	return elapsed.Seconds() / float64(reps)
}
