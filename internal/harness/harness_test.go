package harness

import (
	"bytes"
	"strings"
	"testing"
)

// Every experiment must run to completion in quick mode and produce the
// paper-comparison output.
func TestAllExperimentsRunQuick(t *testing.T) {
	exps := All()
	if len(exps) < 11 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Config{Quick: true}); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 100 {
				t.Errorf("%s produced suspiciously short output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "==") {
				t.Errorf("%s output missing header", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig5a"); !ok {
		t.Error("fig5a not registered")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("unknown id found")
	}
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig2a", "fig2b", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9", "fig10", "table1", "table2", "edison36", "ablation"} {
		if !ids[want] {
			t.Errorf("experiment %s not registered", want)
		}
	}
}
