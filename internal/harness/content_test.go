package harness

import (
	"bytes"
	"strings"
	"testing"
)

// Content checks: the quick-mode outputs must contain the paper-comparison
// anchors each experiment promises.

func runQuick(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, Config{Quick: true}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestFig1ShowsAllPatternsAndCoverage(t *testing.T) {
	out := runQuick(t, "fig1")
	for i := 1; i <= 8; i++ {
		if !strings.Contains(out, "("+string(rune('0'+i))+")") {
			t.Errorf("fig1 missing pattern (%d)", i)
		}
	}
	if !strings.Contains(out, "exactly once per 8 cycles") {
		t.Error("fig1 missing the coverage statement")
	}
}

func TestFig2ShowsRooflineAndPaperPoints(t *testing.T) {
	out := runQuick(t, "fig2a")
	for _, want := range []string{"166.2", "OI [F/B]", "naive", "specialized"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2a missing %q", want)
		}
	}
	out = runQuick(t, "fig2b")
	for _, want := range []string{"878.7", "3133.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2b missing %q", want)
		}
	}
}

func TestFig5bShowsPaperSwapColumn(t *testing.T) {
	out := runQuick(t, "fig5b")
	for _, want := range []string{"paper swaps", "49", "median hard", "worst case"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5b missing %q", want)
		}
	}
}

func TestTable1ShowsPaperClusterCounts(t *testing.T) {
	out := runQuick(t, "table1")
	for _, want := range []string{"kmax=3", "kmax=5", "(82)", "(36)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestTable2ShowsBothSchemes(t *testing.T) {
	out := runQuick(t, "table2")
	for _, want := range []string{"552.61", "scheduled (this work)", "per-gate [5]", "fewer comm steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestTunerReportsSelection(t *testing.T) {
	out := runQuick(t, "tuner")
	for _, want := range []string{"selected", "generated", "block size"} {
		if !strings.Contains(out, want) {
			t.Errorf("tuner missing %q", want)
		}
	}
}

func TestAblationListsConfigurations(t *testing.T) {
	out := runQuick(t, "ablation")
	for _, want := range []string{"T specialization", "lowest-order", "clustering", "heuristic mapping"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing %q", want)
		}
	}
}

func TestEdison36ValidatesEntropy(t *testing.T) {
	out := runQuick(t, "edison36")
	for _, want := range []string{"99", "entropy", "Porter-Thomas"} {
		if !strings.Contains(out, want) {
			t.Errorf("edison36 missing %q", want)
		}
	}
}

func TestFig6ShowsPenaltyColumns(t *testing.T) {
	out := runQuick(t, "fig6")
	for _, want := range []string{"penalty", "2.00x", "4.00x", "host-measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 missing %q", want)
		}
	}
}

func TestFig7ShowsModelAndHostSections(t *testing.T) {
	out := runQuick(t, "fig7")
	for _, want := range []string{"modeled speedup", "host-measured", "k=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q", want)
		}
	}
}

func TestFig8ShowsBothScales(t *testing.T) {
	out := runQuick(t, "fig8")
	for _, want := range []string{"1024", "4096", "comm steps", "real runs"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 missing %q", want)
		}
	}
}

func TestEmulationExperimentVerifiesAgreement(t *testing.T) {
	out := runQuick(t, "emulation")
	for _, want := range []string{"FFT emulation", "speedup", "max amplitude difference"} {
		if !strings.Contains(out, want) {
			t.Errorf("emulation missing %q", want)
		}
	}
}
