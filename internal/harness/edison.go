package harness

import (
	"fmt"
	"io"
	"math"

	"qusim/internal/circuit"
	"qusim/internal/dist"
	"qusim/internal/perfmodel"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
)

// Sec. 4.2.2: the 36-qubit entropy calculation on 64 Edison sockets — 99 s
// total, 90.9 s simulation + 8.1 s entropy reduction, a >4x improvement
// over [5] on identical hardware. Modeled at paper scale; the entropy
// reduction itself is validated for real against single-node simulation.

func init() {
	register(Experiment{ID: "edison36", Title: "Sec. 4.2.2 — 36-qubit entropy run on Edison", Run: edison36})
}

func edison36(w io.Writer, cfg Config) error {
	header(w, "36-qubit depth-25 entropy run, 64 Edison sockets")
	m := perfmodel.EdisonSocket()
	nw := perfmodel.CrayAries()
	stats, err := planStats(36, 25, cfg.Seed, 30)
	if err != nil {
		return err
	}
	est := perfmodel.EstimateScheduled(m, nw, stats, 64)
	base := perfmodel.EstimateBaseline(m, nw, stats, 64)
	t := newTable(w)
	t.row("quantity", "modeled", "paper")
	t.row("total time [s]", fmt.Sprintf("%.1f", est.TotalSec), "99 (90.9 sim + 8.1 entropy)")
	t.row("speedup vs [5]", fmt.Sprintf("%.1fx", base.TotalSec/est.TotalSec), ">4x on identical hardware")
	t.flush()

	// Real validation of the distributed entropy reduction.
	n := 16
	if cfg.Quick {
		n = 12
	}
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 25, Seed: cfg.Seed, SkipInitialH: true})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(n-3))
	if err != nil {
		return err
	}
	res, err := dist.Run(plan, dist.Options{Ranks: 8, Init: dist.InitUniform})
	if err != nil {
		return err
	}
	single := statevec.NewUniform(n)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		single.Apply(g.Matrix(), g.Qubits...)
	}
	fmt.Fprintf(w, "\nreal %d-qubit validation: distributed entropy %.6f vs single-node %.6f (|Δ| = %.2g)\n",
		n, res.Entropy, single.Entropy(), math.Abs(res.Entropy-single.Entropy()))
	if math.Abs(res.Entropy-single.Entropy()) > 1e-9 {
		return fmt.Errorf("harness: distributed entropy deviates from single-node value")
	}
	// Porter–Thomas expectation for chaotic circuits: S ≈ n·ln2 − (1 − γ).
	pt := float64(n)*math.Ln2 - (1 - 0.5772156649)
	fmt.Fprintf(w, "Porter-Thomas expectation for a chaotic %d-qubit circuit: %.4f nats\n", n, pt)
	return nil
}
