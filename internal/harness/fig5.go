package harness

import (
	"fmt"
	"io"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
)

// Fig. 5: number of global-to-local swaps (top panels) and of per-gate
// communication steps under the scheme of [5] (bottom panels), as a
// function of circuit depth (5a, 42-qubit circuits) and of qubit count
// (5b, depth-25 circuits), for 29–32 local qubits. Both quantities are
// hardware-independent scheduler outputs and are reproduced exactly.

func init() {
	register(Experiment{ID: "fig5a", Title: "Fig. 5a — communication vs circuit depth (42 qubits)", Run: fig5a})
	register(Experiment{ID: "fig5b", Title: "Fig. 5b — communication vs qubit count (depth 25)", Run: fig5b})
}

func swapCounts(n, depth int, seed int64, locals []int, worstCase bool) (map[int]int, map[int]int, error) {
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{
		Rows: r, Cols: c, Depth: depth, Seed: seed, SkipInitialH: true,
	})
	swaps := map[int]int{}
	globals := map[int]int{}
	for _, l := range locals {
		if l > n {
			continue
		}
		opts := schedule.DefaultOptions(l)
		opts.Mapping = schedule.MapIdentity // mapping does not change counts
		opts.SpecializeDiagonal1Q = !worstCase
		plan, err := schedule.Build(circ, opts)
		if err != nil {
			return nil, nil, err
		}
		swaps[l] = plan.Stats.Swaps
		if worstCase {
			globals[l] = plan.Stats.BaselineGlobalGatesDense
		} else {
			globals[l] = plan.Stats.BaselineGlobalGates
		}
	}
	return swaps, globals, nil
}

func fig5a(w io.Writer, cfg Config) error {
	header(w, "Fig. 5a: 42-qubit supremacy circuits, depth 10-50")
	locals := []int{29, 30, 31, 32}
	depths := []int{10, 15, 20, 25, 30, 35, 40, 45, 50}
	if cfg.Quick {
		depths = []int{10, 25, 40}
	}
	for _, worst := range []bool{true, false} {
		mode := "worst case (dense 1q gates, dashed lines)"
		if !worst {
			mode = "median hard (T specialization, solid lines)"
		}
		fmt.Fprintf(w, "\n-- %s --\n", mode)
		t := newTable(w)
		hdr := []any{"depth"}
		for _, l := range locals {
			hdr = append(hdr, fmt.Sprintf("swaps(l=%d)", l))
		}
		hdr = append(hdr, "global gates [5] (l=30)")
		t.row(hdr...)
		for _, d := range depths {
			swaps, globals, err := swapCounts(42, d, cfg.Seed, locals, worst)
			if err != nil {
				return err
			}
			row := []any{d}
			for _, l := range locals {
				row = append(row, swaps[l])
			}
			row = append(row, globals[30])
			t.row(row...)
		}
		t.flush()
	}
	note(w, "paper: swaps stay in 1-3 across depth 10-50 and are mostly independent of l; per-gate scheme grows to ~200 steps at depth 50")
	return nil
}

func fig5b(w io.Writer, cfg Config) error {
	header(w, "Fig. 5b: depth-25 supremacy circuits, 30-49 qubits")
	locals := []int{29, 30, 31, 32}
	qubits := []int{30, 36, 42, 45, 49}
	paperSwaps := map[int]string{30: "0", 36: "1", 42: "2", 45: "2", 49: "2"}
	for _, worst := range []bool{true, false} {
		mode := "worst case (dense 1q gates)"
		if !worst {
			mode = "median hard (T specialization)"
		}
		fmt.Fprintf(w, "\n-- %s --\n", mode)
		t := newTable(w)
		hdr := []any{"qubits"}
		for _, l := range locals {
			hdr = append(hdr, fmt.Sprintf("swaps(l=%d)", l))
		}
		hdr = append(hdr, "global gates [5] (l=30)", "paper swaps")
		t.row(hdr...)
		for _, n := range qubits {
			swaps, globals, err := swapCounts(n, 25, cfg.Seed, locals, worst)
			if err != nil {
				return err
			}
			row := []any{n}
			for _, l := range locals {
				if l > n {
					row = append(row, "-")
				} else {
					row = append(row, swaps[l])
				}
			}
			g := "-"
			if 30 <= n {
				g = fmt.Sprint(globals[min(30, n)])
			}
			row = append(row, g, paperSwaps[n])
			t.row(row...)
		}
		t.flush()
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
