package verify

import (
	"fmt"
	"os"
	"time"

	"qusim/internal/ckpt"
	"qusim/internal/dist"
	"qusim/internal/mpi"
	"qusim/internal/schedule"
)

// The recovery scenario proves the checkpoint/restart path end to end: a
// distributed run is killed at EVERY collective entry in turn — which
// sweeps every stage boundary, including the barriers inside the snapshot
// protocol itself — restarted from the newest valid snapshot, and must
// finish with amplitudes bitwise identical to an uninterrupted run. A
// second sweep corrupts every payload-carrying exchange instead, proving
// the checksum layer feeds the same recovery loop.

// RecoveryReport summarizes the crash/corruption recovery sweep.
type RecoveryReport struct {
	CrashPoints   int // collective entries crash-tested
	CorruptPoints int // payload exchanges corruption-tested
	Restarts      int // recovery attempts summed over all runs
	Restored      int // attempts that resumed from a snapshot
	FaultEvents   int64
	Failures      []string
}

// Failed reports whether any recovery run misbehaved.
func (r *RecoveryReport) Failed() bool { return r != nil && len(r.Failures) > 0 }

// maxRecoveryPoints bounds the sweeps so a counter bug cannot loop the
// harness forever; real plans at harness scale stay far below it.
const maxRecoveryPoints = 512

// CheckRecovery runs the recovery sweeps on a seeded random circuit at the
// given rank count and returns the findings.
func CheckRecovery(opts Options, ranks int, logf func(string, ...any)) *RecoveryReport {
	rep := &RecoveryReport{}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
		logf("  FAILED: "+format, args...)
	}

	c := Random(RandomOptions{Qubits: opts.Qubits, Gates: opts.Gates, Seed: opts.Seed + 2000})
	l := c.N - 2
	if ranks != 4 || l < minLocalQubits(c) {
		// The sweep is written for the quick 4-rank geometry; widen here if
		// the harness ever needs other splits.
		fail("recovery sweep needs 4 ranks and l=%d ≥ %d local qubits", l, minLocalQubits(c))
		return rep
	}
	plan, err := schedule.Build(c, defaultScheduleOptions(l))
	if err != nil {
		fail("building recovery plan: %v", err)
		return rep
	}
	clean, err := dist.Run(plan, dist.Options{Ranks: ranks, Init: dist.InitZero, GatherState: true})
	if err != nil {
		fail("clean reference run: %v", err)
		return rep
	}

	// one recovery run with the given hard fault armed; returns whether the
	// fault actually fired (false ⇒ the sweep walked past the last
	// injection point and can stop).
	runOne := func(kind string, point int, fp *mpi.FaultPlan, fired func() bool) bool {
		dir, err := os.MkdirTemp("", "qverify-ckpt-*")
		if err != nil {
			fail("%s point %d: temp dir: %v", kind, point, err)
			return false
		}
		defer os.RemoveAll(dir)
		res, err := dist.Run(plan, dist.Options{
			Ranks: ranks, Init: dist.InitZero, GatherState: true,
			Faults:       fp,
			Checkpoint:   &ckpt.Policy{Dir: dir},
			CommDeadline: 30 * time.Second, // hangs become failures, never stalls
		})
		if err != nil {
			fail("%s point %d: run not recovered: %v", kind, point, err)
			return false
		}
		if !fired() {
			return false // injection point past the end of the run
		}
		if res.FaultEvents == 0 {
			fail("%s point %d: fault fired but FaultEvents == 0", kind, point)
		}
		if res.Restarts == 0 {
			fail("%s point %d: fault fired but no restart happened", kind, point)
		}
		rep.Restarts += res.Restarts
		rep.Restored += res.CheckpointsRestored
		rep.FaultEvents += res.FaultEvents
		for i := range clean.Amplitudes {
			if clean.Amplitudes[i] != res.Amplitudes[i] {
				fail("%s point %d: amplitude %d differs after recovery (%v vs %v)",
					kind, point, i, clean.Amplitudes[i], res.Amplitudes[i])
				break
			}
		}
		return true
	}

	// Sweep 1: kill a rank at every collective entry.
	for k := 0; k < maxRecoveryPoints; k++ {
		crash := &mpi.CrashFault{Rank: k % ranks, Collective: k}
		if !runOne("crash", k, &mpi.FaultPlan{Crash: crash}, crash.Fired) {
			break
		}
		rep.CrashPoints++
	}
	if rep.CrashPoints == 0 {
		fail("crash sweep never injected anything")
	}
	if rep.CrashPoints >= maxRecoveryPoints {
		fail("crash sweep did not terminate within %d points", maxRecoveryPoints)
	}

	// Sweep 2: corrupt every payload-carrying exchange.
	for e := 0; e < maxRecoveryPoints; e++ {
		corrupt := &mpi.CorruptFault{Rank: e % ranks, Exchange: e}
		if !runOne("corrupt", e, &mpi.FaultPlan{Corrupt: corrupt}, corrupt.Fired) {
			break
		}
		rep.CorruptPoints++
	}
	if rep.CorruptPoints == 0 {
		fail("corruption sweep never injected anything")
	}

	logf("  %d crash points + %d corruption points recovered (%d restarts, %d resumed from snapshots)",
		rep.CrashPoints, rep.CorruptPoints, rep.Restarts, rep.Restored)
	return rep
}
