package verify

import (
	"fmt"
	"math/rand"

	"qusim/internal/circuit"
	"qusim/internal/kernels"
	"qusim/internal/statevec"
)

// Metamorphic properties: correctness invariants that need no reference
// backend — unitarity keeps the norm at 1, algebraic gate identities hold on
// arbitrary states, trivially-commuting gates may be reordered, and a
// uniform qubit relabeling conjugates the output distribution. A violation
// localizes a bug even when every backend is wrong in the same way, which
// differential testing cannot see.

// Property is one named metamorphic check.
type Property struct {
	Name  string
	Check func() error
}

// metamorphicTol bounds the drift allowed from pure float noise; the
// checks run on ≤ a few hundred gates, far below accumulation at 1e-10.
const metamorphicTol = 1e-10

// Properties returns the full metamorphic suite on n qubits, seeded.
func Properties(n int, seed int64) []Property {
	return []Property{
		{"norm-preservation", func() error { return checkNormPreservation(n, seed) }},
		{"gate-identities", func() error { return checkGateIdentities(n, seed) }},
		{"inverse-round-trip", func() error { return checkInverseRoundTrip(n, seed) }},
		{"commuting-reorder", func() error { return checkCommutingReorder(n, seed) }},
		{"permutation-conjugation", func() error { return checkPermutationConjugation(n, seed) }},
	}
}

// runCircuit applies c gate-by-gate on v.
func runCircuit(v *statevec.Vector, c *circuit.Circuit) {
	for i := range c.Gates {
		g := &c.Gates[i]
		v.Apply(g.Matrix(), g.Qubits...)
	}
}

// randomState returns a seeded random normalized state.
func randomState(n int, rng *rand.Rand) *statevec.Vector {
	v := statevec.New(n)
	for i := range v.Amps {
		v.Amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	v.Renormalize()
	return v
}

// checkNormPreservation runs seeded random circuits through the Auto and
// Naive kernel paths and asserts Σ|α|² stays 1.
func checkNormPreservation(n int, seed int64) error {
	for trial := int64(0); trial < 4; trial++ {
		c := Random(RandomOptions{Qubits: n, Gates: 12 * n, Seed: seed + trial, DenseEntanglers: true})
		for _, b := range []Backend{Naive(), Kernel(kernels.Auto)} {
			amps, err := b.Run(c)
			if err != nil {
				return err
			}
			var norm float64
			for _, a := range amps {
				norm += real(a)*real(a) + imag(a)*imag(a)
			}
			if d := norm - 1; d > metamorphicTol || d < -metamorphicTol {
				return fmt.Errorf("%s: norm %v after %s", b.Name(), norm, c.Name)
			}
		}
	}
	return nil
}

// checkGateIdentities verifies algebraic identities on a random state: two
// gate sequences that are equal as operators must produce identical states.
func checkGateIdentities(n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed*31 + 7))
	a, b := rng.Intn(n), rng.Intn(n-1)
	if b >= a {
		b++
	}
	identities := []struct {
		name string
		lhs  []circuit.Gate
		rhs  []circuit.Gate
	}{
		{"HH=I", []circuit.Gate{circuit.NewH(a), circuit.NewH(a)}, nil},
		{"XX=I", []circuit.Gate{circuit.NewX(a), circuit.NewX(a)}, nil},
		{"SS=Z", []circuit.Gate{circuit.NewS(a), circuit.NewS(a)}, []circuit.Gate{circuit.NewZ(a)}},
		{"TT=S", []circuit.Gate{circuit.NewT(a), circuit.NewT(a)}, []circuit.Gate{circuit.NewS(a)}},
		{"T⁴=S²", []circuit.Gate{circuit.NewT(a), circuit.NewT(a), circuit.NewT(a), circuit.NewT(a)},
			[]circuit.Gate{circuit.NewS(a), circuit.NewS(a)}},
		{"XHalf²=X", []circuit.Gate{circuit.NewXHalf(a), circuit.NewXHalf(a)}, []circuit.Gate{circuit.NewX(a)}},
		{"YHalf²=Y", []circuit.Gate{circuit.NewYHalf(a), circuit.NewYHalf(a)}, []circuit.Gate{circuit.NewY(a)}},
		{"CZ-symmetry", []circuit.Gate{circuit.NewCZ(a, b)}, []circuit.Gate{circuit.NewCZ(b, a)}},
		{"CNOT²=I", []circuit.Gate{circuit.NewCNOT(a, b), circuit.NewCNOT(a, b)}, nil},
		{"SWAP²=I", []circuit.Gate{circuit.NewSwap(a, b), circuit.NewSwap(b, a)}, nil},
		{"HZH=X", []circuit.Gate{circuit.NewH(a), circuit.NewZ(a), circuit.NewH(a)},
			[]circuit.Gate{circuit.NewX(a)}},
	}
	for _, id := range identities {
		base := randomState(n, rng)
		lhs, rhs := base.Clone(), base.Clone()
		for _, g := range id.lhs {
			lhs.Apply(g.Matrix(), g.Qubits...)
		}
		for _, g := range id.rhs {
			rhs.Apply(g.Matrix(), g.Qubits...)
		}
		if d := lhs.MaxDiff(rhs); d > metamorphicTol {
			return fmt.Errorf("identity %s violated on qubits (%d,%d): max diff %g", id.name, a, b, d)
		}
	}
	return nil
}

// checkInverseRoundTrip runs a random circuit followed by its exact inverse
// and asserts the state returns to |0…0⟩.
func checkInverseRoundTrip(n int, seed int64) error {
	for trial := int64(0); trial < 4; trial++ {
		c := Random(RandomOptions{Qubits: n, Gates: 10 * n, Seed: seed + 100 + trial, DenseEntanglers: true})
		inv, err := Inverse(c)
		if err != nil {
			return err
		}
		v := statevec.New(n)
		runCircuit(v, c)
		runCircuit(v, inv)
		want := statevec.New(n)
		if d := v.MaxDiff(want); d > metamorphicTol {
			return fmt.Errorf("%s ∘ inverse differs from identity by %g", c.Name, d)
		}
	}
	return nil
}

// checkCommutingReorder swaps adjacent gates acting on disjoint qubits —
// a reorder every scheduler stage is allowed to make — and asserts the
// final state is unchanged.
func checkCommutingReorder(n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed*17 + 3))
	for trial := 0; trial < 4; trial++ {
		c := Random(RandomOptions{Qubits: n, Gates: 12 * n, Seed: seed + 200 + int64(trial), DenseEntanglers: true})
		re := circuit.NewCircuit(n)
		re.Name = c.Name + "-reordered"
		re.Gates = append(re.Gates, c.Gates...)
		swaps := 0
		for pass := 0; pass < 3; pass++ {
			for i := 0; i+1 < len(re.Gates); i++ {
				if rng.Intn(2) == 0 {
					continue
				}
				if !disjointQubits(&re.Gates[i], &re.Gates[i+1]) {
					continue
				}
				re.Gates[i], re.Gates[i+1] = re.Gates[i+1], re.Gates[i]
				swaps++
			}
		}
		if swaps == 0 {
			continue
		}
		v1, v2 := statevec.New(n), statevec.New(n)
		runCircuit(v1, c)
		runCircuit(v2, re)
		if d := v1.MaxDiff(v2); d > metamorphicTol {
			return fmt.Errorf("%s: %d commuting swaps changed the state by %g", c.Name, swaps, d)
		}
	}
	return nil
}

func disjointQubits(a, b *circuit.Gate) bool {
	for _, qa := range a.Qubits {
		for _, qb := range b.Qubits {
			if qa == qb {
				return false
			}
		}
	}
	return true
}

// checkPermutationConjugation relabels the circuit's qubits by a random
// permutation π and asserts the output transforms covariantly:
// amplitudes satisfy w[π(b)] = v[b] (|0…0⟩ is permutation-invariant).
func checkPermutationConjugation(n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed*13 + 5))
	for trial := 0; trial < 4; trial++ {
		c := Random(RandomOptions{Qubits: n, Gates: 10 * n, Seed: seed + 300 + int64(trial), DenseEntanglers: true})
		perm := rng.Perm(n)
		rc := Relabel(c, perm)
		v, w := statevec.New(n), statevec.New(n)
		runCircuit(v, c)
		runCircuit(w, rc)
		var maxd float64
		for bb := range v.Amps {
			d := v.Amps[bb] - w.Amps[PermuteIndex(bb, perm)]
			if ab := real(d)*real(d) + imag(d)*imag(d); ab > maxd {
				maxd = ab
			}
		}
		if maxd > metamorphicTol*metamorphicTol {
			return fmt.Errorf("%s: permutation conjugation violated under π=%v", c.Name, perm)
		}
	}
	return nil
}
