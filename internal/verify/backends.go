package verify

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"

	"qusim/internal/circuit"
	"qusim/internal/dist"
	"qusim/internal/f32vec"
	"qusim/internal/kernels"
	"qusim/internal/mpi"
	"qusim/internal/oocvec"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
)

// Backend is one execution path of the simulator. Run simulates c from
// |0…0⟩ and returns the final amplitudes in logical qubit order (qubit q =
// bit q of the index), so any two backends are directly comparable
// amplitude-for-amplitude.
type Backend interface {
	Name() string
	Run(c *circuit.Circuit) ([]complex128, error)
}

// ErrUnsupported marks a circuit a backend cannot execute — e.g. the
// per-gate baseline scheme given a dense multi-qubit gate on a global
// qubit, or a distributed split that leaves no local qubits. The
// differential engine records these as skips, not failures.
var ErrUnsupported = errors.New("verify: circuit unsupported by backend")

// kernel-variant backends ----------------------------------------------------

type kernelBackend struct {
	name    string
	variant kernels.Variant
	dense   bool // bypass the diagonal fast path (pure reference semantics)
}

// Naive returns the reference backend: the two-state-vector naive kernel
// with every gate applied as a dense matrix, bypassing the diagonal and
// specialization fast paths. This is the closest the repo has to a direct
// (1⊗…⊗U⊗…⊗1)|Ψ⟩ evaluation and anchors every differential comparison.
func Naive() Backend {
	return &kernelBackend{name: "statevec/naive-dense", variant: kernels.Naive, dense: true}
}

// Kernel returns a single-node backend running the given kernel variant
// through the standard Apply path (diagonal fast paths included).
func Kernel(v kernels.Variant) Backend {
	return &kernelBackend{name: "kernels/" + v.String(), variant: v}
}

func (b *kernelBackend) Name() string { return b.name }

func (b *kernelBackend) Run(c *circuit.Circuit) ([]complex128, error) {
	v := statevec.New(c.N)
	v.Variant = b.variant
	for i := range c.Gates {
		g := &c.Gates[i]
		if b.dense {
			v.ApplyDense(g.Matrix(), g.Qubits...)
		} else {
			v.Apply(g.Matrix(), g.Qubits...)
		}
	}
	return v.Amps, nil
}

// scheduled single-node backend ----------------------------------------------

type scheduledBackend struct {
	name    string
	globals int
	mkOpts  func(l int) schedule.Options
}

// Scheduled returns a backend that schedules the circuit with the paper's
// default options at l = n − globals local qubits and executes the fused
// plan on a single node, un-permuting the tracked qubit→bit-location
// mapping before comparison.
func Scheduled(globals int) Backend {
	return &scheduledBackend{
		name:    fmt.Sprintf("schedule/fused-g%d", globals),
		globals: globals,
		mkOpts:  defaultScheduleOptions,
	}
}

// ScheduledWith is Scheduled with custom schedule options (ablations:
// lowest-order swap policy, clustering off, …).
func ScheduledWith(name string, globals int, mkOpts func(l int) schedule.Options) Backend {
	return &scheduledBackend{name: name, globals: globals, mkOpts: mkOpts}
}

func defaultScheduleOptions(l int) schedule.Options {
	o := schedule.DefaultOptions(l)
	if o.KMax > l {
		o.KMax = l
	}
	return o
}

func (b *scheduledBackend) Name() string { return b.name }

func (b *scheduledBackend) Run(c *circuit.Circuit) ([]complex128, error) {
	l := c.N - b.globals
	if l < minLocalQubits(c) {
		return nil, ErrUnsupported
	}
	plan, err := schedule.Build(c, b.mkOpts(l))
	if err != nil {
		return nil, err
	}
	v := statevec.New(c.N)
	if err := plan.Run(v); err != nil {
		return nil, err
	}
	return unpermute(plan, v.Amps), nil
}

// out-of-core backend ---------------------------------------------------------

type oocBackend struct {
	name     string
	globals  int
	prefetch int
}

// OutOfCore returns a backend that schedules at l = n − globals and
// executes the plan through the file-backed out-of-core engine, paging the
// state through 2^globals file chunks. prefetch > 0 arms the circuit-aware
// prefetch pipeline (fused stage passes, asynchronous I/O); 0 keeps the
// reactive one-pass-per-op baseline — enrolling both in the matrix
// cross-checks every paged execution mode against the in-memory reference.
func OutOfCore(globals, prefetch int) Backend {
	name := fmt.Sprintf("oocvec/g%d-reactive", globals)
	if prefetch > 0 {
		name = fmt.Sprintf("oocvec/g%d-prefetch%d", globals, prefetch)
	}
	return &oocBackend{name: name, globals: globals, prefetch: prefetch}
}

func (b *oocBackend) Name() string { return b.name }

func (b *oocBackend) Run(c *circuit.Circuit) ([]complex128, error) {
	l := c.N - b.globals
	if l < 1 || l < minLocalQubits(c) {
		return nil, ErrUnsupported
	}
	plan, err := schedule.Build(c, defaultScheduleOptions(l))
	if err != nil {
		return nil, err
	}
	v, err := oocvec.New(c.N, l, "")
	if err != nil {
		return nil, err
	}
	defer v.Close()
	v.SetPrefetch(b.prefetch)
	if err := v.Run(plan); err != nil {
		return nil, err
	}
	amps, err := v.Amplitudes()
	if err != nil {
		return nil, err
	}
	return unpermute(plan, amps), nil
}

// distributed backend ---------------------------------------------------------

type distBackend struct {
	name   string
	ranks  int
	faults *mpi.FaultPlan
	events int64 // cumulative injected perturbations across Run calls
}

// Distributed returns a backend that schedules at l = n − log2(ranks) and
// executes across ranks simulated MPI ranks via dist.Run, gathering the
// full state.
func Distributed(ranks int) Backend {
	return &distBackend{name: fmt.Sprintf("dist/ranks%d", ranks), ranks: ranks}
}

// DistributedFaulty is Distributed with MPI fault injection armed.
func DistributedFaulty(ranks int, fp *mpi.FaultPlan) Backend {
	return &distBackend{name: fmt.Sprintf("dist/ranks%d+faults", ranks), ranks: ranks, faults: fp}
}

func (b *distBackend) Name() string { return b.name }

func (b *distBackend) Run(c *circuit.Circuit) ([]complex128, error) {
	g := bits.TrailingZeros(uint(b.ranks))
	l := c.N - g
	if l < minLocalQubits(c) {
		return nil, ErrUnsupported
	}
	plan, err := schedule.Build(c, defaultScheduleOptions(l))
	if err != nil {
		return nil, err
	}
	res, err := dist.Run(plan, dist.Options{
		Ranks: b.ranks, Init: dist.InitZero, GatherState: true, Faults: b.faults,
	})
	if err != nil {
		return nil, err
	}
	b.events += res.FaultEvents
	return unpermute(plan, res.Amplitudes), nil
}

// permuted-layout backend -----------------------------------------------------

type permutedBackend struct {
	name  string
	seed  int64
	every int
}

// Permuted returns a backend that exercises the single-pass bit-permutation
// kernel: every `every` gates it draws a seeded random relabeling of all n
// bit positions and applies it through statevec.PermuteBits (the compiled
// gather path), then keeps executing gates at their relocated positions.
// The final state is restored to logical order through
// PermuteBitsSwapChain — the pre-optimization transposition-chain
// implementation — so a divergence from the naive reference pins the
// gather kernel against the chain on the same random permutations. The
// fused perm+swap path gets the same treatment under MPI faults via the
// DistributedFaulty scenarios (the scheduler now emits fused swaps).
func Permuted(seed int64) Backend {
	return &permutedBackend{name: "statevec/permuted-layout", seed: seed, every: 4}
}

func (b *permutedBackend) Name() string { return b.name }

func (b *permutedBackend) Run(c *circuit.Circuit) ([]complex128, error) {
	rng := rand.New(rand.NewSource(b.seed))
	v := statevec.New(c.N)
	pos := make([]int, c.N) // pos[q] = current bit location of logical qubit q
	for q := range pos {
		pos[q] = q
	}
	mapped := make([]int, 0, 4)
	for i := range c.Gates {
		if i > 0 && i%b.every == 0 {
			perm := rng.Perm(c.N)
			v.PermuteBits(perm)
			for q := range pos {
				pos[q] = perm[pos[q]]
			}
		}
		g := &c.Gates[i]
		mapped = mapped[:0]
		for _, q := range g.Qubits {
			mapped = append(mapped, pos[q])
		}
		v.Apply(g.Matrix(), mapped...)
	}
	restore := make([]int, c.N) // bit pos[q] goes back to bit q
	for q, p := range pos {
		restore[p] = q
	}
	v.PermuteBitsSwapChain(restore)
	return v.Amps, nil
}

// per-gate baseline backend ---------------------------------------------------

type baselineBackend struct {
	name   string
	ranks  int
	spec1q bool
	faults *mpi.FaultPlan
	events int64 // cumulative injected perturbations across Run calls
}

// Baseline returns the De Raedt-style per-gate backend ([19]/[5]): fixed
// qubit↔location layout, two pairwise half-vector exchanges per dense gate
// on a global qubit, CZ/CPhase specialization on. Circuits with dense
// multi-qubit gates on global qubits are reported ErrUnsupported (the
// scheme cannot execute them).
func Baseline(ranks int) Backend {
	return &baselineBackend{name: fmt.Sprintf("baseline/ranks%d", ranks), ranks: ranks, spec1q: false}
}

// BaselineFaulty is Baseline with MPI fault injection armed.
func BaselineFaulty(ranks int, fp *mpi.FaultPlan) Backend {
	return &baselineBackend{name: fmt.Sprintf("baseline/ranks%d+faults", ranks), ranks: ranks, faults: fp}
}

func (b *baselineBackend) Name() string { return b.name }

func (b *baselineBackend) Run(c *circuit.Circuit) ([]complex128, error) {
	g := bits.TrailingZeros(uint(b.ranks))
	l := c.N - g
	if l < 1 {
		return nil, ErrUnsupported
	}
	for i := range c.Gates {
		gt := &c.Gates[i]
		if gt.K() < 2 || gt.IsDiagonal() {
			continue
		}
		for _, q := range gt.Qubits {
			if q >= l {
				return nil, ErrUnsupported
			}
		}
	}
	res, err := dist.RunBaseline(c, dist.BaselineOptions{
		Ranks: b.ranks, Init: dist.InitZero,
		Specialize2Q: true, Specialize1Q: b.spec1q,
		GatherState: true, Faults: b.faults,
	})
	if err != nil {
		return nil, err
	}
	b.events += res.FaultEvents
	return res.Amplitudes, nil
}

// single-precision backends ---------------------------------------------------

type f32Backend struct {
	name    string
	globals int // < 0: per-gate path; ≥ 0: scheduled at l = n − globals
}

// F32 returns the single-precision per-gate backend: every gate runs
// through the complex64 kernel suite and the final state is widened back to
// complex128. It joins the matrix under the separate epsilon tolerance of
// Options.F32Tol — float32 amplitudes cannot meet the exact-path 1e-10 bar.
func F32() Backend {
	return &f32Backend{name: "f32vec/per-gate", globals: -1}
}

// F32Scheduled is F32 through the fused scheduler at l = n − globals —
// the paper's Sec. 5 outlook configuration (single precision + two-swap
// schedules).
func F32Scheduled(globals int) Backend {
	return &f32Backend{name: fmt.Sprintf("f32vec/fused-g%d", globals), globals: globals}
}

func (b *f32Backend) Name() string { return b.name }

func (b *f32Backend) Run(c *circuit.Circuit) ([]complex128, error) {
	if b.globals < 0 {
		v := f32vec.New(c.N)
		for i := range c.Gates {
			g := &c.Gates[i]
			v.ApplyGate(g.Matrix(), g.Qubits...)
		}
		return v.ToDouble().Amps, nil
	}
	l := c.N - b.globals
	if l < minLocalQubits(c) {
		return nil, ErrUnsupported
	}
	plan, err := schedule.Build(c, defaultScheduleOptions(l))
	if err != nil {
		return nil, err
	}
	v := f32vec.New(c.N)
	if err := v.RunPlan(plan); err != nil {
		return nil, err
	}
	return unpermute(plan, v.ToDouble().Amps), nil
}

// faultCounter is implemented by backends that run under a FaultPlan; the
// harness sums the injected perturbations for reporting.
type faultCounter interface{ FaultEvents() int64 }

func (b *distBackend) FaultEvents() int64     { return b.events }
func (b *baselineBackend) FaultEvents() int64 { return b.events }

// minLocalQubits is the smallest l the scheduler can place c at: every
// dense gate needs all its qubits brought local, so l must cover the
// widest non-diagonal gate. Below that the stage partition cannot
// converge and the split is reported ErrUnsupported, not an error.
func minLocalQubits(c *circuit.Circuit) int {
	min := 1
	for i := range c.Gates {
		g := &c.Gates[i]
		if k := g.K(); k > min && !g.IsDiagonal() {
			min = k
		}
	}
	return min
}

// Unpermute maps plan-physical amplitudes back to logical qubit order —
// exported for harnesses that run an engine directly (not through a
// Backend) and need to compare its raw state against a reference.
func Unpermute(plan *schedule.Plan, phys []complex128) []complex128 {
	return unpermute(plan, phys)
}

// unpermute maps plan-physical amplitudes back to logical qubit order.
func unpermute(plan *schedule.Plan, phys []complex128) []complex128 {
	out := make([]complex128, len(phys))
	for b := range out {
		out[b] = phys[plan.PermutedIndex(b)]
	}
	return out
}
