package verify

import (
	"fmt"
	"math"
	"math/rand"

	"qusim/internal/circuit"
)

// Seeded circuit generation for the differential matrix. Unlike
// circuit.RandomCircuit these draw only from the text-serializable gate
// set, so every divergence can be reported as a replayable reproducer via
// circuit.WriteText, and every generated circuit has an exact inverse for
// the round-trip metamorphic property.

// RandomOptions configures Random.
type RandomOptions struct {
	Qubits int
	Gates  int
	Seed   int64
	// DenseEntanglers includes CNOT and SWAP — dense two-qubit gates the
	// per-gate baseline scheme cannot execute on global qubits (such
	// circuits are skipped by that backend). Without it the entanglers are
	// the diagonal CZ/CPhase, matching the supremacy-circuit structure, and
	// every backend can run the circuit.
	DenseEntanglers bool
}

// Random returns a seeded random circuit over the serializable gate set
// with roughly one third two-qubit entanglers.
func Random(opts RandomOptions) *circuit.Circuit {
	n, gates := opts.Qubits, opts.Gates
	if n < 2 {
		panic("verify: Random needs at least 2 qubits")
	}
	rng := rand.New(rand.NewSource(opts.Seed*2654435761 + 1))
	c := circuit.NewCircuit(n)
	kind := "cz"
	if opts.DenseEntanglers {
		kind = "dense"
	}
	c.Name = fmt.Sprintf("random-%s_n%d_g%d_s%d", kind, n, gates, opts.Seed)
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		p := rng.Intn(n - 1)
		if p >= q {
			p++
		}
		theta := (rng.Float64()*2 - 1) * math.Pi
		switch rng.Intn(12) {
		case 0:
			c.Append(circuit.NewH(q))
		case 1:
			c.Append(circuit.NewX(q))
		case 2:
			c.Append(circuit.NewY(q))
		case 3:
			c.Append(circuit.NewS(q))
		case 4:
			c.Append(circuit.NewT(q))
		case 5:
			c.Append(circuit.NewXHalf(q))
		case 6:
			c.Append(circuit.NewYHalf(q))
		case 7:
			c.Append(circuit.NewRz(q, theta))
		case 8:
			c.Append(circuit.NewPhase(q, theta))
		case 9, 10:
			if opts.DenseEntanglers && rng.Intn(2) == 0 {
				if rng.Intn(2) == 0 {
					c.Append(circuit.NewCNOT(q, p))
				} else {
					c.Append(circuit.NewSwap(q, p))
				}
			} else {
				c.Append(circuit.NewCZ(q, p))
			}
		case 11:
			c.Append(circuit.NewCPhase(q, p, theta))
		}
	}
	return c
}

// Library returns the named circuit families drawn into the differential
// matrix alongside the random circuits: QFT, GHZ, Bernstein-Vazirani,
// Grover, and a supremacy instance on the most-square grid for n qubits.
func Library(n int, seed int64) []*circuit.Circuit {
	rows, cols := circuit.GridForQubits(n)
	sup := circuit.Supremacy(circuit.SupremacyOptions{
		Rows: rows, Cols: cols, Depth: 12, Seed: seed,
	})
	grover := circuit.Grover(n, int(uint64(seed)%(1<<uint(n))), 2)
	return []*circuit.Circuit{
		circuit.QFT(n),
		circuit.GHZ(n),
		circuit.BernsteinVazirani(n, int(uint64(seed)*7%(1<<uint(n-1)))),
		grover,
		sup,
	}
}

// Catalog returns small instances of the cmd/qbench workload families —
// QAOA MaxCut on a ring, the hardware-efficient VQE ansatz, and a
// Pauli-noise-injected supremacy trajectory — so every backend in the
// differential matrix is exercised on the exact circuit shapes the
// benchmark catalog times. All three draw only from the serializable,
// invertible gate set.
func Catalog(n int, seed int64) []*circuit.Circuit {
	sets := circuit.SweepParams(seed+300, 2, 4)
	qaoa := circuit.QAOAMaxCutRing(n, sets[1][:2], sets[1][2:])
	vqe := circuit.HardwareEfficientAnsatz(n, 2, circuit.SweepParams(seed+400, 2, 2*n)[1])
	rows, cols := circuit.GridForQubits(n)
	sup := circuit.Supremacy(circuit.SupremacyOptions{
		Rows: rows, Cols: cols, Depth: 10, Seed: seed + 200,
	})
	return []*circuit.Circuit{
		qaoa,
		vqe,
		circuit.InjectPauliNoise(sup, 0.02, seed+500),
	}
}

// Inverse returns the exact inverse circuit, for the run-then-undo
// metamorphic property. All serializable kinds plus custom diagonal and
// unitary gates are supported; it errors on kinds it cannot invert.
func Inverse(c *circuit.Circuit) (*circuit.Circuit, error) {
	inv := circuit.NewCircuit(c.N)
	inv.Name = c.Name + "-inverse"
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := c.Gates[i]
		switch g.Kind {
		case circuit.KindH, circuit.KindX, circuit.KindY, circuit.KindZ,
			circuit.KindCZ, circuit.KindCNOT, circuit.KindSwap:
			inv.Append(g) // self-inverse
		case circuit.KindS:
			inv.Append(circuit.NewPhase(g.Qubits[0], -math.Pi/2))
		case circuit.KindT:
			inv.Append(circuit.NewPhase(g.Qubits[0], -math.Pi/4))
		case circuit.KindXHalf:
			// (X^1/2)⁻¹ = X^3/2 = X · X^1/2.
			inv.Append(circuit.NewXHalf(g.Qubits[0]), circuit.NewX(g.Qubits[0]))
		case circuit.KindYHalf:
			inv.Append(circuit.NewYHalf(g.Qubits[0]), circuit.NewY(g.Qubits[0]))
		case circuit.KindRz:
			inv.Append(circuit.NewRz(g.Qubits[0], -g.Param))
		case circuit.KindPhase:
			inv.Append(circuit.NewPhase(g.Qubits[0], -g.Param))
		case circuit.KindCPhase:
			inv.Append(circuit.NewCPhase(g.Qubits[0], g.Qubits[1], -g.Param))
		default:
			return nil, fmt.Errorf("verify: cannot invert gate %v", g)
		}
	}
	return inv, nil
}

// Relabel returns the circuit with qubit q renamed to perm[q] — the
// conjugation side of the qubit-permutation metamorphic property.
func Relabel(c *circuit.Circuit, perm []int) *circuit.Circuit {
	out := circuit.NewCircuit(c.N)
	out.Name = c.Name + "-relabeled"
	for _, g := range c.Gates {
		qs := make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			qs[i] = perm[q]
		}
		ng := g
		ng.Qubits = qs
		out.Append(ng)
	}
	return out
}

// PermuteIndex moves bit q of b to bit perm[q] — how basis states transform
// under Relabel.
func PermuteIndex(b int, perm []int) int {
	out := 0
	for q, p := range perm {
		if b&(1<<q) != 0 {
			out |= 1 << p
		}
	}
	return out
}
