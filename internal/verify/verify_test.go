package verify

import (
	"bytes"
	"strings"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/kernels"
)

func TestHarnessCleanRun(t *testing.T) {
	rep, err := Run(Options{Quick: true, Seed: 42, Qubits: 7, Circuits: 8, FaultCircuits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("harness found violations on a clean tree:\n%s", rep.String())
	}
	if rep.MetamorphicRun != 5 || len(rep.MetamorphicFailed) != 0 {
		t.Errorf("metamorphic: ran %d, failed %v", rep.MetamorphicRun, rep.MetamorphicFailed)
	}
	if rep.FaultEvents == 0 {
		t.Error("fault scenarios injected no perturbations")
	}
	if rep.FaultScenarios < 1 {
		t.Error("no fault scenarios ran")
	}
	rec := rep.Recovery
	if rec == nil {
		t.Fatal("no recovery sweep ran")
	}
	if rec.CrashPoints == 0 || rec.CorruptPoints == 0 {
		t.Errorf("recovery sweep exercised %d crash and %d corruption points", rec.CrashPoints, rec.CorruptPoints)
	}
	if rec.Restarts < rec.CrashPoints+rec.CorruptPoints {
		t.Errorf("every injected fault should force a restart: %d restarts for %d points",
			rec.Restarts, rec.CrashPoints+rec.CorruptPoints)
	}
	if rec.Restored == 0 {
		t.Error("no recovery attempt ever resumed from a snapshot")
	}
	if rec.FaultEvents == 0 {
		t.Error("recovery sweep injected no fault events")
	}
}

func TestMatrixCoversRequiredPairs(t *testing.T) {
	_, quick := Matrix(true)
	if len(quick) < 4 {
		t.Errorf("quick matrix has %d backend pairs, acceptance needs ≥ 4", len(quick))
	}
	_, full := Matrix(false)
	if len(full) <= len(quick) {
		t.Errorf("full matrix (%d) should extend the quick matrix (%d)", len(full), len(quick))
	}
}

// buggyBackend wraps the naive path but flips the state's sign whenever the
// circuit contains a T gate — a deterministic seeded bug the engine must
// detect and shrink to a minimal reproducer.
type buggyBackend struct{ inner Backend }

func (b *buggyBackend) Name() string { return "buggy" }
func (b *buggyBackend) Run(c *circuit.Circuit) ([]complex128, error) {
	amps, err := b.inner.Run(c)
	if err != nil {
		return nil, err
	}
	if c.CountKind(circuit.KindT) > 0 {
		for i := range amps {
			amps[i] = -amps[i]
		}
	}
	return amps, nil
}

func TestEngineDetectsAndMinimizesDivergence(t *testing.T) {
	eng := NewEngine(Naive(), []Backend{&buggyBackend{inner: Kernel(kernels.Specialized)}}, 1e-10)
	c := Random(RandomOptions{Qubits: 5, Gates: 60, Seed: 9})
	if c.CountKind(circuit.KindT) == 0 {
		t.Fatal("seed produced no T gates; pick another seed")
	}
	if err := eng.Check(c); err != nil {
		t.Fatal(err)
	}
	if !eng.Failed() {
		t.Fatal("engine missed an injected bug")
	}
	div := eng.Divergences[0]
	if div.Backend != "buggy" || div.MaxDelta < 0.1 {
		t.Errorf("divergence misattributed: %+v", div)
	}
	// Sign flip leaves |⟨a|b⟩|² = 1: the fidelity channel must see nothing
	// while the amplitude channel fires — that separation is the point of
	// reporting both.
	if div.FidDelta > 1e-9 {
		t.Errorf("global sign flip should be fidelity-invisible, got |1-F| = %g", div.FidDelta)
	}
	// The bug triggers on any single T gate, so delta debugging must get
	// down to exactly one gate.
	if div.ReproducerGates != 1 {
		t.Errorf("minimized reproducer has %d gates, want 1:\n%s", div.ReproducerGates, div.Reproducer)
	}
	// And the reproducer must be replayable through the text format.
	repro, err := circuit.ReadText(strings.NewReader(div.Reproducer))
	if err != nil {
		t.Fatalf("reproducer does not parse: %v\n%s", err, div.Reproducer)
	}
	if repro.CountKind(circuit.KindT) != 1 {
		t.Errorf("reproducer lost the triggering T gate:\n%s", div.Reproducer)
	}
}

func TestRandomCircuitsSerializable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := Random(RandomOptions{Qubits: 6, Gates: 50, Seed: seed, DenseEntanglers: seed%2 == 0})
		var buf bytes.Buffer
		if err := circuit.WriteText(&buf, c); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		again, err := circuit.ReadText(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(again.Gates) != len(c.Gates) {
			t.Fatalf("seed %d: round trip %d -> %d gates", seed, len(c.Gates), len(again.Gates))
		}
	}
}

func TestRandomCircuitsDeterministic(t *testing.T) {
	a := Random(RandomOptions{Qubits: 6, Gates: 40, Seed: 3})
	b := Random(RandomOptions{Qubits: 6, Gates: 40, Seed: 3})
	if a.String() != b.String() {
		t.Error("same seed produced different circuits")
	}
	c := Random(RandomOptions{Qubits: 6, Gates: 40, Seed: 4})
	if a.String() == c.String() {
		t.Error("different seeds produced identical circuits")
	}
}

func TestInverseIsExact(t *testing.T) {
	// Directly exercised per-kind (the metamorphic property covers the
	// composite): every serializable kind times its inverse is identity.
	c := circuit.NewCircuit(3)
	c.Append(
		circuit.NewH(0), circuit.NewX(1), circuit.NewY(2), circuit.NewZ(0),
		circuit.NewS(1), circuit.NewT(2), circuit.NewXHalf(0), circuit.NewYHalf(1),
		circuit.NewRz(2, 0.7), circuit.NewPhase(0, -1.2), circuit.NewCZ(0, 1),
		circuit.NewCPhase(1, 2, 2.1), circuit.NewCNOT(0, 2), circuit.NewSwap(1, 2),
	)
	inv, err := Inverse(c)
	if err != nil {
		t.Fatal(err)
	}
	whole := circuit.NewCircuit(3)
	whole.Gates = append(append(whole.Gates, c.Gates...), inv.Gates...)
	amps, err := Naive().Run(whole)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(amps))
	want[0] = 1
	if d := MaxAmpDelta(amps, want); d > 1e-12 {
		t.Errorf("circuit ∘ inverse deviates from identity by %g", d)
	}
}

func TestMetamorphicPropertiesPass(t *testing.T) {
	for _, p := range Properties(6, 11) {
		if err := p.Check(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPermuteIndexRoundTrip(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	inv := make([]int, len(perm))
	for q, p := range perm {
		inv[p] = q
	}
	for b := 0; b < 16; b++ {
		if got := PermuteIndex(PermuteIndex(b, perm), inv); got != b {
			t.Fatalf("PermuteIndex not invertible: %d -> %d", b, got)
		}
	}
}

func TestBaselineSkipsDenseGlobalGates(t *testing.T) {
	c := circuit.NewCircuit(6)
	c.Append(circuit.NewCNOT(0, 5)) // dense 2-qubit touching a global qubit at ranks=4 (l=4)
	_, err := Baseline(4).Run(c)
	if err != ErrUnsupported {
		t.Errorf("want ErrUnsupported, got %v", err)
	}
	c2 := circuit.NewCircuit(6)
	c2.Append(circuit.NewCZ(0, 5)) // diagonal: specialization handles it
	if _, err := Baseline(4).Run(c2); err != nil {
		t.Errorf("CZ on global qubit should be supported: %v", err)
	}
}

func TestF32BackendsEnrolledInMatrix(t *testing.T) {
	quick := MatrixF32(true)
	if len(quick) < 2 {
		t.Errorf("quick f32 matrix has %d backends, want ≥ 2 (per-gate + scheduled)", len(quick))
	}
	full := MatrixF32(false)
	if len(full) <= len(quick) {
		t.Errorf("full f32 matrix (%d) should extend the quick matrix (%d)", len(full), len(quick))
	}
	rep, err := Run(Options{Quick: true, Seed: 7, Qubits: 6, Circuits: 4, FaultCircuits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.F32 == nil {
		t.Fatal("harness ran no single-precision phase")
	}
	if rep.F32.Failed() {
		t.Fatalf("f32 backends diverged beyond tolerance:\n%s", rep.F32.Summary())
	}
	if len(rep.F32.Pairs) == 0 {
		t.Error("f32 engine compared no circuit pairs")
	}
	if !strings.Contains(rep.String(), "f32vec/per-gate") {
		t.Error("report does not mention the f32 backend")
	}
}

// TestF32EngineCatchesStructuralBug plants a deterministic bug behind the
// single-precision backend and checks the epsilon-tolerant engine still
// detects it: the loose tolerance must not be so loose it passes O(1)
// structural errors.
func TestF32EngineCatchesStructuralBug(t *testing.T) {
	eng := NewEngine(Naive(), []Backend{&buggyBackend{inner: F32()}}, 5e-4)
	c := Random(RandomOptions{Qubits: 5, Gates: 60, Seed: 9})
	if err := eng.Check(c); err != nil {
		t.Fatal(err)
	}
	if !eng.Failed() {
		t.Fatal("epsilon-tolerant engine missed a sign-flip bug")
	}
}
