// Package verify is the differential + metamorphic verification subsystem:
// the machinery that proves the repo's independently-optimized execution
// paths — naive statevec, specialized/generated kernels, scheduled fused
// plans, the distributed global-to-local swap engine at several (g, l)
// splits, and the De Raedt-style per-gate baseline — are exact
// implementations of the same (1⊗…⊗U⊗…⊗1)|Ψ⟩ semantics.
//
// Three layers:
//
//   - The differential engine (diff.go) runs seeded random circuits and
//     library/supremacy instances through every backend pair and reports
//     max-amplitude and fidelity deltas, minimizing a replayable text
//     reproducer on divergence.
//   - The metamorphic layer (metamorphic.go) checks invariants that need
//     no reference: norm preservation, gate identities (HH=I, T⁴=S², CZ
//     symmetry, …), commuting-gate reorder invariance and
//     qubit-permutation conjugation.
//   - Fault scenarios rerun the distributed backends under the seeded
//     adversity of mpi.FaultPlan (delayed posts, out-of-order delivery,
//     barrier jitter) and demand bit-identical agreement — validating the
//     communication layer off the happy path.
//   - The recovery sweep (recovery.go) kills a rank at every collective
//     entry and corrupts every payload exchange of a checkpointed
//     distributed run, then demands that restart-from-snapshot ends
//     bitwise identical to the uninterrupted run.
//
// cmd/qverify exposes the whole harness for CI and soak runs.
package verify

import (
	"fmt"
	"io"
	"strings"

	"qusim/internal/kernels"
	"qusim/internal/mpi"
)

// Options configures a harness run.
type Options struct {
	// Qubits sizes every generated circuit (default 8 quick / 10 full).
	Qubits int
	// Circuits is the number of seeded random circuits in the matrix
	// (default 20 quick / 40 full); library circuits are added on top.
	Circuits int
	// Gates per random circuit (default 6·Qubits).
	Gates int
	// Seed derives every circuit and fault seed; runs replay exactly.
	Seed int64
	// Tol is the divergence tolerance on max-amplitude delta.
	Tol float64
	// F32Tol is the tolerance for the single-precision backends, which are
	// compared in a separate epsilon-tolerant engine: float32 carries ~7
	// decimal digits, and the deviation grows with circuit depth, so the
	// default 5e-4 covers the harness's deepest random circuits with margin
	// while still catching any structural bug (wrong amplitude, wrong
	// position), which produces O(1) deltas.
	F32Tol float64
	// Quick trims the backend matrix and circuit count for CI.
	Quick bool
	// FaultCircuits is the number of circuits rerun under fault injection
	// (default 3 quick / 6 full).
	FaultCircuits int
	// Log, when non-nil, receives per-phase progress lines.
	Log io.Writer
}

func (o *Options) setDefaults() {
	if o.Qubits == 0 {
		if o.Quick {
			o.Qubits = 8
		} else {
			o.Qubits = 10
		}
	}
	if o.Circuits == 0 {
		if o.Quick {
			o.Circuits = 20
		} else {
			o.Circuits = 40
		}
	}
	if o.Gates == 0 {
		o.Gates = 6 * o.Qubits
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.F32Tol == 0 {
		o.F32Tol = 5e-4
	}
	if o.FaultCircuits == 0 {
		if o.Quick {
			o.FaultCircuits = 3
		} else {
			o.FaultCircuits = 6
		}
	}
}

// Report aggregates a full harness run.
type Report struct {
	Differential *Engine // the clean differential matrix
	F32          *Engine // single-precision backends at the epsilon tolerance
	Faults       *Engine // fault-injection scenarios (distributed backends)

	MetamorphicRun    int
	MetamorphicFailed []string // "name: error" per failed property

	FaultScenarios int   // fault-injected backend pairs exercised
	FaultEvents    int64 // perturbations injected across all scenarios

	Recovery *RecoveryReport // crash/corruption checkpoint-recovery sweep
}

// Failed reports whether any layer found a violation.
func (r *Report) Failed() bool {
	return r.Differential.Failed() || (r.F32 != nil && r.F32.Failed()) ||
		r.Faults.Failed() || len(r.MetamorphicFailed) > 0 || r.Recovery.Failed()
}

// Matrix returns the default backend matrix compared against the naive
// dense reference. Quick trims redundant kernel tiers. To add a new
// backend to the differential matrix, append it here (see DESIGN.md §6).
func Matrix(quick bool) (ref Backend, backends []Backend) {
	ref = Naive()
	backends = []Backend{
		Kernel(kernels.Specialized),
		Kernel(kernels.Split),
		Permuted(7),
		Scheduled(2),
		Distributed(4),
		Baseline(4),
		OutOfCore(2, 0),
		OutOfCore(2, 3),
	}
	if !quick {
		backends = append(backends,
			Kernel(kernels.InPlace),
			Kernel(kernels.Generated),
			Scheduled(3),
			Distributed(2),
			Distributed(8),
			Baseline(8),
			OutOfCore(3, 1),
			OutOfCore(2, 8),
		)
	}
	return ref, backends
}

// MatrixF32 returns the single-precision backends, compared against the
// same naive dense reference under the epsilon tolerance Options.F32Tol.
// They live in their own engine so a float32 rounding excursion can never
// mask (or be masked by) an exact-path divergence.
func MatrixF32(quick bool) []Backend {
	backends := []Backend{
		F32(),
		F32Scheduled(2),
	}
	if !quick {
		backends = append(backends, F32Scheduled(3))
	}
	return backends
}

// Run executes the full harness: differential matrix, metamorphic suite,
// and fault-injection scenarios. Violations land in the Report; the error
// covers only harness-level failures.
func Run(opts Options) (*Report, error) {
	opts.setDefaults()
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	ref, backends := Matrix(opts.Quick)
	engine := NewEngine(ref, backends, opts.Tol)
	rep := &Report{Differential: engine}

	// Phase 1: differential matrix over seeded random + library circuits.
	logf("phase 1: differential matrix (%d random + library + catalog circuits, %d backends)",
		opts.Circuits, len(backends))
	for i := 0; i < opts.Circuits; i++ {
		c := Random(RandomOptions{
			Qubits: opts.Qubits, Gates: opts.Gates, Seed: opts.Seed + int64(i),
			// Half the circuits include dense entanglers (CNOT/SWAP); the
			// baseline backend skips those it cannot place locally.
			DenseEntanglers: i%2 == 1,
		})
		if err := engine.Check(c); err != nil {
			return rep, err
		}
	}
	for _, c := range Library(opts.Qubits, opts.Seed) {
		if err := engine.Check(c); err != nil {
			return rep, err
		}
	}
	for _, c := range Catalog(opts.Qubits, opts.Seed) {
		if err := engine.Check(c); err != nil {
			return rep, err
		}
	}
	logf("%s", strings.TrimRight(engine.Summary(), "\n"))

	// Phase 1b: the single-precision backends rerun the same seeded
	// circuits at the epsilon tolerance.
	f32backends := MatrixF32(opts.Quick)
	logf("phase 1b: single-precision matrix (%d backends, tol %.1e)",
		len(f32backends), opts.F32Tol)
	f32engine := NewEngine(ref, f32backends, opts.F32Tol)
	rep.F32 = f32engine
	for i := 0; i < opts.Circuits; i++ {
		c := Random(RandomOptions{
			Qubits: opts.Qubits, Gates: opts.Gates, Seed: opts.Seed + int64(i),
			DenseEntanglers: i%2 == 1,
		})
		if err := f32engine.Check(c); err != nil {
			return rep, err
		}
	}
	for _, c := range Library(opts.Qubits, opts.Seed) {
		if err := f32engine.Check(c); err != nil {
			return rep, err
		}
	}
	for _, c := range Catalog(opts.Qubits, opts.Seed) {
		if err := f32engine.Check(c); err != nil {
			return rep, err
		}
	}
	logf("%s", strings.TrimRight(f32engine.Summary(), "\n"))

	// Phase 2: metamorphic properties.
	props := Properties(opts.Qubits, opts.Seed)
	logf("phase 2: %d metamorphic properties", len(props))
	for _, p := range props {
		rep.MetamorphicRun++
		if err := p.Check(); err != nil {
			rep.MetamorphicFailed = append(rep.MetamorphicFailed,
				fmt.Sprintf("%s: %v", p.Name, err))
			logf("  %-26s FAILED: %v", p.Name, err)
		} else {
			logf("  %-26s ok", p.Name)
		}
	}

	// Phase 3: fault injection. The distributed backends rerun under
	// seeded MPI adversity and must still match the naive reference.
	faulty := []Backend{
		DistributedFaulty(4, mpi.DefaultFaults(opts.Seed+1)),
		BaselineFaulty(4, mpi.DefaultFaults(opts.Seed+2)),
	}
	if !opts.Quick {
		faulty = append(faulty, DistributedFaulty(8, mpi.DefaultFaults(opts.Seed+3)))
	}
	logf("phase 3: fault injection (%d scenarios × %d circuits)", len(faulty), opts.FaultCircuits)
	faultEngine := NewEngine(ref, faulty, opts.Tol)
	rep.Faults = faultEngine
	for i := 0; i < opts.FaultCircuits; i++ {
		c := Random(RandomOptions{
			Qubits: opts.Qubits, Gates: opts.Gates, Seed: opts.Seed + 1000 + int64(i),
		})
		if err := faultEngine.Check(c); err != nil {
			return rep, err
		}
	}
	rep.FaultScenarios = len(faulty)
	for _, b := range faulty {
		if fc, ok := b.(faultCounter); ok {
			rep.FaultEvents += fc.FaultEvents()
		}
	}
	logf("%s", strings.TrimRight(faultEngine.Summary(), "\n"))
	logf("injected %d fault events", rep.FaultEvents)

	// Phase 4: checkpoint recovery. A distributed run is crashed at every
	// collective entry (all stage boundaries) and corrupted at every payload
	// exchange; each run must restart from its snapshots and finish bitwise
	// identical to the clean run.
	logf("phase 4: checkpoint recovery sweep")
	rep.Recovery = CheckRecovery(opts, 4, logf)
	rep.FaultEvents += rep.Recovery.FaultEvents

	return rep, nil
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Differential.Summary())
	if r.F32 != nil {
		b.WriteString(r.F32.Summary())
	}
	fmt.Fprintf(&b, "metamorphic: %d/%d properties passed\n",
		r.MetamorphicRun-len(r.MetamorphicFailed), r.MetamorphicRun)
	for _, f := range r.MetamorphicFailed {
		fmt.Fprintf(&b, "  FAILED %s\n", f)
	}
	fmt.Fprintf(&b, "fault injection: %d scenarios, %d perturbations\n",
		r.FaultScenarios, r.FaultEvents)
	b.WriteString(r.Faults.Summary())
	if r.Recovery != nil {
		fmt.Fprintf(&b, "recovery: %d crash + %d corruption points, %d restarts, %d snapshot resumes\n",
			r.Recovery.CrashPoints, r.Recovery.CorruptPoints, r.Recovery.Restarts, r.Recovery.Restored)
		for _, f := range r.Recovery.Failures {
			fmt.Fprintf(&b, "  FAILED %s\n", f)
		}
	}
	divs := append(append([]Divergence(nil), r.Differential.Divergences...), r.Faults.Divergences...)
	if r.F32 != nil {
		divs = append(divs, r.F32.Divergences...)
	}
	if len(divs) == 0 {
		b.WriteString("RESULT: all execution paths agree\n")
		return b.String()
	}
	fmt.Fprintf(&b, "RESULT: %d divergence(s)\n", len(divs))
	for _, d := range divs {
		fmt.Fprintf(&b, "--- %s vs reference on %s: maxΔamp=%.3e |1-F|=%.3e, minimized to %d gates:\n%s\n",
			d.Backend, d.Circuit, d.MaxDelta, d.FidDelta, d.ReproducerGates, d.Reproducer)
	}
	return b.String()
}
