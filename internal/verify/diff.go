package verify

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"strings"

	"qusim/internal/circuit"
)

// The differential engine: every candidate backend is compared against a
// reference backend on the same circuit, amplitude-for-amplitude. This is
// the validation strategy of the paper's lineage — qHiPSTER and the
// distributed-memory surveys check optimized paths against a naive dense
// reference — applied systematically across all of this repo's execution
// paths.

// PairStat aggregates one reference↔backend pair across the matrix.
type PairStat struct {
	Backend  string
	Circuits int     // circuits actually compared
	Skipped  int     // circuits the backend reported ErrUnsupported for
	MaxDelta float64 // worst max-amplitude delta seen
	MaxFid   float64 // worst |1 − fidelity| seen
	Failures int     // comparisons above tolerance
}

// Divergence records one above-tolerance disagreement, with a minimized
// replayable reproducer.
type Divergence struct {
	Circuit  string  // name of the original circuit
	Backend  string  // diverging backend (vs. the reference)
	MaxDelta float64 // on the original circuit
	FidDelta float64
	// Reproducer is the minimized circuit in the GRCS-like text format of
	// circuit.WriteText (or String() form if custom gates prevent
	// serialization).
	Reproducer      string
	ReproducerGates int
}

// Engine runs circuits through every backend pair and accumulates
// statistics and divergences.
type Engine struct {
	Ref      Backend
	Backends []Backend
	// Tol is the max-amplitude-delta tolerance; the acceptance bar for this
	// repo is 1e-10.
	Tol float64
	// Minimize shrinks each diverging circuit with a delta-debugging pass
	// before recording the reproducer (on by default via NewEngine).
	Minimize bool

	Circuits    int
	Pairs       map[string]*PairStat
	Divergences []Divergence
}

// NewEngine returns an engine comparing each backend against ref.
func NewEngine(ref Backend, backends []Backend, tol float64) *Engine {
	return &Engine{
		Ref: ref, Backends: backends, Tol: tol, Minimize: true,
		Pairs: make(map[string]*PairStat),
	}
}

// Check runs c through the reference and every backend, recording deltas
// and divergences. It returns an error only on harness-level failures
// (a backend erroring on a circuit it should support); divergences are
// recorded, not returned.
func (e *Engine) Check(c *circuit.Circuit) error {
	want, err := e.Ref.Run(c)
	if err != nil {
		return fmt.Errorf("verify: reference %s failed on %s: %w", e.Ref.Name(), c.Name, err)
	}
	e.Circuits++
	for _, b := range e.Backends {
		st := e.Pairs[b.Name()]
		if st == nil {
			st = &PairStat{Backend: b.Name()}
			e.Pairs[b.Name()] = st
		}
		got, err := b.Run(c)
		if errors.Is(err, ErrUnsupported) {
			st.Skipped++
			continue
		}
		if err != nil {
			return fmt.Errorf("verify: backend %s failed on %s: %w", b.Name(), c.Name, err)
		}
		st.Circuits++
		d := MaxAmpDelta(want, got)
		fd := FidelityDelta(want, got)
		if d > st.MaxDelta {
			st.MaxDelta = d
		}
		if fd > st.MaxFid {
			st.MaxFid = fd
		}
		if d > e.Tol {
			st.Failures++
			div := Divergence{
				Circuit: c.Name, Backend: b.Name(), MaxDelta: d, FidDelta: fd,
			}
			repro := c
			if e.Minimize {
				repro = e.minimize(c, b)
			}
			div.Reproducer = CircuitText(repro)
			div.ReproducerGates = len(repro.Gates)
			e.Divergences = append(e.Divergences, div)
		}
	}
	return nil
}

// Failed reports whether any comparison diverged above tolerance.
func (e *Engine) Failed() bool { return len(e.Divergences) > 0 }

// PairList returns the per-pair statistics sorted by backend name.
func (e *Engine) PairList() []*PairStat {
	out := make([]*PairStat, 0, len(e.Pairs))
	for _, st := range e.Pairs {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// MaxAmpDelta returns max_b |a_b − b_b| — the paper-style elementwise
// comparison bound.
func MaxAmpDelta(a, b []complex128) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// FidelityDelta returns |1 − |⟨a|b⟩|²| — a global-phase-insensitive
// secondary signal that distinguishes phase-only drift from genuine
// amplitude corruption.
func FidelityDelta(a, b []complex128) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var ip complex128
	for i := range a {
		ip += cmplx.Conj(a[i]) * b[i]
	}
	return math.Abs(1 - (real(ip)*real(ip) + imag(ip)*imag(ip)))
}

// minimize shrinks a diverging circuit with greedy delta debugging: try
// deleting gate chunks of halving size while the divergence persists. The
// result is 1-minimal with respect to single-gate removal.
func (e *Engine) minimize(c *circuit.Circuit, b Backend) *circuit.Circuit {
	diverges := func(cand *circuit.Circuit) bool {
		want, err := e.Ref.Run(cand)
		if err != nil {
			return false
		}
		got, err := b.Run(cand)
		if err != nil {
			return false
		}
		return MaxAmpDelta(want, got) > e.Tol
	}
	cur := c
	for chunk := (len(cur.Gates) + 1) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur.Gates); {
			cand := withoutGates(cur, start, start+chunk)
			if diverges(cand) {
				cur = cand // keep the smaller circuit; retry same offset
			} else {
				start += chunk
			}
		}
	}
	return cur
}

// MinimizeDivergence shrinks a circuit on which b diverges from ref by
// more than tol, using the same greedy delta debugging as the engine's
// automatic reproducers — the entry point for external harnesses (the
// chaos soak driver) that detect a mismatch outside an Engine run.
func MinimizeDivergence(ref, b Backend, tol float64, c *circuit.Circuit) *circuit.Circuit {
	e := NewEngine(ref, []Backend{b}, tol)
	return e.minimize(c, b)
}

// withoutGates returns a copy of c with gates [lo, hi) removed.
func withoutGates(c *circuit.Circuit, lo, hi int) *circuit.Circuit {
	out := circuit.NewCircuit(c.N)
	out.Name = c.Name + "-min"
	out.Gates = append(out.Gates, c.Gates[:lo]...)
	out.Gates = append(out.Gates, c.Gates[hi:]...)
	return out
}

// CircuitText renders c in the replayable text format, falling back to the
// debug listing when custom-matrix gates block serialization.
func CircuitText(c *circuit.Circuit) string {
	var buf bytes.Buffer
	if err := circuit.WriteText(&buf, c); err != nil {
		return c.String()
	}
	return buf.String()
}

// Summary renders the pair statistics as an aligned table.
func (e *Engine) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential matrix: %d circuits × %d backend pairs (ref %s, tol %.1e)\n",
		e.Circuits, len(e.Backends), e.Ref.Name(), e.Tol)
	for _, st := range e.PairList() {
		status := "ok"
		if st.Failures > 0 {
			status = fmt.Sprintf("%d DIVERGED", st.Failures)
		}
		fmt.Fprintf(&b, "  %-28s circuits=%-3d skipped=%-3d maxΔamp=%.2e max|1-F|=%.2e  %s\n",
			st.Backend, st.Circuits, st.Skipped, st.MaxDelta, st.MaxFid, status)
	}
	return b.String()
}
