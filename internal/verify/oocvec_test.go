package verify

import (
	"math"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/kernels"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
)

// scheduledAmps executes plan on an in-memory state with the Specialized
// kernel tier — per-amplitude, the exact arithmetic the out-of-core engine
// performs chunk by chunk — and returns logical-order amplitudes.
func scheduledAmps(t *testing.T, c *circuit.Circuit, plan *schedule.Plan) []complex128 {
	t.Helper()
	v := statevec.New(c.N)
	v.Variant = kernels.Specialized
	if err := plan.Run(v); err != nil {
		t.Fatal(err)
	}
	return unpermute(plan, v.Amps)
}

// TestOutOfCoreBitwiseDifferential pins paged execution — reactive and at
// several prefetch depths — bitwise against the in-memory scheduled run of
// the same plan: chunking the state file and pipelining its I/O must not
// change a single bit of any amplitude.
func TestOutOfCoreBitwiseDifferential(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		c := Random(RandomOptions{Qubits: 10, Gates: 60, Seed: seed, DenseEntanglers: true})
		plan, err := schedule.Build(c, defaultScheduleOptions(c.N-3))
		if err != nil {
			t.Fatal(err)
		}
		want := scheduledAmps(t, c, plan)
		for _, depth := range []int{0, 1, 2, 4, 8} {
			got, err := OutOfCore(3, depth).Run(c)
			if err != nil {
				t.Fatalf("seed %d depth %d: %v", seed, depth, err)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("seed %d depth %d: amplitude %d differs bitwise: %v vs %v",
						seed, depth, i, want[i], got[i])
				}
			}
		}
	}
}

// TestOutOfCoreEnrolledInMatrix guards the harness wiring: the paged
// backend (both modes) must be part of the differential matrix so every
// qverify run cross-checks it.
func TestOutOfCoreEnrolledInMatrix(t *testing.T) {
	for _, quick := range []bool{true, false} {
		_, backends := Matrix(quick)
		reactive, prefetch := false, false
		for _, b := range backends {
			switch b.Name() {
			case "oocvec/g2-reactive":
				reactive = true
			case "oocvec/g2-prefetch3":
				prefetch = true
			}
		}
		if !reactive || !prefetch {
			t.Errorf("quick=%v matrix missing ooc backends (reactive=%v prefetch=%v)",
				quick, reactive, prefetch)
		}
	}
}

// TestOutOfCoreMetamorphicParameterSweep is the QAOA/VQE re-run property:
// executing a circuit, then re-executing it with perturbed gate angles,
// must (a) reuse the cached plan analysis — the two plans differ only in
// gate values, not structure — and (b) still agree bitwise with the
// in-memory run of each perturbed instance.
func TestOutOfCoreMetamorphicParameterSweep(t *testing.T) {
	schedule.FlushAccessCache()
	t.Cleanup(schedule.FlushAccessCache)

	mk := func(theta float64) *circuit.Circuit {
		c := circuit.NewCircuit(9)
		for q := 0; q < c.N; q++ {
			c.Append(circuit.NewH(q))
		}
		for layer := 0; layer < 2; layer++ {
			for q := 0; q+1 < c.N; q++ {
				c.Append(circuit.NewCPhase(q, q+1, theta*float64(q+1)))
			}
			for q := 0; q < c.N; q++ {
				c.Append(circuit.NewRz(q, theta+math.Pi/float64(layer+2)))
				c.Append(circuit.NewXHalf(q))
			}
		}
		return c
	}

	backend := OutOfCore(3, 2)
	var lastStruct string
	for i, theta := range []float64{0.7, 0.7 + 1e-4, 0.7 - 1e-4} {
		c := mk(theta)
		plan, err := schedule.Build(c, defaultScheduleOptions(c.N-3))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && plan.StructureFingerprint() != lastStruct {
			t.Fatal("angle perturbation changed the plan structure fingerprint")
		}
		lastStruct = plan.StructureFingerprint()

		want := scheduledAmps(t, c, plan)
		got, err := backend.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		for b := range want {
			if want[b] != got[b] {
				t.Fatalf("theta %g: amplitude %d differs bitwise", theta, b)
			}
		}
	}
	hits, misses := schedule.AccessCacheStats()
	if misses != 1 {
		t.Errorf("parameter sweep re-analyzed the plan %d times, want 1", misses)
	}
	if hits < 2 {
		t.Errorf("parameter sweep hit the plan cache %d times, want ≥ 2", hits)
	}
}
