package perfmodel

import (
	"math"
	"testing"
)

func TestSingleNodeHasNoCommTime(t *testing.T) {
	stats := buildStats(t, 20, 25, 20)
	est := EstimateScheduled(CoriKNL(), CrayAries(), stats, 1)
	if est.CommSec != 0 {
		t.Errorf("single node modeled comm time %v", est.CommSec)
	}
	if est.CommFraction != 0 {
		t.Errorf("single node comm fraction %v", est.CommFraction)
	}
	if est.ComputeSec <= 0 {
		t.Error("no compute time modeled")
	}
}

func TestKernelTimeScalesWithState(t *testing.T) {
	m := EdisonSocket()
	small := m.KernelTime(4, 24)
	big := m.KernelTime(4, 28)
	ratio := big / small
	if math.Abs(ratio-16) > 1 {
		t.Errorf("kernel time ratio for 16x state: %v, want ≈16", ratio)
	}
}

func TestSweepTimeIsBandwidthBound(t *testing.T) {
	m := EdisonSocket()
	// One sweep of 2^28 amplitudes at 32 B each over 52 GB/s.
	want := math.Pow(2, 28) * 32 / (52e9)
	if got := m.SweepTime(28); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("sweep time %v, want %v", got, want)
	}
}

func TestLargerKernelsTakeLongerButLessPerFlop(t *testing.T) {
	m := CoriKNL()
	prevTime, prevPerFlop := 0.0, math.Inf(1)
	for k := 1; k <= 5; k++ {
		tm := m.KernelTime(k, 26)
		perFlop := tm / KernelFlops(26, k)
		if tm < prevTime {
			t.Errorf("k=%d kernel faster than k=%d", k, k-1)
		}
		if perFlop > prevPerFlop*1.0000001 {
			t.Errorf("k=%d: time per FLOP grew (%v > %v) — fusion would not pay", k, perFlop, prevPerFlop)
		}
		prevTime, prevPerFlop = tm, perFlop
	}
}

func TestEstimateBaselineWorseThanScheduled(t *testing.T) {
	for _, nodes := range []int{64, 1024, 4096} {
		stats := buildStats(t, 36, 25, 36-log2(nodes))
		s := EstimateScheduled(CoriKNL(), CrayAries(), stats, nodes)
		b := EstimateBaseline(CoriKNL(), CrayAries(), stats, nodes)
		if b.TotalSec <= s.TotalSec {
			t.Errorf("nodes=%d: baseline %v not slower than scheduled %v", nodes, b.TotalSec, s.TotalSec)
		}
	}
}

func TestPFLOPSWithinMachinePeak(t *testing.T) {
	stats := buildStats(t, 42, 25, 30)
	est := EstimateScheduled(CoriKNL(), CrayAries(), stats, 4096)
	peak := 4096 * CoriKNL().PeakGFLOPS / 1e6 // PFLOPS
	if est.PFLOPS <= 0 || est.PFLOPS > peak {
		t.Errorf("modeled %v PFLOPS outside (0, %v]", est.PFLOPS, peak)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 64: 6, 8192: 13}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}
