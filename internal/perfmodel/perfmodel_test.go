package perfmodel

import (
	"math"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
)

func TestFlopsPerAmplitude(t *testing.T) {
	// Sec. 3.1: a 1-qubit gate costs 14 FLOP per output entry.
	if got := FlopsPerAmplitude(1); got != 14 {
		t.Errorf("FlopsPerAmplitude(1) = %v, want 14", got)
	}
	if got := FlopsPerAmplitude(4); got != 126 {
		t.Errorf("FlopsPerAmplitude(4) = %v, want 126", got)
	}
}

func TestOperationalIntensity(t *testing.T) {
	// k=1 must be below 1/2 (the paper's memory-bound observation); k=4
	// close to 4 (the roofline plots' second marker).
	if oi := OperationalIntensity(1); oi >= 0.5 {
		t.Errorf("OI(1) = %v, want < 0.5", oi)
	}
	if oi := OperationalIntensity(4); math.Abs(oi-3.9375) > 1e-12 {
		t.Errorf("OI(4) = %v, want 3.9375", oi)
	}
}

func TestRooflineRegimes(t *testing.T) {
	m := EdisonSocket()
	// 1-qubit kernels are memory-bound: roofline well below peak.
	if r := m.Roofline(OperationalIntensity(1)); r >= m.PeakGFLOPS/2 {
		t.Errorf("1-qubit roofline %v suspiciously close to peak", r)
	}
	// Very high intensity caps at peak.
	if r := m.Roofline(1000); r != m.PeakGFLOPS {
		t.Errorf("roofline(1000) = %v, want peak %v", r, m.PeakGFLOPS)
	}
}

func TestRooflineMatchesPaperEdison(t *testing.T) {
	// Fig. 2a: the best 4-qubit kernel reaches 166.2 GFLOPS on one Edison
	// socket. The calibrated model should land within 25%.
	m := EdisonSocket()
	got := m.KernelGFLOPS(4, 1e9, false)
	if got < 166.2*0.75 || got > 166.2*1.25 {
		t.Errorf("modeled Edison 4-qubit kernel %v GFLOPS, paper measures 166.2", got)
	}
}

func TestRooflineMatchesPaperKNL(t *testing.T) {
	// Fig. 2b: best 4-qubit kernel at 878.7 GFLOPS on one KNL node (state
	// in MCDRAM).
	m := CoriKNL()
	got := m.KernelGFLOPS(4, 1e9, false)
	if got < 878.7*0.75 || got > 878.7*1.25 {
		t.Errorf("modeled KNL 4-qubit kernel %v GFLOPS, paper measures 878.7", got)
	}
}

func TestMCDRAMCapacityPenalty(t *testing.T) {
	// Sec. 4.1.2: exceeding the 16 GB MCDRAM costs ≈ 2x bandwidth.
	m := CoriKNL()
	inFast := m.KernelGFLOPS(4, 8e9, false)
	inSlow := m.KernelGFLOPS(4, 64e9, false)
	ratio := inFast / inSlow
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("MCDRAM/DRAM kernel ratio %v, want ≈ 460/115 regime", ratio)
	}
}

func TestHighOrderPenaltyOnlyBeyondAssociativity(t *testing.T) {
	// Fig. 6/9: k ≤ 3 shows no penalty (2^k ≤ 8-way associativity); k = 4,5
	// drop.
	for _, m := range []Machine{EdisonSocket(), CoriKNL()} {
		for k := 1; k <= 3; k++ {
			lo := m.KernelGFLOPS(k, 1e9, false)
			hi := m.KernelGFLOPS(k, 1e9, true)
			if lo != hi {
				t.Errorf("%s k=%d: unexpected high-order penalty (%v vs %v)", m.Name, k, lo, hi)
			}
		}
		for k := 4; k <= 5; k++ {
			lo := m.KernelGFLOPS(k, 1e9, false)
			hi := m.KernelGFLOPS(k, 1e9, true)
			if hi >= lo {
				t.Errorf("%s k=%d: no high-order penalty (%v vs %v)", m.Name, k, lo, hi)
			}
		}
	}
}

func TestStrongScalingShape(t *testing.T) {
	m := CoriKNL()
	// Speedup is monotone in cores and larger k scales further (higher
	// operational intensity ⇒ later bandwidth saturation), the Fig. 7
	// observation.
	for k := 1; k <= 5; k++ {
		prev := 0.0
		for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
			s := m.StrongScalingSpeedup(k, p)
			if s < prev {
				t.Errorf("k=%d: speedup not monotone at %d cores", k, p)
			}
			if s > float64(p)+1e-9 {
				t.Errorf("k=%d: superlinear speedup %v at %d cores", k, s, p)
			}
			prev = s
		}
		if k > 1 {
			if m.StrongScalingSpeedup(k, 64) < m.StrongScalingSpeedup(k-1, 64) {
				t.Errorf("k=%d scales worse than k=%d at 64 cores", k, k-1)
			}
		}
	}
}

func TestNetworkTaper(t *testing.T) {
	nw := CrayAries()
	if nw.EffectiveBW(64) <= nw.EffectiveBW(8192) {
		t.Error("effective bandwidth should decay with node count")
	}
	if nw.SwapTime(1, 30) != 0 {
		t.Error("single node should not pay swap time")
	}
	if nw.GlobalGateTime(64, 30) >= nw.SwapTime(64, 30) {
		t.Error("a global gate should cost less than a full swap")
	}
}

func buildStats(t *testing.T, n, depth, l int) schedule.Stats {
	t.Helper()
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: depth, Seed: 0, SkipInitialH: true})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(l))
	if err != nil {
		t.Fatal(err)
	}
	return plan.Stats
}

func TestTable2ShapeProjection(t *testing.T) {
	// The modeled 45-qubit run on 8192 nodes must land in the paper's
	// regime: communication-dominated (Table 2 reports 78%) with a total
	// in the hundreds of seconds (paper: 552.61 s).
	stats := buildStats(t, 45, 25, 32)
	est := EstimateScheduled(CoriKNL(), CrayAries(), stats, 8192)
	if est.CommFraction < 0.5 || est.CommFraction > 0.95 {
		t.Errorf("45q comm fraction %v, paper reports 0.78", est.CommFraction)
	}
	if est.TotalSec < 100 || est.TotalSec > 2500 {
		t.Errorf("45q total %v s, paper reports 552.61 s", est.TotalSec)
	}
	t.Logf("45q/8192 nodes: total=%.1fs comm=%.0f%% PFLOPS=%.3f (paper: 552.61s, 78%%, 0.428)",
		est.TotalSec, est.CommFraction*100, est.PFLOPS)
}

func TestScheduledBeatsBaselineProjection(t *testing.T) {
	// Table 2: >12x speedup over [5] at 42 qubits on 4096 nodes.
	stats := buildStats(t, 42, 25, 30)
	sched := EstimateScheduled(CoriKNL(), CrayAries(), stats, 4096)
	base := EstimateBaseline(CoriKNL(), CrayAries(), stats, 4096)
	speedup := base.TotalSec / sched.TotalSec
	if speedup < 4 {
		t.Errorf("modeled speedup %.1fx, paper reports 12.4x", speedup)
	}
	t.Logf("42q/4096 nodes: scheduled=%.1fs baseline=%.1fs speedup=%.1fx (paper: 79.53s, 12.4x)",
		sched.TotalSec, base.TotalSec, speedup)
}

func TestStrongScalingProjectionFig8(t *testing.T) {
	// Fig. 8: doubling nodes from 1024 to 4096 keeps speeding up the
	// 42-qubit run.
	stats := buildStats(t, 42, 25, 32)
	t1024 := EstimateScheduled(CoriKNL(), CrayAries(), stats, 1024).TotalSec
	stats2 := buildStats(t, 42, 25, 31)
	t2048 := EstimateScheduled(CoriKNL(), CrayAries(), stats2, 2048).TotalSec
	stats3 := buildStats(t, 42, 25, 30)
	t4096 := EstimateScheduled(CoriKNL(), CrayAries(), stats3, 4096).TotalSec
	if !(t1024 > t2048 && t2048 > t4096) {
		t.Errorf("no strong scaling: %v ≥ %v ≥ %v", t1024, t2048, t4096)
	}
	t.Logf("42q: 1024→%.1fs 2048→%.1fs 4096→%.1fs", t1024, t2048, t4096)
}
