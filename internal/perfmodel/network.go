package perfmodel

import (
	"math"

	"qusim/internal/schedule"
)

// Network models the effective all-to-all bandwidth of a dragonfly
// interconnect. The per-node effective bandwidth during a machine-wide
// all-to-all decays with node count (bisection taper); the constants are
// calibrated against the measured communication fractions of Table 2
// (see EXPERIMENTS.md).
type Network struct {
	Name string
	// B0 is the per-node effective all-to-all bandwidth in GB/s at 1 node
	// group; Alpha the taper exponent: effBW = B0 · nodes^(−Alpha).
	B0    float64
	Alpha float64
	// LatencySec is the fixed per-collective cost.
	LatencySec float64
}

// CrayAries returns the Table 2-calibrated model of Cori II's interconnect.
func CrayAries() Network {
	return Network{Name: "Cray Aries dragonfly (calibrated)", B0: 4.5, Alpha: 0.30, LatencySec: 1e-3}
}

// EffectiveBW returns the per-node all-to-all bandwidth in GB/s at the
// given node count.
func (nw Network) EffectiveBW(nodes int) float64 {
	if nodes <= 1 {
		return nw.B0
	}
	return nw.B0 * math.Pow(float64(nodes), -nw.Alpha)
}

// SwapTime returns the seconds of one global-to-local swap (one round of
// group all-to-alls) with 2^l local amplitudes per node.
func (nw Network) SwapTime(nodes, l int) float64 {
	if nodes <= 1 {
		return 0
	}
	bytes := math.Pow(2, float64(l)) * 16
	return bytes/(nw.EffectiveBW(nodes)*1e9) + nw.LatencySec
}

// GlobalGateTime returns the seconds of one dense global gate under the
// per-gate scheme: averaged over the global qubits it costs about half a
// full swap (Sec. 4.1.2, citing [5]).
func (nw Network) GlobalGateTime(nodes, l int) float64 {
	return nw.SwapTime(nodes, l) / 2
}

// RunEstimate is a modeled execution of a full circuit run.
type RunEstimate struct {
	Nodes        int
	LocalQubits  int
	ComputeSec   float64
	CommSec      float64
	TotalSec     float64
	CommFraction float64
	// PFLOPS is the modeled sustained machine performance.
	PFLOPS float64
}

// EstimateScheduled models a run of a scheduled plan on nodes× m with
// network nw: clusters and diagonal ops sweep the local state, swaps pay
// the all-to-all cost (Table 2, Fig. 8).
func EstimateScheduled(m Machine, nw Network, stats schedule.Stats, nodes int) RunEstimate {
	l := stats.Qubits - log2(nodes)
	var compute, flops float64
	for k, count := range stats.ClusterSizes {
		compute += float64(count) * m.KernelTime(k, l)
		flops += float64(count) * KernelFlops(l, k)
	}
	compute += float64(stats.DiagonalOps) * m.SweepTime(l)
	compute += float64(stats.LocalPerms) * m.SweepTime(l)
	comm := float64(stats.Swaps) * nw.SwapTime(nodes, l)
	return finishEstimate(nodes, l, compute, comm, flops)
}

// EstimateBaseline models the per-gate scheme of [5]: every gate is its own
// sweep of the local state; every dense global gate pays half a swap
// (Table 2's reference runs).
func EstimateBaseline(m Machine, nw Network, stats schedule.Stats, nodes int) RunEstimate {
	l := stats.Qubits - log2(nodes)
	// All gates execute unfused: model them as 1- and 2-qubit sweeps
	// (supremacy circuits average ≈ 1.4 qubits per gate).
	compute := float64(stats.Gates) * m.KernelTime(1, l)
	flops := float64(stats.Gates) * KernelFlops(l, 1)
	comm := float64(stats.BaselineGlobalGates) * nw.GlobalGateTime(nodes, l)
	return finishEstimate(nodes, l, compute, comm, flops)
}

func finishEstimate(nodes, l int, compute, comm, flops float64) RunEstimate {
	total := compute + comm
	e := RunEstimate{
		Nodes:       nodes,
		LocalQubits: l,
		ComputeSec:  compute,
		CommSec:     comm,
		TotalSec:    total,
	}
	if total > 0 {
		e.CommFraction = comm / total
		e.PFLOPS = float64(nodes) * flops / total / 1e15
	}
	return e
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
