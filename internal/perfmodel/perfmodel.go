// Package perfmodel provides the analytic performance models used to
// reproduce the hardware-dependent figures of Häner & Steiger, SC'17 on
// hardware that is not a Cori II KNL node or an Edison Ivy Bridge socket:
// FLOP and operational-intensity accounting (Sec. 3.1), roofline
// predictions (Fig. 2), the cache-set-associativity penalty for high-order
// qubits (Sec. 3.3, Fig. 6/9), OpenMP strong-scaling shapes (Fig. 7/10),
// and a dragonfly network model calibrated against Table 2 for the
// multi-node projections (Fig. 8, Table 2).
package perfmodel

import "math"

// FLOP accounting (Sec. 3.1) -------------------------------------------------

// FlopsPerAmplitude returns the floating-point operations per state-vector
// amplitude when applying a k-qubit gate: 2^k complex multiplications
// (4 mul + 2 add each) plus 2^k − 1 complex additions (2 add each). For
// k = 1 this is the paper's 14 FLOP per output entry.
func FlopsPerAmplitude(k int) float64 {
	return 8*math.Pow(2, float64(k)) - 2
}

// KernelFlops returns the total FLOPs of one k-qubit gate applied to an
// n-qubit state.
func KernelFlops(n, k int) float64 {
	return math.Pow(2, float64(n)) * FlopsPerAmplitude(k)
}

// BytesPerAmplitude is the memory traffic per amplitude of an in-place
// kernel: one 16-byte complex load plus one 16-byte store.
const BytesPerAmplitude = 32.0

// OperationalIntensity returns FLOP/byte for an in-place k-qubit kernel.
// For k = 1 it is 14/32 < 1/2, the paper's memory-bound observation; for
// k = 4 it is ≈ 3.94, the second x-coordinate in the roofline plots.
func OperationalIntensity(k int) float64 {
	return FlopsPerAmplitude(k) / BytesPerAmplitude
}

// Machines (Sec. 4.1/4.2) -----------------------------------------------------

// Machine describes a compute node or socket for roofline purposes.
type Machine struct {
	Name       string
	Cores      int
	PeakGFLOPS float64 // node/socket peak (as labeled in Fig. 2)
	// StreamBW is the sustained memory bandwidth in GB/s used for the
	// memory roof (Stream TRIAD for Edison, MCDRAM for KNL).
	StreamBW float64
	// DRAMBW is the slower tier (KNL DDR4); 0 means same as StreamBW.
	DRAMBW float64
	// FastMemBytes is the capacity of the fast tier (KNL MCDRAM = 16 GB);
	// 0 means unlimited.
	FastMemBytes float64
	// AssocEff is the effective last-level-cache set-associativity per
	// kernel: kernels with 2^k beyond it suffer conflict misses on
	// high-order qubits (Sec. 3.3). Edison: 8-way L1/L2. KNL: 16-way L2
	// shared between 2 cores → 8 effective.
	AssocEff int
	// KernelEff is the measured fraction of the roofline bound the
	// best kernels achieve (calibrated from Fig. 2: ≈ 0.81 on Edison,
	// ≈ 0.49 on KNL with AVX-512).
	KernelEff float64
}

// EdisonSocket models one 12-core Intel Xeon E5-2695 v2 socket (Fig. 2a).
func EdisonSocket() Machine {
	return Machine{
		Name:       "Edison socket (12-core Ivy Bridge, AVX)",
		Cores:      12,
		PeakGFLOPS: 230.4,
		StreamBW:   52,
		AssocEff:   8,
		KernelEff:  0.81,
	}
}

// CoriKNL models one 68-core Intel Xeon Phi 7250 node (Fig. 2b).
func CoriKNL() Machine {
	return Machine{
		Name:         "Cori II node (68-core KNL, AVX-512)",
		Cores:        68,
		PeakGFLOPS:   3133.4,
		StreamBW:     460,
		DRAMBW:       115.2,
		FastMemBytes: 16e9,
		AssocEff:     8,
		KernelEff:    0.49,
	}
}

// Roofline returns the attainable GFLOPS at operational intensity oi.
func (m Machine) Roofline(oi float64) float64 {
	return math.Min(m.PeakGFLOPS, oi*m.StreamBW)
}

// bwFor returns the bandwidth tier for a working set of the given bytes.
func (m Machine) bwFor(stateBytes float64) float64 {
	if m.FastMemBytes > 0 && stateBytes > m.FastMemBytes && m.DRAMBW > 0 {
		return m.DRAMBW
	}
	return m.StreamBW
}

// KernelGFLOPS predicts the sustained GFLOPS of a k-qubit kernel sweeping a
// state of stateBytes. highOrder applies the cache-associativity penalty of
// Sec. 3.3: once the 2^k gathered entries exceed the effective
// associativity, each 2^k-sized matrix–vector multiply re-fetches its
// entries from memory instead of cache, costing a reload factor 2^k/assoc.
func (m Machine) KernelGFLOPS(k int, stateBytes float64, highOrder bool) float64 {
	bw := m.bwFor(stateBytes)
	perf := math.Min(m.PeakGFLOPS, OperationalIntensity(k)*bw) * m.KernelEff
	if highOrder && 1<<k > m.AssocEff {
		perf /= float64(int(1)<<k) / float64(m.AssocEff)
	}
	return perf
}

// KernelTime predicts the seconds one k-qubit kernel sweep over a state of
// 2^l amplitudes takes.
func (m Machine) KernelTime(k, l int) float64 {
	amps := math.Pow(2, float64(l))
	stateBytes := amps * 16
	gflops := m.KernelGFLOPS(k, stateBytes, false)
	compute := amps * FlopsPerAmplitude(k) / (gflops * 1e9)
	mem := amps * BytesPerAmplitude / (m.bwFor(stateBytes) * 1e9)
	return math.Max(compute, mem)
}

// SweepTime predicts one bandwidth-bound read+write pass over the state
// (diagonal kernels, local permutations).
func (m Machine) SweepTime(l int) float64 {
	amps := math.Pow(2, float64(l))
	return amps * BytesPerAmplitude / (m.bwFor(amps*16) * 1e9)
}

// StrongScalingSpeedup models the Fig. 7 / Fig. 10 curves: a k-qubit kernel
// scales linearly until the memory bandwidth roof flattens it. The
// saturation point grows with k because larger kernels have higher
// operational intensity.
func (m Machine) StrongScalingSpeedup(k, cores int) float64 {
	corePeak := m.PeakGFLOPS / float64(m.Cores)
	// Cores needed to saturate the memory roof at this intensity.
	sat := OperationalIntensity(k) * m.StreamBW / (corePeak * m.KernelEff)
	if sat < 1 {
		sat = 1
	}
	p := float64(cores)
	// Smooth transition between linear scaling and the bandwidth plateau.
	return p / math.Pow(1+math.Pow(p/sat, 3), 1.0/3)
}
