// Package mpi simulates the message-passing layer of Sec. 3.4 of Häner &
// Steiger, SC'17. Ranks run as goroutines inside one process; the
// primitives mirror the MPI subset the simulator needs: barrier,
// (group-)all-to-all, all-reduce, and the pairwise half-vector exchange of
// the De Raedt-style baseline scheme.
//
// Communication structure is exact — who sends how many bytes where, and
// how many collective steps happen, are the quantities the paper optimizes
// and are counted faithfully. Wall-clock behaviour of a Cray Aries network
// is out of scope here; package perfmodel maps the recorded traffic onto a
// network model for the paper-scale projections.
package mpi

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Traffic accumulates communication statistics across all ranks.
type Traffic struct {
	// Steps counts collective communication steps (an all-to-all round or a
	// pairwise exchange round counts once, matching the paper's counting
	// where one global-to-local swap == one communication step).
	Steps atomic.Int64
	// Bytes counts payload bytes that crossed rank boundaries (self-copies
	// are free).
	Bytes atomic.Int64
}

// World coordinates size ranks.
type World struct {
	size    int
	bar     *barrier
	board   [][][]complex128 // board[src][dst] chunk posted for an all-to-all
	pair    [][]chan []complex128
	pairAck [][]chan struct{}
	reduce  []float64
	Traffic Traffic

	fault       *FaultPlan // armed by InjectFaults; nil = clean runs
	faultEvents atomic.Int64
}

// NewWorld creates a world of the given size (ranks are 0…size−1).
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &World{
		size:   size,
		bar:    newBarrier(size),
		board:  make([][][]complex128, size),
		reduce: make([]float64, size),
	}
	w.pair = make([][]chan []complex128, size)
	w.pairAck = make([][]chan struct{}, size)
	for i := range w.pair {
		w.pair[i] = make([]chan []complex128, size)
		w.pairAck[i] = make([]chan struct{}, size)
		for j := range w.pair[i] {
			w.pair[i][j] = make(chan []complex128, 1)
			w.pairAck[i][j] = make(chan struct{}, 1)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run spawns one goroutine per rank executing fn and waits for all of them.
// The first panic is re-raised on the caller.
//
// A rank that returns an error (or panics) poisons the world's barrier, so
// ranks blocked inside a collective unwind immediately instead of waiting
// for a participant that will never arrive — Run reports the failure rather
// than deadlocking. Poisoned ranks' partial results are discarded along
// with the world.
func (w *World) Run(fn func(c *Comm) error) error {
	w.bar.reset()
	errs := make([]error, w.size)
	panics := make([]any, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(barrierPoisoned); ok {
						// Unwound out of a collective after another rank
						// failed; that rank carries the real error.
						return
					}
					panics[rank] = p
					w.bar.poison()
				}
			}()
			if err := fn(&Comm{w: w, rank: rank, frand: w.newFaultRand(rank)}); err != nil {
				errs[rank] = err
				w.bar.poison()
			}
		}(r)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's handle on the world.
type Comm struct {
	w     *World
	rank  int
	frand *rand.Rand // per-rank fault RNG, nil when injection is disarmed
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	if f := c.w.fault; f != nil {
		c.faultDelay(f.BarrierJitter)
	}
	c.w.bar.wait()
}

// Alltoall performs a world all-to-all: send[j] goes to rank j, and recv[i]
// receives rank i's chunk for this rank. All chunks must have equal length;
// recv slices must be pre-allocated. This is the "one all-to-all on
// MPI_COMM_WORLD" that swaps every global qubit with local ones.
func (c *Comm) Alltoall(send, recv [][]complex128) {
	w := c.w
	if len(send) != w.size || len(recv) != w.size {
		panic("mpi: Alltoall chunk count must equal world size")
	}
	if f := w.fault; f != nil {
		c.faultDelay(f.PostDelay)
	}
	w.board[c.rank] = send
	c.Barrier()
	order := c.deliveryOrder(w.size)
	for i := 0; i < w.size; i++ {
		src := i
		if order != nil {
			src = order[i]
		}
		chunk := w.board[src][c.rank]
		if len(chunk) != len(recv[src]) {
			panic("mpi: Alltoall chunk length mismatch")
		}
		copy(recv[src], chunk)
		if src != c.rank {
			w.Traffic.Bytes.Add(int64(16 * len(chunk)))
		}
	}
	c.Barrier()
	if c.rank == 0 {
		w.Traffic.Steps.Add(1)
	}
	c.Barrier()
}

// GroupAlltoall performs simultaneous all-to-alls within groups of ranks
// that agree on every rank bit outside bitPositions — the group-local
// all-to-alls of a q-qubit global-to-local swap (Sec. 3.4). send and recv
// are indexed by group-member index: member j is the rank whose bits at
// bitPositions spell j (bitPositions[t] holds bit t of j).
func (c *Comm) GroupAlltoall(bitPositions []int, send, recv [][]complex128) {
	w := c.w
	q := len(bitPositions)
	if len(send) != 1<<q || len(recv) != 1<<q {
		panic("mpi: GroupAlltoall chunk count must be 2^q")
	}
	var mask int
	for _, b := range bitPositions {
		if 1<<b >= w.size {
			panic(fmt.Sprintf("mpi: bit position %d out of range for %d ranks", b, w.size))
		}
		mask |= 1 << b
	}
	memberRank := func(j int) int {
		r := c.rank &^ mask
		for t, b := range bitPositions {
			if j&(1<<t) != 0 {
				r |= 1 << b
			}
		}
		return r
	}
	me := 0
	for t, b := range bitPositions {
		if c.rank&(1<<b) != 0 {
			me |= 1 << t
		}
	}
	if f := w.fault; f != nil {
		c.faultDelay(f.PostDelay)
	}
	w.board[c.rank] = send
	c.Barrier()
	order := c.deliveryOrder(1 << q)
	for i := 0; i < 1<<q; i++ {
		j := i
		if order != nil {
			j = order[i]
		}
		src := memberRank(j)
		chunk := w.board[src][me]
		if len(chunk) != len(recv[j]) {
			panic("mpi: GroupAlltoall chunk length mismatch")
		}
		copy(recv[j], chunk)
		if src != c.rank {
			w.Traffic.Bytes.Add(int64(16 * len(chunk)))
		}
	}
	c.Barrier()
	if c.rank == 0 {
		w.Traffic.Steps.Add(1)
	}
	c.Barrier()
}

// GroupAlltoallGather is GroupAlltoall with the receive copy replaced by an
// indexed gather: every rank posts its full local buffer and each receiver
// calls gather(me, src, recv[j]) to pull the chunk it needs out of a
// source's posted buffer, where me is the receiver's member index within its
// group. This is the fused local-permutation + swap unpack of Sec. 3.4 — the
// permutation that would otherwise need its own full-state pass rides along
// inside the copy the all-to-all performs anyway. gather must fill dst
// entirely from src; it receives whole chunks (rather than a per-element
// index function) so the caller can tile the gather for cache locality. The
// mapping is the same for every source because all ranks apply the same
// local relabeling, so gather is keyed only by the receiver's member index.
func (c *Comm) GroupAlltoallGather(bitPositions []int, post []complex128, recv [][]complex128, gather func(member int, src, dst []complex128)) {
	w := c.w
	q := len(bitPositions)
	if len(recv) != 1<<q {
		panic("mpi: GroupAlltoallGather chunk count must be 2^q")
	}
	var mask int
	for _, b := range bitPositions {
		if 1<<b >= w.size {
			panic(fmt.Sprintf("mpi: bit position %d out of range for %d ranks", b, w.size))
		}
		mask |= 1 << b
	}
	memberRank := func(j int) int {
		r := c.rank &^ mask
		for t, b := range bitPositions {
			if j&(1<<t) != 0 {
				r |= 1 << b
			}
		}
		return r
	}
	me := 0
	for t, b := range bitPositions {
		if c.rank&(1<<b) != 0 {
			me |= 1 << t
		}
	}
	if f := w.fault; f != nil {
		c.faultDelay(f.PostDelay)
	}
	w.board[c.rank] = [][]complex128{post}
	c.Barrier()
	order := c.deliveryOrder(1 << q)
	for i := 0; i < 1<<q; i++ {
		j := i
		if order != nil {
			j = order[i]
		}
		src := memberRank(j)
		full := w.board[src][0]
		dst := recv[j]
		gather(me, full, dst)
		if src != c.rank {
			w.Traffic.Bytes.Add(int64(16 * len(dst)))
		}
	}
	c.Barrier()
	if c.rank == 0 {
		w.Traffic.Steps.Add(1)
	}
	c.Barrier()
}

// AllreduceSum returns the sum of x over all ranks (the final reduction of
// the entropy calculation, Sec. 4.2.2).
func (c *Comm) AllreduceSum(x float64) float64 {
	w := c.w
	w.reduce[c.rank] = x
	c.Barrier()
	var s float64
	for _, v := range w.reduce {
		s += v
	}
	c.Barrier()
	return s
}

// AllgatherFloat64 returns every rank's contribution, indexed by rank
// (used to share per-rank probability weights for distributed sampling).
func (c *Comm) AllgatherFloat64(x float64) []float64 {
	w := c.w
	w.reduce[c.rank] = x
	c.Barrier()
	out := make([]float64, w.size)
	copy(out, w.reduce)
	c.Barrier()
	return out
}

// PairExchange swaps buffers with a partner rank: send goes to partner,
// recv receives the partner's send. Both sides must call with matching
// lengths. This is the pairwise exchange of the first multi-node scheme
// ([19]) used by the per-gate baseline.
func (c *Comm) PairExchange(partner int, send, recv []complex128) {
	if partner == c.rank {
		copy(recv, send)
		return
	}
	w := c.w
	if f := w.fault; f != nil {
		c.faultDelay(f.PostDelay)
	}
	w.pair[c.rank][partner] <- send
	theirs := <-w.pair[partner][c.rank]
	if len(theirs) != len(recv) {
		panic("mpi: PairExchange length mismatch")
	}
	copy(recv, theirs)
	w.Traffic.Bytes.Add(int64(16 * len(recv)))
	// Handshake so neither side reuses its send buffer early.
	w.pairAck[c.rank][partner] <- struct{}{}
	<-w.pairAck[partner][c.rank]
	// Step counting is left to the caller: one machine-wide round of
	// pairwise exchanges is a single communication step regardless of the
	// number of pairs.
}

// AddSteps lets engines record communication steps for operations (like a
// machine-wide round of pairwise exchanges) whose step structure the
// primitives cannot see. Call from a single rank.
func (c *Comm) AddSteps(n int) { c.w.Traffic.Steps.Add(int64(n)) }

// barrier is a reusable sense-counting barrier that can be poisoned: once a
// rank fails, every current and future wait unwinds via a barrierPoisoned
// panic instead of blocking on a participant that will never arrive.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    int
	failed bool
}

// barrierPoisoned unwinds a rank goroutine out of a collective after
// another rank failed. World.Run recovers it; it never escapes the package.
type barrierPoisoned struct{}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	if b.n == 1 {
		return
	}
	b.mu.Lock()
	if b.failed {
		b.mu.Unlock()
		panic(barrierPoisoned{})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen && !b.failed {
			b.cond.Wait()
		}
		if b.failed {
			b.mu.Unlock()
			panic(barrierPoisoned{})
		}
	}
	b.mu.Unlock()
}

// poison marks the barrier failed and wakes every waiter.
func (b *barrier) poison() {
	b.mu.Lock()
	b.failed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset re-arms the barrier for a new Run on the same world.
func (b *barrier) reset() {
	b.mu.Lock()
	b.count = 0
	b.failed = false
	b.mu.Unlock()
}
