// Package mpi simulates the message-passing layer of Sec. 3.4 of Häner &
// Steiger, SC'17. Ranks run as goroutines inside one process; the
// primitives mirror the MPI subset the simulator needs: barrier,
// (group-)all-to-all, all-reduce, and the pairwise half-vector exchange of
// the De Raedt-style baseline scheme.
//
// Communication structure is exact — who sends how many bytes where, and
// how many collective steps happen, are the quantities the paper optimizes
// and are counted faithfully. Wall-clock behaviour of a Cray Aries network
// is out of scope here; package perfmodel maps the recorded traffic onto a
// network model for the paper-scale projections.
//
// Beyond the happy path, the layer is built to FAIL DETECTABLY — the
// property checkpoint/restart needs from its transport:
//
//   - Payload integrity: with SetVerifyChecksums(true), every collective
//     carries a CRC32C per posted chunk and receivers verify what they
//     read; a flipped bit surfaces as an error wrapping ErrCorrupt instead
//     of silently wrong amplitudes.
//   - Dead ranks: a rank that vanishes mid-run (FaultPlan.Crash, or a
//     panic) never leaves the survivors hanging. The scheduler tracks what
//     every rank is blocked on; the moment all live ranks are provably
//     stuck waiting for a dead one, the run unwinds with an error wrapping
//     ErrRankDead.
//   - Hung ranks: SetDeadline arms a wall-clock bound on the whole Run; on
//     expiry the run unwinds with an error wrapping ErrStalled that names
//     the collective each stuck rank was blocked in.
//
// Recoverable reports whether an error is one of these detected transport
// failures — the class dist.Run's checkpoint/restart loop retries.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qusim/internal/telemetry"
)

// Detected-failure classes. Errors returned by Run wrap one (or more) of
// these; see Recoverable.
var (
	// ErrCorrupt marks a payload whose checksum did not verify.
	ErrCorrupt = errors.New("payload corruption detected")
	// ErrRankDead marks a rank that vanished mid-run.
	ErrRankDead = errors.New("rank dead")
	// ErrStalled marks a run that stopped making progress (deadline
	// exceeded, or every live rank provably stuck).
	ErrStalled = errors.New("collective stalled")
)

// Recoverable reports whether err is a detected transport failure — the
// class of errors a checkpoint/restart layer can retry, as opposed to a
// programming error or an engine failure.
func Recoverable(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrRankDead) || errors.Is(err, ErrStalled)
}

// Traffic accumulates communication statistics across all ranks.
type Traffic struct {
	// Steps counts collective communication steps (an all-to-all round or a
	// pairwise exchange round counts once, matching the paper's counting
	// where one global-to-local swap == one communication step).
	Steps atomic.Int64
	// Bytes counts payload bytes that crossed rank boundaries (self-copies
	// are free).
	Bytes atomic.Int64
}

// posting is one rank's contribution to an all-to-all board: the chunks it
// offers plus (when checksums are on) a CRC32C per chunk, computed before
// the payload hits the "wire" so receivers can audit what arrived.
type posting struct {
	chunks [][]complex128
	sums   []uint32 // nil when checksum verification is off
}

// pairSlot is the mailbox for one direction of a pairwise exchange.
type pairSlot struct {
	data   []complex128
	sum    uint32
	hasSum bool
	full   bool
}

// World coordinates size ranks.
type World struct {
	size    int
	k       *coord
	board   []posting // board[src] posted for an all-to-all
	pairBox [][]pairSlot
	reduce  []float64
	Traffic Traffic

	verifySums bool
	deadline   time.Duration

	fault       *FaultPlan // armed by InjectFaults; nil = clean runs
	faultEvents atomic.Int64

	tel *worldTel // armed by SetTelemetry; nil = no instrumentation
}

// NewWorld creates a world of the given size (ranks are 0…size−1).
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &World{
		size:   size,
		k:      newCoord(size),
		board:  make([]posting, size),
		reduce: make([]float64, size),
	}
	w.pairBox = make([][]pairSlot, size)
	for i := range w.pairBox {
		w.pairBox[i] = make([]pairSlot, size)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetVerifyChecksums toggles CRC32C verification of every collective's
// payload (off by default). Must be set before Run.
func (w *World) SetVerifyChecksums(on bool) { w.verifySums = on }

// SetDeadline bounds the wall time of each subsequent Run. When exceeded,
// blocked ranks unwind and Run returns an error wrapping ErrStalled that
// names the collective each stuck rank was waiting in. Zero disables the
// deadline. A Run that trips its deadline may leak the goroutines of ranks
// hung outside the communication layer; the world must not be reused after
// a deadline failure.
func (w *World) SetDeadline(d time.Duration) { w.deadline = d }

// Run spawns one goroutine per rank executing fn and waits for all of them.
// The first panic is re-raised on the caller.
//
// A rank that returns an error (or panics) poisons the world's
// coordinator, so ranks blocked inside a collective unwind immediately
// instead of waiting for a participant that will never arrive — Run
// reports the failure rather than deadlocking. Poisoned ranks' partial
// results are discarded along with the world.
//
// Failure detection beyond explicit errors:
//   - a rank that dies silently (FaultPlan.Crash) is detected as soon as
//     every surviving rank is provably blocked on it (no timer needed);
//   - SetDeadline adds a wall-clock bound for ranks hung outside the
//     communication layer.
func (w *World) Run(fn func(c *Comm) error) error {
	k := w.k
	k.reset()
	for i := range w.board {
		w.board[i] = posting{}
	}
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					switch v := p.(type) {
					case poisonUnwind:
						// Unwound out of a collective after another rank
						// failed; that rank carries the real error.
						k.markDone(rank)
					case rankCrashed:
						// Injected silent death: no error, no poison — the
						// survivors must detect the loss themselves.
						k.markDead(rank)
					case collectiveError:
						k.fail(rank, v.err, nil)
					default:
						k.fail(rank, nil, p)
					}
					return
				}
			}()
			if err := fn(&Comm{w: w, rank: rank, frand: w.newFaultRand(rank), tel: w.tel, scope: w.commScope(rank)}); err != nil {
				k.fail(rank, err, nil)
			} else {
				k.markDone(rank)
			}
		}(r)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var expired chan struct{}
	var watchdog *time.Timer
	if w.deadline > 0 {
		expired = make(chan struct{})
		d := w.deadline
		tel := w.tel
		if tel != nil {
			tel.watchArmed.Inc()
			tel.worldScope.Instant("mpi", "watchdog.arm", telemetry.A("deadline_ms", d.Milliseconds()))
		}
		watchdog = time.AfterFunc(d, func() {
			if tel != nil {
				tel.watchFired.Inc()
				tel.worldScope.Instant("mpi", "watchdog.expire")
			}
			k.poisonDeadline(d)
			close(expired)
		})
	}
	if expired != nil {
		select {
		case <-done:
		case <-expired:
			// Ranks hung outside the communication layer cannot be unwound;
			// report without joining them (their goroutines leak, the world
			// is dead). Ranks blocked in collectives have been poisoned and
			// exit on their own.
		}
		watchdog.Stop()
		if w.tel != nil {
			w.tel.worldScope.Instant("mpi", "watchdog.disarm")
		}
	} else {
		<-done
	}
	err := k.result()
	if w.tel != nil && err != nil {
		if errors.Is(err, ErrRankDead) {
			w.tel.deadRank.Inc()
		}
		if errors.Is(err, ErrStalled) {
			w.tel.stallDetect.Inc()
		}
	}
	return err
}

// coord is the world's failure-aware synchronization core: one mutex+cond
// covering the sense barrier, the pairwise-exchange mailboxes, and the
// per-rank progress accounting that turns a dead rank into a detected
// deadlock instead of a hang.
type coord struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int

	count int // barrier arrivals this generation
	gen   int

	failed  bool
	failErr error // first detected stall/crash/deadline failure
	rankErr error // first explicit rank error (incl. checksum failures)
	rankPan any   // first rank panic, re-raised by Run

	state []rankState
	dead  int
	done  int
}

type rankStatus int

const (
	statusRunning rankStatus = iota
	statusDone
	statusDead
)

type waitKind int

const (
	waitNone waitKind = iota
	waitBarrier
	waitSlot
)

// rankState is one rank's progress record, guarded by coord.mu. A rank
// counts as "stuck" only if its recorded wait is provably unsatisfiable
// right now (barrier generation unchanged, or mailbox predicate false) —
// a rank whose wake-up condition already holds is runnable, so the
// deadlock check never fires on transient states.
type rankState struct {
	status   rankStatus
	kind     waitKind
	label    string // collective the rank is blocked in
	gen      int    // awaited barrier generation (waitBarrier)
	slot     *pairSlot
	wantFull bool // awaited mailbox state (waitSlot)
}

// poisonUnwind unwinds a rank goroutine out of a collective after another
// rank failed. World.Run recovers it; it never escapes the package.
type poisonUnwind struct{}

// rankCrashed is the injected silent death of FaultPlan.Crash.
type rankCrashed struct{}

// collectiveError carries a detected integrity failure out of a collective.
type collectiveError struct{ err error }

func newCoord(n int) *coord {
	k := &coord{n: n, state: make([]rankState, n)}
	k.cond = sync.NewCond(&k.mu)
	return k
}

// reset re-arms the coordinator for a new Run on the same world.
func (k *coord) reset() {
	k.mu.Lock()
	k.count, k.gen = 0, 0
	k.failed = false
	k.failErr, k.rankErr, k.rankPan = nil, nil, nil
	for i := range k.state {
		k.state[i] = rankState{}
	}
	k.dead, k.done = 0, 0
	k.mu.Unlock()
}

// poison wakes every waiter into a poisonUnwind. Caller holds mu.
func (k *coord) poisonLocked() {
	if !k.failed {
		k.failed = true
		k.cond.Broadcast()
	}
}

// fail records a rank's explicit failure (error or panic) and poisons.
func (k *coord) fail(rank int, err error, pan any) {
	k.mu.Lock()
	if err != nil && k.rankErr == nil {
		k.rankErr = err
	}
	if pan != nil && k.rankPan == nil {
		k.rankPan = pan
	}
	k.setStatus(rank, statusDone)
	k.poisonLocked()
	k.mu.Unlock()
}

func (k *coord) markDone(rank int) {
	k.mu.Lock()
	k.setStatus(rank, statusDone)
	k.maybeStuckLocked()
	k.mu.Unlock()
}

func (k *coord) markDead(rank int) {
	k.mu.Lock()
	k.setStatus(rank, statusDead)
	k.maybeStuckLocked()
	k.mu.Unlock()
}

func (k *coord) setStatus(rank int, s rankStatus) {
	if k.state[rank].status != statusRunning {
		return
	}
	k.state[rank].status = s
	if s == statusDead {
		k.dead++
	} else {
		k.done++
	}
}

// poisonDeadline fires from the Run watchdog: every rank still blocked in a
// collective is reported by name.
func (k *coord) poisonDeadline(d time.Duration) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.failed || k.done+k.dead == k.n {
		return
	}
	stuck := k.stuckLabelsLocked()
	detail := "no rank was blocked in a collective (compute overran the deadline)"
	if len(stuck) > 0 {
		detail = "stuck in " + strings.Join(stuck, ", ")
	}
	k.failErr = fmt.Errorf("mpi: deadline %v exceeded: %s: %w", d, detail, ErrStalled)
	k.poisonLocked()
}

// stuckLabelsLocked summarizes which ranks are blocked where.
func (k *coord) stuckLabelsLocked() []string {
	byLabel := map[string][]int{}
	for r := range k.state {
		st := &k.state[r]
		if st.status == statusRunning && st.kind != waitNone {
			byLabel[st.label] = append(byLabel[st.label], r)
		}
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]string, 0, len(labels))
	for _, l := range labels {
		out = append(out, fmt.Sprintf("%s (ranks %v)", l, byLabel[l]))
	}
	return out
}

// maybeStuckLocked is the exact deadlock detector: it fires only when every
// rank is dead, done, or blocked on a condition that cannot currently be
// satisfied. One runnable rank anywhere vetoes it. Caller holds mu.
func (k *coord) maybeStuckLocked() {
	if k.failed {
		return
	}
	stuck := 0
	for r := range k.state {
		st := &k.state[r]
		if st.status != statusRunning {
			continue
		}
		switch st.kind {
		case waitNone:
			return // running rank: progress is still possible
		case waitBarrier:
			if st.gen != k.gen {
				return // barrier released; rank will wake
			}
		case waitSlot:
			if st.slot.full == st.wantFull {
				return // mailbox condition satisfied; rank will wake
			}
		}
		stuck++
	}
	if stuck == 0 {
		return // everyone finished or died; Run reports deaths directly
	}
	deadRanks := []int{}
	for r := range k.state {
		if k.state[r].status == statusDead {
			deadRanks = append(deadRanks, r)
		}
	}
	detail := strings.Join(k.stuckLabelsLocked(), ", ")
	if k.dead > 0 {
		k.failErr = fmt.Errorf("mpi: ranks %v dead, survivors stuck in %s: %w (%w)",
			deadRanks, detail, ErrRankDead, ErrStalled)
	} else {
		k.failErr = fmt.Errorf("mpi: collective mismatch, all live ranks stuck in %s: %w", detail, ErrStalled)
	}
	k.poisonLocked()
}

// result assembles Run's outcome once the ranks have been joined (or
// abandoned on deadline).
func (k *coord) result() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.rankPan != nil {
		panic(k.rankPan)
	}
	if k.rankErr != nil {
		return k.rankErr
	}
	if k.failErr != nil {
		return k.failErr
	}
	if k.dead > 0 {
		deadRanks := []int{}
		for r := range k.state {
			if k.state[r].status == statusDead {
				deadRanks = append(deadRanks, r)
			}
		}
		return fmt.Errorf("mpi: ranks %v vanished during the run: %w", deadRanks, ErrRankDead)
	}
	return nil
}

// barrierWait blocks rank until every rank has entered the current barrier
// generation, recording the collective's name for failure reports.
func (k *coord) barrierWait(rank int, label string) {
	if k.n == 1 {
		return
	}
	k.mu.Lock()
	if k.failed {
		k.mu.Unlock()
		panic(poisonUnwind{})
	}
	gen := k.gen
	k.count++
	if k.count == k.n {
		k.count = 0
		k.gen++
		k.cond.Broadcast()
		k.mu.Unlock()
		return
	}
	k.state[rank].kind, k.state[rank].label, k.state[rank].gen = waitBarrier, label, gen
	k.maybeStuckLocked()
	for gen == k.gen && !k.failed {
		k.cond.Wait()
	}
	k.state[rank].kind = waitNone
	if k.failed {
		k.mu.Unlock()
		panic(poisonUnwind{})
	}
	k.mu.Unlock()
}

// slotWait blocks rank until slot.full == wantFull. Caller holds mu; the
// lock is held on return (unless poisoned, which unwinds).
func (k *coord) slotWaitLocked(rank int, label string, slot *pairSlot, wantFull bool) {
	for slot.full != wantFull && !k.failed {
		k.state[rank].kind, k.state[rank].label = waitSlot, label
		k.state[rank].slot, k.state[rank].wantFull = slot, wantFull
		k.maybeStuckLocked()
		k.cond.Wait()
		k.state[rank].kind = waitNone
	}
	k.state[rank].kind = waitNone
	if k.failed {
		k.mu.Unlock()
		panic(poisonUnwind{})
	}
}

// Comm is one rank's handle on the world.
type Comm struct {
	w     *World
	rank  int
	frand *rand.Rand // per-rank fault RNG, nil when injection is disarmed

	tel   *worldTel        // world telemetry handles, nil when disarmed
	scope *telemetry.Scope // this rank's comm timeline, nil when disarmed

	collSeq    int            // collective entries on this rank (crash counter)
	payloadSeq int            // payload-carrying collective entries (corruption counter)
	labelSeq   map[string]int // per-label entry counters (labeled fault points)
	sumBuf     []byte
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.enterCollective("Barrier", false)
	t0 := c.collStart()
	if f := c.w.fault; f != nil {
		c.faultDelay(f.BarrierJitter)
	}
	c.w.k.barrierWait(c.rank, "Barrier")
	c.collEnd("Barrier", t0)
}

// barrier is the internal form used inside collectives: same wait, labeled
// with the enclosing collective, not counted as a separate entry.
func (c *Comm) barrier(label string) {
	if f := c.w.fault; f != nil {
		c.faultDelay(f.BarrierJitter)
	}
	c.w.k.barrierWait(c.rank, label)
}

// chunkSum is CRC32C over the little-endian encoding of a chunk.
func (c *Comm) chunkSum(a []complex128) uint32 {
	const window = 4096 // amps per staging pass
	if c.sumBuf == nil {
		c.sumBuf = make([]byte, window*16)
	}
	var crc uint32
	for off := 0; off < len(a); off += window {
		n := len(a) - off
		if n > window {
			n = window
		}
		for i, v := range a[off : off+n] {
			binary.LittleEndian.PutUint64(c.sumBuf[16*i:], math.Float64bits(real(v)))
			binary.LittleEndian.PutUint64(c.sumBuf[16*i+8:], math.Float64bits(imag(v)))
		}
		crc = crc32.Update(crc, castagnoli, c.sumBuf[:n*16])
	}
	return crc
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// post assembles this rank's board posting: checksums first (over the true
// data), then the fault layer's wire corruption, so an injected flip is
// visible to the receiver's audit exactly like real in-flight corruption.
func (c *Comm) post(chunks [][]complex128) posting {
	p := posting{chunks: chunks}
	if c.w.verifySums {
		p.sums = make([]uint32, len(chunks))
		for i, ch := range chunks {
			p.sums[i] = c.chunkSum(ch)
		}
	}
	p.chunks = c.maybeCorrupt(p.chunks)
	return p
}

// verifyChunk audits a received chunk against the sender's posted CRC.
func (c *Comm) verifyChunk(label string, src int, chunk []complex128, sums []uint32, idx int) {
	if sums == nil {
		return
	}
	if got := c.chunkSum(chunk); got != sums[idx] {
		if c.tel != nil {
			c.tel.sumFailed.Inc()
		}
		panic(collectiveError{fmt.Errorf(
			"mpi: %s chunk from rank %d failed checksum (got %08x, posted %08x): %w",
			label, src, got, sums[idx], ErrCorrupt)})
	}
	if c.tel != nil {
		c.tel.verified.Inc()
	}
}

// Alltoall performs a world all-to-all: send[j] goes to rank j, and recv[i]
// receives rank i's chunk for this rank. All chunks must have equal length;
// recv slices must be pre-allocated. This is the "one all-to-all on
// MPI_COMM_WORLD" that swaps every global qubit with local ones.
func (c *Comm) Alltoall(send, recv [][]complex128) {
	w := c.w
	if len(send) != w.size || len(recv) != w.size {
		panic("mpi: Alltoall chunk count must equal world size")
	}
	c.enterCollective("Alltoall", true)
	t0 := c.collStart()
	if f := w.fault; f != nil {
		c.faultDelay(f.PostDelay)
	}
	w.board[c.rank] = c.post(send)
	c.barrier("Alltoall")
	order := c.deliveryOrder(w.size)
	for i := 0; i < w.size; i++ {
		src := i
		if order != nil {
			src = order[i]
		}
		p := &w.board[src]
		chunk := p.chunks[c.rank]
		if len(chunk) != len(recv[src]) {
			panic("mpi: Alltoall chunk length mismatch")
		}
		c.verifyChunk("Alltoall", src, chunk, p.sums, c.rank)
		copy(recv[src], chunk)
		if src != c.rank {
			c.countBytes(int64(16 * len(chunk)))
		}
	}
	c.barrier("Alltoall")
	if c.rank == 0 {
		c.countSteps(1)
	}
	c.barrier("Alltoall")
	c.collEnd("Alltoall", t0)
}

// groupGeometry resolves the member-index machinery shared by the grouped
// collectives.
func (c *Comm) groupGeometry(bitPositions []int) (memberRank func(int) int, me int) {
	w := c.w
	var mask int
	for _, b := range bitPositions {
		if 1<<b >= w.size {
			panic(fmt.Sprintf("mpi: bit position %d out of range for %d ranks", b, w.size))
		}
		mask |= 1 << b
	}
	memberRank = func(j int) int {
		r := c.rank &^ mask
		for t, b := range bitPositions {
			if j&(1<<t) != 0 {
				r |= 1 << b
			}
		}
		return r
	}
	for t, b := range bitPositions {
		if c.rank&(1<<b) != 0 {
			me |= 1 << t
		}
	}
	return memberRank, me
}

// GroupAlltoall performs simultaneous all-to-alls within groups of ranks
// that agree on every rank bit outside bitPositions — the group-local
// all-to-alls of a q-qubit global-to-local swap (Sec. 3.4). send and recv
// are indexed by group-member index: member j is the rank whose bits at
// bitPositions spell j (bitPositions[t] holds bit t of j).
func (c *Comm) GroupAlltoall(bitPositions []int, send, recv [][]complex128) {
	w := c.w
	q := len(bitPositions)
	if len(send) != 1<<q || len(recv) != 1<<q {
		panic("mpi: GroupAlltoall chunk count must be 2^q")
	}
	memberRank, me := c.groupGeometry(bitPositions)
	c.enterCollective("GroupAlltoall", true)
	t0 := c.collStart()
	if f := w.fault; f != nil {
		c.faultDelay(f.PostDelay)
	}
	w.board[c.rank] = c.post(send)
	c.barrier("GroupAlltoall")
	order := c.deliveryOrder(1 << q)
	for i := 0; i < 1<<q; i++ {
		j := i
		if order != nil {
			j = order[i]
		}
		src := memberRank(j)
		p := &w.board[src]
		chunk := p.chunks[me]
		if len(chunk) != len(recv[j]) {
			panic("mpi: GroupAlltoall chunk length mismatch")
		}
		c.verifyChunk("GroupAlltoall", src, chunk, p.sums, me)
		copy(recv[j], chunk)
		if src != c.rank {
			c.countBytes(int64(16 * len(chunk)))
		}
	}
	c.barrier("GroupAlltoall")
	if c.rank == 0 {
		c.countSteps(1)
	}
	c.barrier("GroupAlltoall")
	c.collEnd("GroupAlltoall", t0)
}

// GroupAlltoallGather is GroupAlltoall with the receive copy replaced by an
// indexed gather: every rank posts its full local buffer and each receiver
// calls gather(me, src, recv[j]) to pull the chunk it needs out of a
// source's posted buffer, where me is the receiver's member index within its
// group. This is the fused local-permutation + swap unpack of Sec. 3.4 — the
// permutation that would otherwise need its own full-state pass rides along
// inside the copy the all-to-all performs anyway. gather must fill dst
// entirely from src; it receives whole chunks (rather than a per-element
// index function) so the caller can tile the gather for cache locality. The
// mapping is the same for every source because all ranks apply the same
// local relabeling, so gather is keyed only by the receiver's member index.
//
// With checksums on, each receiver audits a source's full posted buffer
// before gathering from it — the gather output is a permutation of the
// source bytes, so the source buffer is the only thing a CRC can cover.
func (c *Comm) GroupAlltoallGather(bitPositions []int, post []complex128, recv [][]complex128, gather func(member int, src, dst []complex128)) {
	w := c.w
	q := len(bitPositions)
	if len(recv) != 1<<q {
		panic("mpi: GroupAlltoallGather chunk count must be 2^q")
	}
	memberRank, me := c.groupGeometry(bitPositions)
	c.enterCollective("GroupAlltoallGather", true)
	t0 := c.collStart()
	if f := w.fault; f != nil {
		c.faultDelay(f.PostDelay)
	}
	w.board[c.rank] = c.post([][]complex128{post})
	c.barrier("GroupAlltoallGather")
	order := c.deliveryOrder(1 << q)
	verified := make(map[int]bool, 1<<q)
	for i := 0; i < 1<<q; i++ {
		j := i
		if order != nil {
			j = order[i]
		}
		src := memberRank(j)
		p := &w.board[src]
		full := p.chunks[0]
		if p.sums != nil && !verified[src] {
			c.verifyChunk("GroupAlltoallGather", src, full, p.sums, 0)
			verified[src] = true
		}
		dst := recv[j]
		gather(me, full, dst)
		if src != c.rank {
			c.countBytes(int64(16 * len(dst)))
		}
	}
	c.barrier("GroupAlltoallGather")
	if c.rank == 0 {
		c.countSteps(1)
	}
	c.barrier("GroupAlltoallGather")
	c.collEnd("GroupAlltoallGather", t0)
}

// AllreduceSum returns the sum of x over all ranks (the final reduction of
// the entropy calculation, Sec. 4.2.2).
func (c *Comm) AllreduceSum(x float64) float64 {
	c.enterCollective("AllreduceSum", false)
	t0 := c.collStart()
	w := c.w
	w.reduce[c.rank] = x
	c.barrier("AllreduceSum")
	var s float64
	for _, v := range w.reduce {
		s += v
	}
	c.barrier("AllreduceSum")
	c.collEnd("AllreduceSum", t0)
	return s
}

// AllgatherFloat64 returns every rank's contribution, indexed by rank
// (used to share per-rank probability weights for distributed sampling).
func (c *Comm) AllgatherFloat64(x float64) []float64 {
	c.enterCollective("AllgatherFloat64", false)
	t0 := c.collStart()
	w := c.w
	w.reduce[c.rank] = x
	c.barrier("AllgatherFloat64")
	out := make([]float64, w.size)
	copy(out, w.reduce)
	c.barrier("AllgatherFloat64")
	c.collEnd("AllgatherFloat64", t0)
	return out
}

// PairExchange swaps buffers with a partner rank: send goes to partner,
// recv receives the partner's send. Both sides must call with matching
// lengths. This is the pairwise exchange of the first multi-node scheme
// ([19]) used by the per-gate baseline.
func (c *Comm) PairExchange(partner int, send, recv []complex128) {
	if partner == c.rank {
		copy(recv, send)
		return
	}
	w := c.w
	k := w.k
	c.enterCollective("PairExchange", true)
	t0 := c.collStart()
	if f := w.fault; f != nil {
		c.faultDelay(f.PostDelay)
	}
	wire := c.post([][]complex128{send})

	k.mu.Lock()
	if k.failed {
		k.mu.Unlock()
		panic(poisonUnwind{})
	}
	mine := &w.pairBox[c.rank][partner]
	mine.data = wire.chunks[0]
	if wire.sums != nil {
		mine.sum, mine.hasSum = wire.sums[0], true
	} else {
		mine.sum, mine.hasSum = 0, false
	}
	mine.full = true
	k.cond.Broadcast()

	theirs := &w.pairBox[partner][c.rank]
	k.slotWaitLocked(c.rank, "PairExchange", theirs, true)
	data, sum, hasSum := theirs.data, theirs.sum, theirs.hasSum
	k.mu.Unlock()

	if len(data) != len(recv) {
		panic("mpi: PairExchange length mismatch")
	}
	if hasSum {
		if got := c.chunkSum(data); got != sum {
			if c.tel != nil {
				c.tel.sumFailed.Inc()
			}
			panic(collectiveError{fmt.Errorf(
				"mpi: PairExchange payload from rank %d failed checksum (got %08x, posted %08x): %w",
				partner, got, sum, ErrCorrupt)})
		}
		if c.tel != nil {
			c.tel.verified.Inc()
		}
	}
	copy(recv, data)
	c.countBytes(int64(16 * len(recv)))

	k.mu.Lock()
	theirs.full = false
	theirs.data = nil
	k.cond.Broadcast()
	// Wait for the partner to consume our posting, so neither side reuses
	// its send buffer early.
	k.slotWaitLocked(c.rank, "PairExchange", mine, false)
	k.mu.Unlock()
	c.collEnd("PairExchange", t0)
	// Step counting is left to the caller: one machine-wide round of
	// pairwise exchanges is a single communication step regardless of the
	// number of pairs.
}

// AddSteps lets engines record communication steps for operations (like a
// machine-wide round of pairwise exchanges) whose step structure the
// primitives cannot see. Call from a single rank.
func (c *Comm) AddSteps(n int) { c.countSteps(int64(n)) }
