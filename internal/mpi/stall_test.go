package mpi

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestStallSurfacesWithDeadline pins the hung-node contract: a rank frozen
// longer than the world's deadline must surface as an error wrapping
// ErrStalled for the survivors — a recoverable classification the restart
// loop above keys on — never as a hang.
func TestStallSurfacesWithDeadline(t *testing.T) {
	w := NewWorld(4)
	stall := &StallFault{Rank: 1, Collective: 1, Duration: 500 * time.Millisecond}
	w.InjectFaults(&FaultPlan{Stall: stall})
	w.SetDeadline(50 * time.Millisecond)
	err := w.Run(func(c *Comm) error {
		c.Barrier() // collective 0: everyone passes
		c.Barrier() // collective 1: rank 1 freezes on entry
		return nil
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if !stall.Fired() {
		t.Error("stall fault did not report firing")
	}
	if !Recoverable(err) {
		t.Errorf("a stalled run should be Recoverable: %v", err)
	}
}

// TestStallCompletesLateWithoutDeadline: with no deadline armed a stall is
// pure latency — the collective completes once the rank wakes, and the
// result is indistinguishable from a slow run.
func TestStallCompletesLateWithoutDeadline(t *testing.T) {
	w := NewWorld(4)
	stall := &StallFault{Rank: 2, Collective: 0, Duration: 20 * time.Millisecond}
	w.InjectFaults(&FaultPlan{Stall: stall})
	start := time.Now()
	err := w.Run(func(c *Comm) error {
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("stalled-but-undeadlined run failed: %v", err)
	}
	if !stall.Fired() {
		t.Fatal("stall never fired — the scenario tested nothing")
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("run finished in %v, before the stall could have elapsed", elapsed)
	}
}

// TestLabeledCrashTargetsCollectiveKind: with Label set, Collective indexes
// only collectives of that kind, so Label "Barrier" / index 1 must let the
// rank pass an interleaved AllreduceSum and die on the second Barrier —
// the mechanism qchaos and the dist tests use to kill a rank inside the
// checkpoint commit collective specifically.
func TestLabeledCrashTargetsCollectiveKind(t *testing.T) {
	w := NewWorld(4)
	crash := &CrashFault{Rank: 1, Collective: 1, Label: "Barrier"}
	w.InjectFaults(&FaultPlan{Crash: crash})
	var afterReduce atomic.Int64
	err := w.Run(func(c *Comm) error {
		c.Barrier()       // Barrier #0: everyone passes
		c.AllreduceSum(1) // overall collective 1, but not a Barrier
		afterReduce.Add(1)
		c.Barrier() // Barrier #1: rank 1 dies on entry
		return nil
	})
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("err = %v, want ErrRankDead", err)
	}
	if !crash.Fired() {
		t.Fatal("labeled crash never fired")
	}
	if got := afterReduce.Load(); got != 4 {
		t.Errorf("%d ranks passed the AllreduceSum, want all 4 — the label filter misfired early", got)
	}
}
