package mpi

import (
	"testing"
	"time"

	"qusim/internal/telemetry"
)

// TestTelemetryCountsMatchTraffic asserts the telemetry byte/step counters
// agree exactly with the World's authoritative Traffic accounting, and that
// instrumented collectives populate their latency histograms and comm-side
// trace spans.
func TestTelemetryCountsMatchTraffic(t *testing.T) {
	const ranks = 8
	tel := telemetry.New()
	w := NewWorld(ranks)
	w.SetTelemetry(tel)
	w.SetVerifyChecksums(true)

	err := w.Run(func(c *Comm) error {
		chunks := make([][]complex128, ranks)
		recv := make([][]complex128, ranks)
		for i := range chunks {
			chunks[i] = make([]complex128, 4)
			recv[i] = make([]complex128, 4)
			for j := range chunks[i] {
				chunks[i][j] = complex(float64(c.Rank()), float64(i))
			}
		}
		c.Barrier()
		c.Alltoall(chunks, recv)
		c.AllreduceSum(float64(c.Rank()))
		partner := c.Rank() ^ 1
		buf := make([]complex128, 8)
		c.PairExchange(partner, buf, buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := tel.Counter("mpi.bytes").Value(), w.Traffic.Bytes.Load(); got != want {
		t.Errorf("mpi.bytes = %d, Traffic.Bytes = %d", got, want)
	}
	if got, want := tel.Counter("mpi.steps").Value(), w.Traffic.Steps.Load(); got != want {
		t.Errorf("mpi.steps = %d, Traffic.Steps = %d", got, want)
	}
	if got := tel.Counter("mpi.bytes").Value(); got == 0 {
		t.Error("no bytes counted")
	}
	if got := tel.Counter("mpi.checksums_verified").Value(); got == 0 {
		t.Error("checksums on but none verified")
	}
	if got := tel.Counter("mpi.checksums_failed").Value(); got != 0 {
		t.Errorf("mpi.checksums_failed = %d on a clean run", got)
	}
	for _, metric := range []string{
		"mpi.barrier_ns", "mpi.alltoall_ns", "mpi.allreduce_sum_ns", "mpi.pair_exchange_ns",
	} {
		h := tel.Histogram(metric)
		if h.Count() != ranks {
			t.Errorf("%s count = %d, want %d (one per rank)", metric, h.Count(), ranks)
		}
		if h.Sum() <= 0 {
			t.Errorf("%s sum = %d, want > 0", metric, h.Sum())
		}
	}
	// Each rank's comm timeline: barrier + alltoall + allreduce + exchange.
	if got, want := tel.SpanCount(), 4*ranks; got != want {
		t.Errorf("span count = %d, want %d", got, want)
	}
}

// TestTelemetryWatchdog asserts the deadline watchdog's lifecycle is
// counted: armed on every Run under a deadline, expired when it fires.
func TestTelemetryWatchdog(t *testing.T) {
	tel := telemetry.New()
	w := NewWorld(2)
	w.SetTelemetry(tel)
	w.SetDeadline(time.Hour)
	if err := w.Run(func(c *Comm) error { c.Barrier(); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter("mpi.watchdog_armed").Value(); got != 1 {
		t.Errorf("watchdog_armed = %d, want 1", got)
	}
	if got := tel.Counter("mpi.watchdog_expired").Value(); got != 0 {
		t.Errorf("watchdog_expired = %d on a fast run", got)
	}

	// A rank hung outside the communication layer is invisible to exact
	// dead-rank detection, so only the wall-clock watchdog catches it.
	w2 := NewWorld(2)
	w2.SetTelemetry(tel)
	w2.SetDeadline(50 * time.Millisecond)
	err := w2.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(500 * time.Millisecond) // hung in "compute"
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("stalled run returned nil error")
	}
	if got := tel.Counter("mpi.watchdog_expired").Value(); got != 1 {
		t.Errorf("watchdog_expired = %d after a stall, want 1", got)
	}
	if got := tel.Counter("mpi.stalls_detected").Value(); got != 1 {
		t.Errorf("stalls_detected = %d, want 1", got)
	}
}
