package mpi

import (
	"fmt"
	"time"

	"qusim/internal/telemetry"
)

// commTID is the trace thread id the communication layer records under —
// each simulated rank is one trace process (pid = rank), with the engine
// on tid 0 and this layer on tid 1, so a rank's compute and communication
// stack on adjacent rows of the same timeline.
const commTID = 1

// worldTel holds the world's telemetry handles, resolved once in
// SetTelemetry so the per-collective path is pointer dereferences and
// atomic adds — no registry lookups, no allocation.
type worldTel struct {
	t *telemetry.Telemetry

	bytes       *telemetry.Counter // payload bytes crossing rank boundaries
	steps       *telemetry.Counter // collective communication steps
	verified    *telemetry.Counter // chunk checksums verified clean
	sumFailed   *telemetry.Counter // chunk checksums that did NOT verify
	watchArmed  *telemetry.Counter
	watchFired  *telemetry.Counter
	lat         map[string]*telemetry.Histogram // per-collective latency
	worldScope  *telemetry.Scope                // watchdog + world lifecycle events
	deadRank    *telemetry.Counter
	stallDetect *telemetry.Counter
}

// collectiveLabels are the collectives instrumented with latency
// histograms, keyed by the label used in stall reports so the trace, the
// metrics dump and the error messages all speak the same names.
var collectiveLabels = map[string]string{
	"Barrier":             "mpi.barrier_ns",
	"Alltoall":            "mpi.alltoall_ns",
	"GroupAlltoall":       "mpi.group_alltoall_ns",
	"GroupAlltoallGather": "mpi.group_alltoall_gather_ns",
	"AllreduceSum":        "mpi.allreduce_sum_ns",
	"AllgatherFloat64":    "mpi.allgather_float64_ns",
	"PairExchange":        "mpi.pair_exchange_ns",
}

// SetTelemetry arms the world with a telemetry sink: every collective gets
// a per-rank trace span and a latency histogram observation, payload bytes
// and checksum verifications are counted, and the deadline watchdog's
// arm/disarm/expiry shows up as instant events. telemetry.Disabled (or
// nil) disarms instrumentation. Must be called before Run.
func (w *World) SetTelemetry(t *telemetry.Telemetry) {
	if !t.Enabled() {
		w.tel = nil
		return
	}
	wt := &worldTel{
		t:           t,
		bytes:       t.Counter("mpi.bytes"),
		steps:       t.Counter("mpi.steps"),
		verified:    t.Counter("mpi.checksums_verified"),
		sumFailed:   t.Counter("mpi.checksums_failed"),
		watchArmed:  t.Counter("mpi.watchdog_armed"),
		watchFired:  t.Counter("mpi.watchdog_expired"),
		deadRank:    t.Counter("mpi.dead_ranks_detected"),
		stallDetect: t.Counter("mpi.stalls_detected"),
		lat:         make(map[string]*telemetry.Histogram, len(collectiveLabels)),
		worldScope:  t.Scope(telemetry.WatchdogPID, 0, "mpi transport", "watchdog"),
	}
	for label, metric := range collectiveLabels {
		wt.lat[label] = t.Histogram(metric)
	}
	w.tel = wt
}

// commScope opens rank's communication timeline for one Run. Restart
// attempts reuse the same (pid, tid), merging onto one timeline.
func (w *World) commScope(rank int) *telemetry.Scope {
	if w.tel == nil {
		return nil
	}
	return w.tel.t.Scope(rank, commTID, fmt.Sprintf("rank %d", rank), "comm")
}

// collStart returns the collective entry time when telemetry is armed, the
// zero time otherwise — so the disabled path never reads the clock.
func (c *Comm) collStart() time.Time {
	if c.tel == nil {
		return time.Time{}
	}
	return time.Now()
}

// collEnd closes a collective's instrumentation: one latency observation
// plus one span on the rank's comm timeline, both from the same clock pair.
func (c *Comm) collEnd(label string, t0 time.Time) {
	if c.tel == nil {
		return
	}
	d := time.Since(t0)
	c.tel.lat[label].Observe(int64(d))
	c.scope.Complete("mpi", label, t0, d)
}

// countBytes records payload bytes that crossed a rank boundary in both
// the exact Traffic accounting and the telemetry counter.
func (c *Comm) countBytes(n int64) {
	c.w.Traffic.Bytes.Add(n)
	if c.tel != nil {
		c.tel.bytes.Add(n)
	}
}

// countSteps records collective communication steps (called from a single
// rank per round, like Traffic.Steps).
func (c *Comm) countSteps(n int64) {
	c.w.Traffic.Steps.Add(n)
	if c.tel != nil {
		c.tel.steps.Add(n)
	}
}
