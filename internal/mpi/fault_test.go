package mpi

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// faultAlltoallRun executes one fault-injected all-to-all world and returns
// the world for counter inspection. Every rank checks the transpose
// property, so correctness under adversity is asserted inside.
func faultAlltoallRun(t *testing.T, fp *FaultPlan) *World {
	t.Helper()
	const size = 8
	const chunk = 16
	w := NewWorld(size)
	w.InjectFaults(fp)
	err := w.Run(func(c *Comm) error {
		send := make([][]complex128, size)
		recv := make([][]complex128, size)
		for j := 0; j < size; j++ {
			send[j] = make([]complex128, chunk)
			recv[j] = make([]complex128, chunk)
			for i := range send[j] {
				send[j][i] = complex(float64(c.Rank()), float64(j*chunk+i))
			}
		}
		c.Alltoall(send, recv)
		for src := 0; src < size; src++ {
			for i := 0; i < chunk; i++ {
				want := complex(float64(src), float64(c.Rank()*chunk+i))
				if recv[src][i] != want {
					return fmt.Errorf("rank %d recv[%d][%d] = %v, want %v", c.Rank(), src, i, recv[src][i], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFaultyAlltoallStillTransposes(t *testing.T) {
	fp := &FaultPlan{
		Seed:            7,
		PostDelay:       30 * time.Microsecond,
		ShuffleDelivery: true,
		BarrierJitter:   10 * time.Microsecond,
	}
	w := faultAlltoallRun(t, fp)
	if w.FaultEvents() == 0 {
		t.Error("fault plan armed but no perturbations injected")
	}
	// Traffic accounting must be oblivious to injected adversity.
	if got := w.Traffic.Steps.Load(); got != 1 {
		t.Errorf("steps = %d, want 1", got)
	}
	const size, chunk = 8, 16
	if got, want := w.Traffic.Bytes.Load(), int64(16*chunk*size*(size-1)); got != want {
		t.Errorf("bytes = %d, want %d", got, want)
	}
}

func TestFaultEventCountDeterministic(t *testing.T) {
	fp := &FaultPlan{Seed: 11, PostDelay: 5 * time.Microsecond, ShuffleDelivery: true, BarrierJitter: 5 * time.Microsecond}
	a := faultAlltoallRun(t, fp).FaultEvents()
	b := faultAlltoallRun(t, fp).FaultEvents()
	if a != b {
		t.Errorf("same seed injected %d then %d events", a, b)
	}
}

func TestFaultyPairExchange(t *testing.T) {
	const size = 8
	const n = 64
	w := NewWorld(size)
	w.InjectFaults(DefaultFaults(3))
	err := w.Run(func(c *Comm) error {
		send := make([]complex128, n)
		recv := make([]complex128, n)
		for i := range send {
			send[i] = complex(float64(c.Rank()), float64(i))
		}
		partner := c.Rank() ^ 1
		c.PairExchange(partner, send, recv)
		for i := range recv {
			if want := complex(float64(partner), float64(i)); recv[i] != want {
				return fmt.Errorf("rank %d recv[%d] = %v, want %v", c.Rank(), i, recv[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.FaultEvents() == 0 {
		t.Error("no perturbations injected on the pairwise path")
	}
	if got, want := w.Traffic.Bytes.Load(), int64(16*n*size); got != want {
		t.Errorf("bytes = %d, want %d", got, want)
	}
}

func TestGroupAlltoallUnderFaults(t *testing.T) {
	// A 2-bit group all-to-all across 8 ranks (groups of 4), with shuffled
	// delivery: values must land exactly as in the clean run.
	const size = 8
	const chunk = 8
	const q = 2
	bitPositions := []int{0, 1}
	w := NewWorld(size)
	w.InjectFaults(DefaultFaults(19))
	err := w.Run(func(c *Comm) error {
		me := c.Rank() & 3
		send := make([][]complex128, 1<<q)
		recv := make([][]complex128, 1<<q)
		for j := range send {
			send[j] = make([]complex128, chunk)
			recv[j] = make([]complex128, chunk)
			for i := range send[j] {
				send[j][i] = complex(float64(c.Rank()), float64(j*chunk+i))
			}
		}
		c.GroupAlltoall(bitPositions, send, recv)
		base := c.Rank() &^ 3
		for j := 0; j < 1<<q; j++ {
			src := base | j
			for i := 0; i < chunk; i++ {
				want := complex(float64(src), float64(me*chunk+i))
				if recv[j][i] != want {
					return fmt.Errorf("rank %d recv[%d][%d] = %v, want %v", c.Rank(), j, i, recv[j][i], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.FaultEvents() == 0 {
		t.Error("no perturbations injected")
	}
}

// TestTrafficCountersExactUnderInterleaving runs an all-to-all plus a
// machine-wide pairwise-exchange round under a GOMAXPROCS sweep — from
// fully serialized goroutines to maximum parallelism — and asserts the
// Traffic counters come out exact every time. With -race this doubles as
// the interleaving soak for the counter paths.
func TestTrafficCountersExactUnderInterleaving(t *testing.T) {
	const size = 8
	const chunk = 32
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			t.Cleanup(func() { runtime.GOMAXPROCS(old) })
			for rep := 0; rep < 10; rep++ {
				w := NewWorld(size)
				err := w.Run(func(c *Comm) error {
					// One all-to-all round.
					send := make([][]complex128, size)
					recv := make([][]complex128, size)
					for j := range send {
						send[j] = make([]complex128, chunk)
						recv[j] = make([]complex128, chunk)
					}
					c.Alltoall(send, recv)
					// One machine-wide pairwise-exchange round.
					buf := make([]complex128, chunk)
					got := make([]complex128, chunk)
					c.PairExchange(c.Rank()^1, buf, got)
					if c.Rank() == 0 {
						c.AddSteps(1)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := w.Traffic.Steps.Load(); got != 2 {
					t.Fatalf("rep %d: steps = %d, want 2 (one all-to-all + one pairwise round)", rep, got)
				}
				wantBytes := int64(16*chunk*size*(size-1)) + // all-to-all, self excluded
					int64(16*chunk*size) // pairwise: each of size ranks receives one chunk
				if got := w.Traffic.Bytes.Load(); got != wantBytes {
					t.Fatalf("rep %d: bytes = %d, want %d", rep, got, wantBytes)
				}
			}
		})
	}
}
