package mpi

import (
	"fmt"
	"testing"
)

func TestGroupAlltoallTwoBitsAmongSixteenRanks(t *testing.T) {
	// Groups over bits {0, 2}: member index j = bit0(rank) | bit2(rank)<<1.
	const size = 16
	w := NewWorld(size)
	err := w.Run(func(c *Comm) error {
		send := make([][]complex128, 4)
		recv := make([][]complex128, 4)
		for j := range send {
			send[j] = []complex128{complex(float64(c.Rank()), float64(j))}
			recv[j] = make([]complex128, 1)
		}
		c.GroupAlltoall([]int{0, 2}, send, recv)
		me := c.Rank()&1 | (c.Rank()>>2&1)<<1
		for j := 0; j < 4; j++ {
			src := c.Rank() &^ 0b101
			if j&1 != 0 {
				src |= 1
			}
			if j&2 != 0 {
				src |= 4
			}
			want := complex(float64(src), float64(me))
			if recv[j][0] != want {
				return fmt.Errorf("rank %d recv[%d] = %v, want %v", c.Rank(), j, recv[j][0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Traffic.Steps.Load() != 1 {
		t.Errorf("group all-to-all counted %d steps, want 1", w.Traffic.Steps.Load())
	}
}

func TestGroupAlltoallGatherMatchesManualUnpack(t *testing.T) {
	// Every rank posts a 16-element buffer whose values encode
	// (rank, index); the gather pulls each receiver's chunk reversed. The
	// result must match what a plain GroupAlltoall of pre-reversed chunks
	// would deliver.
	const size, q, chunk = 8, 2, 4
	w := NewWorld(size)
	err := w.Run(func(c *Comm) error {
		post := make([]complex128, (1<<q)*chunk)
		for i := range post {
			post[i] = complex(float64(c.Rank()), float64(i))
		}
		recv := make([][]complex128, 1<<q)
		for j := range recv {
			recv[j] = make([]complex128, chunk)
		}
		bits := []int{0, 2}
		c.GroupAlltoallGather(bits, post, recv, func(member int, src, dst []complex128) {
			for t := range dst {
				dst[t] = src[member*chunk+len(dst)-1-t]
			}
		})
		me := c.Rank()&1 | (c.Rank()>>2&1)<<1
		for j := 0; j < 1<<q; j++ {
			src := c.Rank() &^ 0b101
			if j&1 != 0 {
				src |= 1
			}
			if j&2 != 0 {
				src |= 4
			}
			for t := 0; t < chunk; t++ {
				want := complex(float64(src), float64(me*chunk+chunk-1-t))
				if recv[j][t] != want {
					return fmt.Errorf("rank %d recv[%d][%d] = %v, want %v", c.Rank(), j, t, recv[j][t], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupAlltoallRejectsBadArgs(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		defer func() { recover() }()
		send := [][]complex128{{1}, {2}}
		recv := [][]complex128{make([]complex128, 1), make([]complex128, 1)}
		c.GroupAlltoall([]int{5}, send, recv) // bit out of range: must panic
		return fmt.Errorf("rank %d: expected panic", c.Rank())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectivesStress(t *testing.T) {
	const size = 8
	w := NewWorld(size)
	err := w.Run(func(c *Comm) error {
		for iter := 0; iter < 200; iter++ {
			send := make([][]complex128, size)
			recv := make([][]complex128, size)
			for j := range send {
				send[j] = []complex128{complex(float64(c.Rank()*1000+iter), float64(j))}
				recv[j] = make([]complex128, 1)
			}
			c.Alltoall(send, recv)
			for src := range recv {
				want := complex(float64(src*1000+iter), float64(c.Rank()))
				if recv[src][0] != want {
					return fmt.Errorf("iter %d: rank %d recv[%d] = %v, want %v",
						iter, c.Rank(), src, recv[src][0], want)
				}
			}
			if s := c.AllreduceSum(1); s != size {
				return fmt.Errorf("iter %d: allreduce %v", iter, s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Traffic.Steps.Load() != 200 {
		t.Errorf("steps = %d, want 200", w.Traffic.Steps.Load())
	}
}

func TestWorldSizeOne(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		c.Barrier()
		send := [][]complex128{{42}}
		recv := [][]complex128{make([]complex128, 1)}
		c.Alltoall(send, recv)
		if recv[0][0] != 42 {
			return fmt.Errorf("self all-to-all got %v", recv[0][0])
		}
		if s := c.AllreduceSum(7); s != 7 {
			return fmt.Errorf("allreduce %v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Traffic.Bytes.Load() != 0 {
		t.Errorf("single rank moved %d bytes", w.Traffic.Bytes.Load())
	}
}

func TestAllgather(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		got := c.AllgatherFloat64(float64(c.Rank() * c.Rank()))
		for r, v := range got {
			if v != float64(r*r) {
				return fmt.Errorf("rank %d: gathered[%d] = %v", c.Rank(), r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
