package mpi

import (
	"math/rand"
	"time"
)

// FaultPlan describes deterministic, seeded adversity injected into the
// message-passing primitives: delayed chunk posting, out-of-order delivery
// of incoming chunks, and jitter ahead of every barrier entry. None of the
// perturbations change the semantics of a correct program — they only
// stretch and reshuffle the interleaving of rank goroutines — so any result
// difference observed under a FaultPlan (or any data race flagged by the
// race detector) is a synchronization bug in the communication layer or in
// an engine built on top of it.
//
// All randomness is drawn from per-rank generators derived from Seed, so a
// failing scenario replays exactly.
type FaultPlan struct {
	// Seed derives the per-rank fault RNGs. Two runs of the same program
	// under the same plan inject the identical perturbation sequence.
	Seed int64
	// PostDelay is the maximum random delay inserted before a rank posts
	// its chunks to an all-to-all board or a pairwise exchange channel
	// (delayed chunk posting).
	PostDelay time.Duration
	// ShuffleDelivery randomizes the order in which a rank drains its
	// incoming chunks during (group-)all-to-alls — out-of-order delivery.
	ShuffleDelivery bool
	// BarrierJitter is the maximum random delay inserted before a rank
	// enters any barrier, desynchronizing collective phases.
	BarrierJitter time.Duration
}

// DefaultFaults returns the standard soak configuration: small random
// delays on posts and barriers plus shuffled delivery. The delays are in
// the tens-of-microseconds range — large relative to channel and barrier
// latencies, small enough to keep test wall time reasonable.
func DefaultFaults(seed int64) *FaultPlan {
	return &FaultPlan{
		Seed:            seed,
		PostDelay:       50 * time.Microsecond,
		ShuffleDelivery: true,
		BarrierJitter:   20 * time.Microsecond,
	}
}

// InjectFaults arms the world with a fault plan. It must be called before
// Run; a nil plan disarms injection.
func (w *World) InjectFaults(fp *FaultPlan) { w.fault = fp }

// FaultEvents returns the number of perturbations injected so far (sleeps
// performed and delivery orders shuffled), summed over all ranks. Tests use
// it to assert a scenario actually exercised the fault paths.
func (w *World) FaultEvents() int64 { return w.faultEvents.Load() }

// newFaultRand derives rank's deterministic fault RNG.
func (w *World) newFaultRand(rank int) *rand.Rand {
	if w.fault == nil {
		return nil
	}
	return rand.New(rand.NewSource(w.fault.Seed*1000003 + int64(rank)*7919 + 12345))
}

// faultDelay sleeps a random duration in [0, max) drawn from the rank's
// fault RNG. No-op when injection is disarmed or max is zero.
func (c *Comm) faultDelay(max time.Duration) {
	if c.frand == nil || max <= 0 {
		return
	}
	c.w.faultEvents.Add(1)
	time.Sleep(time.Duration(c.frand.Int63n(int64(max))))
}

// deliveryOrder returns a shuffled pickup order over n incoming chunks, or
// nil to keep the natural order.
func (c *Comm) deliveryOrder(n int) []int {
	if c.frand == nil || !c.w.fault.ShuffleDelivery {
		return nil
	}
	c.w.faultEvents.Add(1)
	return c.frand.Perm(n)
}
