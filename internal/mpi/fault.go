package mpi

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"
)

// FaultPlan describes deterministic, seeded adversity injected into the
// message-passing primitives. Two families:
//
// Timing perturbations (PostDelay, ShuffleDelivery, BarrierJitter) never
// change the semantics of a correct program — they only stretch and
// reshuffle the interleaving of rank goroutines — so any result difference
// observed under them (or any data race flagged by the race detector) is a
// synchronization bug in the communication layer or in an engine built on
// top of it.
//
// Hard faults (Crash, Corrupt) DO break the run, on purpose: they model a
// node loss and an in-flight payload corruption, and exist to prove the
// detection machinery (dead-rank deadlock detection, payload checksums)
// and the checkpoint/restart path above it actually fire. Each hard fault
// fires at most once per plan, so a restarted attempt sharing the plan
// replays cleanly past the injection point.
//
// All randomness is drawn from per-rank generators derived from Seed, so a
// failing scenario replays exactly.
type FaultPlan struct {
	// Seed derives the per-rank fault RNGs. Two runs of the same program
	// under the same plan inject the identical perturbation sequence.
	Seed int64
	// PostDelay is the maximum random delay inserted before a rank posts
	// its chunks to an all-to-all board or a pairwise exchange mailbox
	// (delayed chunk posting).
	PostDelay time.Duration
	// ShuffleDelivery randomizes the order in which a rank drains its
	// incoming chunks during (group-)all-to-alls — out-of-order delivery.
	ShuffleDelivery bool
	// BarrierJitter is the maximum random delay inserted before a rank
	// enters any barrier, desynchronizing collective phases.
	BarrierJitter time.Duration
	// Crash, when non-nil, kills one rank at a chosen collective entry.
	Crash *CrashFault
	// Corrupt, when non-nil, flips one bit of one rank's payload in a
	// chosen exchange.
	Corrupt *CorruptFault
	// Stall, when non-nil, freezes one rank at a chosen collective entry
	// for a fixed duration — the "slow straggler / hung node" failure mode.
	// With a deadline armed (World.SetDeadline) the survivors surface
	// ErrStalled; without one the collective simply completes late.
	Stall *StallFault
}

// CrashFault makes Rank vanish — goroutine exits, no error raised, nothing
// posted — immediately on entering its Collective'th collective (0-based,
// counted per rank over Barrier, Alltoall, GroupAlltoall,
// GroupAlltoallGather, AllreduceSum, AllgatherFloat64 and PairExchange
// entries). The survivors must detect the loss themselves; Run reports an
// error wrapping ErrRankDead, never a hang. Fires at most once per plan.
//
// With Label set, only collectives of that kind count — Collective becomes
// the 0-based index into the rank's entries with that label. This targets
// specific protocol points: Label "Barrier" with a checkpointed run kills
// the rank inside the snapshot commit collective itself.
type CrashFault struct {
	Rank       int
	Collective int
	Label      string

	fired atomic.Bool
}

// Fired reports whether the crash has been injected.
func (c *CrashFault) Fired() bool { return c.fired.Load() }

// StallFault freezes Rank for Duration at its Collective'th collective
// entry (counted like CrashFault.Collective, with the same optional Label
// filter), modeling a hung or wildly slow node rather than a dead one. The
// stalled rank eventually proceeds; whether the run survives depends on
// the deadline policy above it. Fires at most once per plan, so a
// restarted attempt sharing the plan replays cleanly past the stall.
type StallFault struct {
	Rank       int
	Collective int
	Label      string
	Duration   time.Duration

	fired atomic.Bool
}

// Fired reports whether the stall has been injected.
func (s *StallFault) Fired() bool { return s.fired.Load() }

// CorruptFault flips the low mantissa bit of the first amplitude Rank sends
// in its Exchange'th payload-carrying collective (0-based, counted per rank
// over Alltoall, GroupAlltoall, GroupAlltoallGather and PairExchange). The
// flip happens on a wire copy after checksums are computed, so the sender's
// own state stays intact and a receiver with SetVerifyChecksums(true) sees
// exactly what real in-flight corruption would look like. Without
// checksums the corruption is silent — which is the point. Fires at most
// once per plan.
type CorruptFault struct {
	Rank     int
	Exchange int

	fired atomic.Bool
}

// Fired reports whether the corruption has been injected.
func (c *CorruptFault) Fired() bool { return c.fired.Load() }

// DefaultFaults returns the standard soak configuration: small random
// delays on posts and barriers plus shuffled delivery (no hard faults).
// The delays are in the tens-of-microseconds range — large relative to
// mailbox and barrier latencies, small enough to keep test wall time
// reasonable.
func DefaultFaults(seed int64) *FaultPlan {
	return &FaultPlan{
		Seed:            seed,
		PostDelay:       50 * time.Microsecond,
		ShuffleDelivery: true,
		BarrierJitter:   20 * time.Microsecond,
	}
}

// InjectFaults arms the world with a fault plan. It must be called before
// Run; a nil plan disarms injection. Hard-fault fire-once state lives in
// the plan, not the world, so a fresh world sharing the plan (a restart
// attempt) does not re-inject.
func (w *World) InjectFaults(fp *FaultPlan) { w.fault = fp }

// FaultEvents returns the number of perturbations injected so far (sleeps
// performed, delivery orders shuffled, crashes and corruptions fired),
// summed over all ranks. Tests use it to assert a scenario actually
// exercised the fault paths.
func (w *World) FaultEvents() int64 { return w.faultEvents.Load() }

// newFaultRand derives rank's deterministic fault RNG.
func (w *World) newFaultRand(rank int) *rand.Rand {
	if w.fault == nil {
		return nil
	}
	return rand.New(rand.NewSource(w.fault.Seed*1000003 + int64(rank)*7919 + 12345))
}

// faultDelay sleeps a random duration in [0, max) drawn from the rank's
// fault RNG. No-op when injection is disarmed or max is zero.
func (c *Comm) faultDelay(max time.Duration) {
	if c.frand == nil || max <= 0 {
		return
	}
	c.w.faultEvents.Add(1)
	time.Sleep(time.Duration(c.frand.Int63n(int64(max))))
}

// deliveryOrder returns a shuffled pickup order over n incoming chunks, or
// nil to keep the natural order.
func (c *Comm) deliveryOrder(n int) []int {
	if c.frand == nil || !c.w.fault.ShuffleDelivery {
		return nil
	}
	c.w.faultEvents.Add(1)
	return c.frand.Perm(n)
}

// enterCollective advances this rank's collective counters and fires an
// armed stall or crash when the rank reaches its injection point. Stalls
// fire before crashes, so a plan arming both at the same entry stalls
// first and then dies — the worst composed ordering.
func (c *Comm) enterCollective(label string, payload bool) {
	seq := c.collSeq
	c.collSeq++
	if payload {
		c.payloadSeq++
	}
	f := c.w.fault
	if f == nil || (f.Crash == nil && f.Stall == nil) {
		return
	}
	lseq := -1
	if (f.Crash != nil && f.Crash.Label != "") || (f.Stall != nil && f.Stall.Label != "") {
		if c.labelSeq == nil {
			c.labelSeq = make(map[string]int)
		}
		lseq = c.labelSeq[label]
		c.labelSeq[label]++
	}
	at := func(rank, coll int, lbl string) bool {
		if rank != c.rank {
			return false
		}
		if lbl == "" {
			return coll == seq
		}
		return lbl == label && coll == lseq
	}
	if st := f.Stall; st != nil && at(st.Rank, st.Collective, st.Label) &&
		st.fired.CompareAndSwap(false, true) {
		c.w.faultEvents.Add(1)
		time.Sleep(st.Duration)
	}
	if cr := f.Crash; cr != nil && at(cr.Rank, cr.Collective, cr.Label) &&
		cr.fired.CompareAndSwap(false, true) {
		c.w.faultEvents.Add(1)
		panic(rankCrashed{})
	}
}

// maybeCorrupt applies an armed payload corruption: the chunks are deep
// copied onto the "wire" and one mantissa bit of the first amplitude is
// flipped, leaving the sender's buffers (and the already-computed
// checksums, which cover the true data) untouched.
func (c *Comm) maybeCorrupt(chunks [][]complex128) [][]complex128 {
	f := c.w.fault
	if f == nil || f.Corrupt == nil {
		return chunks
	}
	co := f.Corrupt
	if co.Rank != c.rank || co.Exchange != c.payloadSeq-1 {
		return chunks
	}
	if !co.fired.CompareAndSwap(false, true) {
		return chunks
	}
	c.w.faultEvents.Add(1)
	wire := make([][]complex128, len(chunks))
	for i, ch := range chunks {
		wire[i] = append([]complex128(nil), ch...)
	}
	for _, ch := range wire {
		if len(ch) == 0 {
			continue
		}
		v := ch[0]
		ch[0] = complex(math.Float64frombits(math.Float64bits(real(v))^1), imag(v))
		break
	}
	return wire
}
