package mpi

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierOrdering(t *testing.T) {
	w := NewWorld(8)
	var before, after atomic.Int64
	err := w.Run(func(c *Comm) error {
		before.Add(1)
		c.Barrier()
		if got := before.Load(); got != 8 {
			return fmt.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), got)
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != 8 {
		t.Fatalf("only %d ranks finished", after.Load())
	}
}

func TestBarrierReusable(t *testing.T) {
	w := NewWorld(4)
	counters := make([]int64, 100)
	err := w.Run(func(c *Comm) error {
		for i := range counters {
			atomic.AddInt64(&counters[i], 1)
			c.Barrier()
			if atomic.LoadInt64(&counters[i]) != 4 {
				return fmt.Errorf("iteration %d: barrier leaked", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallTransposes(t *testing.T) {
	const size = 8
	const chunk = 16
	w := NewWorld(size)
	err := w.Run(func(c *Comm) error {
		send := make([][]complex128, size)
		recv := make([][]complex128, size)
		for j := 0; j < size; j++ {
			send[j] = make([]complex128, chunk)
			recv[j] = make([]complex128, chunk)
			for i := range send[j] {
				send[j][i] = complex(float64(c.Rank()), float64(j*chunk+i))
			}
		}
		c.Alltoall(send, recv)
		for src := 0; src < size; src++ {
			for i := 0; i < chunk; i++ {
				want := complex(float64(src), float64(c.Rank()*chunk+i))
				if recv[src][i] != want {
					return fmt.Errorf("rank %d recv[%d][%d] = %v, want %v", c.Rank(), src, i, recv[src][i], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Traffic.Steps.Load(); got != 1 {
		t.Errorf("steps = %d, want 1", got)
	}
	wantBytes := int64(16 * chunk * size * (size - 1))
	if got := w.Traffic.Bytes.Load(); got != wantBytes {
		t.Errorf("bytes = %d, want %d", got, wantBytes)
	}
}

func TestGroupAlltoallMatchesManualGroups(t *testing.T) {
	// 8 ranks, groups over bit 1: members {r, r^2}. Each member sends two
	// chunks.
	const size = 8
	w := NewWorld(size)
	err := w.Run(func(c *Comm) error {
		send := [][]complex128{
			{complex(float64(c.Rank()), 0)},
			{complex(float64(c.Rank()), 1)},
		}
		recv := [][]complex128{make([]complex128, 1), make([]complex128, 1)}
		c.GroupAlltoall([]int{1}, send, recv)
		me := (c.Rank() >> 1) & 1
		for j := 0; j < 2; j++ {
			srcRank := c.Rank() &^ 2
			if j == 1 {
				srcRank |= 2
			}
			want := complex(float64(srcRank), float64(me))
			if recv[j][0] != want {
				return fmt.Errorf("rank %d recv[%d] = %v, want %v", c.Rank(), j, recv[j][0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupAlltoallFullMaskEqualsWorld(t *testing.T) {
	const size = 4
	runOne := func(group bool) [][]complex128 {
		w := NewWorld(size)
		results := make([][]complex128, size)
		err := w.Run(func(c *Comm) error {
			send := make([][]complex128, size)
			recv := make([][]complex128, size)
			for j := range send {
				send[j] = []complex128{complex(float64(c.Rank()*10+j), 0)}
				recv[j] = make([]complex128, 1)
			}
			if group {
				c.GroupAlltoall([]int{0, 1}, send, recv)
			} else {
				c.Alltoall(send, recv)
			}
			flat := make([]complex128, size)
			for j := range recv {
				flat[j] = recv[j][0]
			}
			results[c.Rank()] = flat
			return nil
		})
		if err != nil {
			panic(err)
		}
		return results
	}
	a := runOne(false)
	b := runOne(true)
	for r := range a {
		for j := range a[r] {
			if a[r][j] != b[r][j] {
				t.Fatalf("rank %d chunk %d: world %v vs group %v", r, j, a[r][j], b[r][j])
			}
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	w := NewWorld(6)
	err := w.Run(func(c *Comm) error {
		got := c.AllreduceSum(float64(c.Rank() + 1))
		if math.Abs(got-21) > 1e-12 {
			return fmt.Errorf("rank %d: sum = %v, want 21", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceRepeated(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		for i := 0; i < 50; i++ {
			got := c.AllreduceSum(float64(i))
			if got != float64(4*i) {
				return fmt.Errorf("iteration %d: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairExchange(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		partner := c.Rank() ^ 1
		send := []complex128{complex(float64(c.Rank()), 0)}
		recv := make([]complex128, 1)
		c.PairExchange(partner, send, recv)
		if recv[0] != complex(float64(partner), 0) {
			return fmt.Errorf("rank %d got %v from partner %d", c.Rank(), recv[0], partner)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Traffic.Bytes.Load() != 4*16 {
		t.Errorf("bytes = %d, want 64", w.Traffic.Bytes.Load())
	}
}

func TestPairExchangeSelf(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		send := []complex128{42}
		recv := make([]complex128, 1)
		c.PairExchange(0, send, recv)
		if recv[0] != 42 {
			return fmt.Errorf("self exchange got %v", recv[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Traffic.Bytes.Load() != 0 {
		t.Errorf("self exchange counted %d bytes", w.Traffic.Bytes.Load())
	}
}

func TestRunPropagatesError(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Errorf("err = %v, want boom", err)
	}
}

// runWithTimeout runs fn under the world's own deadline machinery: if the
// poisoning that these error-path tests exercise ever regresses into a
// deadlock, Run itself returns an ErrStalled failure instead of hanging the
// test binary.
func runWithTimeout(t *testing.T, w *World, fn func(c *Comm) error) error {
	t.Helper()
	w.SetDeadline(10 * time.Second)
	err := w.Run(fn)
	if errors.Is(err, ErrStalled) {
		t.Fatalf("World.Run stalled instead of unwinding: %v", err)
	}
	return err
}

func TestRunErrorUnblocksBarrier(t *testing.T) {
	// Regression: one rank returning an error while the remaining ranks sit
	// inside Barrier used to leave them waiting for an arrival that never
	// comes, deadlocking Run (and every caller, dist.Run included) forever.
	w := NewWorld(4)
	err := runWithTimeout(t, w, func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("rank 2 failed")
		}
		for i := 0; i < 3; i++ {
			c.Barrier()
		}
		return nil
	})
	if err == nil || err.Error() != "rank 2 failed" {
		t.Errorf("err = %v, want rank 2's failure", err)
	}
}

func TestRunErrorUnblocksAllreduce(t *testing.T) {
	// Same deadlock through a barrier-based collective instead of a bare
	// Barrier call.
	w := NewWorld(4)
	err := runWithTimeout(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("rank 0 failed")
		}
		c.AllreduceSum(1)
		return nil
	})
	if err == nil || err.Error() != "rank 0 failed" {
		t.Errorf("err = %v, want rank 0's failure", err)
	}
}

func TestRunErrorUnblocksGroupAlltoall(t *testing.T) {
	w := NewWorld(4)
	err := runWithTimeout(t, w, func(c *Comm) error {
		if c.Rank() == 3 {
			return fmt.Errorf("rank 3 failed")
		}
		send := [][]complex128{{1}, {2}}
		recv := [][]complex128{make([]complex128, 1), make([]complex128, 1)}
		c.GroupAlltoall([]int{0}, send, recv)
		return nil
	})
	if err == nil || err.Error() != "rank 3 failed" {
		t.Errorf("err = %v, want rank 3's failure", err)
	}
}

func TestRunPanicUnblocksBarrier(t *testing.T) {
	// A real panic must also poison the barrier, then re-raise on the caller.
	w := NewWorld(4)
	done := make(chan any, 1)
	go func() {
		var p any
		func() {
			defer func() { p = recover() }()
			w.Run(func(c *Comm) error {
				if c.Rank() == 1 {
					panic("rank 1 exploded")
				}
				c.Barrier()
				return nil
			})
		}()
		done <- p
	}()
	select {
	case p := <-done:
		if p == nil {
			t.Error("panic was swallowed instead of re-raised")
		} else if s, ok := p.(string); !ok || s != "rank 1 exploded" {
			t.Errorf("re-raised %v, want the rank's panic value", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("World.Run deadlocked after a rank panicked mid-collective")
	}
}

func TestWorldReusableAfterPoisonedRun(t *testing.T) {
	// reset() must re-arm the barrier: a clean Run on the same world after a
	// poisoned one works normally.
	w := NewWorld(4)
	err := runWithTimeout(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("first run fails")
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("first run should have failed")
	}
	var after atomic.Int64
	err = runWithTimeout(t, w, func(c *Comm) error {
		c.Barrier()
		after.Add(1)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("second run on reused world: %v", err)
	}
	if after.Load() != 4 {
		t.Errorf("only %d ranks passed the barrier on the reused world", after.Load())
	}
}

func TestDeadlineNamesStuckCollective(t *testing.T) {
	// A rank hung outside the communication layer can only be caught by the
	// wall clock. The error must say which collective the survivors were
	// blocked in, so the failure is diagnosable.
	w := NewWorld(4)
	w.SetDeadline(100 * time.Millisecond)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(2 * time.Second) // hung in "compute"
		}
		c.Barrier()
		return nil
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if !strings.Contains(err.Error(), "Barrier") {
		t.Errorf("deadline error does not name the stuck collective: %v", err)
	}
	if !Recoverable(err) {
		t.Errorf("deadline failure should be Recoverable: %v", err)
	}
}

func TestCrashDetectedWithoutTimer(t *testing.T) {
	// A silently dead rank must be detected the moment every survivor is
	// provably blocked on it — no deadline is set here, so a regression to
	// timer-based detection (or a hang) fails the test only via the test
	// binary's own timeout, and a correct implementation returns instantly.
	w := NewWorld(4)
	crash := &CrashFault{Rank: 2, Collective: 1}
	w.InjectFaults(&FaultPlan{Crash: crash})
	err := w.Run(func(c *Comm) error {
		c.Barrier()       // collective 0: everyone passes
		c.AllreduceSum(1) // collective 1: rank 2 dies on entry
		c.Barrier()       // never reached by anyone
		return nil
	})
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("err = %v, want ErrRankDead", err)
	}
	if !strings.Contains(err.Error(), "[2]") {
		t.Errorf("error does not identify the dead rank: %v", err)
	}
	if !crash.Fired() {
		t.Error("crash fault did not report firing")
	}
	if got := w.FaultEvents(); got != 1 {
		t.Errorf("FaultEvents = %d, want 1", got)
	}
	if !Recoverable(err) {
		t.Errorf("rank death should be Recoverable: %v", err)
	}
}

func TestCrashFiresAtMostOncePerPlan(t *testing.T) {
	// The fire-once state lives in the plan, so a restart attempt on a fresh
	// world sharing the plan replays cleanly past the injection point.
	plan := &FaultPlan{Crash: &CrashFault{Rank: 0, Collective: 0}}
	w := NewWorld(2)
	w.InjectFaults(plan)
	if err := w.Run(func(c *Comm) error { c.Barrier(); return nil }); !errors.Is(err, ErrRankDead) {
		t.Fatalf("first run: err = %v, want ErrRankDead", err)
	}
	w2 := NewWorld(2)
	w2.InjectFaults(plan)
	if err := w2.Run(func(c *Comm) error { c.Barrier(); return nil }); err != nil {
		t.Fatalf("second run should survive the already-fired fault, got %v", err)
	}
}

// TestCrashedRankReportedEvenWithoutDeadlock deliberately has one rank
// enter a barrier nobody else joins — the asymmetry under test.
//
//qlint:ignore collectiveorder deliberately provokes a rank-asymmetric barrier to test dead-rank reporting
func TestCrashedRankReportedEvenWithoutDeadlock(t *testing.T) {
	// If the dead rank was the only one still in a collective, the survivors
	// finish normally — the death must still be reported, not swallowed.
	w := NewWorld(4)
	w.InjectFaults(&FaultPlan{Crash: &CrashFault{Rank: 1, Collective: 0}})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Barrier() // dies on entry; nobody else joins this barrier
		}
		return nil
	})
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("err = %v, want ErrRankDead", err)
	}
}

func TestChecksumDetectsAlltoallCorruption(t *testing.T) {
	w := NewWorld(4)
	w.SetVerifyChecksums(true)
	corrupt := &CorruptFault{Rank: 1, Exchange: 0}
	w.InjectFaults(&FaultPlan{Corrupt: corrupt})
	err := w.Run(func(c *Comm) error {
		send := make([][]complex128, 4)
		recv := make([][]complex128, 4)
		for j := range send {
			send[j] = []complex128{complex(float64(c.Rank()), float64(j))}
			recv[j] = make([]complex128, 1)
		}
		c.Alltoall(send, recv)
		return nil
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Errorf("error does not name the corrupting sender: %v", err)
	}
	if !corrupt.Fired() {
		t.Error("corrupt fault did not report firing")
	}
	if !Recoverable(err) {
		t.Errorf("detected corruption should be Recoverable: %v", err)
	}
}

func TestChecksumDetectsPairExchangeCorruption(t *testing.T) {
	w := NewWorld(2)
	w.SetVerifyChecksums(true)
	w.InjectFaults(&FaultPlan{Corrupt: &CorruptFault{Rank: 0, Exchange: 0}})
	err := w.Run(func(c *Comm) error {
		send := []complex128{complex(float64(c.Rank()+1), 0)}
		recv := make([]complex128, 1)
		c.PairExchange(c.Rank()^1, send, recv)
		return nil
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestChecksumDetectsGatherCorruption(t *testing.T) {
	// GroupAlltoallGather audits a source's full posted buffer before
	// gathering — the fused-permutation path must not bypass verification.
	w := NewWorld(4)
	w.SetVerifyChecksums(true)
	w.InjectFaults(&FaultPlan{Corrupt: &CorruptFault{Rank: 2, Exchange: 0}})
	err := w.Run(func(c *Comm) error {
		post := []complex128{complex(float64(c.Rank()), 0), complex(float64(c.Rank()), 1)}
		recv := [][]complex128{make([]complex128, 1), make([]complex128, 1)}
		c.GroupAlltoallGather([]int{0}, post, recv, func(member int, src, dst []complex128) {
			dst[0] = src[member]
		})
		return nil
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptionSilentWithoutChecksums(t *testing.T) {
	// Without verification the flipped bit sails through — that blind spot is
	// exactly what SetVerifyChecksums closes. The sender's own buffer must
	// stay intact (the flip lives on a wire copy), modeling in-flight rather
	// than in-memory corruption.
	w := NewWorld(2)
	w.InjectFaults(&FaultPlan{Corrupt: &CorruptFault{Rank: 1, Exchange: 0}})
	var delivered, sent complex128
	err := w.Run(func(c *Comm) error {
		send := make([][]complex128, 2)
		recv := make([][]complex128, 2)
		for j := range send {
			send[j] = []complex128{complex(3.0, 4.0)}
			recv[j] = make([]complex128, 1)
		}
		c.Alltoall(send, recv)
		if c.Rank() == 0 {
			delivered = recv[1][0]
		}
		if c.Rank() == 1 {
			sent = send[0][0]
		}
		return nil
	})
	if err != nil {
		t.Fatalf("without checksums the corrupted run must complete: %v", err)
	}
	if delivered == complex(3.0, 4.0) {
		t.Error("corruption did not reach the receiver")
	}
	if sent != complex(3.0, 4.0) {
		t.Errorf("sender's own buffer was mutated to %v; corruption must stay on the wire", sent)
	}
}

func TestChecksumsCleanRunUnaffected(t *testing.T) {
	// Verification on, no faults: payloads round-trip exactly and no error
	// surfaces — checksums are an audit, not a perturbation.
	const size = 4
	w := NewWorld(size)
	w.SetVerifyChecksums(true)
	err := w.Run(func(c *Comm) error {
		send := make([][]complex128, size)
		recv := make([][]complex128, size)
		for j := range send {
			send[j] = []complex128{complex(float64(c.Rank()), float64(j))}
			recv[j] = make([]complex128, 1)
		}
		c.Alltoall(send, recv)
		for src := range recv {
			if want := complex(float64(src), float64(c.Rank())); recv[src][0] != want {
				return fmt.Errorf("rank %d: recv[%d] = %v, want %v", c.Rank(), src, recv[src][0], want)
			}
		}
		pr := make([]complex128, 1)
		c.PairExchange(c.Rank()^1, []complex128{complex(0, float64(c.Rank()))}, pr)
		if want := complex(0, float64(c.Rank()^1)); pr[0] != want {
			return fmt.Errorf("rank %d: pair recv %v, want %v", c.Rank(), pr[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecoverableClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("wrapped: %w", ErrCorrupt), true},
		{fmt.Errorf("wrapped: %w", ErrRankDead), true},
		{fmt.Errorf("wrapped: %w", ErrStalled), true},
		{fmt.Errorf("engine bug"), false},
		{nil, false},
	} {
		if got := Recoverable(tc.err); got != tc.want {
			t.Errorf("Recoverable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
