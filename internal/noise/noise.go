// Package noise provides Monte Carlo (quantum-trajectory) noise simulation
// on top of the state-vector simulator — the "studies of their behavior
// under noise" use case of Sec. 1 of Häner & Steiger, SC'17, and the
// mechanism behind the depolarization model that cross-entropy
// benchmarking (package xeb) assumes.
//
// Channels are applied stochastically: each trajectory inserts random Pauli
// errors after gates with the channel's probability, keeping the state a
// pure state vector (memory cost 2^n, like the noiseless simulator) rather
// than a 4^n density matrix. Averages over trajectories converge to the
// channel's action.
package noise

import (
	"fmt"
	"math/rand"

	"qusim/internal/circuit"
	"qusim/internal/gate"
	"qusim/internal/statevec"
)

// Channel is a single-qubit stochastic Pauli channel.
type Channel struct {
	Name string
	// PX, PY, PZ are the probabilities of inserting the respective Pauli
	// after each gate on each touched qubit. The identity happens with
	// probability 1 − PX − PY − PZ.
	PX, PY, PZ float64
}

// Depolarizing returns the channel that applies each Pauli with p/3.
func Depolarizing(p float64) Channel {
	return Channel{Name: "depolarizing", PX: p / 3, PY: p / 3, PZ: p / 3}
}

// Dephasing returns the pure-Z channel with probability p.
func Dephasing(p float64) Channel {
	return Channel{Name: "dephasing", PZ: p}
}

// BitFlip returns the pure-X channel with probability p.
func BitFlip(p float64) Channel {
	return Channel{Name: "bit-flip", PX: p}
}

func (c Channel) validate() error {
	if c.PX < 0 || c.PY < 0 || c.PZ < 0 || c.PX+c.PY+c.PZ > 1 {
		return fmt.Errorf("noise: invalid channel probabilities (%v, %v, %v)", c.PX, c.PY, c.PZ)
	}
	return nil
}

// apply inserts a random Pauli on qubit q per the channel.
func (c Channel) apply(v *statevec.Vector, q int, rng *rand.Rand) {
	r := rng.Float64()
	switch {
	case r < c.PX:
		v.Apply(gate.X(), q)
	case r < c.PX+c.PY:
		v.Apply(gate.Y(), q)
	case r < c.PX+c.PY+c.PZ:
		v.Apply(gate.Z(), q)
	}
}

// Trajectory runs one noisy trajectory of the circuit from |0…0⟩ (or the
// uniform state when uniformInit is set) and returns the resulting pure
// state.
func Trajectory(c *circuit.Circuit, ch Channel, uniformInit bool, rng *rand.Rand) (*statevec.Vector, error) {
	if err := ch.validate(); err != nil {
		return nil, err
	}
	var v *statevec.Vector
	if uniformInit {
		v = statevec.NewUniform(c.N)
	} else {
		v = statevec.New(c.N)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		v.Apply(g.Matrix(), g.Qubits...)
		for _, q := range g.Qubits {
			ch.apply(v, q, rng)
		}
	}
	return v, nil
}

// Result aggregates a Monte Carlo noise study.
type Result struct {
	Trajectories int
	// MeanFidelity is ⟨|⟨ψ_ideal|ψ_traj⟩|²⟩ over trajectories.
	MeanFidelity float64
	// MeanProbs is the trajectory-averaged output distribution (the mixed
	// state's diagonal).
	MeanProbs []float64
}

// Run simulates trajectories noisy runs, comparing each against the ideal
// (noiseless) state.
func Run(c *circuit.Circuit, ch Channel, trajectories int, uniformInit bool, rng *rand.Rand) (*Result, error) {
	if trajectories < 1 {
		return nil, fmt.Errorf("noise: need at least one trajectory")
	}
	if err := ch.validate(); err != nil {
		return nil, err
	}
	var ideal *statevec.Vector
	if uniformInit {
		ideal = statevec.NewUniform(c.N)
	} else {
		ideal = statevec.New(c.N)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		ideal.Apply(g.Matrix(), g.Qubits...)
	}
	res := &Result{
		Trajectories: trajectories,
		MeanProbs:    make([]float64, 1<<c.N),
	}
	for tr := 0; tr < trajectories; tr++ {
		v, err := Trajectory(c, ch, uniformInit, rng)
		if err != nil {
			return nil, err
		}
		res.MeanFidelity += ideal.Fidelity(v)
		for i, a := range v.Amps {
			res.MeanProbs[i] += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	res.MeanFidelity /= float64(trajectories)
	for i := range res.MeanProbs {
		res.MeanProbs[i] /= float64(trajectories)
	}
	return res, nil
}

// ExpectedGateFidelity returns the first-order estimate of the final-state
// fidelity: each of the g noise insertions preserves the state with
// probability 1−p, so F ≈ (1−p)^insertions with p = PX+PY+PZ.
func ExpectedGateFidelity(c *circuit.Circuit, ch Channel) float64 {
	insertions := 0
	for i := range c.Gates {
		insertions += len(c.Gates[i].Qubits)
	}
	p := ch.PX + ch.PY + ch.PZ
	f := 1.0
	for i := 0; i < insertions; i++ {
		f *= 1 - p
	}
	return f
}
