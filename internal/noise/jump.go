package noise

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qusim/internal/circuit"
	"qusim/internal/gate"
	"qusim/internal/statevec"
)

// Quantum-jump trajectories for general (non-Pauli) single-qubit channels:
// unlike stochastic Pauli insertion, the branch probabilities depend on the
// state — p_k = ‖K_k|ψ⟩‖² — so each step computes the branch norms, draws a
// Kraus operator, applies it and renormalizes. Trajectory averages converge
// to ρ → Σ K ρ K† (validated against package densitymatrix).

// KrausChannel is a general single-qubit channel given by its Kraus
// operators (Σ K†K = 1).
type KrausChannel struct {
	Name string
	Ops  []gate.Matrix
}

// AmplitudeDampingChannel returns the T1-decay channel with decay
// probability gamma per application.
func AmplitudeDampingChannel(gamma float64) KrausChannel {
	k0 := gate.Identity(1)
	k0.Set(1, 1, complex(math.Sqrt(1-gamma), 0))
	k1 := gate.New(1)
	k1.Set(0, 1, complex(math.Sqrt(gamma), 0))
	return KrausChannel{Name: "amplitude-damping", Ops: []gate.Matrix{k0, k1}}
}

func (c KrausChannel) validate() error {
	if len(c.Ops) == 0 {
		return fmt.Errorf("noise: channel %q has no Kraus operators", c.Name)
	}
	sum := gate.New(1)
	for _, k := range c.Ops {
		if k.K != 1 {
			return fmt.Errorf("noise: channel %q has a %d-qubit Kraus operator", c.Name, k.K)
		}
		p := gate.Mul(k.Dagger(), k)
		for i := range sum.Data {
			sum.Data[i] += p.Data[i]
		}
	}
	if !gate.ApproxEqual(sum, gate.Identity(1), 1e-9) {
		return fmt.Errorf("noise: channel %q is not trace preserving", c.Name)
	}
	return nil
}

// jump applies one quantum jump of the channel on qubit q: branch k is
// drawn with probability ‖K_k ψ‖² and the state renormalized.
func (c KrausChannel) jump(v *statevec.Vector, q int, rng *rand.Rand) {
	// Branch norms: ‖K ψ‖² = Σ over amplitude pairs. Compute via the
	// 2×2 positive matrices M_k = K†K: p_k = ⟨ψ|M_k|ψ⟩ — cheaper than
	// materializing every branch.
	probs := make([]float64, len(c.Ops))
	var total float64
	for ki, k := range c.Ops {
		m := gate.Mul(k.Dagger(), k)
		p := expectation2x2(v, q, m)
		probs[ki] = p
		total += p
	}
	r := rng.Float64() * total
	chosen := len(c.Ops) - 1
	acc := 0.0
	for ki, p := range probs {
		acc += p
		if r < acc {
			chosen = ki
			break
		}
	}
	v.ApplyDense(c.Ops[chosen], q)
	v.Renormalize()
}

// expectation2x2 returns ⟨ψ|M_q|ψ⟩ for a single-qubit Hermitian M.
func expectation2x2(v *statevec.Vector, q int, m gate.Matrix) float64 {
	bit := 1 << q
	var acc complex128
	for i, a := range v.Amps {
		if i&bit != 0 {
			continue
		}
		b := v.Amps[i|bit]
		acc += cmplx.Conj(a)*(m.Data[0]*a+m.Data[1]*b) +
			cmplx.Conj(b)*(m.Data[2]*a+m.Data[3]*b)
	}
	return real(acc)
}

// JumpTrajectory runs one quantum-jump trajectory: the channel is applied
// after every gate on every touched qubit.
func JumpTrajectory(c *circuit.Circuit, ch KrausChannel, rng *rand.Rand) (*statevec.Vector, error) {
	if err := ch.validate(); err != nil {
		return nil, err
	}
	v := statevec.New(c.N)
	for i := range c.Gates {
		g := &c.Gates[i]
		v.Apply(g.Matrix(), g.Qubits...)
		for _, q := range g.Qubits {
			ch.jump(v, q, rng)
		}
	}
	return v, nil
}

// RunJumps averages trajectories of a general Kraus channel.
func RunJumps(c *circuit.Circuit, ch KrausChannel, trajectories int, rng *rand.Rand) (*Result, error) {
	if trajectories < 1 {
		return nil, fmt.Errorf("noise: need at least one trajectory")
	}
	ideal := statevec.New(c.N)
	for i := range c.Gates {
		g := &c.Gates[i]
		ideal.Apply(g.Matrix(), g.Qubits...)
	}
	res := &Result{Trajectories: trajectories, MeanProbs: make([]float64, 1<<c.N)}
	for tr := 0; tr < trajectories; tr++ {
		v, err := JumpTrajectory(c, ch, rng)
		if err != nil {
			return nil, err
		}
		res.MeanFidelity += ideal.Fidelity(v)
		for i, a := range v.Amps {
			res.MeanProbs[i] += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	res.MeanFidelity /= float64(trajectories)
	for i := range res.MeanProbs {
		res.MeanProbs[i] /= float64(trajectories)
	}
	return res, nil
}
