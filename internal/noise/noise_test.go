package noise

import (
	"math"
	"math/rand"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/xeb"
)

func smallCircuit(n, depth int, seed int64) *circuit.Circuit {
	r, c := circuit.GridForQubits(n)
	return circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: depth, Seed: seed})
}

func TestZeroNoiseIsIdeal(t *testing.T) {
	c := smallCircuit(9, 10, 1)
	rng := rand.New(rand.NewSource(1))
	res, err := Run(c, Depolarizing(0), 3, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanFidelity-1) > 1e-10 {
		t.Errorf("zero-noise fidelity %v, want 1", res.MeanFidelity)
	}
}

func TestFidelityDecreasesWithNoise(t *testing.T) {
	c := smallCircuit(9, 10, 2)
	rng := rand.New(rand.NewSource(2))
	var prev = 1.1
	for _, p := range []float64{0.001, 0.01, 0.05} {
		res, err := Run(c, Depolarizing(p), 30, false, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanFidelity >= prev {
			t.Errorf("p=%v: fidelity %v did not decrease (prev %v)", p, res.MeanFidelity, prev)
		}
		prev = res.MeanFidelity
	}
}

func TestFidelityMatchesFirstOrderEstimate(t *testing.T) {
	c := smallCircuit(9, 12, 3)
	p := 0.004
	want := ExpectedGateFidelity(c, Depolarizing(p))
	rng := rand.New(rand.NewSource(3))
	res, err := Run(c, Depolarizing(p), 200, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Trajectories without any insertion contribute fidelity 1; those with
	// insertions contribute ≈ 0 for chaotic circuits — so F ≈ (1−p)^g.
	if math.Abs(res.MeanFidelity-want) > 0.08 {
		t.Errorf("fidelity %v, first-order estimate %v", res.MeanFidelity, want)
	}
}

func TestMeanProbsNormalized(t *testing.T) {
	c := smallCircuit(6, 8, 4)
	rng := rand.New(rand.NewSource(4))
	res, err := Run(c, Dephasing(0.02), 10, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.MeanProbs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mean probabilities sum to %v", sum)
	}
}

func TestNoisyXEBFidelityDrops(t *testing.T) {
	// The full calibration loop: noisy trajectories sampled against the
	// ideal distribution give linear-XEB fidelity well below 1.
	n := 9
	c := smallCircuit(n, 16, 5)
	rng := rand.New(rand.NewSource(5))
	ideal, err := Run(c, Depolarizing(0), 1, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(c, Depolarizing(0.03), 40, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	klNoisy, err := xeb.KLDivergence(ideal.MeanProbs, noisy.MeanProbs)
	if err != nil {
		t.Fatal(err)
	}
	if klNoisy < 1e-4 {
		t.Errorf("noisy distribution suspiciously close to ideal: KL = %v", klNoisy)
	}
	if noisy.MeanFidelity > 0.8 {
		t.Errorf("noisy fidelity %v, expected well below 1", noisy.MeanFidelity)
	}
}

func TestChannelValidation(t *testing.T) {
	c := smallCircuit(6, 4, 6)
	rng := rand.New(rand.NewSource(6))
	if _, err := Run(c, Channel{PX: 0.8, PY: 0.3}, 1, false, rng); err == nil {
		t.Error("invalid channel accepted")
	}
	if _, err := Run(c, Channel{PX: -0.1}, 1, false, rng); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := Run(c, Depolarizing(0.01), 0, false, rng); err == nil {
		t.Error("zero trajectories accepted")
	}
}

func TestChannelConstructors(t *testing.T) {
	d := Depolarizing(0.03)
	if math.Abs(d.PX-0.01) > 1e-15 || math.Abs(d.PY-0.01) > 1e-15 || math.Abs(d.PZ-0.01) > 1e-15 {
		t.Errorf("Depolarizing(0.03) = %+v", d)
	}
	z := Dephasing(0.1)
	if z.PX != 0 || z.PY != 0 || z.PZ != 0.1 {
		t.Errorf("Dephasing(0.1) = %+v", z)
	}
	x := BitFlip(0.2)
	if x.PX != 0.2 || x.PY != 0 || x.PZ != 0 {
		t.Errorf("BitFlip(0.2) = %+v", x)
	}
}
