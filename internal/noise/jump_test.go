package noise

import (
	"math"
	"math/rand"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/gate"
	"qusim/internal/statevec"
)

func TestAmplitudeDampingChannelValid(t *testing.T) {
	ch := AmplitudeDampingChannel(0.3)
	if err := ch.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJumpRejectsBadChannel(t *testing.T) {
	c := circuit.GHZ(3)
	rng := rand.New(rand.NewSource(1))
	bad := KrausChannel{Name: "bad", Ops: []gate.Matrix{gate.H().Scale(0.5)}}
	if _, err := JumpTrajectory(c, bad, rng); err == nil {
		t.Error("non-trace-preserving channel accepted")
	}
	if _, err := RunJumps(c, AmplitudeDampingChannel(0.1), 0, rng); err == nil {
		t.Error("zero trajectories accepted")
	}
}

func TestJumpTrajectoryNormalized(t *testing.T) {
	c := circuit.Supremacy(circuit.SupremacyOptions{Rows: 3, Cols: 2, Depth: 10, Seed: 3})
	rng := rand.New(rand.NewSource(2))
	v, err := JumpTrajectory(c, AmplitudeDampingChannel(0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Norm()-1) > 1e-9 {
		t.Errorf("trajectory norm %v", v.Norm())
	}
}

func TestDampingDrivesToGroundState(t *testing.T) {
	// Strong damping after every gate pushes a single-qubit circuit toward
	// |0⟩.
	c := circuit.NewCircuit(1)
	for i := 0; i < 30; i++ {
		c.Append(circuit.NewH(0))
	}
	rng := rand.New(rand.NewSource(3))
	res, err := RunJumps(c, AmplitudeDampingChannel(0.9), 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	// After H the state is (|0⟩+|1⟩)/√2; damping with γ=0.9 sends almost
	// all |1⟩ population to |0⟩: P(0) should dominate strongly.
	if res.MeanProbs[0] < 0.85 {
		t.Errorf("P(0) = %v under strong damping, want > 0.85", res.MeanProbs[0])
	}
}

func TestZeroDampingIsIdeal(t *testing.T) {
	c := circuit.GHZ(4)
	rng := rand.New(rand.NewSource(4))
	res, err := RunJumps(c, AmplitudeDampingChannel(0), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanFidelity-1) > 1e-9 {
		t.Errorf("zero damping fidelity %v", res.MeanFidelity)
	}
}

func TestExpectation2x2(t *testing.T) {
	// ⟨ψ|K†K|ψ⟩ for the damping jump operator on |1⟩ must be γ.
	v := statevec.New(2)
	v.Apply(gate.X(), 1)
	ch := AmplitudeDampingChannel(0.3)
	m := gate.Mul(ch.Ops[1].Dagger(), ch.Ops[1])
	if p := expectation2x2(v, 1, m); math.Abs(p-0.3) > 1e-12 {
		t.Errorf("jump probability %v, want 0.3", p)
	}
	if p := expectation2x2(v, 0, m); math.Abs(p) > 1e-12 {
		t.Errorf("jump probability on |0⟩ qubit %v, want 0", p)
	}
}
