// Package xeb implements the cross-entropy benchmarking statistics of
// Boixo et al. [5] — the reason quantum supremacy circuits are simulated at
// all (Sec. 1: "running such circuits is still of great use to calibrate,
// validate, and benchmark near-term quantum devices"). Given the simulator's
// ideal output probabilities and samples from a device (or from the
// simulator itself), it estimates the circuit fidelity via cross entropy
// and checks the Porter–Thomas shape of the output distribution.
package xeb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PorterThomasEntropy returns the expected Shannon entropy (nats) of the
// output distribution of a chaotic n-qubit circuit:
// S_PT = n·ln2 − (1 − γ), with γ the Euler–Mascheroni constant.
func PorterThomasEntropy(n int) float64 {
	const gamma = 0.57721566490153286
	return float64(n)*math.Ln2 - (1 - gamma)
}

// CrossEntropy returns −⟨ln p(x)⟩ over the sampled bitstrings, evaluated
// with the ideal probabilities probs.
func CrossEntropy(probs []float64, samples []int) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("xeb: no samples")
	}
	var s float64
	for _, x := range samples {
		if x < 0 || x >= len(probs) {
			return 0, fmt.Errorf("xeb: sample %d out of range", x)
		}
		p := probs[x]
		if p <= 0 {
			return 0, fmt.Errorf("xeb: sampled a zero-probability state %d", x)
		}
		s -= math.Log(p)
	}
	return s / float64(len(samples)), nil
}

// FidelityFromCrossEntropy estimates the circuit fidelity α from the
// measured cross entropy, per Boixo et al.:
//
//	α = (S_0 − CE) / (S_0 − S_PT),
//
// where S_0 = n·ln2 + γ is the cross entropy of the uniform (fully
// depolarized) sampler and S_PT that of an ideal device. α ≈ 1 for perfect
// sampling, α ≈ 0 for uniform noise.
func FidelityFromCrossEntropy(n int, crossEntropy float64) float64 {
	const gamma = 0.57721566490153286
	s0 := float64(n)*math.Ln2 + gamma
	spt := float64(n)*math.Ln2 - 1 + gamma
	return (s0 - crossEntropy) / (s0 - spt)
}

// LinearXEB returns the linear cross-entropy benchmarking fidelity
// 2^n·⟨p(x)⟩ − 1: ≈ 1 for ideal sampling from a Porter–Thomas
// distribution, ≈ 0 for uniform sampling.
func LinearXEB(n int, probs []float64, samples []int) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("xeb: no samples")
	}
	var mean float64
	for _, x := range samples {
		if x < 0 || x >= len(probs) {
			return 0, fmt.Errorf("xeb: sample %d out of range", x)
		}
		mean += probs[x]
	}
	mean /= float64(len(samples))
	return math.Pow(2, float64(n))*mean - 1, nil
}

// PorterThomasKS returns the Kolmogorov–Smirnov distance between the
// distribution of scaled probabilities N·p and the exponential
// distribution e^{−x} that Porter–Thomas predicts for chaotic circuits.
// Values ≪ 1 indicate the circuit has converged to the chaotic regime.
func PorterThomasKS(probs []float64) float64 {
	n := len(probs)
	xs := make([]float64, n)
	for i, p := range probs {
		xs[i] = p * float64(n)
	}
	sort.Float64s(xs)
	var ks float64
	for i, x := range xs {
		cdf := 1 - math.Exp(-x)
		emp0 := float64(i) / float64(n)
		emp1 := float64(i+1) / float64(n)
		if d := math.Abs(cdf - emp0); d > ks {
			ks = d
		}
		if d := math.Abs(cdf - emp1); d > ks {
			ks = d
		}
	}
	return ks
}

// KLDivergence returns D(p‖q) in nats for two distributions over the same
// index space.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("xeb: distribution length mismatch %d vs %d", len(p), len(q))
	}
	var d float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1), nil
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d, nil
}

// Sample draws shots bitstrings from the distribution probs by inverse-CDF
// sampling — the "device" side of a cross-entropy benchmark when the device
// is the simulator itself. probs need not be exactly normalized (draws are
// scaled by the total mass); an all-zero distribution is rejected.
func Sample(probs []float64, shots int, rng *rand.Rand) ([]int, error) {
	if shots < 1 {
		return nil, fmt.Errorf("xeb: need at least one shot")
	}
	cdf := make([]float64, len(probs)+1)
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("xeb: negative probability at state %d", i)
		}
		cdf[i+1] = cdf[i] + p
	}
	total := cdf[len(cdf)-1]
	if total <= 0 {
		return nil, fmt.Errorf("xeb: zero total probability mass")
	}
	out := make([]int, shots)
	for s := range out {
		u := rng.Float64() * total
		// Binary search for the first boundary > u, then step back over
		// zero-width (zero-probability) buckets.
		lo, hi := 0, len(probs)
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid+1] > u {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out[s] = lo
	}
	return out, nil
}

// UniformSample draws shots bitstrings uniformly over n qubits — the fully
// depolarized sampler whose XEB fidelity estimators must read ≈ 0.
func UniformSample(n, shots int, rng *rand.Rand) []int {
	out := make([]int, shots)
	for s := range out {
		out[s] = rng.Intn(1 << n)
	}
	return out
}

// DepolarizedProbs mixes the ideal distribution with uniform noise at
// fidelity alpha: p' = α·p + (1−α)/2^n. Models a noisy device for
// validating the fidelity estimators.
func DepolarizedProbs(probs []float64, alpha float64) []float64 {
	out := make([]float64, len(probs))
	u := 1 / float64(len(probs))
	for i, p := range probs {
		out[i] = alpha*p + (1-alpha)*u
	}
	return out
}
