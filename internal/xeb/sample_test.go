package xeb

import (
	"math"
	"math/rand"
	"testing"
)

// porterThomasProbs draws a normalized Porter–Thomas (exponential)
// distribution over n qubits — the output shape of a chaotic circuit, so
// the fidelity estimators have their design-point input.
func porterThomasProbs(n int, rng *rand.Rand) []float64 {
	probs := make([]float64, 1<<n)
	var total float64
	for i := range probs {
		probs[i] = rng.ExpFloat64()
		total += probs[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	return probs
}

func TestSampleDeterministicAndInRange(t *testing.T) {
	probs := porterThomasProbs(8, rand.New(rand.NewSource(1)))
	a, err := Sample(probs, 500, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	b, err := Sample(probs, 500, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at shot %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= len(probs) {
			t.Fatalf("shot %d out of range: %d", i, a[i])
		}
	}
}

func TestSampleNeverReturnsZeroProbabilityState(t *testing.T) {
	// Half the states carry zero mass; no draw may land on them.
	probs := make([]float64, 64)
	for i := 0; i < len(probs); i += 2 {
		probs[i] = 1.0 / 32
	}
	samples, err := Sample(probs, 2000, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	for _, s := range samples {
		if probs[s] == 0 {
			t.Fatalf("sampled zero-probability state %d", s)
		}
	}
}

func TestSampleRejectsDegenerateInputs(t *testing.T) {
	if _, err := Sample([]float64{0.5, 0.5}, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatalf("zero shots accepted")
	}
	if _, err := Sample([]float64{0, 0}, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatalf("zero-mass distribution accepted")
	}
	if _, err := Sample([]float64{0.5, -0.1}, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatalf("negative probability accepted")
	}
}

// The catalog's correctness bound: sampling from the ideal Porter–Thomas
// distribution must score ≈ 1 on both fidelity estimators, and uniform
// sampling ≈ 0.
func TestXEBScoreSanityBounds(t *testing.T) {
	const n, shots = 10, 20000
	probs := porterThomasProbs(n, rand.New(rand.NewSource(7)))

	ideal, err := Sample(probs, shots, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	lin, err := LinearXEB(n, probs, ideal)
	if err != nil {
		t.Fatalf("LinearXEB: %v", err)
	}
	if lin < 0.8 || lin > 1.2 {
		t.Fatalf("ideal-sampler linear XEB = %v, want ≈ 1", lin)
	}
	ce, err := CrossEntropy(probs, ideal)
	if err != nil {
		t.Fatalf("CrossEntropy: %v", err)
	}
	if alpha := FidelityFromCrossEntropy(n, ce); alpha < 0.8 || alpha > 1.2 {
		t.Fatalf("ideal-sampler cross-entropy fidelity = %v, want ≈ 1", alpha)
	}

	uniform := UniformSample(n, shots, rand.New(rand.NewSource(9)))
	lin, err = LinearXEB(n, probs, uniform)
	if err != nil {
		t.Fatalf("LinearXEB: %v", err)
	}
	if math.Abs(lin) > 0.1 {
		t.Fatalf("uniform-sampler linear XEB = %v, want ≈ 0", lin)
	}
	ce, err = CrossEntropy(probs, uniform)
	if err != nil {
		t.Fatalf("CrossEntropy: %v", err)
	}
	if alpha := FidelityFromCrossEntropy(n, ce); math.Abs(alpha) > 0.1 {
		t.Fatalf("uniform-sampler cross-entropy fidelity = %v, want ≈ 0", alpha)
	}

	// A depolarized mix at fidelity α must land near α on the estimator.
	mixed, err := Sample(DepolarizedProbs(probs, 0.5), shots, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	lin, err = LinearXEB(n, probs, mixed)
	if err != nil {
		t.Fatalf("LinearXEB: %v", err)
	}
	if math.Abs(lin-0.5) > 0.1 {
		t.Fatalf("α=0.5 mix scored %v, want ≈ 0.5", lin)
	}
}
