package xeb

import (
	"math"
	"math/rand"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/statevec"
)

func supremacyProbs(t *testing.T, n, depth int, seed int64) []float64 {
	t.Helper()
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: depth, Seed: seed})
	v := statevec.New(n)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		v.Apply(g.Matrix(), g.Qubits...)
	}
	return v.Probabilities()
}

func sampleFrom(probs []float64, shots int, rng *rand.Rand) []int {
	cdf := make([]float64, len(probs)+1)
	for i, p := range probs {
		cdf[i+1] = cdf[i] + p
	}
	out := make([]int, shots)
	for s := range out {
		r := rng.Float64() * cdf[len(cdf)-1]
		lo, hi := 0, len(probs)
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid+1] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[s] = lo
	}
	return out
}

func TestPorterThomasEntropyValue(t *testing.T) {
	// S_PT(16) = 16·ln2 − (1−γ) ≈ 11.0895 − 0.4228 ≈ 10.667.
	got := PorterThomasEntropy(16)
	want := 16*math.Ln2 - (1 - 0.57721566490153286)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PorterThomasEntropy(16) = %v, want %v", got, want)
	}
}

func TestSupremacyCircuitReachesPorterThomas(t *testing.T) {
	// A deep supremacy circuit's output entropy should approach S_PT and
	// its scaled probabilities should match the exponential distribution.
	n := 12
	probs := supremacyProbs(t, n, 32, 9)
	v := 0.0
	for _, p := range probs {
		if p > 0 {
			v -= p * math.Log(p)
		}
	}
	if math.Abs(v-PorterThomasEntropy(n)) > 0.1 {
		t.Errorf("entropy %v, Porter-Thomas predicts %v", v, PorterThomasEntropy(n))
	}
	if ks := PorterThomasKS(probs); ks > 0.08 {
		t.Errorf("KS distance to Porter-Thomas %v, want < 0.08 at depth 32", ks)
	}
}

func TestShallowCircuitIsNotPorterThomas(t *testing.T) {
	probs := supremacyProbs(t, 12, 2, 9)
	if ks := PorterThomasKS(probs); ks < 0.1 {
		t.Errorf("depth-2 circuit should be far from Porter-Thomas, KS = %v", ks)
	}
}

func TestFidelityEstimatorsIdealSampler(t *testing.T) {
	n := 12
	probs := supremacyProbs(t, n, 24, 10)
	rng := rand.New(rand.NewSource(1))
	samples := sampleFrom(probs, 20000, rng)

	ce, err := CrossEntropy(probs, samples)
	if err != nil {
		t.Fatal(err)
	}
	alpha := FidelityFromCrossEntropy(n, ce)
	if math.Abs(alpha-1) > 0.07 {
		t.Errorf("ideal sampler cross-entropy fidelity %v, want ≈ 1", alpha)
	}
	lin, err := LinearXEB(n, probs, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin-1) > 0.1 {
		t.Errorf("ideal sampler linear XEB %v, want ≈ 1", lin)
	}
}

func TestFidelityEstimatorsUniformSampler(t *testing.T) {
	n := 12
	probs := supremacyProbs(t, n, 24, 11)
	rng := rand.New(rand.NewSource(2))
	samples := make([]int, 20000)
	for i := range samples {
		samples[i] = rng.Intn(1 << n)
	}
	ce, err := CrossEntropy(probs, samples)
	if err != nil {
		t.Fatal(err)
	}
	alpha := FidelityFromCrossEntropy(n, ce)
	if math.Abs(alpha) > 0.07 {
		t.Errorf("uniform sampler fidelity %v, want ≈ 0", alpha)
	}
	lin, err := LinearXEB(n, probs, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin) > 0.1 {
		t.Errorf("uniform sampler linear XEB %v, want ≈ 0", lin)
	}
}

func TestFidelityTracksDepolarization(t *testing.T) {
	// Sampling from a depolarized distribution at fidelity α must recover
	// α (the calibration use case).
	n := 12
	probs := supremacyProbs(t, n, 24, 12)
	rng := rand.New(rand.NewSource(3))
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		noisy := DepolarizedProbs(probs, alpha)
		samples := sampleFrom(noisy, 40000, rng)
		lin, err := LinearXEB(n, probs, samples)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lin-alpha) > 0.1 {
			t.Errorf("alpha=%v: linear XEB %v", alpha, lin)
		}
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	d, err := KLDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(2) + 0.5*math.Log(0.5/0.75)
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", d, want)
	}
	if d2, _ := KLDivergence(p, p); d2 != 0 {
		t.Errorf("KL(p,p) = %v", d2)
	}
	if _, err := KLDivergence(p, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if inf, _ := KLDivergence([]float64{1, 0}, []float64{0, 1}); !math.IsInf(inf, 1) {
		t.Error("KL with zero support should be +Inf")
	}
}

func TestErrorsOnBadSamples(t *testing.T) {
	probs := []float64{0.5, 0.5}
	if _, err := CrossEntropy(probs, nil); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := CrossEntropy(probs, []int{5}); err == nil {
		t.Error("out-of-range sample accepted")
	}
	if _, err := LinearXEB(1, probs, []int{-1}); err == nil {
		t.Error("negative sample accepted")
	}
}
