package xeb

import (
	"math"
	"math/rand"
	"testing"
)

func TestPorterThomasKSOnExactExponential(t *testing.T) {
	// Probabilities drawn from the exponential (Porter–Thomas) law must
	// give a small KS distance; uniform probabilities a large one.
	rng := rand.New(rand.NewSource(200))
	n := 1 << 12
	probs := make([]float64, n)
	var sum float64
	for i := range probs {
		probs[i] = rng.ExpFloat64()
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	if ks := PorterThomasKS(probs); ks > 0.05 {
		t.Errorf("KS of exact exponential sample %v, want small", ks)
	}
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1 / float64(n)
	}
	if ks := PorterThomasKS(uniform); ks < 0.3 {
		t.Errorf("KS of uniform distribution %v, want large", ks)
	}
}

func TestDepolarizedProbsNormalized(t *testing.T) {
	probs := []float64{0.7, 0.2, 0.1, 0}
	for _, alpha := range []float64{0, 0.3, 1} {
		noisy := DepolarizedProbs(probs, alpha)
		var sum float64
		for _, p := range noisy {
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("alpha=%v: noisy distribution sums to %v", alpha, sum)
		}
	}
	// alpha=1 is the identity; alpha=0 is uniform.
	id := DepolarizedProbs(probs, 1)
	for i := range probs {
		if math.Abs(id[i]-probs[i]) > 1e-15 {
			t.Errorf("alpha=1 changed the distribution")
		}
	}
	uni := DepolarizedProbs(probs, 0)
	for _, p := range uni {
		if math.Abs(p-0.25) > 1e-15 {
			t.Errorf("alpha=0 is not uniform: %v", uni)
		}
	}
}

func TestFidelityFromCrossEntropyEndpoints(t *testing.T) {
	n := 20
	const gamma = 0.57721566490153286
	// Ideal device: CE = S_PT ⇒ α = 1.
	spt := float64(n)*math.Ln2 - 1 + gamma
	if a := FidelityFromCrossEntropy(n, spt); math.Abs(a-1) > 1e-12 {
		t.Errorf("α(S_PT) = %v, want 1", a)
	}
	// Uniform sampler: CE = S_0 ⇒ α = 0.
	s0 := float64(n)*math.Ln2 + gamma
	if a := FidelityFromCrossEntropy(n, s0); math.Abs(a) > 1e-12 {
		t.Errorf("α(S_0) = %v, want 0", a)
	}
}

func TestCrossEntropyExactValue(t *testing.T) {
	probs := []float64{0.5, 0.25, 0.25}
	samples := []int{0, 1, 2, 0}
	got, err := CrossEntropy(probs, samples)
	if err != nil {
		t.Fatal(err)
	}
	want := -(math.Log(0.5) + math.Log(0.25) + math.Log(0.25) + math.Log(0.5)) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cross entropy %v, want %v", got, want)
	}
	if _, err := CrossEntropy([]float64{1, 0}, []int{1}); err == nil {
		t.Error("zero-probability sample accepted")
	}
}
