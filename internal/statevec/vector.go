// Package statevec implements the single-node state vector of a quantum
// circuit simulator (Sec. 2–3.3 of Häner & Steiger, SC'17): a dense vector
// of 2^n complex amplitudes with in-place k-qubit gate application, diagonal
// and specialized fast paths, local qubit permutation kernels (used by the
// distributed global-to-local swaps), and measurement/statistics routines.
package statevec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qusim/internal/gate"
	"qusim/internal/kernels"
	"qusim/internal/par"
)

// Vector is the state of an n-qubit register: Amps[b] is the amplitude of
// computational basis state |b⟩, with qubit j at bit j of b.
type Vector struct {
	N    int
	Amps []complex128

	// Variant selects the gate kernel implementation; the zero value is
	// kernels.Auto (the tuned/specialized path).
	Variant kernels.Variant

	scratch []complex128 // second vector for the Naive variant, lazily made
}

// New returns an n-qubit register initialized to |0…0⟩.
func New(n int) *Vector {
	v := newUninit(n)
	v.Amps[0] = 1
	return v
}

// NewUniform returns the uniform superposition (2^{−n/2}, …)ᵀ — the state
// after the initial cycle of Hadamards, which the simulator writes directly
// instead of applying n H gates (Sec. 3.6).
func NewUniform(n int) *Vector {
	v := newUninit(n)
	a := complex(math.Pow(2, -float64(n)/2), 0)
	par.For(len(v.Amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v.Amps[i] = a
		}
	})
	return v
}

// FromAmplitudes wraps an amplitude slice (len must be a power of two).
// The slice is not copied.
func FromAmplitudes(amps []complex128) *Vector {
	n := 0
	for 1<<n < len(amps) {
		n++
	}
	if 1<<n != len(amps) {
		panic(fmt.Sprintf("statevec: %d amplitudes is not a power of two", len(amps)))
	}
	return &Vector{N: n, Amps: amps, Variant: kernels.Auto}
}

func newUninit(n int) *Vector {
	if n < 0 || n > 34 {
		panic(fmt.Sprintf("statevec: unsupported qubit count %d", n))
	}
	v := &Vector{N: n, Variant: kernels.Auto}
	// Parallel first-touch initialization: the NUMA-aware initialization of
	// Sec. 3.3 — each worker touches the pages it will later operate on.
	v.Amps = make([]complex128, 1<<n)
	par.For(len(v.Amps), 1<<16, func(lo, hi int) {
		amps := v.Amps[lo:hi]
		for i := range amps {
			amps[i] = 0
		}
	})
	return v
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := &Vector{N: v.N, Amps: make([]complex128, len(v.Amps)), Variant: v.Variant}
	copy(c.Amps, v.Amps)
	return c
}

// Len returns the number of amplitudes, 2^N.
func (v *Vector) Len() int { return len(v.Amps) }

// Amplitude returns the amplitude of basis state |b⟩.
func (v *Vector) Amplitude(b int) complex128 { return v.Amps[b] }

// Norm returns the 2-norm squared Σ|α|², which unitary evolution keeps at 1.
func (v *Vector) Norm() float64 {
	return par.ReduceFloat64(len(v.Amps), 1<<14, func(lo, hi int) float64 {
		var s float64
		for _, a := range v.Amps[lo:hi] {
			s += real(a)*real(a) + imag(a)*imag(a)
		}
		return s
	})
}

// Renormalize rescales the state to unit norm (guards against drift in very
// deep circuits).
func (v *Vector) Renormalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	kernels.Scale(v.Amps, complex(1/math.Sqrt(n), 0))
}

// Probability returns |α_b|².
func (v *Vector) Probability(b int) float64 {
	a := v.Amps[b]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the full output distribution. Only sensible for
// small n.
func (v *Vector) Probabilities() []float64 {
	p := make([]float64, len(v.Amps))
	par.For(len(v.Amps), 1<<14, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := v.Amps[i]
			p[i] = real(a)*real(a) + imag(a)*imag(a)
		}
	})
	return p
}

// Entropy returns the Shannon entropy −Σ p ln p of the output distribution
// in nats — the quantity computed in the 36-qubit Edison run (Sec. 4.2.2),
// which requires a final reduction over all amplitudes.
func (v *Vector) Entropy() float64 {
	return par.ReduceFloat64(len(v.Amps), 1<<14, func(lo, hi int) float64 {
		var s float64
		for _, a := range v.Amps[lo:hi] {
			p := real(a)*real(a) + imag(a)*imag(a)
			if p > 0 {
				s -= p * math.Log(p)
			}
		}
		return s
	})
}

// MarginalProbability returns P(qubit q = 1).
func (v *Vector) MarginalProbability(q int) float64 {
	bit := 1 << q
	return par.ReduceFloat64(len(v.Amps), 1<<14, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			if i&bit != 0 {
				a := v.Amps[i]
				s += real(a)*real(a) + imag(a)*imag(a)
			}
		}
		return s
	})
}

// Sample draws shots basis states from the output distribution using
// inverse-CDF sampling. Only sensible for small n.
func (v *Vector) Sample(rng *rand.Rand, shots int) []int {
	cdf := make([]float64, len(v.Amps)+1)
	for i, a := range v.Amps {
		cdf[i+1] = cdf[i] + real(a)*real(a) + imag(a)*imag(a)
	}
	total := cdf[len(cdf)-1]
	out := make([]int, shots)
	for s := range out {
		out[s] = SearchCDF(cdf, rng.Float64()*total)
	}
	return out
}

// SearchCDF returns the bucket of the cumulative distribution cdf (bucket i
// spans [cdf[i], cdf[i+1])) that contains u, skipping zero-width buckets: a
// plain binary search returns the FIRST boundary ≥ u, so a draw landing
// exactly on a boundary shared by empty buckets would select a
// zero-probability state. Used by Sample and by the distributed sampler
// (both for picking the owning rank and the in-rank index).
func SearchCDF(cdf []float64, u float64) int {
	m := len(cdf) - 1
	idx := sort.SearchFloat64s(cdf[1:], u)
	// A bucket whose right edge is still ≤ u cannot contain u — advance
	// past the zero-width run the search may have landed on.
	for idx < m-1 && cdf[idx+1] <= u {
		idx++
	}
	if idx >= m {
		idx = m - 1
	}
	// If u fell at or beyond the final boundary (floating-point edge of
	// u = total), back out of any trailing zero-width buckets.
	for idx > 0 && cdf[idx+1] == cdf[idx] {
		idx--
	}
	return idx
}

// MaxDiff returns the largest modulus of element-wise difference to o.
func (v *Vector) MaxDiff(o *Vector) float64 {
	if v.N != o.N {
		return math.Inf(1)
	}
	var m float64
	for i := range v.Amps {
		d := v.Amps[i] - o.Amps[i]
		if ab := math.Hypot(real(d), imag(d)); ab > m {
			m = ab
		}
	}
	return m
}

// InnerProduct returns ⟨v|o⟩.
func (v *Vector) InnerProduct(o *Vector) complex128 {
	var acc complex128
	for i := range v.Amps {
		a := v.Amps[i]
		acc += complex(real(a), -imag(a)) * o.Amps[i]
	}
	return acc
}

// Fidelity returns |⟨v|o⟩|².
func (v *Vector) Fidelity(o *Vector) float64 {
	ip := v.InnerProduct(o)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// gate application -----------------------------------------------------------

// Apply applies the gate matrix m to the given qubits: gate-local qubit j of
// m acts on qubits[j]. Qubits need not be sorted; the matrix is
// pre-permuted to sorted qubit order per Sec. 3.2, and diagonal matrices
// take the no-matvec fast path.
func (v *Vector) Apply(m gate.Matrix, qubits ...int) {
	if len(qubits) != m.K {
		panic(fmt.Sprintf("statevec: %d qubits for a %d-qubit gate", len(qubits), m.K))
	}
	sortedQs, perm := sortPositions(qubits)
	mm := m
	if perm != nil {
		mm = gate.PermuteQubits(m, perm)
	}
	if mm.IsDiagonal(0) {
		kernels.ApplyDiagonal(v.Amps, mm.Diagonal(), sortedQs)
		return
	}
	v.applySorted(mm, sortedQs)
}

// ApplyDense is Apply without the diagonal fast path — used by experiments
// that must exercise the full kernel (worst-case dense gates, Sec. 3.6.1).
func (v *Vector) ApplyDense(m gate.Matrix, qubits ...int) {
	sortedQs, perm := sortPositions(qubits)
	mm := m
	if perm != nil {
		mm = gate.PermuteQubits(m, perm)
	}
	v.applySorted(mm, sortedQs)
}

func (v *Vector) applySorted(m gate.Matrix, sortedQs []int) {
	if v.Variant == kernels.Naive && v.scratch == nil {
		v.scratch = make([]complex128, len(v.Amps))
	}
	out := kernels.Apply(v.Variant, v.Amps, m.Data, sortedQs, v.scratch)
	if &out[0] != &v.Amps[0] {
		v.scratch = v.Amps
		v.Amps = out
	}
}

// ApplyDiagonal applies a diagonal gate given by its diagonal entries.
func (v *Vector) ApplyDiagonal(d []complex128, qubits ...int) {
	sortedQs, perm := sortPositions(qubits)
	dd := d
	if perm != nil {
		dd = make([]complex128, len(d))
		k := len(qubits)
		for x := range d {
			// bit j of x moves to bit perm[j].
			y := 0
			for j := 0; j < k; j++ {
				if x&(1<<j) != 0 {
					y |= 1 << perm[j]
				}
			}
			dd[y] = d[x]
		}
	}
	kernels.ApplyDiagonal(v.Amps, dd, sortedQs)
}

// ApplyCZ applies a controlled-Z between two qubits (symmetric).
func (v *Vector) ApplyCZ(a, b int) { kernels.ApplyCZ(v.Amps, a, b) }

// ApplyControlled applies m to the target qubits conditioned on every
// control qubit being 1, touching only the controlled subspace (a 2^c-fold
// saving over embedding the controls into the matrix).
func (v *Vector) ApplyControlled(m gate.Matrix, targets, controls []int) {
	sortedQs, perm := sortPositions(targets)
	mm := m
	if perm != nil {
		mm = gate.PermuteQubits(m, perm)
	}
	kernels.ApplyControlled(v.Amps, mm.Data, sortedQs, controls)
}

// ApplyControlledPhase multiplies amplitudes with all the given qubits set
// by the phase (generalized CZ/CPhase).
func (v *Vector) ApplyControlledPhase(qubits []int, phase complex128) {
	kernels.ApplyControlledPhase(v.Amps, qubits, phase)
}

// Scale multiplies the whole state by s (global phase).
func (v *Vector) Scale(s complex128) { kernels.Scale(v.Amps, s) }

// sortPositions returns the sorted positions and, if the input was not
// already sorted, the permutation perm with perm[j] = rank of qubits[j].
func sortPositions(qubits []int) ([]int, []int) {
	if sort.IntsAreSorted(qubits) {
		return qubits, nil
	}
	k := len(qubits)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return qubits[idx[a]] < qubits[idx[b]] })
	sortedQs := make([]int, k)
	perm := make([]int, k)
	for rank, j := range idx {
		sortedQs[rank] = qubits[j]
		perm[j] = rank
	}
	return sortedQs, perm
}
