package statevec

import (
	"math"
	"math/rand"
	"testing"

	"qusim/internal/gate"
	"qusim/internal/kernels"
)

func TestNaiveVariantLongCircuit(t *testing.T) {
	// The naive variant ping-pongs two buffers; after many applications it
	// must still agree with the in-place variants.
	rng := rand.New(rand.NewSource(130))
	n := 8
	a := randomVector(n, rng)
	b := a.Clone()
	a.Variant = kernels.Naive
	b.Variant = kernels.Specialized
	for i := 0; i < 40; i++ {
		k := 1 + rng.Intn(3)
		u := gate.RandomUnitary(k, rng)
		qs := rng.Perm(n)[:k]
		a.Apply(u, qs...)
		b.Apply(u, qs...)
	}
	if d := a.MaxDiff(b); d > 1e-8 {
		t.Errorf("naive vs specialized over 40 gates: max diff %g", d)
	}
}

func TestAllVariantsAgreeOnCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	n := 8
	base := randomVector(n, rng)
	type step struct {
		u  gate.Matrix
		qs []int
	}
	var steps []step
	for i := 0; i < 25; i++ {
		k := 1 + rng.Intn(3)
		steps = append(steps, step{gate.RandomUnitary(k, rng), rng.Perm(n)[:k]})
	}
	var results []*Vector
	for _, variant := range []kernels.Variant{kernels.Naive, kernels.InPlace, kernels.Split, kernels.Specialized, kernels.Generated} {
		v := base.Clone()
		v.Variant = variant
		for _, s := range steps {
			v.Apply(s.u, s.qs...)
		}
		results = append(results, v)
	}
	for i := 1; i < len(results); i++ {
		if d := results[0].MaxDiff(results[i]); d > 1e-8 {
			t.Errorf("variant %d deviates from variant 0: %g", i, d)
		}
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	v := randomVector(9, rng)
	var sum float64
	for _, p := range v.Probabilities() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New(4)
	w := v.Clone()
	w.Apply(gate.X(), 0)
	if v.Probability(1) != 0 {
		t.Error("modifying the clone affected the original")
	}
}

func TestFromAmplitudesAliases(t *testing.T) {
	amps := make([]complex128, 8)
	amps[0] = 1
	v := FromAmplitudes(amps)
	v.Apply(gate.X(), 0)
	if amps[1] != 1 {
		t.Error("FromAmplitudes should alias the caller's slice")
	}
}

func TestApplyZeroQubitGate(t *testing.T) {
	// A 0-qubit "gate" is a global scalar; Apply must handle it via the
	// diagonal path.
	rng := rand.New(rand.NewSource(133))
	v := randomVector(5, rng)
	w := v.Clone()
	phase := gate.Identity(0).Scale(complex(0, 1))
	v.Apply(phase)
	w.Scale(complex(0, 1))
	if d := v.MaxDiff(w); d > 1e-14 {
		t.Errorf("0-qubit gate application: %g", d)
	}
}

func TestApplyPanicsOnArityMismatch(t *testing.T) {
	v := New(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	v.Apply(gate.H(), 0, 1)
}

func TestDeepCircuitNormStability(t *testing.T) {
	// 500 random gates: the norm must stay at 1 to ~1e-12 (numerical
	// stability of the kernels).
	rng := rand.New(rand.NewSource(134))
	v := New(8)
	for i := 0; i < 500; i++ {
		k := 1 + rng.Intn(2)
		v.Apply(gate.RandomUnitary(k, rng), rng.Perm(8)[:k]...)
	}
	if d := math.Abs(v.Norm() - 1); d > 1e-11 {
		t.Errorf("norm drift after 500 gates: %g", d)
	}
}

func TestApplyControlledViaVector(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	v := randomVector(6, rng)
	w := v.Clone()
	u := gate.RandomUnitary(1, rng)
	v.ApplyControlled(u, []int{2}, []int{4})
	// Reference: dense controlled matrix.
	w.ApplyDense(gate.Controlled(u), 2, 4)
	if d := v.MaxDiff(w); d > 1e-10 {
		t.Errorf("ApplyControlled vs dense: %g", d)
	}
}

func TestApplyControlledPhaseViaVector(t *testing.T) {
	rng := rand.New(rand.NewSource(136))
	v := randomVector(5, rng)
	w := v.Clone()
	v.ApplyControlledPhase([]int{0, 3}, -1)
	w.Apply(gate.CZ(), 0, 3)
	if d := v.MaxDiff(w); d > 1e-13 {
		t.Errorf("ApplyControlledPhase vs CZ: %g", d)
	}
}
