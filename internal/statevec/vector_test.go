package statevec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qusim/internal/gate"
	"qusim/internal/kernels"
)

func TestNewZeroState(t *testing.T) {
	v := New(4)
	if v.Amplitude(0) != 1 {
		t.Errorf("amp[0] = %v, want 1", v.Amplitude(0))
	}
	if math.Abs(v.Norm()-1) > 1e-14 {
		t.Errorf("norm = %v", v.Norm())
	}
}

func TestNewUniformMatchesHadamards(t *testing.T) {
	n := 6
	u := NewUniform(n)
	h := New(n)
	for q := 0; q < n; q++ {
		h.Apply(gate.H(), q)
	}
	if d := u.MaxDiff(h); d > 1e-12 {
		t.Errorf("uniform init vs Hadamard cycle: max diff %g", d)
	}
}

func TestFromAmplitudesPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromAmplitudes(make([]complex128, 3))
}

func TestApplyXFlipsBit(t *testing.T) {
	v := New(3)
	v.Apply(gate.X(), 1)
	if cmplx.Abs(v.Amplitude(2)-1) > 1e-14 {
		t.Errorf("X on qubit 1 of |000⟩: amp[2] = %v", v.Amplitude(2))
	}
}

func TestApplyUnsortedQubits(t *testing.T) {
	// CNOT with control qubit 2, target qubit 0: |100⟩ → |101⟩.
	v := New(3)
	v.Apply(gate.X(), 2)
	// CNOT matrix convention: gate-local 0 = target, 1 = control.
	v.Apply(gate.CNOT(), 0, 2)
	if cmplx.Abs(v.Amplitude(0b101)-1) > 1e-14 {
		t.Errorf("CNOT(t=0,c=2)|100⟩: got amp %v at 101", v.Amplitude(0b101))
	}
	// Now reversed operand order: control 0, target 2 on |001⟩ → |101⟩.
	w := New(3)
	w.Apply(gate.X(), 0)
	w.Apply(gate.CNOT(), 2, 0)
	if cmplx.Abs(w.Amplitude(0b101)-1) > 1e-14 {
		t.Errorf("CNOT(t=2,c=0)|001⟩: got amp %v at 101", w.Amplitude(0b101))
	}
}

func TestBellState(t *testing.T) {
	v := New(2)
	v.Apply(gate.H(), 0)
	v.Apply(gate.CNOT(), 1, 0) // target 1, control 0
	want := 1 / math.Sqrt2
	if cmplx.Abs(v.Amplitude(0)-complex(want, 0)) > 1e-14 ||
		cmplx.Abs(v.Amplitude(3)-complex(want, 0)) > 1e-14 {
		t.Errorf("Bell state amps: %v %v %v %v",
			v.Amplitude(0), v.Amplitude(1), v.Amplitude(2), v.Amplitude(3))
	}
}

func TestApplyMatchesDenseEmbedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		k := 1 + rng.Intn(3)
		u := gate.RandomUnitary(k, rng)
		qubits := rng.Perm(n)[:k]
		v := randomVector(n, rng)
		w := v.Clone()
		v.Apply(u, qubits...)
		// Dense reference.
		full := gate.Embed(u, qubits, n)
		d := 1 << n
		ref := make([]complex128, d)
		for r := 0; r < d; r++ {
			var acc complex128
			for c := 0; c < d; c++ {
				acc += full.Data[r*d+c] * w.Amps[c]
			}
			ref[r] = acc
		}
		for i := range ref {
			if cmplx.Abs(ref[i]-v.Amps[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDiagonalFastPathMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 7
	u := gate.RandomDiagonal(2, rng)
	qubits := []int{5, 2} // unsorted on purpose
	v := randomVector(n, rng)
	w := v.Clone()
	v.Apply(u, qubits...)
	w.ApplyDense(u, qubits...)
	if d := v.MaxDiff(w); d > 1e-10 {
		t.Errorf("diagonal fast path vs dense: max diff %g", d)
	}
	x := v.Clone()
	y := v.Clone()
	x.ApplyDiagonal(u.Diagonal(), qubits...)
	y.ApplyDense(u, qubits...)
	if d := x.MaxDiff(y); d > 1e-10 {
		t.Errorf("ApplyDiagonal vs dense: max diff %g", d)
	}
}

func TestNaiveVariantSwapsBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	v := randomVector(6, rng)
	v.Variant = kernels.Naive
	w := v.Clone()
	u := gate.RandomUnitary(2, rng)
	v.Apply(u, 1, 4)
	w.Apply(u, 1, 4)
	if d := v.MaxDiff(w); d > 1e-10 {
		t.Errorf("naive vs auto variants: max diff %g", d)
	}
	if math.Abs(v.Norm()-1) > 1e-10 {
		t.Errorf("norm after naive apply: %v", v.Norm())
	}
}

func TestProbabilityAndMarginal(t *testing.T) {
	v := New(2)
	v.Apply(gate.H(), 0)
	if math.Abs(v.Probability(0)-0.5) > 1e-14 {
		t.Errorf("P(00) = %v", v.Probability(0))
	}
	if math.Abs(v.MarginalProbability(0)-0.5) > 1e-14 {
		t.Errorf("P(q0=1) = %v", v.MarginalProbability(0))
	}
	if v.MarginalProbability(1) > 1e-14 {
		t.Errorf("P(q1=1) = %v", v.MarginalProbability(1))
	}
}

func TestEntropyUniform(t *testing.T) {
	n := 5
	v := NewUniform(n)
	want := float64(n) * math.Ln2
	if math.Abs(v.Entropy()-want) > 1e-12 {
		t.Errorf("entropy of uniform %d-qubit state = %v, want %v", n, v.Entropy(), want)
	}
	z := New(n)
	if z.Entropy() > 1e-14 {
		t.Errorf("entropy of basis state = %v, want 0", z.Entropy())
	}
}

func TestRenormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	v := randomVector(5, rng)
	v.Scale(3)
	v.Renormalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("norm after renormalize = %v", v.Norm())
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	v := New(1)
	v.Apply(gate.H(), 0)
	shots := 20000
	counts := [2]int{}
	for _, s := range v.Sample(rng, shots) {
		counts[s]++
	}
	frac := float64(counts[1]) / float64(shots)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("sampled P(1) = %v, want ≈0.5", frac)
	}
}

func TestSearchCDFSkipsZeroWidthBuckets(t *testing.T) {
	// Probabilities {0.25, 0, 0, 0.5, 0, 0.25, 0, 0}: draws landing exactly
	// on a boundary shared with zero-width buckets used to select a
	// zero-probability state (sort.SearchFloat64s returns the FIRST boundary
	// ≥ u). SearchCDF must always land in a bucket with positive width.
	cdf := []float64{0, 0.25, 0.25, 0.25, 0.75, 0.75, 1.0, 1.0, 1.0}
	cases := []struct {
		u    float64
		want int
	}{
		{0, 0},    // left edge of the distribution
		{0.1, 0},  // interior of bucket 0
		{0.25, 3}, // boundary shared by zero-width buckets 1 and 2
		{0.5, 3},  // interior of bucket 3
		{0.75, 5}, // boundary shared by zero-width bucket 4
		{0.9, 5},  // interior of bucket 5
		{1.0, 5},  // u == total: trailing zero-width buckets 6, 7
		{1.5, 5},  // beyond total (floating-point slop on u = rng*total)
	}
	for _, tc := range cases {
		if got := SearchCDF(cdf, tc.u); got != tc.want {
			t.Errorf("SearchCDF(u=%v) = %d, want %d", tc.u, got, tc.want)
		}
	}
	// All-mass-at-the-end distribution: leading zero-width buckets.
	lead := []float64{0, 0, 0, 1}
	if got := SearchCDF(lead, 0); got != 2 {
		t.Errorf("SearchCDF(leading zeros, u=0) = %d, want 2", got)
	}
}

func TestSampleNeverSelectsZeroAmplitudeState(t *testing.T) {
	// Exact-zero amplitudes adjacent to the support: no draw may select a
	// zero-probability basis state regardless of where the RNG lands.
	v := New(3)
	v.Amps[0] = 0
	v.Amps[1] = complex(math.Sqrt(0.5), 0)
	v.Amps[6] = complex(0, math.Sqrt(0.5))
	rng := rand.New(rand.NewSource(37))
	for _, s := range v.Sample(rng, 2000) {
		if s != 1 && s != 6 {
			t.Fatalf("sampled zero-probability state %d", s)
		}
	}
}

func TestInnerProductAndFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	v := randomVector(6, rng)
	if math.Abs(real(v.InnerProduct(v))-1) > 1e-12 {
		t.Errorf("⟨v|v⟩ = %v", v.InnerProduct(v))
	}
	if math.Abs(v.Fidelity(v)-1) > 1e-12 {
		t.Errorf("F(v,v) = %v", v.Fidelity(v))
	}
	// Fidelity is invariant under global phase.
	w := v.Clone()
	w.Scale(cmplx.Exp(complex(0, 1.1)))
	if math.Abs(v.Fidelity(w)-1) > 1e-12 {
		t.Errorf("F(v, e^{iφ}v) = %v", v.Fidelity(w))
	}
}

func TestApplyCZBetweenStates(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	v := randomVector(5, rng)
	w := v.Clone()
	v.ApplyCZ(1, 3)
	w.Apply(gate.CZ(), 1, 3)
	if d := v.MaxDiff(w); d > 1e-12 {
		t.Errorf("ApplyCZ vs matrix CZ: max diff %g", d)
	}
}

func randomVector(n int, rng *rand.Rand) *Vector {
	v := New(n)
	var norm float64
	for i := range v.Amps {
		v.Amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(v.Amps[i])*real(v.Amps[i]) + imag(v.Amps[i])*imag(v.Amps[i])
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range v.Amps {
		v.Amps[i] *= inv
	}
	return v
}
