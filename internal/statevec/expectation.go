package statevec

import (
	"fmt"

	"qusim/internal/par"
)

// Pauli expectation values — the observables of algorithm studies (Sec. 1).

// Pauli identifies a single-qubit Pauli operator.
type Pauli byte

const (
	PauliI Pauli = 'I'
	PauliX Pauli = 'X'
	PauliY Pauli = 'Y'
	PauliZ Pauli = 'Z'
)

// ExpectationZ returns ⟨Z_q⟩ = P(q=0) − P(q=1) without modifying the state.
func (v *Vector) ExpectationZ(q int) float64 {
	bit := 1 << q
	return par.ReduceFloat64(len(v.Amps), 1<<14, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			a := v.Amps[i]
			p := real(a)*real(a) + imag(a)*imag(a)
			if i&bit == 0 {
				s += p
			} else {
				s -= p
			}
		}
		return s
	})
}

// ExpectationPauliString returns ⟨P_0 ⊗ P_1 ⊗ … ⊗ P_{n−1}⟩ for the Pauli
// string given per qubit ('I', 'X', 'Y', 'Z'); ops[q] acts on qubit q.
// Computed as ⟨ψ| P |ψ⟩ in a single sweep: P|ψ⟩ permutes each index by the
// X-mask and attaches a phase from Y/Z factors.
func (v *Vector) ExpectationPauliString(ops string) (float64, error) {
	if len(ops) != v.N {
		return 0, fmt.Errorf("statevec: Pauli string has %d factors for %d qubits", len(ops), v.N)
	}
	xmask := 0 // bits flipped by X or Y
	ymask := 0
	zmask := 0
	for q := 0; q < v.N; q++ {
		switch Pauli(ops[q]) {
		case PauliI:
		case PauliX:
			xmask |= 1 << q
		case PauliY:
			xmask |= 1 << q
			ymask |= 1 << q
		case PauliZ:
			zmask |= 1 << q
		default:
			return 0, fmt.Errorf("statevec: invalid Pauli %q at qubit %d", ops[q], q)
		}
	}
	amps := v.Amps
	// ⟨ψ|P|ψ⟩ = Σ_i conj(ψ_i)·phase(i)·ψ_{i⊕xmask}. The result of a
	// Hermitian observable is real; we accumulate the real part.
	// Phase bookkeeping: P = ⊗ factors; acting on basis state |j⟩:
	// X|b⟩ = |1−b⟩; Y|b⟩ = i(−1)^b|1−b⟩; Z|b⟩ = (−1)^b|b⟩.
	yCount := popcount(ymask)
	re := par.ReduceFloat64(len(amps), 1<<13, func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			j := i ^ xmask
			src := amps[j]
			// sign from Z factors on bits of i, and from Y factors: Y
			// contributes i·(−1)^{b_q} with b_q the source bit (of j).
			neg := popcount(i&zmask) + popcount(j&ymask)
			// Total phase: i^{yCount} · (−1)^{neg}.
			var term complex128
			switch yCount & 3 {
			case 0:
				term = src
			case 1:
				term = src * 1i
			case 2:
				term = -src
			case 3:
				term = src * -1i
			}
			if neg&1 == 1 {
				term = -term
			}
			a := amps[i]
			acc += real(a)*real(term) + imag(a)*imag(term)
		}
		return acc
	})
	return re, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
