package statevec

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"qusim/internal/gate"
)

func TestExpectationZBasisStates(t *testing.T) {
	v := New(3) // |000⟩
	for q := 0; q < 3; q++ {
		if got := v.ExpectationZ(q); math.Abs(got-1) > 1e-14 {
			t.Errorf("⟨Z_%d⟩ of |000⟩ = %v, want 1", q, got)
		}
	}
	v.Apply(gate.X(), 1)
	if got := v.ExpectationZ(1); math.Abs(got+1) > 1e-14 {
		t.Errorf("⟨Z_1⟩ of |010⟩ = %v, want −1", got)
	}
}

func TestExpectationZSuperposition(t *testing.T) {
	v := New(1)
	v.Apply(gate.H(), 0)
	if got := v.ExpectationZ(0); math.Abs(got) > 1e-14 {
		t.Errorf("⟨Z⟩ of |+⟩ = %v, want 0", got)
	}
}

func TestExpectationPauliStringMatchesDense(t *testing.T) {
	// Reference: build the Pauli string as a dense matrix via Kron and
	// compute ⟨ψ|P|ψ⟩ directly.
	rng := rand.New(rand.NewSource(110))
	paulis := map[Pauli]gate.Matrix{PauliI: gate.Identity(1), PauliX: gate.X(), PauliY: gate.Y(), PauliZ: gate.Z()}
	letters := []Pauli{PauliI, PauliX, PauliY, PauliZ}
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		v := randomVector(n, rng)
		ops := make([]byte, n)
		full := gate.Identity(0)
		for q := 0; q < n; q++ {
			p := letters[rng.Intn(4)]
			ops[q] = byte(p)
			full = gate.Kron(paulis[p], full) // qubit q at bit q
		}
		got, err := v.ExpectationPauliString(string(ops))
		if err != nil {
			t.Fatal(err)
		}
		// Dense ⟨ψ|P|ψ⟩.
		d := 1 << n
		var want complex128
		for r := 0; r < d; r++ {
			var row complex128
			for c := 0; c < d; c++ {
				row += full.Data[r*d+c] * v.Amps[c]
			}
			a := v.Amps[r]
			want += complex(real(a), -imag(a)) * row
		}
		if math.Abs(got-real(want)) > 1e-9 || math.Abs(imag(want)) > 1e-9 {
			t.Fatalf("trial %d ops=%s: got %v, want %v", trial, ops, got, want)
		}
	}
}

func TestExpectationGHZParity(t *testing.T) {
	// GHZ state: ⟨X⊗X⊗X⟩ = 1, ⟨Z⊗Z⊗I⟩ = 1, ⟨Z⊗I⊗I⟩ = 0.
	v := New(3)
	v.Apply(gate.H(), 0)
	v.Apply(gate.CNOT(), 1, 0)
	v.Apply(gate.CNOT(), 2, 1)
	cases := map[string]float64{
		"XXX": 1,
		"ZZI": 1,
		"IZZ": 1,
		"ZII": 0,
		"YYX": -1,
	}
	for ops, want := range cases {
		got, err := v.ExpectationPauliString(ops)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("⟨%s⟩ = %v, want %v", ops, got, want)
		}
	}
}

func TestExpectationErrors(t *testing.T) {
	v := New(2)
	if _, err := v.ExpectationPauliString("X"); err == nil {
		t.Error("short string accepted")
	}
	if _, err := v.ExpectationPauliString(strings.Repeat("Q", 2)); err == nil {
		t.Error("invalid letter accepted")
	}
}
