package statevec

import (
	"fmt"

	"qusim/internal/kernels"
	"qusim/internal/par"
)

// Qubit-relabeling kernels. The distributed scheme of Sec. 3.4 swaps
// arbitrary local qubits with the highest-order local qubits before the
// group all-to-all ("we first use our optimized kernels to achieve local
// swaps between highest-index qubits and those to be swapped"); these are
// those local swap kernels.

// SwapBits exchanges the amplitudes so that bit positions a and b of the
// basis index are swapped — the unitary SWAP gate applied as a pure
// permutation (no arithmetic).
//
//qusim:hot
func (v *Vector) SwapBits(a, b int) {
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	if b >= v.N {
		panic(fmt.Sprintf("statevec: SwapBits position %d out of range for n=%d", b, v.N))
	}
	maskA := 1<<a - 1
	maskB := 1<<b - 1
	sa, sb := 1<<a, 1<<b
	amps := v.Amps
	par.For(len(amps)>>2, 1024, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			base := ((t &^ maskA) << 1) | (t & maskA)
			base = ((base &^ maskB) << 1) | (base & maskB)
			i01 := base | sa
			i10 := base | sb
			amps[i01], amps[i10] = amps[i10], amps[i01]
		}
	})
}

// PermuteBits relabels bit position p to perm[p] for every amplitude:
// new index bit perm[p] = old index bit p. perm must be a permutation of
// 0…n−1.
//
// The permutation is compiled into per-shift-distance bit masks and
// executed as a single gather pass into the scratch vector (one read of the
// state plus one write — ≤ 2 full-state passes however many bits move),
// replacing the transposition chain that cost one half-state sweep per
// 2-cycle step. A lone transposition still runs through SwapBits, which
// touches only half the amplitudes and needs no scratch.
func (v *Vector) PermuteBits(perm []int) {
	if len(perm) != v.N {
		panic(fmt.Sprintf("statevec: PermuteBits got %d entries for n=%d", len(perm), v.N))
	}
	bp := kernels.CompileBitPermutation(perm)
	if bp.Identity() {
		return
	}
	if a, b, ok := bp.Transposition(); ok {
		v.SwapBits(a, b)
		return
	}
	if v.scratch == nil {
		// First touch happens inside the gather pass, under the same par
		// chunking as every later sweep — the NUMA placement story of
		// Sec. 3.3 is unchanged.
		v.scratch = make([]complex128, len(v.Amps))
	}
	kernels.PermuteInto(v.scratch, v.Amps, bp)
	v.Amps, v.scratch = v.scratch, v.Amps
}

// PermuteBitsSwapChain is the pre-optimization implementation of
// PermuteBits: the permutation decomposed into up to n−1 SwapBits
// transpositions, each a half-state sweep. Kept as the differential
// reference for the single-pass kernel (package verify) and as the
// baseline of BenchmarkPermute.
func (v *Vector) PermuteBitsSwapChain(perm []int) {
	if len(perm) != v.N {
		panic(fmt.Sprintf("statevec: PermuteBitsSwapChain got %d entries for n=%d", len(perm), v.N))
	}
	cur := make([]int, v.N) // cur[p] = where original bit p currently lives
	loc := make([]int, v.N) // loc[x] = which original bit lives at position x
	for i := range cur {
		cur[i] = i
		loc[i] = i
	}
	for p := 0; p < v.N; p++ {
		want := perm[p]
		have := cur[p]
		if have == want {
			continue
		}
		// Swap positions have and want; update bookkeeping.
		v.SwapBits(have, want)
		other := loc[want]
		cur[p], cur[other] = want, have
		loc[have], loc[want] = other, p
	}
}

// ReverseBits reverses the significance of all n bit positions (used by the
// QFT example, whose output is bit-reversed). It runs through the
// single-pass permutation kernel instead of ⌊n/2⌋ swap sweeps.
func (v *Vector) ReverseBits() {
	perm := make([]int, v.N)
	for i := range perm {
		perm[i] = v.N - 1 - i
	}
	v.PermuteBits(perm)
}
