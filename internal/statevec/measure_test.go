package statevec

import (
	"math"
	"math/rand"
	"testing"

	"qusim/internal/gate"
)

func TestCollapseBasisState(t *testing.T) {
	v := New(3)
	v.Apply(gate.H(), 1)
	v.Collapse(1, 1)
	if math.Abs(v.Probability(0b010)-1) > 1e-12 {
		t.Errorf("collapse to |010⟩ failed: %v", v.Amps)
	}
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("norm after collapse %v", v.Norm())
	}
}

func TestCollapseZeroProbabilityPanics(t *testing.T) {
	v := New(2) // |00⟩: qubit 0 can never measure 1
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	v.Collapse(0, 1)
}

func TestMeasureStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	ones := 0
	shots := 5000
	for s := 0; s < shots; s++ {
		v := New(1)
		v.Apply(gate.Ry(2*math.Acos(math.Sqrt(0.3))), 0) // P(1) = 0.7
		ones += v.Measure(0, rng)
	}
	frac := float64(ones) / float64(shots)
	if math.Abs(frac-0.7) > 0.03 {
		t.Errorf("measured P(1) = %v, want ≈ 0.7", frac)
	}
}

func TestMeasureGHZCorrelations(t *testing.T) {
	// Measuring one GHZ qubit collapses all of them to the same value.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		v := New(4)
		v.Apply(gate.H(), 0)
		for q := 1; q < 4; q++ {
			v.Apply(gate.CNOT(), q, q-1) // target q, control q-1
		}
		first := v.Measure(0, rng)
		for q := 1; q < 4; q++ {
			if got := v.Measure(q, rng); got != first {
				t.Fatalf("trial %d: GHZ qubit %d measured %d, first was %d", trial, q, got, first)
			}
		}
	}
}

func TestMeasureAllMatchesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	v := New(2)
	v.Apply(gate.H(), 0)
	v.Apply(gate.H(), 1)
	counts := map[int]int{}
	shots := 4000
	for s := 0; s < shots; s++ {
		w := v.Clone()
		counts[w.MeasureAll(rng)]++
	}
	for b := 0; b < 4; b++ {
		frac := float64(counts[b]) / float64(shots)
		if math.Abs(frac-0.25) > 0.035 {
			t.Errorf("P(%02b) = %v, want ≈ 0.25", b, frac)
		}
	}
}

func TestMeasureAllCollapsesToBasisState(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	v := NewUniform(5)
	b := v.MeasureAll(rng)
	if math.Abs(v.Probability(b)-1) > 1e-9 {
		t.Errorf("state not collapsed onto measured outcome %b", b)
	}
}
