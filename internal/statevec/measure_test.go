package statevec

import (
	"math"
	"math/rand"
	"testing"

	"qusim/internal/gate"
)

func TestCollapseBasisState(t *testing.T) {
	v := New(3)
	v.Apply(gate.H(), 1)
	v.Collapse(1, 1)
	if math.Abs(v.Probability(0b010)-1) > 1e-12 {
		t.Errorf("collapse to |010⟩ failed: %v", v.Amps)
	}
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("norm after collapse %v", v.Norm())
	}
}

func TestCollapseZeroProbabilityPanics(t *testing.T) {
	v := New(2) // |00⟩: qubit 0 can never measure 1
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	v.Collapse(0, 1)
}

func TestMeasureStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	ones := 0
	shots := 5000
	for s := 0; s < shots; s++ {
		v := New(1)
		v.Apply(gate.Ry(2*math.Acos(math.Sqrt(0.3))), 0) // P(1) = 0.7
		ones += v.Measure(0, rng)
	}
	frac := float64(ones) / float64(shots)
	if math.Abs(frac-0.7) > 0.03 {
		t.Errorf("measured P(1) = %v, want ≈ 0.7", frac)
	}
}

func TestMeasureGHZCorrelations(t *testing.T) {
	// Measuring one GHZ qubit collapses all of them to the same value.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		v := New(4)
		v.Apply(gate.H(), 0)
		for q := 1; q < 4; q++ {
			v.Apply(gate.CNOT(), q, q-1) // target q, control q-1
		}
		first := v.Measure(0, rng)
		for q := 1; q < 4; q++ {
			if got := v.Measure(q, rng); got != first {
				t.Fatalf("trial %d: GHZ qubit %d measured %d, first was %d", trial, q, got, first)
			}
		}
	}
}

func TestMeasureAllMatchesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	v := New(2)
	v.Apply(gate.H(), 0)
	v.Apply(gate.H(), 1)
	counts := map[int]int{}
	shots := 4000
	for s := 0; s < shots; s++ {
		w := v.Clone()
		counts[w.MeasureAll(rng)]++
	}
	for b := 0; b < 4; b++ {
		frac := float64(counts[b]) / float64(shots)
		if math.Abs(frac-0.25) > 0.035 {
			t.Errorf("P(%02b) = %v, want ≈ 0.25", b, frac)
		}
	}
}

func TestMeasureAllCollapsesToBasisState(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	v := NewUniform(5)
	b := v.MeasureAll(rng)
	if math.Abs(v.Probability(b)-1) > 1e-9 {
		t.Errorf("state not collapsed onto measured outcome %b", b)
	}
}

// measureStates is the shared table of prepared states for the
// measurement-invariant tests below.
var measureStates = []struct {
	name    string
	qubits  int
	target  int // qubit to measure
	prepare func(v *Vector)
}{
	{"zero", 2, 0, func(v *Vector) {}},
	{"one", 2, 1, func(v *Vector) { v.Apply(gate.X(), 1) }},
	{"plus", 1, 0, func(v *Vector) { v.Apply(gate.H(), 0) }},
	{"ghz4", 4, 2, func(v *Vector) {
		v.Apply(gate.H(), 0)
		for q := 1; q < 4; q++ {
			v.Apply(gate.CNOT(), q, q-1)
		}
	}},
	{"uniform5", 5, 3, func(v *Vector) {
		for q := 0; q < 5; q++ {
			v.Apply(gate.H(), q)
		}
	}},
	{"ry-biased", 3, 1, func(v *Vector) {
		v.Apply(gate.Ry(2*math.Acos(math.Sqrt(0.2))), 1) // P(1) = 0.8
		v.Apply(gate.H(), 0)
	}},
}

func prepared(tc struct {
	name    string
	qubits  int
	target  int
	prepare func(v *Vector)
}) *Vector {
	v := New(tc.qubits)
	tc.prepare(v)
	return v
}

func TestMeasurePreservesNorm(t *testing.T) {
	for _, tc := range measureStates {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(60))
			v := prepared(tc)
			v.Measure(tc.target, rng)
			if d := math.Abs(v.Norm() - 1); d > 1e-12 {
				t.Errorf("post-measurement norm off by %g", d)
			}
		})
	}
}

func TestMeasureCollapsesOppositeOutcome(t *testing.T) {
	for _, tc := range measureStates {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(61))
			v := prepared(tc)
			outcome := v.Measure(tc.target, rng)
			bit := 1 << tc.target
			keep := 0
			if outcome == 1 {
				keep = bit
			}
			for i, a := range v.Amps {
				if i&bit != keep && a != 0 {
					t.Fatalf("amplitude %d survived collapse onto outcome %d: %v", i, outcome, a)
				}
			}
		})
	}
}

func TestMeasureRepeatedIsIdempotent(t *testing.T) {
	for _, tc := range measureStates {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(62))
			v := prepared(tc)
			first := v.Measure(tc.target, rng)
			snapshot := append([]complex128(nil), v.Amps...)
			// A projective measurement is a projection: measuring the same
			// qubit again must reproduce the outcome and leave the state
			// untouched, whatever the RNG draws next.
			for rep := 0; rep < 3; rep++ {
				if again := v.Measure(tc.target, rng); again != first {
					t.Fatalf("repeat %d flipped outcome %d -> %d", rep, first, again)
				}
				for i := range snapshot {
					if v.Amps[i] != snapshot[i] {
						t.Fatalf("repeat %d changed amplitude %d: %v -> %v", rep, i, snapshot[i], v.Amps[i])
					}
				}
			}
		})
	}
}

func TestMeasureDeterministicRNG(t *testing.T) {
	// Same seed, same state → identical outcome and identical collapsed
	// amplitudes; replays of seeded experiments must be exact.
	for _, tc := range measureStates {
		t.Run(tc.name, func(t *testing.T) {
			run := func() (int, []complex128) {
				rng := rand.New(rand.NewSource(63))
				v := prepared(tc)
				o := v.Measure(tc.target, rng)
				return o, v.Amps
			}
			o1, a1 := run()
			o2, a2 := run()
			if o1 != o2 {
				t.Fatalf("same seed measured %d then %d", o1, o2)
			}
			for i := range a1 {
				if a1[i] != a2[i] {
					t.Fatalf("same seed produced different amplitude %d", i)
				}
			}
		})
	}
}
