package statevec

import (
	"fmt"
	"math"
	"math/rand"

	"qusim/internal/par"
)

// Projective measurement support: not used by the supremacy experiments
// (which only need output probabilities), but part of the simulator's
// public API for algorithm studies (Sec. 1: verifying quantum algorithms
// and studying their behaviour).

// Measure performs a projective measurement of qubit q: it samples an
// outcome with the Born probabilities, collapses the state, renormalizes,
// and returns the outcome bit.
func (v *Vector) Measure(q int, rng *rand.Rand) int {
	p1 := v.MarginalProbability(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	v.Collapse(q, outcome)
	return outcome
}

// Collapse projects qubit q onto the given outcome and renormalizes.
// It panics if the outcome has zero probability.
func (v *Vector) Collapse(q, outcome int) {
	if q < 0 || q >= v.N {
		panic(fmt.Sprintf("statevec: Collapse qubit %d out of range", q))
	}
	var p float64
	if outcome == 1 {
		p = v.MarginalProbability(q)
	} else {
		p = 1 - v.MarginalProbability(q)
	}
	if p <= 0 {
		panic(fmt.Sprintf("statevec: collapsing qubit %d onto zero-probability outcome %d", q, outcome))
	}
	inv := complex(1/math.Sqrt(p), 0)
	bit := 1 << q
	keep := 0
	if outcome == 1 {
		keep = bit
	}
	par.For(len(v.Amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&bit == keep {
				v.Amps[i] *= inv
			} else {
				v.Amps[i] = 0
			}
		}
	})
}

// MeasureAll measures every qubit, collapsing the state to a basis state,
// and returns the resulting bitstring.
func (v *Vector) MeasureAll(rng *rand.Rand) int {
	out := 0
	for q := 0; q < v.N; q++ {
		out |= v.Measure(q, rng) << q
	}
	return out
}
