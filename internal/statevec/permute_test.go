package statevec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qusim/internal/gate"
)

func TestSwapBitsMatchesSwapGate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(4)
		a := rng.Intn(n)
		b := rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		v := randomVector(n, rng)
		w := v.Clone()
		v.SwapBits(a, b)
		w.ApplyDense(gate.Swap(), a, b)
		if d := v.MaxDiff(w); d > 1e-12 {
			t.Errorf("n=%d swap(%d,%d): max diff %g", n, a, b, d)
		}
	}
}

func TestSwapBitsSelfIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	v := randomVector(5, rng)
	w := v.Clone()
	v.SwapBits(2, 2)
	if d := v.MaxDiff(w); d != 0 {
		t.Errorf("SwapBits(q,q) changed the state: %g", d)
	}
}

func TestPermuteBitsExplicit(t *testing.T) {
	// Move bit 0 → 2, 1 → 0, 2 → 1 on a basis state.
	v := New(3)
	v.Amps[0] = 0
	v.Amps[0b011] = 1 // bits 0 and 1 set
	v.PermuteBits([]int{2, 0, 1})
	// Old bit 0 (set) → position 2; old bit 1 (set) → position 0; old bit 2
	// (clear) → position 1. New index: 0b101.
	if v.Amplitude(0b101) != 1 {
		t.Errorf("PermuteBits: expected amplitude at 0b101, state: %v", v.Amps)
	}
}

func TestPermuteBitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		perm := rng.Perm(n)
		v := randomVector(n, rng)
		w := v.Clone()
		v.PermuteBits(perm)
		// Reference: reindex explicitly.
		ref := make([]complex128, len(w.Amps))
		for old := range w.Amps {
			nw := 0
			for p := 0; p < n; p++ {
				if old&(1<<p) != 0 {
					nw |= 1 << perm[p]
				}
			}
			ref[nw] = w.Amps[old]
		}
		for i := range ref {
			if ref[i] != v.Amps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPermuteBitsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	v := randomVector(6, rng)
	w := v.Clone()
	v.PermuteBits([]int{0, 1, 2, 3, 4, 5})
	if d := v.MaxDiff(w); d != 0 {
		t.Errorf("identity permutation changed state: %g", d)
	}
}

func TestReverseBits(t *testing.T) {
	v := New(3)
	v.Amps[0] = 0
	v.Amps[0b001] = 1
	v.ReverseBits()
	if v.Amplitude(0b100) != 1 {
		t.Errorf("ReverseBits: expected amplitude at 0b100")
	}
}

func TestPermuteBitsMatchesSwapChain(t *testing.T) {
	// The single-pass gather kernel and the transposition-chain reference
	// must agree exactly (both are pure relabelings — no arithmetic).
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(9)
		perm := rng.Perm(n)
		v := randomVector(n, rng)
		w := v.Clone()
		v.PermuteBits(perm)
		w.PermuteBitsSwapChain(perm)
		for i := range v.Amps {
			if v.Amps[i] != w.Amps[i] {
				t.Fatalf("trial %d n=%d perm=%v: kernels disagree at index %d", trial, n, perm, i)
			}
		}
	}
}

func TestPermuteBitsComposes(t *testing.T) {
	// PermuteBits(p2 ∘ p1) = PermuteBits(p1); PermuteBits(p2) — the layout
	// tracking in the distributed engine and the verify backend depends on
	// this composition law.
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(6)
		p1, p2 := rng.Perm(n), rng.Perm(n)
		comp := make([]int, n)
		for i := range comp {
			comp[i] = p2[p1[i]]
		}
		v := randomVector(n, rng)
		w := v.Clone()
		v.PermuteBits(p1)
		v.PermuteBits(p2)
		w.PermuteBits(comp)
		if d := v.MaxDiff(w); d != 0 {
			t.Errorf("trial %d: composition broken: %g", trial, d)
		}
	}
}

func TestGateCommutesWithPermutation(t *testing.T) {
	// Applying U to qubit q then permuting equals permuting then applying U
	// to perm[q] — the core invariant the distributed qubit remapping
	// relies on.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		n := 5
		perm := rng.Perm(n)
		q := rng.Intn(n)
		u := gate.RandomUnitary(1, rng)
		v := randomVector(n, rng)
		w := v.Clone()

		v.Apply(u, q)
		v.PermuteBits(perm)

		w.PermuteBits(perm)
		w.Apply(u, perm[q])

		if d := v.MaxDiff(w); d > 1e-10 {
			t.Errorf("trial %d: gate/permutation commutation broken: %g", trial, d)
		}
	}
}
