package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

// The fuzz targets feed arbitrary bytes to the two snapshot decoders. The
// oracle is simple: the decoders must never panic, and anything that is not
// a faithfully committed snapshot must come back as an error — recovery
// rejects corrupt checkpoints, it never loads them.

// seedShard builds a pristine shard file and its manifest for mutation.
func seedShard(tb testing.TB) (dir string, m *Manifest, blob []byte) {
	tb.Helper()
	dir = tb.TempDir()
	meta := Meta{PlanHash: "fuzz", N: 5, L: 3, Ranks: 1, NextStage: 1}
	amps := make([]complex128, 1<<meta.L)
	for i := range amps {
		amps[i] = complex(float64(i), -float64(i))
	}
	info, err := WriteShard(dir, meta, 0, amps)
	if err != nil {
		tb.Fatal(err)
	}
	m, err = Commit(dir, meta, []ShardInfo{info}, 2)
	if err != nil {
		tb.Fatal(err)
	}
	blob, err = os.ReadFile(filepath.Join(dir, info.File))
	if err != nil {
		tb.Fatal(err)
	}
	return dir, m, blob
}

//qlint:ignore atomicrename deliberately fabricates and corrupts on-disk checkpoint bytes to test that recovery rejects them; durability ordering is the property under attack, not in use
func FuzzShardDecode(f *testing.F) {
	_, m, blob := seedShard(f)
	f.Add(blob)
	f.Add(blob[:12])
	f.Add([]byte(shardMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, m.Shards[0].File), data, 0o644); err != nil {
			t.Skip()
		}
		dst := make([]complex128, m.Shards[0].Amps)
		err := ReadShard(dir, m, 0, dst)
		// The only bytes that may decode cleanly are the pristine shard.
		if err == nil && string(data) != string(blob) {
			t.Fatalf("mutated shard (%d bytes) decoded without error", len(data))
		}
	})
}

//qlint:ignore atomicrename deliberately fabricates and corrupts on-disk checkpoint bytes to test that recovery rejects them; durability ordering is the property under attack, not in use
func FuzzManifestDecode(f *testing.F) {
	dir, m, _ := seedShard(f)
	path := filepath.Join(dir, manifestName(m.NextStage))
	pristine, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pristine)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "manifest-000001.json")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		got, err := LoadManifest(p)
		if err == nil && string(data) != string(pristine) {
			// A different byte stream may still be a semantically identical
			// manifest (whitespace); accept only if it re-verifies.
			crc, cerr := manifestCRC(got)
			if cerr != nil || crc != got.CRC {
				t.Fatalf("mutated manifest decoded without error")
			}
		}
	})
}
