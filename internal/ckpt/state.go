package ckpt

import "fmt"

// SaveState commits a single-shard snapshot of a full in-memory state —
// the statevec backend's checkpoint path (the dist engine shards per rank,
// the out-of-core engine streams chunks; a single-node state is simply one
// shard covering everything). meta.Ranks must be 1 and len(amps) must be
// 2^meta.L.
func SaveState(dir string, meta Meta, amps []complex128, keep int) (*Manifest, error) {
	if meta.Ranks != 1 {
		return nil, fmt.Errorf("ckpt: SaveState wants Ranks=1, got %d", meta.Ranks)
	}
	if len(amps) != 1<<meta.L {
		return nil, fmt.Errorf("ckpt: SaveState got %d amps for l=%d", len(amps), meta.L)
	}
	info, err := WriteShard(dir, meta, 0, amps)
	if err != nil {
		return nil, err
	}
	return Commit(dir, meta, []ShardInfo{info}, keep)
}

// RestoreState loads the single shard of man into dst, verifying every
// checksum on the way.
func RestoreState(dir string, man *Manifest, dst []complex128) error {
	if man.Ranks != 1 || len(man.Shards) != 1 {
		return fmt.Errorf("ckpt: manifest has %d shards, RestoreState wants exactly 1: %w", len(man.Shards), ErrInvalid)
	}
	return ReadShard(dir, man, 0, dst)
}
