package ckpt

import (
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"qusim/internal/fsio"
)

// The package's file operations go through an injectable fsio.FS so the
// chaos layer can degrade the durability path (ENOSPC, torn writes,
// transient read errors) without touching this code. Production runs on
// fsio.OS; qlint's fsops analyzer flags any direct os call that would
// bypass the seam.

// fsPtr holds the installed FS (nil: the real OS). Process-global like
// the telemetry hook, for the same reason: checkpoint I/O happens from
// rank goroutines and free functions.
var fsPtr atomic.Pointer[fsio.FS]

// fsys returns the active file-ops implementation.
func fsys() fsio.FS {
	if p := fsPtr.Load(); p != nil {
		return *p
	}
	return fsio.OS{}
}

// SetFS installs the file-ops implementation the package runs on (nil
// restores the real OS) and returns the previous one, so tests can
// `old := ckpt.SetFS(...); t.Cleanup(func() { ckpt.SetFS(old) })`.
func SetFS(f fsio.FS) fsio.FS {
	old := fsys()
	if f == nil {
		fsPtr.Store(nil)
	} else {
		fsPtr.Store(&f)
	}
	return old
}

// pruneLogOnce rate-limits the prune-failure log line: the counter keeps
// the full count, the log keeps the first concrete path+error for a human.
var pruneLogOnce sync.Once

// removeCounted removes path, counting and logging (once) a failure
// instead of dropping it: a prune that cannot delete is not an error for
// the run — the checkpoint set just stays larger than Keep — but an
// operator watching ckpt.prune_failures can see the directory filling up.
func removeCounted(path string) bool {
	err := fsys().Remove(path)
	if err == nil {
		return true
	}
	telPruneFailed()
	pruneLogOnce.Do(func() {
		log.Printf("ckpt: pruning %s failed: %v (further failures count in ckpt.prune_failures only)", path, err)
	})
	return false
}

// PruneOldest removes the oldest committed checkpoint in dir when more
// than one exists — the emergency space-reclaim step the engines take
// when a snapshot write hits ENOSPC. The newest checkpoint (and any
// shards it shares with the victim) is never touched, so recoverability
// is preserved; unlike prune it never sweeps unreferenced shard files,
// which may be another rank's mid-protocol writes. Returns whether a
// checkpoint was removed.
func PruneOldest(dir string) bool {
	paths, _ := filepath.Glob(filepath.Join(dir, "manifest-*.json"))
	type aged struct {
		path string
		m    *Manifest
	}
	var all []aged
	for _, p := range paths {
		m, err := LoadManifest(p)
		if err != nil {
			continue
		}
		all = append(all, aged{p, m})
	}
	if len(all) < 2 {
		return false
	}
	sort.Slice(all, func(i, j int) bool { return all[i].m.NextStage < all[j].m.NextStage })
	victim := all[0]
	shared := map[string]bool{}
	for _, a := range all[1:] {
		for _, s := range a.m.Shards {
			shared[s.File] = true
		}
	}
	// Manifest first: once it is gone the checkpoint is uncommitted and
	// its shards are garbage even if deletion is interrupted.
	if !removeCounted(victim.path) {
		return false
	}
	for _, s := range victim.m.Shards {
		if !shared[s.File] {
			removeCounted(filepath.Join(dir, s.File))
		}
	}
	return true
}

// DiscardStage removes the shard files of an UNCOMMITTED checkpoint at
// the given stage cursor — the garbage a skipped ENOSPC commit leaves
// behind. If a manifest for the stage exists (an earlier process
// committed it and this run re-executed the stage), the shards are live
// checkpoint data and nothing is removed. Best-effort space reclamation;
// failures count like prune failures.
func DiscardStage(dir string, stage int) {
	if _, err := fsys().ReadFile(filepath.Join(dir, manifestName(stage))); err == nil {
		return
	}
	paths, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%06d-r*.ckpt", stage)))
	for _, p := range paths {
		removeCounted(p)
	}
}
