// Package ckpt implements crash-consistent, resumable snapshots of a
// simulation run — the checkpoint/restart layer a 0.5 PB, multi-hour run on
// thousands of nodes (Häner & Steiger, SC'17, Sec. 4) cannot realistically
// do without. A checkpoint is a set of per-rank shards (CRC32C-checksummed
// amplitude payloads with a self-describing header) plus a JSON manifest
// recording the plan fingerprint, the world geometry, and the stage cursor
// into the scheduled plan.
//
// Crash consistency comes from ordering, not locking:
//
//  1. every rank writes its shard to a temporary file, fsyncs, and
//     atomically renames it into place;
//  2. only after all shards are durable does the coordinator write the
//     manifest — again temp → fsync → rename.
//
// The manifest rename is the commit point. A crash at any earlier moment
// leaves either the previous checkpoint intact or orphaned shard/temp files
// that recovery ignores and the next commit prunes. Recovery walks the
// manifests newest-first and restores the first one whose manifest CRC,
// plan fingerprint, geometry, and every shard checksum all verify — a
// truncated, bit-flipped, or version-skewed snapshot is rejected, never
// loaded.
//
// The same shard format serves all three state backends: statevec (one
// shard covering the full vector), dist (one shard per rank), and oocvec
// (shards written and restored through a chunk stream so the full state is
// never held in memory).
package ckpt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"qusim/internal/fsio"
)

// Version is the on-disk format version. Readers reject any other value.
const Version = 1

// shardMagic opens every shard file.
const shardMagic = "QCK1"

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64 — the "xxhash/CRC32C" class of checksum the shard format
// needs for GB/s-range verification).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrInvalid wraps every rejection of an on-disk snapshot: bad magic,
// version skew, truncation, checksum mismatch, or metadata that does not
// match the run being resumed. Recovery treats ErrInvalid as "skip this
// snapshot", never as "load it anyway".
var ErrInvalid = errors.New("ckpt: invalid snapshot")

// Meta identifies the run a checkpoint belongs to and where in the plan it
// was taken. Everything is verified on restore.
type Meta struct {
	// PlanHash is schedule.Plan.Fingerprint() — covers the circuit, the
	// schedule, and the qubit layout/permutation maps.
	PlanHash string `json:"plan_hash"`
	N        int    `json:"n"`     // total qubits
	L        int    `json:"l"`     // local qubits per rank (or chunk)
	Ranks    int    `json:"ranks"` // shards per checkpoint
	// NextStage is the stage cursor: the first plan stage NOT yet executed
	// when the snapshot was taken. Resume re-executes ops with
	// Stage >= NextStage and nothing else.
	NextStage int `json:"next_stage"`
}

// matches reports whether two Metas describe the same run (the stage cursor
// is where they may differ).
func (m Meta) matches(o Meta) bool {
	return m.PlanHash == o.PlanHash && m.N == o.N && m.L == o.L && m.Ranks == o.Ranks
}

// ShardInfo is one rank's entry in a manifest.
type ShardInfo struct {
	Rank     int    `json:"rank"`
	File     string `json:"file"` // basename within the checkpoint dir
	Amps     int    `json:"amps"` // amplitudes in the payload
	Checksum uint32 `json:"crc32c"`
}

// Manifest is the commit record of one checkpoint.
type Manifest struct {
	Version int `json:"version"`
	Meta
	Shards []ShardInfo `json:"shards"`
	// CRC is CRC32C over the manifest's canonical JSON with this field
	// zeroed — a bit flip anywhere in the manifest is detected before any
	// shard is even opened.
	CRC uint32 `json:"manifest_crc32c"`
}

// Policy configures periodic checkpointing for an engine run.
type Policy struct {
	// Dir is the checkpoint directory (created if missing).
	Dir string
	// EveryStages checkpoints after every k completed plan stages
	// (default 1: every stage boundary).
	EveryStages int
	// Keep retains the newest k committed checkpoints, pruning older ones
	// after each commit (default 2 — the previous snapshot survives until
	// the next one is fully committed).
	Keep int
	// MaxRestarts bounds recovery attempts per run before the engine gives
	// up and surfaces the failure (default 8).
	MaxRestarts int
}

// Every returns the checkpoint cadence with the default applied.
func (p *Policy) Every() int {
	if p.EveryStages < 1 {
		return 1
	}
	return p.EveryStages
}

// KeepN returns the retention count with the default applied.
func (p *Policy) KeepN() int {
	if p.Keep < 1 {
		return 2
	}
	return p.Keep
}

// Restarts returns the restart budget with the default applied.
func (p *Policy) Restarts() int {
	if p.MaxRestarts < 1 {
		return 8
	}
	return p.MaxRestarts
}

// commitTemp is the single commit point of the durability protocol: it
// atomically renames an already-fsynced temp file to its final name
// inside dir, then fsyncs the directory so the rename itself survives
// power loss. Every file that becomes part of a checkpoint — shard or
// manifest — must go through here (enforced by qlint's atomicrename
// analyzer); the temp file is removed if the rename fails.
//
//qusim:commit-helper
func commitTemp(dir, tmp, final string) error {
	if err := fsys().Rename(tmp, filepath.Join(dir, final)); err != nil {
		fsys().Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

func shardName(stage, rank int) string {
	return fmt.Sprintf("shard-%06d-r%04d.ckpt", stage, rank)
}

func manifestName(stage int) string {
	return fmt.Sprintf("manifest-%06d.json", stage)
}

// shardHeader is the JSON header embedded in every shard file.
type shardHeader struct {
	Version int `json:"version"`
	Meta
	Rank int `json:"rank"`
	Amps int `json:"amps"`
}

const ampBytes = 16

// maxHeaderLen bounds the header-length field so a corrupt shard cannot
// make a reader allocate unbounded memory.
const maxHeaderLen = 1 << 20

// ShardWriter streams one rank's amplitudes into a shard file. The file
// becomes visible under its final name only on Close, after an fsync — a
// crash mid-write leaves a temp file recovery ignores.
type ShardWriter struct {
	f      fsio.File
	bw     *bufio.Writer
	crc    uint32
	dir    string
	final  string
	want   int // amplitudes promised at creation
	got    int // amplitudes written so far
	buf    []byte
	closed bool
	t0     time.Time // creation time, for write-throughput telemetry
}

// NewShardWriter creates the temp file and writes the header. amps is the
// total payload length Close will demand.
func NewShardWriter(dir string, meta Meta, rank, amps int) (*ShardWriter, error) {
	if rank < 0 || rank >= meta.Ranks {
		return nil, fmt.Errorf("ckpt: shard rank %d out of range for %d ranks", rank, meta.Ranks)
	}
	if err := fsys().MkdirAll(dir); err != nil {
		return nil, err
	}
	final := shardName(meta.NextStage, rank)
	f, err := fsys().CreateTemp(dir, ".tmp-"+final+"-*")
	if err != nil {
		return nil, err
	}
	sw := &ShardWriter{
		f: f, bw: bufio.NewWriterSize(f, 1<<16),
		dir: dir, final: final, want: amps,
		buf: make([]byte, 1<<16),
		t0:  time.Now(),
	}
	hdr, err := json.Marshal(shardHeader{Version: Version, Meta: meta, Rank: rank, Amps: amps})
	if err != nil {
		sw.Abort()
		return nil, err
	}
	var pre [12]byte
	copy(pre[:4], shardMagic)
	binary.LittleEndian.PutUint32(pre[4:8], Version)
	binary.LittleEndian.PutUint32(pre[8:12], uint32(len(hdr)))
	if err := sw.write(pre[:]); err != nil {
		sw.Abort()
		return nil, err
	}
	if err := sw.write(hdr); err != nil {
		sw.Abort()
		return nil, err
	}
	return sw, nil
}

func (sw *ShardWriter) write(b []byte) error {
	sw.crc = crc32.Update(sw.crc, castagnoli, b)
	_, err := sw.bw.Write(b)
	return err
}

// Write appends amplitudes to the payload.
func (sw *ShardWriter) Write(amps []complex128) error {
	sw.got += len(amps)
	if sw.got > sw.want {
		return fmt.Errorf("ckpt: shard overflows declared payload (%d > %d amps)", sw.got, sw.want)
	}
	for len(amps) > 0 {
		n := len(sw.buf) / ampBytes
		if n > len(amps) {
			n = len(amps)
		}
		putAmps(sw.buf[:n*ampBytes], amps[:n])
		if err := sw.write(sw.buf[:n*ampBytes]); err != nil {
			return err
		}
		amps = amps[n:]
	}
	return nil
}

// Close finalizes the shard: CRC trailer, flush, fsync, atomic rename. It
// fails (and removes the temp file) if fewer amplitudes were written than
// promised.
func (sw *ShardWriter) Close() (ShardInfo, error) {
	if sw.closed {
		return ShardInfo{}, fmt.Errorf("ckpt: shard writer already closed")
	}
	if sw.got != sw.want {
		err := fmt.Errorf("ckpt: shard has %d of %d declared amps", sw.got, sw.want)
		sw.Abort()
		return ShardInfo{}, err
	}
	sum := sw.crc
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	if _, err := sw.bw.Write(tr[:]); err != nil {
		sw.Abort()
		return ShardInfo{}, err
	}
	if err := sw.bw.Flush(); err != nil {
		sw.Abort()
		return ShardInfo{}, err
	}
	if err := sw.f.Sync(); err != nil {
		sw.Abort()
		return ShardInfo{}, err
	}
	tmp := sw.f.Name()
	if err := sw.f.Close(); err != nil {
		fsys().Remove(tmp)
		sw.closed = true
		return ShardInfo{}, err
	}
	sw.closed = true
	if err := commitTemp(sw.dir, tmp, sw.final); err != nil {
		return ShardInfo{}, err
	}
	telWriteDone(sw.t0, sw.want)
	return ShardInfo{Rank: rankFromName(sw.final), File: sw.final, Amps: sw.want, Checksum: sum}, nil
}

// Abort discards the temp file. Safe to call after a failed Close.
func (sw *ShardWriter) Abort() {
	if sw.closed {
		return
	}
	sw.closed = true
	name := sw.f.Name()
	sw.f.Close()
	fsys().Remove(name)
}

func rankFromName(name string) int {
	var stage, rank int
	if _, err := fmt.Sscanf(name, "shard-%06d-r%04d.ckpt", &stage, &rank); err != nil {
		return -1
	}
	return rank
}

// WriteShard writes a full in-memory amplitude slice as one shard.
func WriteShard(dir string, meta Meta, rank int, amps []complex128) (ShardInfo, error) {
	sw, err := NewShardWriter(dir, meta, rank, len(amps))
	if err != nil {
		return ShardInfo{}, err
	}
	if err := sw.Write(amps); err != nil {
		sw.Abort()
		return ShardInfo{}, err
	}
	return sw.Close()
}

// ShardReader streams a shard's payload back out, verifying the trailer
// CRC (and the manifest's recorded checksum) on Close. The header is
// validated against the manifest before any payload is handed out.
type ShardReader struct {
	f    fsio.File
	br   *bufio.Reader
	crc  uint32
	info ShardInfo
	left int // amplitudes not yet read
	buf  []byte
	t0   time.Time // open time, for read-throughput telemetry
}

// OpenShard opens rank's shard of the manifest's checkpoint and validates
// magic, version, and header metadata. All failures wrap ErrInvalid.
func OpenShard(dir string, m *Manifest, rank int) (*ShardReader, error) {
	if rank < 0 || rank >= len(m.Shards) {
		return nil, fmt.Errorf("%w: no shard for rank %d", ErrInvalid, rank)
	}
	info := m.Shards[rank]
	f, err := fsys().Open(filepath.Join(dir, info.File))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	sr := &ShardReader{
		f: f, br: bufio.NewReaderSize(f, 1<<16),
		info: info, left: info.Amps, buf: make([]byte, 1<<16),
		t0: time.Now(),
	}
	var pre [12]byte
	if err := sr.read(pre[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: shard preamble: %w", ErrInvalid, err)
	}
	if string(pre[:4]) != shardMagic {
		f.Close()
		return nil, fmt.Errorf("%w: bad shard magic %q", ErrInvalid, pre[:4])
	}
	if v := binary.LittleEndian.Uint32(pre[4:8]); v != Version {
		f.Close()
		return nil, fmt.Errorf("%w: shard version %d, want %d", ErrInvalid, v, Version)
	}
	hlen := binary.LittleEndian.Uint32(pre[8:12])
	if hlen == 0 || hlen > maxHeaderLen {
		f.Close()
		return nil, fmt.Errorf("%w: implausible shard header length %d", ErrInvalid, hlen)
	}
	hdrBytes := make([]byte, hlen)
	if err := sr.read(hdrBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: shard header: %w", ErrInvalid, err)
	}
	var hdr shardHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: shard header: %w", ErrInvalid, err)
	}
	switch {
	case hdr.Version != Version:
		err = fmt.Errorf("%w: shard header version %d, want %d", ErrInvalid, hdr.Version, Version)
	case !hdr.Meta.matches(m.Meta) || hdr.NextStage != m.NextStage:
		err = fmt.Errorf("%w: shard metadata does not match manifest", ErrInvalid)
	case hdr.Rank != rank:
		err = fmt.Errorf("%w: shard is for rank %d, want %d", ErrInvalid, hdr.Rank, rank)
	case hdr.Amps != info.Amps:
		err = fmt.Errorf("%w: shard declares %d amps, manifest %d", ErrInvalid, hdr.Amps, info.Amps)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return sr, nil
}

func (sr *ShardReader) read(b []byte) error {
	if _, err := io.ReadFull(sr.br, b); err != nil {
		return err
	}
	sr.crc = crc32.Update(sr.crc, castagnoli, b)
	return nil
}

// Amps returns the payload length in amplitudes.
func (sr *ShardReader) Amps() int { return sr.info.Amps }

// Read fills dst with the next len(dst) payload amplitudes.
func (sr *ShardReader) Read(dst []complex128) error {
	if len(dst) > sr.left {
		return fmt.Errorf("%w: shard payload truncated (%d amps left, %d requested)", ErrInvalid, sr.left, len(dst))
	}
	sr.left -= len(dst)
	for len(dst) > 0 {
		n := len(sr.buf) / ampBytes
		if n > len(dst) {
			n = len(dst)
		}
		if err := sr.read(sr.buf[:n*ampBytes]); err != nil {
			return fmt.Errorf("%w: shard payload: %w", ErrInvalid, err)
		}
		getAmps(dst[:n], sr.buf[:n*ampBytes])
		dst = dst[n:]
	}
	return nil
}

// Close verifies the CRC trailer against both the file contents and the
// manifest's recorded checksum. The whole payload must have been consumed.
func (sr *ShardReader) Close() error {
	defer sr.f.Close()
	if sr.left != 0 {
		return fmt.Errorf("%w: %d payload amps unread at close", ErrInvalid, sr.left)
	}
	sum := sr.crc
	var tr [4]byte
	if _, err := io.ReadFull(sr.br, tr[:]); err != nil {
		return fmt.Errorf("%w: shard trailer: %w", ErrInvalid, err)
	}
	stored := binary.LittleEndian.Uint32(tr[:])
	if stored != sum {
		return fmt.Errorf("%w: shard checksum mismatch (stored %08x, computed %08x)", ErrInvalid, stored, sum)
	}
	if sum != sr.info.Checksum {
		return fmt.Errorf("%w: shard checksum %08x does not match manifest %08x", ErrInvalid, sum, sr.info.Checksum)
	}
	if _, err := sr.br.ReadByte(); err == nil {
		return fmt.Errorf("%w: trailing garbage after shard trailer", ErrInvalid)
	}
	telReadDone(sr.t0, sr.info.Amps)
	return nil
}

// ReadShard restores rank's full shard payload into dst (which must have
// exactly the shard's length).
func ReadShard(dir string, m *Manifest, rank int, dst []complex128) error {
	sr, err := OpenShard(dir, m, rank)
	if err != nil {
		return err
	}
	if sr.Amps() != len(dst) {
		sr.f.Close()
		return fmt.Errorf("%w: shard has %d amps, destination %d", ErrInvalid, sr.Amps(), len(dst))
	}
	if err := sr.Read(dst); err != nil {
		sr.f.Close()
		return err
	}
	return sr.Close()
}

// VerifyShard streams rank's shard end to end, checking header, payload
// CRC, and manifest checksum without keeping the data.
func VerifyShard(dir string, m *Manifest, rank int) error {
	sr, err := OpenShard(dir, m, rank)
	if err != nil {
		return err
	}
	scratch := make([]complex128, 1<<12)
	for left := sr.Amps(); left > 0; {
		n := len(scratch)
		if n > left {
			n = left
		}
		if err := sr.Read(scratch[:n]); err != nil {
			sr.f.Close()
			return err
		}
		left -= n
	}
	return sr.Close()
}

// Commit writes the manifest — the checkpoint's commit point — after all
// shards are durable, then prunes checkpoints older than keep. shards must
// be ordered by rank and complete.
func Commit(dir string, meta Meta, shards []ShardInfo, keep int) (*Manifest, error) {
	t0 := time.Now()
	if len(shards) != meta.Ranks {
		return nil, fmt.Errorf("ckpt: commit with %d shards, want %d", len(shards), meta.Ranks)
	}
	for r, s := range shards {
		if s.Rank != r {
			return nil, fmt.Errorf("ckpt: shard %d carries rank %d", r, s.Rank)
		}
	}
	m := &Manifest{Version: Version, Meta: meta, Shards: shards}
	crc, err := manifestCRC(m)
	if err != nil {
		return nil, err
	}
	m.CRC = crc
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	f, err := fsys().CreateTemp(dir, ".tmp-manifest-*")
	if err != nil {
		return nil, err
	}
	tmp := f.Name()
	if _, err := f.Write(append(blob, '\n')); err != nil {
		f.Close()
		fsys().Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys().Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		fsys().Remove(tmp)
		return nil, err
	}
	if err := commitTemp(dir, tmp, manifestName(meta.NextStage)); err != nil {
		return nil, err
	}
	if keep < 1 {
		keep = 2
	}
	prune(dir, keep)
	telCommitDone(t0)
	return m, nil
}

// manifestCRC computes the CRC over the canonical JSON with CRC zeroed.
func manifestCRC(m *Manifest) (uint32, error) {
	c := *m
	c.CRC = 0
	c.Shards = append([]ShardInfo(nil), m.Shards...)
	blob, err := json.Marshal(&c)
	if err != nil {
		return 0, err
	}
	return crc32.Checksum(blob, castagnoli), nil
}

// LoadManifest reads and validates one manifest file (CRC, version, field
// sanity). Shards are NOT verified — see VerifyShard / FindRestorable.
func LoadManifest(path string) (*Manifest, error) {
	blob, err := fsys().ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %w", ErrInvalid, err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("%w: manifest version %d, want %d", ErrInvalid, m.Version, Version)
	}
	crc, err := manifestCRC(&m)
	if err != nil {
		return nil, fmt.Errorf("%w: manifest: %w", ErrInvalid, err)
	}
	if crc != m.CRC {
		return nil, fmt.Errorf("%w: manifest checksum mismatch (stored %08x, computed %08x)", ErrInvalid, m.CRC, crc)
	}
	if m.Ranks < 1 || len(m.Shards) != m.Ranks || m.N < 1 || m.L < 1 || m.L > m.N || m.NextStage < 0 {
		return nil, fmt.Errorf("%w: manifest geometry is inconsistent", ErrInvalid)
	}
	for r, s := range m.Shards {
		if s.Rank != r || s.Amps < 1 || strings.Contains(s.File, "/") || strings.Contains(s.File, "..") {
			return nil, fmt.Errorf("%w: manifest shard entry %d is inconsistent", ErrInvalid, r)
		}
	}
	return &m, nil
}

// FindRestorable walks dir's manifests newest-first (by stage cursor) and
// returns the first checkpoint that fully verifies — manifest CRC, matching
// plan fingerprint and geometry, and every shard checksum. It returns
// (nil, nil) when no restorable checkpoint exists; the caller restarts from
// scratch. want.NextStage is ignored.
func FindRestorable(dir string, want Meta) (*Manifest, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "manifest-*.json"))
	if err != nil || len(paths) == 0 {
		return nil, nil
	}
	type cand struct {
		path string
		m    *Manifest
	}
	var cands []cand
	for _, p := range paths {
		m, err := LoadManifest(p)
		if err != nil || !m.Meta.matches(want) {
			continue
		}
		cands = append(cands, cand{p, m})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].m.NextStage > cands[j].m.NextStage })
	for _, c := range cands {
		ok := true
		for r := 0; r < c.m.Ranks; r++ {
			if err := VerifyShard(dir, c.m, r); err != nil {
				ok = false
				break
			}
		}
		if ok {
			return c.m, nil
		}
	}
	return nil, nil
}

// prune removes all but the newest keep committed checkpoints, plus any
// stray temp files from interrupted writes. Shards not referenced by a
// surviving manifest are deleted. Removal failures do not stop the sweep;
// they count in ckpt.prune_failures and log once (see removeCounted).
func prune(dir string, keep int) {
	paths, _ := filepath.Glob(filepath.Join(dir, "manifest-*.json"))
	type aged struct {
		path  string
		stage int
		m     *Manifest
	}
	var all []aged
	for _, p := range paths {
		m, err := LoadManifest(p)
		if err != nil {
			// Unreadable manifest: not restorable, reclaim it.
			removeCounted(p)
			continue
		}
		all = append(all, aged{p, m.NextStage, m})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].stage > all[j].stage })
	kept := map[string]bool{}
	for i, a := range all {
		if i < keep {
			for _, s := range a.m.Shards {
				kept[s.File] = true
			}
			continue
		}
		// Manifest first: once it is gone the checkpoint is uncommitted and
		// its shards are garbage even if deletion is interrupted here.
		if !removeCounted(a.path) {
			// The manifest survived, so the checkpoint is still committed:
			// keep its shards, deleting them would corrupt it.
			for _, s := range a.m.Shards {
				kept[s.File] = true
			}
			continue
		}
		for _, s := range a.m.Shards {
			if !kept[s.File] {
				removeCounted(filepath.Join(dir, s.File))
			}
		}
	}
	strays, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	for _, s := range strays {
		removeCounted(s)
	}
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Best-effort: some platforms/filesystems reject directory fsync.
func syncDir(dir string) {
	fsys().SyncDir(dir)
}

// putAmps encodes amplitudes little-endian into b (len(b) == 16·len(amps)).
func putAmps(b []byte, amps []complex128) {
	for i, a := range amps {
		binary.LittleEndian.PutUint64(b[16*i:], math.Float64bits(real(a)))
		binary.LittleEndian.PutUint64(b[16*i+8:], math.Float64bits(imag(a)))
	}
}

// getAmps decodes amplitudes from b into amps.
func getAmps(amps []complex128, b []byte) {
	for i := range amps {
		re := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:]))
		amps[i] = complex(re, im)
	}
}
