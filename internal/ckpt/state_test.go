package ckpt

import "testing"

func TestSaveRestoreStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{PlanHash: "plan-a", N: 6, L: 6, Ranks: 1, NextStage: 3}
	amps := make([]complex128, 1<<6)
	for i := range amps {
		amps[i] = complex(float64(i), -float64(i))
	}
	if _, err := SaveState(dir, meta, amps, 2); err != nil {
		t.Fatal(err)
	}

	man, err := FindRestorable(dir, Meta{PlanHash: "plan-a", N: 6, L: 6, Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if man == nil {
		t.Fatal("saved state not found")
	}
	if man.NextStage != 3 {
		t.Fatalf("stage cursor %d, want 3", man.NextStage)
	}
	dst := make([]complex128, 1<<6)
	if err := RestoreState(dir, man, dst); err != nil {
		t.Fatal(err)
	}
	for i := range amps {
		if amps[i] != dst[i] {
			t.Fatalf("amplitude %d differs: %v vs %v", i, amps[i], dst[i])
		}
	}
}

func TestSaveStateRejectsBadShape(t *testing.T) {
	dir := t.TempDir()
	amps := make([]complex128, 1<<6)
	if _, err := SaveState(dir, Meta{N: 6, L: 6, Ranks: 2}, amps, 2); err == nil {
		t.Error("SaveState accepted Ranks=2")
	}
	if _, err := SaveState(dir, Meta{N: 6, L: 5, Ranks: 1}, amps, 2); err == nil {
		t.Error("SaveState accepted a length/L mismatch")
	}
}
