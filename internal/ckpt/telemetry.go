package ckpt

import (
	"sync/atomic"
	"time"

	"qusim/internal/telemetry"
)

// tel is the package's telemetry sink. Checkpoint I/O happens from rank
// goroutines and the oocvec chunk stream, both of which reach this package
// through free functions, so the hook is process-global like par's: one
// atomic pointer read per shard open/close when disarmed.
var tel atomic.Pointer[telemetry.Telemetry]

// SetTelemetry arms (or, with nil / telemetry.Disabled, disarms) shard
// write/restore throughput metrics: byte and shard counters plus duration
// histograms for writes, reads (restore and verification walks both count
// — FindRestorable streams every shard it audits) and manifest commits.
func SetTelemetry(t *telemetry.Telemetry) {
	if !t.Enabled() {
		tel.Store(nil)
		return
	}
	tel.Store(t)
}

// telWriteDone records one completed shard write of n payload amplitudes
// that took the duration since t0.
func telWriteDone(t0 time.Time, n int) {
	t := tel.Load()
	if t == nil {
		return
	}
	t.Counter("ckpt.shard_writes").Inc()
	t.Counter("ckpt.shard_write_bytes").Add(int64(n) * ampBytes)
	t.Histogram("ckpt.shard_write_ns").ObserveSince(t0)
}

// telReadDone records one completed shard read (restore or verify).
func telReadDone(t0 time.Time, n int) {
	t := tel.Load()
	if t == nil {
		return
	}
	t.Counter("ckpt.shard_reads").Inc()
	t.Counter("ckpt.shard_read_bytes").Add(int64(n) * ampBytes)
	t.Histogram("ckpt.shard_read_ns").ObserveSince(t0)
}

// telCommitDone records one committed manifest.
func telCommitDone(t0 time.Time) {
	t := tel.Load()
	if t == nil {
		return
	}
	t.Counter("ckpt.commits").Inc()
	t.Histogram("ckpt.commit_ns").ObserveSince(t0)
}

// telPruneFailed counts one failed snapshot-file removal (prune,
// PruneOldest or DiscardStage). The run is unaffected — retention just
// exceeds the policy — but a growing counter means the directory is
// filling up with undeletable snapshots.
func telPruneFailed() {
	t := tel.Load()
	if t == nil {
		return
	}
	t.Counter("ckpt.prune_failures").Inc()
}
