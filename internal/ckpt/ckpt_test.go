package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testMeta(stage int) Meta {
	return Meta{PlanHash: "abc123", N: 6, L: 4, Ranks: 4, NextStage: stage}
}

func testAmps(rank, n int) []complex128 {
	rng := rand.New(rand.NewSource(int64(rank) + 99))
	amps := make([]complex128, n)
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return amps
}

// writeCheckpoint commits a full 4-rank checkpoint at the given stage and
// returns the manifest.
func writeCheckpoint(t *testing.T, dir string, stage int) *Manifest {
	t.Helper()
	meta := testMeta(stage)
	shards := make([]ShardInfo, meta.Ranks)
	for r := 0; r < meta.Ranks; r++ {
		info, err := WriteShard(dir, meta, r, testAmps(r, 1<<meta.L))
		if err != nil {
			t.Fatalf("WriteShard rank %d: %v", r, err)
		}
		shards[r] = info
	}
	m, err := Commit(dir, meta, shards, 2)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return m
}

func TestShardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := writeCheckpoint(t, dir, 3)
	for r := 0; r < m.Ranks; r++ {
		want := testAmps(r, 1<<m.L)
		got := make([]complex128, len(want))
		if err := ReadShard(dir, m, r, got); err != nil {
			t.Fatalf("ReadShard rank %d: %v", r, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d amp %d: got %v want %v", r, i, got[i], want[i])
			}
		}
	}
}

func TestCommitIsTheCommitPoint(t *testing.T) {
	// Shards without a manifest are not a checkpoint: FindRestorable must
	// ignore them.
	dir := t.TempDir()
	meta := testMeta(1)
	for r := 0; r < meta.Ranks; r++ {
		if _, err := WriteShard(dir, meta, r, testAmps(r, 1<<meta.L)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := FindRestorable(dir, meta)
	if err != nil || m != nil {
		t.Fatalf("uncommitted shards reported restorable: %v, %v", m, err)
	}
}

func TestFindRestorablePicksNewest(t *testing.T) {
	dir := t.TempDir()
	writeCheckpoint(t, dir, 1)
	writeCheckpoint(t, dir, 4)
	m, err := FindRestorable(dir, testMeta(0))
	if err != nil || m == nil {
		t.Fatalf("FindRestorable: %v, %v", m, err)
	}
	if m.NextStage != 4 {
		t.Fatalf("restored stage %d, want 4", m.NextStage)
	}
}

func TestFindRestorableFallsBackPastCorruptShard(t *testing.T) {
	dir := t.TempDir()
	writeCheckpoint(t, dir, 1)
	m4 := writeCheckpoint(t, dir, 4)
	// Flip one payload bit in a stage-4 shard: recovery must fall back to
	// the stage-1 checkpoint rather than load corrupt data.
	corruptFile(t, filepath.Join(dir, m4.Shards[2].File), 60)
	m, err := FindRestorable(dir, testMeta(0))
	if err != nil || m == nil {
		t.Fatalf("FindRestorable: %v, %v", m, err)
	}
	if m.NextStage != 1 {
		t.Fatalf("restored stage %d, want fallback to 1", m.NextStage)
	}
}

func TestFindRestorableRejectsForeignPlan(t *testing.T) {
	dir := t.TempDir()
	writeCheckpoint(t, dir, 2)
	want := testMeta(0)
	want.PlanHash = "a-different-circuit"
	m, err := FindRestorable(dir, want)
	if err != nil || m != nil {
		t.Fatalf("checkpoint of a different plan reported restorable: %v, %v", m, err)
	}
}

func TestCommitPrunesOldCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for _, stage := range []int{1, 2, 3, 4} {
		writeCheckpoint(t, dir, stage)
	}
	manifests, _ := filepath.Glob(filepath.Join(dir, "manifest-*.json"))
	if len(manifests) != 2 {
		t.Fatalf("%d manifests kept, want 2: %v", len(manifests), manifests)
	}
	shards, _ := filepath.Glob(filepath.Join(dir, "shard-*.ckpt"))
	if len(shards) != 8 {
		t.Fatalf("%d shards kept, want 8: %v", len(shards), shards)
	}
	strays, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(strays) != 0 {
		t.Fatalf("temp files survived pruning: %v", strays)
	}
}

func TestShardWriterLengthEnforced(t *testing.T) {
	dir := t.TempDir()
	meta := testMeta(0)
	sw, err := NewShardWriter(dir, meta, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(make([]complex128, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Close(); err == nil {
		t.Fatal("short shard committed")
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 0 {
		t.Fatalf("failed shard left files behind: %v", files)
	}
	sw, err = NewShardWriter(dir, meta, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(make([]complex128, 8)); err == nil {
		t.Fatal("overlong shard accepted")
	}
	sw.Abort()
}

// corruptFile flips one bit at the given byte offset (from the end if
// negative).
//
//qlint:ignore atomicrename deliberately fabricates and corrupts on-disk checkpoint bytes to test that recovery rejects them; durability ordering is the property under attack, not in use
func corruptFile(t *testing.T, path string, off int) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off = len(blob) + off
	}
	blob[off] ^= 0x10
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// --- satellite: manifest/shard decoding vs truncated, bit-flipped and
// version-skewed files. Recovery must reject corrupt snapshots, never load
// them. ---------------------------------------------------------------------

//qlint:ignore atomicrename deliberately fabricates and corrupts on-disk checkpoint bytes to test that recovery rejects them; durability ordering is the property under attack, not in use
func TestShardDecodeRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	m := writeCheckpoint(t, dir, 2)
	path := filepath.Join(dir, m.Shards[1].File)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	read := func() error {
		dst := make([]complex128, m.Shards[1].Amps)
		return ReadShard(dir, m, 1, dst)
	}

	cases := []struct {
		name    string
		mutate  func()
		wantSub string
	}{
		{"magic", func() { corruptFile(t, path, 0) }, "magic"},
		{"preamble version", func() { corruptFile(t, path, 4) }, "version"},
		{"header length", func() { corruptFile(t, path, 8) }, ""},
		{"header body", func() { corruptFile(t, path, 14) }, ""},
		{"payload bit flip", func() { corruptFile(t, path, len(pristine)/2) }, "checksum"},
		{"trailer bit flip", func() { corruptFile(t, path, -2) }, "checksum"},
		{"truncated mid-payload", func() { os.WriteFile(path, pristine[:len(pristine)/2], 0o644) }, ""},
		{"truncated trailer", func() { os.WriteFile(path, pristine[:len(pristine)-3], 0o644) }, "trailer"},
		{"empty file", func() { os.WriteFile(path, nil, 0o644) }, ""},
		{"trailing garbage", func() { os.WriteFile(path, append(append([]byte{}, pristine...), 0xFF), 0o644) }, "garbage"},
		{"missing file", func() { os.Remove(path) }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			restore()
			if err := read(); err != nil {
				t.Fatalf("pristine shard rejected: %v", err)
			}
			tc.mutate()
			err := read()
			if err == nil {
				t.Fatal("corrupt shard loaded without error")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("corruption error does not wrap ErrInvalid: %v", err)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	restore()
}

//qlint:ignore atomicrename deliberately fabricates and corrupts on-disk checkpoint bytes to test that recovery rejects them; durability ordering is the property under attack, not in use
func TestShardDecodeRejectsVersionSkew(t *testing.T) {
	dir := t.TempDir()
	m := writeCheckpoint(t, dir, 2)
	path := filepath.Join(dir, m.Shards[0].File)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the preamble version and fix up the trailer CRC so ONLY the
	// version disagrees — skew must be rejected on its own, not via the
	// checksum.
	blob[4] = 2
	sum := crcOver(blob[:len(blob)-4])
	blob[len(blob)-4] = byte(sum)
	blob[len(blob)-3] = byte(sum >> 8)
	blob[len(blob)-2] = byte(sum >> 16)
	blob[len(blob)-1] = byte(sum >> 24)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, m.Shards[0].Amps)
	err = ReadShard(dir, m, 0, dst)
	if err == nil || !errors.Is(err, ErrInvalid) || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-skewed shard not rejected as such: %v", err)
	}
}

//qlint:ignore atomicrename deliberately fabricates and corrupts on-disk checkpoint bytes to test that recovery rejects them; durability ordering is the property under attack, not in use
func TestManifestDecodeRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	m := writeCheckpoint(t, dir, 5)
	path := filepath.Join(dir, fmt.Sprintf("manifest-%06d.json", m.NextStage))
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func() []byte
	}{
		{"bit flip", func() []byte { b := append([]byte{}, pristine...); b[len(b)/3] ^= 0x04; return b }},
		{"truncated", func() []byte { return pristine[:len(pristine)/2] }},
		{"empty", func() []byte { return nil }},
		{"version skew", func() []byte {
			return []byte(strings.Replace(string(pristine), `"version": 1`, `"version": 99`, 1))
		}},
		{"not json", func() []byte { return []byte("hello\n") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadManifest(path); err == nil {
				t.Fatal("corrupt manifest loaded without error")
			} else if !errors.Is(err, ErrInvalid) {
				t.Fatalf("corruption error does not wrap ErrInvalid: %v", err)
			}
			if got, err := FindRestorable(dir, testMeta(0)); err != nil || got != nil {
				t.Fatalf("corrupt manifest reported restorable: %v, %v", got, err)
			}
		})
	}
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err != nil {
		t.Fatalf("pristine manifest rejected: %v", err)
	}
}

//qlint:ignore atomicrename deliberately fabricates and corrupts on-disk checkpoint bytes to test that recovery rejects them; durability ordering is the property under attack, not in use
func TestManifestRejectsTamperedFields(t *testing.T) {
	// Field edits that keep valid JSON must still fail the manifest CRC.
	dir := t.TempDir()
	m := writeCheckpoint(t, dir, 5)
	path := filepath.Join(dir, fmt.Sprintf("manifest-%06d.json", m.NextStage))
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(pristine), `"next_stage": 5`, `"next_stage": 7`, 1)
	if tampered == string(pristine) {
		t.Fatal("tamper target not found in manifest JSON")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("tampered manifest accepted: %v", err)
	}
}

func crcOver(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}
