package ckpt

import (
	"testing"

	"qusim/internal/telemetry"
)

// TestTelemetryShardIO asserts the process-global hook records shard
// write/read throughput and manifest commits, and that disarming stops the
// counting.
func TestTelemetryShardIO(t *testing.T) {
	tel := telemetry.New()
	SetTelemetry(tel)
	t.Cleanup(func() { SetTelemetry(nil) })

	dir := t.TempDir()
	m := writeCheckpoint(t, dir, 1)
	amps := make([]complex128, 1<<m.L)
	for r := 0; r < m.Ranks; r++ {
		if err := ReadShard(dir, m, r, amps); err != nil {
			t.Fatal(err)
		}
	}

	wantBytes := int64(m.Ranks) * int64(len(amps)) * 16
	if got := tel.Counter("ckpt.shard_writes").Value(); got != int64(m.Ranks) {
		t.Errorf("shard_writes = %d, want %d", got, m.Ranks)
	}
	if got := tel.Counter("ckpt.shard_write_bytes").Value(); got != wantBytes {
		t.Errorf("shard_write_bytes = %d, want %d", got, wantBytes)
	}
	if got := tel.Counter("ckpt.shard_reads").Value(); got != int64(m.Ranks) {
		t.Errorf("shard_reads = %d, want %d", got, m.Ranks)
	}
	if got := tel.Counter("ckpt.shard_read_bytes").Value(); got != wantBytes {
		t.Errorf("shard_read_bytes = %d, want %d", got, wantBytes)
	}
	if got := tel.Counter("ckpt.commits").Value(); got != 1 {
		t.Errorf("commits = %d, want 1", got)
	}
	for _, metric := range []string{"ckpt.shard_write_ns", "ckpt.shard_read_ns", "ckpt.commit_ns"} {
		if tel.Histogram(metric).Count() == 0 {
			t.Errorf("%s has no observations", metric)
		}
	}

	// Disarmed, further I/O must not count.
	SetTelemetry(telemetry.Disabled)
	writeCheckpoint(t, dir, 2)
	if got := tel.Counter("ckpt.shard_writes").Value(); got != int64(m.Ranks) {
		t.Errorf("shard_writes moved to %d after disarm", got)
	}
}
