package ckpt

// Regression tests for the errwrap invariant (qlint's errwrap analyzer):
// ckpt used to flatten underlying fsio errors with %v while wrapping
// ErrInvalid, so a transient disk fault during restore was misclassified
// as a corrupt checkpoint — the recovery path would discard a perfectly
// good checkpoint instead of retrying the read. Since the %v→%w fix both
// classifications survive the wrap; these tests pin that.

import (
	"errors"
	"fmt"
	"testing"

	"qusim/internal/fsio"
)

// transientFS fails every read entry point with a transient fault, the
// way a chaos-injected stall or EINTR surfaces through the seam.
type transientFS struct {
	fsio.OS
}

func (transientFS) ReadFile(name string) ([]byte, error) {
	return nil, fmt.Errorf("injected read: %w", fsio.ErrTransient)
}

func (transientFS) Open(name string) (fsio.File, error) {
	return nil, fmt.Errorf("injected open: %w", fsio.ErrTransient)
}

func TestLoadManifestKeepsTransientClassification(t *testing.T) {
	old := SetFS(transientFS{})
	t.Cleanup(func() { SetFS(old) })

	_, err := LoadManifest("ckpt-000001.json")
	if err == nil {
		t.Fatal("LoadManifest succeeded against a failing FS")
	}
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("error lost its ErrInvalid wrap: %v", err)
	}
	if !fsio.IsTransient(err) {
		t.Errorf("transient read fault lost its classification through the ErrInvalid wrap: %v", err)
	}
}

func TestOpenShardKeepsTransientClassification(t *testing.T) {
	old := SetFS(transientFS{})
	t.Cleanup(func() { SetFS(old) })

	m := &Manifest{Shards: []ShardInfo{{Rank: 0, File: "shard-0"}}}
	_, err := OpenShard(t.TempDir(), m, 0)
	if err == nil {
		t.Fatal("OpenShard succeeded against a failing FS")
	}
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("error lost its ErrInvalid wrap: %v", err)
	}
	if !fsio.IsTransient(err) {
		t.Errorf("transient open fault lost its classification through the ErrInvalid wrap: %v", err)
	}
}
