package ckpt

import (
	"errors"
	"path/filepath"
	"testing"

	"qusim/internal/chaos"
	"qusim/internal/fsio"
	"qusim/internal/telemetry"
)

// brokenRemoveFS delegates to the real OS but refuses every Remove — the
// "undeletable snapshot" failure mode (EBUSY, permission drift, a stuck
// NFS handle) the prune-failure accounting exists for.
type brokenRemoveFS struct {
	fsio.OS
	attempts int
}

func (b *brokenRemoveFS) Remove(name string) error {
	b.attempts++
	return errors.New("injected: remove refused")
}

func TestPruneOldestRemovesOldestOnly(t *testing.T) {
	dir := t.TempDir()
	writeCheckpoint(t, dir, 1)
	writeCheckpoint(t, dir, 2)

	if !PruneOldest(dir) {
		t.Fatal("PruneOldest removed nothing with two checkpoints present")
	}
	m, err := FindRestorable(dir, testMeta(0))
	if err != nil {
		t.Fatalf("newest checkpoint lost by prune: %v", err)
	}
	if m.NextStage != 2 {
		t.Errorf("survivor is stage %d, want 2 (the newest)", m.NextStage)
	}
	if _, err := LoadManifest(filepath.Join(dir, manifestName(1))); err == nil {
		t.Error("oldest manifest survived PruneOldest")
	}

	// With a single checkpoint left there is nothing safe to reclaim.
	if PruneOldest(dir) {
		t.Error("PruneOldest removed the last remaining checkpoint")
	}
}

// TestPruneFailureCountedNotFatal pins the degradation contract: a prune
// that cannot delete leaves both checkpoints restorable, reports no error
// to the caller, and surfaces only as the ckpt.prune_failures counter.
func TestPruneFailureCountedNotFatal(t *testing.T) {
	dir := t.TempDir()
	writeCheckpoint(t, dir, 1)
	writeCheckpoint(t, dir, 2)

	tel := telemetry.New()
	SetTelemetry(tel)
	t.Cleanup(func() { SetTelemetry(nil) })
	fs := &brokenRemoveFS{}
	old := SetFS(fs)
	t.Cleanup(func() { SetFS(old) })

	if PruneOldest(dir) {
		t.Error("PruneOldest claimed success though every Remove failed")
	}
	if fs.attempts == 0 {
		t.Fatal("injected FS never reached — the scenario tested nothing")
	}
	if got := tel.Counter("ckpt.prune_failures").Value(); got == 0 {
		t.Error("ckpt.prune_failures did not count the failed removals")
	}
	for stage := 1; stage <= 2; stage++ {
		if _, err := LoadManifest(filepath.Join(dir, manifestName(stage))); err != nil {
			t.Errorf("stage %d no longer restorable after failed prune: %v", stage, err)
		}
	}
}

func TestDiscardStageSparesCommittedShards(t *testing.T) {
	dir := t.TempDir()
	m := writeCheckpoint(t, dir, 3)

	// The stage is committed: its shards are live checkpoint data, so
	// DiscardStage must be a no-op even though the glob matches them.
	DiscardStage(dir, 3)
	got := make([]complex128, 1<<m.L)
	for r := 0; r < m.Ranks; r++ {
		if err := ReadShard(dir, m, r, got); err != nil {
			t.Fatalf("DiscardStage destroyed committed shard for rank %d: %v", r, err)
		}
	}

	// An uncommitted stage (shards written, no manifest — what a skipped
	// ENOSPC commit leaves behind) is garbage and must be reclaimed.
	meta := testMeta(4)
	for r := 0; r < meta.Ranks; r++ {
		if _, err := WriteShard(dir, meta, r, testAmps(r, 1<<meta.L)); err != nil {
			t.Fatal(err)
		}
	}
	DiscardStage(dir, 4)
	strays, err := filepath.Glob(filepath.Join(dir, "shard-000004-r*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(strays) != 0 {
		t.Errorf("uncommitted stage-4 shards survived DiscardStage: %v", strays)
	}
}

// TestTornWriteNeverYieldsCorruptRestore sweeps a torn write over every
// write-family op of a checkpoint's commit protocol and demands the
// invariant the CRC layer exists for: whatever the tear hits — shard
// header, payload, manifest temp — FindRestorable either falls back to
// the intact older snapshot or (when the tear landed somewhere harmless
// like a CreateTemp, which tears nothing) restores a fully verified newer
// one. It must never return an error or a manifest whose shards fail
// verification, and at least one tear position must actually force the
// fallback.
func TestTornWriteNeverYieldsCorruptRestore(t *testing.T) {
	// Learn how many write-family ops one committed checkpoint costs.
	probeDir := t.TempDir()
	probe := chaos.NewFS(chaos.DiskFaults{}, nil)
	old := SetFS(probe)
	t.Cleanup(func() { SetFS(old) })
	writeCheckpoint(t, probeDir, 2)
	writeOps := int(probe.Stats().WriteOps)
	if writeOps == 0 {
		t.Fatal("probe counted no write ops — the seam is not wired")
	}

	fellBack := 0
	for k := 1; k <= writeOps; k++ {
		dir := t.TempDir()
		SetFS(fsio.OS{})
		writeCheckpoint(t, dir, 1)

		fs := chaos.NewFS(chaos.DiskFaults{TornWriteAt: k}, nil)
		SetFS(fs)
		writeCheckpoint(t, dir, 2)
		SetFS(fsio.OS{})

		m, err := FindRestorable(dir, testMeta(0))
		if err != nil {
			t.Fatalf("tear at write op %d left no restorable checkpoint: %v", k, err)
		}
		switch m.NextStage {
		case 1:
			fellBack++
		case 2:
			for r := 0; r < m.Ranks; r++ {
				if err := VerifyShard(dir, m, r); err != nil {
					t.Fatalf("tear at write op %d: stage 2 chosen but shard %d corrupt: %v", k, r, err)
				}
			}
		default:
			t.Fatalf("tear at write op %d restored unexpected stage %d", k, m.NextStage)
		}
	}
	if fellBack == 0 {
		t.Error("no tear position forced a fallback — the sweep exercised nothing")
	}
}

// TestCommitENOSPCSurfacesAsNoSpace pins the error classification the
// engines' degradation policy keys on: an injected ENOSPC anywhere in the
// shard/commit path must satisfy fsio.IsNoSpace after all the wrapping.
func TestCommitENOSPCSurfacesAsNoSpace(t *testing.T) {
	dir := t.TempDir()
	old := SetFS(chaos.NewFS(chaos.DiskFaults{NoSpaceAt: 1, NoSpaceRun: 1 << 20}, nil))
	t.Cleanup(func() { SetFS(old) })

	meta := testMeta(1)
	_, err := WriteShard(dir, meta, 0, testAmps(0, 1<<meta.L))
	if err == nil {
		t.Fatal("shard write succeeded on a full disk")
	}
	if !fsio.IsNoSpace(err) {
		t.Errorf("ENOSPC lost its classification through wrapping: %v", err)
	}
}
