package kernels

import "qusim/internal/par"

// Hand-unrolled single-precision kernels, one per k ∈ {1,…,5} — the same
// generated-kernel shapes as specialized.go with complex64 amplitudes.
// k > 5 falls back to the blocked Split kernel, matching the paper's
// kmax ≤ 5 cutoff (Table 1).
//
// Two deviations from the double-precision twins, both forced by how the
// Go compiler treats complex64: its arithmetic lowers to scalar
// pack/unpack sequences nearly an order of magnitude slower per byte than
// complex128, so every inner loop here works on split float32
// real/imaginary scalars and reassembles with complex() only at the
// store. And the k = 1–2 kernels walk the state in contiguous blocks
// (the 2^q0-amplitude runs between strides) through reslices instead of
// recomputing a bit-expanded index per group, which keeps the inner loop
// free of shifts/masks and lets the hardware prefetcher stream — this is
// where the halved memory traffic of Sec. 5's single-precision outlook
// actually turns into wall-clock speedup.

// applySpecializedF32 dispatches to the hand-unrolled kernel for k ≤ 5 and
// to the blocked Split kernel beyond.
//
//qusim:hot
func applySpecializedF32(amps, m []complex64, qs []int) {
	switch len(qs) {
	case 0:
		// 0-qubit "gate" is a global scalar.
		ScaleF32(amps, m[0])
	case 1:
		apply1F32(amps, m, qs[0])
	case 2:
		apply2F32(amps, m, qs[0], qs[1])
	case 3:
		apply3F32(amps, m, qs)
	case 4:
		apply4F32(amps, m, qs)
	case 5:
		apply5F32(amps, m, qs)
	default:
		applySplitF32(amps, m, qs)
	}
}

// apply1F32 applies a 1-qubit gate. The pair partners sit 2^q apart, so
// the state decomposes into blocks of 2·2^q amplitudes whose lower and
// upper halves are both contiguous; the two halves are walked as slice
// strands x and y with a shared index.
//
//qusim:hot
func apply1F32(amps, m []complex64, q int) {
	s := 1 << q
	m00r, m00i := real(m[0]), imag(m[0])
	m01r, m01i := real(m[1]), imag(m[1])
	m10r, m10i := real(m[2]), imag(m[2])
	m11r, m11i := real(m[3]), imag(m[3])
	if q < 3 {
		// Strands this short (1–4 amplitudes) cost more in reslicing than
		// they save; walk pairs directly with the bit-expanded index.
		mask := 1<<q - 1
		par.For(len(amps)>>1, grain(1), func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i0 := ((t &^ mask) << 1) | (t & mask)
				i1 := i0 | s
				a0, a1 := amps[i0], amps[i1]
				a0r, a0i := real(a0), imag(a0)
				a1r, a1i := real(a1), imag(a1)
				amps[i0] = complex(
					m00r*a0r-m00i*a0i+m01r*a1r-m01i*a1i,
					m00r*a0i+m00i*a0r+m01r*a1i+m01i*a1r)
				amps[i1] = complex(
					m10r*a0r-m10i*a0i+m11r*a1r-m11i*a1i,
					m10r*a0i+m10i*a0r+m11r*a1i+m11i*a1r)
			}
		})
		return
	}
	blocks := (len(amps) >> 1) >> q
	par.For(blocks, max(1, grain(1)>>q), func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			base := blk << (q + 1)
			x := amps[base : base+s : base+s]
			y := amps[base+s : base+2*s : base+2*s]
			for j := range x {
				a0, a1 := x[j], y[j]
				a0r, a0i := real(a0), imag(a0)
				a1r, a1i := real(a1), imag(a1)
				x[j] = complex(
					m00r*a0r-m00i*a0i+m01r*a1r-m01i*a1i,
					m00r*a0i+m00i*a0r+m01r*a1i+m01i*a1r)
				y[j] = complex(
					m10r*a0r-m10i*a0i+m11r*a1r-m11i*a1i,
					m10r*a0i+m10i*a0r+m11r*a1i+m11i*a1r)
			}
		}
	})
}

// apply2F32 applies a 2-qubit gate over contiguous runs: the four gate
// operands for consecutive base indices advance together through four
// slice strands of length 2^q0, so each block needs the bit-expansion
// only once.
//
//qusim:hot
func apply2F32(amps, m []complex64, q0, q1 int) {
	mask0 := 1<<q0 - 1
	mask1 := 1<<q1 - 1
	s0, s1 := 1<<q0, 1<<q1
	var mr, mi [16]float32
	for i, v := range m {
		mr[i], mi[i] = real(v), imag(v)
	}
	blocks := (len(amps) >> 2) >> q0
	par.For(blocks, max(1, grain(2)>>q0), func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			t := blk << q0
			b := ((t &^ mask0) << 1) | (t & mask0)
			b = ((b &^ mask1) << 1) | (b & mask1)
			x0 := amps[b : b+s0 : b+s0]
			x1 := amps[b+s0 : b+2*s0 : b+2*s0]
			x2 := amps[b+s1 : b+s1+s0 : b+s1+s0]
			x3 := amps[b+s1+s0 : b+s1+2*s0 : b+s1+2*s0]
			for j := range x0 {
				a0, a1, a2, a3 := x0[j], x1[j], x2[j], x3[j]
				a0r, a0i := real(a0), imag(a0)
				a1r, a1i := real(a1), imag(a1)
				a2r, a2i := real(a2), imag(a2)
				a3r, a3i := real(a3), imag(a3)
				x0[j] = complex(
					mr[0]*a0r-mi[0]*a0i+mr[1]*a1r-mi[1]*a1i+mr[2]*a2r-mi[2]*a2i+mr[3]*a3r-mi[3]*a3i,
					mr[0]*a0i+mi[0]*a0r+mr[1]*a1i+mi[1]*a1r+mr[2]*a2i+mi[2]*a2r+mr[3]*a3i+mi[3]*a3r)
				x1[j] = complex(
					mr[4]*a0r-mi[4]*a0i+mr[5]*a1r-mi[5]*a1i+mr[6]*a2r-mi[6]*a2i+mr[7]*a3r-mi[7]*a3i,
					mr[4]*a0i+mi[4]*a0r+mr[5]*a1i+mi[5]*a1r+mr[6]*a2i+mi[6]*a2r+mr[7]*a3i+mi[7]*a3r)
				x2[j] = complex(
					mr[8]*a0r-mi[8]*a0i+mr[9]*a1r-mi[9]*a1i+mr[10]*a2r-mi[10]*a2i+mr[11]*a3r-mi[11]*a3i,
					mr[8]*a0i+mi[8]*a0r+mr[9]*a1i+mi[9]*a1r+mr[10]*a2i+mi[10]*a2r+mr[11]*a3i+mi[11]*a3r)
				x3[j] = complex(
					mr[12]*a0r-mi[12]*a0i+mr[13]*a1r-mi[13]*a1i+mr[14]*a2r-mi[14]*a2i+mr[15]*a3r-mi[15]*a3i,
					mr[12]*a0i+mi[12]*a0r+mr[13]*a1i+mi[13]*a1r+mr[14]*a2i+mi[14]*a2r+mr[15]*a3i+mi[15]*a3r)
			}
		}
	})
}

// apply3F32 applies a 3-qubit gate with the 8 gathered amplitudes in split
// float32 stack arrays and the row update over the mr/mi operand tables.
//
//qusim:hot
func apply3F32(amps, m []complex64, qs []int) {
	mask0 := 1<<qs[0] - 1
	mask1 := 1<<qs[1] - 1
	mask2 := 1<<qs[2] - 1
	var offs [8]int
	copy(offs[:], offsets(qs))
	var mr, mi [64]float32
	for i, v := range m {
		mr[i], mi[i] = real(v), imag(v)
	}
	par.For(len(amps)>>3, grain(3), func(lo, hi int) {
		var ar, ai, tr, ti [8]float32
		for t := lo; t < hi; t++ {
			b := ((t &^ mask0) << 1) | (t & mask0)
			b = ((b &^ mask1) << 1) | (b & mask1)
			b = ((b &^ mask2) << 1) | (b & mask2)
			for x := 0; x < 8; x++ {
				v := amps[b+offs[x]]
				ar[x], ai[x] = real(v), imag(v)
			}
			for r := 0; r < 8; r++ {
				row := r << 3
				var or, oi float32
				for c := 0; c < 8; c += 4 {
					or += mr[row+c]*ar[c] - mi[row+c]*ai[c] +
						mr[row+c+1]*ar[c+1] - mi[row+c+1]*ai[c+1] +
						mr[row+c+2]*ar[c+2] - mi[row+c+2]*ai[c+2] +
						mr[row+c+3]*ar[c+3] - mi[row+c+3]*ai[c+3]
					oi += mr[row+c]*ai[c] + mi[row+c]*ar[c] +
						mr[row+c+1]*ai[c+1] + mi[row+c+1]*ar[c+1] +
						mr[row+c+2]*ai[c+2] + mi[row+c+2]*ar[c+2] +
						mr[row+c+3]*ai[c+3] + mi[row+c+3]*ar[c+3]
				}
				tr[r], ti[r] = or, oi
			}
			for x := 0; x < 8; x++ {
				amps[b+offs[x]] = complex(tr[x], ti[x])
			}
		}
	})
}

// apply4F32 applies a 4-qubit gate with the 16 gathered amplitudes in
// split float32 stack arrays.
//
//qusim:hot
func apply4F32(amps, m []complex64, qs []int) {
	mask0 := 1<<qs[0] - 1
	mask1 := 1<<qs[1] - 1
	mask2 := 1<<qs[2] - 1
	mask3 := 1<<qs[3] - 1
	var offs [16]int
	copy(offs[:], offsets(qs))
	mr := make([]float32, 256)
	mi := make([]float32, 256)
	for i, v := range m {
		mr[i], mi[i] = real(v), imag(v)
	}
	par.For(len(amps)>>4, grain(4), func(lo, hi int) {
		var ar, ai, tr, ti [16]float32
		for t := lo; t < hi; t++ {
			b := ((t &^ mask0) << 1) | (t & mask0)
			b = ((b &^ mask1) << 1) | (b & mask1)
			b = ((b &^ mask2) << 1) | (b & mask2)
			b = ((b &^ mask3) << 1) | (b & mask3)
			for x := 0; x < 16; x++ {
				v := amps[b+offs[x]]
				ar[x], ai[x] = real(v), imag(v)
			}
			for r := 0; r < 16; r++ {
				row := r << 4
				var or, oi float32
				for c := 0; c < 16; c += 4 {
					or += mr[row+c]*ar[c] - mi[row+c]*ai[c] +
						mr[row+c+1]*ar[c+1] - mi[row+c+1]*ai[c+1] +
						mr[row+c+2]*ar[c+2] - mi[row+c+2]*ai[c+2] +
						mr[row+c+3]*ar[c+3] - mi[row+c+3]*ai[c+3]
					oi += mr[row+c]*ai[c] + mi[row+c]*ar[c] +
						mr[row+c+1]*ai[c+1] + mi[row+c+1]*ar[c+1] +
						mr[row+c+2]*ai[c+2] + mi[row+c+2]*ar[c+2] +
						mr[row+c+3]*ai[c+3] + mi[row+c+3]*ar[c+3]
				}
				tr[r], ti[r] = or, oi
			}
			for x := 0; x < 16; x++ {
				amps[b+offs[x]] = complex(tr[x], ti[x])
			}
		}
	})
}

// apply5F32 applies a 5-qubit gate with the 32 gathered amplitudes in
// split float32 stack arrays.
//
//qusim:hot
func apply5F32(amps, m []complex64, qs []int) {
	var masks [5]int
	for j, q := range qs {
		masks[j] = 1<<q - 1
	}
	var offs [32]int
	copy(offs[:], offsets(qs))
	mr := make([]float32, 1024)
	mi := make([]float32, 1024)
	for i, v := range m {
		mr[i], mi[i] = real(v), imag(v)
	}
	par.For(len(amps)>>5, grain(5), func(lo, hi int) {
		var ar, ai, tr, ti [32]float32
		for t := lo; t < hi; t++ {
			b := t
			b = ((b &^ masks[0]) << 1) | (b & masks[0])
			b = ((b &^ masks[1]) << 1) | (b & masks[1])
			b = ((b &^ masks[2]) << 1) | (b & masks[2])
			b = ((b &^ masks[3]) << 1) | (b & masks[3])
			b = ((b &^ masks[4]) << 1) | (b & masks[4])
			for x := 0; x < 32; x++ {
				v := amps[b+offs[x]]
				ar[x], ai[x] = real(v), imag(v)
			}
			for r := 0; r < 32; r++ {
				row := r << 5
				var or, oi float32
				for c := 0; c < 32; c += 4 {
					or += mr[row+c]*ar[c] - mi[row+c]*ai[c] +
						mr[row+c+1]*ar[c+1] - mi[row+c+1]*ai[c+1] +
						mr[row+c+2]*ar[c+2] - mi[row+c+2]*ai[c+2] +
						mr[row+c+3]*ar[c+3] - mi[row+c+3]*ai[c+3]
					oi += mr[row+c]*ai[c] + mi[row+c]*ar[c] +
						mr[row+c+1]*ai[c+1] + mi[row+c+1]*ar[c+1] +
						mr[row+c+2]*ai[c+2] + mi[row+c+2]*ar[c+2] +
						mr[row+c+3]*ai[c+3] + mi[row+c+3]*ar[c+3]
				}
				tr[r], ti[r] = or, oi
			}
			for x := 0; x < 32; x++ {
				amps[b+offs[x]] = complex(tr[x], ti[x])
			}
		}
	})
}

// ApplyDiagonalF32 multiplies each amplitude by the diagonal entry selected
// by the bits of its index at positions qs — the single-precision twin of
// ApplyDiagonal (Sec. 3.5 gate specialization). Same run-blocked sweep as
// the double-precision kernel (one entry per contiguous 2^qs[0]-amplitude
// run, unit entries skipped), with the complex multiply on split float32
// scalars.
//
//qusim:hot
func ApplyDiagonalF32(amps []complex64, d []complex64, qs []int) {
	k := len(qs)
	if len(d) != 1<<k {
		panic("kernels: diagonal length mismatch")
	}
	if k == 0 {
		if d[0] != 1 {
			ScaleF32(amps, d[0])
		}
		return
	}
	q0 := qs[0]
	if q0 < diagRunMin && qs[k-1] < diagPeriodMax {
		applyDiagPeriodF32(amps, d, qs)
		return
	}
	runs := len(amps) >> q0
	par.For(runs, max(1, 4096>>q0), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			base := r << q0
			x := 0
			for j := 0; j < k; j++ {
				x |= (base >> qs[j] & 1) << j
			}
			dx := d[x]
			if dx == 1 {
				continue
			}
			blk := amps[base : base+1<<q0 : base+1<<q0]
			if dx == -1 { // CZ / Z-type entries: negate, no multiply
				for j := range blk {
					blk[j] = -blk[j]
				}
				continue
			}
			dxr, dxi := real(dx), imag(dx)
			for j := range blk {
				a := blk[j]
				ar, ai := real(a), imag(a)
				blk[j] = complex(ar*dxr-ai*dxi, ai*dxr+ar*dxi)
			}
		}
	})
}

// applyDiagPeriodF32 is the single-precision twin of applyDiagPeriod: the
// low-position diagonal sweep replaying compiled non-unit segments, with
// the multiply on split float32 scalars.
//
//qusim:hot
func applyDiagPeriodF32(amps []complex64, d []complex64, qs []int) {
	period := 1 << (qs[len(qs)-1] + 1)
	segs := diagSegments(d, qs, period)
	if len(segs) == 0 {
		return
	}
	blocks := len(amps) / period
	par.For(blocks, max(1, 8192/period), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			base := b * period
			for _, s := range segs {
				blk := amps[base+s.off : base+s.off+s.n : base+s.off+s.n]
				if s.dx == -1 {
					for j := range blk {
						blk[j] = -blk[j]
					}
					continue
				}
				dxr, dxi := real(s.dx), imag(s.dx)
				for j := range blk {
					a := blk[j]
					ar, ai := real(a), imag(a)
					blk[j] = complex(ar*dxr-ai*dxi, ai*dxr+ar*dxi)
				}
			}
		}
	})
}

// ScaleF32 multiplies every amplitude by s (global-phase absorption).
//
//qusim:hot
func ScaleF32(amps []complex64, s complex64) {
	sr, si := real(s), imag(s)
	par.For(len(amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := amps[i]
			ar, ai := real(a), imag(a)
			amps[i] = complex(ar*sr-ai*si, ai*sr+ar*si)
		}
	})
}
