package kernels

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// The persistent tuner cache: the (k, stride class, precision) → variant
// table written by Tune is machine-specific but stable across runs on the
// same machine, so re-deriving it on every process start (the paper's
// benchmarking feedback loop re-run from scratch) is wasted work. The cache
// is a small versioned JSON document keyed on the machine fingerprint —
// GOOS/GOARCH, the CPU model string, and NumCPU — and a stale or
// foreign-machine cache is simply ignored and re-tuned.

// tuneCacheVersion is bumped whenever the cache schema or the meaning of a
// recorded selection changes; older files are re-tuned, not migrated.
const tuneCacheVersion = 1

type tuneCacheEntry struct {
	K          int     `json:"k"`
	Stride     string  `json:"stride"` // "low" or "high"
	F32        bool    `json:"f32"`
	Variant    string  `json:"variant"`
	NsPerApply float64 `json:"ns_per_apply"`
	Best       bool    `json:"best"`
}

type tuneCacheFile struct {
	Version    int              `json:"version"`
	Key        string           `json:"key"`
	N          int              `json:"n"`
	Kmax       int              `json:"kmax"`
	Reps       int              `json:"reps"`
	SplitBlock int              `json:"split_block"`
	Entries    []tuneCacheEntry `json:"entries"`
}

// MachineKey fingerprints this machine for the tuner cache: a selection
// benchmarked on different hardware (or a different core count, which
// changes the par.For partitioning) must not be reused.
func MachineKey() string {
	return fmt.Sprintf("%s/%s/%s/ncpu=%d", runtime.GOOS, runtime.GOARCH, cpuModel(), runtime.NumCPU())
}

// cpuModel returns the CPU model string from /proc/cpuinfo, or "unknown"
// where that pseudo-file does not exist (non-Linux).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return "unknown"
}

// variantByName maps Variant.String() back to the enum for cache decoding.
func variantByName(name string) (Variant, bool) {
	for _, v := range Variants() {
		if v.String() == name {
			return v, true
		}
	}
	return Auto, false
}

func strideByName(name string) (StrideClass, bool) {
	switch name {
	case "low":
		return StrideLow, true
	case "high":
		return StrideHigh, true
	}
	return StrideLow, false
}

// LoadTuneCache reads path and, when it matches this machine, the current
// schema version and covers k = 1…kmax, installs the recorded selections
// (and Split block size) and returns the reconstructed TuneResult with
// ok = true. Any mismatch — missing file, foreign machine, old version,
// insufficient kmax, unknown variant name — returns ok = false and leaves
// the tuner state untouched; a decode error on an existing file is also
// reported so callers can surface corruption.
func LoadTuneCache(path string, kmax int) (TuneResult, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return TuneResult{}, false, nil
		}
		return TuneResult{}, false, err
	}
	var f tuneCacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return TuneResult{}, false, fmt.Errorf("kernels: tuner cache %s: %w", path, err)
	}
	if f.Version != tuneCacheVersion || f.Key != MachineKey() || f.Kmax < kmax {
		return TuneResult{}, false, nil
	}
	res := TuneResult{N: f.N}
	type sel struct {
		key selKey
		v   Variant
	}
	var sels []sel
	covered := map[int]bool{}
	for _, e := range f.Entries {
		v, ok := variantByName(e.Variant)
		if !ok {
			return TuneResult{}, false, nil
		}
		stride, ok := strideByName(e.Stride)
		if !ok {
			return TuneResult{}, false, nil
		}
		res.Timings = append(res.Timings, Timing{
			K: e.K, Stride: stride, F32: e.F32, Variant: v,
			NsPerApply: e.NsPerApply, Best: e.Best,
		})
		if e.Best {
			covered[e.K] = true
			sels = append(sels, sel{selKey{e.K, stride, e.F32}, v})
		}
	}
	for k := 1; k <= kmax; k++ {
		if !covered[k] {
			return TuneResult{}, false, nil
		}
	}
	// All entries validated — install atomically with respect to failures
	// above (a partially-applied foreign cache must be impossible).
	for _, s := range sels {
		SetSelectedFor(s.key.k, s.key.stride, s.key.f32, s.v)
	}
	if f.SplitBlock >= 1 {
		SetSplitBlock(f.SplitBlock)
	}
	return res, true, nil
}

// SaveTuneCache writes the tuner selections in res to path, atomically
// (write to a temp file in the same directory, then rename): a crash
// mid-write must leave either the old cache or none, never a torn JSON
// document that every later run fails to parse.
func SaveTuneCache(path string, kmax, reps int, res TuneResult) error {
	f := tuneCacheFile{
		Version:    tuneCacheVersion,
		Key:        MachineKey(),
		N:          res.N,
		Kmax:       kmax,
		Reps:       reps,
		SplitBlock: splitBlock,
	}
	for _, t := range res.Timings {
		f.Entries = append(f.Entries, tuneCacheEntry{
			K: t.K, Stride: t.Stride.String(), F32: t.F32,
			Variant: t.Variant.String(), NsPerApply: t.NsPerApply, Best: t.Best,
		})
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// TuneCached is Tune with the persistent cache in front: a warm cache for
// this machine installs its selections without running a single timing
// sweep (hit = true); a cold or stale cache triggers the full benchmark
// sweep and rewrites the cache. Cache I/O errors are returned alongside
// the (still valid) tuning result — a broken cache file must not take the
// tuner down with it.
func TuneCached(path string, kmax, n, reps int) (TuneResult, bool, error) {
	res, hit, err := LoadTuneCache(path, kmax)
	if hit {
		return res, true, nil
	}
	res = Tune(kmax, n, reps)
	if saveErr := SaveTuneCache(path, kmax, reps, res); saveErr != nil && err == nil {
		err = saveErr
	}
	return res, false, err
}
