package kernels

import (
	"math"
	"math/rand"
	"testing"

	"qusim/internal/gate"
)

// f32Tol bounds the deviation of a single-precision kernel from the
// double-precision dense reference on the small states used here: float32
// has ~7 decimal digits, and a handful of fused k≤5 updates stays well
// inside 1e-5.
const f32Tol = 1e-5

func toF32(amps []complex128) []complex64 {
	out := make([]complex64, len(amps))
	for i, a := range amps {
		out[i] = complex64(a)
	}
	return out
}

func maxDiffF32(a []complex64, b []complex128) float64 {
	var m float64
	for i := range a {
		d := complex128(a[i]) - b[i]
		if ad := math.Hypot(real(d), imag(d)); ad > m {
			m = ad
		}
	}
	return m
}

func TestF32VariantsMatchDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{6, 9} {
		for k := 1; k <= 5; k++ {
			for trial := 0; trial < 4; trial++ {
				u := gate.RandomUnitary(k, rng)
				u32 := ToComplex64(u.Data)
				qs := sortedSubset(n, k, rng)
				state := randomState(n, rng)
				want := denseApply(state, u, qs, n)
				for _, v := range Variants() {
					got := ApplyF32(v, toF32(state), u32, qs, nil)
					if d := maxDiffF32(got, want); d > f32Tol {
						t.Errorf("n=%d k=%d qs=%v variant=%s: max diff %g", n, k, qs, v, d)
					}
				}
			}
		}
	}
}

func TestF32GenericFallbackK6(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 8
	u := gate.RandomUnitary(6, rng)
	qs := sortedSubset(n, 6, rng)
	state := randomState(n, rng)
	want := denseApply(state, u, qs, n)
	for _, v := range Variants() {
		got := ApplyF32(v, toF32(state), ToComplex64(u.Data), qs, nil)
		if d := maxDiffF32(got, want); d > f32Tol {
			t.Errorf("k=6 variant=%s: max diff %g", v, d)
		}
	}
}

// TestF32HighStridePositions exercises the gather path past strideHighBit,
// where the index arithmetic differs most from the cache-local case.
func TestF32HighStridePositions(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 15 // positions 12..14 are StrideHigh
	state := randomState(n, rng)
	for _, qs := range [][]int{{13}, {0, 14}, {3, 12, 14}} {
		if StrideClassOf(qs) != StrideHigh {
			t.Fatalf("qs=%v: expected StrideHigh", qs)
		}
		u := gate.RandomUnitary(len(qs), rng)
		// The dense O(4^n) reference is infeasible at n=15; the
		// double-precision InPlace kernel (verified against it at small n)
		// serves as the oracle here.
		want := make([]complex128, len(state))
		copy(want, state)
		Apply(InPlace, want, u.Data, qs, nil)
		for _, v := range Variants() {
			got := ApplyF32(v, toF32(state), ToComplex64(u.Data), qs, nil)
			if d := maxDiffF32(got, want); d > f32Tol {
				t.Errorf("qs=%v variant=%s: max diff %g", qs, v, d)
			}
		}
	}
}

func TestF32ScratchReuseAndAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 8
	u := gate.RandomUnitary(2, rng)
	qs := []int{1, 4}
	state := randomState(n, rng)
	want := denseApply(state, u, qs, n)

	// Naive with caller-provided scratch returns the scratch slice.
	src := toF32(state)
	scratch := make([]complex64, len(src))
	got := ApplyF32(Naive, src, ToComplex64(u.Data), qs, scratch)
	if &got[0] != &scratch[0] {
		t.Error("Naive did not return the scratch buffer")
	}
	if d := maxDiffF32(got, want); d > f32Tol {
		t.Errorf("Naive with scratch: max diff %g", d)
	}

	// Auto resolves via the selection table and applies in place.
	got = ApplyF32(Auto, toF32(state), ToComplex64(u.Data), qs, nil)
	if d := maxDiffF32(got, want); d > f32Tol {
		t.Errorf("Auto: max diff %g", d)
	}
}

func TestApplyDiagonalF32(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	n := 9
	state := randomState(n, rng)
	for _, qs := range [][]int{{}, {2}, {1, 5}, {0, 3, 7}} {
		k := len(qs)
		d := make([]complex64, 1<<k)
		d128 := make([]complex128, 1<<k)
		for i := range d {
			phi := rng.Float64() * 2 * math.Pi
			d128[i] = complex(math.Cos(phi), math.Sin(phi))
			d[i] = complex64(d128[i])
		}
		want := make([]complex128, len(state))
		for i, a := range state {
			x := 0
			for j, q := range qs {
				x |= (i >> q & 1) << j
			}
			want[i] = a * d128[x]
		}
		got := toF32(state)
		ApplyDiagonalF32(got, d, qs)
		if diff := maxDiffF32(got, want); diff > f32Tol {
			t.Errorf("qs=%v: max diff %g", qs, diff)
		}
	}
}

func TestScaleF32(t *testing.T) {
	amps := []complex64{1, 2i, 3 + 4i}
	ScaleF32(amps, 2i)
	want := []complex64{2i, -4, -8 + 6i}
	for i := range amps {
		if amps[i] != want[i] {
			t.Errorf("amps[%d] = %v, want %v", i, amps[i], want[i])
		}
	}
}

func TestApplyF32PanicsOnBadArgs(t *testing.T) {
	amps := make([]complex64, 8)
	u := ToComplex64(gate.H().Data)
	cz := ToComplex64(gate.CZ().Data)
	for i, fn := range []func(){
		func() { ApplyF32(Specialized, amps, u, []int{3}, nil) },    // out of range
		func() { ApplyF32(Specialized, amps, u, []int{1, 0}, nil) }, // unsorted
		func() { ApplyF32(Specialized, amps, u[:2], []int{0}, nil) },
		func() { ApplyF32(Specialized, amps, cz, []int{1, 1}, nil) }, // dup
		func() { ApplyF32(Naive, amps, u, []int{0}, make([]complex64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
