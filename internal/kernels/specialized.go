package kernels

import "qusim/internal/par"

// The specialized kernels below are the Go equivalent of the paper's
// generated C++ kernels: one hand-unrolled routine per k ∈ {1,…,5}, with
// strides and loop structure fixed at compile time. k > 5 falls back to the
// Split kernel, matching the paper's observation that kernels beyond
// kmax = 5 stop paying off (Table 1 uses kmax ≤ 5).

// applySpecialized dispatches to the hand-unrolled kernel for k ≤ 5 and
// to the blocked Split kernel beyond (Table 1 uses kmax ≤ 5).
//
//qusim:hot
func applySpecialized(amps, m []complex128, qs []int) {
	switch len(qs) {
	case 0:
		// 0-qubit "gate" is a global scalar.
		s := m[0]
		par.For(len(amps), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				amps[i] *= s
			}
		})
	case 1:
		apply1(amps, m, qs[0])
	case 2:
		apply2(amps, m, qs[0], qs[1])
	case 3:
		apply3(amps, m, qs)
	case 4:
		apply4(amps, m, qs)
	case 5:
		apply5(amps, m, qs)
	default:
		applySplit(amps, m, qs)
	}
}

// apply1 applies a 1-qubit gate: one fused pair update per amplitude pair.
//
//qusim:hot
func apply1(amps, m []complex128, q int) {
	mask := 1<<q - 1
	s := 1 << q
	m00, m01, m10, m11 := m[0], m[1], m[2], m[3]
	par.For(len(amps)>>1, grain(1), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			i0 := ((t &^ mask) << 1) | (t & mask)
			i1 := i0 | s
			a0, a1 := amps[i0], amps[i1]
			amps[i0] = m00*a0 + m01*a1
			amps[i1] = m10*a0 + m11*a1
		}
	})
}

// apply2 applies a 2-qubit gate, fully unrolled over the 4 amplitudes of
// each base index.
//
//qusim:hot
func apply2(amps, m []complex128, q0, q1 int) {
	mask0 := 1<<q0 - 1
	mask1 := 1<<q1 - 1
	s0, s1 := 1<<q0, 1<<q1
	var mm [16]complex128
	copy(mm[:], m)
	par.For(len(amps)>>2, grain(2), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			b := ((t &^ mask0) << 1) | (t & mask0)
			b = ((b &^ mask1) << 1) | (b & mask1)
			i1, i2, i3 := b|s0, b|s1, b|s0|s1
			a0, a1, a2, a3 := amps[b], amps[i1], amps[i2], amps[i3]
			amps[b] = mm[0]*a0 + mm[1]*a1 + mm[2]*a2 + mm[3]*a3
			amps[i1] = mm[4]*a0 + mm[5]*a1 + mm[6]*a2 + mm[7]*a3
			amps[i2] = mm[8]*a0 + mm[9]*a1 + mm[10]*a2 + mm[11]*a3
			amps[i3] = mm[12]*a0 + mm[13]*a1 + mm[14]*a2 + mm[15]*a3
		}
	})
}

// apply3 applies a 3-qubit gate with the 8 gathered amplitudes and outputs
// in fixed-size stack arrays.
//
//qusim:hot
func apply3(amps, m []complex128, qs []int) {
	mask0 := 1<<qs[0] - 1
	mask1 := 1<<qs[1] - 1
	mask2 := 1<<qs[2] - 1
	var offs [8]int
	copy(offs[:], offsets(qs))
	var mm [64]complex128
	copy(mm[:], m)
	par.For(len(amps)>>3, grain(3), func(lo, hi int) {
		var a, o [8]complex128
		for t := lo; t < hi; t++ {
			b := ((t &^ mask0) << 1) | (t & mask0)
			b = ((b &^ mask1) << 1) | (b & mask1)
			b = ((b &^ mask2) << 1) | (b & mask2)
			for x := 0; x < 8; x++ {
				a[x] = amps[b+offs[x]]
			}
			for r := 0; r < 8; r++ {
				row := r << 3
				o[r] = mm[row]*a[0] + mm[row+1]*a[1] + mm[row+2]*a[2] + mm[row+3]*a[3] +
					mm[row+4]*a[4] + mm[row+5]*a[5] + mm[row+6]*a[6] + mm[row+7]*a[7]
			}
			for x := 0; x < 8; x++ {
				amps[b+offs[x]] = o[x]
			}
		}
	})
}

// apply4 applies a 4-qubit gate with the 16 gathered amplitudes and
// outputs in fixed-size stack arrays.
//
//qusim:hot
func apply4(amps, m []complex128, qs []int) {
	mask0 := 1<<qs[0] - 1
	mask1 := 1<<qs[1] - 1
	mask2 := 1<<qs[2] - 1
	mask3 := 1<<qs[3] - 1
	var offs [16]int
	copy(offs[:], offsets(qs))
	var mm [256]complex128
	copy(mm[:], m)
	par.For(len(amps)>>4, grain(4), func(lo, hi int) {
		var a, o [16]complex128
		for t := lo; t < hi; t++ {
			b := ((t &^ mask0) << 1) | (t & mask0)
			b = ((b &^ mask1) << 1) | (b & mask1)
			b = ((b &^ mask2) << 1) | (b & mask2)
			b = ((b &^ mask3) << 1) | (b & mask3)
			for x := 0; x < 16; x++ {
				a[x] = amps[b+offs[x]]
			}
			for r := 0; r < 16; r++ {
				row := r << 4
				acc := mm[row]*a[0] + mm[row+1]*a[1] + mm[row+2]*a[2] + mm[row+3]*a[3]
				acc += mm[row+4]*a[4] + mm[row+5]*a[5] + mm[row+6]*a[6] + mm[row+7]*a[7]
				acc += mm[row+8]*a[8] + mm[row+9]*a[9] + mm[row+10]*a[10] + mm[row+11]*a[11]
				acc += mm[row+12]*a[12] + mm[row+13]*a[13] + mm[row+14]*a[14] + mm[row+15]*a[15]
				o[r] = acc
			}
			for x := 0; x < 16; x++ {
				amps[b+offs[x]] = o[x]
			}
		}
	})
}

// apply5 applies a 5-qubit gate with the 32 gathered amplitudes and
// outputs in fixed-size stack arrays.
//
//qusim:hot
func apply5(amps, m []complex128, qs []int) {
	var masks [5]int
	for j, q := range qs {
		masks[j] = 1<<q - 1
	}
	var offs [32]int
	copy(offs[:], offsets(qs))
	var mm [1024]complex128
	copy(mm[:], m)
	par.For(len(amps)>>5, grain(5), func(lo, hi int) {
		var a, o [32]complex128
		for t := lo; t < hi; t++ {
			b := t
			b = ((b &^ masks[0]) << 1) | (b & masks[0])
			b = ((b &^ masks[1]) << 1) | (b & masks[1])
			b = ((b &^ masks[2]) << 1) | (b & masks[2])
			b = ((b &^ masks[3]) << 1) | (b & masks[3])
			b = ((b &^ masks[4]) << 1) | (b & masks[4])
			for x := 0; x < 32; x++ {
				a[x] = amps[b+offs[x]]
			}
			for r := 0; r < 32; r++ {
				row := r << 5
				var acc complex128
				for c := 0; c < 32; c += 4 {
					acc += mm[row+c]*a[c] + mm[row+c+1]*a[c+1] + mm[row+c+2]*a[c+2] + mm[row+c+3]*a[c+3]
				}
				o[r] = acc
			}
			for x := 0; x < 32; x++ {
				amps[b+offs[x]] = o[x]
			}
		}
	})
}

// ApplyDiagonal multiplies each amplitude by the diagonal entry selected by
// the bits of its index at positions qs. This is the no-communication,
// no-matvec fast path that gate specialization (Sec. 3.5) exploits.
//
//qusim:hot
func ApplyDiagonal(amps []complex128, d []complex128, qs []int) {
	k := len(qs)
	if len(d) != 1<<k {
		panic("kernels: diagonal length mismatch")
	}
	switch k {
	case 0:
		s := d[0]
		par.For(len(amps), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				amps[i] *= s
			}
		})
	case 1:
		q := qs[0]
		d0, d1 := d[0], d[1]
		par.For(len(amps), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i>>q&1 == 0 {
					amps[i] *= d0
				} else {
					amps[i] *= d1
				}
			}
		})
	default:
		par.For(len(amps), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := 0
				for j := 0; j < k; j++ {
					x |= (i >> qs[j] & 1) << j
				}
				amps[i] *= d[x]
			}
		})
	}
}

// ApplyCZ applies a controlled-Z between bit positions a and b without a
// matrix: amplitudes with both bits set are negated.
//
//qusim:hot
func ApplyCZ(amps []complex128, a, b int) {
	mask := 1<<a | 1<<b
	par.For(len(amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&mask == mask {
				amps[i] = -amps[i]
			}
		}
	})
}

// Scale multiplies every amplitude by s (global-phase absorption and the
// conditional global phase of Sec. 3.5).
//
//qusim:hot
func Scale(amps []complex128, s complex128) {
	par.For(len(amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			amps[i] *= s
		}
	})
}
