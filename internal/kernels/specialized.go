package kernels

import "qusim/internal/par"

// The specialized kernels below are the Go equivalent of the paper's
// generated C++ kernels: one hand-unrolled routine per k ∈ {1,…,5}, with
// strides and loop structure fixed at compile time. k > 5 falls back to the
// Split kernel, matching the paper's observation that kernels beyond
// kmax = 5 stop paying off (Table 1 uses kmax ≤ 5).

// applySpecialized dispatches to the hand-unrolled kernel for k ≤ 5 and
// to the blocked Split kernel beyond (Table 1 uses kmax ≤ 5).
//
//qusim:hot
func applySpecialized(amps, m []complex128, qs []int) {
	switch len(qs) {
	case 0:
		// 0-qubit "gate" is a global scalar.
		s := m[0]
		par.For(len(amps), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				amps[i] *= s
			}
		})
	case 1:
		apply1(amps, m, qs[0])
	case 2:
		apply2(amps, m, qs[0], qs[1])
	case 3:
		apply3(amps, m, qs)
	case 4:
		apply4(amps, m, qs)
	case 5:
		apply5(amps, m, qs)
	default:
		applySplit(amps, m, qs)
	}
}

// apply1 applies a 1-qubit gate: one fused pair update per amplitude pair.
//
//qusim:hot
func apply1(amps, m []complex128, q int) {
	mask := 1<<q - 1
	s := 1 << q
	m00, m01, m10, m11 := m[0], m[1], m[2], m[3]
	par.For(len(amps)>>1, grain(1), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			i0 := ((t &^ mask) << 1) | (t & mask)
			i1 := i0 | s
			a0, a1 := amps[i0], amps[i1]
			amps[i0] = m00*a0 + m01*a1
			amps[i1] = m10*a0 + m11*a1
		}
	})
}

// apply2 applies a 2-qubit gate, fully unrolled over the 4 amplitudes of
// each base index.
//
//qusim:hot
func apply2(amps, m []complex128, q0, q1 int) {
	mask0 := 1<<q0 - 1
	mask1 := 1<<q1 - 1
	s0, s1 := 1<<q0, 1<<q1
	var mm [16]complex128
	copy(mm[:], m)
	par.For(len(amps)>>2, grain(2), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			b := ((t &^ mask0) << 1) | (t & mask0)
			b = ((b &^ mask1) << 1) | (b & mask1)
			i1, i2, i3 := b|s0, b|s1, b|s0|s1
			a0, a1, a2, a3 := amps[b], amps[i1], amps[i2], amps[i3]
			amps[b] = mm[0]*a0 + mm[1]*a1 + mm[2]*a2 + mm[3]*a3
			amps[i1] = mm[4]*a0 + mm[5]*a1 + mm[6]*a2 + mm[7]*a3
			amps[i2] = mm[8]*a0 + mm[9]*a1 + mm[10]*a2 + mm[11]*a3
			amps[i3] = mm[12]*a0 + mm[13]*a1 + mm[14]*a2 + mm[15]*a3
		}
	})
}

// apply3 applies a 3-qubit gate with the 8 gathered amplitudes and outputs
// in fixed-size stack arrays.
//
//qusim:hot
func apply3(amps, m []complex128, qs []int) {
	mask0 := 1<<qs[0] - 1
	mask1 := 1<<qs[1] - 1
	mask2 := 1<<qs[2] - 1
	var offs [8]int
	copy(offs[:], offsets(qs))
	var mm [64]complex128
	copy(mm[:], m)
	par.For(len(amps)>>3, grain(3), func(lo, hi int) {
		var a, o [8]complex128
		for t := lo; t < hi; t++ {
			b := ((t &^ mask0) << 1) | (t & mask0)
			b = ((b &^ mask1) << 1) | (b & mask1)
			b = ((b &^ mask2) << 1) | (b & mask2)
			for x := 0; x < 8; x++ {
				a[x] = amps[b+offs[x]]
			}
			for r := 0; r < 8; r++ {
				row := r << 3
				o[r] = mm[row]*a[0] + mm[row+1]*a[1] + mm[row+2]*a[2] + mm[row+3]*a[3] +
					mm[row+4]*a[4] + mm[row+5]*a[5] + mm[row+6]*a[6] + mm[row+7]*a[7]
			}
			for x := 0; x < 8; x++ {
				amps[b+offs[x]] = o[x]
			}
		}
	})
}

// apply4 applies a 4-qubit gate with the 16 gathered amplitudes and
// outputs in fixed-size stack arrays.
//
//qusim:hot
func apply4(amps, m []complex128, qs []int) {
	mask0 := 1<<qs[0] - 1
	mask1 := 1<<qs[1] - 1
	mask2 := 1<<qs[2] - 1
	mask3 := 1<<qs[3] - 1
	var offs [16]int
	copy(offs[:], offsets(qs))
	var mm [256]complex128
	copy(mm[:], m)
	par.For(len(amps)>>4, grain(4), func(lo, hi int) {
		var a, o [16]complex128
		for t := lo; t < hi; t++ {
			b := ((t &^ mask0) << 1) | (t & mask0)
			b = ((b &^ mask1) << 1) | (b & mask1)
			b = ((b &^ mask2) << 1) | (b & mask2)
			b = ((b &^ mask3) << 1) | (b & mask3)
			for x := 0; x < 16; x++ {
				a[x] = amps[b+offs[x]]
			}
			for r := 0; r < 16; r++ {
				row := r << 4
				acc := mm[row]*a[0] + mm[row+1]*a[1] + mm[row+2]*a[2] + mm[row+3]*a[3]
				acc += mm[row+4]*a[4] + mm[row+5]*a[5] + mm[row+6]*a[6] + mm[row+7]*a[7]
				acc += mm[row+8]*a[8] + mm[row+9]*a[9] + mm[row+10]*a[10] + mm[row+11]*a[11]
				acc += mm[row+12]*a[12] + mm[row+13]*a[13] + mm[row+14]*a[14] + mm[row+15]*a[15]
				o[r] = acc
			}
			for x := 0; x < 16; x++ {
				amps[b+offs[x]] = o[x]
			}
		}
	})
}

// apply5 applies a 5-qubit gate with the 32 gathered amplitudes and
// outputs in fixed-size stack arrays.
//
//qusim:hot
func apply5(amps, m []complex128, qs []int) {
	var masks [5]int
	for j, q := range qs {
		masks[j] = 1<<q - 1
	}
	var offs [32]int
	copy(offs[:], offsets(qs))
	var mm [1024]complex128
	copy(mm[:], m)
	par.For(len(amps)>>5, grain(5), func(lo, hi int) {
		var a, o [32]complex128
		for t := lo; t < hi; t++ {
			b := t
			b = ((b &^ masks[0]) << 1) | (b & masks[0])
			b = ((b &^ masks[1]) << 1) | (b & masks[1])
			b = ((b &^ masks[2]) << 1) | (b & masks[2])
			b = ((b &^ masks[3]) << 1) | (b & masks[3])
			b = ((b &^ masks[4]) << 1) | (b & masks[4])
			for x := 0; x < 32; x++ {
				a[x] = amps[b+offs[x]]
			}
			for r := 0; r < 32; r++ {
				row := r << 5
				var acc complex128
				for c := 0; c < 32; c += 4 {
					acc += mm[row+c]*a[c] + mm[row+c+1]*a[c+1] + mm[row+c+2]*a[c+2] + mm[row+c+3]*a[c+3]
				}
				o[r] = acc
			}
			for x := 0; x < 32; x++ {
				amps[b+offs[x]] = o[x]
			}
		}
	})
}

// ApplyDiagonal multiplies each amplitude by the diagonal entry selected by
// the bits of its index at positions qs. This is the no-communication,
// no-matvec fast path that gate specialization (Sec. 3.5) exploits.
//
// The index bits at qs are constant across each contiguous run of 2^qs[0]
// amplitudes, so the sweep walks runs: one entry lookup per run, then a
// tight multiply loop — and runs whose entry is exactly 1 are skipped
// outright, which for the phase-type diagonals of the supremacy gate set
// (T, S, CZ, controlled-phase) leaves most of the state untouched.
//
//qusim:hot
func ApplyDiagonal(amps []complex128, d []complex128, qs []int) {
	k := len(qs)
	if len(d) != 1<<k {
		panic("kernels: diagonal length mismatch")
	}
	if k == 0 {
		if d[0] != 1 {
			Scale(amps, d[0])
		}
		return
	}
	q0 := qs[0]
	if q0 < diagRunMin && qs[k-1] < diagPeriodMax {
		// Short runs: per-run dispatch overhead would dominate. The entry
		// pattern repeats every 2^(qs[k-1]+1) indices, so precompute one
		// period's worth of non-unit segments and replay it across the state.
		applyDiagPeriod(amps, d, qs)
		return
	}
	runs := len(amps) >> q0
	par.For(runs, max(1, 4096>>q0), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			base := r << q0
			x := 0
			for j := 0; j < k; j++ {
				x |= (base >> qs[j] & 1) << j
			}
			dx := d[x]
			if dx == 1 {
				continue
			}
			blk := amps[base : base+1<<q0 : base+1<<q0]
			if dx == -1 { // CZ / Z-type entries: negate, no multiply
				for j := range blk {
					blk[j] = -blk[j]
				}
				continue
			}
			for j := range blk {
				blk[j] *= dx
			}
		}
	})
}

// diagRunMin and diagPeriodMax pick between the two diagonal sweeps: runs
// of at least 2^diagRunMin amplitudes amortize the per-run entry lookup;
// below that the period replay takes over as long as its table stays
// comfortably inside L1 (2^(diagPeriodMax+1) index period).
const (
	diagRunMin    = 6
	diagPeriodMax = 13
)

// diagSegment is one maximal run of identical non-unit diagonal entries
// within a period of the index pattern.
type diagSegment[T complexAmp] struct {
	off, n int
	dx     T
}

// complexAmp constrains the two amplitude element types.
type complexAmp interface{ complex64 | complex128 }

// diagSegments compiles the entries of d hit across one period of the
// index pattern into maximal contiguous non-unit segments.
func diagSegments[T complexAmp](d []T, qs []int, period int) []diagSegment[T] {
	k := len(qs)
	entry := func(i int) T {
		x := 0
		for j := 0; j < k; j++ {
			x |= (i >> qs[j] & 1) << j
		}
		return d[x]
	}
	var segs []diagSegment[T]
	for i := 0; i < period; {
		dx := entry(i)
		if dx == 1 {
			i++
			continue
		}
		start := i
		for i < period && entry(i) == dx {
			i++
		}
		segs = append(segs, diagSegment[T]{off: start, n: i - start, dx: dx})
	}
	return segs
}

// applyDiagPeriod replays the compiled non-unit segments of one index
// period across the state — the low-position diagonal sweep: no per-index
// bit extraction, and indices with unit entries are never visited.
//
//qusim:hot
func applyDiagPeriod(amps []complex128, d []complex128, qs []int) {
	period := 1 << (qs[len(qs)-1] + 1)
	segs := diagSegments(d, qs, period)
	if len(segs) == 0 {
		return
	}
	blocks := len(amps) / period
	par.For(blocks, max(1, 8192/period), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			base := b * period
			for _, s := range segs {
				blk := amps[base+s.off : base+s.off+s.n : base+s.off+s.n]
				if s.dx == -1 {
					for j := range blk {
						blk[j] = -blk[j]
					}
					continue
				}
				for j := range blk {
					blk[j] *= s.dx
				}
			}
		}
	})
}

// ApplyCZ applies a controlled-Z between bit positions a and b without a
// matrix: amplitudes with both bits set are negated.
//
//qusim:hot
func ApplyCZ(amps []complex128, a, b int) {
	mask := 1<<a | 1<<b
	par.For(len(amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&mask == mask {
				amps[i] = -amps[i]
			}
		}
	})
}

// Scale multiplies every amplitude by s (global-phase absorption and the
// conditional global phase of Sec. 3.5).
//
//qusim:hot
func Scale(amps []complex128, s complex128) {
	par.For(len(amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			amps[i] *= s
		}
	})
}
