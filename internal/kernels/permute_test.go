package kernels

import (
	"math/rand"
	"testing"
)

// naiveMap is the bit-by-bit reference for the compiled shift-mask map.
func naiveMap(perm []int, i int) int {
	out := 0
	for p := range perm {
		if i&(1<<p) != 0 {
			out |= 1 << perm[p]
		}
	}
	return out
}

func TestBitPermutationMapMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		perm := rng.Perm(n)
		bp := CompileBitPermutation(perm)
		for i := 0; i < 1<<n; i++ {
			if got, want := bp.Map(i), naiveMap(perm, i); got != want {
				t.Fatalf("perm %v: Map(%d) = %d, want %d", perm, i, got, want)
			}
			if got := bp.MapInverse(bp.Map(i)); got != i {
				t.Fatalf("perm %v: MapInverse(Map(%d)) = %d", perm, i, got)
			}
		}
	}
}

func TestBitPermutationCycles(t *testing.T) {
	bp := CompileBitPermutation([]int{0, 1, 2})
	if !bp.Identity() || len(bp.Cycles()) != 0 {
		t.Errorf("identity permutation reported cycles %v", bp.Cycles())
	}
	bp = CompileBitPermutation([]int{1, 0, 2})
	a, b, ok := bp.Transposition()
	if !ok || a != 0 || b != 1 {
		t.Errorf("transposition not detected: cycles %v", bp.Cycles())
	}
	// (0 1 2)(3 4) — two cycles, not a single transposition.
	bp = CompileBitPermutation([]int{1, 2, 0, 4, 3})
	if _, _, ok := bp.Transposition(); ok {
		t.Error("multi-cycle permutation reported as transposition")
	}
	if got := len(bp.Cycles()); got != 2 {
		t.Errorf("cycle count %d, want 2", got)
	}
}

func TestPermuteInto(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		perm := rng.Perm(n)
		src := make([]complex128, 1<<n)
		for i := range src {
			src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		dst := make([]complex128, len(src))
		PermuteInto(dst, src, CompileBitPermutation(perm))
		for i, a := range src {
			if dst[naiveMap(perm, i)] != a {
				t.Fatalf("perm %v: src[%d] not found at Map(%d)", perm, i, i)
			}
		}
	}
}

func TestPermuteGather(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(16) // cover both the plain and the tiled path
		perm := rng.Perm(n)
		bp := CompileBitPermutation(perm)
		src := make([]complex128, 1<<n)
		for i := range src {
			src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		// Split the index space into 2^q chunks by the top q bits and gather
		// each separately; stitched together they must equal the full gather.
		q := rng.Intn(n)
		chunk := len(src) >> q
		got := make([]complex128, len(src))
		for m := 0; m < 1<<q; m++ {
			PermuteGather(got[m*chunk:(m+1)*chunk], src, bp, m*chunk)
		}
		want := make([]complex128, len(src))
		PermuteInto(want, src, bp)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("perm %v q=%d: chunked gather differs at %d", perm, q, i)
			}
		}
	}
}

func TestPermuteGatherRejectsBadArgs(t *testing.T) {
	bp := CompileBitPermutation([]int{1, 0, 2})
	src := make([]complex128, 8)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("non-power-of-two chunk", func() {
		PermuteGather(make([]complex128, 3), src, bp, 0)
	})
	mustPanic("base overlapping chunk bits", func() {
		PermuteGather(make([]complex128, 4), src, bp, 2)
	})
}

// permFromBytes decodes fuzz bytes into a permutation via repeated
// Fisher–Yates picks, so every byte string yields a valid permutation.
func permFromBytes(data []byte) []int {
	n := 1 + int(len(data)%16)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i, b := range data {
		j := i % n
		k := int(b) % n
		perm[j], perm[k] = perm[k], perm[j]
	}
	return perm
}

// FuzzBitPermutation checks the compiled shift-mask map and the cycle
// decomposition against bit-by-bit references on arbitrary permutations.
func FuzzBitPermutation(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		perm := permFromBytes(data)
		n := len(perm)
		bp := CompileBitPermutation(perm)
		// The compiled map must agree with the naive per-bit map.
		probe := 1 << n
		if probe > 1<<12 {
			probe = 1 << 12
		}
		for i := 0; i < probe; i++ {
			if bp.Map(i) != naiveMap(perm, i) {
				t.Fatalf("perm %v: Map(%d) = %d, want %d", perm, i, bp.Map(i), naiveMap(perm, i))
			}
			if bp.MapInverse(bp.Map(i)) != i {
				t.Fatalf("perm %v: inverse does not round-trip %d", perm, i)
			}
		}
		// Replaying the cycles must reconstruct the permutation exactly,
		// and every non-fixed point must appear in exactly one cycle.
		rebuilt := make([]int, n)
		for i := range rebuilt {
			rebuilt[i] = i
		}
		seen := map[int]bool{}
		for _, cyc := range bp.Cycles() {
			if len(cyc) < 2 {
				t.Fatalf("perm %v: trivial cycle %v", perm, cyc)
			}
			for i, p := range cyc {
				if seen[p] {
					t.Fatalf("perm %v: position %d in two cycles", perm, p)
				}
				seen[p] = true
				rebuilt[p] = cyc[(i+1)%len(cyc)]
			}
		}
		for p := range perm {
			if rebuilt[p] != perm[p] {
				t.Fatalf("perm %v: cycles %v rebuild to %v", perm, bp.Cycles(), rebuilt)
			}
		}
	})
}
