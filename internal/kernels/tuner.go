package kernels

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"qusim/internal/gate"
)

// The autotuner replaces the paper's code-generation / benchmarking feedback
// loop (Sec. 3.2): instead of generating C++ kernels and timing them, it
// times the pre-built Go kernel variants (and block sizes for the Split
// kernel) on this machine and records the fastest choice per
// (k, stride class, precision). statevec and f32vec use the selection
// through the Auto variant; TuneCached persists the table across runs.

// StrideClass partitions gate applications by their memory-access pattern:
// a gate whose highest qubit position is below strideHighBit walks the
// state in cache-resident spans, while one touching a higher position
// gathers at large power-of-two strides — the cache/TLB contrast of
// Sec. 3.3 (Fig. 6/9) that can flip which kernel variant wins.
type StrideClass int

const (
	// StrideLow covers gates whose positions are all < strideHighBit.
	StrideLow StrideClass = iota
	// StrideHigh covers gates touching a position ≥ strideHighBit.
	StrideHigh
)

// strideHighBit is the position above which a gate's 2^q-amplitude stride
// (≥ 64 KiB in double precision) has left L1 behind.
const strideHighBit = 12

func (s StrideClass) String() string {
	switch s {
	case StrideLow:
		return "low"
	case StrideHigh:
		return "high"
	}
	return fmt.Sprintf("StrideClass(%d)", int(s))
}

// StrideClassOf classifies a sorted qubit-position set by its largest
// stride.
func StrideClassOf(qs []int) StrideClass {
	for _, q := range qs {
		if q >= strideHighBit {
			return StrideHigh
		}
	}
	return StrideLow
}

// selKey identifies one autotuner selection slot.
type selKey struct {
	k      int
	stride StrideClass
	f32    bool
}

var (
	tunerMu  sync.RWMutex
	selected = map[selKey]Variant{}
)

// SelectedFor returns the tuned variant for k-qubit gates of the given
// stride class and precision, defaulting to Specialized when no tuning has
// run.
func SelectedFor(k int, stride StrideClass, f32 bool) Variant {
	tunerMu.RLock()
	defer tunerMu.RUnlock()
	if v, ok := selected[selKey{k, stride, f32}]; ok {
		return v
	}
	return Specialized
}

// SetSelectedFor overrides the tuned variant for one
// (k, stride class, precision) slot.
func SetSelectedFor(k int, stride StrideClass, f32 bool, v Variant) {
	tunerMu.Lock()
	defer tunerMu.Unlock()
	selected[selKey{k, stride, f32}] = v
}

// Selected returns the tuned double-precision low-stride variant for
// k-qubit gates — the summary view the harness tables report.
func Selected(k int) Variant { return SelectedFor(k, StrideLow, false) }

// SetSelected overrides the tuned double-precision variant for k across
// both stride classes (used by tests and the Fig. 2 experiment driver).
func SetSelected(k int, v Variant) {
	SetSelectedFor(k, StrideLow, false, v)
	SetSelectedFor(k, StrideHigh, false, v)
}

// resetSelections clears the tuner table (tests only).
func resetSelections() {
	tunerMu.Lock()
	defer tunerMu.Unlock()
	selected = map[selKey]Variant{}
}

// Timing records the measured time of one kernel variant.
type Timing struct {
	K          int
	Stride     StrideClass
	F32        bool
	Variant    Variant
	NsPerApply float64 // nanoseconds per full-state application
	Best       bool
}

// TuneResult is the autotuner's report.
type TuneResult struct {
	N       int // state size used: 2^N amplitudes
	Timings []Timing
}

// timingSweeps counts timeVariant invocations — observability for the
// tests that assert a warm tuner cache skips re-benchmarking entirely.
var timingSweeps atomic.Int64

// TimingSweeps returns the number of kernel timing sweeps run so far in
// this process.
func TimingSweeps() int64 { return timingSweeps.Load() }

// pickBest returns the fastest variant among the timings, tracking
// "no winner yet" with an explicit flag: a 0.0 sentinel would let a variant
// that legitimately times at 0 ns (coarse clocks, tiny states) reset the
// comparison and mis-pick the winner.
func pickBest(ts []Timing) (Variant, float64) {
	best, bestNs, found := Specialized, 0.0, false
	for _, t := range ts {
		if !found || t.NsPerApply < bestNs {
			best, bestNs, found = t.Variant, t.NsPerApply, true
		}
	}
	return best, bestNs
}

// markBest flags the timing entries matching the winning variant.
func markBest(ts []Timing, best Variant) {
	for i := range ts {
		if ts[i].Variant == best {
			ts[i].Best = true
		}
	}
}

// tuneQubitSets returns the position sets Tune sweeps for a k-qubit gate on
// a 2^n state: the low-order positions always, and the highest-order
// positions when they actually fall into the high-stride class (on small
// states every position is cache-local and a second sweep would just
// duplicate the low-stride key).
func tuneQubitSets(n, k int) [][]int {
	low := make([]int, k)
	for j := range low {
		low[j] = j
	}
	sets := [][]int{low}
	high := make([]int, k)
	for j := range high {
		high[j] = n - k + j
	}
	if StrideClassOf(high) == StrideHigh {
		sets = append(sets, high)
	}
	return sets
}

// Tune benchmarks every variant for k = 1…kmax on a 2^n state vector — in
// both precisions and, when the state is large enough to tell them apart,
// for both stride classes — and records the fastest per slot. reps controls
// averaging (≥1). The chosen variants become the Auto selection.
func Tune(kmax, n, reps int) TuneResult {
	if reps < 1 {
		reps = 1
	}
	rng := rand.New(rand.NewSource(42))
	amps := make([]complex128, 1<<n)
	amps[0] = 1
	scratch := make([]complex128, len(amps))
	amps32 := make([]complex64, 1<<n)
	amps32[0] = 1
	scratch32 := make([]complex64, len(amps32))
	res := TuneResult{N: n}
	for k := 1; k <= kmax; k++ {
		u := gate.RandomUnitary(k, rng)
		u32 := ToComplex64(u.Data)
		for _, qs := range tuneQubitSets(n, k) {
			sc := StrideClassOf(qs)
			for _, f32 := range []bool{false, true} {
				start := len(res.Timings)
				for _, v := range Variants() {
					var ns float64
					if f32 {
						ns = timeVariantF32(v, amps32, scratch32, u32, qs, reps)
					} else {
						ns = timeVariant(v, amps, scratch, u.Data, qs, reps)
					}
					res.Timings = append(res.Timings, Timing{
						K: k, Stride: sc, F32: f32, Variant: v, NsPerApply: ns,
					})
				}
				group := res.Timings[start:]
				best, _ := pickBest(group)
				markBest(group, best)
				SetSelectedFor(k, sc, f32, best)
			}
		}
	}
	return res
}

// TuneSplitBlock searches the column block size for the Split kernel on a
// 2^n vector with a k-qubit gate — the "determine the block size using an
// automatic code-generation / benchmarking feedback loop" of Sec. 3.2 —
// and installs the winner. It returns the chosen block size. The sweep
// state is restored via defer: a panicking variant re-installs the
// pre-sweep block size instead of leaving a half-tuned global behind.
func TuneSplitBlock(k, n, reps int) int {
	rng := rand.New(rand.NewSource(43))
	amps := make([]complex128, 1<<n)
	amps[0] = 1
	u := gate.RandomUnitary(k, rng)
	qs := make([]int, k)
	for j := range qs {
		qs[j] = j
	}
	old := splitBlock
	best, bestNs, found := old, 0.0, false
	defer func() {
		if found {
			SetSplitBlock(best)
		} else {
			SetSplitBlock(old)
		}
	}()
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		if b > 1<<k {
			break
		}
		SetSplitBlock(b)
		ns := timeVariant(Split, amps, nil, u.Data, qs, reps)
		if !found || ns < bestNs {
			best, bestNs, found = b, ns, true
		}
	}
	return best
}

func timeVariant(v Variant, amps, scratch, m []complex128, qs []int, reps int) float64 {
	timingSweeps.Add(1)
	src, dst := amps, scratch
	step := func() {
		if v == Naive {
			applyNaive(dst, src, m, qs)
			src, dst = dst, src
		} else {
			Apply(v, src, m, qs, nil)
		}
	}
	step() // warm-up
	start := time.Now()
	for r := 0; r < reps; r++ {
		step()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

func timeVariantF32(v Variant, amps, scratch, m []complex64, qs []int, reps int) float64 {
	timingSweeps.Add(1)
	src, dst := amps, scratch
	step := func() {
		if v == Naive {
			applyNaiveF32(dst, src, m, qs)
			src, dst = dst, src
		} else {
			ApplyF32(v, src, m, qs, nil)
		}
	}
	step() // warm-up
	start := time.Now()
	for r := 0; r < reps; r++ {
		step()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}
