package kernels

import (
	"math/rand"
	"sync"
	"time"

	"qusim/internal/gate"
)

// The autotuner replaces the paper's code-generation / benchmarking feedback
// loop (Sec. 3.2): instead of generating C++ kernels and timing them, it
// times the pre-built Go kernel variants (and block sizes for the Split
// kernel) on this machine and records the fastest choice per k. statevec
// uses the selection through the Auto variant.

var (
	tunerMu  sync.RWMutex
	selected = map[int]Variant{}
)

// Selected returns the tuned variant for k-qubit gates, defaulting to
// Specialized when no tuning has run.
func Selected(k int) Variant {
	tunerMu.RLock()
	defer tunerMu.RUnlock()
	if v, ok := selected[k]; ok {
		return v
	}
	return Specialized
}

// SetSelected overrides the tuned variant for k (used by tests and the
// Fig. 2 experiment driver).
func SetSelected(k int, v Variant) {
	tunerMu.Lock()
	defer tunerMu.Unlock()
	selected[k] = v
}

// Timing records the measured time of one kernel variant.
type Timing struct {
	K          int
	Variant    Variant
	NsPerApply float64 // nanoseconds per full-state application
	Best       bool
}

// TuneResult is the autotuner's report.
type TuneResult struct {
	N       int // state size used: 2^N amplitudes
	Timings []Timing
}

// Tune benchmarks every variant for k = 1…kmax on a 2^n state vector and
// records the fastest per k. reps controls averaging (≥1). The chosen
// variants become the Auto selection.
func Tune(kmax, n, reps int) TuneResult {
	if reps < 1 {
		reps = 1
	}
	rng := rand.New(rand.NewSource(42))
	amps := make([]complex128, 1<<n)
	amps[0] = 1
	scratch := make([]complex128, len(amps))
	res := TuneResult{N: n}
	for k := 1; k <= kmax; k++ {
		u := gate.RandomUnitary(k, rng)
		qs := make([]int, k)
		for j := range qs {
			qs[j] = j
		}
		bestNs := 0.0
		bestV := Specialized
		for _, v := range Variants() {
			ns := timeVariant(v, amps, scratch, u.Data, qs, reps)
			res.Timings = append(res.Timings, Timing{K: k, Variant: v, NsPerApply: ns})
			if bestNs == 0 || ns < bestNs {
				bestNs, bestV = ns, v
			}
		}
		SetSelected(k, bestV)
		for i := range res.Timings {
			if res.Timings[i].K == k && res.Timings[i].Variant == bestV {
				res.Timings[i].Best = true
			}
		}
	}
	return res
}

// TuneSplitBlock searches the column block size for the Split kernel on a
// 2^n vector with a k-qubit gate — the "determine the block size using an
// automatic code-generation / benchmarking feedback loop" of Sec. 3.2 —
// and installs the winner. It returns the chosen block size.
func TuneSplitBlock(k, n, reps int) int {
	rng := rand.New(rand.NewSource(43))
	amps := make([]complex128, 1<<n)
	amps[0] = 1
	u := gate.RandomUnitary(k, rng)
	qs := make([]int, k)
	for j := range qs {
		qs[j] = j
	}
	best, bestNs := splitBlock, 0.0
	old := splitBlock
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		if b > 1<<k {
			break
		}
		SetSplitBlock(b)
		ns := timeVariant(Split, amps, nil, u.Data, qs, reps)
		if bestNs == 0 || ns < bestNs {
			best, bestNs = b, ns
		}
	}
	SetSplitBlock(old)
	SetSplitBlock(best)
	return best
}

func timeVariant(v Variant, amps, scratch, m []complex128, qs []int, reps int) float64 {
	src, dst := amps, scratch
	step := func() {
		if v == Naive {
			applyNaive(dst, src, m, qs)
			src, dst = dst, src
		} else {
			Apply(v, src, m, qs, nil)
		}
	}
	step() // warm-up
	start := time.Now()
	for r := 0; r < reps; r++ {
		step()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}
