package kernels

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTuneCachedWarmRunSkipsBenchmarking(t *testing.T) {
	defer resetSelections()
	path := filepath.Join(t.TempDir(), "tune.json")

	cold, hit, err := TuneCached(path, 2, 8, 1)
	if err != nil {
		t.Fatalf("cold TuneCached: %v", err)
	}
	if hit {
		t.Fatal("cold run reported a cache hit")
	}
	if len(cold.Timings) == 0 {
		t.Fatal("cold run produced no timings")
	}

	resetSelections()
	before := TimingSweeps()
	warm, hit, err := TuneCached(path, 2, 8, 1)
	if err != nil {
		t.Fatalf("warm TuneCached: %v", err)
	}
	if !hit {
		t.Fatal("warm run missed the cache")
	}
	if got := TimingSweeps(); got != before {
		t.Errorf("warm run re-timed kernels: %d sweeps ran", got-before)
	}
	if len(warm.Timings) != len(cold.Timings) {
		t.Errorf("warm run reconstructed %d timings, want %d", len(warm.Timings), len(cold.Timings))
	}
	// The cache must reinstall the same selections the cold sweep chose.
	for _, tm := range cold.Timings {
		if tm.Best {
			if got := SelectedFor(tm.K, tm.Stride, tm.F32); got != tm.Variant {
				t.Errorf("k=%d stride=%s f32=%v: selected %s, want %s", tm.K, tm.Stride, tm.F32, got, tm.Variant)
			}
		}
	}
}

func TestLoadTuneCacheRejectsStaleFiles(t *testing.T) {
	defer resetSelections()
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")
	res := Tune(1, 8, 1)
	if err := SaveTuneCache(path, 1, 1, res); err != nil {
		t.Fatalf("SaveTuneCache: %v", err)
	}

	// A cache tuned only to kmax=1 cannot serve a kmax=2 request.
	if _, hit, err := LoadTuneCache(path, 2); err != nil || hit {
		t.Errorf("kmax=2 load: hit=%v err=%v, want miss", hit, err)
	}

	// Version and machine-key mismatches are silent misses.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mangle := range map[string]func(string) string{
		"version": func(s string) string { return strings.Replace(s, `"version": 1`, `"version": 0`, 1) },
		"key":     func(s string) string { return strings.Replace(s, `"key": "`, `"key": "other-machine/`, 1) },
	} {
		bad := filepath.Join(dir, name+".json")
		if err := os.WriteFile(bad, []byte(mangle(string(data))), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, hit, err := LoadTuneCache(bad, 1); err != nil || hit {
			t.Errorf("%s mismatch: hit=%v err=%v, want silent miss", name, hit, err)
		}
	}

	// Corruption is an error, not a silent miss.
	bad := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := LoadTuneCache(bad, 1); err == nil || hit {
		t.Errorf("corrupt cache: hit=%v err=%v, want decode error", hit, err)
	}

	// A missing file is a silent miss.
	if _, hit, err := LoadTuneCache(filepath.Join(dir, "absent.json"), 1); err != nil || hit {
		t.Errorf("missing file: hit=%v err=%v, want silent miss", hit, err)
	}
}

func TestPickBestHandlesZeroNanosecondTiming(t *testing.T) {
	// Regression: a 0 ns first measurement must win against slower variants
	// instead of being treated as the "unset" sentinel.
	ts := []Timing{
		{Variant: Naive, NsPerApply: 0},
		{Variant: Split, NsPerApply: 100},
	}
	if best, ns := pickBest(ts); best != Naive || ns != 0 {
		t.Errorf("pickBest = (%s, %g), want (naive, 0)", best, ns)
	}
	// And the plain fastest-wins case still holds.
	ts = []Timing{
		{Variant: Naive, NsPerApply: 50},
		{Variant: Generated, NsPerApply: 10},
	}
	if best, _ := pickBest(ts); best != Generated {
		t.Errorf("pickBest = %s, want generated", best)
	}
}

func TestTuneSplitBlockInstallsWinner(t *testing.T) {
	// Regression for the dead-store bug: the sweep used to restore the
	// pre-sweep block size and immediately overwrite it, so a deliberately
	// bad starting value must not survive the sweep.
	old := SetSplitBlock(3) // never in the candidate set {1,2,4,8,...}
	defer SetSplitBlock(old)
	best := TuneSplitBlock(3, 10, 1)
	if got := SetSplitBlock(best); got != best {
		t.Errorf("split block = %d after sweep, want installed winner %d", got, best)
	}
	if best == 3 {
		t.Errorf("sweep returned the non-candidate starting value %d", best)
	}
}

func TestMachineKeyIsStable(t *testing.T) {
	a, b := MachineKey(), MachineKey()
	if a != b {
		t.Errorf("MachineKey not stable: %q vs %q", a, b)
	}
	if !strings.Contains(a, "ncpu=") {
		t.Errorf("MachineKey %q missing core count", a)
	}
}
