package kernels

import (
	"math/rand"
	"testing"

	"qusim/internal/gate"
)

// The Generated variant is additionally covered by
// TestAllVariantsMatchDenseReference; these tests pin its dispatch
// behaviour and keep a regression check on the generator output.

func TestGeneratedFallsBackOutsideRange(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, k := range []int{1, 6} {
		n := k + 3
		u := gate.RandomUnitary(k, rng)
		qs := make([]int, k)
		for i := range qs {
			qs[i] = i
		}
		state := randomState(n, rng)
		a := make([]complex128, len(state))
		b := make([]complex128, len(state))
		copy(a, state)
		copy(b, state)
		Apply(Generated, a, u.Data, qs, nil)
		Apply(Specialized, b, u.Data, qs, nil)
		if d := maxDiff(a, b); d > 1e-12 {
			t.Errorf("k=%d fallback deviates from specialized: %g", k, d)
		}
	}
}

func TestGeneratedMatchesSpecializedOnSupportedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 10
	for k := 2; k <= 5; k++ {
		u := gate.RandomUnitary(k, rng)
		qs := sortedSubset(n, k, rng)
		state := randomState(n, rng)
		a := make([]complex128, len(state))
		b := make([]complex128, len(state))
		copy(a, state)
		copy(b, state)
		Apply(Generated, a, u.Data, qs, nil)
		Apply(Specialized, b, u.Data, qs, nil)
		if d := maxDiff(a, b); d > 1e-10 {
			t.Errorf("k=%d: generated vs specialized max diff %g", k, d)
		}
	}
}

func BenchmarkGeneratedVsSpecialized(b *testing.B) {
	rng := rand.New(rand.NewSource(72))
	n := 18
	for _, k := range []int{2, 4, 5} {
		u := gate.RandomUnitary(k, rng)
		qs := make([]int, k)
		for i := range qs {
			qs[i] = i
		}
		for _, v := range []Variant{Specialized, Generated} {
			b.Run(v.String()+"/k"+string(rune('0'+k)), func(b *testing.B) {
				amps := make([]complex128, 1<<n)
				amps[0] = 1
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					Apply(v, amps, u.Data, qs, nil)
				}
			})
		}
	}
}
