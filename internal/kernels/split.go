package kernels

import "qusim/internal/par"

// splitBlock is the register-blocking width over matrix columns (the block
// size B of Sec. 3.2). It is chosen by the autotuner; 4 is the default the
// feedback loop converges to on most scalar targets.
var splitBlock = 4

// SetSplitBlock sets the column block size used by the Split kernel and
// returns the previous value. Exposed for the autotuner and the Fig. 2
// optimization-step experiment.
func SetSplitBlock(b int) int {
	old := splitBlock
	if b >= 1 {
		splitBlock = b
	}
	return old
}

// applySplit is optimization steps 2–3 of Sec. 3.2: the complex multiply-
// accumulate is rewritten over split real/imaginary operands. The gate
// matrix is pre-computed into two real-valued operand tables, (mR, mR) and
// (−mI, mI), so the inner update is two multiply-adds per entry — the
// FMA-friendly form of Eq. (2)–(3) — and columns are processed in blocks of
// splitBlock so the accumulators stay in registers.
//
//qusim:hot
func applySplit(amps, m []complex128, qs []int) {
	k := len(qs)
	dk := 1 << k
	masks := insertMasks(qs)
	offs := offsets(qs)
	// Pre-computation on the gate matrix: essentially free, reused 2^(n-k)
	// times (Sec. 3.2).
	mR := make([]float64, dk*dk)
	mNI := make([]float64, dk*dk) // −imag(m)
	for i, v := range m {
		mR[i] = real(v)
		mNI[i] = -imag(v)
	}
	outer := len(amps) >> k
	bsz := splitBlock
	if bsz > dk {
		bsz = dk
	}
	par.For(outer, grain(k), func(lo, hi int) {
		aR := make([]float64, dk)
		aI := make([]float64, dk)
		oR := make([]float64, dk)
		oI := make([]float64, dk)
		for t := lo; t < hi; t++ {
			base := expand(t, masks)
			for x := 0; x < dk; x++ {
				v := amps[base+offs[x]]
				aR[x] = real(v)
				aI[x] = imag(v)
				oR[x] = 0
				oI[x] = 0
			}
			// Blocked update: for each column block, update every output
			// row (v~_l += Σ_{j<B} m_{l,i(b,j)} v_{i(b,j)}).
			for b := 0; b < dk; b += bsz {
				be := b + bsz
				if be > dk {
					be = dk
				}
				for r := 0; r < dk; r++ {
					row := r * dk
					accR := oR[r]
					accI := oI[r]
					for c := b; c < be; c++ {
						vr := aR[c]
						vi := aI[c]
						wr := mR[row+c]
						wni := mNI[row+c]
						// (oR,oI) += (vr·wr, vi·wr); (oR,oI) += (vi·(−wi)·(−1)… )
						// concretely: oR += vr·wr + vi·(−wi); oI += vi·wr − vr·(−wi)
						accR += vr*wr + vi*wni
						accI += vi*wr - vr*wni
					}
					oR[r] = accR
					oI[r] = accI
				}
			}
			for x := 0; x < dk; x++ {
				amps[base+offs[x]] = complex(oR[x], oI[x])
			}
		}
	})
}
