package kernels

import (
	"fmt"

	"qusim/internal/par"
)

// Bit-permutation kernel: the single-pass local qubit relabeling of
// Sec. 3.4. The distributed scheme brackets every global-to-local swap with
// a local permutation that brings the outgoing qubits to the highest-order
// local locations, so permutation speed directly bounds the cost of a
// communication step. Decomposing the permutation into transpositions costs
// up to n−1 full-state sweeps; this kernel compiles the permutation into
// per-byte lookup tables and moves every amplitude to its final index in
// one gather pass.

// BitPermutation is a compiled bit relabeling: Map sends index bit p to bit
// Perm[p]. Compilation folds the per-bit shift masks into one 256-entry
// lookup table per index byte (Map(i) is linear over OR of disjoint bit
// sets, so a whole byte's contribution precomputes into one table entry),
// making an index mapping cost ⌈n/8⌉ L1 loads instead of one mask-shift-or
// per distinct shift distance. The cycle decomposition of the underlying
// permutation is recorded for fast paths and verification.
type BitPermutation struct {
	n      int
	fwd    [][]int // fwd[b][v] = Map contribution of byte b holding value v
	inv    [][]int // inverse-map tables, same layout
	cycles [][]int // non-trivial cycles of the bit positions
}

// CompileBitPermutation validates perm (a permutation of 0…n−1, bit p of
// the input landing at bit perm[p] of the output) and compiles it. It
// panics on malformed input, like the other kernel entry points.
func CompileBitPermutation(perm []int) *BitPermutation {
	n := len(perm)
	if n > 62 {
		panic(fmt.Sprintf("kernels: %d-bit permutation exceeds the 62-bit index limit", n))
	}
	seen := make([]bool, n)
	for _, np := range perm {
		if np < 0 || np >= n || seen[np] {
			panic(fmt.Sprintf("kernels: perm %v is not a permutation of 0…%d", perm, n-1))
		}
		seen[np] = true
	}
	bp := &BitPermutation{n: n}
	bp.fwd = compileByteTables(perm)
	invPerm := make([]int, n)
	for p, np := range perm {
		invPerm[np] = p
	}
	bp.inv = compileByteTables(invPerm)
	// Cycle decomposition (fixed points dropped, each cycle starting at its
	// smallest member — the canonical form the fuzz oracle checks).
	visited := make([]bool, n)
	for p := 0; p < n; p++ {
		if visited[p] || perm[p] == p {
			visited[p] = true
			continue
		}
		var cyc []int
		for q := p; !visited[q]; q = perm[q] {
			visited[q] = true
			cyc = append(cyc, q)
		}
		bp.cycles = append(bp.cycles, cyc)
	}
	return bp
}

// compileByteTables builds the per-byte lookup tables: tab[b][v] is the OR
// of 1<<perm[p] over the set bits p = 8b+j of v's byte placed at bit
// position 8b. Mapping an index is then the OR of one table entry per byte.
func compileByteTables(perm []int) [][]int {
	n := len(perm)
	nb := (n + 7) / 8
	if nb == 0 {
		nb = 1
	}
	tab := make([][]int, nb)
	for b := range tab {
		t := make([]int, 256)
		for v := 1; v < 256; v++ {
			out := 0
			for j := 0; j < 8; j++ {
				if p := 8*b + j; p < n && v&(1<<j) != 0 {
					out |= 1 << perm[p]
				}
			}
			t[v] = out
		}
		tab[b] = t
	}
	return tab
}

// N returns the number of bits the permutation acts on.
func (p *BitPermutation) N() int { return p.n }

// Identity reports whether the permutation fixes every bit.
func (p *BitPermutation) Identity() bool { return len(p.cycles) == 0 }

// Cycles returns the non-trivial cycles of the bit permutation, each
// starting at its smallest member, ordered by that member.
func (p *BitPermutation) Cycles() [][]int { return p.cycles }

// Transposition reports whether the permutation is a single 2-cycle and, if
// so, returns its two positions — the case where an in-place SwapBits sweep
// beats a gather pass (it touches only half the amplitudes).
func (p *BitPermutation) Transposition() (a, b int, ok bool) {
	if len(p.cycles) != 1 || len(p.cycles[0]) != 2 {
		return 0, 0, false
	}
	return p.cycles[0][0], p.cycles[0][1], true
}

// Map returns the permuted index: bit p of i becomes bit perm[p].
func (p *BitPermutation) Map(i int) int {
	return mapTables(p.fwd, i)
}

// MapInverse returns the index that Map sends to i.
func (p *BitPermutation) MapInverse(i int) int {
	return mapTables(p.inv, i)
}

func mapTables(tab [][]int, i int) int {
	out := 0
	for b := range tab {
		out |= tab[b][(i>>(8*b))&0xff]
	}
	return out
}

// permuteTileBits sizes the 2D gather tile: the tile varies the low
// permuteTileBits destination bits AND the destination images of the low
// permuteTileBits source bits, so the tile footprint is ≤ 2^(2·tileBits)
// amplitudes on each side (≤ 512 KiB total at 7 bits — L2-resident) and
// every cache line fetched on either side is fully consumed inside the
// tile.
const permuteTileBits = 7

// permuteTile is the per-worker grain of the gather pass in amplitudes.
const permuteTile = 1 << 15

// PermuteInto writes the permuted state into dst: dst[p.Map(i)] = src[i]
// for every index, executed as a destination-ordered gather
// (dst[y] = src[p.MapInverse(y)]). dst and src must have length 2^n and
// must not alias. This is the single-pass replacement for a SwapBits
// transposition chain: one read of src plus one write of dst, ≤ 2
// full-state passes regardless of the permutation.
//
// For states beyond cache size, destinations are visited tile by tile in an
// order that keeps both y and π⁻¹(y) inside an L2-resident working set: a
// tile varies the low tileBits destination bits (so writes stream and every
// dst line is fully written) together with π(low tileBits source bits) (so
// the gathered reads vary the low source bits and every src line fetched is
// fully read). Without this blocking the gather is latency-bound on random
// reads instead of bandwidth-bound.
//
//qusim:hot
func PermuteInto(dst, src []complex128, p *BitPermutation) {
	if len(dst) != len(src) || len(src) != 1<<p.n {
		panic(fmt.Sprintf("kernels: PermuteInto length mismatch: dst %d, src %d, perm 2^%d", len(dst), len(src), p.n))
	}
	inv := p.inv
	n := p.n
	if n <= 2*permuteTileBits+4 {
		// Small state: plain destination-sequential gather (the source side
		// fits low-level caches anyway).
		par.For(len(dst), 1<<14, func(lo, hi int) {
			gatherRange(dst, src, inv, 0, lo, hi)
		})
		return
	}
	// Tile bit set A = low b dst bits ∪ π(low b src bits).
	const b = permuteTileBits
	maskLow := 1<<b - 1
	maskA := maskLow
	for pb := 0; pb < b; pb++ {
		maskA |= mapTables(p.fwd, 1<<pb)
	}
	maskHi := maskA &^ maskLow // tile bits above the contiguous low run
	var freePos []int          // bit positions outside the tile set
	for i := 0; i < n; i++ {
		if maskA&(1<<i) == 0 {
			//qlint:ignore hotalloc once-per-call setup over the n bit positions, not the per-amplitude sweep
			freePos = append(freePos, i)
		}
	}
	tileLen := 1 << popcount(maskA)
	grain := permuteTile / tileLen
	if grain < 1 {
		grain = 1
	}
	par.For(1<<len(freePos), grain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			// k-th tile base: bits of k deposited at the free positions.
			base := 0
			for j, pos := range freePos {
				if k&(1<<j) != 0 {
					base |= 1 << pos
				}
			}
			// Enumerate the subsets of maskHi (ascending), running the
			// contiguous low-bit span for each.
			ahi := 0
			for {
				run := base | ahi
				gatherRange(dst, src, inv, 0, run, run+1<<b)
				ahi = (ahi - maskHi) & maskHi
				if ahi == 0 {
					break
				}
			}
		}
	})
}

// PermuteGather fills dst[t] = src[p.MapInverse(base|t)] for t in
// [0, len(dst)), where len(dst) is a power of two and base has no set bits
// below len(dst). It is the receiver-side unpack of a fused local
// permutation + global swap: each exchanged chunk is gathered through the
// permutation instead of copied, so the permutation costs no state pass of
// its own. Gathers are tiled like PermuteInto, restricted to the destination
// bits that vary within the chunk (images fixed by base cannot be tiled).
// The pass runs serially: callers are the per-rank exchange loops, which are
// already parallel across ranks.
//
//qusim:hot
func PermuteGather(dst, src []complex128, p *BitPermutation, base int) {
	m := len(dst)
	if m == 0 || m&(m-1) != 0 {
		panic("kernels: PermuteGather chunk length must be a power of two")
	}
	if base&(m-1) != 0 {
		panic("kernels: PermuteGather base overlaps the chunk index bits")
	}
	k := 0
	for 1<<k < m {
		k++
	}
	inv := p.inv
	xbase := mapTables(inv, base)
	const b = permuteTileBits
	if k <= b+2 {
		gatherRange(dst, src, inv, xbase, 0, m)
		return
	}
	// Tile bit set A = low b chunk bits ∪ π(low b source bits), keeping only
	// images below k — images at or above k are pinned by base and cannot
	// vary within the chunk.
	maskLow := 1<<b - 1
	maskA := maskLow
	for pb := 0; pb < b; pb++ {
		if img := mapTables(p.fwd, 1<<pb); img < m {
			maskA |= img
		}
	}
	maskHi := maskA &^ maskLow
	var freePos []int
	for i := 0; i < k; i++ {
		if maskA&(1<<i) == 0 {
			//qlint:ignore hotalloc once-per-call setup over the k chunk bits, not the per-amplitude sweep
			freePos = append(freePos, i)
		}
	}
	for kk := 0; kk < 1<<len(freePos); kk++ {
		tbase := 0
		for j, pos := range freePos {
			if kk&(1<<j) != 0 {
				tbase |= 1 << pos
			}
		}
		ahi := 0
		for {
			run := tbase | ahi
			gatherRange(dst, src, inv, xbase, run, run+1<<b)
			ahi = (ahi - maskHi) & maskHi
			if ahi == 0 {
				break
			}
		}
	}
}

// gatherRange executes dst[y] = src[xbase | MapInverse(y)] for y in
// [lo, hi), with the per-byte table lookups unrolled for the common table
// counts. xbase is 0 for a whole-state gather; chunk gathers pass the
// precomputed image of the fixed high bits.
//
//qusim:hot
func gatherRange(dst, src []complex128, inv [][]int, xbase, lo, hi int) {
	switch len(inv) {
	case 1:
		t0 := inv[0]
		for y := lo; y < hi; y++ {
			dst[y] = src[xbase|t0[y&0xff]]
		}
	case 2:
		t0, t1 := inv[0], inv[1]
		for y := lo; y < hi; y++ {
			dst[y] = src[xbase|t0[y&0xff]|t1[(y>>8)&0xff]]
		}
	case 3:
		t0, t1, t2 := inv[0], inv[1], inv[2]
		for y := lo; y < hi; y++ {
			dst[y] = src[xbase|t0[y&0xff]|t1[(y>>8)&0xff]|t2[(y>>16)&0xff]]
		}
	case 4:
		t0, t1, t2, t3 := inv[0], inv[1], inv[2], inv[3]
		for y := lo; y < hi; y++ {
			dst[y] = src[xbase|t0[y&0xff]|t1[(y>>8)&0xff]|t2[(y>>16)&0xff]|t3[(y>>24)&0xff]]
		}
	default:
		for y := lo; y < hi; y++ {
			dst[y] = src[xbase|mapTables(inv, y)]
		}
	}
}

func popcount(m int) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}
