package kernels

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"qusim/internal/gate"
)

func TestApplyControlledMatchesControlledMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	n := 9
	for trial := 0; trial < 12; trial++ {
		k := 1 + rng.Intn(2)
		nc := 1 + rng.Intn(2)
		perm := rng.Perm(n)
		qs := append([]int(nil), perm[:k]...)
		controls := append([]int(nil), perm[k:k+nc]...)
		sortInts(qs)
		u := gate.RandomUnitary(k, rng)

		state := randomState(n, rng)
		got := make([]complex128, len(state))
		copy(got, state)
		ApplyControlled(got, u.Data, qs, controls)

		// Reference: build the controlled matrix via gate.Controlled and
		// dense-apply it.
		cu := u
		cpos := append([]int(nil), qs...)
		for _, c := range controls {
			cu = gate.Controlled(cu)
			cpos = append(cpos, c)
		}
		want := denseApply(state, cu, cpos, n)
		if d := maxDiff(got, want); d > 1e-10 {
			t.Fatalf("trial %d (qs=%v ctrl=%v): max diff %g", trial, qs, controls, d)
		}
	}
}

func TestApplyControlledNoControlsFallsThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	u := gate.RandomUnitary(2, rng)
	state := randomState(7, rng)
	a := make([]complex128, len(state))
	b := make([]complex128, len(state))
	copy(a, state)
	copy(b, state)
	ApplyControlled(a, u.Data, []int{1, 4}, nil)
	Apply(Specialized, b, u.Data, []int{1, 4}, nil)
	if d := maxDiff(a, b); d > 1e-12 {
		t.Errorf("no-control path deviates: %g", d)
	}
}

func TestApplyControlledOnlyTouchesControlledSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	u := gate.RandomUnitary(1, rng)
	state := randomState(6, rng)
	got := make([]complex128, len(state))
	copy(got, state)
	ApplyControlled(got, u.Data, []int{0}, []int{3})
	for i := range state {
		if i&(1<<3) == 0 && got[i] != state[i] {
			t.Fatalf("amplitude %d (control clear) was modified", i)
		}
	}
}

func TestApplyControlledPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	state := randomState(6, rng)
	got := make([]complex128, len(state))
	copy(got, state)
	phase := cmplx.Exp(complex(0, 0.9))
	ApplyControlledPhase(got, []int{1, 4}, phase)
	for i := range state {
		want := state[i]
		if i&(1<<1) != 0 && i&(1<<4) != 0 {
			want *= phase
		}
		if cmplx.Abs(got[i]-want) > 1e-13 {
			t.Fatalf("amplitude %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestApplyControlledPanics(t *testing.T) {
	amps := make([]complex128, 16)
	u := gate.H()
	for i, fn := range []func(){
		func() { ApplyControlled(amps, u.Data, []int{0}, []int{0}) },    // overlap
		func() { ApplyControlled(amps, u.Data, []int{0}, []int{9}) },    // range
		func() { ApplyControlled(amps, u.Data, []int{0}, []int{2, 2}) }, // dup
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
