package kernels

import (
	"fmt"
	"sort"

	"qusim/internal/par"
)

// ApplyControlled applies the 2^k × 2^k matrix m to the qubits at sorted
// positions qs, conditioned on every control position being 1. Only the
// 2^(n−c) amplitudes whose control bits are set are touched, so a
// controlled gate costs a 2^c-th of the full kernel sweep — the same
// insight behind the CNOT/CZ specializations of Sec. 3.5, generalized to
// arbitrary controlled unitaries.
//
//qusim:hot
func ApplyControlled(amps []complex128, m []complex128, qs []int, controls []int) {
	checkArgs(len(amps), m, qs)
	if len(controls) == 0 {
		applySpecialized(amps, m, qs)
		return
	}
	ctrlMask := 0
	for _, c := range controls {
		if c < 0 || 1<<c >= len(amps) {
			panic(fmt.Sprintf("kernels: control position %d out of range", c))
		}
		if ctrlMask&(1<<c) != 0 {
			panic(fmt.Sprintf("kernels: duplicate control position %d", c))
		}
		ctrlMask |= 1 << c
	}
	for _, q := range qs {
		if ctrlMask&(1<<q) != 0 {
			panic(fmt.Sprintf("kernels: position %d is both target and control", q))
		}
	}
	k := len(qs)
	dk := 1 << k
	// Enumerate bases with zeros at target positions AND at control
	// positions, then OR the control mask in: the iteration space shrinks
	// by 2^c.
	all := make([]int, 0, k+len(controls))
	all = append(all, qs...)
	all = append(all, controls...)
	sort.Ints(all)
	masks := insertMasks(all)
	offs := offsets(qs)
	outer := len(amps) >> uint(len(all))
	par.For(outer, grain(k), func(lo, hi int) {
		tmp := make([]complex128, dk)
		for t := lo; t < hi; t++ {
			base := expand(t, masks) | ctrlMask
			for x := 0; x < dk; x++ {
				tmp[x] = amps[base+offs[x]]
			}
			for r := 0; r < dk; r++ {
				row := m[r*dk : (r+1)*dk]
				var acc complex128
				for c := 0; c < dk; c++ {
					acc += row[c] * tmp[c]
				}
				amps[base+offs[r]] = acc
			}
		}
	})
}

// ApplyControlledPhase multiplies amplitudes whose bits at all the given
// positions are 1 by the phase — the generalized CZ/CPhase/T-family
// diagonal, executed in one conditional sweep.
//
//qusim:hot
func ApplyControlledPhase(amps []complex128, positions []int, phase complex128) {
	mask := 0
	for _, p := range positions {
		mask |= 1 << p
	}
	par.For(len(amps), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&mask == mask {
				amps[i] *= phase
			}
		}
	})
}
