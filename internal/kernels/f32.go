package kernels

import (
	"fmt"
	"sort"

	"qusim/internal/par"
)

// Single-precision (complex64) kernel suite — the Sec. 5 outlook made
// concrete: every optimization level of the complex128 kernels has an f32
// twin, because halving the bytes per amplitude halves the memory traffic
// that dominates k = 1–2 gates and doubles the qubits that fit in the same
// memory. The variants share the Variant enum, dispatch rules and
// grain/offset helpers with the double-precision path; only the element
// type (and the float32 operand tables of the Split/Generated forms)
// differs.

// checkArgsF32 validates and normalizes single-precision kernel arguments.
func checkArgsF32(n int, m []complex64, qs []int) {
	k := len(qs)
	if len(m) != (1<<k)*(1<<k) {
		panic(fmt.Sprintf("kernels: matrix has %d entries, want %d for k=%d", len(m), (1<<k)*(1<<k), k))
	}
	if !sort.IntsAreSorted(qs) {
		panic("kernels: qubit positions must be sorted ascending")
	}
	for i, q := range qs {
		if q < 0 || 1<<q >= n {
			panic(fmt.Sprintf("kernels: qubit position %d out of range for %d amplitudes", q, n))
		}
		if i > 0 && qs[i-1] == q {
			panic(fmt.Sprintf("kernels: duplicate qubit position %d", q))
		}
	}
}

// ApplyF32 applies the 2^k × 2^k complex64 matrix m (sorted qubit order) to
// the qubits at sorted bit positions qs of the single-precision state amps,
// using the selected variant. The contract mirrors Apply: Naive needs a
// second vector (scratch, or nil to allocate) and returns the buffer holding
// the result; all other variants are in-place and return amps.
func ApplyF32(v Variant, amps []complex64, m []complex64, qs []int, scratch []complex64) []complex64 {
	checkArgsF32(len(amps), m, qs)
	if v == Auto {
		v = SelectedFor(len(qs), StrideClassOf(qs), true)
	}
	switch v {
	case Naive:
		if scratch == nil {
			scratch = make([]complex64, len(amps))
		}
		if len(scratch) != len(amps) {
			panic("kernels: scratch length mismatch")
		}
		applyNaiveF32(scratch, amps, m, qs)
		return scratch
	case InPlace:
		applyInPlaceF32(amps, m, qs)
	case Split:
		applySplitF32(amps, m, qs)
	case Specialized:
		applySpecializedF32(amps, m, qs)
	case Generated:
		applyGeneratedF32(amps, m, qs)
	default:
		panic(fmt.Sprintf("kernels: unknown variant %d", int(v)))
	}
	return amps
}

// ToComplex64 converts a complex128 gate matrix (or diagonal) to the
// complex64 form the f32 kernels consume.
func ToComplex64(m []complex128) []complex64 {
	out := make([]complex64, len(m))
	for i, v := range m {
		out[i] = complex64(v)
	}
	return out
}

// applyNaiveF32 computes dst = (1⊗…⊗U⊗…⊗1)·src with two full vectors, the
// Sec. 3.1 baseline in single precision.
//
//qusim:hot
func applyNaiveF32(dst, src, m []complex64, qs []int) {
	k := len(qs)
	dk := 1 << k
	masks := insertMasks(qs)
	offs := offsets(qs)
	outer := len(src) >> k
	par.For(outer, grain(k), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			base := expand(t, masks)
			for r := 0; r < dk; r++ {
				row := m[r*dk : (r+1)*dk]
				var acc complex64
				for c := 0; c < dk; c++ {
					acc += row[c] * src[base+offs[c]]
				}
				dst[base+offs[r]] = acc
			}
		}
	})
}

// applyInPlaceF32 is optimization step 1 in single precision: gather the
// 2^k amplitudes into a temporary, multiply, scatter back (Sec. 3.2).
//
//qusim:hot
func applyInPlaceF32(amps, m []complex64, qs []int) {
	k := len(qs)
	dk := 1 << k
	masks := insertMasks(qs)
	offs := offsets(qs)
	outer := len(amps) >> k
	par.For(outer, grain(k), func(lo, hi int) {
		tmp := make([]complex64, dk)
		for t := lo; t < hi; t++ {
			base := expand(t, masks)
			for x := 0; x < dk; x++ {
				tmp[x] = amps[base+offs[x]]
			}
			for r := 0; r < dk; r++ {
				row := m[r*dk : (r+1)*dk]
				var acc complex64
				for c := 0; c < dk; c++ {
					acc += row[c] * tmp[c]
				}
				amps[base+offs[r]] = acc
			}
		}
	})
}

// applySplitF32 is optimization steps 2–3 in single precision: the complex
// multiply-accumulate over split real/imaginary float32 operands with the
// (mR,mR)/(−mI,mI) pre-computation of Eq. (2)–(3) and splitBlock-wide
// column blocking (shared with the double-precision kernel).
//
//qusim:hot
func applySplitF32(amps, m []complex64, qs []int) {
	k := len(qs)
	dk := 1 << k
	masks := insertMasks(qs)
	offs := offsets(qs)
	mR := make([]float32, dk*dk)
	mNI := make([]float32, dk*dk) // −imag(m)
	for i, v := range m {
		mR[i] = real(v)
		mNI[i] = -imag(v)
	}
	outer := len(amps) >> k
	bsz := splitBlock
	if bsz > dk {
		bsz = dk
	}
	par.For(outer, grain(k), func(lo, hi int) {
		aR := make([]float32, dk)
		aI := make([]float32, dk)
		oR := make([]float32, dk)
		oI := make([]float32, dk)
		for t := lo; t < hi; t++ {
			base := expand(t, masks)
			for x := 0; x < dk; x++ {
				v := amps[base+offs[x]]
				aR[x] = real(v)
				aI[x] = imag(v)
				oR[x] = 0
				oI[x] = 0
			}
			for b := 0; b < dk; b += bsz {
				be := b + bsz
				if be > dk {
					be = dk
				}
				for r := 0; r < dk; r++ {
					row := r * dk
					accR := oR[r]
					accI := oI[r]
					for c := b; c < be; c++ {
						vr := aR[c]
						vi := aI[c]
						wr := mR[row+c]
						wni := mNI[row+c]
						accR += vr*wr + vi*wni
						accI += vi*wr - vr*wni
					}
					oR[r] = accR
					oI[r] = accI
				}
			}
			for x := 0; x < dk; x++ {
				amps[base+offs[x]] = complex(oR[x], oI[x])
			}
		}
	})
}
