package kernels

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"qusim/internal/gate"
)

// denseApply is the O(4^n) reference: build the full 2^n matrix via Embed
// and multiply it into the state.
func denseApply(amps []complex128, u gate.Matrix, qs []int, n int) []complex128 {
	full := gate.Embed(u, qs, n)
	d := 1 << n
	out := make([]complex128, d)
	for r := 0; r < d; r++ {
		var acc complex128
		for c := 0; c < d; c++ {
			acc += full.Data[r*d+c] * amps[c]
		}
		out[r] = acc
	}
	return out
}

func randomState(n int, rng *rand.Rand) []complex128 {
	amps := make([]complex128, 1<<n)
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range amps {
		amps[i] *= inv
	}
	return amps
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func sortedSubset(n, k int, rng *rand.Rand) []int {
	qs := rng.Perm(n)[:k]
	sort.Ints(qs)
	return qs
}

func TestAllVariantsMatchDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{6, 9} {
		for k := 1; k <= 5; k++ {
			for trial := 0; trial < 4; trial++ {
				u := gate.RandomUnitary(k, rng)
				qs := sortedSubset(n, k, rng)
				state := randomState(n, rng)
				want := denseApply(state, u, qs, n)
				for _, v := range Variants() {
					got := make([]complex128, len(state))
					copy(got, state)
					got = Apply(v, got, u.Data, qs, nil)
					if d := maxDiff(got, want); d > 1e-10 {
						t.Errorf("n=%d k=%d qs=%v variant=%s: max diff %g", n, k, qs, v, d)
					}
				}
			}
		}
	}
}

func TestGenericFallbackK6(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 8
	u := gate.RandomUnitary(6, rng)
	qs := sortedSubset(n, 6, rng)
	state := randomState(n, rng)
	want := denseApply(state, u, qs, n)
	for _, v := range Variants() {
		got := make([]complex128, len(state))
		copy(got, state)
		got = Apply(v, got, u.Data, qs, nil)
		if d := maxDiff(got, want); d > 1e-10 {
			t.Errorf("k=6 variant=%s: max diff %g", v, d)
		}
	}
}

func TestNormPreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(5)
		k := 1 + r.Intn(4)
		if k > n {
			k = n
		}
		u := gate.RandomUnitary(k, r)
		qs := sortedSubset(n, k, r)
		state := randomState(n, r)
		v := Variants()[r.Intn(len(Variants()))]
		out := Apply(v, state, u.Data, qs, nil)
		var norm float64
		for _, a := range out {
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
		return math.Abs(norm-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHighOrderQubits(t *testing.T) {
	// Gates on the highest-order qubits exercise the large power-of-two
	// strides of Sec. 3.3.
	rng := rand.New(rand.NewSource(24))
	n := 10
	for k := 1; k <= 4; k++ {
		qs := make([]int, k)
		for j := range qs {
			qs[j] = n - k + j
		}
		u := gate.RandomUnitary(k, rng)
		state := randomState(n, rng)
		want := denseApply(state, u, qs, n)
		got := make([]complex128, len(state))
		copy(got, state)
		Apply(Specialized, got, u.Data, qs, nil)
		if d := maxDiff(got, want); d > 1e-10 {
			t.Errorf("high-order k=%d: max diff %g", k, d)
		}
	}
}

func TestExpandInsertsZeros(t *testing.T) {
	qs := []int{1, 3}
	masks := insertMasks(qs)
	// n-k = 2 free bits at positions 0 and 2.
	wants := map[int]int{0: 0, 1: 1, 2: 4, 3: 5}
	for t0, want := range wants {
		if got := expand(t0, masks); got != want {
			t.Errorf("expand(%d) = %d, want %d", t0, got, want)
		}
	}
}

func TestOffsets(t *testing.T) {
	offs := offsets([]int{1, 3})
	want := []int{0, 2, 8, 10}
	for i := range want {
		if offs[i] != want[i] {
			t.Errorf("offsets[%d] = %d, want %d", i, offs[i], want[i])
		}
	}
}

func TestApplyDiagonalMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n := 8
	for k := 1; k <= 3; k++ {
		u := gate.RandomDiagonal(k, rng)
		qs := sortedSubset(n, k, rng)
		state := randomState(n, rng)
		want := denseApply(state, u, qs, n)
		got := make([]complex128, len(state))
		copy(got, state)
		ApplyDiagonal(got, u.Diagonal(), qs)
		if d := maxDiff(got, want); d > 1e-10 {
			t.Errorf("k=%d: diagonal kernel max diff %g", k, d)
		}
	}
}

func TestApplyCZMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	n := 7
	state := randomState(n, rng)
	want := denseApply(state, gate.CZ(), []int{2, 5}, n)
	got := make([]complex128, len(state))
	copy(got, state)
	ApplyCZ(got, 2, 5)
	if d := maxDiff(got, want); d > 1e-12 {
		t.Errorf("CZ kernel max diff %g", d)
	}
}

func TestScale(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	state := randomState(5, rng)
	want := make([]complex128, len(state))
	phase := cmplx.Exp(complex(0, 0.77))
	for i := range state {
		want[i] = state[i] * phase
	}
	Scale(state, phase)
	if d := maxDiff(state, want); d > 1e-13 {
		t.Errorf("Scale max diff %g", d)
	}
}

func TestSplitBlockSizesAllCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	n, k := 9, 4
	u := gate.RandomUnitary(k, rng)
	qs := sortedSubset(n, k, rng)
	state := randomState(n, rng)
	want := denseApply(state, u, qs, n)
	old := SetSplitBlock(4)
	defer SetSplitBlock(old)
	for _, b := range []int{1, 2, 3, 4, 8, 16, 32} {
		SetSplitBlock(b)
		got := make([]complex128, len(state))
		copy(got, state)
		Apply(Split, got, u.Data, qs, nil)
		if d := maxDiff(got, want); d > 1e-10 {
			t.Errorf("block=%d: max diff %g", b, d)
		}
	}
}

func TestApplyPanicsOnBadArgs(t *testing.T) {
	amps := make([]complex128, 8)
	u := gate.H()
	for i, fn := range []func(){
		func() { Apply(Specialized, amps, u.Data, []int{3}, nil) },            // out of range
		func() { Apply(Specialized, amps, u.Data, []int{1, 0}, nil) },         // unsorted
		func() { Apply(Specialized, amps, u.Data[:2], []int{0}, nil) },        // short matrix
		func() { Apply(Specialized, amps, gate.CZ().Data, []int{1, 1}, nil) }, // dup
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTuneSelectsSomething(t *testing.T) {
	res := Tune(3, 10, 1)
	// n=10 keeps every position cache-local, so Tune sweeps one qubit set
	// per k, in both precisions.
	want := 3 * 2 * len(Variants())
	if len(res.Timings) != want {
		t.Fatalf("got %d timings, want %d", len(res.Timings), want)
	}
	for k := 1; k <= 3; k++ {
		v := Selected(k)
		// Auto must now resolve to a concrete variant and produce correct
		// results.
		rng := rand.New(rand.NewSource(29))
		u := gate.RandomUnitary(k, rng)
		state := randomState(8, rng)
		qs := sortedSubset(8, k, rng)
		want := denseApply(state, u, qs, 8)
		got := make([]complex128, len(state))
		copy(got, state)
		got = Apply(Auto, got, u.Data, qs, nil)
		if d := maxDiff(got, want); d > 1e-10 {
			t.Errorf("k=%d tuned variant %s: max diff %g", k, v, d)
		}
	}
}

func TestTuneSplitBlockReturnsValid(t *testing.T) {
	b := TuneSplitBlock(3, 10, 1)
	if b < 1 || b > 8 {
		t.Errorf("TuneSplitBlock returned %d", b)
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{Naive: "naive", InPlace: "inplace", Split: "split", Specialized: "specialized", Auto: "auto"}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestSetSelectedOverridesTuner(t *testing.T) {
	old := Selected(2)
	SetSelected(2, InPlace)
	t.Cleanup(func() { SetSelected(2, old) })
	if Selected(2) != InPlace {
		t.Error("SetSelected did not take effect")
	}
	// Unknown k defaults to Specialized.
	if Selected(25) != Specialized {
		t.Errorf("Selected(25) = %v, want specialized default", Selected(25))
	}
}

func TestGrainFloorsAtOne(t *testing.T) {
	if grain(20) != 1 {
		t.Errorf("grain(20) = %d, want 1", grain(20))
	}
	if grain(1) != 2048 {
		t.Errorf("grain(1) = %d, want 2048", grain(1))
	}
}
