package oocvec

import (
	"fmt"

	"qusim/internal/ckpt"
	"qusim/internal/fsio"
	"qusim/internal/schedule"
)

// Checkpointing for the out-of-core backend: the state never fits in
// memory, so snapshots stream chunk by chunk through the vector's one
// in-memory buffer — a sequential read of the backing file into a shard
// writer, and a sequential shard read back into the file on restore. The
// snapshot records L = N (one logical shard covering the whole state), so
// it is independent of the chunk size it was written with: a run may
// resume with a different in-memory budget.

// snapshotMeta is the identity an out-of-core snapshot is saved and
// matched under.
func (v *Vector) snapshotMeta(plan *schedule.Plan) ckpt.Meta {
	return ckpt.Meta{PlanHash: plan.Fingerprint(), N: v.N, L: v.N, Ranks: 1}
}

// Checkpoint commits a snapshot of the current state taken at the
// nextStage boundary, streaming the file through the chunk buffer.
func (v *Vector) Checkpoint(dir string, plan *schedule.Plan, nextStage, keep int) error {
	meta := v.snapshotMeta(plan)
	meta.NextStage = nextStage
	sw, err := ckpt.NewShardWriter(dir, meta, 0, 1<<v.N)
	if err != nil {
		return err
	}
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, v.buf); err != nil {
			sw.Abort()
			return err
		}
		if err := sw.Write(v.buf); err != nil {
			sw.Abort()
			return err
		}
	}
	info, err := sw.Close()
	if err != nil {
		return err
	}
	_, err = ckpt.Commit(dir, meta, []ckpt.ShardInfo{info}, keep)
	return err
}

// Restore streams the snapshot committed in man back into the backing
// file, verifying the shard checksum along the way.
func (v *Vector) Restore(dir string, man *ckpt.Manifest) error {
	if man.N != v.N || man.Ranks != 1 || len(man.Shards) != 1 {
		return fmt.Errorf("oocvec: manifest (n=%d, %d shards) does not fit this vector: %w",
			man.N, len(man.Shards), ckpt.ErrInvalid)
	}
	sr, err := ckpt.OpenShard(dir, man, 0)
	if err != nil {
		return err
	}
	for c := 0; c < v.Chunks(); c++ {
		if err := sr.Read(v.buf); err != nil {
			sr.Close()
			return err
		}
		if err := v.writeChunk(c, v.buf); err != nil {
			sr.Close()
			return err
		}
	}
	return sr.Close()
}

// RunCheckpointed executes the plan with snapshots every pol.Every()
// completed stages. With resume set it first looks for the newest valid
// snapshot of this exact plan in pol.Dir and re-executes only the stages
// past it. It returns the stage the run resumed from (−1 for a fresh
// start) and the number of snapshots committed.
func (v *Vector) RunCheckpointed(plan *schedule.Plan, pol *ckpt.Policy, resume bool) (restoredStage, written int, err error) {
	restoredStage = -1
	if plan.N != v.N || plan.L != v.L {
		return restoredStage, 0, fmt.Errorf("oocvec: plan (n=%d l=%d) does not match vector (n=%d l=%d)", plan.N, plan.L, v.N, v.L)
	}
	start := 0
	if resume {
		man, ferr := ckpt.FindRestorable(pol.Dir, v.snapshotMeta(plan))
		if ferr != nil {
			return restoredStage, 0, ferr
		}
		if man != nil {
			if err := v.Restore(pol.Dir, man); err != nil {
				return restoredStage, 0, err
			}
			start = man.NextStage
			restoredStage = man.NextStage
		}
	}
	every := pol.Every()
	nstages := plan.Stages()
	for s := start; s < nstages; s++ {
		if err := v.runOneStage(plan, s); err != nil {
			return restoredStage, written, err
		}
		// Snapshot at the stage boundary; the end of the final stage is
		// skipped — there is nothing left to resume into.
		if s+1 < nstages && (s+1)%every == 0 {
			cerr := v.Checkpoint(pol.Dir, plan, s+1, pol.KeepN())
			if cerr != nil && fsio.IsNoSpace(cerr) {
				// Out of space: reclaim the oldest snapshot and retry
				// once; if the disk is still full, drop this snapshot and
				// keep computing — a missed checkpoint only means a
				// longer replay if the run later has to restart.
				if ckpt.PruneOldest(pol.Dir) {
					cerr = v.Checkpoint(pol.Dir, plan, s+1, pol.KeepN())
				}
				if cerr != nil && fsio.IsNoSpace(cerr) {
					v.ckptSkipped++
					v.tel.ckptSkipped.Inc()
					ckpt.DiscardStage(pol.Dir, s+1)
					continue
				}
			}
			if cerr != nil {
				return restoredStage, written, cerr
			}
			written++
		}
	}
	return restoredStage, written, nil
}

// runOneStage executes exactly one stage: through the prefetch pipeline
// when armed, reactively op by op otherwise. Both orders apply the same
// per-amplitude operations, so checkpoints taken at the boundary are
// bitwise identical either way.
func (v *Vector) runOneStage(plan *schedule.Plan, s int) error {
	if v.prefetch > 0 {
		return v.runPipelined(plan, s, s+1)
	}
	for i := range plan.Ops {
		if plan.Ops[i].Stage != s {
			continue
		}
		if err := v.ApplyOp(&plan.Ops[i]); err != nil {
			return err
		}
	}
	return nil
}
