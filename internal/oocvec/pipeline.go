package oocvec

import (
	"sync"
	"time"

	"qusim/internal/fsio"
	"qusim/internal/kernels"
	"qusim/internal/schedule"
	"qusim/internal/telemetry"
)

// The circuit-aware prefetch pipeline. The scheduler's chunk access map
// says, before execution, exactly which chunks every stage reads, writes
// and exchanges — so instead of reacting (read chunk, compute, write
// chunk, repeat, once per op), each stage runs as ONE streamed pass whose
// I/O is overlapped with compute:
//
//	reader goroutine:  chunk c+depth … c+1 → pooled buffers (prefetch)
//	caller (compute):  all of the stage's local ops fused on chunk c
//	writeback goroutine: chunk c−1 … → state file, or scattered into the
//	                     swap target when the stage closes with an exchange
//
// Ordering rules: within a stage every chunk is read once and written
// once, at distinct offsets, so reads may run arbitrarily far ahead of
// writes. Across stages no such freedom exists — stage s+1 re-reads what
// stage s wrote — so the pipeline drains completely at every stage
// boundary, and a swap additionally retires the old backing file only
// after its last scattered sub-block landed (the writeback-before-swap
// barrier). Checkpoints ride the same stage boundaries, which keeps
// snapshots bitwise identical to the reactive baseline's.

// chunkBuf is one pooled pipeline buffer: a decoded chunk plus the encoded
// scratch its I/O goes through.
type chunkBuf struct {
	idx  int
	amps []complex128
	raw  []byte
}

// runPipelined executes stages [startStage, endStage) through the prefetch
// pipeline, consulting the (cached) plan access map.
func (v *Vector) runPipelined(plan *schedule.Plan, startStage, endStage int) error {
	access, err := plan.AccessMap()
	if err != nil {
		return err
	}
	hits, misses := schedule.AccessCacheStats()
	v.tel.planHits.Set(hits)
	v.tel.planMisses.Set(misses)
	if endStage > len(access.Stages) {
		endStage = len(access.Stages)
	}
	for s := startStage; s < endStage; s++ {
		if err := v.runStage(plan, &access.Stages[s]); err != nil {
			return err
		}
	}
	return nil
}

// runStage executes one swap-delimited stage as a single fused streamed
// pass with asynchronous prefetch and writeback.
func (v *Vector) runStage(plan *schedule.Plan, sa *schedule.StageAccess) error {
	stream := make([]*schedule.Op, 0, len(sa.StreamOps))
	for _, i := range sa.StreamOps {
		stream = append(stream, &plan.Ops[i])
	}
	var swapOp *schedule.Op
	var bitPos []int
	if sa.Exchanges() {
		swapOp = &plan.Ops[sa.Swap]
		var err error
		if bitPos, err = v.swapGeometry(swapOp); err != nil {
			return err
		}
	}
	if len(stream) == 0 && swapOp == nil {
		return nil
	}

	var out fsio.File
	if swapOp != nil {
		var err error
		if out, err = v.fs.CreateTemp(v.dir, "oocvec-*.swap"); err != nil {
			return err
		}
	}

	t0 := v.tel.sc.Now()
	err := v.pumpStage(stream, swapOp, bitPos, out)
	if err != nil {
		if out != nil {
			out.Close()
			v.fs.Remove(out.Name())
		}
		return err
	}
	if out != nil {
		// Writeback has fully drained (pumpStage joins the writer before
		// returning): the files may swap roles.
		if err := v.adoptSwapFile(out); err != nil {
			return err
		}
	}
	if !t0.IsZero() {
		v.tel.sc.Complete("stage", "pipeline", t0, time.Since(t0),
			telemetry.A("stage", sa.Stage),
			telemetry.A("chunks", v.Chunks()),
			telemetry.A("ops", len(sa.Ops)),
			telemetry.A("stream_ops", len(stream)),
			telemetry.A("qubits", maskPositions(sa.LocalQubitMask)),
			telemetry.A("swap", swapOp != nil))
	}
	return nil
}

// pumpStage runs the reader → compute → writeback pipeline over every
// chunk. On any failure it halts the pipeline, joins both goroutines and
// returns the first error; no goroutine or buffer outlives the call.
func (v *Vector) pumpStage(stream []*schedule.Op, swapOp *schedule.Op, bitPos []int, out fsio.File) error {
	chunks := v.Chunks()
	depth := v.prefetch
	if depth > chunks {
		depth = chunks
	}
	// depth+1 pooled buffers bound the bytes in flight: up to depth chunks
	// prefetched or awaiting writeback while the caller computes one more.
	nbuf := depth + 1
	free := make(chan *chunkBuf, nbuf)
	for i := 0; i < nbuf; i++ {
		free <- &chunkBuf{amps: make([]complex128, 1<<v.L), raw: make([]byte, v.chunkBytes())}
	}
	filled := make(chan *chunkBuf, depth)
	dirty := make(chan *chunkBuf, nbuf)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	cb := int64(v.chunkBytes())
	var readErr, writeErr error // owned by their goroutine until the join
	var wg sync.WaitGroup

	// Prefetch reader: stream chunks into pooled buffers, up to depth
	// ahead of the compute loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(filled)
		for c := 0; c < chunks; c++ {
			var b *chunkBuf
			select {
			case b = <-free:
			case <-stop:
				return
			}
			t0 := v.tel.rdSc.Now()
			if err := readChunkInto(v.f, v.L, c, b.amps, b.raw, v.tel.ioRetries); err != nil {
				readErr = err
				free <- b
				halt()
				return
			}
			if !t0.IsZero() {
				d := time.Since(t0)
				v.tel.readNs.Observe(int64(d))
				v.tel.rdSc.Complete("io", "read", t0, d, telemetry.A("chunk", c))
			}
			v.tel.chunksRead.Inc()
			v.tel.inFlight.Add(cb)
			b.idx = c
			select {
			case filled <- b:
			case <-stop:
				v.tel.inFlight.Add(-cb)
				free <- b
				return
			}
		}
	}()

	// Asynchronous writeback: drain computed chunks into the state file,
	// or scatter their sub-blocks into the swap target.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := range dirty {
			if writeErr != nil {
				v.tel.inFlight.Add(-cb)
				free <- b
				continue // keep draining so the compute loop never blocks
			}
			t0 := v.tel.wrSc.Now()
			var err error
			if swapOp != nil {
				err = scatterChunk(out, v.L, b.idx, bitPos, b.amps, b.raw, v.tel.ioRetries)
			} else {
				err = writeChunkFrom(v.f, v.L, b.idx, b.amps, b.raw, v.tel.ioRetries)
			}
			if err != nil {
				writeErr = err
				halt()
			} else {
				if !t0.IsZero() {
					d := time.Since(t0)
					v.tel.writeNs.Observe(int64(d))
					v.tel.wrSc.Complete("io", "write", t0, d, telemetry.A("chunk", b.idx))
				}
				v.tel.chunksWritten.Inc()
			}
			v.tel.inFlight.Add(-cb)
			free <- b
		}
	}()

	// Compute loop: apply the stage's fused op list to each chunk as it
	// arrives. A chunk already buffered when we ask for it is a prefetch
	// hit — I/O fully hidden behind the previous chunk's compute.
	for done := 0; done < chunks; done++ {
		var b *chunkBuf
		select {
		case b = <-filled:
			v.tel.hits.Inc()
		default:
			v.tel.misses.Inc()
			b = <-filled
		}
		if b == nil {
			break // reader halted early; the join below surfaces its error
		}
		v.applyChunkOps(b.idx, b.amps, stream, swapOp)
		dirty <- b
	}
	close(dirty)
	wg.Wait()
	if readErr != nil {
		return readErr
	}
	return writeErr
}

// applyChunkOps applies the stage's streamed ops — and a closing swap's
// fused pre-permutation — to one chunk, in execution order. The per-op
// math is byte-for-byte the reactive path's (see applyOp /
// applyDiagonalChunk), so pipelined and reactive runs are bitwise
// identical.
func (v *Vector) applyChunkOps(c int, amps []complex128, stream []*schedule.Op, swapOp *schedule.Op) {
	for _, op := range stream {
		switch op.Kind {
		case schedule.OpCluster:
			kernels.Apply(kernels.Specialized, amps, op.Matrix.Data, op.Positions, nil)
		case schedule.OpDiagonal:
			applyDiagonalChunk(op, c, v.L, amps)
		case schedule.OpLocalPerm:
			permuteBits(amps, v.L, op.Perm)
		}
	}
	if swapOp != nil && swapOp.Perm != nil {
		permuteBits(amps, v.L, swapOp.Perm)
	}
}

// maskPositions expands a qubit bitmask into the sorted position list used
// in trace annotations.
func maskPositions(mask uint64) []int {
	var out []int
	for b := 0; mask != 0; b, mask = b+1, mask>>1 {
		if mask&1 != 0 {
			out = append(out, b)
		}
	}
	return out
}
