package oocvec

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"qusim/internal/ckpt"
	"qusim/internal/telemetry"
)

// TestPipelineMatchesReactiveBitwise is the core pipeline guarantee: every
// prefetch depth — shallow, deeper than the chunk count, anything — must
// produce amplitudes bitwise identical to the reactive depth-0 baseline,
// because the fused stage pass applies exactly the same per-amplitude
// operations in the same order.
func TestPipelineMatchesReactiveBitwise(t *testing.T) {
	n, l := 12, 6 // 64 chunks, multi-swap plan
	_, plan := buildPlan(t, n, l, 16, 5)
	if plan.Stats.Swaps < 2 {
		t.Fatalf("want a multi-swap plan, got %d swaps", plan.Stats.Swaps)
	}
	ref := oocAmps(t, n, l, func(v *Vector) error { return v.Run(plan) })
	for _, depth := range []int{1, 2, 3, 8, 1 << (n - l), 1<<(n-l) + 7} {
		got := oocAmps(t, n, l, func(v *Vector) error {
			v.SetPrefetch(depth)
			return v.Run(plan)
		})
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("depth %d: amplitude %d differs: %v vs %v", depth, i, ref[i], got[i])
			}
		}
	}
}

// TestPipelineCheckpointResumeBitwise proves checkpoint/restore stays
// bitwise identical under the new execution order: a pipelined
// checkpointed run, a reactive clean run, and a pipelined resumed run must
// all agree exactly.
func TestPipelineCheckpointResumeBitwise(t *testing.T) {
	n, l := 10, 6
	_, plan := buildPlan(t, n, l, 16, 4)
	if plan.Stages() < 2 {
		t.Fatalf("plan has %d stages; the scenario needs at least 2", plan.Stages())
	}
	clean := oocAmps(t, n, l, func(v *Vector) error { return v.Run(plan) })

	dir := t.TempDir()
	pol := &ckpt.Policy{Dir: dir}
	first := oocAmps(t, n, l, func(v *Vector) error {
		v.SetPrefetch(3)
		restored, written, err := v.RunCheckpointed(plan, pol, false)
		if err != nil {
			return err
		}
		if restored != -1 {
			t.Errorf("fresh run restored from stage %d", restored)
		}
		if written == 0 {
			t.Error("no snapshots committed")
		}
		return nil
	})
	for i := range clean {
		if clean[i] != first[i] {
			t.Fatalf("pipelined checkpointed run diverged at amplitude %d", i)
		}
	}

	resumed := oocAmps(t, n, l, func(v *Vector) error {
		v.SetPrefetch(2)
		restored, _, err := v.RunCheckpointed(plan, pol, true)
		if err != nil {
			return err
		}
		if restored < 0 {
			t.Error("resume found no snapshot")
		}
		return nil
	})
	for i := range clean {
		if clean[i] != resumed[i] {
			t.Fatalf("pipelined resumed run diverged at amplitude %d", i)
		}
	}
}

// awaitGoroutineBaseline waits for the process goroutine count to settle
// back to the pre-run baseline — a leaked reader or writeback goroutine
// keeps the count elevated and fails the assertion with a stack dump.
func awaitGoroutineBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertOnlyBackingFile fails if dir holds anything besides the vector's
// backing state file — a leftover *.swap temp is a pipeline cleanup bug.
func assertOnlyBackingFile(t *testing.T, dir string, when string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".state") {
			t.Fatalf("%s leaked temp file %s", when, e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("%s: want exactly the backing file in %s, have %d entries", when, dir, len(entries))
	}
}

// TestPipelineFaultInjection errors reads and writes mid-prefetch — in
// streamed stages and in the scattered swap writeback — and asserts clean
// shutdown every time: the error surfaces, no goroutine outlives Run, no
// swap temp file is leaked, and Close still succeeds.
func TestPipelineFaultInjection(t *testing.T) {
	n, l := 10, 5 // 32 chunks
	_, plan := buildPlan(t, n, l, 16, 8)
	if plan.Stats.Swaps < 1 {
		t.Fatalf("want a swap in the plan, got %d", plan.Stats.Swaps)
	}
	defer func() { readHook, writeHook = nil, nil }()

	// Warm up once so shared pools (par workers) are at steady state
	// before the goroutine baseline is captured.
	warm := t.TempDir()
	{
		v, err := NewUniform(n, l, warm)
		if err != nil {
			t.Fatal(err)
		}
		v.SetPrefetch(4)
		if err := v.Run(plan); err != nil {
			t.Fatal(err)
		}
		v.Close()
	}

	type scenario struct {
		name string
		arm  func(fail *int32)
	}
	scenarios := []scenario{
		{"read", func(calls *int32) {
			readHook = func(chunk int) error {
				*calls++
				if *calls > 40 { // past init reads, mid-run
					return fmt.Errorf("injected read failure at chunk %d", chunk)
				}
				return nil
			}
		}},
		{"write", func(calls *int32) {
			writeHook = func(chunk int) error {
				*calls++
				if *calls > 70 { // past the 2×32 constructor writes, mid-run
					return fmt.Errorf("injected write failure at chunk %d", chunk)
				}
				return nil
			}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			dir := t.TempDir()
			var calls int32
			sc.arm(&calls)
			v, err := NewUniform(n, l, dir)
			if err != nil {
				t.Fatalf("constructor tripped the failpoint before the run: %v", err)
			}
			v.SetPrefetch(4)
			runErr := v.Run(plan)
			readHook, writeHook = nil, nil
			if runErr == nil {
				t.Fatal("injected fault did not surface from Run")
			}
			if !strings.Contains(runErr.Error(), "injected") {
				t.Fatalf("unexpected error: %v", runErr)
			}
			awaitGoroutineBaseline(t, base)
			assertOnlyBackingFile(t, dir, "failed pipelined run")
			if err := v.Close(); err != nil {
				t.Fatalf("Close after failed run: %v", err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 0 {
				t.Fatalf("Close left %d entries behind", len(entries))
			}
		})
	}
}

// TestPipelineTelemetry checks the pipeline's observability contract: the
// prefetch hit/miss counters account for every chunk of every stage pass,
// chunk read/write counters move, spans land on the engine and I/O
// timelines, and bytes-in-flight returns to zero once the run drains.
func TestPipelineTelemetry(t *testing.T) {
	n, l := 10, 6
	_, plan := buildPlan(t, n, l, 14, 9)
	tel := telemetry.New()
	v, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	v.SetPrefetch(3)
	v.SetTelemetry(tel)
	if err := v.Run(plan); err != nil {
		t.Fatal(err)
	}
	reg := tel.Registry()
	hits := reg.Counter("oocvec.prefetch_hits").Value()
	misses := reg.Counter("oocvec.prefetch_misses").Value()
	read := reg.Counter("oocvec.chunks_read").Value()
	written := reg.Counter("oocvec.chunks_written").Value()
	if hits+misses == 0 {
		t.Fatal("no prefetch hit/miss accounting recorded")
	}
	if hits+misses != read {
		t.Errorf("hits+misses = %d, want the %d chunks read", hits+misses, read)
	}
	if read != written {
		t.Errorf("chunks read %d != chunks written %d", read, written)
	}
	access, err := plan.AccessMap()
	if err != nil {
		t.Fatal(err)
	}
	wantChunks := int64(0)
	for i := range access.Stages {
		sa := &access.Stages[i]
		if len(sa.StreamOps) > 0 || sa.Exchanges() {
			wantChunks += int64(v.Chunks())
		}
	}
	if read != wantChunks {
		t.Errorf("chunks read %d, access map predicts %d", read, wantChunks)
	}
	if got := reg.Gauge("oocvec.bytes_in_flight").Value(); got != 0 {
		t.Errorf("bytes in flight %d after drain, want 0", got)
	}
	if tel.SpanCount() == 0 {
		t.Error("no spans recorded")
	}
}

// TestReactiveSpanParity checks satellite parity with the dist engine: the
// reactive path's op spans use the same category/name scheme ("stage" /
// op kind) and the shared schedule.OpTraceArgs annotations, so traces from
// the two backends are directly comparable.
func TestReactiveSpanParity(t *testing.T) {
	n, l := 10, 6
	_, plan := buildPlan(t, n, l, 14, 9)
	tel := telemetry.New()
	v, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	v.SetTelemetry(tel)
	if err := v.Run(plan); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tel.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	trace := sb.String()
	for _, want := range []string{
		`"name":"cluster"`, `"name":"swap"`, // op-kind span names, as in dist
		`"cat":"stage"`,
		`"stage":0`, `"chunks":`, `"pos":`, // qubit set + chunk count args
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	if kinds := len(plan.Ops); tel.SpanCount() < kinds {
		t.Errorf("only %d spans for %d ops", tel.SpanCount(), kinds)
	}
}

// TestPrefetchClamp covers the degenerate depths.
func TestPrefetchClamp(t *testing.T) {
	v, err := New(8, 5, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	v.SetPrefetch(-3)
	if v.Prefetch() != 0 {
		t.Errorf("negative depth not clamped: %d", v.Prefetch())
	}
	v.SetPrefetch(7)
	if v.Prefetch() != 7 {
		t.Errorf("Prefetch() = %d, want 7", v.Prefetch())
	}
	// A mismatched plan must be rejected before any pipeline spins up.
	_, plan := buildPlanHelper(t)
	if err := v.Run(plan); err == nil {
		t.Error("mismatched plan accepted by pipelined Run")
	}
}
