package oocvec

import (
	"math"
	"os"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
)

func TestManySwapsSmallChunks(t *testing.T) {
	// A small chunk size forces several file transposes per circuit.
	n, l := 12, 5
	circ, plan := buildPlan(t, n, l, 16, 8)
	if plan.Stats.Swaps < 2 {
		t.Fatalf("want a multi-swap plan, got %d swaps", plan.Stats.Swaps)
	}
	ooc, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	if err := ooc.Run(plan); err != nil {
		t.Fatal(err)
	}
	want := statevec.NewUniform(n)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		want.Apply(g.Matrix(), g.Qubits...)
	}
	ent, err := ooc.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ent-want.Entropy()) > 1e-9 {
		t.Errorf("entropy %v, want %v (swaps=%d)", ent, want.Entropy(), plan.Stats.Swaps)
	}
}

func TestCloseRemovesBackingFile(t *testing.T) {
	v, err := New(8, 4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	name := v.f.Name()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Errorf("backing file %s still exists after Close", name)
	}
}

func TestUniformInitProperties(t *testing.T) {
	v, err := NewUniform(9, 5, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	norm, err := v.Norm()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-1) > 1e-12 {
		t.Errorf("uniform norm %v", norm)
	}
	ent, err := v.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ent-9*math.Ln2) > 1e-12 {
		t.Errorf("uniform entropy %v", ent)
	}
	amps, err := v.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}
	want := complex(math.Pow(2, -4.5), 0)
	for i, a := range amps {
		if a != want {
			t.Fatalf("amp[%d] = %v, want %v", i, a, want)
		}
	}
}

func TestApplyOpRejectsUnknownKind(t *testing.T) {
	v, err := New(6, 3, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	bad := schedule.Op{Kind: schedule.OpKind(99)}
	if err := v.ApplyOp(&bad); err == nil {
		t.Error("unknown op kind accepted")
	}
}

func BenchmarkOutOfCoreVsInMemory(b *testing.B) {
	n, l := 16, 10
	rows, cols := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{
		Rows: rows, Cols: cols, Depth: 16, Seed: 8, SkipInitialH: true,
	})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(l))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("outofcore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, err := NewUniform(n, l, b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if err := v.Run(plan); err != nil {
				b.Fatal(err)
			}
			v.Close()
		}
	})
	b.Run("inmemory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := statevec.NewUniform(n)
			for j := range circ.Gates {
				g := &circ.Gates[j]
				v.Apply(g.Matrix(), g.Qubits...)
			}
		}
	})
}
