// Package oocvec implements an out-of-core (file-backed) state vector —
// the Sec. 5 outlook of Häner & Steiger, SC'17: because the scheduled
// circuits need only two all-to-alls, "the low amount of communication may
// allow the use of, e.g., solid-state drives" for states larger than
// memory (8 PB for 49 qubits).
//
// The file is divided into 2^g chunks of 2^l amplitudes; chunk-index bits
// play the role of the global qubits. Gates on in-chunk positions stream
// chunk by chunk (one sequential read + write pass); diagonal gates on
// chunk bits specialize exactly like global gates; and the global-to-local
// swap is the file analogue of the all-to-all: a block-transposing copy
// into a second file.
package oocvec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"qusim/internal/kernels"
	"qusim/internal/schedule"
)

// Vector is an n-qubit state stored in a file, processed in 2^l-amplitude
// chunks.
type Vector struct {
	N int // total qubits
	L int // in-memory chunk holds 2^L amplitudes

	f   *os.File
	buf []complex128 // one chunk
}

const ampBytes = 16

// New creates a file-backed |0…0⟩ state in dir (empty dir means the
// default temp dir). l controls the in-memory chunk size.
func New(n, l int, dir string) (*Vector, error) {
	if l >= n {
		return nil, fmt.Errorf("oocvec: chunk qubits l=%d must be < n=%d", l, n)
	}
	if l < 1 || n > 40 {
		return nil, fmt.Errorf("oocvec: unsupported sizes n=%d l=%d", n, l)
	}
	f, err := os.CreateTemp(dir, "oocvec-*.state")
	if err != nil {
		return nil, err
	}
	v := &Vector{N: n, L: l, f: f, buf: make([]complex128, 1<<l)}
	// Initialize to zero; first chunk carries amplitude 1 at index 0.
	for c := 0; c < v.Chunks(); c++ {
		for i := range v.buf {
			v.buf[i] = 0
		}
		if c == 0 {
			v.buf[0] = 1
		}
		if err := v.writeChunk(c, v.buf); err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, err
		}
	}
	return v, nil
}

// NewUniform creates the uniform superposition.
func NewUniform(n, l int, dir string) (*Vector, error) {
	v, err := New(n, l, dir)
	if err != nil {
		return nil, err
	}
	a := complex(math.Pow(2, -float64(n)/2), 0)
	for i := range v.buf {
		v.buf[i] = a
	}
	for c := 0; c < v.Chunks(); c++ {
		if err := v.writeChunk(c, v.buf); err != nil {
			v.Close()
			return nil, err
		}
	}
	return v, nil
}

// Close removes the backing file.
func (v *Vector) Close() error {
	name := v.f.Name()
	err := v.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}

// Chunks returns the number of file chunks, 2^(N−L).
func (v *Vector) Chunks() int { return 1 << (v.N - v.L) }

func (v *Vector) readChunk(c int, dst []complex128) error {
	off := int64(c) << uint(v.L) * ampBytes
	if _, err := v.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	return binary.Read(v.f, binary.LittleEndian, dst)
}

// writeHook, when non-nil, can fail a chunk write before it reaches the
// file — the test failpoint proving every constructor error path removes
// its temp file instead of leaking it.
var writeHook func(chunk int) error

func (v *Vector) writeChunk(c int, src []complex128) error {
	if writeHook != nil {
		if err := writeHook(c); err != nil {
			return err
		}
	}
	off := int64(c) << uint(v.L) * ampBytes
	if _, err := v.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	return binary.Write(v.f, binary.LittleEndian, src)
}

// ApplyOp executes one plan op. Cluster positions must be below L (the
// scheduler guarantees this when built with LocalQubits = L); diagonal ops
// may touch chunk-index positions; OpSwap exchanges the top in-chunk
// positions with chunk-index positions; OpLocalPerm permutes in-chunk
// positions.
func (v *Vector) ApplyOp(op *schedule.Op) error {
	switch op.Kind {
	case schedule.OpCluster:
		return v.streamChunks(func(c int, amps []complex128) {
			kernels.Apply(kernels.Specialized, amps, op.Matrix.Data, op.Positions, nil)
		})
	case schedule.OpDiagonal:
		nl := 0
		for nl < len(op.Positions) && op.Positions[nl] < v.L {
			nl++
		}
		return v.streamChunks(func(c int, amps []complex128) {
			gbits := 0
			for j := nl; j < len(op.Positions); j++ {
				if c&(1<<(op.Positions[j]-v.L)) != 0 {
					gbits |= 1 << (j - nl)
				}
			}
			if nl == 0 {
				kernels.Scale(amps, op.Diag[gbits])
				return
			}
			kernels.ApplyDiagonal(amps, op.Diag[gbits<<nl:(gbits+1)<<nl], op.Positions[:nl])
		})
	case schedule.OpLocalPerm:
		return v.streamChunks(func(c int, amps []complex128) {
			permuteBits(amps, v.L, op.Perm)
		})
	case schedule.OpSwap:
		if op.Perm != nil {
			// Fused local permutation: one streamed pass ahead of the
			// block exchange (the in-memory engine folds this into the
			// all-to-all; here it rides the chunk stream).
			if err := v.streamChunks(func(c int, amps []complex128) {
				permuteBits(amps, v.L, op.Perm)
			}); err != nil {
				return err
			}
		}
		return v.swap(op)
	}
	return fmt.Errorf("oocvec: unknown op kind %v", op.Kind)
}

// streamChunks runs fn over every chunk with one sequential read+write
// pass — the access pattern that makes SSD-backed state practical.
func (v *Vector) streamChunks(fn func(chunk int, amps []complex128)) error {
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, v.buf); err != nil {
			return err
		}
		fn(c, v.buf)
		if err := v.writeChunk(c, v.buf); err != nil {
			return err
		}
	}
	return nil
}

// swap is the file analogue of the group all-to-all: in-chunk positions
// [L−q, L) are exchanged with the chunk-index positions in op.GlobalPos.
// Sub-blocks are copied through a second file, then the files swap roles.
func (v *Vector) swap(op *schedule.Op) error {
	q := len(op.LocalPos)
	for j, p := range op.LocalPos {
		if p != v.L-q+j {
			return fmt.Errorf("oocvec: swap local positions %v are not the top %d in-chunk locations", op.LocalPos, q)
		}
	}
	bitPos := make([]int, q) // chunk-index bit for each swapped position
	for j, p := range op.GlobalPos {
		bitPos[j] = p - v.L
	}
	out, err := os.CreateTemp("", "oocvec-*.swap")
	if err != nil {
		return err
	}
	sub := len(v.buf) >> q // sub-block length
	block := make([]complex128, sub)
	// Destination chunk d receives, as its m-th sub-block, the d-bits
	// sub-block of the source chunk that has member index m.
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, v.buf); err != nil {
			out.Close()
			os.Remove(out.Name())
			return err
		}
		// Member index of chunk c within its group.
		m := 0
		for t, b := range bitPos {
			if c&(1<<b) != 0 {
				m |= 1 << t
			}
		}
		for j := 0; j < 1<<q; j++ {
			// Sub-block j of chunk c goes to the group member with index
			// j, landing at sub-block m.
			dst := c
			for t, b := range bitPos {
				dst &^= 1 << b
				if j&(1<<t) != 0 {
					dst |= 1 << b
				}
			}
			copy(block, v.buf[j*sub:(j+1)*sub])
			off := (int64(dst)<<uint(v.L) + int64(m)*int64(sub)) * ampBytes
			if _, err := out.Seek(off, io.SeekStart); err != nil {
				out.Close()
				os.Remove(out.Name())
				return err
			}
			if err := binary.Write(out, binary.LittleEndian, block); err != nil {
				out.Close()
				os.Remove(out.Name())
				return err
			}
		}
	}
	old := v.f
	v.f = out
	name := old.Name()
	old.Close()
	return os.Remove(name)
}

// Run executes a full plan built with LocalQubits = L.
func (v *Vector) Run(plan *schedule.Plan) error {
	return v.RunFrom(plan, 0)
}

// RunFrom executes only the ops with Stage ≥ startStage — the resume path
// after Restore loaded a snapshot taken at that stage boundary.
func (v *Vector) RunFrom(plan *schedule.Plan, startStage int) error {
	if plan.N != v.N || plan.L != v.L {
		return fmt.Errorf("oocvec: plan (n=%d l=%d) does not match vector (n=%d l=%d)", plan.N, plan.L, v.N, v.L)
	}
	for i := range plan.Ops {
		if plan.Ops[i].Stage < startStage {
			continue
		}
		if err := v.ApplyOp(&plan.Ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// Norm returns Σ|α|² by streaming the file.
func (v *Vector) Norm() (float64, error) {
	var s float64
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, v.buf); err != nil {
			return 0, err
		}
		for _, a := range v.buf {
			s += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return s, nil
}

// Entropy returns the output distribution's Shannon entropy in nats.
func (v *Vector) Entropy() (float64, error) {
	var s float64
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, v.buf); err != nil {
			return 0, err
		}
		for _, a := range v.buf {
			p := real(a)*real(a) + imag(a)*imag(a)
			if p > 0 {
				s -= p * math.Log(p)
			}
		}
	}
	return s, nil
}

// Amplitudes loads the full state (testing only).
func (v *Vector) Amplitudes() ([]complex128, error) {
	out := make([]complex128, 1<<v.N)
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, out[c<<uint(v.L):(c+1)<<uint(v.L)]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// permuteBits relabels in-chunk bit p to perm[p] (same algorithm as
// statevec.PermuteBits, on a raw slice).
func permuteBits(amps []complex128, n int, perm []int) {
	cur := make([]int, n)
	loc := make([]int, n)
	for i := range cur {
		cur[i] = i
		loc[i] = i
	}
	for p := 0; p < n; p++ {
		want := perm[p]
		have := cur[p]
		if have == want {
			continue
		}
		swapBits(amps, have, want)
		other := loc[want]
		cur[p], cur[other] = want, have
		loc[have], loc[want] = other, p
	}
}

func swapBits(amps []complex128, a, b int) {
	if a > b {
		a, b = b, a
	}
	maskA := 1<<a - 1
	maskB := 1<<b - 1
	sa, sb := 1<<a, 1<<b
	for t := 0; t < len(amps)>>2; t++ {
		base := ((t &^ maskA) << 1) | (t & maskA)
		base = ((base &^ maskB) << 1) | (base & maskB)
		i01 := base | sa
		i10 := base | sb
		amps[i01], amps[i10] = amps[i10], amps[i01]
	}
}
