// Package oocvec implements an out-of-core (file-backed) state vector —
// the Sec. 5 outlook of Häner & Steiger, SC'17: because the scheduled
// circuits need only two all-to-alls, "the low amount of communication may
// allow the use of, e.g., solid-state drives" for states larger than
// memory (8 PB for 49 qubits).
//
// The file is divided into 2^g chunks of 2^l amplitudes; chunk-index bits
// play the role of the global qubits. Gates on in-chunk positions stream
// chunk by chunk (one sequential read + write pass); diagonal gates on
// chunk bits specialize exactly like global gates; and the global-to-local
// swap is the file analogue of the all-to-all: a block-transposing copy
// into a second file.
//
// Execution is circuit-aware: the scheduler's per-stage chunk access map
// (schedule.AccessMap) tells the engine, before any I/O happens, exactly
// which chunks every upcoming stage reads, writes and exchanges. With a
// prefetch depth armed (SetPrefetch), Run fuses each stage's local ops
// into a single streamed pass and overlaps it with asynchronous
// prefetch/writeback (pipeline.go); at depth 0 it falls back to the
// reactive one-pass-per-op baseline. Both paths are bitwise identical.
package oocvec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"qusim/internal/fsio"
	"qusim/internal/kernels"
	"qusim/internal/par"
	"qusim/internal/schedule"
	"qusim/internal/telemetry"
)

// Vector is an n-qubit state stored in a file, processed in 2^l-amplitude
// chunks.
type Vector struct {
	N int // total qubits
	L int // in-memory chunk holds 2^L amplitudes

	fs   fsio.FS      // file-ops seam, captured from the package hook at New
	f    fsio.File    // backing file
	path string       // backing file path; stable across swap adoptions
	dir  string       // directory holding the backing and swap files
	buf  []complex128 // one chunk (reactive path / streaming helpers)
	raw  []byte       // encoded form of one chunk, reused across I/O calls

	prefetch    int // chunks read ahead of the compute loop; 0 = reactive
	ckptSkipped int // checkpoints skipped on persistent ENOSPC (ckpt.go)
	tel         vecTel
}

const ampBytes = 16

// fsPtr holds the injectable file-ops implementation (nil: the real OS).
// A Vector captures it at New, so an installed chaos FS follows the vector
// through its whole life, including the pipeline's reader and writeback
// goroutines.
var fsPtr atomic.Pointer[fsio.FS]

func fsys() fsio.FS {
	if p := fsPtr.Load(); p != nil {
		return *p
	}
	return fsio.OS{}
}

// SetFS installs the file-ops implementation new Vectors run on (nil
// restores the real OS) and returns the previous one, so tests can
// `old := oocvec.SetFS(f); t.Cleanup(func() { oocvec.SetFS(old) })`.
// Vectors that already exist keep the FS they were created with.
func SetFS(f fsio.FS) fsio.FS {
	old := fsys()
	if f == nil {
		fsPtr.Store(nil)
	} else {
		fsPtr.Store(&f)
	}
	return old
}

// New creates a file-backed |0…0⟩ state in dir (empty dir means the
// default temp dir). l controls the in-memory chunk size.
func New(n, l int, dir string) (*Vector, error) {
	if l >= n {
		return nil, fmt.Errorf("oocvec: chunk qubits l=%d must be < n=%d", l, n)
	}
	if l < 1 || n > 40 {
		return nil, fmt.Errorf("oocvec: unsupported sizes n=%d l=%d", n, l)
	}
	fs := fsys()
	f, err := fs.CreateTemp(dir, "oocvec-*.state")
	if err != nil {
		return nil, err
	}
	v := &Vector{N: n, L: l, fs: fs, f: f, path: f.Name(), dir: dir,
		buf: make([]complex128, 1<<l), raw: make([]byte, ampBytes<<l)}
	// Initialize to zero; first chunk carries amplitude 1 at index 0.
	for c := 0; c < v.Chunks(); c++ {
		for i := range v.buf {
			v.buf[i] = 0
		}
		if c == 0 {
			v.buf[0] = 1
		}
		if err := v.writeChunk(c, v.buf); err != nil {
			f.Close()
			fs.Remove(f.Name())
			return nil, err
		}
	}
	return v, nil
}

// NewUniform creates the uniform superposition.
func NewUniform(n, l int, dir string) (*Vector, error) {
	v, err := New(n, l, dir)
	if err != nil {
		return nil, err
	}
	a := complex(math.Pow(2, -float64(n)/2), 0)
	for i := range v.buf {
		v.buf[i] = a
	}
	for c := 0; c < v.Chunks(); c++ {
		if err := v.writeChunk(c, v.buf); err != nil {
			v.Close()
			return nil, err
		}
	}
	return v, nil
}

// SetPrefetch arms the prefetch pipeline: Run and RunFrom will execute
// each stage as one fused streamed pass with depth chunks read ahead of
// the compute loop and writeback drained asynchronously. Depth 0 (the
// default) keeps the reactive one-pass-per-op baseline. Negative depths
// clamp to 0.
func (v *Vector) SetPrefetch(depth int) {
	if depth < 0 {
		depth = 0
	}
	v.prefetch = depth
}

// Prefetch returns the armed prefetch depth.
func (v *Vector) Prefetch() int { return v.prefetch }

// vecTel caches the vector's telemetry handles (all nil-safe when
// disarmed): the engine/reader/writeback timelines plus the prefetch and
// I/O metrics the pipeline updates per chunk.
type vecTel struct {
	sc   *telemetry.Scope // tid 0: compute loop, op/stage spans
	rdSc *telemetry.Scope // tid 1: prefetch reader
	wrSc *telemetry.Scope // tid 2: asynchronous writeback

	hits, misses  *telemetry.Counter // prefetch hit = chunk ready when asked
	chunksRead    *telemetry.Counter
	chunksWritten *telemetry.Counter
	ioRetries     *telemetry.Counter // transient chunk-I/O errors retried
	ckptSkipped   *telemetry.Counter // snapshots skipped on persistent ENOSPC
	planHits      *telemetry.Gauge   // cumulative plan-analysis cache hits
	planMisses    *telemetry.Gauge
	inFlight      *telemetry.Gauge // bytes held in pipeline buffers
	readNs        *telemetry.Histogram
	writeNs       *telemetry.Histogram
}

// SetTelemetry arms (or, with nil / telemetry.Disabled, disarms) the
// vector's instrumentation: op and stage spans on the engine timeline,
// prefetch-reader and writeback span rows whose overlap with compute is
// directly visible in the trace, and the oocvec.* counters.
func (v *Vector) SetTelemetry(t *telemetry.Telemetry) {
	if !t.Enabled() {
		v.tel = vecTel{}
		return
	}
	v.tel = vecTel{
		sc:            t.Scope(telemetry.OocPID, 0, "oocvec", "engine"),
		rdSc:          t.Scope(telemetry.OocPID, 1, "oocvec", "prefetch reader"),
		wrSc:          t.Scope(telemetry.OocPID, 2, "oocvec", "writeback"),
		hits:          t.Counter("oocvec.prefetch_hits"),
		misses:        t.Counter("oocvec.prefetch_misses"),
		chunksRead:    t.Counter("oocvec.chunks_read"),
		chunksWritten: t.Counter("oocvec.chunks_written"),
		ioRetries:     t.Counter("oocvec.io_retries"),
		ckptSkipped:   t.Counter("oocvec.ckpt_skipped"),
		planHits:      t.Gauge("oocvec.plan_cache_hits"),
		planMisses:    t.Gauge("oocvec.plan_cache_misses"),
		inFlight:      t.Gauge("oocvec.bytes_in_flight"),
		readNs:        t.Histogram("oocvec.read_ns"),
		writeNs:       t.Histogram("oocvec.write_ns"),
	}
}

// Close removes the backing file.
func (v *Vector) Close() error {
	err := v.f.Close()
	if rmErr := v.fs.Remove(v.path); err == nil {
		err = rmErr
	}
	return err
}

// CheckpointsSkipped reports how many periodic snapshots RunCheckpointed
// dropped because the disk stayed full after pruning — the graceful-
// degradation path: the run continues, it just restarts from further back
// if it later has to.
func (v *Vector) CheckpointsSkipped() int { return v.ckptSkipped }

// Chunks returns the number of file chunks, 2^(N−L).
func (v *Vector) Chunks() int { return 1 << (v.N - v.L) }

// chunkBytes returns the encoded size of one chunk.
func (v *Vector) chunkBytes() int { return ampBytes << v.L }

// decodeChunk fills amps from the little-endian encoding in raw — the
// byte-moving inner loop of every prefetch read, parallelized over the
// worker pool like the kernel sweeps it feeds.
//
//qusim:hot
func decodeChunk(raw []byte, amps []complex128) {
	par.For(len(amps), 1<<13, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*ampBytes:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*ampBytes+8:]))
			amps[i] = complex(re, im)
		}
	})
}

// encodeChunk is the writeback inverse of decodeChunk.
//
//qusim:hot
func encodeChunk(amps []complex128, raw []byte) {
	par.For(len(amps), 1<<13, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint64(raw[i*ampBytes:], math.Float64bits(real(amps[i])))
			binary.LittleEndian.PutUint64(raw[i*ampBytes+8:], math.Float64bits(imag(amps[i])))
		}
	})
}

// readHook and writeHook, when non-nil, can fail a chunk read/write before
// it reaches the file — the test failpoints proving every error path
// (constructor loops, the reactive stream, and a mid-flight prefetch
// pipeline) shuts down cleanly: no leaked goroutines, no leaked temp
// files, Close still succeeding.
var (
	readHook  func(chunk int) error
	writeHook func(chunk int) error
)

// Transient chunk-I/O errors (EINTR/EAGAIN-class, fsio.IsTransient) are
// retried in place with bounded exponential backoff rather than aborting a
// multi-hour streamed pass: ioRetryAttempts total tries, sleeping
// ioRetryBase, 2·ioRetryBase, … between them.
const (
	ioRetryAttempts = 3
	ioRetryBase     = 250 * time.Microsecond
)

// retryIO runs op, retrying transient failures. Each retry bumps the
// (nil-safe) counter; a window that outlasts every attempt surfaces the
// last error, still marked transient so callers can degrade further.
func retryIO(retries *telemetry.Counter, op func() error) error {
	var err error
	for a := 0; a < ioRetryAttempts; a++ {
		if a > 0 {
			retries.Inc()
			time.Sleep(ioRetryBase << uint(a-1))
		}
		if err = op(); err == nil || !fsio.IsTransient(err) {
			return err
		}
	}
	return fmt.Errorf("oocvec: transient i/o persisted through %d attempts: %w", ioRetryAttempts, err)
}

// readChunkInto reads chunk c of f into amps via the scratch buffer raw.
// It uses positional I/O, so concurrent calls on distinct chunks are safe.
func readChunkInto(f fsio.File, l, c int, amps []complex128, raw []byte, retries *telemetry.Counter) error {
	if readHook != nil {
		if err := readHook(c); err != nil {
			return err
		}
	}
	off := int64(c) << uint(l) * ampBytes
	if err := retryIO(retries, func() error {
		_, err := f.ReadAt(raw, off)
		return err
	}); err != nil {
		return err
	}
	decodeChunk(raw, amps)
	return nil
}

// writeChunkFrom writes amps as chunk c of f via the scratch buffer raw.
func writeChunkFrom(f fsio.File, l, c int, amps []complex128, raw []byte, retries *telemetry.Counter) error {
	if writeHook != nil {
		if err := writeHook(c); err != nil {
			return err
		}
	}
	encodeChunk(amps, raw)
	off := int64(c) << uint(l) * ampBytes
	return retryIO(retries, func() error {
		_, err := f.WriteAt(raw, off)
		return err
	})
}

func (v *Vector) readChunk(c int, dst []complex128) error {
	return readChunkInto(v.f, v.L, c, dst, v.raw, v.tel.ioRetries)
}

func (v *Vector) writeChunk(c int, src []complex128) error {
	return writeChunkFrom(v.f, v.L, c, src, v.raw, v.tel.ioRetries)
}

// ApplyOp executes one plan op reactively (one streamed pass for this op
// alone). Cluster positions must be below L (the scheduler guarantees this
// when built with LocalQubits = L); diagonal ops may touch chunk-index
// positions; OpSwap exchanges the top in-chunk positions with chunk-index
// positions; OpLocalPerm permutes in-chunk positions.
func (v *Vector) ApplyOp(op *schedule.Op) error {
	t0 := v.tel.sc.Now()
	err := v.applyOp(op)
	if err == nil && !t0.IsZero() {
		v.tel.sc.Complete("stage", op.Kind.String(), t0, time.Since(t0),
			append(schedule.OpTraceArgs(op), telemetry.A("chunks", v.Chunks()))...)
	}
	return err
}

func (v *Vector) applyOp(op *schedule.Op) error {
	switch op.Kind {
	case schedule.OpCluster:
		return v.streamChunks(func(c int, amps []complex128) {
			kernels.Apply(kernels.Specialized, amps, op.Matrix.Data, op.Positions, nil)
		})
	case schedule.OpDiagonal:
		return v.streamChunks(func(c int, amps []complex128) {
			applyDiagonalChunk(op, c, v.L, amps)
		})
	case schedule.OpLocalPerm:
		return v.streamChunks(func(c int, amps []complex128) {
			permuteBits(amps, v.L, op.Perm)
		})
	case schedule.OpSwap:
		if op.Perm != nil {
			// Fused local permutation: one streamed pass ahead of the
			// block exchange (the in-memory engine folds this into the
			// all-to-all; here it rides the chunk stream).
			if err := v.streamChunks(func(c int, amps []complex128) {
				permuteBits(amps, v.L, op.Perm)
			}); err != nil {
				return err
			}
		}
		return v.swap(op)
	}
	return fmt.Errorf("oocvec: unknown op kind %v", op.Kind)
}

// applyDiagonalChunk applies a diagonal op (whose positions may include
// chunk-index locations ≥ l) to chunk c — shared by the reactive stream
// and the fused pipeline pass so the two paths are bitwise identical by
// construction.
func applyDiagonalChunk(op *schedule.Op, c, l int, amps []complex128) {
	nl := 0
	for nl < len(op.Positions) && op.Positions[nl] < l {
		nl++
	}
	gbits := 0
	for j := nl; j < len(op.Positions); j++ {
		if c&(1<<(op.Positions[j]-l)) != 0 {
			gbits |= 1 << (j - nl)
		}
	}
	if nl == 0 {
		kernels.Scale(amps, op.Diag[gbits])
		return
	}
	kernels.ApplyDiagonal(amps, op.Diag[gbits<<nl:(gbits+1)<<nl], op.Positions[:nl])
}

// streamChunks runs fn over every chunk with one sequential read+write
// pass — the access pattern that makes SSD-backed state practical.
func (v *Vector) streamChunks(fn func(chunk int, amps []complex128)) error {
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, v.buf); err != nil {
			return err
		}
		fn(c, v.buf)
		if err := v.writeChunk(c, v.buf); err != nil {
			return err
		}
	}
	return nil
}

// swapGeometry validates an OpSwap against the chunk layout and returns
// the chunk-index bit of each swapped position.
func (v *Vector) swapGeometry(op *schedule.Op) ([]int, error) {
	q := len(op.LocalPos)
	for j, p := range op.LocalPos {
		if p != v.L-q+j {
			return nil, fmt.Errorf("oocvec: swap local positions %v are not the top %d in-chunk locations", op.LocalPos, q)
		}
	}
	bitPos := make([]int, q)
	for j, p := range op.GlobalPos {
		bitPos[j] = p - v.L
	}
	return bitPos, nil
}

// chunkMember returns the member index of chunk c within its swap group —
// the sub-block slot its data lands in at every destination.
func chunkMember(c int, bitPos []int) int {
	m := 0
	for t, b := range bitPos {
		if c&(1<<b) != 0 {
			m |= 1 << t
		}
	}
	return m
}

// swapDest returns the destination chunk for sub-block j of chunk c.
func swapDest(c, j int, bitPos []int) int {
	dst := c
	for t, b := range bitPos {
		dst &^= 1 << b
		if j&(1<<t) != 0 {
			dst |= 1 << b
		}
	}
	return dst
}

// swap is the file analogue of the group all-to-all: in-chunk positions
// [L−q, L) are exchanged with the chunk-index positions in op.GlobalPos.
// Sub-blocks are copied through a second file, then the files swap roles.
func (v *Vector) swap(op *schedule.Op) error {
	bitPos, err := v.swapGeometry(op)
	if err != nil {
		return err
	}
	out, err := v.fs.CreateTemp(v.dir, "oocvec-*.swap")
	if err != nil {
		return err
	}
	// Destination chunk d receives, as its m-th sub-block, the d-bits
	// sub-block of the source chunk that has member index m.
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, v.buf); err != nil {
			out.Close()
			v.fs.Remove(out.Name())
			return err
		}
		if err := scatterChunk(out, v.L, c, bitPos, v.buf, v.raw, v.tel.ioRetries); err != nil {
			out.Close()
			v.fs.Remove(out.Name())
			return err
		}
	}
	return v.adoptSwapFile(out)
}

// scatterChunk writes each sub-block of chunk c to its destination in the
// swap target file. amps is encoded once into raw; the sub-block writes
// slice the encoding.
func scatterChunk(out fsio.File, l, c int, bitPos []int, amps []complex128, raw []byte, retries *telemetry.Counter) error {
	if writeHook != nil {
		if err := writeHook(c); err != nil {
			return err
		}
	}
	q := len(bitPos)
	sub := len(amps) >> q
	m := chunkMember(c, bitPos)
	encodeChunk(amps, raw)
	for j := 0; j < 1<<q; j++ {
		// Sub-block j of chunk c goes to the group member with index j,
		// landing at sub-block m.
		dst := swapDest(c, j, bitPos)
		off := (int64(dst)<<uint(l) + int64(m)*int64(sub)) * ampBytes
		if err := retryIO(retries, func() error {
			_, err := out.WriteAt(raw[j*sub*ampBytes:(j+1)*sub*ampBytes], off)
			return err
		}); err != nil {
			return err
		}
	}
	return nil
}

// adoptSwapFile retires the current backing file in favor of the
// just-written swap target, renaming it over the old *.state path so the
// backing file keeps its name (and the directory never accumulates *.swap
// entries) across any number of swaps. The rename moves transient working
// state, not a durability commit; a crash mid-run restarts from a ckpt
// snapshot (which does use the fsync+rename helper), never from this file.
func (v *Vector) adoptSwapFile(out fsio.File) error {
	old := v.f
	v.f = out
	if err := v.fs.Rename(out.Name(), v.path); err != nil {
		old.Close()
		return err
	}
	return old.Close()
}

// Run executes a full plan built with LocalQubits = L.
func (v *Vector) Run(plan *schedule.Plan) error {
	return v.RunFrom(plan, 0)
}

// RunFrom executes only the ops with Stage ≥ startStage — the resume path
// after Restore loaded a snapshot taken at that stage boundary. With a
// prefetch depth armed it runs the pipelined per-stage executor; at depth
// 0 it applies ops reactively, one streamed pass each.
func (v *Vector) RunFrom(plan *schedule.Plan, startStage int) error {
	if plan.N != v.N || plan.L != v.L {
		return fmt.Errorf("oocvec: plan (n=%d l=%d) does not match vector (n=%d l=%d)", plan.N, plan.L, v.N, v.L)
	}
	if v.prefetch > 0 {
		return v.runPipelined(plan, startStage, plan.Stages())
	}
	for i := range plan.Ops {
		if plan.Ops[i].Stage < startStage {
			continue
		}
		if err := v.ApplyOp(&plan.Ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// Norm returns Σ|α|² by streaming the file.
func (v *Vector) Norm() (float64, error) {
	var s float64
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, v.buf); err != nil {
			return 0, err
		}
		for _, a := range v.buf {
			s += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return s, nil
}

// Entropy returns the output distribution's Shannon entropy in nats.
func (v *Vector) Entropy() (float64, error) {
	var s float64
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, v.buf); err != nil {
			return 0, err
		}
		for _, a := range v.buf {
			p := real(a)*real(a) + imag(a)*imag(a)
			if p > 0 {
				s -= p * math.Log(p)
			}
		}
	}
	return s, nil
}

// Amplitudes loads the full state (testing only).
func (v *Vector) Amplitudes() ([]complex128, error) {
	out := make([]complex128, 1<<v.N)
	for c := 0; c < v.Chunks(); c++ {
		if err := v.readChunk(c, out[c<<uint(v.L):(c+1)<<uint(v.L)]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// permuteBits relabels in-chunk bit p to perm[p] (same algorithm as
// statevec.PermuteBits, on a raw slice).
func permuteBits(amps []complex128, n int, perm []int) {
	cur := make([]int, n)
	loc := make([]int, n)
	for i := range cur {
		cur[i] = i
		loc[i] = i
	}
	for p := 0; p < n; p++ {
		want := perm[p]
		have := cur[p]
		if have == want {
			continue
		}
		swapBits(amps, have, want)
		other := loc[want]
		cur[p], cur[other] = want, have
		loc[have], loc[want] = other, p
	}
}

func swapBits(amps []complex128, a, b int) {
	if a > b {
		a, b = b, a
	}
	maskA := 1<<a - 1
	maskB := 1<<b - 1
	sa, sb := 1<<a, 1<<b
	for t := 0; t < len(amps)>>2; t++ {
		base := ((t &^ maskA) << 1) | (t & maskA)
		base = ((base &^ maskB) << 1) | (base & maskB)
		i01 := base | sa
		i10 := base | sb
		amps[i01], amps[i10] = amps[i10], amps[i01]
	}
}
