package oocvec

import (
	"testing"

	"qusim/internal/chaos"
	"qusim/internal/ckpt"
	"qusim/internal/fsio"
	"qusim/internal/telemetry"
)

// Disk-fault scenarios for the out-of-core engine: transient read errors
// must be absorbed by the bounded retry (or surface classified when they
// outlast it), and a full disk must cost checkpoints, never correctness.

// chaosVector builds a NewUniform vector whose backing file runs on the
// given FS (installed process-wide for the New call, restored after).
func chaosVector(t *testing.T, n, l int, fs fsio.FS) *Vector {
	t.Helper()
	old := SetFS(fs)
	t.Cleanup(func() { SetFS(old) })
	v, err := NewUniform(n, l, t.TempDir())
	SetFS(old)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v
}

func TestTransientReadWindowRetriedInvisibly(t *testing.T) {
	n, l := 10, 7
	_, plan := buildPlan(t, n, l, 12, 3)
	clean := oocAmps(t, n, l, func(v *Vector) error { return v.Run(plan) })

	// A 2-op failure window fits inside the 3-attempt retry budget (each
	// retry re-issues the read as a fresh op, walking past the window).
	fs := chaos.NewFS(chaos.DiskFaults{ReadErrAt: 5, ReadErrRun: 2}, nil)
	v := chaosVector(t, n, l, fs)
	tel := telemetry.New()
	v.SetTelemetry(tel)
	if err := v.Run(plan); err != nil {
		t.Fatalf("transient window inside the retry budget surfaced: %v", err)
	}
	if fs.Stats().ReadErrors == 0 {
		t.Fatal("window never fired — the scenario tested nothing")
	}
	if got := tel.Counter("oocvec.io_retries").Value(); got == 0 {
		t.Error("oocvec.io_retries did not count the retries")
	}
	got, err := v.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != got[i] {
			t.Fatalf("amplitude %d differs after retried reads: %v vs %v", i, clean[i], got[i])
		}
	}
}

func TestTransientReadWindowBeyondBudgetSurfacesClassified(t *testing.T) {
	n, l := 10, 7
	_, plan := buildPlan(t, n, l, 12, 3)
	fs := chaos.NewFS(chaos.DiskFaults{ReadErrAt: 5, ReadErrRun: 64}, nil)
	v := chaosVector(t, n, l, fs)
	err := v.Run(plan)
	if err == nil {
		t.Fatal("a window far beyond the retry budget was swallowed")
	}
	// The classification must survive the wrapping: callers (the chaos
	// soak's resume loop) decide to retry at run granularity based on it.
	if !fsio.IsTransient(err) {
		t.Errorf("exhausted transient window lost its classification: %v", err)
	}
}

func TestCheckpointENOSPCSkipsButFinishes(t *testing.T) {
	n, l := 10, 7
	_, plan := buildPlan(t, n, l, 16, 4)
	if plan.Stages() < 2 {
		t.Fatalf("plan has %d stages; the scenario needs at least 2", plan.Stages())
	}
	clean := oocAmps(t, n, l, func(v *Vector) error { return v.Run(plan) })

	// The snapshot directory's disk is permanently full; the vector's own
	// backing file stays healthy. Every checkpoint is starved — the run
	// must trade them for replay risk and still finish bitwise clean.
	old := ckpt.SetFS(chaos.NewFS(chaos.DiskFaults{NoSpaceAt: 1, NoSpaceRun: 1 << 30}, nil))
	t.Cleanup(func() { ckpt.SetFS(old) })

	v, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	tel := telemetry.New()
	v.SetTelemetry(tel)
	restored, written, err := v.RunCheckpointed(plan, &ckpt.Policy{Dir: t.TempDir()}, false)
	if err != nil {
		t.Fatalf("full snapshot disk aborted the run: %v", err)
	}
	if restored != -1 || written != 0 {
		t.Errorf("restored=%d written=%d, want -1 and 0 on a fully starved disk", restored, written)
	}
	if v.CheckpointsSkipped() == 0 {
		t.Error("CheckpointsSkipped() = 0 though every snapshot was starved")
	}
	if got := tel.Counter("oocvec.ckpt_skipped").Value(); got == 0 {
		t.Error("oocvec.ckpt_skipped telemetry never fired")
	}

	got, err := v.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != got[i] {
			t.Fatalf("amplitude %d differs after skipped checkpoints: %v vs %v", i, clean[i], got[i])
		}
	}
}

func TestCheckpointENOSPCWindowSkipsOnlyStarvedSnapshots(t *testing.T) {
	n, l := 10, 7
	_, plan := buildPlan(t, n, l, 16, 4)
	if plan.Stages() < 3 {
		t.Skipf("plan has %d stages; the scenario needs at least 3", plan.Stages())
	}
	// A starved checkpoint consumes exactly one write op (the failing
	// CreateTemp), so a 1-op window starves the first snapshot only: later
	// ones commit, and the resulting directory still resumes.
	old := ckpt.SetFS(chaos.NewFS(chaos.DiskFaults{NoSpaceAt: 1, NoSpaceRun: 1}, nil))
	t.Cleanup(func() { ckpt.SetFS(old) })

	v, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	dir := t.TempDir()
	_, written, err := v.RunCheckpointed(plan, &ckpt.Policy{Dir: dir}, false)
	if err != nil {
		t.Fatalf("transient snapshot-disk window aborted the run: %v", err)
	}
	if v.CheckpointsSkipped() == 0 {
		t.Fatal("window never starved a checkpoint — the scenario tested nothing")
	}
	if written == 0 {
		t.Error("no checkpoint committed after the window passed")
	}
	want, err := v.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}

	// The survivors must be genuinely restorable.
	v2, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	restored, _, err := v2.RunCheckpointed(plan, &ckpt.Policy{Dir: dir}, true)
	if err != nil {
		t.Fatal(err)
	}
	if restored < 0 {
		t.Error("resume found no snapshot though some committed")
	}
	got, err := v2.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("amplitude %d differs after resume across a skipped snapshot: %v vs %v", i, want[i], got[i])
		}
	}
}
