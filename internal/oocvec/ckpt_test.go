package oocvec

import (
	"fmt"
	"os"
	"testing"

	"qusim/internal/ckpt"
)

// oocAmps runs the plan (optionally checkpointed) and returns the final
// amplitudes.
func oocAmps(t *testing.T, n, l int, run func(v *Vector) error) []complex128 {
	t.Helper()
	v, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := run(v); err != nil {
		t.Fatal(err)
	}
	amps, err := v.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}
	return amps
}

func TestTempFilesRemovedOnInitFailure(t *testing.T) {
	// Regression: an injected write failure during chunk initialization (or
	// mid-swap) must leave the directory empty — no leaked state or swap
	// temp files.
	dir := t.TempDir()
	assertEmpty := func(when string) {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name()
			}
			t.Fatalf("%s leaked temp files: %v", when, names)
		}
	}
	defer func() { writeHook = nil }()

	for _, failAt := range []int{0, 1, 3} {
		writeHook = func(chunk int) error {
			if chunk == failAt {
				return fmt.Errorf("injected write failure at chunk %d", chunk)
			}
			return nil
		}
		if _, err := New(8, 6, dir); err == nil {
			t.Fatalf("New survived injected failure at chunk %d", failAt)
		}
		assertEmpty(fmt.Sprintf("New(failAt=%d)", failAt))
	}

	// NewUniform's own rewrite pass runs after New's zero-init succeeded:
	// fail by call count, past the 4 chunk writes New performs.
	for _, failCall := range []int{5, 8} {
		calls := 0
		writeHook = func(chunk int) error {
			calls++
			if calls == failCall {
				return fmt.Errorf("injected write failure on call %d", calls)
			}
			return nil
		}
		if _, err := NewUniform(8, 6, dir); err == nil {
			t.Fatalf("NewUniform survived injected failure on call %d", failCall)
		}
		assertEmpty(fmt.Sprintf("NewUniform(failCall=%d)", failCall))
	}
	writeHook = nil
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	n, l := 10, 7
	_, plan := buildPlan(t, n, l, 12, 3)
	v, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Run(plan); err != nil {
		t.Fatal(err)
	}
	want, err := v.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := v.Checkpoint(dir, plan, plan.Stages(), 2); err != nil {
		t.Fatal(err)
	}
	man, err := ckpt.FindRestorable(dir, v.snapshotMeta(plan))
	if err != nil {
		t.Fatal(err)
	}
	if man == nil {
		t.Fatal("committed snapshot not found")
	}

	// Restore into a DIFFERENT chunk geometry: the snapshot is one logical
	// shard, independent of the writer's in-memory budget.
	v2, err := New(n, 5, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if err := v2.Restore(dir, man); err != nil {
		t.Fatal(err)
	}
	got, err := v2.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("amplitude %d differs after restore: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestRunCheckpointedResumesBitwise(t *testing.T) {
	n, l := 10, 7
	_, plan := buildPlan(t, n, l, 16, 4)
	if plan.Stages() < 2 {
		t.Fatalf("plan has %d stages; the scenario needs at least 2", plan.Stages())
	}
	clean := oocAmps(t, n, l, func(v *Vector) error { return v.Run(plan) })

	// First process: run to completion with checkpoints.
	dir := t.TempDir()
	pol := &ckpt.Policy{Dir: dir}
	first := oocAmps(t, n, l, func(v *Vector) error {
		restored, written, err := v.RunCheckpointed(plan, pol, false)
		if err != nil {
			return err
		}
		if restored != -1 {
			t.Errorf("fresh run restored from stage %d", restored)
		}
		if written == 0 {
			t.Error("no snapshots committed")
		}
		return nil
	})
	for i := range clean {
		if clean[i] != first[i] {
			t.Fatalf("checkpointed run diverged at amplitude %d", i)
		}
	}

	// Second process: resume from the newest snapshot (taken before the
	// final stage) and finish — bitwise identical again.
	resumed := oocAmps(t, n, l, func(v *Vector) error {
		restored, _, err := v.RunCheckpointed(plan, pol, true)
		if err != nil {
			return err
		}
		if restored < 0 {
			t.Error("resume found no snapshot")
		}
		return nil
	})
	for i := range clean {
		if clean[i] != resumed[i] {
			t.Fatalf("resumed run diverged at amplitude %d", i)
		}
	}
}
