package oocvec

import (
	"math"
	"math/cmplx"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
)

func buildPlan(t *testing.T, n, l, depth int, seed int64) (*circuit.Circuit, *schedule.Plan) {
	t.Helper()
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{
		Rows: r, Cols: c, Depth: depth, Seed: seed, SkipInitialH: true,
	})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(l))
	if err != nil {
		t.Fatal(err)
	}
	return circ, plan
}

func TestOutOfCoreMatchesInMemory(t *testing.T) {
	n, l := 12, 8
	circ, plan := buildPlan(t, n, l, 14, 5)

	ooc, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	if err := ooc.Run(plan); err != nil {
		t.Fatal(err)
	}

	want := statevec.NewUniform(n)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		want.Apply(g.Matrix(), g.Qubits...)
	}
	got, err := ooc.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}
	var maxd float64
	for b := 0; b < 1<<n; b++ {
		d := cmplx.Abs(want.Amplitude(b) - got[plan.PermutedIndex(b)])
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-9 {
		t.Fatalf("out-of-core result deviates from in-memory: max diff %g", maxd)
	}
}

func TestOutOfCoreZeroInit(t *testing.T) {
	n, l := 10, 6
	circ, plan := buildPlan(t, n, l, 10, 6)
	ooc, err := New(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	if err := ooc.Run(plan); err != nil {
		t.Fatal(err)
	}
	want := statevec.New(n)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		want.Apply(g.Matrix(), g.Qubits...)
	}
	got, err := ooc.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 1<<n; b++ {
		if cmplx.Abs(want.Amplitude(b)-got[plan.PermutedIndex(b)]) > 1e-9 {
			t.Fatalf("amplitude %d deviates", b)
		}
	}
}

func TestNormAndEntropyStreaming(t *testing.T) {
	n, l := 10, 6
	circ, plan := buildPlan(t, n, l, 12, 7)
	ooc, err := NewUniform(n, l, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	if err := ooc.Run(plan); err != nil {
		t.Fatal(err)
	}
	norm, err := ooc.Norm()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("norm %v", norm)
	}
	want := statevec.NewUniform(n)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		want.Apply(g.Matrix(), g.Qubits...)
	}
	ent, err := ooc.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ent-want.Entropy()) > 1e-9 {
		t.Errorf("entropy %v, want %v", ent, want.Entropy())
	}
}

func TestChunksAndValidation(t *testing.T) {
	v, err := New(8, 5, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if v.Chunks() != 8 {
		t.Errorf("Chunks() = %d, want 8", v.Chunks())
	}
	if _, err := New(8, 8, t.TempDir()); err == nil {
		t.Error("l >= n accepted")
	}
	// Plan with mismatched layout must be rejected.
	_, plan := buildPlanHelper(t)
	if err := v.Run(plan); err == nil {
		t.Error("mismatched plan accepted")
	}
}

func buildPlanHelper(t *testing.T) (*circuit.Circuit, *schedule.Plan) {
	t.Helper()
	return buildPlan(t, 10, 6, 8, 1)
}
