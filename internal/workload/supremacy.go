package workload

import (
	"qusim/internal/circuit"
	"qusim/internal/xeb"
)

// supremacyWorkload is the paper's Fig. 1 circuit family: a random
// low-depth 2D supremacy circuit simulated end to end. The expectation is
// structural — the output distribution of a chaotic circuit converges to
// the Porter–Thomas shape, so the state entropy must sit near n·ln2−(1−γ)
// and the Kolmogorov–Smirnov distance from the exponential law must be
// small. Throughput is the paper's headline figure: amplitude updates per
// second (Σ gates · 2^n / elapsed).
func supremacyWorkload() Workload {
	return Workload{
		Name:        "supremacy",
		Stresses:    "kernel suite, fusion scheduler, the paper's headline amps/s figure",
		Expectation: "Porter–Thomas convergence: entropy within 5% of S_PT, KS distance ≤ 0.15",
		Build: func(p Params) (*Instance, error) {
			// Depth 24 is where these grids reliably anticoncentrate; at
			// d16–d20 the KS distance still wanders up to ~0.16 seed-to-seed.
			rows, cols, depth := 4, 4, 24
			if p.Tier == TierFull {
				rows, cols, depth = 5, 5, 24
			}
			c := circuit.Supremacy(circuit.SupremacyOptions{
				Rows: rows, Cols: cols, Depth: depth, Seed: p.Seed,
			})
			n := rows * cols
			inst := &Instance{Qubits: n, Circuits: []*circuit.Circuit{c}}
			inst.Run = func(h *Harness) (*Result, error) {
				r := &Result{Gates: len(c.Gates), Work: map[string]float64{}, Values: map[string]float64{}}
				v, err := h.State(c)
				if err != nil {
					return nil, err
				}
				h.checkNorm(r, "state", v)
				probs := v.Probabilities()

				entropy := v.Entropy()
				spt := xeb.PorterThomasEntropy(n)
				r.Values["entropy"] = entropy
				r.checkBound("entropy/S_PT", entropy/spt, 0.95, 1.05)

				ks := xeb.PorterThomasKS(probs)
				r.Values["pt-ks"] = ks
				r.checkBound("Porter-Thomas KS", ks, 0, 0.15)

				r.Work["amps"] = float64(len(c.Gates)) * float64(int(1)<<n)
				r.Work["gates"] = float64(len(c.Gates))
				return r, nil
			}
			return inst, nil
		},
	}
}
