package workload

// Regression test for the errwrap invariant (qlint's errwrap analyzer):
// the harness used to flatten backend errors with %v, so an out-of-core
// backend surfacing fsio.ErrNoSpace lost its classification on the way
// up and the sweep driver could not tell a full scratch volume (degrade:
// skip the point) from a real failure (abort). Pins the %v→%w fix.

import (
	"fmt"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/fsio"
)

// nospaceBackend fails every run the way an out-of-core backend does when
// its scratch volume fills mid-spill.
type nospaceBackend struct{}

func (nospaceBackend) Name() string { return "nospace-stub" }

func (nospaceBackend) Run(*circuit.Circuit) ([]complex128, error) {
	return nil, fmt.Errorf("spill block 3: %w", fsio.ErrNoSpace)
}

func TestHarnessStateKeepsNoSpaceClassification(t *testing.T) {
	h, err := NewHarness(Params{Tier: TierQuick})
	if err != nil {
		t.Fatal(err)
	}
	h.backend = nospaceBackend{}

	c := circuit.NewCircuit(2)
	c.Name = "errclass"
	if _, err := h.State(c); err == nil {
		t.Fatal("State succeeded with a failing backend")
	} else if !fsio.IsNoSpace(err) {
		t.Errorf("no-space fault lost its classification through the harness wrap: %v", err)
	}
}
