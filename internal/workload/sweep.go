package workload

import (
	"fmt"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
)

// The parameter-sweep workloads: the same ansatz structure re-run across
// seeded parameter sets, which is exactly the traffic shape the
// StructureFingerprint plan-analysis cache exists for — every sweep point
// after the first must hit the cached analysis, and the run gates on the
// observed hit count. Parameter set 0 is always all-zeros, pinning the
// observable to a closed-form anchor (uniform-state cut value for QAOA,
// chain ground energy for VQE); the remaining sets are checked against the
// observable's exact range.

// sweepScheduleOptions mirrors the verify backends' default scheduling at
// l local qubits.
func sweepScheduleOptions(l int) schedule.Options {
	o := schedule.DefaultOptions(l)
	if o.KMax > l {
		o.KMax = l
	}
	return o
}

// runSweep executes the shared sweep loop: for every circuit, build the
// plan, touch the plan-analysis cache (the production path oocvec's
// prefetcher takes), run the state through the harness backend, and hand
// the probabilities to score. It appends the cache-hit expectation and the
// sweep work counters to r.
func runSweep(h *Harness, r *Result, circuits []*circuit.Circuit, globals int,
	score func(i int, probs []float64) error) error {
	snap := schedule.SnapshotAccessCache()
	for i, c := range circuits {
		plan, err := schedule.Build(c, sweepScheduleOptions(c.N-globals))
		if err != nil {
			return fmt.Errorf("schedule sweep %d: %w", i, err)
		}
		if _, err := plan.AccessMap(); err != nil {
			return fmt.Errorf("access map sweep %d: %w", i, err)
		}
		v, err := h.State(c)
		if err != nil {
			return err
		}
		h.checkNorm(r, fmt.Sprintf("sweep %d", i), v)
		if err := score(i, v.Probabilities()); err != nil {
			return err
		}
	}
	d := snap.Delta()
	r.Values["plan-cache-hits"] = float64(d.Hits)
	// Identical gate structure across the sweep ⇒ at most two analyses: the
	// all-zeros anchor schedules to its own fingerprint (zero rotations fuse
	// differently), the non-zero points share one. ≥ because another phase
	// may share the process-global cache concurrently.
	r.checkBound("plan-cache hits", float64(d.Hits),
		float64(len(circuits)-2), float64(d.Hits)+1)
	sweeps := float64(len(circuits))
	r.Work["sweeps"] = sweeps
	r.Work["gates"] = float64(r.Gates)
	r.Work["amps"] = float64(r.Gates) * float64(int(1)<<circuits[0].N)
	return nil
}

func qaoaSweepWorkload() Workload {
	return Workload{
		Name:        "qaoa-sweep",
		Stresses:    "diagonal fast path, plan construction, StructureFingerprint analysis cache",
		Expectation: "zero-parameter point cuts exactly n/2; every point in [0, n]; ≥ sweeps−2 cache hits",
		Build: func(p Params) (*Instance, error) {
			n, layers, sweeps := 12, 2, 8
			if p.Tier == TierFull {
				n, layers, sweeps = 18, 3, 12
			}
			sets := circuit.SweepParams(p.Seed+300, sweeps, 2*layers)
			circuits := make([]*circuit.Circuit, sweeps)
			for i, set := range sets {
				circuits[i] = circuit.QAOAMaxCutRing(n, set[:layers], set[layers:])
			}
			edges := circuit.RingEdges(n)
			inst := &Instance{Qubits: n, Circuits: circuits}
			inst.Run = func(h *Harness) (*Result, error) {
				r := &Result{Gates: totalGates(circuits), Work: map[string]float64{}, Values: map[string]float64{}}
				err := runSweep(h, r, circuits, 2, func(i int, probs []float64) error {
					cut := circuit.MaxCutExpectation(probs, edges)
					r.Values[fmt.Sprintf("cut-%d", i)] = cut
					if i == 0 {
						r.checkBound("zero-parameter cut", cut,
							float64(n)/2-h.ValueTol, float64(n)/2+h.ValueTol)
					} else {
						r.checkBound(fmt.Sprintf("cut %d in range", i), cut,
							-h.ValueTol, float64(n)+h.ValueTol)
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				return r, nil
			}
			return inst, nil
		},
	}
}

func vqeAnsatzWorkload() Workload {
	return Workload{
		Name:        "vqe-ansatz",
		Stresses:    "dense 1q kernels + CZ specialization, plan construction, analysis cache",
		Expectation: "zero-angle point at the chain ground energy −(n−1); every point within ±(n−1); ≥ sweeps−2 cache hits",
		Build: func(p Params) (*Instance, error) {
			n, layers, sweeps := 10, 3, 8
			if p.Tier == TierFull {
				n, layers, sweeps = 14, 4, 12
			}
			sets := circuit.SweepParams(p.Seed+400, sweeps, layers*n)
			circuits := make([]*circuit.Circuit, sweeps)
			for i, set := range sets {
				circuits[i] = circuit.HardwareEfficientAnsatz(n, layers, set)
			}
			inst := &Instance{Qubits: n, Circuits: circuits}
			inst.Run = func(h *Harness) (*Result, error) {
				r := &Result{Gates: totalGates(circuits), Work: map[string]float64{}, Values: map[string]float64{}}
				bound := float64(n - 1)
				err := runSweep(h, r, circuits, 2, func(i int, probs []float64) error {
					e := circuit.IsingChainEnergy(probs, n)
					r.Values[fmt.Sprintf("energy-%d", i)] = e
					if i == 0 {
						r.checkBound("zero-angle energy", e, -bound-h.ValueTol, -bound+h.ValueTol)
					} else {
						r.checkBound(fmt.Sprintf("energy %d in range", i), e,
							-bound-h.ValueTol, bound+h.ValueTol)
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				return r, nil
			}
			return inst, nil
		},
	}
}
