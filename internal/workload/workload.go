// Package workload is the named-workload benchmark catalog behind
// cmd/qbench: the scenario spread a production simulator actually serves —
// supremacy sampling (paper Fig. 1), cross-entropy fidelity estimation
// (internal/xeb), stochastic noise trajectories (internal/noise, spot-checked
// against internal/densitymatrix), and QAOA/VQE parameter sweeps that stress
// the StructureFingerprint plan-analysis cache — rather than the single
// circuit family earlier perf PRs proved themselves against.
//
// Every catalog entry is built deterministically from a seed, carries a
// correctness expectation checked on every run (closed-form anchors,
// statistical bounds with wide margins), and reports throughput figures
// (amps/s, gates/s, sweeps/s, …) that cmd/qbench emits in `go test -bench`
// format for the benchjson pipeline. Small instances of each family are
// also enrolled in internal/verify's differential matrix, so qverify
// cross-checks catalog circuits across every backend, not just random ones.
package workload

import (
	"fmt"
	"regexp"
	"time"

	"qusim/internal/circuit"
)

// Tier selects the instance size: TierQuick fits shared CI runners in
// seconds, TierFull sizes for a real host (and the nightly workflow).
type Tier int

const (
	TierQuick Tier = iota
	TierFull
)

func (t Tier) String() string {
	if t == TierFull {
		return "full"
	}
	return "quick"
}

// Params configures one catalog run. The zero value is the quick tier on
// the default statevec backend with seed 0; cmd/qbench defaults seed to 1.
type Params struct {
	Tier Tier
	// Seed derives every circuit, parameter set, sampler and trajectory
	// stream; equal seeds replay byte-identical circuits and bit-identical
	// check values.
	Seed int64
	// Backend selects the execution path for the state runs: "statevec"
	// (default), "f32vec", "dist", or "oocvec". The noise-trajectory
	// workload always runs its trajectories through statevec (that is the
	// subsystem it exercises).
	Backend string
}

// Check is one correctness expectation evaluated by a workload run.
type Check struct {
	Name string  // what was checked
	Got  float64 // observed value
	Want string  // human-readable bound
	Err  error   // nil = passed
}

// Result aggregates one workload run.
type Result struct {
	Workload string
	Tier     string
	Backend  string
	Qubits   int
	Gates    int // total gates simulated (summed over sweeps/trajectories)
	Elapsed  time.Duration
	// Work holds raw work counts by unit stem ("amps", "gates", "sweeps",
	// "samples", "traj"); Throughput divides them by Elapsed.
	Work map[string]float64
	// Values holds the deterministic scalar outcomes (scores, energies,
	// cache hits) — bit-identical across same-seed runs, unlike timings.
	Values map[string]float64
	Checks []Check
}

// Failed reports whether any correctness expectation failed.
func (r *Result) Failed() bool {
	for _, c := range r.Checks {
		if c.Err != nil {
			return true
		}
	}
	return false
}

// Throughput derives the per-second figures from the work counts: unit stem
// "amps" becomes "amps/s", and so on.
func (r *Result) Throughput() map[string]float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		s = 1e-9
	}
	out := make(map[string]float64, len(r.Work))
	for unit, v := range r.Work {
		out[unit+"/s"] = v / s
	}
	return out
}

// check appends an expectation result; err nil means it passed.
func (r *Result) check(name string, got float64, want string, err error) {
	r.Checks = append(r.Checks, Check{Name: name, Got: got, Want: want, Err: err})
}

// checkBound appends a pass/fail on lo ≤ got ≤ hi.
func (r *Result) checkBound(name string, got, lo, hi float64) {
	want := fmt.Sprintf("[%g, %g]", lo, hi)
	var err error
	if got < lo || got > hi || got != got {
		err = fmt.Errorf("%s = %v outside %s", name, got, want)
	}
	r.check(name, got, want, err)
}

// Instance is one tier-sized, seeded realization of a workload: the
// deterministic circuits plus the run closure that executes them through a
// harness and scores the expectations.
type Instance struct {
	Qubits int
	// Circuits lists every circuit the run executes, in order — the
	// determinism tests serialize these and demand byte equality across
	// same-seed builds.
	Circuits []*circuit.Circuit
	Run      func(h *Harness) (*Result, error)
}

// Workload is one named catalog entry.
type Workload struct {
	Name string
	// Stresses says which subsystems the workload exercises (for -list and
	// the README table).
	Stresses string
	// Expectation is the one-line correctness bound the run enforces.
	Expectation string
	Build       func(p Params) (*Instance, error)
}

// Catalog returns the named workload families, in reporting order.
func Catalog() []Workload {
	return []Workload{
		supremacyWorkload(),
		xebWorkload(),
		noiseTrajectoryWorkload(),
		qaoaSweepWorkload(),
		vqeAnsatzWorkload(),
	}
}

// ByName looks a workload up by its catalog name.
func ByName(name string) (Workload, bool) {
	for _, w := range Catalog() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Filter returns the catalog entries whose names match the regexp.
func Filter(pattern string) ([]Workload, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("workload: bad filter %q: %v", pattern, err)
	}
	var out []Workload
	for _, w := range Catalog() {
		if re.MatchString(w.Name) {
			out = append(out, w)
		}
	}
	return out, nil
}

// Run builds the tier-sized instance and executes it, stamping identity and
// timing onto the result. The clock covers simulation and scoring, not
// circuit construction.
func Run(w Workload, p Params) (*Result, error) {
	inst, err := w.Build(p)
	if err != nil {
		return nil, fmt.Errorf("workload %s: build: %w", w.Name, err)
	}
	h, err := NewHarness(p)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	start := time.Now()
	res, err := inst.Run(h)
	if err != nil {
		return nil, fmt.Errorf("workload %s: run: %w", w.Name, err)
	}
	res.Elapsed = time.Since(start)
	res.Workload = w.Name
	res.Tier = p.Tier.String()
	res.Backend = h.BackendName()
	res.Qubits = inst.Qubits
	return res, nil
}

// totalGates sums the gate counts of the instance circuits.
func totalGates(cs []*circuit.Circuit) int {
	n := 0
	for _, c := range cs {
		n += len(c.Gates)
	}
	return n
}
