package workload

import (
	"fmt"
	"sort"

	"qusim/internal/circuit"
	"qusim/internal/kernels"
	"qusim/internal/statevec"
	"qusim/internal/verify"
)

// Harness is the shared execution layer: it resolves the backend selection
// to one of the verified execution paths (all of them return amplitudes in
// logical qubit order, so workloads score states identically regardless of
// path) and carries the tolerances the expectations use — the
// single-precision backend cannot meet the exact-path bars.
type Harness struct {
	Params Params
	// NormTol bounds |1 − Σp| on every produced state.
	NormTol float64
	// ValueTol bounds deviations from closed-form anchors (uniform-state
	// cut value, zero-angle ansatz energy).
	ValueTol float64

	backend verify.Backend
}

// backendFactories maps the -backend names to verified execution paths.
// The splits mirror the verify matrix quick tier: dist at 4 simulated
// ranks, oocvec at 4 file chunks with the prefetch pipeline armed.
var backendFactories = map[string]func() verify.Backend{
	"statevec": func() verify.Backend { return verify.Kernel(kernels.Specialized) },
	"f32vec":   func() verify.Backend { return verify.F32() },
	"dist":     func() verify.Backend { return verify.Distributed(4) },
	"oocvec":   func() verify.Backend { return verify.OutOfCore(2, 3) },
}

// Backends returns the selectable backend names, sorted.
func Backends() []string {
	names := make([]string, 0, len(backendFactories))
	for n := range backendFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewHarness resolves p.Backend ("" defaults to statevec).
func NewHarness(p Params) (*Harness, error) {
	name := p.Backend
	if name == "" {
		name = "statevec"
	}
	mk, ok := backendFactories[name]
	if !ok {
		return nil, fmt.Errorf("unknown backend %q (have %v)", p.Backend, Backends())
	}
	h := &Harness{Params: p, NormTol: 1e-9, ValueTol: 1e-9, backend: mk()}
	if name == "f32vec" {
		// float32 carries ~7 digits and the error grows with depth; the
		// verify F32 engine runs at 5e-4, leave the same margin here.
		h.NormTol, h.ValueTol = 5e-4, 5e-3
	}
	return h, nil
}

// BackendName returns the resolved execution-path name.
func (h *Harness) BackendName() string { return h.backend.Name() }

// State simulates c from |0…0⟩ through the selected backend and returns
// the final state in logical qubit order.
func (h *Harness) State(c *circuit.Circuit) (*statevec.Vector, error) {
	amps, err := h.backend.Run(c)
	if err != nil {
		return nil, fmt.Errorf("backend %s on %s: %w", h.backend.Name(), c.Name, err)
	}
	return statevec.FromAmplitudes(amps), nil
}

// checkNorm appends the universal Σp ≈ 1 expectation for a produced state.
func (h *Harness) checkNorm(r *Result, label string, v *statevec.Vector) {
	r.checkBound(label+" norm", v.Norm(), 1-h.NormTol, 1+h.NormTol)
}
