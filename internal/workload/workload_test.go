package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"qusim/internal/circuit"
)

func TestCatalogNamesAndOrder(t *testing.T) {
	want := []string{"supremacy", "xeb", "noise-trajectory", "qaoa-sweep", "vqe-ansatz"}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d workloads, want %d", len(cat), len(want))
	}
	for i, w := range cat {
		if w.Name != want[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, w.Name, want[i])
		}
		if w.Stresses == "" || w.Expectation == "" || w.Build == nil {
			t.Errorf("workload %q missing metadata", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("xeb"); !ok {
		t.Error("ByName(xeb) not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) unexpectedly found")
	}
}

func TestFilter(t *testing.T) {
	got, err := Filter("sweep|ansatz")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "qaoa-sweep" || got[1].Name != "vqe-ansatz" {
		names := make([]string, len(got))
		for i, w := range got {
			names[i] = w.Name
		}
		t.Errorf("Filter(sweep|ansatz) = %v", names)
	}
	if _, err := Filter("("); err == nil {
		t.Error("Filter with invalid regexp did not error")
	}
}

// TestBuildDeterminism: the same Params must construct byte-identical
// circuits — the property that makes a workload name plus a seed a complete
// reproducer for any regression it flags.
func TestBuildDeterminism(t *testing.T) {
	p := Params{Tier: TierQuick, Seed: 7}
	for _, w := range Catalog() {
		a, err := w.Build(p)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		b, err := w.Build(p)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(a.Circuits) != len(b.Circuits) {
			t.Fatalf("%s: circuit count %d vs %d", w.Name, len(a.Circuits), len(b.Circuits))
		}
		for i := range a.Circuits {
			var ba, bb bytes.Buffer
			if err := circuit.WriteText(&ba, a.Circuits[i]); err != nil {
				t.Fatalf("%s circuit %d: %v", w.Name, i, err)
			}
			if err := circuit.WriteText(&bb, b.Circuits[i]); err != nil {
				t.Fatalf("%s circuit %d: %v", w.Name, i, err)
			}
			if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
				t.Errorf("%s circuit %d: serialization differs between builds", w.Name, i)
			}
		}
		// Compare the last circuit across seeds: the sweep workloads' first
		// circuit is the all-zeros anchor, identical for every seed by design.
		c, err := w.Build(Params{Tier: TierQuick, Seed: 8})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		last := len(a.Circuits) - 1
		var ba, bc bytes.Buffer
		if err := circuit.WriteText(&ba, a.Circuits[last]); err != nil {
			t.Fatal(err)
		}
		if err := circuit.WriteText(&bc, c.Circuits[last]); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(ba.Bytes(), bc.Bytes()) {
			t.Errorf("%s: seeds 7 and 8 built identical circuits", w.Name)
		}
	}
}

// TestRunDeterminism: the same Params must reproduce bit-identical check
// values — every sampler and noise draw is seeded from Params.Seed.
func TestRunDeterminism(t *testing.T) {
	for _, name := range []string{"xeb", "noise-trajectory"} {
		w, _ := ByName(name)
		p := Params{Tier: TierQuick, Seed: 3}
		a, err := Run(w, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Run(w, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Values) == 0 || len(a.Values) != len(b.Values) {
			t.Fatalf("%s: value maps differ in size (%d vs %d)", name, len(a.Values), len(b.Values))
		}
		for k, va := range a.Values {
			if vb, ok := b.Values[k]; !ok || va != vb {
				t.Errorf("%s: value %q = %v then %v", name, k, va, vb)
			}
		}
	}
}

// TestQuickCatalogPasses runs every workload at the quick tier on the
// default backend and requires every expectation to hold.
func TestQuickCatalogPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("quick catalog run skipped in -short mode")
	}
	for _, w := range Catalog() {
		r, err := Run(w, Params{Tier: TierQuick, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, c := range r.Checks {
			if c.Err != nil {
				t.Errorf("%s: %s: %v", w.Name, c.Name, c.Err)
			}
		}
		if r.Elapsed <= 0 {
			t.Errorf("%s: non-positive elapsed %v", w.Name, r.Elapsed)
		}
		if len(r.Throughput()) == 0 {
			t.Errorf("%s: no throughput units", w.Name)
		}
	}
}

// TestBackendsRunXEB pushes one real workload through every execution path
// the harness can select, so backend plumbing (f32 tolerances included)
// stays covered by `go test` alone.
func TestBackendsRunXEB(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-backend run skipped in -short mode")
	}
	w, _ := ByName("xeb")
	for _, b := range Backends() {
		r, err := Run(w, Params{Tier: TierQuick, Seed: 1, Backend: b})
		if err != nil {
			t.Fatalf("backend %s: %v", b, err)
		}
		if r.Failed() {
			for _, c := range r.Checks {
				if c.Err != nil {
					t.Errorf("backend %s: %s: %v", b, c.Name, c.Err)
				}
			}
		}
		if r.Backend == "" {
			t.Errorf("backend %s: result backend label empty", b)
		}
	}
}

func TestUnknownBackend(t *testing.T) {
	w, _ := ByName("xeb")
	if _, err := Run(w, Params{Tier: TierQuick, Seed: 1, Backend: "fpga"}); err == nil {
		t.Error("unknown backend did not error")
	} else if !strings.Contains(err.Error(), "fpga") {
		t.Errorf("error %q does not name the unknown backend", err)
	}
}

func TestResultChecksAndThroughput(t *testing.T) {
	r := &Result{Elapsed: 2 * time.Second, Work: map[string]float64{"amps": 10}}
	r.checkBound("in", 1, 0, 2)
	r.checkBound("out", 3, 0, 2)
	r.check("nan", math.NaN(), "finite", nil)
	if !r.Failed() {
		t.Error("Failed() = false with a violated bound")
	}
	var fails int
	for _, c := range r.Checks {
		if c.Err != nil {
			fails++
		}
	}
	if fails != 1 {
		t.Errorf("got %d failing checks, want 1", fails)
	}
	tp := r.Throughput()
	if got := tp["amps/s"]; got != 5 {
		t.Errorf("amps/s = %v, want 5", got)
	}
}

func TestTierString(t *testing.T) {
	if TierQuick.String() != "quick" || TierFull.String() != "full" {
		t.Errorf("tier strings: %q, %q", TierQuick, TierFull)
	}
}
