package workload

import (
	"math"
	"math/rand"

	"qusim/internal/circuit"
	"qusim/internal/xeb"
)

// xebWorkload is the cross-entropy benchmarking use case (Boixo et al., the
// Arute et al. supremacy experiment's scoring step): simulate a chaotic
// circuit for its ideal output distribution, then score sampled bitstrings
// against it. The estimators are gated against the circuit's *own* exact
// moments rather than the asymptotic Porter–Thomas values — at CI-sized
// instances the exact linear score 2^n·Σp²−1 fluctuates seed-to-seed around
// 1 (finite-size anti-concentration), but the estimator-validity properties
// hold exactly: the ideal sampler must recover the exact score, the uniform
// sampler must score 0, and a depolarized mix at α = 0.5 must recover half
// the exact score — all within the sampling error, with wide margins.
func xebWorkload() Workload {
	return Workload{
		Name:        "xeb",
		Stresses:    "internal/xeb estimators, state sampling, probability extraction",
		Expectation: "sampled XEB scores recover the exact moments: ideal ⇒ L, uniform ⇒ 0, α=0.5 mix ⇒ L/2",
		Build: func(p Params) (*Instance, error) {
			rows, cols, depth, shots := 3, 4, 20, 8192
			if p.Tier == TierFull {
				rows, cols, depth, shots = 4, 4, 20, 32768
			}
			c := circuit.Supremacy(circuit.SupremacyOptions{
				Rows: rows, Cols: cols, Depth: depth, Seed: p.Seed + 100,
			})
			n := rows * cols
			inst := &Instance{Qubits: n, Circuits: []*circuit.Circuit{c}}
			inst.Run = func(h *Harness) (*Result, error) {
				r := &Result{Gates: len(c.Gates), Work: map[string]float64{}, Values: map[string]float64{}}
				v, err := h.State(c)
				if err != nil {
					return nil, err
				}
				h.checkNorm(r, "state", v)
				probs := v.Probabilities()
				rng := rand.New(rand.NewSource(p.Seed*0x9e3779b9 + 42))

				// Exact moments of this instance: the ideal sampler's linear
				// score L = 2^n·Σp²−1, and the exact cross entropy of ideal
				// sampling, which is the Shannon entropy of p.
				var s2, entropy float64
				for _, q := range probs {
					s2 += q * q
					if q > 0 {
						entropy -= q * math.Log(q)
					}
				}
				exactLin := float64(int(1)<<n)*s2 - 1
				r.Values["exact-linear-xeb"] = exactLin
				// Chaoticity stays advisory-loose: small instances wander in
				// a finite-size band around the Porter–Thomas value 1.
				r.checkBound("exact linear score (chaoticity band)", exactLin, 0.5, 4)

				ideal, err := xeb.Sample(probs, shots, rng)
				if err != nil {
					return nil, err
				}
				lin, err := xeb.LinearXEB(n, probs, ideal)
				if err != nil {
					return nil, err
				}
				r.Values["xeb-ideal"] = lin
				r.checkBound("ideal sampler recovers exact score", lin/exactLin, 0.9, 1.1)

				ce, err := xeb.CrossEntropy(probs, ideal)
				if err != nil {
					return nil, err
				}
				alpha := xeb.FidelityFromCrossEntropy(n, ce)
				alphaExact := xeb.FidelityFromCrossEntropy(n, entropy)
				r.Values["ce-fidelity-ideal"] = alpha
				r.checkBound("cross-entropy fidelity vs exact", alpha-alphaExact, -0.1, 0.1)

				uniform := xeb.UniformSample(n, shots, rng)
				lin, err = xeb.LinearXEB(n, probs, uniform)
				if err != nil {
					return nil, err
				}
				r.Values["xeb-uniform"] = lin
				r.checkBound("uniform sampler scores zero", lin, -0.15, 0.15)

				mixed, err := xeb.Sample(xeb.DepolarizedProbs(probs, 0.5), shots, rng)
				if err != nil {
					return nil, err
				}
				lin, err = xeb.LinearXEB(n, probs, mixed)
				if err != nil {
					return nil, err
				}
				r.Values["xeb-mixed"] = lin
				r.checkBound("α=0.5 mix recovers half the score", lin/(0.5*exactLin), 0.8, 1.2)

				r.Work["amps"] = float64(len(c.Gates)) * float64(int(1)<<n)
				r.Work["samples"] = float64(3 * shots)
				return r, nil
			}
			return inst, nil
		},
	}
}
