package workload

import (
	"math"
	"math/rand"

	"qusim/internal/circuit"
	"qusim/internal/densitymatrix"
	"qusim/internal/noise"
)

// noiseTrajectoryWorkload is the "studies of their behavior under noise"
// use case: Monte Carlo Pauli-channel trajectories over a small supremacy
// circuit. Trajectories always run through statevec (pure states are the
// whole point of the unravelling — 2^n memory instead of 4^n), and the
// trajectory-averaged mixed state is spot-checked against the exact
// internal/densitymatrix evolution, which both tiers keep at n ≤ 8 so the
// 4^n reference stays tractable. The fidelity estimate must also track the
// first-order (1−p)^insertions prediction within the Monte Carlo error.
func noiseTrajectoryWorkload() Workload {
	return Workload{
		Name:        "noise-trajectory",
		Stresses:    "internal/noise trajectory sampling, internal/densitymatrix cross-check",
		Expectation: "mean fidelity tracks (1−p)^g and trajectory-mean probs match the density matrix",
		Build: func(p Params) (*Instance, error) {
			rows, cols, depth, traj := 2, 3, 8, 64
			if p.Tier == TierFull {
				rows, cols, depth, traj = 2, 4, 10, 256
			}
			const errProb = 0.01
			c := circuit.Supremacy(circuit.SupremacyOptions{
				Rows: rows, Cols: cols, Depth: depth, Seed: p.Seed + 200,
			})
			n := rows * cols
			inst := &Instance{Qubits: n, Circuits: []*circuit.Circuit{c}}
			inst.Run = func(h *Harness) (*Result, error) {
				r := &Result{Gates: traj * len(c.Gates), Work: map[string]float64{}, Values: map[string]float64{}}
				ch := noise.Depolarizing(errProb)
				rng := rand.New(rand.NewSource(p.Seed*0x2545f491 + 7))
				res, err := noise.Run(c, ch, traj, false, rng)
				if err != nil {
					return nil, err
				}
				r.Values["mean-fidelity"] = res.MeanFidelity
				r.checkBound("mean fidelity", res.MeanFidelity, 0, 1+1e-9)

				expected := noise.ExpectedGateFidelity(c, ch)
				r.Values["expected-fidelity"] = expected
				// Per-trajectory fidelity is bounded in [0,1], so the Monte
				// Carlo error of the mean is at most 0.5/√T; gate at 5σ.
				tol := 2.5 / math.Sqrt(float64(traj))
				r.checkBound("fidelity vs (1-p)^g", res.MeanFidelity-expected, -tol, tol)

				exact, err := densitymatrix.RunNoisy(c, ch, false)
				if err != nil {
					return nil, err
				}
				var l1 float64
				for i, q := range exact.Probabilities() {
					l1 += math.Abs(res.MeanProbs[i] - q)
				}
				r.Values["dm-l1"] = l1
				// The L1 error of a T-trajectory mean over 2^n bins scales
				// like √(2^n/T); measured ≈ 0.5·√(2^n/T) here, gated at 3×.
				r.checkBound("trajectory mean vs density matrix (L1)", l1,
					0, 1.5*math.Sqrt(float64(int(1)<<n)/float64(traj)))

				r.Work["traj"] = float64(traj)
				r.Work["gates"] = float64(r.Gates)
				r.Work["amps"] = float64(r.Gates) * float64(int(1)<<n)
				return r, nil
			}
			return inst, nil
		},
	}
}
