package gate

import "fmt"

// Embed lifts a gate matrix u onto a larger k-qubit space. pos[j] gives the
// bit position, within the k-qubit space, of u's gate-local qubit j. The
// remaining k−len(pos) qubits are acted on by the identity. This is the
// permuted Kronecker-product construction of Sec. 2 restricted to a cluster,
// and the building block of gate fusion (Sec. 3.6.1 step 2).
func Embed(u Matrix, pos []int, k int) Matrix {
	if len(pos) != u.K {
		panic(fmt.Sprintf("gate: Embed got %d positions for a %d-qubit gate", len(pos), u.K))
	}
	seen := 0
	for _, p := range pos {
		if p < 0 || p >= k {
			panic(fmt.Sprintf("gate: Embed position %d out of range for k=%d", p, k))
		}
		if seen&(1<<p) != 0 {
			panic(fmt.Sprintf("gate: Embed duplicate position %d", p))
		}
		seen |= 1 << p
	}
	out := New(k)
	d := out.Dim()
	dg := u.Dim()
	// scatter[g] spreads gate-local index g onto the positions in pos.
	scatter := make([]int, dg)
	for g := 0; g < dg; g++ {
		s := 0
		for j := 0; j < u.K; j++ {
			if g&(1<<j) != 0 {
				s |= 1 << pos[j]
			}
		}
		scatter[g] = s
	}
	mask := seen
	for c := 0; c < d; c++ {
		// Gather the gate-input bits of column c.
		gi := 0
		for j := 0; j < u.K; j++ {
			if c&(1<<pos[j]) != 0 {
				gi |= 1 << j
			}
		}
		rest := c &^ mask
		for gout := 0; gout < dg; gout++ {
			v := u.Data[gout*dg+gi]
			if v == 0 {
				continue
			}
			r := rest | scatter[gout]
			out.Data[r*d+c] = v
		}
	}
	return out
}

// Op is one gate of a fusion sequence: the unitary U applied to the qubits
// at the given positions of the cluster space.
type Op struct {
	U   Matrix
	Pos []int
}

// Fuse multiplies a sequence of gates, applied in program order (ops[0]
// first), into a single k-qubit matrix: U = E(ops[m−1])·…·E(ops[0]).
// This turns a cluster of 1- and 2-qubit gates into one k-qubit gate kernel
// invocation, raising operational intensity (Sec. 3.3).
func Fuse(ops []Op, k int) Matrix {
	out := Identity(k)
	for _, op := range ops {
		out = Mul(Embed(op.U, op.Pos, k), out)
	}
	return out
}

// PermuteQubits returns the matrix obtained by relabeling qubit j of m to
// qubit perm[j]. The paper pre-permutes gate matrices so qubit indices are
// always sorted, making state-vector accesses more local (Sec. 3.2); the
// scheduler uses this to normalize cluster matrices.
func PermuteQubits(m Matrix, perm []int) Matrix {
	if len(perm) != m.K {
		panic(fmt.Sprintf("gate: PermuteQubits got %d positions for a %d-qubit gate", len(perm), m.K))
	}
	return Embed(m, perm, m.K)
}
