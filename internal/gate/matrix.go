// Package gate provides dense unitary matrices acting on small numbers of
// qubits, the standard gate set used by quantum supremacy circuits, and the
// embedding/fusion machinery that merges a sequence of 1- and 2-qubit gates
// into a single k-qubit gate matrix (Sec. 3.6.1, step 2 of Häner & Steiger,
// SC'17).
//
// Conventions: qubit j of a k-qubit matrix corresponds to bit j (the j-th
// least significant bit) of the row/column index. Basis state |b_{k-1}…b_1
// b_0⟩ has index Σ b_j 2^j.
package gate

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense, row-major complex matrix acting on K qubits.
// Its dimension is 2^K × 2^K.
type Matrix struct {
	K    int          // number of qubits the matrix acts on
	Data []complex128 // row-major, len = (1<<K) * (1<<K)
}

// New returns a zero matrix on k qubits.
func New(k int) Matrix {
	if k < 0 || k > 30 {
		panic(fmt.Sprintf("gate: invalid qubit count %d", k))
	}
	d := 1 << k
	return Matrix{K: k, Data: make([]complex128, d*d)}
}

// Identity returns the identity matrix on k qubits.
func Identity(k int) Matrix {
	m := New(k)
	d := m.Dim()
	for i := 0; i < d; i++ {
		m.Data[i*d+i] = 1
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must have equal,
// power-of-two length 2^k with 2^k rows.
func FromRows(rows [][]complex128) Matrix {
	d := len(rows)
	k := 0
	for 1<<k < d {
		k++
	}
	if 1<<k != d {
		panic(fmt.Sprintf("gate: dimension %d is not a power of two", d))
	}
	m := New(k)
	for r, row := range rows {
		if len(row) != d {
			panic(fmt.Sprintf("gate: row %d has length %d, want %d", r, len(row), d))
		}
		copy(m.Data[r*d:(r+1)*d], row)
	}
	return m
}

// Dim returns the matrix dimension 2^K.
func (m Matrix) Dim() int { return 1 << m.K }

// At returns element (r, c).
func (m Matrix) At(r, c int) complex128 { return m.Data[r*m.Dim()+c] }

// Set assigns element (r, c).
func (m Matrix) Set(r, c int, v complex128) { m.Data[r*m.Dim()+c] = v }

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	c := Matrix{K: m.K, Data: make([]complex128, len(m.Data))}
	copy(c.Data, m.Data)
	return c
}

// Mul returns the matrix product a·b. Both operands must act on the same
// number of qubits.
func Mul(a, b Matrix) Matrix {
	if a.K != b.K {
		panic(fmt.Sprintf("gate: Mul dimension mismatch: %d vs %d qubits", a.K, b.K))
	}
	d := a.Dim()
	out := New(a.K)
	for r := 0; r < d; r++ {
		arow := a.Data[r*d : (r+1)*d]
		orow := out.Data[r*d : (r+1)*d]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[i*d : (i+1)*d]
			for c, bv := range brow {
				orow[c] += av * bv
			}
		}
	}
	return out
}

// Kron returns the Kronecker product a⊗b: a acts on the high-order qubits,
// b on the low-order qubits, matching the 1⊗…⊗U⊗…⊗1 construction of Sec. 2.
func Kron(a, b Matrix) Matrix {
	out := New(a.K + b.K)
	da, db, d := a.Dim(), b.Dim(), out.Dim()
	for ra := 0; ra < da; ra++ {
		for ca := 0; ca < da; ca++ {
			av := a.Data[ra*da+ca]
			if av == 0 {
				continue
			}
			for rb := 0; rb < db; rb++ {
				for cb := 0; cb < db; cb++ {
					out.Data[(ra*db+rb)*d+(ca*db+cb)] = av * b.Data[rb*db+cb]
				}
			}
		}
	}
	return out
}

// Dagger returns the conjugate transpose of m.
func (m Matrix) Dagger() Matrix {
	d := m.Dim()
	out := New(m.K)
	for r := 0; r < d; r++ {
		for c := 0; c < d; c++ {
			out.Data[c*d+r] = cmplx.Conj(m.Data[r*d+c])
		}
	}
	return out
}

// Scale returns m multiplied by the scalar s.
func (m Matrix) Scale(s complex128) Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// IsUnitary reports whether m†m = 1 to within tol (max-norm of the residual).
func (m Matrix) IsUnitary(tol float64) bool {
	p := Mul(m.Dagger(), m)
	d := m.Dim()
	for r := 0; r < d; r++ {
		for c := 0; c < d; c++ {
			want := complex128(0)
			if r == c {
				want = 1
			}
			if cmplx.Abs(p.Data[r*d+c]-want) > tol {
				return false
			}
		}
	}
	return true
}

// IsDiagonal reports whether all off-diagonal entries are ≤ tol in modulus.
// Diagonal gates are the ones the global-gate specialization of Sec. 3.5 can
// execute on global qubits without communication.
func (m Matrix) IsDiagonal(tol float64) bool {
	d := m.Dim()
	for r := 0; r < d; r++ {
		for c := 0; c < d; c++ {
			if r != c && cmplx.Abs(m.Data[r*d+c]) > tol {
				return false
			}
		}
	}
	return true
}

// Diagonal returns the diagonal entries of m.
func (m Matrix) Diagonal() []complex128 {
	d := m.Dim()
	out := make([]complex128, d)
	for i := 0; i < d; i++ {
		out[i] = m.Data[i*d+i]
	}
	return out
}

// ApproxEqual reports whether a and b agree element-wise to within tol.
func ApproxEqual(a, b Matrix, tol float64) bool {
	if a.K != b.K {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// EqualUpToGlobalPhase reports whether a = e^{iφ}·b for some φ, to within
// tol. Gate specialization absorbs global phases (Sec. 3.5), so fused
// matrices are compared modulo phase.
func EqualUpToGlobalPhase(a, b Matrix, tol float64) bool {
	if a.K != b.K {
		return false
	}
	// Find the largest-modulus entry of b to fix the phase.
	best, bi := 0.0, -1
	for i := range b.Data {
		if m := cmplx.Abs(b.Data[i]); m > best {
			best, bi = m, i
		}
	}
	if bi < 0 || best < tol {
		return ApproxEqual(a, b, tol)
	}
	if cmplx.Abs(a.Data[bi]) < tol {
		return false
	}
	phase := a.Data[bi] / b.Data[bi]
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-phase*b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m Matrix) String() string {
	d := m.Dim()
	s := fmt.Sprintf("Matrix(k=%d)[\n", m.K)
	for r := 0; r < d; r++ {
		s += " "
		for c := 0; c < d; c++ {
			v := m.Data[r*d+c]
			s += fmt.Sprintf(" (%6.3f%+6.3fi)", real(v), imag(v))
		}
		s += "\n"
	}
	return s + "]"
}
