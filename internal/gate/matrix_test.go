package gate

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func TestIdentity(t *testing.T) {
	for k := 0; k <= 4; k++ {
		id := Identity(k)
		if !id.IsUnitary(tol) {
			t.Errorf("Identity(%d) not unitary", k)
		}
		if !id.IsDiagonal(tol) {
			t.Errorf("Identity(%d) not diagonal", k)
		}
		d := id.Dim()
		if d != 1<<k {
			t.Errorf("Identity(%d).Dim() = %d, want %d", k, d, 1<<k)
		}
	}
}

func TestFromRowsPanics(t *testing.T) {
	cases := [][][]complex128{
		{{1, 0}, {0, 1}, {0, 0}}, // 3 rows: not a power of two
		{{1, 0, 0}, {0, 1, 0}},   // ragged vs dim
		{{1}, {0}},               // rows of wrong length for dim 2
	}
	for i, rows := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: FromRows did not panic", i)
				}
			}()
			FromRows(rows)
		}()
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 1; k <= 3; k++ {
		u := RandomUnitary(k, rng)
		if !ApproxEqual(Mul(u, Identity(k)), u, tol) {
			t.Errorf("k=%d: u·I != u", k)
		}
		if !ApproxEqual(Mul(Identity(k), u), u, tol) {
			t.Errorf("k=%d: I·u != u", k)
		}
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(3)
		a, b, c := RandomUnitary(k, rng), RandomUnitary(k, rng), RandomUnitary(k, rng)
		lhs := Mul(Mul(a, b), c)
		rhs := Mul(a, Mul(b, c))
		if !ApproxEqual(lhs, rhs, 1e-10) {
			t.Fatalf("trial %d: (ab)c != a(bc)", trial)
		}
	}
}

func TestDaggerInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(3)
		u := RandomUnitary(k, rng)
		if !ApproxEqual(Mul(u, u.Dagger()), Identity(k), 1e-10) {
			t.Fatalf("trial %d: u·u† != I", trial)
		}
	}
}

func TestKronDimsAndValues(t *testing.T) {
	a := X()
	b := Z()
	k := Kron(a, b) // X on qubit 1, Z on qubit 0
	if k.K != 2 {
		t.Fatalf("Kron(X,Z).K = %d, want 2", k.K)
	}
	// (X⊗Z)|00⟩ = |10⟩ ; index 0 -> index 2 with +1.
	if k.At(2, 0) != 1 {
		t.Errorf("(X⊗Z)[2,0] = %v, want 1", k.At(2, 0))
	}
	// (X⊗Z)|01⟩ = −|11⟩.
	if k.At(3, 1) != -1 {
		t.Errorf("(X⊗Z)[3,1] = %v, want -1", k.At(3, 1))
	}
}

func TestKronMatchesEmbed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		a := RandomUnitary(1, rng)
		b := RandomUnitary(1, rng)
		// a on qubit 1, b on qubit 0.
		kron := Kron(a, b)
		emb := Mul(Embed(a, []int{1}, 2), Embed(b, []int{0}, 2))
		if !ApproxEqual(kron, emb, 1e-10) {
			t.Fatalf("trial %d: Kron != Embed·Embed", trial)
		}
	}
}

func TestStandardGatesUnitary(t *testing.T) {
	gates := map[string]Matrix{
		"H": H(), "X": X(), "Y": Y(), "Z": Z(), "S": S(), "T": T(),
		"XHalf": XHalf(), "YHalf": YHalf(), "CZ": CZ(), "CNOT": CNOT(),
		"Swap": Swap(), "Toffoli": Toffoli(),
		"Rx": Rx(0.7), "Ry": Ry(1.3), "Rz": Rz(2.1),
		"Phase": Phase(0.9), "CPhase": CPhase(1.7),
	}
	for name, g := range gates {
		if !g.IsUnitary(tol) {
			t.Errorf("%s is not unitary", name)
		}
	}
}

func TestDiagonalPredicates(t *testing.T) {
	diag := []Matrix{Z(), S(), T(), CZ(), Rz(0.3), Phase(0.5), CPhase(0.2)}
	for i, g := range diag {
		if !g.IsDiagonal(tol) {
			t.Errorf("diag case %d should be diagonal", i)
		}
	}
	nondiag := []Matrix{H(), X(), Y(), XHalf(), YHalf(), CNOT(), Swap()}
	for i, g := range nondiag {
		if g.IsDiagonal(tol) {
			t.Errorf("nondiag case %d should not be diagonal", i)
		}
	}
}

func TestSqrtGates(t *testing.T) {
	// X^{1/2} squared must equal X, Y^{1/2} squared must equal Y
	// (up to global phase).
	if !EqualUpToGlobalPhase(Mul(XHalf(), XHalf()), X(), 1e-12) {
		t.Errorf("XHalf² != X: got %v", Mul(XHalf(), XHalf()))
	}
	if !EqualUpToGlobalPhase(Mul(YHalf(), YHalf()), Y(), 1e-12) {
		t.Errorf("YHalf² != Y: got %v", Mul(YHalf(), YHalf()))
	}
	// T² = S, S² = Z.
	if !ApproxEqual(Mul(T(), T()), S(), 1e-12) {
		t.Errorf("T² != S")
	}
	if !ApproxEqual(Mul(S(), S()), Z(), 1e-12) {
		t.Errorf("S² != Z")
	}
}

func TestHadamardInvolution(t *testing.T) {
	if !ApproxEqual(Mul(H(), H()), Identity(1), tol) {
		t.Error("H² != I")
	}
}

func TestCNOTAction(t *testing.T) {
	cx := CNOT()
	// Basis |c t⟩, index 2c + t. Control=1, target=0 -> target flips: |10⟩→|11⟩.
	if cx.At(3, 2) != 1 || cx.At(2, 3) != 1 {
		t.Error("CNOT does not flip target when control set")
	}
	if cx.At(0, 0) != 1 || cx.At(1, 1) != 1 {
		t.Error("CNOT does not fix states with control clear")
	}
}

func TestCZSymmetric(t *testing.T) {
	cz := CZ()
	sw := Swap()
	if !ApproxEqual(Mul(sw, Mul(cz, sw)), cz, tol) {
		t.Error("CZ is not symmetric under qubit exchange")
	}
}

func TestControlled(t *testing.T) {
	// Controlled(X) with control as high qubit is exactly our CNOT.
	if !ApproxEqual(Controlled(X()), CNOT(), tol) {
		t.Error("Controlled(X) != CNOT")
	}
	// Controlled(Z) = CZ.
	if !ApproxEqual(Controlled(Z()), CZ(), tol) {
		t.Error("Controlled(Z) != CZ")
	}
}

func TestRandomUnitaryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + int(uint64(seed)%3)
		u := RandomUnitary(k, r)
		return u.IsUnitary(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRandomDiagonalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + int(uint64(seed)%3)
		u := RandomDiagonal(k, r)
		return u.IsUnitary(1e-9) && u.IsDiagonal(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEqualUpToGlobalPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	u := RandomUnitary(2, rng)
	phase := cmplx.Exp(complex(0, 1.234))
	if !EqualUpToGlobalPhase(u.Scale(phase), u, 1e-10) {
		t.Error("scaled matrix should equal original up to phase")
	}
	if EqualUpToGlobalPhase(u, RandomUnitary(2, rng), 1e-10) {
		t.Error("two independent random unitaries should differ")
	}
	if !EqualUpToGlobalPhase(New(1), New(1), 1e-10) {
		t.Error("zero matrices should compare equal")
	}
}

func TestDiagonalEntries(t *testing.T) {
	d := T().Diagonal()
	if d[0] != 1 {
		t.Errorf("T diagonal[0] = %v", d[0])
	}
	want := cmplx.Exp(1i * math.Pi / 4)
	if cmplx.Abs(d[1]-want) > tol {
		t.Errorf("T diagonal[1] = %v, want %v", d[1], want)
	}
}

func TestScaleAndClone(t *testing.T) {
	u := H()
	c := u.Clone()
	c.Set(0, 0, 42)
	if u.At(0, 0) == 42 {
		t.Error("Clone aliases original data")
	}
	s := u.Scale(2)
	if cmplx.Abs(s.At(0, 0)-2*u.At(0, 0)) > tol {
		t.Error("Scale did not scale")
	}
}
