package gate

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// Standard single- and two-qubit gates of the quantum supremacy circuits
// (Sec. 2 of the paper) plus the usual extras needed by the example
// algorithms (QFT, Grover).

var (
	invSqrt2 = complex(1/math.Sqrt2, 0)
)

// H returns the Hadamard gate 1/√2 [[1,1],[1,-1]].
func H() Matrix {
	return FromRows([][]complex128{
		{invSqrt2, invSqrt2},
		{invSqrt2, -invSqrt2},
	})
}

// X returns the bit-flip (NOT) gate.
func X() Matrix {
	return FromRows([][]complex128{
		{0, 1},
		{1, 0},
	})
}

// Y returns the Pauli-Y gate.
func Y() Matrix {
	return FromRows([][]complex128{
		{0, -1i},
		{1i, 0},
	})
}

// Z returns the Pauli-Z gate.
func Z() Matrix {
	return FromRows([][]complex128{
		{1, 0},
		{0, -1},
	})
}

// S returns the phase gate diag(1, i).
func S() Matrix {
	return FromRows([][]complex128{
		{1, 0},
		{0, 1i},
	})
}

// T returns the T gate diag(1, e^{iπ/4}).
func T() Matrix {
	return FromRows([][]complex128{
		{1, 0},
		{0, cmplx.Exp(1i * math.Pi / 4)},
	})
}

// XHalf returns X^{1/2} = 1/2 [[1+i, 1−i], [1−i, 1+i]].
func XHalf() Matrix {
	return FromRows([][]complex128{
		{complex(0.5, 0.5), complex(0.5, -0.5)},
		{complex(0.5, -0.5), complex(0.5, 0.5)},
	})
}

// YHalf returns Y^{1/2} = 1/2 [[1+i, −1−i], [1+i, 1+i]].
func YHalf() Matrix {
	return FromRows([][]complex128{
		{complex(0.5, 0.5), complex(-0.5, -0.5)},
		{complex(0.5, 0.5), complex(0.5, 0.5)},
	})
}

// Rx returns the rotation exp(−iθX/2).
func Rx(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return FromRows([][]complex128{
		{c, s},
		{s, c},
	})
}

// Ry returns the rotation exp(−iθY/2).
func Ry(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return FromRows([][]complex128{
		{c, -s},
		{s, c},
	})
}

// Rz returns the rotation diag(e^{−iθ/2}, e^{iθ/2}).
func Rz(theta float64) Matrix {
	return FromRows([][]complex128{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	})
}

// Phase returns the phase gate diag(1, e^{iθ}).
func Phase(theta float64) Matrix {
	return FromRows([][]complex128{
		{1, 0},
		{0, cmplx.Exp(complex(0, theta))},
	})
}

// CZ returns the controlled-Z gate diag(1,1,1,−1). It is symmetric in its
// qubits, as noted in Sec. 2.
func CZ() Matrix {
	m := Identity(2)
	m.Set(3, 3, -1)
	return m
}

// CPhase returns the controlled-phase gate diag(1,1,1,e^{iθ}); used by QFT.
func CPhase(theta float64) Matrix {
	m := Identity(2)
	m.Set(3, 3, cmplx.Exp(complex(0, theta)))
	return m
}

// CNOT returns the controlled-NOT gate with gate-local qubit 0 the target
// and gate-local qubit 1 the control: basis |c t⟩ with index 2c + t.
func CNOT() Matrix {
	return FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
}

// Swap returns the two-qubit SWAP gate.
func Swap() Matrix {
	return FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	})
}

// Controlled returns the controlled version of u: gate-local qubits
// 0..u.K−1 are u's qubits and qubit u.K is the control.
func Controlled(u Matrix) Matrix {
	out := Identity(u.K + 1)
	d, du := out.Dim(), u.Dim()
	for r := 0; r < du; r++ {
		for c := 0; c < du; c++ {
			out.Data[(du+r)*d+(du+c)] = u.Data[r*du+c]
		}
		out.Data[(du+r)*d+(du+r)] = u.Data[r*du+r]
	}
	return out
}

// Toffoli returns the doubly-controlled NOT with gate-local qubit 0 the
// target and qubits 1, 2 the controls.
func Toffoli() Matrix {
	return Controlled(CNOT())
}

// RandomUnitary returns a Haar-ish random unitary on k qubits, produced by
// Gram–Schmidt orthonormalization of a complex Gaussian matrix. It is used
// by property-based tests and by the dense-gate worst-case scheduling mode.
func RandomUnitary(k int, rng *rand.Rand) Matrix {
	d := 1 << k
	m := New(k)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Modified Gram–Schmidt over rows.
	for r := 0; r < d; r++ {
		row := m.Data[r*d : (r+1)*d]
		for p := 0; p < r; p++ {
			prev := m.Data[p*d : (p+1)*d]
			var dot complex128
			for i := range row {
				dot += cmplx.Conj(prev[i]) * row[i]
			}
			for i := range row {
				row[i] -= dot * prev[i]
			}
		}
		var norm float64
		for _, v := range row {
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for i := range row {
			row[i] *= inv
		}
	}
	return m
}

// RandomDiagonal returns a random diagonal unitary on k qubits.
func RandomDiagonal(k int, rng *rand.Rand) Matrix {
	m := New(k)
	d := m.Dim()
	for i := 0; i < d; i++ {
		m.Data[i*d+i] = cmplx.Exp(complex(0, rng.Float64()*2*math.Pi))
	}
	return m
}
