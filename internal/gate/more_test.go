package gate

import (
	"math"
	"math/rand"
	"testing"
)

func TestRotationComposition(t *testing.T) {
	// Rz(a)·Rz(b) = Rz(a+b); same for Rx, Ry.
	for name, f := range map[string]func(float64) Matrix{"Rx": Rx, "Ry": Ry, "Rz": Rz} {
		a, b := 0.7, 1.9
		got := Mul(f(a), f(b))
		want := f(a + b)
		if !ApproxEqual(got, want, 1e-12) {
			t.Errorf("%s(a)·%s(b) != %s(a+b)", name, name, name)
		}
	}
}

func TestRotationFullTurn(t *testing.T) {
	// A 2π rotation is −1 (spinor sign), 4π is +1.
	for name, f := range map[string]func(float64) Matrix{"Rx": Rx, "Ry": Ry, "Rz": Rz} {
		if !ApproxEqual(f(4*math.Pi), Identity(1), 1e-12) {
			t.Errorf("%s(4π) != I", name)
		}
		if !ApproxEqual(f(2*math.Pi), Identity(1).Scale(-1), 1e-12) {
			t.Errorf("%s(2π) != −I", name)
		}
	}
}

func TestPhaseVsRz(t *testing.T) {
	// Phase(θ) equals Rz(θ) up to global phase.
	if !EqualUpToGlobalPhase(Phase(0.9), Rz(0.9), 1e-12) {
		t.Error("Phase(θ) and Rz(θ) differ beyond global phase")
	}
}

func TestToffoliAction(t *testing.T) {
	tof := Toffoli()
	// Basis |c2 c1 t⟩ with target at bit 0: flips t iff both controls set.
	for in := 0; in < 8; in++ {
		want := in
		if in&0b110 == 0b110 {
			want = in ^ 1
		}
		if tof.At(want, in) != 1 {
			t.Errorf("Toffoli[%d,%d] = %v, want 1", want, in, tof.At(want, in))
		}
	}
}

func TestKronAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	a, b, c := RandomUnitary(1, rng), RandomUnitary(1, rng), RandomUnitary(1, rng)
	lhs := Kron(Kron(a, b), c)
	rhs := Kron(a, Kron(b, c))
	if !ApproxEqual(lhs, rhs, 1e-12) {
		t.Error("(a⊗b)⊗c != a⊗(b⊗c)")
	}
}

func TestKronOfUnitariesIsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	a, b := RandomUnitary(2, rng), RandomUnitary(1, rng)
	if !Kron(a, b).IsUnitary(1e-9) {
		t.Error("Kron of unitaries not unitary")
	}
}

func TestMulNonCommutative(t *testing.T) {
	if ApproxEqual(Mul(H(), T()), Mul(T(), H()), 1e-12) {
		t.Error("H and T unexpectedly commute")
	}
}

func TestSwapConjugation(t *testing.T) {
	// SWAP·(A⊗B)·SWAP = B⊗A.
	rng := rand.New(rand.NewSource(122))
	a, b := RandomUnitary(1, rng), RandomUnitary(1, rng)
	lhs := Mul(Swap(), Mul(Kron(a, b), Swap()))
	rhs := Kron(b, a)
	if !ApproxEqual(lhs, rhs, 1e-10) {
		t.Error("SWAP conjugation does not swap tensor factors")
	}
}

func TestControlledTwoQubitGate(t *testing.T) {
	// Controlled(SWAP) = Fredkin: control at gate-local qubit 2.
	fredkin := Controlled(Swap())
	if !fredkin.IsUnitary(1e-12) {
		t.Fatal("Fredkin not unitary")
	}
	for in := 0; in < 8; in++ {
		want := in
		if in&0b100 != 0 {
			// Swap bits 0 and 1.
			b0 := in & 1
			b1 := in >> 1 & 1
			want = in&^0b11 | b0<<1 | b1
		}
		if fredkin.At(want, in) != 1 {
			t.Errorf("Fredkin[%d,%d] = %v, want 1", want, in, fredkin.At(want, in))
		}
	}
}

func TestDaggerOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	a, b := RandomUnitary(2, rng), RandomUnitary(2, rng)
	lhs := Mul(a, b).Dagger()
	rhs := Mul(b.Dagger(), a.Dagger())
	if !ApproxEqual(lhs, rhs, 1e-10) {
		t.Error("(ab)† != b†a†")
	}
}

func TestIdentityZeroQubits(t *testing.T) {
	id := Identity(0)
	if id.Dim() != 1 || id.Data[0] != 1 {
		t.Errorf("Identity(0) = %v", id)
	}
	// Kron with the scalar identity is a no-op.
	h := H()
	if !ApproxEqual(Kron(id, h), h, 1e-15) || !ApproxEqual(Kron(h, id), h, 1e-15) {
		t.Error("Kron with Identity(0) changed the matrix")
	}
}
