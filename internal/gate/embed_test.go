package gate

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmbedIdentityPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	u := RandomUnitary(2, rng)
	// Embedding onto its own space with the identity position map is a no-op.
	if !ApproxEqual(Embed(u, []int{0, 1}, 2), u, tol) {
		t.Error("Embed(u, [0,1], 2) != u")
	}
}

func TestEmbedSwapsQubits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	u := RandomUnitary(2, rng)
	sw := Swap()
	// Reversing the position map conjugates by SWAP.
	rev := Embed(u, []int{1, 0}, 2)
	want := Mul(sw, Mul(u, sw))
	if !ApproxEqual(rev, want, 1e-10) {
		t.Error("Embed with reversed positions != SWAP·u·SWAP")
	}
}

func TestEmbedSingleQubitMatchesKron(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for pos := 0; pos < 3; pos++ {
		u := RandomUnitary(1, rng)
		emb := Embed(u, []int{pos}, 3)
		// Build 1⊗…⊗U⊗…⊗1 with U at bit position pos.
		want := Identity(0)
		for q := 0; q < 3; q++ {
			if q == pos {
				want = Kron(u, want)
			} else {
				want = Kron(Identity(1), want)
			}
		}
		if !ApproxEqual(emb, want, 1e-10) {
			t.Errorf("pos %d: Embed != Kron construction", pos)
		}
	}
}

func TestEmbedPreservesUnitarity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		kg := 1 + r.Intn(2)
		k := kg + r.Intn(3)
		u := RandomUnitary(kg, r)
		pos := r.Perm(k)[:kg]
		return Embed(u, pos, k).IsUnitary(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEmbedPanicsOnBadInput(t *testing.T) {
	u := H()
	for i, fn := range []func(){
		func() { Embed(u, []int{0, 1}, 2) },    // too many positions
		func() { Embed(u, []int{2}, 2) },       // out of range
		func() { Embed(CZ(), []int{1, 1}, 2) }, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFuseTwoGatesOrder(t *testing.T) {
	// Fusing H then T on one qubit must be T·H, not H·T.
	fused := Fuse([]Op{{H(), []int{0}}, {T(), []int{0}}}, 1)
	want := Mul(T(), H())
	if !ApproxEqual(fused, want, tol) {
		t.Error("Fuse applied gates in the wrong order")
	}
}

func TestFuseEqualsExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(2)
		nops := 1 + rng.Intn(6)
		ops := make([]Op, nops)
		want := Identity(k)
		for i := range ops {
			kg := 1 + rng.Intn(2)
			u := RandomUnitary(kg, rng)
			pos := rng.Perm(k)[:kg]
			ops[i] = Op{u, pos}
			want = Mul(Embed(u, pos, k), want)
		}
		fused := Fuse(ops, k)
		if !ApproxEqual(fused, want, 1e-9) {
			t.Fatalf("trial %d: Fuse != explicit product", trial)
		}
		if !fused.IsUnitary(1e-9) {
			t.Fatalf("trial %d: fused matrix not unitary", trial)
		}
	}
}

func TestFuseCZLadderIsDiagonal(t *testing.T) {
	// A cluster of only CZ and T gates must fuse to a diagonal matrix —
	// this is what gate specialization (Sec. 3.5) relies on.
	ops := []Op{
		{CZ(), []int{0, 1}},
		{T(), []int{2}},
		{CZ(), []int{1, 2}},
		{T(), []int{0}},
	}
	fused := Fuse(ops, 3)
	if !fused.IsDiagonal(tol) {
		t.Error("fusion of diagonal gates is not diagonal")
	}
}

func TestPermuteQubitsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	u := RandomUnitary(3, rng)
	if !ApproxEqual(PermuteQubits(u, []int{0, 1, 2}), u, tol) {
		t.Error("identity permutation changed the matrix")
	}
}

func TestPermuteQubitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(2)
		u := RandomUnitary(k, r)
		perm := r.Perm(k)
		inv := make([]int, k)
		for i, p := range perm {
			inv[p] = i
		}
		back := PermuteQubits(PermuteQubits(u, perm), inv)
		return ApproxEqual(back, u, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPermuteQubitsSortedConvention(t *testing.T) {
	// Applying u to qubits (2,0) of a 3-qubit space equals applying the
	// qubit-permuted matrix to sorted qubits (0,2). This is the matrix
	// pre-permutation of Sec. 3.2.
	rng := rand.New(rand.NewSource(17))
	u := RandomUnitary(2, rng)
	direct := Embed(u, []int{2, 0}, 3)
	// Within the sorted pair (0,2): gate-local qubit 0 sits at sorted slot 1
	// (position 2) and gate-local qubit 1 at sorted slot 0 (position 0).
	perm := PermuteQubits(u, []int{1, 0})
	viaSorted := Embed(perm, []int{0, 2}, 3)
	if !ApproxEqual(direct, viaSorted, 1e-10) {
		t.Error("sorted-qubit pre-permutation does not reproduce direct embedding")
	}
}
