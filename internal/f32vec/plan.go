package f32vec

import (
	"fmt"

	"qusim/internal/kernels"
	"qusim/internal/schedule"
)

// RunPlan executes a scheduled plan on the single-precision state — the
// combination the paper's outlook points at: "the simulation of 46 qubits
// is feasible when using single-precision floating point numbers" with the
// same two-swap schedules. Swaps and permutations are exact bit
// permutations; cluster and diagonal matrices are converted to complex64
// per op. The permutation scratch slice is allocated once and reused across
// ops rather than per OpLocalPerm/OpSwap.
func (v *Vector) RunPlan(p *schedule.Plan) error {
	if p.N != v.N {
		return fmt.Errorf("f32vec: plan is for %d qubits, state has %d", p.N, v.N)
	}
	var perm []int // lazily allocated, reused by every permuting op
	fullPerm := func(opPerm []int) []int {
		if perm == nil {
			perm = make([]int, v.N)
		}
		copy(perm, opPerm)
		for q := p.L; q < p.N; q++ {
			perm[q] = q
		}
		return perm
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		switch op.Kind {
		case schedule.OpCluster:
			v.Apply(op.Matrix, op.Positions)
		case schedule.OpDiagonal:
			kernels.ApplyDiagonalF32(v.Amps, kernels.ToComplex64(op.Diag), op.Positions)
		case schedule.OpLocalPerm:
			v.permuteBits(fullPerm(op.Perm))
		case schedule.OpSwap:
			if op.Perm != nil {
				v.permuteBits(fullPerm(op.Perm))
			}
			for j := range op.LocalPos {
				v.swapBits(op.LocalPos[j], op.GlobalPos[j])
			}
		default:
			return fmt.Errorf("f32vec: unknown op kind %v", op.Kind)
		}
	}
	return nil
}

func (v *Vector) swapBits(a, b int) {
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	maskA := 1<<a - 1
	maskB := 1<<b - 1
	sa, sb := 1<<a, 1<<b
	for t := 0; t < len(v.Amps)>>2; t++ {
		base := ((t &^ maskA) << 1) | (t & maskA)
		base = ((base &^ maskB) << 1) | (base & maskB)
		i01 := base | sa
		i10 := base | sb
		v.Amps[i01], v.Amps[i10] = v.Amps[i10], v.Amps[i01]
	}
}

func (v *Vector) permuteBits(perm []int) {
	n := v.N
	cur := make([]int, n)
	loc := make([]int, n)
	for i := range cur {
		cur[i] = i
		loc[i] = i
	}
	for p := 0; p < n; p++ {
		want := perm[p]
		have := cur[p]
		if have == want {
			continue
		}
		v.swapBits(have, want)
		other := loc[want]
		cur[p], cur[other] = want, have
		loc[have], loc[want] = other, p
	}
}
