package f32vec

import (
	"math"
	"math/cmplx"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
)

func TestRunPlanMatchesDoublePrecisionPlan(t *testing.T) {
	n := 12
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{
		Rows: r, Cols: c, Depth: 16, Seed: 13, SkipInitialH: true,
	})
	plan, err := schedule.Build(circ, schedule.DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.Swaps == 0 {
		t.Fatal("want a plan with swaps for this test")
	}
	d := statevec.NewUniform(n)
	if err := plan.Run(d); err != nil {
		t.Fatal(err)
	}
	s := NewUniform(n)
	if err := s.RunPlan(plan); err != nil {
		t.Fatal(err)
	}
	var maxd float64
	for i := range d.Amps {
		if diff := cmplx.Abs(complex128(s.Amps[i]) - d.Amps[i]); diff > maxd {
			maxd = diff
		}
	}
	if maxd > 1e-4 {
		t.Errorf("single-precision plan execution deviates: %g", maxd)
	}
	if math.Abs(s.Norm()-1) > 1e-4 {
		t.Errorf("norm %v", s.Norm())
	}
}

func TestRunPlanValidatesQubits(t *testing.T) {
	circ := circuit.GHZ(6)
	plan, err := schedule.Build(circ, schedule.DefaultOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	v := New(5)
	if err := v.RunPlan(plan); err == nil {
		t.Error("mismatched plan accepted")
	}
}

func TestMemoryAdvantageDocumented(t *testing.T) {
	// The whole point: same qubit count, half the bytes.
	n := 10
	d := statevec.New(n)
	s := New(n)
	if 16*len(d.Amps) != 2*BytesPerAmplitude*len(s.Amps) {
		t.Errorf("memory ratio is not 2x")
	}
}
