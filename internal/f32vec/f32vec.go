// Package f32vec implements a single-precision (complex64) state vector —
// the Sec. 5 outlook of Häner & Steiger, SC'17: "the simulation of 46
// qubits is feasible when using single-precision floating point numbers to
// represent the complex amplitudes", because halving the bytes per
// amplitude doubles the number of qubits that fit in the same memory.
package f32vec

import (
	"fmt"
	"math"

	"qusim/internal/gate"
	"qusim/internal/par"
	"qusim/internal/statevec"
)

// BytesPerAmplitude is 8 for complex64 (vs 16 for complex128).
const BytesPerAmplitude = 8

// MaxQubitsForMemory returns the largest n such that a single-precision
// 2^n-amplitude state fits into the given memory. With the paper's 0.5 PB,
// double precision holds 45 qubits and single precision 46.
func MaxQubitsForMemory(bytes float64, single bool) int {
	per := 16.0
	if single {
		per = BytesPerAmplitude
	}
	n := 0
	for math.Pow(2, float64(n+1))*per <= bytes {
		n++
	}
	return n
}

// Vector is an n-qubit state with complex64 amplitudes.
type Vector struct {
	N    int
	Amps []complex64
}

// New returns |0…0⟩.
func New(n int) *Vector {
	v := &Vector{N: n, Amps: make([]complex64, 1<<n)}
	v.Amps[0] = 1
	return v
}

// NewUniform returns the uniform superposition.
func NewUniform(n int) *Vector {
	v := &Vector{N: n, Amps: make([]complex64, 1<<n)}
	a := complex64(complex(float32(math.Pow(2, -float64(n)/2)), 0))
	for i := range v.Amps {
		v.Amps[i] = a
	}
	return v
}

// FromDouble converts a double-precision state.
func FromDouble(s *statevec.Vector) *Vector {
	v := &Vector{N: s.N, Amps: make([]complex64, len(s.Amps))}
	for i, a := range s.Amps {
		v.Amps[i] = complex64(a)
	}
	return v
}

// ToDouble converts back to double precision.
func (v *Vector) ToDouble() *statevec.Vector {
	out := statevec.New(v.N)
	for i, a := range v.Amps {
		out.Amps[i] = complex128(a)
	}
	return out
}

// Apply applies a gate matrix (given in double precision, converted once)
// to the qubits at sorted positions qs, using the in-place gather/scatter
// kernel.
//
//qusim:hot
func (v *Vector) Apply(m gate.Matrix, qs []int) {
	k := m.K
	if len(qs) != k {
		panic(fmt.Sprintf("f32vec: %d positions for %d-qubit gate", len(qs), k))
	}
	for i := 1; i < k; i++ {
		if qs[i-1] >= qs[i] {
			panic("f32vec: positions must be sorted ascending")
		}
	}
	dk := 1 << k
	mm := make([]complex64, len(m.Data))
	for i, a := range m.Data {
		mm[i] = complex64(a)
	}
	masks := make([]int, k)
	offs := make([]int, dk)
	for j, q := range qs {
		masks[j] = 1<<q - 1
	}
	for x := range offs {
		o := 0
		for j := 0; j < k; j++ {
			if x&(1<<j) != 0 {
				o |= 1 << qs[j]
			}
		}
		offs[x] = o
	}
	amps := v.Amps
	outer := len(amps) >> k
	grain := 4096 >> k
	if grain < 1 {
		grain = 1
	}
	par.For(outer, grain, func(lo, hi int) {
		tmp := make([]complex64, dk)
		for t := lo; t < hi; t++ {
			base := t
			for _, msk := range masks {
				base = ((base &^ msk) << 1) | (base & msk)
			}
			for x := 0; x < dk; x++ {
				tmp[x] = amps[base+offs[x]]
			}
			for r := 0; r < dk; r++ {
				row := mm[r*dk : (r+1)*dk]
				var acc complex64
				for c := 0; c < dk; c++ {
					acc += row[c] * tmp[c]
				}
				amps[base+offs[r]] = acc
			}
		}
	})
}

// Norm returns Σ|α|², accumulated in float64 to limit rounding.
//
//qusim:hot
func (v *Vector) Norm() float64 {
	return par.ReduceFloat64(len(v.Amps), 1<<14, func(lo, hi int) float64 {
		var s float64
		for _, a := range v.Amps[lo:hi] {
			s += float64(real(a))*float64(real(a)) + float64(imag(a))*float64(imag(a))
		}
		return s
	})
}

// Entropy returns the Shannon entropy of the output distribution in nats.
//
//qusim:hot
func (v *Vector) Entropy() float64 {
	return par.ReduceFloat64(len(v.Amps), 1<<14, func(lo, hi int) float64 {
		var s float64
		for _, a := range v.Amps[lo:hi] {
			p := float64(real(a))*float64(real(a)) + float64(imag(a))*float64(imag(a))
			if p > 0 {
				s -= p * math.Log(p)
			}
		}
		return s
	})
}

// MaxDiff returns the largest amplitude deviation from a double-precision
// state — used to quantify single-precision error growth over deep
// circuits.
func (v *Vector) MaxDiff(s *statevec.Vector) float64 {
	var m float64
	for i, a := range v.Amps {
		d := complex128(a) - s.Amps[i]
		if ab := math.Hypot(real(d), imag(d)); ab > m {
			m = ab
		}
	}
	return m
}
