// Package f32vec implements a single-precision (complex64) state vector —
// the Sec. 5 outlook of Häner & Steiger, SC'17: "the simulation of 46
// qubits is feasible when using single-precision floating point numbers to
// represent the complex amplitudes", because halving the bytes per
// amplitude doubles the number of qubits that fit in the same memory.
//
// Gate application is delegated to the complex64 kernel suite in package
// kernels (the same Naive/InPlace/Split/Specialized/Generated ladder as the
// double-precision path), so the single-precision backend benefits from the
// autotuner and the unrolled per-k kernels rather than a lone
// gather/scatter loop.
package f32vec

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"qusim/internal/gate"
	"qusim/internal/kernels"
	"qusim/internal/par"
	"qusim/internal/statevec"
)

// BytesPerAmplitude is 8 for complex64 (vs 16 for complex128).
const BytesPerAmplitude = 8

// MaxQubitsForMemory returns the largest n such that a 2^n-amplitude state
// fits into the given memory. With the paper's 0.5 PB, double precision
// holds 45 qubits and single precision 46 (Sec. 5). The computation is
// exact integer bit arithmetic — the old math.Pow loop accumulated rounding
// on the repeated power evaluation and walked 2^n one step at a time.
func MaxQubitsForMemory(bytes float64, single bool) int {
	per := uint64(16)
	if single {
		per = BytesPerAmplitude
	}
	// Fewer than two amplitudes (also NaN / negative input) holds no qubits.
	if !(bytes >= float64(2*per)) {
		return 0
	}
	amps := bytes / float64(per)
	if amps >= 1<<62 {
		return 62
	}
	return bits.Len64(uint64(amps)) - 1
}

// Vector is an n-qubit state with complex64 amplitudes.
type Vector struct {
	N    int
	Amps []complex64

	// Variant selects the gate kernel implementation; the zero value is
	// kernels.Auto (the tuned/specialized path).
	Variant kernels.Variant

	scratch []complex64 // second vector for the Naive variant, lazily made
}

// New returns |0…0⟩.
func New(n int) *Vector {
	v := &Vector{N: n, Amps: make([]complex64, 1<<n)}
	v.Amps[0] = 1
	return v
}

// NewUniform returns the uniform superposition.
func NewUniform(n int) *Vector {
	v := &Vector{N: n, Amps: make([]complex64, 1<<n)}
	a := complex64(complex(float32(math.Pow(2, -float64(n)/2)), 0))
	for i := range v.Amps {
		v.Amps[i] = a
	}
	return v
}

// FromDouble converts a double-precision state.
func FromDouble(s *statevec.Vector) *Vector {
	v := &Vector{N: s.N, Amps: make([]complex64, len(s.Amps))}
	for i, a := range s.Amps {
		v.Amps[i] = complex64(a)
	}
	return v
}

// ToDouble converts back to double precision.
func (v *Vector) ToDouble() *statevec.Vector {
	out := statevec.New(v.N)
	for i, a := range v.Amps {
		out.Amps[i] = complex128(a)
	}
	return out
}

// Apply applies a gate matrix (given in double precision, converted once)
// to the qubits at sorted positions qs, through the tuned single-precision
// kernel suite.
func (v *Vector) Apply(m gate.Matrix, qs []int) {
	k := m.K
	if len(qs) != k {
		panic(fmt.Sprintf("f32vec: %d positions for %d-qubit gate", len(qs), k))
	}
	for i := 1; i < k; i++ {
		if qs[i-1] >= qs[i] {
			panic("f32vec: positions must be sorted ascending")
		}
	}
	v.applySorted(kernels.ToComplex64(m.Data), qs)
}

// ApplyGate applies m to arbitrary (possibly unsorted) qubits: the matrix is
// pre-permuted to sorted qubit order per Sec. 3.2, and diagonal matrices
// take the no-matvec fast path. This is the per-gate entry point the
// differential-verification backend drives.
func (v *Vector) ApplyGate(m gate.Matrix, qubits ...int) {
	if len(qubits) != m.K {
		panic(fmt.Sprintf("f32vec: %d qubits for a %d-qubit gate", len(qubits), m.K))
	}
	sortedQs, perm := sortPositions(qubits)
	mm := m
	if perm != nil {
		mm = gate.PermuteQubits(m, perm)
	}
	if mm.IsDiagonal(0) {
		kernels.ApplyDiagonalF32(v.Amps, kernels.ToComplex64(mm.Diagonal()), sortedQs)
		return
	}
	v.applySorted(kernels.ToComplex64(mm.Data), sortedQs)
}

func (v *Vector) applySorted(mm []complex64, sortedQs []int) {
	if v.Variant == kernels.Naive && v.scratch == nil {
		v.scratch = make([]complex64, len(v.Amps))
	}
	out := kernels.ApplyF32(v.Variant, v.Amps, mm, sortedQs, v.scratch)
	if &out[0] != &v.Amps[0] {
		v.scratch = v.Amps
		v.Amps = out
	}
}

// sortPositions returns the sorted positions and, if the input was not
// already sorted, the permutation perm with perm[j] = rank of qubits[j].
func sortPositions(qubits []int) ([]int, []int) {
	if sort.IntsAreSorted(qubits) {
		return qubits, nil
	}
	k := len(qubits)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return qubits[idx[a]] < qubits[idx[b]] })
	sortedQs := make([]int, k)
	perm := make([]int, k)
	for rank, j := range idx {
		sortedQs[rank] = qubits[j]
		perm[j] = rank
	}
	return sortedQs, perm
}

// Norm returns Σ|α|², accumulated in float64 to limit rounding.
//
//qusim:hot
func (v *Vector) Norm() float64 {
	return par.ReduceFloat64(len(v.Amps), 1<<14, func(lo, hi int) float64 {
		var s float64
		for _, a := range v.Amps[lo:hi] {
			s += float64(real(a))*float64(real(a)) + float64(imag(a))*float64(imag(a))
		}
		return s
	})
}

// Entropy returns the Shannon entropy of the output distribution in nats.
//
//qusim:hot
func (v *Vector) Entropy() float64 {
	return par.ReduceFloat64(len(v.Amps), 1<<14, func(lo, hi int) float64 {
		var s float64
		for _, a := range v.Amps[lo:hi] {
			p := float64(real(a))*float64(real(a)) + float64(imag(a))*float64(imag(a))
			if p > 0 {
				s -= p * math.Log(p)
			}
		}
		return s
	})
}

// MaxDiff returns the largest amplitude deviation from a double-precision
// state — used to quantify single-precision error growth over deep
// circuits.
func (v *Vector) MaxDiff(s *statevec.Vector) float64 {
	var m float64
	for i, a := range v.Amps {
		d := complex128(a) - s.Amps[i]
		if ab := math.Hypot(real(d), imag(d)); ab > m {
			m = ab
		}
	}
	return m
}
