package f32vec

import (
	"math"
	"sort"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/gate"
	"qusim/internal/statevec"
)

func TestMaxQubitsForMemory(t *testing.T) {
	// The paper's outlook: 0.5 PB holds 45 qubits in double precision and
	// 46 in single precision.
	halfPB := 0.5 * math.Pow(2, 50)
	if n := MaxQubitsForMemory(halfPB, false); n != 45 {
		t.Errorf("double precision in 0.5 PiB: %d qubits, want 45", n)
	}
	if n := MaxQubitsForMemory(halfPB, true); n != 46 {
		t.Errorf("single precision in 0.5 PiB: %d qubits, want 46", n)
	}
}

func TestApplyMatchesDoublePrecision(t *testing.T) {
	n := 10
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 12, Seed: 3})
	d := statevec.New(n)
	s := New(n)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		qs := append([]int(nil), g.Qubits...)
		m := g.Matrix()
		if !sort.IntsAreSorted(qs) {
			// Normalize to sorted order for the f32 kernel.
			perm := sortPerm(qs)
			m = gate.PermuteQubits(m, perm)
			sort.Ints(qs)
		}
		d.ApplyDense(m, qs...)
		s.Apply(m, qs)
	}
	if diff := s.MaxDiff(d); diff > 1e-4 {
		t.Errorf("single vs double precision max diff %g", diff)
	}
	if math.Abs(s.Norm()-1) > 1e-4 {
		t.Errorf("single-precision norm %v", s.Norm())
	}
	if math.Abs(s.Entropy()-d.Entropy()) > 1e-3 {
		t.Errorf("entropy %v vs %v", s.Entropy(), d.Entropy())
	}
}

func sortPerm(qs []int) []int {
	k := len(qs)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return qs[idx[a]] < qs[idx[b]] })
	perm := make([]int, k)
	for rank, j := range idx {
		perm[j] = rank
	}
	return perm
}

func TestRoundTripConversion(t *testing.T) {
	d := statevec.NewUniform(8)
	s := FromDouble(d)
	back := s.ToDouble()
	if diff := d.MaxDiff(back); diff > 1e-7 {
		t.Errorf("round trip max diff %g", diff)
	}
}

func TestUniformInit(t *testing.T) {
	v := NewUniform(10)
	if math.Abs(v.Norm()-1) > 1e-5 {
		t.Errorf("uniform norm %v", v.Norm())
	}
	if math.Abs(v.Entropy()-10*math.Ln2) > 1e-3 {
		t.Errorf("uniform entropy %v", v.Entropy())
	}
}

func TestApplyValidation(t *testing.T) {
	v := New(4)
	h := gate.H()
	for i, fn := range []func(){
		func() { v.Apply(h, []int{0, 1}) },         // arity mismatch
		func() { v.Apply(gate.CZ(), []int{1, 0}) }, // unsorted
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
