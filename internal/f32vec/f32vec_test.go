package f32vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/gate"
	"qusim/internal/kernels"
	"qusim/internal/statevec"
)

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestMaxQubitsForMemory(t *testing.T) {
	// The paper's outlook: 0.5 PB holds 45 qubits in double precision and
	// 46 in single precision.
	halfPB := 0.5 * math.Pow(2, 50)
	if n := MaxQubitsForMemory(halfPB, false); n != 45 {
		t.Errorf("double precision in 0.5 PiB: %d qubits, want 45", n)
	}
	if n := MaxQubitsForMemory(halfPB, true); n != 46 {
		t.Errorf("single precision in 0.5 PiB: %d qubits, want 46", n)
	}
}

func TestApplyMatchesDoublePrecision(t *testing.T) {
	n := 10
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 12, Seed: 3})
	d := statevec.New(n)
	s := New(n)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		qs := append([]int(nil), g.Qubits...)
		m := g.Matrix()
		if !sort.IntsAreSorted(qs) {
			// Normalize to sorted order for the f32 kernel.
			perm := sortPerm(qs)
			m = gate.PermuteQubits(m, perm)
			sort.Ints(qs)
		}
		d.ApplyDense(m, qs...)
		s.Apply(m, qs)
	}
	if diff := s.MaxDiff(d); diff > 1e-4 {
		t.Errorf("single vs double precision max diff %g", diff)
	}
	if math.Abs(s.Norm()-1) > 1e-4 {
		t.Errorf("single-precision norm %v", s.Norm())
	}
	if math.Abs(s.Entropy()-d.Entropy()) > 1e-3 {
		t.Errorf("entropy %v vs %v", s.Entropy(), d.Entropy())
	}
}

func sortPerm(qs []int) []int {
	k := len(qs)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return qs[idx[a]] < qs[idx[b]] })
	perm := make([]int, k)
	for rank, j := range idx {
		perm[j] = rank
	}
	return perm
}

func TestRoundTripConversion(t *testing.T) {
	d := statevec.NewUniform(8)
	s := FromDouble(d)
	back := s.ToDouble()
	if diff := d.MaxDiff(back); diff > 1e-7 {
		t.Errorf("round trip max diff %g", diff)
	}
}

func TestUniformInit(t *testing.T) {
	v := NewUniform(10)
	if math.Abs(v.Norm()-1) > 1e-5 {
		t.Errorf("uniform norm %v", v.Norm())
	}
	if math.Abs(v.Entropy()-10*math.Ln2) > 1e-3 {
		t.Errorf("uniform entropy %v", v.Entropy())
	}
}

func TestApplyValidation(t *testing.T) {
	v := New(4)
	h := gate.H()
	for i, fn := range []func(){
		func() { v.Apply(h, []int{0, 1}) },         // arity mismatch
		func() { v.Apply(gate.CZ(), []int{1, 0}) }, // unsorted
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMaxQubitsForMemoryBoundaries(t *testing.T) {
	cases := []struct {
		bytes  float64
		single bool
		want   int
	}{
		// Exact power-of-two boundaries around the paper's 0.5 PB figure.
		{math.Pow(2, 49), false, 45},
		{math.Pow(2, 49), true, 46},
		// One amplitude short of the boundary drops a qubit.
		{math.Pow(2, 49) - 16, false, 44},
		{math.Pow(2, 49) - 8, true, 45},
		// Just past a boundary does not gain one.
		{math.Pow(2, 49) + 16, false, 45},
		// Small sizes: two amplitudes is one qubit; less holds none.
		{32, false, 1},
		{31, false, 0},
		{16, true, 1},
		{0, false, 0},
		{-100, false, 0},
		{math.NaN(), false, 0},
		// Huge inputs saturate instead of overflowing uint64.
		{math.Pow(2, 80), false, 62},
	}
	for _, c := range cases {
		if got := MaxQubitsForMemory(c.bytes, c.single); got != c.want {
			t.Errorf("MaxQubitsForMemory(%g, %v) = %d, want %d", c.bytes, c.single, got, c.want)
		}
	}
}

// TestVariantsMatchDoublePrecisionDeepCircuit runs a deep random circuit
// through every kernel variant of the single-precision backend and checks
// the drift against the double-precision reference stays within the
// documented tolerance.
func TestVariantsMatchDoublePrecisionDeepCircuit(t *testing.T) {
	n := 9
	r, c := circuit.GridForQubits(n)
	circ := circuit.Supremacy(circuit.SupremacyOptions{Rows: r, Cols: c, Depth: 24, Seed: 11})
	d := statevec.New(n)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		d.Apply(g.Matrix(), g.Qubits...)
	}
	for _, v := range kernels.Variants() {
		s := New(n)
		s.Variant = v
		for i := range circ.Gates {
			g := &circ.Gates[i]
			s.ApplyGate(g.Matrix(), g.Qubits...)
		}
		if diff := s.MaxDiff(d); diff > 1e-4 {
			t.Errorf("variant %s: max diff %g vs double precision", v, diff)
		}
	}
}

func TestApplyGateUnsortedAndDiagonal(t *testing.T) {
	n := 8
	d := statevec.New(n)
	s := New(n)
	// Unsorted 2-qubit gate, diagonal gate, and 1-qubit gate.
	g1 := gate.RandomUnitary(2, newTestRng(7))
	d.Apply(g1, 5, 2)
	s.ApplyGate(g1, 5, 2)
	cz := gate.CZ()
	d.Apply(cz, 6, 1)
	s.ApplyGate(cz, 6, 1)
	h := gate.H()
	d.Apply(h, 3)
	s.ApplyGate(h, 3)
	if diff := s.MaxDiff(d); diff > 1e-5 {
		t.Errorf("ApplyGate max diff %g", diff)
	}
}
