package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	old := SetWorkers(4)
	t.Cleanup(func() { SetWorkers(old) })
	for _, n := range []int{0, 1, 7, 100, 1024} {
		seen := make([]int32, n)
		For(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForRespectsGrainInline(t *testing.T) {
	old := SetWorkers(8)
	t.Cleanup(func() { SetWorkers(old) })
	calls := 0
	// n < grain ⇒ must run inline in a single call.
	For(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("inline call got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("expected 1 inline call, got %d", calls)
	}
}

func TestReduceFloat64Sums(t *testing.T) {
	old := SetWorkers(3)
	t.Cleanup(func() { SetWorkers(old) })
	n := 1000
	got := ReduceFloat64(n, 1, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	want := float64(n*(n-1)) / 2
	if got != want {
		t.Errorf("reduce = %v, want %v", got, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	if got := ReduceFloat64(0, 1, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Errorf("empty reduce = %v", got)
	}
}

func TestSetWorkersResets(t *testing.T) {
	old := SetWorkers(5)
	t.Cleanup(func() { SetWorkers(old) })
	if Workers() != 5 {
		t.Errorf("Workers() = %d, want 5", Workers())
	}
	SetWorkers(0) // reset to GOMAXPROCS
	if Workers() < 1 {
		t.Errorf("Workers() = %d after reset", Workers())
	}
}
