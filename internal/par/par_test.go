package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	old := SetWorkers(4)
	t.Cleanup(func() { SetWorkers(old) })
	for _, n := range []int{0, 1, 7, 100, 1024} {
		seen := make([]int32, n)
		For(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForRespectsGrainInline(t *testing.T) {
	old := SetWorkers(8)
	t.Cleanup(func() { SetWorkers(old) })
	calls := 0
	// n < grain ⇒ must run inline in a single call.
	For(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("inline call got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("expected 1 inline call, got %d", calls)
	}
}

func TestReduceFloat64Sums(t *testing.T) {
	old := SetWorkers(3)
	t.Cleanup(func() { SetWorkers(old) })
	n := 1000
	got := ReduceFloat64(n, 1, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	want := float64(n*(n-1)) / 2
	if got != want {
		t.Errorf("reduce = %v, want %v", got, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	if got := ReduceFloat64(0, 1, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Errorf("empty reduce = %v", got)
	}
}

func TestForNested(t *testing.T) {
	// A worker-pool For must not deadlock when the body itself calls For:
	// waiting callers steal queued chunks instead of blocking on pool slots.
	old := SetWorkers(2)
	t.Cleanup(func() { SetWorkers(old) })
	n, m := 64, 64
	var total int64
	For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(m, 1, func(lo2, hi2 int) {
				atomic.AddInt64(&total, int64(hi2-lo2))
			})
		}
	})
	if total != int64(n*m) {
		t.Errorf("nested For covered %d elements, want %d", total, n*m)
	}
}

func TestForConcurrent(t *testing.T) {
	// Many goroutines hammering the shared pool at once: every call must
	// still cover its own range exactly once.
	old := SetWorkers(4)
	t.Cleanup(func() { SetWorkers(old) })
	const callers = 16
	const n = 512
	done := make(chan [n]int32, callers)
	for c := 0; c < callers; c++ {
		go func() {
			var seen [n]int32
			For(n, 8, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			done <- seen
		}()
	}
	for c := 0; c < callers; c++ {
		seen := <-done
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("caller %d: index %d visited %d times", c, i, v)
			}
		}
	}
}

func TestReduceFloat64Nested(t *testing.T) {
	old := SetWorkers(3)
	t.Cleanup(func() { SetWorkers(old) })
	got := ReduceFloat64(10, 1, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += ReduceFloat64(10, 1, func(lo2, hi2 int) float64 {
				return float64(hi2 - lo2)
			})
		}
		return s
	})
	if got != 100 {
		t.Errorf("nested reduce = %v, want 100", got)
	}
}

func TestSetWorkersResets(t *testing.T) {
	old := SetWorkers(5)
	t.Cleanup(func() { SetWorkers(old) })
	if Workers() != 5 {
		t.Errorf("Workers() = %d, want 5", Workers())
	}
	SetWorkers(0) // reset to GOMAXPROCS
	if Workers() < 1 {
		t.Errorf("Workers() = %d after reset", Workers())
	}
}
