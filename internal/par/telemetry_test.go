package par

import (
	"sync/atomic"
	"testing"

	"qusim/internal/telemetry"
)

// TestTelemetryPoolOccupancy asserts that armed pool instrumentation counts
// chunks (worker-run, caller-stolen or inline) that add up to the work
// actually dispatched, and that disarming stops the counting.
func TestTelemetryPoolOccupancy(t *testing.T) {
	prev := SetWorkers(4)
	t.Cleanup(func() { SetWorkers(prev) })

	tel := telemetry.New()
	SetTelemetry(tel)
	t.Cleanup(func() { SetTelemetry(nil) })

	if got := tel.Gauge("par.workers").Value(); got != 4 {
		t.Fatalf("par.workers gauge = %d, want 4", got)
	}

	const n = 1 << 12
	var touched atomic.Int64
	for round := 0; round < 8; round++ {
		For(n, 1, func(lo, hi int) { touched.Add(int64(hi - lo)) })
	}
	if got := touched.Load(); got != 8*n {
		t.Fatalf("touched %d elements, want %d", got, 8*n)
	}

	// The caller always runs its own first chunk uninstrumented; the other
	// three chunks per round land on pool workers, get stolen by the
	// draining caller, or run inline on queue overflow. All three paths
	// count, so the total must be exact.
	chunks := tel.Counter("par.chunks").Value()
	steals := tel.Counter("par.steals").Value()
	inline := tel.Counter("par.chunks_inline").Value()
	if got := chunks + steals + inline; got != 8*3 {
		t.Errorf("chunks %d + steals %d + inline %d = %d, want %d",
			chunks, steals, inline, got, 8*3)
	}
	if chunks != tel.Histogram("par.chunk_ns").Count() {
		t.Errorf("par.chunks = %d but chunk_ns has %d observations",
			chunks, tel.Histogram("par.chunk_ns").Count())
	}
	if tel.Gauge("par.pool_size").Value() < 1 {
		t.Error("pool size gauge never raised")
	}

	// Disarmed, further loops must not count.
	SetTelemetry(telemetry.Disabled)
	For(n, 1, func(lo, hi int) {})
	if got := tel.Counter("par.chunks").Value() + tel.Counter("par.steals").Value() +
		tel.Counter("par.chunks_inline").Value(); got != chunks+steals+inline {
		t.Errorf("counters moved after disarm: %d, want %d", got, chunks+steals+inline)
	}
}
