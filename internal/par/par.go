// Package par is the shared-memory parallel layer of the simulator — the
// stand-in for the OpenMP layer of Sec. 3.3 of Häner & Steiger. Loops over
// the state vector are statically chunked across a set of goroutine workers,
// mirroring OpenMP's static schedule with the collapse directive (the
// iteration space handed to For is already the collapsed, flat outer loop).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var workers atomic.Int64

func init() {
	workers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetWorkers sets the number of parallel workers used by For. n < 1 resets
// to GOMAXPROCS. It returns the previous value. The strong-scaling
// experiments (Fig. 7 and Fig. 10) sweep this knob.
func SetWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(workers.Swap(int64(n)))
}

// Workers returns the current worker count.
func Workers() int { return int(workers.Load()) }

// For runs f over [0, n) split into contiguous chunks, one chunk per worker,
// mimicking OpenMP static scheduling. grain is the minimum chunk size; work
// smaller than one grain runs inline on the caller. f must be safe to call
// concurrently on disjoint ranges.
func For(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if w > n/grain {
		w = n / grain
	}
	if w <= 1 {
		f(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ReduceFloat64 runs f over [0, n) in parallel chunks; each chunk returns a
// partial float64 which is summed. Used for norms, probabilities and the
// entropy reduction of Sec. 4.2.2.
func ReduceFloat64(n, grain int, f func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if w > n/grain {
		w = n / grain
	}
	if w <= 1 {
		return f(0, n)
	}
	chunk := (n + w - 1) / w
	parts := make([]float64, (n+chunk-1)/chunk)
	var wg sync.WaitGroup
	idx := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			parts[slot] = f(lo, hi)
		}(idx, lo, hi)
		idx++
	}
	wg.Wait()
	var sum float64
	for _, p := range parts {
		sum += p
	}
	return sum
}
