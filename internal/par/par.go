// Package par is the shared-memory parallel layer of the simulator — the
// stand-in for the OpenMP layer of Sec. 3.3 of Häner & Steiger. Loops over
// the state vector are statically chunked across a persistent pool of
// goroutine workers, mirroring OpenMP's static schedule with the collapse
// directive (the iteration space handed to For is already the collapsed,
// flat outer loop). Like an OpenMP thread team, the workers outlive any one
// loop: a sweep costs chunk handoffs over a channel, not goroutine
// creation.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qusim/internal/telemetry"
)

var workers atomic.Int64

func init() {
	workers.Store(int64(runtime.GOMAXPROCS(0)))
}

// tel is the pool's telemetry sink. The pool is process-global (workers
// outlive any one run), so the hook is too: one atomic pointer read per
// chunk when disarmed. Armed, each pool worker records a span per chunk on
// its own timeline (pid telemetry.PoolPID, tid = worker id) plus busy/idle
// histograms, and callers count the chunks they ran themselves.
var tel atomic.Pointer[telemetry.Telemetry]

// SetTelemetry arms (or, with nil / telemetry.Disabled, disarms) pool
// instrumentation. Safe to call at any time; workers pick up the change at
// their next chunk.
func SetTelemetry(t *telemetry.Telemetry) {
	if !t.Enabled() {
		tel.Store(nil)
		return
	}
	t.Gauge("par.workers").Set(int64(Workers()))
	t.Gauge("par.pool_size").SetMax(int64(poolPeek()))
	tel.Store(t)
}

// workerTel is one pool worker's cached handles, refreshed only when the
// armed telemetry instance changes.
type workerTel struct {
	cur      *telemetry.Telemetry
	scope    *telemetry.Scope
	chunkNs  *telemetry.Histogram
	idleNs   *telemetry.Histogram
	chunks   *telemetry.Counter
	idleFrom time.Time
}

// refresh re-resolves the handles if the armed instance changed, returning
// whether instrumentation is currently on.
func (wt *workerTel) refresh(id int) bool {
	t := tel.Load()
	if t != wt.cur {
		wt.cur = t
		wt.scope, wt.chunkNs, wt.idleNs, wt.chunks = nil, nil, nil, nil
		wt.idleFrom = time.Time{}
		if t != nil {
			wt.scope = t.Scope(telemetry.PoolPID, id, "par worker pool", fmt.Sprintf("worker %d", id))
			wt.chunkNs = t.Histogram("par.chunk_ns")
			wt.idleNs = t.Histogram("par.worker_idle_ns")
			wt.chunks = t.Counter("par.chunks")
		}
	}
	return wt.cur != nil
}

// SetWorkers sets the number of parallel workers used by For. n < 1 resets
// to GOMAXPROCS. It returns the previous value. The strong-scaling
// experiments (Fig. 7 and Fig. 10) sweep this knob.
func SetWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(workers.Swap(int64(n)))
}

// Workers returns the current worker count.
func Workers() int { return int(workers.Load()) }

// task is one contiguous chunk handed to the pool.
type task struct {
	f       func(slot, lo, hi int)
	slot    int
	lo, hi  int
	pending *atomic.Int64 // outstanding chunks of the owning call
	done    chan struct{} // closed when pending reaches zero
}

// The persistent worker pool. Workers are spawned on demand up to the
// largest parallelism any call has asked for and then live for the
// process, blocked on the queue when idle. Parallelism per call is bounded
// by its chunk count, not the pool size, so SetWorkers keeps its meaning.
var (
	taskq    = make(chan task, 1024)
	poolMu   sync.Mutex
	poolSize int
)

func ensurePool(n int) {
	if n <= poolPeek() {
		return
	}
	poolMu.Lock()
	for poolSize < n {
		go worker(poolSize)
		poolSize++
	}
	size := poolSize
	poolMu.Unlock()
	if t := tel.Load(); t != nil {
		t.Gauge("par.pool_size").SetMax(int64(size))
	}
}

// worker is one pool goroutine: it drains the queue for the life of the
// process, recording occupancy when telemetry is armed — a "chunk" span
// per task on its own timeline (the gaps are idle time, also summarized in
// the par.worker_idle_ns histogram).
func worker(id int) {
	var wt workerTel
	for t := range taskq {
		if !wt.refresh(id) {
			runTask(t)
			continue
		}
		t0 := time.Now()
		if !wt.idleFrom.IsZero() {
			wt.idleNs.Observe(int64(t0.Sub(wt.idleFrom)))
		}
		// Record before signalling completion, so a caller returning from
		// For observes the chunk already counted.
		t.f(t.slot, t.lo, t.hi)
		end := time.Now()
		wt.chunkNs.Observe(int64(end.Sub(t0)))
		wt.chunks.Inc()
		wt.scope.Complete("par", "chunk", t0, end.Sub(t0), telemetry.A("n", t.hi-t.lo))
		wt.idleFrom = end
		if t.pending.Add(-1) == 0 {
			close(t.done)
		}
	}
}

func poolPeek() int {
	poolMu.Lock()
	n := poolSize
	poolMu.Unlock()
	return n
}

func runTask(t task) {
	t.f(t.slot, t.lo, t.hi)
	if t.pending.Add(-1) == 0 {
		close(t.done)
	}
}

// width computes the chunk parallelism of a call, preserving the grain
// semantics: work smaller than one grain per worker shrinks the team.
func width(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if w > n/grain {
		w = n / grain
	}
	return w
}

// dispatch splits [0, n) into at most w contiguous chunks and runs
// f(slot, lo, hi) over all of them: the first chunk on the caller (so the
// caller works instead of idling) and the rest on the pool. While waiting,
// the caller drains the queue, which keeps nested and concurrent calls
// deadlock-free on the fixed pool. Requires w ≥ 2.
func dispatch(n, w int, f func(slot, lo, hi int)) {
	chunk := (n + w - 1) / w
	nchunks := (n + chunk - 1) / chunk
	if nchunks <= 1 {
		f(0, 0, n)
		return
	}
	var pending atomic.Int64
	pending.Store(int64(nchunks - 1))
	done := make(chan struct{})
	ensurePool(nchunks - 1)
	slot := 1
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		t := task{f: f, slot: slot, lo: lo, hi: hi, pending: &pending, done: done}
		select {
		case taskq <- t:
		default:
			// Queue full (heavily nested or very wide fan-out): run the
			// chunk on the caller rather than block.
			if tt := tel.Load(); tt != nil {
				tt.Counter("par.chunks_inline").Inc()
			}
			runTask(t)
		}
		slot++
	}
	f(0, 0, chunk)
	for {
		select {
		case t := <-taskq:
			// The caller steals queued work while waiting for its own
			// chunks — count it so occupancy numbers add up.
			if tt := tel.Load(); tt != nil {
				tt.Counter("par.steals").Inc()
			}
			runTask(t)
		case <-done:
			return
		}
	}
}

// For runs f over [0, n) split into contiguous chunks, one chunk per worker,
// mimicking OpenMP static scheduling. grain is the minimum chunk size; work
// smaller than one grain runs inline on the caller. f must be safe to call
// concurrently on disjoint ranges.
func For(n, grain int, f func(lo, hi int)) {
	w := width(n, grain)
	if w <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	dispatch(n, w, func(_, lo, hi int) { f(lo, hi) })
}

// ReduceFloat64 runs f over [0, n) in parallel chunks; each chunk returns a
// partial float64 which is summed. Used for norms, probabilities and the
// entropy reduction of Sec. 4.2.2.
func ReduceFloat64(n, grain int, f func(lo, hi int) float64) float64 {
	w := width(n, grain)
	if w <= 1 {
		if n <= 0 {
			return 0
		}
		return f(0, n)
	}
	parts := make([]float64, w)
	dispatch(n, w, func(slot, lo, hi int) { parts[slot] = f(lo, hi) })
	var sum float64
	for _, p := range parts {
		sum += p
	}
	return sum
}
