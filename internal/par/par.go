// Package par is the shared-memory parallel layer of the simulator — the
// stand-in for the OpenMP layer of Sec. 3.3 of Häner & Steiger. Loops over
// the state vector are statically chunked across a persistent pool of
// goroutine workers, mirroring OpenMP's static schedule with the collapse
// directive (the iteration space handed to For is already the collapsed,
// flat outer loop). Like an OpenMP thread team, the workers outlive any one
// loop: a sweep costs chunk handoffs over a channel, not goroutine
// creation.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var workers atomic.Int64

func init() {
	workers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetWorkers sets the number of parallel workers used by For. n < 1 resets
// to GOMAXPROCS. It returns the previous value. The strong-scaling
// experiments (Fig. 7 and Fig. 10) sweep this knob.
func SetWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(workers.Swap(int64(n)))
}

// Workers returns the current worker count.
func Workers() int { return int(workers.Load()) }

// task is one contiguous chunk handed to the pool.
type task struct {
	f       func(slot, lo, hi int)
	slot    int
	lo, hi  int
	pending *atomic.Int64 // outstanding chunks of the owning call
	done    chan struct{} // closed when pending reaches zero
}

// The persistent worker pool. Workers are spawned on demand up to the
// largest parallelism any call has asked for and then live for the
// process, blocked on the queue when idle. Parallelism per call is bounded
// by its chunk count, not the pool size, so SetWorkers keeps its meaning.
var (
	taskq    = make(chan task, 1024)
	poolMu   sync.Mutex
	poolSize int
)

func ensurePool(n int) {
	if n <= poolPeek() {
		return
	}
	poolMu.Lock()
	for poolSize < n {
		go func() {
			for t := range taskq {
				runTask(t)
			}
		}()
		poolSize++
	}
	poolMu.Unlock()
}

func poolPeek() int {
	poolMu.Lock()
	n := poolSize
	poolMu.Unlock()
	return n
}

func runTask(t task) {
	t.f(t.slot, t.lo, t.hi)
	if t.pending.Add(-1) == 0 {
		close(t.done)
	}
}

// width computes the chunk parallelism of a call, preserving the grain
// semantics: work smaller than one grain per worker shrinks the team.
func width(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if w > n/grain {
		w = n / grain
	}
	return w
}

// dispatch splits [0, n) into at most w contiguous chunks and runs
// f(slot, lo, hi) over all of them: the first chunk on the caller (so the
// caller works instead of idling) and the rest on the pool. While waiting,
// the caller drains the queue, which keeps nested and concurrent calls
// deadlock-free on the fixed pool. Requires w ≥ 2.
func dispatch(n, w int, f func(slot, lo, hi int)) {
	chunk := (n + w - 1) / w
	nchunks := (n + chunk - 1) / chunk
	if nchunks <= 1 {
		f(0, 0, n)
		return
	}
	var pending atomic.Int64
	pending.Store(int64(nchunks - 1))
	done := make(chan struct{})
	ensurePool(nchunks - 1)
	slot := 1
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		t := task{f: f, slot: slot, lo: lo, hi: hi, pending: &pending, done: done}
		select {
		case taskq <- t:
		default:
			// Queue full (heavily nested or very wide fan-out): run the
			// chunk on the caller rather than block.
			runTask(t)
		}
		slot++
	}
	f(0, 0, chunk)
	for {
		select {
		case t := <-taskq:
			runTask(t)
		case <-done:
			return
		}
	}
}

// For runs f over [0, n) split into contiguous chunks, one chunk per worker,
// mimicking OpenMP static scheduling. grain is the minimum chunk size; work
// smaller than one grain runs inline on the caller. f must be safe to call
// concurrently on disjoint ranges.
func For(n, grain int, f func(lo, hi int)) {
	w := width(n, grain)
	if w <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	dispatch(n, w, func(_, lo, hi int) { f(lo, hi) })
}

// ReduceFloat64 runs f over [0, n) in parallel chunks; each chunk returns a
// partial float64 which is summed. Used for norms, probabilities and the
// entropy reduction of Sec. 4.2.2.
func ReduceFloat64(n, grain int, f func(lo, hi int) float64) float64 {
	w := width(n, grain)
	if w <= 1 {
		if n <= 0 {
			return 0
		}
		return f(0, n)
	}
	parts := make([]float64, w)
	dispatch(n, w, func(slot, lo, hi int) { parts[slot] = f(lo, hi) })
	var sum float64
	for _, p := range parts {
		sum += p
	}
	return sum
}
