package analysis

// ErrWrap enforces DESIGN.md §10's error-chain invariant at the storage
// seam: errors that originate in (or pass through) qusim/internal/fsio,
// qusim/internal/ckpt, or qusim/internal/oocvec carry classification —
// fsio.IsNoSpace and fsio.IsTransient walk the wrap chain with errors.As /
// errors.Is to decide whether the out-of-core scheduler retries, spills to
// another volume, or aborts the run. Formatting such an error with
// fmt.Errorf's %v (or %s, %q) flattens it to text and silently breaks that
// classification; creating a brand-new error inside an `if err != nil`
// guard discards the chain entirely.
//
// The analyzer is origin-aware, not syntactic: outside the seam packages
// it only fires when the formatted error provably derives (through local
// assignments, see dataflow.go) from a call into this module, so a
// strconv.Atoi error rendered with %v in an importing package stays
// legal. Inside the seam packages every error is assumed classified.
//
// The %v→%w rewrite is offered as a suggested fix (`qlint -fix`).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "Errors crossing the fsio/ckpt/oocvec boundary must keep their wrap " +
		"chain: fmt.Errorf with %v/%s instead of %w, or a fresh errors.New " +
		"inside an `if err != nil` guard, breaks IsNoSpace/IsTransient " +
		"classification and turns a retryable fault into a hard abort",
	Run: runErrWrap,
}

// seamPaths are the packages whose errors carry classification.
var seamPaths = []string{fsioPath, ckptPath, oocvecPath}

func runErrWrap(pass *Pass) {
	inSeam := false
	touchesSeam := false
	for _, p := range seamPaths {
		if pass.Pkg.Path() == p || pass.Pkg.Path() == p+"_test" {
			inSeam = true
		}
		if unitImportsTransitive(pass.Pkg, p) {
			touchesSeam = true
		}
	}
	if !touchesSeam {
		return
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ew := &errWrapCheck{pass: pass, inSeam: inSeam, origins: collectOrigins(pass, fd.Body)}
			ew.checkBody(fd.Body)
		}
	}
}

type errWrapCheck struct {
	pass    *Pass
	inSeam  bool
	origins *Origins
}

// classified reports whether e's error value is (assumed) classified: any
// error inside a seam package, or one derived from a call into this
// module elsewhere.
func (ew *errWrapCheck) classified(e ast.Expr) bool {
	if ew.inSeam {
		return true
	}
	return ew.origins.DerivesFromCall(e, func(fn *types.Func) bool {
		return fn.Pkg() != nil && isModulePath(fn.Pkg().Path())
	})
}

func (ew *errWrapCheck) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			ew.checkErrorf(x)
		case *ast.IfStmt:
			ew.checkGuard(x)
		}
		return true
	})
}

// checkErrorf flags error-typed operands of fmt.Errorf formatted with a
// verb other than %w.
func (ew *errWrapCheck) checkErrorf(call *ast.CallExpr) {
	if !fnIs(calleeFunc(ew.pass.Info, call), "fmt", "Errorf") ||
		call.Ellipsis.IsValid() || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	verbs, ok := parseFormatVerbs(lit.Value)
	if !ok {
		return
	}
	for _, v := range verbs {
		if v.verb == 'w' || v.arg >= len(call.Args)-1 {
			continue
		}
		arg := call.Args[1+v.arg]
		tv, ok := ew.pass.Info.Types[arg]
		if !ok || !isErrorType(tv.Type) || !ew.classified(arg) {
			continue
		}
		var fixes []SuggestedFix
		if v.end-v.start == 2 {
			from := lit.ValuePos + token.Pos(v.start)
			to := lit.ValuePos + token.Pos(v.end)
			fixes = []SuggestedFix{{
				Message: "replace %" + string(v.verb) + " with %w",
				Edits:   []TextEdit{ew.pass.Edit(from, to, "%w")},
			}}
		}
		ew.pass.ReportFix(arg.Pos(), fixes,
			"error formatted with %%%c loses its wrap chain across the fsio/ckpt/oocvec boundary; use %%w so IsNoSpace/IsTransient classification survives",
			v.verb)
	}
}

// checkGuard flags `if err != nil` bodies that return a freshly minted
// error — errors.New, or a fmt.Errorf that never mentions err — in place
// of the classified one they guard.
func (ew *errWrapCheck) checkGuard(ifs *ast.IfStmt) {
	cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return
	}
	errSide := ast.Unparen(cond.X)
	if isNilIdent(ew.pass.Info, errSide) {
		errSide = ast.Unparen(cond.Y)
	} else if !isNilIdent(ew.pass.Info, cond.Y) {
		return
	}
	errID, ok := errSide.(*ast.Ident)
	if !ok {
		return
	}
	errObj := ew.pass.Info.Uses[errID]
	tv, ok := ew.pass.Info.Types[errSide]
	if errObj == nil || !ok || !isErrorType(tv.Type) || !ew.classified(errSide) {
		return
	}
	// Scan the guard body (not nested closures — their returns leave a
	// different function) for returns that discard errObj.
	walkBody(ifs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeFunc(ew.pass.Info, call)
			fresh := fnIs(fn, "errors", "New")
			if fnIs(fn, "fmt", "Errorf") && !mentionsObject(ew.pass.Info, call, errObj) {
				fresh = true
			}
			if fresh {
				ew.pass.Reportf(call.Pos(),
					"returns a fresh error inside `if %s != nil`, discarding the classified chain; wrap %s with fmt.Errorf(...: %%w, ...) instead",
					errID.Name, errID.Name)
			}
		}
		return true
	})
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// mentionsObject reports whether the expression references obj anywhere.
func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// fmtVerb is one formatting verb of a format-string literal, located by
// byte offsets into the literal's raw source text (quotes included).
type fmtVerb struct {
	arg        int // 0-based operand index the verb consumes
	verb       byte
	start, end int
}

// parseFormatVerbs scans the raw source text of a string literal for
// fmt verbs and maps each to the operand it consumes. Star widths and
// precisions consume operands of their own. Explicit argument indexes
// (%[1]v) are not modeled: ok is false and the caller skips the call.
func parseFormatVerbs(raw string) (verbs []fmtVerb, ok bool) {
	arg := 0
	for i := 0; i < len(raw); i++ {
		if raw[i] != '%' {
			continue
		}
		start := i
		i++
		if i < len(raw) && raw[i] == '%' {
			continue
		}
		for i < len(raw) && strings.IndexByte("+-# 0", raw[i]) >= 0 {
			i++
		}
		if i < len(raw) && raw[i] == '*' {
			arg++
			i++
		} else {
			for i < len(raw) && raw[i] >= '0' && raw[i] <= '9' {
				i++
			}
		}
		if i < len(raw) && raw[i] == '.' {
			i++
			if i < len(raw) && raw[i] == '*' {
				arg++
				i++
			} else {
				for i < len(raw) && raw[i] >= '0' && raw[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(raw) {
			break
		}
		if raw[i] == '[' {
			return nil, false
		}
		verbs = append(verbs, fmtVerb{arg: arg, verb: raw[i], start: start, end: i + 1})
		arg++
	}
	return verbs, true
}
