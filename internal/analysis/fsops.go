package analysis

import (
	"go/ast"
)

// FSOps enforces the file-ops seam (DESIGN.md §13): a package that wires
// its I/O through internal/fsio must route every data-path file operation
// through its installed fsio.FS. A direct os call is invisible to the
// chaos disk-fault injector — the operation can neither be degraded
// (ENOSPC, torn write, transient read error) nor counted, so the
// robustness the soak certifies silently stops covering it. The same
// bypass also skips layer policies attached to the seam, like ckpt's
// prune-failure accounting on Remove.
//
// Only data-path entry points are banned; os.MkdirAll and directory
// bookkeeping stay allowed (the injector passes them through untouched),
// and test files are exempt — asserting on-disk bytes with os.ReadFile is
// exactly what tests should do. internal/fsio itself is exempt: its OS
// implementation is the one sanctioned delegation to the os package.
var FSOps = &Analyzer{
	Name: "fsops",
	Doc: "packages on the fsio seam must not call os file operations directly; " +
		"a bypassing call is invisible to chaos fault injection and seam-level accounting",
	Run: runFSOps,
}

// fsOpsBanned are the os entry points the seam replaces (or that bypass a
// replaced one, like os.WriteFile bypassing CreateTemp+Write+Rename).
var fsOpsBanned = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"Open":       true,
	"OpenFile":   true,
	"ReadFile":   true,
	"WriteFile":  true,
	"Rename":     true,
	"Remove":     true,
}

func runFSOps(pass *Pass) {
	if !unitImports(pass.Pkg, fsioPath) {
		return
	}
	if p := pass.Pkg.Path(); p == fsioPath || p == fsioPath+"_test" {
		return
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		eachFuncBody(f, func(_ *ast.CommentGroup, _ string, body *ast.BlockStmt) {
			walkBody(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !fsOpsBanned[fn.Name()] {
					return true
				}
				pass.Reportf(call.Pos(),
					"os.%s bypasses the fsio seam this package runs on: go through the installed fsio.FS so chaos fault injection and seam accounting see the operation",
					fn.Name())
				return true
			})
		})
	}
}
